module iqolb

go 1.22
