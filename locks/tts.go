package locks

import "sync/atomic"

// TTS is test&test&set with capped exponential backoff: the delayed
// waiters poll a shared word, but each failed attempt doubles the
// inserted delay — the software form of the paper's delayed-response
// insight that contended retries should be spaced out, not sped up.
// Unfair by design: release wakes every spinner and the backoff phase
// decides who wins.
type TTS struct {
	state atomic.Uint32
	tun   *Tuning
	instr instr
}

func newTTS(c config) *TTS {
	return &TTS{tun: c.tun, instr: instr{h: c.hooks}}
}

// NewTTS builds a TTS lock.
//
// Deprecated: use New(KindTTS, opts...) — the registry constructor.
func NewTTS(opts ...Option) *TTS { return newTTS(buildConfig(opts)) }

// Name implements Lock.
func (l *TTS) Name() string { return string(KindTTS) }

// Lock implements Lock.
func (l *TTS) Lock() {
	start := l.instr.start()
	if l.state.CompareAndSwap(0, 1) { // uncontended fast path
		l.instr.acquired(start)
		return
	}
	b := l.tun.backoff()
	for {
		// Test phase: read-only polling keeps the line shared while the
		// holder works (the test&TEST&set half).
		for l.state.Load() != 0 {
			b.pause()
		}
		if l.state.CompareAndSwap(0, 1) {
			l.instr.acquired(start)
			return
		}
		b.pause() // lost the race: back off before re-testing
	}
}

// Unlock implements Lock.
func (l *TTS) Unlock() {
	l.instr.releasing()
	l.state.Store(0)
}
