package locks

import (
	"sync"
	"sync/atomic"
)

// clhNode is one waiter's queue entry: a single flag its successor spins
// on. CLH queues are implicit — each waiter knows only its predecessor,
// discovered at the tail swap.
type clhNode struct {
	locked atomic.Uint32
}

var clhPool = sync.Pool{New: func() any { return new(clhNode) }}

// CLH is the Craig/Landin/Hagersten queue lock: a waiter publishes a
// "locked" node at the tail and spins on its predecessor's node, so the
// release writes exactly one flag and wakes exactly one waiter. FIFO-fair
// direct hand-off like MCS, but spinning on the predecessor's line rather
// than the waiter's own — the variant whose hand-off the paper's QOLB
// hardware queue most resembles (the grant travels forward through the
// queue).
type CLH struct {
	tail atomic.Pointer[clhNode]
	// holderNode/holderPred are the current holder's own node and the
	// predecessor node it spun on; written after acquiring and read at
	// Unlock, so they are protected by the lock itself.
	holderNode *clhNode
	holderPred *clhNode
	instr      instr
}

func newCLH(c config) *CLH {
	l := &CLH{instr: instr{h: c.hooks}}
	l.tail.Store(new(clhNode)) // initial node: unlocked sentinel
	return l
}

// NewCLH builds a CLH lock.
//
// Deprecated: use New(KindCLH, opts...) — the registry constructor.
func NewCLH(opts ...Option) *CLH { return newCLH(buildConfig(opts)) }

// Name implements Lock.
func (l *CLH) Name() string { return string(KindCLH) }

// Lock implements Lock.
func (l *CLH) Lock() {
	start := l.instr.start()
	n := clhPool.Get().(*clhNode)
	n.locked.Store(1)
	pred := l.tail.Swap(n)
	var w waitSpin
	for pred.locked.Load() != 0 {
		w.pause()
	}
	l.holderNode, l.holderPred = n, pred
	l.instr.acquired(start)
}

// Unlock implements Lock.
func (l *CLH) Unlock() {
	n, pred := l.holderNode, l.holderPred
	l.instr.releasing()
	// pred was observed unlocked and no one else references it — it is
	// the recycled node (in classic CLH the releaser adopts it; a pool
	// serves the same purpose across goroutines).
	clhPool.Put(pred)
	n.locked.Store(0)
}
