// Race-detector stress tests for the native lock library. Run with
// -race: the mutual-exclusion tests increment a plain (unsynchronized)
// counter inside the critical section, so an exclusion bug either loses
// counts or trips the detector; every waiting path is also exercised
// under a GOMAXPROCS matrix including oversubscription (more goroutines
// than processors), which is where lost wake-ups and missing yields
// deadlock.
package locks

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iqolb/internal/stats"
)

// procsMatrix is the GOMAXPROCS axis of the stress tests, clipped to the
// host.
func procsMatrix() []int {
	out := []int{1, 2, 4}
	if n := runtime.NumCPU(); n >= 8 {
		out = append(out, 8)
	}
	return out
}

// withProcs pins GOMAXPROCS for the duration of f. The tests mutate a
// process-wide setting, so none of them may call t.Parallel.
func withProcs(p int, f func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

// runWithTimeout fails the test with full stacks if f does not finish in
// d — the no-lost-wakeup watchdog: a lost hand-off parks a waiter
// forever, which shows up here rather than as a suite hang.
func runWithTimeout(t *testing.T, d time.Duration, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	select {
	case <-done:
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("locked up (lost wake-up?); all stacks:\n%s", buf[:n])
	}
}

func TestRegistry(t *testing.T) {
	for _, k := range Kinds() {
		l, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		if l.Name() != string(k) {
			t.Fatalf("Name() = %q, want %q", l.Name(), k)
		}
		if pk, err := ParseKind(string(k)); err != nil || pk != k {
			t.Fatalf("ParseKind(%q) = %q, %v", k, pk, err)
		}
	}
	var uke *UnknownKindError
	if _, err := New(Kind("bogus")); err == nil {
		t.Fatal("unknown kind accepted")
	} else if !errors.As(err, &uke) {
		t.Fatalf("unknown kind error is %T, want *UnknownKindError", err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

// TestRegisterCustomKind exercises the open half of the registry: a
// registered kind constructs through New, enumerates through Kinds, and
// duplicate registration panics.
func TestRegisterCustomKind(t *testing.T) {
	const kind = Kind("test-custom")
	Register(kind, func(opts ...Option) Lock { return NewTTS(opts...) })
	l, err := New(kind)
	if err != nil {
		t.Fatal(err)
	}
	l.Lock()
	l.Unlock()
	found := false
	for _, k := range Kinds() {
		if k == kind {
			found = true
		}
	}
	if !found {
		t.Fatalf("Kinds() does not list registered kind %q", kind)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(kind, func(opts ...Option) Lock { return NewTTS(opts...) })
}

// TestTuningOnline verifies that a Tuning store is observed by later
// acquisitions (the values feed the very next backoff construction) and
// that Set clamps controller mistakes to the operating range.
func TestTuningOnline(t *testing.T) {
	tun := NewTuning()
	if got, want := tun.Values(), DefaultTuningValues(); got != want {
		t.Fatalf("fresh tuning = %+v, want defaults %+v", got, want)
	}
	tun.Set(TuningValues{BackoffInitial: 2, BackoffCap: 8, SpinAttempts: 1, TicketUnit: 4})
	if v := tun.Values(); v.BackoffCap != 8 || v.SpinAttempts != 1 {
		t.Fatalf("tuning after Set = %+v", v)
	}
	// Clamps: zero seed, inverted cap, absurd attempts.
	tun.Set(TuningValues{BackoffInitial: 0, BackoffCap: 0, SpinAttempts: 1 << 20, TicketUnit: 1 << 30})
	v := tun.Values()
	if v.BackoffInitial < 1 || v.BackoffCap < v.BackoffInitial || v.SpinAttempts > 64 {
		t.Fatalf("clamp failed: %+v", v)
	}

	// Every primitive built against the shared tuning still excludes
	// correctly while the parameters are retuned mid-run.
	for _, k := range Kinds() {
		l, err := New(k, WithTuning(tun))
		if err != nil {
			t.Fatal(err)
		}
		var counter uint64
		const goroutines, opsPerG = 4, 300
		runWithTimeout(t, 2*time.Minute, func() {
			var wg sync.WaitGroup
			stop := make(chan struct{})
			go func() {
				flip := false
				for {
					select {
					case <-stop:
						return
					default:
					}
					if flip {
						tun.Set(TuningValues{BackoffInitial: 1, BackoffCap: 2, SpinAttempts: 0, TicketUnit: 1})
					} else {
						tun.Set(DefaultTuningValues())
					}
					flip = !flip
					runtime.Gosched()
				}
			}()
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPerG; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			close(stop)
		})
		if want := uint64(goroutines * opsPerG); counter != want {
			t.Fatalf("%s: counter = %d, want %d (mutual exclusion violated under retuning)", k, counter, want)
		}
	}
}

// TestOnAcquiredHook checks the telemetry callback contract: one call
// per acquisition, on the holder, with a zero hand-off only first.
func TestOnAcquiredHook(t *testing.T) {
	var calls, zeroHandoffs int
	l, err := New(KindMCS, WithHooks(&Hooks{OnAcquired: func(waitNS, handoffNS uint64) {
		calls++
		if handoffNS == 0 {
			zeroHandoffs++
		}
	}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Lock()
		l.Unlock()
	}
	if calls != 10 {
		t.Fatalf("OnAcquired fired %d times, want 10", calls)
	}
	if zeroHandoffs != 1 {
		t.Fatalf("zero hand-off samples = %d, want exactly the first", zeroHandoffs)
	}
}

// TestMutualExclusion hammers one lock from 2×GOMAXPROCS goroutines per
// processor count; the protected counter is a plain uint64, so the race
// detector doubles as the oracle.
func TestMutualExclusion(t *testing.T) {
	const opsPerG = 1500
	for _, k := range Kinds() {
		for _, procs := range procsMatrix() {
			t.Run(fmt.Sprintf("%s/p%d", k, procs), func(t *testing.T) {
				withProcs(procs, func() {
					l, err := New(k)
					if err != nil {
						t.Fatal(err)
					}
					goroutines := 2 * procs
					var counter uint64 // unsynchronized on purpose
					runWithTimeout(t, 2*time.Minute, func() {
						var wg sync.WaitGroup
						for g := 0; g < goroutines; g++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								for i := 0; i < opsPerG; i++ {
									l.Lock()
									counter++
									l.Unlock()
								}
							}()
						}
						wg.Wait()
					})
					if want := uint64(goroutines * opsPerG); counter != want {
						t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, want)
					}
				})
			})
		}
	}
}

// TestNoLostWakeup forces long blocking chains: every goroutine yields
// inside its critical section, so at any moment most of the pack is
// parked in a lock queue and every release must wake its successor.
// GOMAXPROCS=1 is the harshest cell: nothing runs concurrently, so any
// waiting path that spins without yielding starves the holder outright.
func TestNoLostWakeup(t *testing.T) {
	const opsPerG = 300
	for _, k := range Kinds() {
		for _, procs := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/p%d", k, procs), func(t *testing.T) {
				withProcs(procs, func() {
					l, err := New(k)
					if err != nil {
						t.Fatal(err)
					}
					const goroutines = 12 // heavily oversubscribed
					var counter uint64
					runWithTimeout(t, 2*time.Minute, func() {
						var wg sync.WaitGroup
						for g := 0; g < goroutines; g++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								for i := 0; i < opsPerG; i++ {
									l.Lock()
									counter++
									runtime.Gosched() // hold across a reschedule
									l.Unlock()
								}
							}()
						}
						wg.Wait()
					})
					if want := uint64(goroutines * opsPerG); counter != want {
						t.Fatalf("counter = %d, want %d", counter, want)
					}
				})
			})
		}
	}
}

// TestTicketOversubscribedNoLivelock is the regression test for the
// ticket lock's single-processor livelock: with GOMAXPROCS=1 a spinner
// whose ticket is far from now-serving must yield, or the holder never
// runs and the whole pack convoys forever. The fix (Ticket.Lock yields
// when the gap is >1 and periodically even when close) is pinned by
// running far more goroutines than processors with no Gosched inside
// the critical section — the lock's own yields are the only way this
// test can finish.
func TestTicketOversubscribedNoLivelock(t *testing.T) {
	withProcs(1, func() {
		l := NewTicket()
		const goroutines, opsPerG = 16, 200
		var counter uint64
		runWithTimeout(t, 2*time.Minute, func() {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPerG; i++ {
						l.Lock()
						counter++ // no yield here: the waiters' yields must suffice
						l.Unlock()
					}
				}()
			}
			wg.Wait()
		})
		if want := uint64(goroutines * opsPerG); counter != want {
			t.Fatalf("counter = %d, want %d", counter, want)
		}
	})
}

// TestTicketFIFOExact verifies the ticket lock's FIFO order exactly: the
// holder's ticket is the now-serving value, and successive holders must
// observe consecutive values.
func TestTicketFIFOExact(t *testing.T) {
	withProcs(4, func() {
		l := NewTicket()
		const goroutines, opsPerG = 8, 400
		order := make([]uint64, 0, goroutines*opsPerG)
		var wg sync.WaitGroup
		runWithTimeout(t, 2*time.Minute, func() {
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPerG; i++ {
						l.Lock()
						order = append(order, l.serving.Load())
						l.Unlock()
					}
				}()
			}
			wg.Wait()
		})
		if len(order) != goroutines*opsPerG {
			t.Fatalf("recorded %d acquisitions, want %d", len(order), goroutines*opsPerG)
		}
		for i, s := range order {
			if s != uint64(i) {
				t.Fatalf("acquisition %d served ticket %d (FIFO violated)", i, s)
			}
		}
	})
}

// TestFIFOBound checks the queue locks' bounded-overtaking guarantee
// statistically: a marked waiter samples a global acquisition counter
// just before and just after acquiring; under FIFO, at most the
// goroutines already queued (G-1) can pass it. The bound is slack (the
// sample read and the enqueue are not atomic, and the scheduler can park
// the marked goroutine between them), so a small violation fraction is
// tolerated; a non-FIFO lock under this much contention overshoots it by
// orders of magnitude.
func TestFIFOBound(t *testing.T) {
	for _, k := range []Kind{KindTicket, KindMCS, KindCLH} {
		t.Run(string(k), func(t *testing.T) {
			withProcs(4, func() {
				l, err := New(k)
				if err != nil {
					t.Fatal(err)
				}
				const goroutines, samples = 8, 250
				bound := uint64(4*goroutines + 8)
				var seq atomic.Uint64
				var stop atomic.Bool
				var wg sync.WaitGroup
				violations := 0
				runWithTimeout(t, 2*time.Minute, func() {
					for g := 0; g < goroutines-1; g++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for !stop.Load() {
								l.Lock()
								seq.Add(1)
								spinLoop(256)
								l.Unlock()
							}
						}()
					}
					for i := 0; i < samples; i++ {
						before := seq.Load()
						l.Lock()
						overtakes := seq.Load() - before
						seq.Add(1)
						l.Unlock()
						if overtakes > bound {
							violations++
						}
					}
					stop.Store(true)
					wg.Wait()
				})
				if max := samples / 20; violations > max {
					t.Fatalf("%d/%d samples overtaken by more than %d acquisitions (FIFO bound violated)",
						violations, samples, bound)
				}
			})
		})
	}
}

// TestHooksSerialized exercises the instrumentation contract: hooks fire
// on the holder, so plain histograms collect consistent counts even when
// the lock is contended.
func TestHooksSerialized(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(string(k), func(t *testing.T) {
			withProcs(4, func() {
				h := &Hooks{Wait: &stats.Histogram{}, Hold: &stats.Histogram{}, Handoff: &stats.Histogram{}}
				l, err := New(k, WithHooks(h))
				if err != nil {
					t.Fatal(err)
				}
				const goroutines, opsPerG = 6, 200
				runWithTimeout(t, 2*time.Minute, func() {
					var wg sync.WaitGroup
					for g := 0; g < goroutines; g++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for i := 0; i < opsPerG; i++ {
								l.Lock()
								spinLoop(64)
								l.Unlock()
							}
						}()
					}
					wg.Wait()
				})
				ops := uint64(goroutines * opsPerG)
				if h.Wait.Count != ops {
					t.Fatalf("wait samples = %d, want %d", h.Wait.Count, ops)
				}
				if h.Hold.Count != ops {
					t.Fatalf("hold samples = %d, want %d", h.Hold.Count, ops)
				}
				// Every acquisition after the first release records a
				// hand-off.
				if h.Handoff.Count != ops-1 {
					t.Fatalf("handoff samples = %d, want %d", h.Handoff.Count, ops-1)
				}
			})
		})
	}
}

// TestHooksNilFields checks that partially filled hooks only feed the
// histograms that exist.
func TestHooksNilFields(t *testing.T) {
	h := &Hooks{Handoff: &stats.Histogram{}}
	l := NewTTS(WithHooks(h))
	for i := 0; i < 10; i++ {
		l.Lock()
		l.Unlock()
	}
	if h.Handoff.Count != 9 {
		t.Fatalf("handoff samples = %d, want 9", h.Handoff.Count)
	}
}

// TestUncontendedReacquire pins the serialized semantics every primitive
// must share: one goroutine can acquire and release repeatedly.
func TestUncontendedReacquire(t *testing.T) {
	for _, k := range Kinds() {
		l, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			l.Lock()
			l.Unlock()
		}
	}
}
