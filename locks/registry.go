package locks

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds one lock of a registered kind.
type Factory func(opts ...Option) Lock

// registry is the named-kind table behind New/Kinds/ParseKind. The
// built-ins register in canonical (report) order below; external kinds
// append in registration order.
var registry = struct {
	mu    sync.RWMutex
	order []Kind
	fac   map[Kind]Factory
}{fac: make(map[Kind]Factory)}

// Register adds a lock kind to the registry. It panics on an empty name
// or a duplicate registration — both are programming errors, caught at
// init time like (text/template).Must.
func Register(k Kind, f Factory) {
	if k == "" || f == nil {
		panic("locks: Register with empty kind or nil factory")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.fac[k]; dup {
		panic(fmt.Sprintf("locks: Register called twice for kind %q", k))
	}
	registry.fac[k] = f
	registry.order = append(registry.order, k)
}

// Kinds lists every registered primitive in registration order (the
// built-ins come first, in the canonical report order) — CLI enumeration
// and report rows.
func Kinds() []Kind {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Kind, len(registry.order))
	copy(out, registry.order)
	return out
}

// New builds a lock of the given kind via its registered factory.
func New(k Kind, opts ...Option) (Lock, error) {
	registry.mu.RLock()
	f := registry.fac[k]
	registry.mu.RUnlock()
	if f == nil {
		return nil, &UnknownKindError{Kind: k, Known: Kinds()}
	}
	return f(opts...), nil
}

// ParseKind resolves a kind name, validating it against the registry.
func ParseKind(s string) (Kind, error) {
	k := Kind(s)
	registry.mu.RLock()
	_, ok := registry.fac[k]
	registry.mu.RUnlock()
	if !ok {
		return "", &UnknownKindError{Kind: k, Known: Kinds()}
	}
	return k, nil
}

// UnknownKindError reports a kind name absent from the registry.
type UnknownKindError struct {
	Kind  Kind
	Known []Kind
}

func (e *UnknownKindError) Error() string {
	names := make([]string, len(e.Known))
	for i, k := range e.Known {
		names[i] = string(k)
	}
	sort.Strings(names)
	return fmt.Sprintf("locks: unknown kind %q (have %s)", string(e.Kind), strings.Join(names, " "))
}

// The built-in primitives, registered in canonical order.
func init() {
	Register(KindTTS, func(opts ...Option) Lock { return newTTS(buildConfig(opts)) })
	Register(KindTicket, func(opts ...Option) Lock { return newTicket(buildConfig(opts)) })
	Register(KindMCS, func(opts ...Option) Lock { return newMCS(buildConfig(opts)) })
	Register(KindCLH, func(opts ...Option) Lock { return newCLH(buildConfig(opts)) })
	Register(KindAdaptive, func(opts ...Option) Lock { return newAdaptive(buildConfig(opts)) })
}
