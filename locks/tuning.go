package locks

import "sync/atomic"

// The default delay parameters. The units are loop iterations, not
// cycles: precision does not matter, growth does.
const (
	// defaultBackoffInitial/Cap seed and cap the exponential backoff of
	// the TTS word-spin (and the adaptive lock's optimistic phase).
	defaultBackoffInitial = 1 << 4
	defaultBackoffCap     = 1 << 12
	// defaultSpinAttempts bounds the adaptive lock's optimistic phase
	// before a waiter gives up and joins the queue.
	defaultSpinAttempts = 8
	// defaultTicketUnit approximates one critical section's worth of
	// spinning per queue position ahead of a ticket waiter.
	defaultTicketUnit = 1 << 6

	// Clamp bounds for Set: a zero seed would never back off, an absurd
	// cap would park waiters for milliseconds, and more than 64 optimistic
	// attempts is queue-avoidance, not optimism.
	minBackoffInitial = 1
	maxBackoffCap     = 1 << 20
	maxSpinAttempts   = 64
	maxTicketUnit     = 1 << 16
)

// TuningValues is a plain snapshot of the inserted-delay parameters —
// what a controller writes into a Tuning and what artifacts record.
type TuningValues struct {
	// BackoffInitial seeds the capped exponential backoff (loop
	// iterations); BackoffCap bounds it. These are the software rendering
	// of the paper's delayed-response delay: how long a contended waiter
	// stays away from the lock word between polls.
	BackoffInitial uint32 `json:"backoff_initial"`
	BackoffCap     uint32 `json:"backoff_cap"`
	// SpinAttempts bounds the adaptive lock's optimistic word-spin phase
	// before queueing (0 = queue immediately).
	SpinAttempts uint32 `json:"spin_attempts"`
	// TicketUnit is the ticket lock's per-queue-position spin quantum —
	// the proportional-delay slope.
	TicketUnit uint32 `json:"ticket_unit"`
}

// DefaultTuningValues returns the parameters locks use when no Tuning is
// attached (and the initial state of NewTuning).
func DefaultTuningValues() TuningValues {
	return TuningValues{
		BackoffInitial: defaultBackoffInitial,
		BackoffCap:     defaultBackoffCap,
		SpinAttempts:   defaultSpinAttempts,
		TicketUnit:     defaultTicketUnit,
	}
}

// clamp bounds the values to the sane operating range so a controller
// bug cannot park waiters forever or disable backoff entirely.
func (v TuningValues) clamp() TuningValues {
	if v.BackoffInitial < minBackoffInitial {
		v.BackoffInitial = minBackoffInitial
	}
	if v.BackoffCap > maxBackoffCap {
		v.BackoffCap = maxBackoffCap
	}
	if v.BackoffCap < v.BackoffInitial {
		v.BackoffCap = v.BackoffInitial
	}
	if v.SpinAttempts > maxSpinAttempts {
		v.SpinAttempts = maxSpinAttempts
	}
	if v.TicketUnit > maxTicketUnit {
		v.TicketUnit = maxTicketUnit
	}
	return v
}

// Tuning holds a lock's inserted-delay parameters in atomics, so a
// controller goroutine can retune them while the lock is under live
// traffic: the delay stops being a construction-time constant and
// becomes a control output. One Tuning may be shared by many locks
// (every shard guard of a service, every lock of a benchmark run); each
// acquisition loads the current values once on entry, so a store here is
// visible to the very next acquire with no locking anywhere.
type Tuning struct {
	backoffInitial atomic.Uint32
	backoffCap     atomic.Uint32
	spinAttempts   atomic.Uint32
	ticketUnit     atomic.Uint32
}

// NewTuning returns a Tuning initialized to the defaults.
func NewTuning() *Tuning {
	t := &Tuning{}
	t.Set(DefaultTuningValues())
	return t
}

// Set publishes new delay parameters (clamped to the operating range).
func (t *Tuning) Set(v TuningValues) {
	v = v.clamp()
	t.backoffInitial.Store(v.BackoffInitial)
	t.backoffCap.Store(v.BackoffCap)
	t.spinAttempts.Store(v.SpinAttempts)
	t.ticketUnit.Store(v.TicketUnit)
}

// Values snapshots the current parameters.
func (t *Tuning) Values() TuningValues {
	return TuningValues{
		BackoffInitial: t.backoffInitial.Load(),
		BackoffCap:     t.backoffCap.Load(),
		SpinAttempts:   t.spinAttempts.Load(),
		TicketUnit:     t.ticketUnit.Load(),
	}
}

// backoff starts one capped-exponential backoff sequence with the
// current parameters.
func (t *Tuning) backoff() backoff {
	return backoff{seed: t.backoffInitial.Load(), cap: t.backoffCap.Load()}
}

// defaultTuning backs locks built without WithTuning. It is never
// mutated (not reachable outside the package).
var defaultTuning = NewTuning()
