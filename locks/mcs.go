package locks

import (
	"sync"
	"sync/atomic"
)

// mcsNode is one waiter's queue entry. blocked is the private flag the
// waiter spins on; the predecessor's release writes it — exactly one
// cache line moves per hand-off, the property the hardware queue (QOLB/
// IQOLB) gets from the coherence protocol.
type mcsNode struct {
	next    atomic.Pointer[mcsNode]
	blocked atomic.Uint32
}

var mcsPool = sync.Pool{New: func() any { return new(mcsNode) }}

// MCS is the Mellor-Crummey/Scott queue lock: waiters form an explicit
// linked queue, each spinning on its own node, and the releaser hands the
// lock directly to its successor. FIFO-fair and single-transfer under
// contention — the software analogue of IQOLB's releaser→waiter grant.
type MCS struct {
	tail atomic.Pointer[mcsNode]
	// holder is the current holder's node; written after acquiring and
	// read at Unlock, so it is protected by the lock itself.
	holder *mcsNode
	instr  instr
}

func newMCS(c config) *MCS {
	return &MCS{instr: instr{h: c.hooks}}
}

// NewMCS builds an MCS lock.
//
// Deprecated: use New(KindMCS, opts...) — the registry constructor.
func NewMCS(opts ...Option) *MCS { return newMCS(buildConfig(opts)) }

// Name implements Lock.
func (l *MCS) Name() string { return string(KindMCS) }

// Lock implements Lock.
func (l *MCS) Lock() {
	start := l.instr.start()
	n := mcsPool.Get().(*mcsNode)
	n.next.Store(nil)
	n.blocked.Store(1)
	if pred := l.tail.Swap(n); pred != nil {
		pred.next.Store(n)
		var w waitSpin
		for n.blocked.Load() != 0 {
			w.pause()
		}
	}
	l.holder = n
	l.instr.acquired(start)
}

// Unlock implements Lock.
func (l *MCS) Unlock() {
	n := l.holder
	l.instr.releasing()
	next := n.next.Load()
	if next == nil {
		// No known successor: try to close the queue.
		if l.tail.CompareAndSwap(n, nil) {
			mcsPool.Put(n)
			return
		}
		// A successor is mid-enqueue; wait for its link.
		var w waitSpin
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			w.pause()
		}
	}
	next.blocked.Store(0)
	// After the hand-off nobody references n: the successor wrote
	// n.next during enqueue and never reads it again.
	mcsPool.Put(n)
}
