// Package locks is the native-Go counterpart of the simulated lock study:
// the paper's delay-insertion and queue-hand-off ideas realized as real
// goroutine spin locks. Each primitive is the software analogue of one of
// the simulator's systems:
//
//   - TTS — test&test&set with exponential backoff: delay insertion at the
//     requester, the software form of the paper's delayed-response mode
//     (every waiter backs off instead of hammering the line).
//   - Ticket — FIFO ticket lock with proportional backoff: the waiter
//     inserts a delay sized to its queue distance, the closest software
//     relative of the paper's "insert exactly the right delay" argument.
//   - MCS / CLH — queue locks with direct releaser→waiter hand-off, the
//     software analogue of IQOLB/QOLB's single-transfer lock grant: each
//     waiter spins on a private flag and the release touches exactly one
//     of them.
//   - Adaptive — spin-then-queue (in the spirit of Fissile and
//     Reciprocating locks): a brief bounded TTS phase for the uncontended
//     case, falling back to an MCS-style queue in which only the queue
//     head competes for the lock word.
//
// Primitives are built through a named registry: locks.New(kind, opts...)
// constructs any registered kind, locks.Kinds() enumerates them in
// registration order, and locks.Register adds new ones (see registry.go).
// The per-kind constructors (NewTTS, NewMCS, ...) remain as deprecated
// shims over the registry.
//
// Every lock takes optional instrumentation hooks feeding internal/stats
// histograms, and optional *Tuning — the inserted-delay parameters
// (backoff seed and cap, optimistic spin budget, ticket spin unit) held
// in atomics so a controller (internal/adaptive) can retune them online
// while the lock is under traffic. Hook callbacks run only on the lock
// holder, so they are serialized per lock and an unsynchronized
// stats.Histogram is safe to feed them.
package locks

import (
	"runtime"
	"time"

	"iqolb/internal/stats"
)

// Lock is one mutual-exclusion primitive. Lock blocks (by spinning and
// yielding) until the calling goroutine holds the lock; Unlock releases
// it. Unlike sync.Mutex, implementations here may hand the lock off in
// FIFO order and may spin — they are built for short critical sections
// under contention, matching the simulated workloads.
type Lock interface {
	// Name returns the primitive's registry name (see Kinds).
	Name() string
	Lock()
	Unlock()
}

// Kind names a lock primitive in the registry.
type Kind string

// The built-in primitives, in the canonical (report) order.
const (
	KindTTS      Kind = "tts"
	KindTicket   Kind = "ticket"
	KindMCS      Kind = "mcs"
	KindCLH      Kind = "clh"
	KindAdaptive Kind = "adaptive"
)

// Hooks are optional per-lock instrumentation sinks. Every histogram is
// fed in nanoseconds; nil histograms are skipped, and a nil *Hooks turns
// all timing off (no clock reads on the lock paths).
//
// All callbacks fire on the goroutine that holds the lock — Wait,
// Handoff and OnAcquired right after acquiring, Hold just before
// releasing — so they are serialized by the lock itself and the
// histograms need no further synchronization.
type Hooks struct {
	// Wait records acquire latency: Lock() entry to lock held.
	Wait *stats.Histogram
	// Hold records lock held to Unlock().
	Hold *stats.Histogram
	// Handoff records the previous Unlock() to the next lock held — the
	// native analogue of the simulator's release→acquire hand-off
	// histogram.
	Handoff *stats.Histogram
	// OnAcquired, when non-nil, receives every acquisition's wait and
	// hand-off samples (handoffNS is 0 for a lock's first acquisition).
	// Like the histograms it is invoked by the new holder, so calls are
	// serialized per lock; a sink shared across locks must synchronize
	// itself (the adaptive tuner's telemetry uses atomics).
	OnAcquired func(waitNS, handoffNS uint64)
}

// Option configures a lock at construction.
type Option func(*config)

type config struct {
	hooks *Hooks
	tun   *Tuning
}

// WithHooks attaches instrumentation hooks.
func WithHooks(h *Hooks) Option {
	return func(c *config) { c.hooks = h }
}

// WithTuning attaches a shared delay-parameter block. Several locks may
// share one *Tuning; a controller retunes them all with one store. Locks
// built without this option read an immutable default.
func WithTuning(t *Tuning) Option {
	return func(c *config) { c.tun = t }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.tun == nil {
		c.tun = defaultTuning
	}
	return c
}

// instr holds the per-lock instrumentation state. holdStart and
// lastRelease are written only by the current holder; the releasing
// atomic store of each lock publishes them to the next holder.
type instr struct {
	h           *Hooks
	holdStart   time.Time
	lastRelease time.Time
}

// start stamps the beginning of an acquire attempt (zero when
// uninstrumented, so the fast path never reads the clock).
func (i *instr) start() time.Time {
	if i.h == nil {
		return time.Time{}
	}
	return time.Now()
}

// acquired records the wait and hand-off samples; called by the new
// holder immediately after acquiring.
func (i *instr) acquired(start time.Time) {
	if i.h == nil {
		return
	}
	now := time.Now()
	wait := uint64(now.Sub(start))
	var handoff uint64
	if !i.lastRelease.IsZero() {
		handoff = uint64(now.Sub(i.lastRelease))
	}
	if i.h.Wait != nil {
		i.h.Wait.Add(wait)
	}
	if i.h.Handoff != nil && !i.lastRelease.IsZero() {
		i.h.Handoff.Add(handoff)
	}
	if i.h.OnAcquired != nil {
		i.h.OnAcquired(wait, handoff)
	}
	i.holdStart = now
}

// releasing records the hold sample and stamps the hand-off origin;
// called by the holder immediately before the releasing store.
func (i *instr) releasing() {
	if i.h == nil {
		return
	}
	now := time.Now()
	if i.h.Hold != nil {
		i.h.Hold.Add(uint64(now.Sub(i.holdStart)))
	}
	i.lastRelease = now
}

// spinLoop burns roughly n loop iterations without touching memory. The
// gc compiler does not eliminate counted empty loops.
func spinLoop(n uint32) {
	for i := uint32(0); i < n; i++ {
	}
}

// backoff is capped exponential backoff: each pause spins twice as long
// as the last, and once the cap is reached it also yields the processor
// so oversubscribed runs (goroutines > GOMAXPROCS) keep making progress.
// The seed and cap come from the lock's Tuning, loaded once per acquire
// (see Tuning.backoff) so an online retune is picked up by the next
// acquisition without an atomic load per pause.
type backoff struct {
	n    uint32
	seed uint32
	cap  uint32
}

func (b *backoff) pause() {
	if b.n == 0 {
		b.n = b.seed
	}
	spinLoop(b.n)
	if b.n < b.cap {
		b.n <<= 1
	} else {
		runtime.Gosched()
	}
}

// waitSpin is the polite flag-polling loop used by the queue locks: short
// constant spins with a periodic yield (the waiter is next in line, so
// long backoff would only stretch the hand-off it is about to receive).
type waitSpin struct {
	rounds uint32
}

func (w *waitSpin) pause() {
	w.rounds++
	if w.rounds%64 == 0 {
		runtime.Gosched()
		return
	}
	spinLoop(defaultBackoffInitial)
}
