package locks

import "sync/atomic"

// Adaptive is a spin-then-queue lock in the spirit of Fissile and
// Reciprocating locks: mutual exclusion lives in one test&set word, but
// waiters that fail a short bounded backoff phase park in an MCS-style
// queue from which only the head competes for the word. Uncontended
// acquisitions stay a single CAS; contended ones degrade to at most two
// goroutines touching the lock word (the head and any newly arrived
// optimist), which is the adaptive switch-on-observed-contention policy
// the simulator's predictor implements in hardware.
//
// Fairness is deliberately looser than MCS/CLH: a fresh arrival in its
// spin phase can barge past the queue head, trading strict FIFO for the
// uncontended fast path — the same trade spin-then-queue designs make.
type Adaptive struct {
	state atomic.Uint32
	tail  atomic.Pointer[mcsNode]
	tun   *Tuning
	instr instr
}

func newAdaptive(c config) *Adaptive {
	return &Adaptive{tun: c.tun, instr: instr{h: c.hooks}}
}

// NewAdaptive builds an adaptive spin-then-queue lock.
//
// Deprecated: use New(KindAdaptive, opts...) — the registry constructor.
func NewAdaptive(opts ...Option) *Adaptive { return newAdaptive(buildConfig(opts)) }

// Name implements Lock.
func (l *Adaptive) Name() string { return string(KindAdaptive) }

// Lock implements Lock.
func (l *Adaptive) Lock() {
	start := l.instr.start()
	if l.state.CompareAndSwap(0, 1) { // uncontended fast path
		l.instr.acquired(start)
		return
	}
	// Optimistic phase: bounded exponential backoff on the word. The
	// attempt budget is the controller's main knob on this lock — high
	// contention shrinks it toward zero (queue immediately, IQOLB-style
	// single transfer), low contention grows it (stay on the fast path).
	attempts := l.tun.spinAttempts.Load()
	b := l.tun.backoff()
	for a := uint32(0); a < attempts; a++ {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			l.instr.acquired(start)
			return
		}
		b.pause()
	}
	// Contended: join the queue and wait to become its head.
	n := mcsPool.Get().(*mcsNode)
	n.next.Store(nil)
	n.blocked.Store(1)
	if pred := l.tail.Swap(n); pred != nil {
		pred.next.Store(n)
		var w waitSpin
		for n.blocked.Load() != 0 {
			w.pause()
		}
	}
	// Queue head: the only queued goroutine spinning on the word.
	var w waitSpin
	for !l.state.CompareAndSwap(0, 1) {
		for l.state.Load() != 0 {
			w.pause()
		}
	}
	// Acquired. Pass head status to the successor (it will spin on the
	// word during our critical section) and retire our node.
	next := n.next.Load()
	if next == nil {
		if !l.tail.CompareAndSwap(n, nil) {
			var ws waitSpin
			for next = n.next.Load(); next == nil; next = n.next.Load() {
				ws.pause()
			}
		}
	}
	if next != nil {
		next.blocked.Store(0)
	}
	mcsPool.Put(n)
	l.instr.acquired(start)
}

// Unlock implements Lock.
func (l *Adaptive) Unlock() {
	l.instr.releasing()
	l.state.Store(0)
}
