package locks

import (
	"runtime"
	"sync/atomic"
)

// Ticket is the classic FIFO ticket lock with proportional backoff: a
// waiter that is k positions from the head sleeps roughly k critical
// sections' worth of spins between polls. This is the most literal
// software rendering of the paper's thesis — insert a delay sized to the
// expected wait and the line is transferred once per hand-off instead of
// once per poll.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
	tun     *Tuning
	instr   instr
}

func newTicket(c config) *Ticket {
	return &Ticket{tun: c.tun, instr: instr{h: c.hooks}}
}

// NewTicket builds a ticket lock.
//
// Deprecated: use New(KindTicket, opts...) — the registry constructor.
func NewTicket(opts ...Option) *Ticket { return newTicket(buildConfig(opts)) }

// Name implements Lock.
func (l *Ticket) Name() string { return string(KindTicket) }

// Lock implements Lock.
func (l *Ticket) Lock() {
	start := l.instr.start()
	t := l.next.Add(1) - 1
	unit := l.tun.ticketUnit.Load() // the proportional-delay slope, retunable online
	var rounds uint32
	for {
		s := l.serving.Load()
		if s == t {
			break
		}
		delta := t - s
		if delta > 64 {
			delta = 64 // cap the pause so a serving burst is noticed
		}
		spinLoop(uint32(delta) * unit)
		rounds++
		// Far from the head, or polling for a while: yield too, so
		// oversubscribed runs let the holder (and closer waiters) run —
		// even the next-in-line waiter must not pin a processor.
		if delta > 1 || rounds%32 == 0 {
			runtime.Gosched()
		}
	}
	l.instr.acquired(start)
}

// Unlock implements Lock.
func (l *Ticket) Unlock() {
	l.instr.releasing()
	l.serving.Add(1)
}
