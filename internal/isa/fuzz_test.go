package isa

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// renderAssemblable prints a program back to assembler text: a label at
// every pc (so the raw "@N" branch targets of Instr.String become
// resolvable names) plus one trailing label for branches to the end.
func renderAssemblable(p *Program) string {
	var sb strings.Builder
	for pc, in := range p.Code {
		fmt.Fprintf(&sb, "L%d:\n", pc)
		fmt.Fprintf(&sb, "\t%s\n", strings.ReplaceAll(in.String(), "@", "L"))
	}
	fmt.Fprintf(&sb, "L%d:\n", len(p.Code))
	return sb.String()
}

// FuzzAsmDisasmRoundTrip: any source the assembler accepts must survive
// print → re-assemble with identical code. (Label names and the li/mov
// pseudo-ops are not preserved — pseudo-ops expand at assembly — so the
// round trip compares the instruction encodings, not the text.)
func FuzzAsmDisasmRoundTrip(f *testing.F) {
	f.Add("halt\n")
	f.Add("\tli t0, 1\nspin:\tll t1, 0(a0)\n\tbne t1, r0, spin\n\tsc t0, 0(a0)\n\tbeq t0, r0, spin\n\thalt\n")
	f.Add("a:\tadd t0, t1, t2\n\twork 100\n\trand s5, 8\n\tbar 1\n\tj a\n")
	f.Add("\tcpuid t0\n\tprocs t1\n\tswap t2, 8(a0)\n\tenqolb t3, 0(a1)\n\tdeqolb 0(a1)\n\tjal end\nend:\thalt\n")
	f.Add("\tli s0, 1048576\n\tlw t0, -8(s0)\n\tsw t0, 16(s0)\n\tworkr t0\n\tjr lr\n")
	if src, err := os.ReadFile("../../testdata/counter.s"); err == nil {
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble(src)
		if err != nil {
			t.Skip()
		}
		rendered := renderAssemblable(p1)
		p2, err := Assemble(rendered)
		if err != nil {
			t.Fatalf("re-assembly of printed program failed: %v\nprinted:\n%s", err, rendered)
		}
		if len(p2.Code) != len(p1.Code) {
			t.Fatalf("round trip changed length: %d -> %d\nprinted:\n%s", len(p1.Code), len(p2.Code), rendered)
		}
		for i := range p1.Code {
			a, b := p1.Code[i], p2.Code[i]
			a.Sym, b.Sym = "", "" // label names are not preserved
			if a != b {
				t.Fatalf("pc %d: round trip changed %v -> %v\nprinted:\n%s", i, p1.Code[i], p2.Code[i], rendered)
			}
		}
	})
}
