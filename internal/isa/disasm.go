package isa

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the instruction in assembler syntax. Branch targets print
// as raw instruction indices (labels are not preserved after assembly).
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpSlt:
		return fmt.Sprintf("%-6s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs), RegName(in.Rt))
	case OpAddi, OpAndi, OpOri, OpSlti, OpSll, OpSrl:
		return fmt.Sprintf("%-6s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs), in.Imm)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%-6s %s, %s, @%d", in.Op, RegName(in.Rs), RegName(in.Rt), in.Target)
	case OpJ, OpJal:
		return fmt.Sprintf("%-6s @%d", in.Op, in.Target)
	case OpJr:
		return fmt.Sprintf("%-6s %s", in.Op, RegName(in.Rs))
	case OpLw, OpLl, OpEnqolb:
		return fmt.Sprintf("%-6s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs))
	case OpSw, OpSc, OpSwap:
		return fmt.Sprintf("%-6s %s, %d(%s)", in.Op, RegName(in.Rt), in.Imm, RegName(in.Rs))
	case OpDeqolb:
		return fmt.Sprintf("%-6s %d(%s)", in.Op, in.Imm, RegName(in.Rs))
	case OpWork, OpBar:
		return fmt.Sprintf("%-6s %d", in.Op, in.Imm)
	case OpWorkr:
		return fmt.Sprintf("%-6s %s", in.Op, RegName(in.Rs))
	case OpRand:
		return fmt.Sprintf("%-6s %s, %d", in.Op, RegName(in.Rd), in.Imm)
	case OpCpuid, OpProcs:
		return fmt.Sprintf("%-6s %s", in.Op, RegName(in.Rd))
	default:
		return fmt.Sprintf("%-6s rd=%d rs=%d rt=%d imm=%d", in.Op, in.Rd, in.Rs, in.Rt, in.Imm)
	}
}

// Disassemble renders the whole program with instruction indices and the
// label table, suitable for debugging workload generators.
func (p *Program) Disassemble() string {
	byPC := make(map[int][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	for _, names := range byPC {
		sort.Strings(names)
	}
	var sb strings.Builder
	for pc, in := range p.Code {
		for _, l := range byPC[pc] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "%5d:  %s\n", pc, in)
	}
	return sb.String()
}
