package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderResolveForwardAndBackward(t *testing.T) {
	b := NewBuilder()
	b.Label("top").
		Li(T0, 1).
		Bne(T0, R0, "bottom"). // forward
		J("top").              // backward
		Label("bottom").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Code[1].Target)
	}
	if p.Code[2].Target != 0 {
		t.Errorf("backward jump target = %d, want 0", p.Code[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder().J("nowhere").Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := NewBuilder().Label("x").Nop().Label("x").Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("err = %v, want duplicate label", err)
	}
}

func TestBuilderScopeUniqueness(t *testing.T) {
	b := NewBuilder()
	l1 := b.Scope("acq")
	l2 := b.Scope("acq")
	if l1("spin") == l2("spin") {
		t.Fatal("two scopes produced the same label")
	}
	b.Label(l1("spin")).Nop().Label(l2("spin")).Halt()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsFallOffEnd(t *testing.T) {
	_, err := NewBuilder().Nop().Build()
	if err == nil || !strings.Contains(err.Error(), "fall off the end") {
		t.Fatalf("err = %v, want fall-off-end rejection", err)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	p := &Program{}
	if err := p.Validate(); err == nil {
		t.Fatal("empty program validated")
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Code: []Instr{{Op: OpJ, Target: 99}, {Op: OpHalt}}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range target validated")
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
	# classic test&test&set acquire
	        li    t0, 1
	spin:   ll    t1, 0(a0)
	        bne   t1, r0, spin
	        sc    t0, 0(a0)
	        beq   t0, r0, spin
	        work  25
	        sw    r0, 0(a0)       # release
	        halt
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 8 {
		t.Fatalf("assembled %d instructions, want 8", len(p.Code))
	}
	if p.Labels["spin"] != 1 {
		t.Fatalf("label spin = %d, want 1", p.Labels["spin"])
	}
	if p.Code[1].Op != OpLl || p.Code[1].Rd != T1 || p.Code[1].Rs != A0 {
		t.Fatalf("bad ll decode: %+v", p.Code[1])
	}
	if p.Code[2].Target != 1 {
		t.Fatalf("bne target = %d, want 1", p.Code[2].Target)
	}
	if p.Code[3].Op != OpSc || p.Code[3].Rt != T0 {
		t.Fatalf("bad sc decode: %+v", p.Code[3])
	}
	if p.Code[5].Op != OpWork || p.Code[5].Imm != 25 {
		t.Fatalf("bad work decode: %+v", p.Code[5])
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
	start:
	  nop
	  add  t0, t1, t2
	  sub  t0, t1, t2
	  mul  t0, t1, t2
	  div  t0, t1, t2
	  rem  t0, t1, t2
	  and  t0, t1, t2
	  or   t0, t1, t2
	  xor  t0, t1, t2
	  slt  t0, t1, t2
	  addi t0, t1, -4
	  andi t0, t1, 0xff
	  ori  t0, t1, 3
	  slti t0, t1, 7
	  sll  t0, t1, 2
	  srl  t0, t1, 2
	  li   s0, 42
	  mov  s1, s0
	  beq  t0, t1, start
	  bne  t0, t1, start
	  blt  t0, t1, start
	  bge  t0, t1, start
	  jal  sub1
	  lw   t3, 16(gp)
	  sw   t3, 16(gp)
	  ll   t4, 0(a0)
	  sc   t4, 0(a0)
	  swap t5, 8(a1)
	  enqolb t6, 0(a0)
	  deqolb 0(a0)
	  work 100
	  workr t0
	  rand t7, 16
	  cpuid s2
	  procs s3
	  bar  1
	  halt
	sub1:
	  jr lr
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Op]bool{}
	for _, in := range p.Code {
		seen[in.Op] = true
	}
	for op := OpNop; op < opCount; op++ {
		if op == OpJ { // exercised in other tests
			continue
		}
		if !seen[op] {
			t.Errorf("mnemonic coverage: opcode %s never assembled", op)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate t0",        // unknown mnemonic
		"add t0, t1",           // arity
		"lw t0, t1",            // bad mem operand
		"lw t0, 4(zz)",         // bad base register
		"beq t0, t1, 9bad",     // bad label
		"li t99, 4",            // bad register
		"9bad: nop\nhalt",      // bad label definition
		"work -5\nhalt",        // negative work
		"rand t0, 0\nhalt",     // non-positive bound
		"j nowhere\nhalt",      // undefined label
		"x: nop\nx: nop\nhalt", // duplicate label
		"li t0, notanumber",    // bad immediate
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleContainsLabelsAndOps(t *testing.T) {
	p := MustAssemble("top: li t0, 3\n j top")
	out := p.Disassemble()
	for _, want := range []string{"top:", "addi", "j"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestInstrStringAllOps(t *testing.T) {
	p := MustAssemble(`
	  add t0, t1, t2
	  addi t0, t1, 5
	  beq t0, t1, l
	  l: jr lr
	  lw t0, 8(gp)
	  sw t0, 8(gp)
	  deqolb 0(a0)
	  work 9
	  workr t1
	  rand t2, 4
	  cpuid t3
	  bar 2
	  halt
	`)
	for _, in := range p.Code {
		s := in.String()
		if s == "" || strings.Contains(s, "op(") {
			t.Errorf("bad rendering for %+v: %q", in, s)
		}
	}
}

func TestRegByNameAliases(t *testing.T) {
	for name, want := range regAliases {
		got, err := RegByName(name)
		if err != nil || got != want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := RegByName("r32"); err == nil {
		t.Error("r32 accepted")
	}
	if r, err := RegByName("r7"); err != nil || r != 7 {
		t.Errorf("RegByName(r7) = %v, %v", r, err)
	}
}

// Property: RegName and RegByName are inverse for every register.
func TestPropertyRegNameRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		r := Reg(n % NumRegs)
		back, err := RegByName(RegName(r))
		return err == nil && back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any program built from random straight-line ALU instructions
// plus a final halt validates, and every instruction disassembles.
func TestPropertyRandomStraightLineValidates(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSlt, OpAddi, OpSll, OpNop}
	f := func(raw []uint32) bool {
		b := NewBuilder()
		for _, r := range raw {
			op := ops[int(r)%len(ops)]
			rd := Reg(r >> 8 % NumRegs)
			rs := Reg(r >> 13 % NumRegs)
			rt := Reg(r >> 18 % NumRegs)
			switch op {
			case OpNop:
				b.Nop()
			case OpAddi:
				b.Addi(rd, rs, int64(int32(r)))
			case OpSll:
				b.Sll(rd, rs, int64(r%64))
			default:
				b.emit(Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
			}
		}
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		for _, in := range p.Code {
			if in.String() == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
