// Package isa defines the small MIPS-like instruction set interpreted by
// the simulated processors, together with a programmatic builder and a text
// assembler.
//
// The paper's simulator executes SPLASH-2 binaries compiled to a
// SimpleScalar (MIPS-like) ISA extended with Swap, Load-Linked,
// Store-Conditional, EnQOLB and DeQOLB. This package provides the same
// instruction vocabulary. Synchronization routines and workload kernels are
// expressed in this ISA so that — exactly as the paper requires — the *same
// software* runs unmodified under every hardware mode (baseline LL/SC,
// delayed response, IQOLB); only the memory system's behaviour changes.
package isa

import "fmt"

// Reg names one of the 32 general-purpose integer registers. R0 reads as
// zero and ignores writes, as in MIPS.
type Reg uint8

// NumRegs is the architected register count.
const NumRegs = 32

// Conventional register aliases used by the routine builders.
const (
	R0 Reg = 0 // hardwired zero
	RV Reg = 2 // return value
	A0 Reg = 4 // first argument
	A1 Reg = 5 // second argument
	A2 Reg = 6 // third argument
	A3 Reg = 7 // fourth argument
	T0 Reg = 8 // caller-saved temporaries T0..T7
	T1 Reg = 9
	T2 Reg = 10
	T3 Reg = 11
	T4 Reg = 12
	T5 Reg = 13
	T6 Reg = 14
	T7 Reg = 15
	S0 Reg = 16 // callee-saved S0..S7
	S1 Reg = 17
	S2 Reg = 18
	S3 Reg = 19
	S4 Reg = 20
	S5 Reg = 21
	S6 Reg = 22
	S7 Reg = 23
	GP Reg = 28 // global pointer (base of shared data)
	SP Reg = 29 // stack pointer
	LR Reg = 31 // link register for JAL/JR
)

// Op enumerates the instruction opcodes.
type Op uint8

const (
	OpNop Op = iota

	// ALU, register-register.
	OpAdd // rd = rs + rt
	OpSub // rd = rs - rt
	OpMul // rd = rs * rt
	OpDiv // rd = rs / rt (rt==0 yields 0)
	OpRem // rd = rs % rt (rt==0 yields 0)
	OpAnd // rd = rs & rt
	OpOr  // rd = rs | rt
	OpXor // rd = rs ^ rt
	OpSlt // rd = 1 if rs < rt else 0 (signed)

	// ALU, register-immediate.
	OpAddi // rd = rs + imm
	OpAndi // rd = rs & imm
	OpOri  // rd = rs | imm
	OpSlti // rd = 1 if rs < imm else 0 (signed)
	OpSll  // rd = rs << imm
	OpSrl  // rd = logical rs >> imm

	// Control flow. Target is an instruction index after assembly.
	OpBeq // if rs == rt goto target
	OpBne // if rs != rt goto target
	OpBlt // if rs <  rt goto target (signed)
	OpBge // if rs >= rt goto target (signed)
	OpJ   // goto target
	OpJal // LR = pc+1; goto target
	OpJr  // goto rs

	// Memory. Addresses are byte addresses; LW/SW/LL/SC move 8-byte words
	// and must be 8-byte aligned. Effective address is rs + imm.
	OpLw // rd = mem[rs+imm]
	OpSw // mem[rs+imm] = rt
	OpLl // rd = mem[rs+imm], set link
	OpSc // if link intact: mem[rs+imm] = rt, rt = 1; else rt = 0

	// Atomic swap (architected on many machines; used by some baselines).
	OpSwap // tmp = mem[rs+imm]; mem[rs+imm] = rt; rt = tmp

	// QOLB extensions (the paper adds EnQOLB/DeQOLB via SimpleScalar's
	// annotation mechanism). They operate on the lock at rs+imm.
	OpEnqolb // enqueue on lock's hardware queue; rd = current lock word
	OpDeqolb // dequeue / release hand-off for lock

	// Simulation helpers.
	OpWork  // occupy the pipeline for imm cycles of pure computation
	OpWorkr // occupy the pipeline for rs cycles
	OpRand  // rd = deterministic per-processor uniform in [0, imm)
	OpCpuid // rd = processor id
	OpProcs // rd = processor count
	OpBar   // hardware barrier; imm identifies the barrier episode
	OpHalt  // stop this processor

	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpSlt: "slt",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpSlti: "slti",
	OpSll: "sll", OpSrl: "srl",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJ: "j", OpJal: "jal", OpJr: "jr",
	OpLw: "lw", OpSw: "sw", OpLl: "ll", OpSc: "sc", OpSwap: "swap",
	OpEnqolb: "enqolb", OpDeqolb: "deqolb",
	OpWork: "work", OpWorkr: "workr", OpRand: "rand",
	OpCpuid: "cpuid", OpProcs: "procs", OpBar: "bar", OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// IsMemory reports whether the opcode accesses data memory.
func (o Op) IsMemory() bool {
	switch o {
	case OpLw, OpSw, OpLl, OpSc, OpSwap, OpEnqolb, OpDeqolb:
		return true
	}
	return false
}

// IsBranch reports whether the opcode may redirect control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJ, OpJal, OpJr:
		return true
	}
	return false
}

// Instr is one decoded instruction. Branch targets hold an instruction
// index once the program is assembled; Sym carries the unresolved label
// name inside a Builder.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Imm    int64
	Target int
	Sym    string
}

// Program is a fully assembled instruction sequence. PC values are indices
// into Code.
type Program struct {
	Code   []Instr
	Labels map[string]int
}

// Validate checks structural well-formedness: opcodes defined, registers in
// range, branch targets within the program, and termination reachable (the
// last instruction must be a halt or an unconditional branch so the PC
// cannot run off the end).
func (p *Program) Validate() error {
	n := len(p.Code)
	if n == 0 {
		return fmt.Errorf("isa: empty program")
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: pc %d: invalid opcode %d", pc, uint8(in.Op))
		}
		if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
			return fmt.Errorf("isa: pc %d (%s): register out of range", pc, in.Op)
		}
		if in.Op.IsBranch() && in.Op != OpJr {
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("isa: pc %d (%s): branch target %d outside program of %d instructions",
					pc, in.Op, in.Target, n)
			}
		}
		if in.Op == OpWork && in.Imm < 0 {
			return fmt.Errorf("isa: pc %d: work with negative duration %d", pc, in.Imm)
		}
	}
	last := p.Code[n-1].Op
	if last != OpHalt && last != OpJ && last != OpJr {
		return fmt.Errorf("isa: program may fall off the end: last op is %s", last)
	}
	return nil
}
