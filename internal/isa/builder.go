package isa

import "fmt"

// Builder assembles a Program incrementally with symbolic labels. The
// synchronization-routine and workload generators use it to emit code; it
// resolves forward references when Build is called.
//
// Label namespacing: routines that are emitted more than once into the same
// program (for example a lock acquire inlined at several sites) should
// derive unique label names, e.g. with fmt.Sprintf and a site counter; the
// Scope helper does this.
type Builder struct {
	code   []Instr
	labels map[string]int
	nscope int
	err    error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// PC reports the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// Scope returns a label name qualified by a per-builder unique suffix,
// letting the same routine template be inlined many times without label
// collisions. Call once per inlining site and use the returned function to
// derive all the site's labels.
func (b *Builder) Scope(prefix string) func(label string) string {
	b.nscope++
	id := b.nscope
	return func(label string) string {
		return fmt.Sprintf("%s.%s.%d", prefix, label, id)
	}
}

// Label binds name to the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("isa: duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	b.code = append(b.code, in)
	return b
}

// --- ALU ---

// Add emits rd = rs + rt.
func (b *Builder) Add(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpAdd, Rd: rd, Rs: rs, Rt: rt})
}

// Sub emits rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpSub, Rd: rd, Rs: rs, Rt: rt})
}

// Mul emits rd = rs * rt.
func (b *Builder) Mul(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpMul, Rd: rd, Rs: rs, Rt: rt})
}

// Div emits rd = rs / rt, with division by zero yielding zero.
func (b *Builder) Div(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpDiv, Rd: rd, Rs: rs, Rt: rt})
}

// Rem emits rd = rs % rt, with modulus by zero yielding zero.
func (b *Builder) Rem(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpRem, Rd: rd, Rs: rs, Rt: rt})
}

// And emits rd = rs & rt.
func (b *Builder) And(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpAnd, Rd: rd, Rs: rs, Rt: rt})
}

// Or emits rd = rs | rt.
func (b *Builder) Or(rd, rs, rt Reg) *Builder { return b.emit(Instr{Op: OpOr, Rd: rd, Rs: rs, Rt: rt}) }

// Xor emits rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpXor, Rd: rd, Rs: rs, Rt: rt})
}

// Slt emits rd = (rs < rt) signed.
func (b *Builder) Slt(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpSlt, Rd: rd, Rs: rs, Rt: rt})
}

// Addi emits rd = rs + imm.
func (b *Builder) Addi(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAddi, Rd: rd, Rs: rs, Imm: imm})
}

// Andi emits rd = rs & imm.
func (b *Builder) Andi(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAndi, Rd: rd, Rs: rs, Imm: imm})
}

// Ori emits rd = rs | imm.
func (b *Builder) Ori(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpOri, Rd: rd, Rs: rs, Imm: imm})
}

// Slti emits rd = (rs < imm) signed.
func (b *Builder) Slti(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpSlti, Rd: rd, Rs: rs, Imm: imm})
}

// Sll emits rd = rs << imm.
func (b *Builder) Sll(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpSll, Rd: rd, Rs: rs, Imm: imm})
}

// Srl emits rd = rs >> imm (logical).
func (b *Builder) Srl(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpSrl, Rd: rd, Rs: rs, Imm: imm})
}

// Li emits the load-immediate pseudo-instruction rd = imm.
func (b *Builder) Li(rd Reg, imm int64) *Builder { return b.Addi(rd, R0, imm) }

// Mov emits the register-copy pseudo-instruction rd = rs.
func (b *Builder) Mov(rd, rs Reg) *Builder { return b.Addi(rd, rs, 0) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// --- Control flow ---

// Beq emits a branch to label when rs == rt.
func (b *Builder) Beq(rs, rt Reg, label string) *Builder {
	return b.emit(Instr{Op: OpBeq, Rs: rs, Rt: rt, Sym: label})
}

// Bne emits a branch to label when rs != rt.
func (b *Builder) Bne(rs, rt Reg, label string) *Builder {
	return b.emit(Instr{Op: OpBne, Rs: rs, Rt: rt, Sym: label})
}

// Blt emits a branch to label when rs < rt (signed).
func (b *Builder) Blt(rs, rt Reg, label string) *Builder {
	return b.emit(Instr{Op: OpBlt, Rs: rs, Rt: rt, Sym: label})
}

// Bge emits a branch to label when rs >= rt (signed).
func (b *Builder) Bge(rs, rt Reg, label string) *Builder {
	return b.emit(Instr{Op: OpBge, Rs: rs, Rt: rt, Sym: label})
}

// J emits an unconditional jump to label.
func (b *Builder) J(label string) *Builder { return b.emit(Instr{Op: OpJ, Sym: label}) }

// Jal emits a jump-and-link to label (return PC in LR).
func (b *Builder) Jal(label string) *Builder { return b.emit(Instr{Op: OpJal, Sym: label}) }

// Jr emits an indirect jump to the instruction index in rs.
func (b *Builder) Jr(rs Reg) *Builder { return b.emit(Instr{Op: OpJr, Rs: rs}) }

// --- Memory ---

// Lw emits rd = mem[rs+off].
func (b *Builder) Lw(rd Reg, off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpLw, Rd: rd, Rs: rs, Imm: off})
}

// Sw emits mem[rs+off] = rt.
func (b *Builder) Sw(rt Reg, off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpSw, Rt: rt, Rs: rs, Imm: off})
}

// Ll emits the load-linked rd = mem[rs+off].
func (b *Builder) Ll(rd Reg, off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpLl, Rd: rd, Rs: rs, Imm: off})
}

// Sc emits the store-conditional mem[rs+off] = rt; rt = success.
func (b *Builder) Sc(rt Reg, off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpSc, Rt: rt, Rs: rs, Imm: off})
}

// Swap emits the atomic exchange of rt with mem[rs+off].
func (b *Builder) Swap(rt Reg, off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpSwap, Rt: rt, Rs: rs, Imm: off})
}

// Enqolb emits the QOLB enqueue on the lock at rs+off, with the observed
// lock word returned in rd.
func (b *Builder) Enqolb(rd Reg, off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpEnqolb, Rd: rd, Rs: rs, Imm: off})
}

// Deqolb emits the QOLB release hand-off for the lock at rs+off.
func (b *Builder) Deqolb(off int64, rs Reg) *Builder {
	return b.emit(Instr{Op: OpDeqolb, Rs: rs, Imm: off})
}

// --- Simulation helpers ---

// Work emits imm cycles of pure computation.
func (b *Builder) Work(cycles int64) *Builder {
	if cycles < 0 {
		b.fail("isa: negative work duration %d", cycles)
		cycles = 0
	}
	return b.emit(Instr{Op: OpWork, Imm: cycles})
}

// Workr emits rs cycles of pure computation.
func (b *Builder) Workr(rs Reg) *Builder { return b.emit(Instr{Op: OpWorkr, Rs: rs}) }

// Rand emits rd = uniform in [0, imm) from the per-processor stream.
func (b *Builder) Rand(rd Reg, bound int64) *Builder {
	if bound <= 0 {
		b.fail("isa: rand bound must be positive, got %d", bound)
		bound = 1
	}
	return b.emit(Instr{Op: OpRand, Rd: rd, Imm: bound})
}

// Cpuid emits rd = processor id.
func (b *Builder) Cpuid(rd Reg) *Builder { return b.emit(Instr{Op: OpCpuid, Rd: rd}) }

// Procs emits rd = processor count.
func (b *Builder) Procs(rd Reg) *Builder { return b.emit(Instr{Op: OpProcs, Rd: rd}) }

// Bar emits a hardware barrier with the given episode id.
func (b *Builder) Bar(id int64) *Builder { return b.emit(Instr{Op: OpBar, Imm: id}) }

// Halt emits the processor stop instruction.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	code := make([]Instr, len(b.code))
	copy(code, b.code)
	for pc := range code {
		in := &code[pc]
		if in.Sym == "" {
			continue
		}
		target, ok := b.labels[in.Sym]
		if !ok {
			return nil, fmt.Errorf("isa: pc %d (%s): undefined label %q", pc, in.Op, in.Sym)
		}
		in.Target = target
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{Code: code, Labels: labels}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for statically known
// correct generators and tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
