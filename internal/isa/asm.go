package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembler text into a Program. The syntax is one
// instruction or label per line, with '#' starting a comment:
//
//	        li    t0, 1
//	spin:   ll    t1, 0(a0)
//	        bne   t1, r0, spin
//	        sc    t0, 0(a0)
//	        beq   t0, r0, spin
//	        halt
//
// Registers are written r0..r31 or by alias (zero, rv, a0..a3, t0..t7,
// s0..s7, gp, sp, lr). Memory operands use the MIPS off(base) form.
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleLine(b, line); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
	}
	return b.Build()
}

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var regAliases = map[string]Reg{
	"zero": R0, "rv": RV, "a0": A0, "a1": A1, "a2": A2, "a3": A3,
	"t0": T0, "t1": T1, "t2": T2, "t3": T3, "t4": T4, "t5": T5, "t6": T6, "t7": T7,
	"s0": S0, "s1": S1, "s2": S2, "s3": S3, "s4": S4, "s5": S5, "s6": S6, "s7": S7,
	"gp": GP, "sp": SP, "lr": LR,
}

// RegByName resolves a register name ("r12", "t0", "gp", ...).
func RegByName(name string) (Reg, error) {
	name = strings.ToLower(name)
	if r, ok := regAliases[name]; ok {
		return r, nil
	}
	if strings.HasPrefix(name, "r") {
		n, err := strconv.Atoi(name[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("unknown register %q", name)
}

// RegName returns the conventional alias for r, falling back to rN.
func RegName(r Reg) string {
	for name, reg := range regAliases {
		if reg == r && name != "zero" {
			if r == R0 {
				continue
			}
			return name
		}
	}
	if r == R0 {
		return "r0"
	}
	return fmt.Sprintf("r%d", r)
}

func splitOperands(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// parseMem decodes "off(base)" into (offset, base register).
func parseMem(s string) (int64, Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q, want off(base)", s)
	}
	offStr := strings.TrimSpace(s[:open])
	off := int64(0)
	if offStr != "" {
		var err error
		off, err = parseImm(offStr)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q: %v", s, err)
		}
	}
	base, err := RegByName(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

func assembleLine(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	ops := splitOperands(rest)

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (Reg, error) { return RegByName(ops[i]) }

	rrr := func(op Op) error {
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		rt, err := reg(2)
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
		return nil
	}
	rri := func(op Op) error {
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
		return nil
	}
	branch := func(op Op) error {
		if err := need(3); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		if !isIdent(ops[2]) {
			return fmt.Errorf("bad branch label %q", ops[2])
		}
		b.emit(Instr{Op: op, Rs: rs, Rt: rt, Sym: ops[2]})
		return nil
	}
	loadLike := func(op Op) error {
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Rd: rd, Rs: base, Imm: off})
		return nil
	}
	storeLike := func(op Op) error {
		if err := need(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Rt: rt, Rs: base, Imm: off})
		return nil
	}

	switch mnemonic {
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		b.Nop()
	case "add":
		return rrr(OpAdd)
	case "sub":
		return rrr(OpSub)
	case "mul":
		return rrr(OpMul)
	case "div":
		return rrr(OpDiv)
	case "rem":
		return rrr(OpRem)
	case "and":
		return rrr(OpAnd)
	case "or":
		return rrr(OpOr)
	case "xor":
		return rrr(OpXor)
	case "slt":
		return rrr(OpSlt)
	case "addi":
		return rri(OpAddi)
	case "andi":
		return rri(OpAndi)
	case "ori":
		return rri(OpOri)
	case "slti":
		return rri(OpSlti)
	case "sll":
		return rri(OpSll)
	case "srl":
		return rri(OpSrl)
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.Li(rd, imm)
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case "beq":
		return branch(OpBeq)
	case "bne":
		return branch(OpBne)
	case "blt":
		return branch(OpBlt)
	case "bge":
		return branch(OpBge)
	case "j", "jal":
		if err := need(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return fmt.Errorf("bad jump label %q", ops[0])
		}
		op := OpJ
		if mnemonic == "jal" {
			op = OpJal
		}
		b.emit(Instr{Op: op, Sym: ops[0]})
	case "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		b.Jr(rs)
	case "lw":
		return loadLike(OpLw)
	case "ll":
		return loadLike(OpLl)
	case "enqolb":
		return loadLike(OpEnqolb)
	case "sw":
		return storeLike(OpSw)
	case "sc":
		return storeLike(OpSc)
	case "swap":
		return storeLike(OpSwap)
	case "deqolb":
		if err := need(1); err != nil {
			return err
		}
		off, base, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		b.Deqolb(off, base)
	case "work", "bar":
		if err := need(1); err != nil {
			return err
		}
		imm, err := parseImm(ops[0])
		if err != nil {
			return err
		}
		if mnemonic == "work" {
			b.Work(imm)
		} else {
			b.Bar(imm)
		}
	case "workr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		b.Workr(rs)
	case "rand":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.Rand(rd, imm)
	case "cpuid", "procs":
		if err := need(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if mnemonic == "cpuid" {
			b.Cpuid(rd)
		} else {
			b.Procs(rd)
		}
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		b.Halt()
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}
