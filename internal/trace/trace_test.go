package trace

import (
	"strings"
	"testing"

	"iqolb/internal/mem"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Wants(3) {
		t.Fatal("nil recorder wants events")
	}
	r.Add(Event{Line: 3}) // must not panic
	if r.Render() != "" {
		t.Fatal("nil recorder rendered text")
	}
	if len(r.Counts()) != 0 {
		t.Fatal("nil recorder counted events")
	}
}

func TestLineFilter(t *testing.T) {
	r := NewRecorder(7)
	r.Add(Event{At: 1, Kind: EvLL, Node: 0, Line: 7})
	r.Add(Event{At: 2, Kind: EvLL, Node: 0, Line: 8}) // filtered out
	if len(r.Events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(r.Events))
	}
	all := NewRecorderAll()
	all.Add(Event{At: 1, Kind: EvLL, Line: 7})
	all.Add(Event{At: 2, Kind: EvLL, Line: 8})
	if len(all.Events) != 2 {
		t.Fatal("all-recorder filtered")
	}
}

func TestRenderShapes(t *testing.T) {
	r := NewRecorder(1)
	r.Add(Event{At: 10, Kind: EvTxIssue, Node: 1, Line: 1, Tx: mem.TxLPRFO})
	r.Add(Event{At: 22, Kind: EvTxObserve, Node: 1, Line: 1, Tx: mem.TxLPRFO})
	r.Add(Event{At: 30, Kind: EvDelayStart, Node: 0, Peer: 1, Line: 1})
	r.Add(Event{At: 95, Kind: EvDataSend, Node: 0, Peer: 1, Line: 1, Data: mem.DataTearOff})
	r.Add(Event{At: 135, Kind: EvDataRecv, Node: 1, Peer: 0, Line: 1, Data: mem.DataTearOff})
	r.Add(Event{At: 140, Kind: EvSpin, Node: 1, Line: 1})
	r.Add(Event{At: 200, Kind: EvTimeout, Node: 0, Peer: 1, Line: 1})
	out := r.Render()
	for _, want := range []string{
		"P1 --LPRFO--> bus",
		"LPRFO(P1) observed globally",
		"P0 delays response to P1",
		"P0 ==TearOff==> P1",
		"P1 <=TearOff=== P0",
		"P1: spin",
		"time-out fires",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	cols := r.RenderColumns(2)
	if !strings.Contains(cols, "P0") || !strings.Contains(cols, "LPRFO>") {
		t.Errorf("columns malformed:\n%s", cols)
	}
	counts := r.Counts()
	if counts[EvTxIssue] != 1 || counts[EvSpin] != 1 {
		t.Fatalf("counts wrong: %v", counts)
	}
}

func TestEventNote(t *testing.T) {
	e := Event{At: 5, Kind: EvSCOk, Node: 2, Note: "lock acquired"}
	if !strings.Contains(e.String(), "(lock acquired)") {
		t.Fatalf("note missing: %s", e.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvTxIssue; k <= EvSquash; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
