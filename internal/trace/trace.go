// Package trace records coherence-level message sequences so the paper's
// timeline figures (Figure 2: traditional LL/SC; Figure 3: delayed
// response; Figure 4: IQOLB) can be regenerated as message-sequence charts
// for a chosen cache line.
package trace

import (
	"fmt"
	"strings"

	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// EvTxIssue: a node wins bus arbitration for a transaction.
	EvTxIssue Kind = iota
	// EvTxObserve: the transaction becomes globally visible (the
	// coherence point, AddrLatency after issue).
	EvTxObserve
	// EvDataSend: a data-network message leaves a node or memory.
	EvDataSend
	// EvDataRecv: a data-network message arrives.
	EvDataRecv
	// EvDelayStart: a supplier begins delaying a response (the paper's Δ).
	EvDelayStart
	// EvDelayEnd: the delayed response is finally sent.
	EvDelayEnd
	// EvTimeout: the time-out mechanism forced a delayed response out.
	EvTimeout
	// EvLL / EvSCOk / EvSCFail / EvStore: processor-side events on the
	// traced line.
	EvLL
	EvSCOk
	EvSCFail
	EvStore
	// EvSpin: an LL satisfied locally while waiting (local spinning).
	EvSpin
	// EvAcquire / EvRelease: policy-level lock events.
	EvAcquire
	EvRelease
	// EvSquash: a queued LPRFO was squashed (queue breakdown).
	EvSquash
)

var kindNames = [...]string{
	"tx-issue", "tx-observe", "data-send", "data-recv",
	"delay-start", "delay-end", "timeout",
	"LL", "SC-ok", "SC-fail", "ST", "spin",
	"acquire", "release", "squash",
}

// String returns the event mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   engine.Time
	Kind Kind
	Node mem.NodeID // acting node
	Peer mem.NodeID // counterparty for messages (dest of send, src of recv)
	Line mem.LineID
	Tx   mem.TxKind   // valid for tx events
	Data mem.DataKind // valid for data events
	Note string
}

// String renders one event as a line of the sequence chart.
func (e Event) String() string {
	var desc string
	switch e.Kind {
	case EvTxIssue:
		desc = fmt.Sprintf("%s --%s--> bus", e.Node, e.Tx)
	case EvTxObserve:
		desc = fmt.Sprintf("bus: %s(%s) observed globally", e.Tx, e.Node)
	case EvDataSend:
		desc = fmt.Sprintf("%s ==%s==> %s", e.Node, e.Data, e.Peer)
	case EvDataRecv:
		desc = fmt.Sprintf("%s <=%s=== %s", e.Node, e.Data, e.Peer)
	case EvDelayStart:
		desc = fmt.Sprintf("%s delays response to %s (Δ begins)", e.Node, e.Peer)
	case EvDelayEnd:
		desc = fmt.Sprintf("%s ends delay, serving %s", e.Node, e.Peer)
	case EvTimeout:
		desc = fmt.Sprintf("%s time-out fires, forwarding to %s", e.Node, e.Peer)
	case EvLL, EvSCOk, EvSCFail, EvStore, EvSpin, EvAcquire, EvRelease:
		desc = fmt.Sprintf("%s: %s", e.Node, e.Kind)
	case EvSquash:
		desc = fmt.Sprintf("%s: queued request squashed", e.Node)
	default:
		desc = fmt.Sprintf("%s: %s", e.Node, e.Kind)
	}
	if e.Note != "" {
		desc += " (" + e.Note + ")"
	}
	return fmt.Sprintf("t=%-8d %s", uint64(e.At), desc)
}

// Recorder collects events for a single traced line. A nil Recorder is
// valid and records nothing, so controllers can call it unconditionally.
type Recorder struct {
	line   mem.LineID
	all    bool
	Events []Event
}

// NewRecorder traces only the given line.
func NewRecorder(line mem.LineID) *Recorder { return &Recorder{line: line} }

// NewRecorderAll traces every line.
func NewRecorderAll() *Recorder { return &Recorder{all: true} }

// Wants reports whether events for the line should be recorded.
func (r *Recorder) Wants(line mem.LineID) bool {
	return r != nil && (r.all || line == r.line)
}

// Add records one event if the recorder is active for its line.
func (r *Recorder) Add(e Event) {
	if r.Wants(e.Line) {
		r.Events = append(r.Events, e)
	}
}

// Render produces the full sequence chart. Runs of consecutive local-spin
// events by the same node collapse into a single annotated line.
func (r *Recorder) Render() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	evs := r.Events
	for i := 0; i < len(evs); i++ {
		e := evs[i]
		if e.Kind == EvSpin {
			j := i
			for j+1 < len(evs) && evs[j+1].Kind == EvSpin && evs[j+1].Node == e.Node {
				j++
			}
			if j > i {
				sb.WriteString(fmt.Sprintf("t=%-8d %s: local spinning (x%d, until t=%d)\n",
					uint64(e.At), e.Node, j-i+1, uint64(evs[j].At)))
				i = j
				continue
			}
		}
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderColumns produces a per-processor columnar chart in the style of the
// paper's figures: one column per node (plus memory), one row per event.
func (r *Recorder) RenderColumns(nodes int) string {
	if r == nil {
		return ""
	}
	const width = 14
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-10s", "cycle"))
	for i := 0; i < nodes; i++ {
		sb.WriteString(fmt.Sprintf("%-*s", width, fmt.Sprintf("P%d", i)))
	}
	sb.WriteString("event\n")
	for _, e := range r.Events {
		sb.WriteString(fmt.Sprintf("%-10d", uint64(e.At)))
		for i := 0; i < nodes; i++ {
			cell := ""
			if e.Node == mem.NodeID(i) {
				switch e.Kind {
				case EvTxIssue:
					cell = e.Tx.String() + ">"
				case EvDataSend:
					cell = e.Data.String() + ">" + e.Peer.String()
				case EvDataRecv:
					cell = "<" + e.Data.String()
				default:
					cell = e.Kind.String()
				}
			}
			sb.WriteString(fmt.Sprintf("%-*s", width, cell))
		}
		sb.WriteString(e.String()[11:])
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Counts tallies events by kind, for assertions in tests and benches.
func (r *Recorder) Counts() map[Kind]int {
	out := make(map[Kind]int)
	if r == nil {
		return out
	}
	for _, e := range r.Events {
		out[e.Kind]++
	}
	return out
}
