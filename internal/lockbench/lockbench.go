// Package lockbench replays the simulator's workload signatures against
// the native lock library (package locks) on the real machine: the same
// contention level, critical-section length, compute-to-synchronization
// ratio and lock count as internal/workload, but with goroutines instead
// of simulated processors and nanoseconds instead of cycles. Its results
// feed the sim-vs-metal cross-validation (crosscheck.go): the simulator's
// primitive ordering on a signature should predict the native ordering.
package lockbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"iqolb/internal/adaptive"
	"iqolb/internal/stats"
	"iqolb/internal/workload"
	"iqolb/locks"
)

// Config describes one native benchmark run.
type Config struct {
	// Bench names a Table 2 benchmark or microbenchmark (workload.ByName).
	Bench string `json:"bench"`
	// Lock selects the native primitive.
	Lock locks.Kind `json:"lock"`
	// Procs is GOMAXPROCS for the run; one worker goroutine per proc,
	// matching the simulator's one-thread-per-processor model.
	Procs int `json:"procs"`
	// Scale divides the signature's critical-section total, exactly like
	// the simulator's scale factor (0 or 1 = unscaled).
	Scale int `json:"scale,omitempty"`
	// Seed drives the per-goroutine lock-choice and jitter PRNGs, so the
	// operation sequence (not the timing) is reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Tuned runs the benchmark with the adaptive tuner in the loop: all
	// locks share a live locks.Tuning cell and an adaptive.Tuner moves
	// its delay/spin parameters from measured acquisition waits while
	// the workload runs.
	Tuned bool `json:"tuned,omitempty"`
}

// resolveParams maps the config to the effective signature: scaled, and
// with the critical-section total divisible by the worker count.
func (c Config) resolveParams() (workload.Params, error) {
	spec, err := workload.ByName(c.Bench)
	if err != nil {
		return workload.Params{}, err
	}
	p := spec.Params
	if c.Procs < 1 {
		return workload.Params{}, fmt.Errorf("lockbench: procs = %d", c.Procs)
	}
	if p.PollProcs > 0 {
		return workload.Params{}, fmt.Errorf("lockbench: %q uses poller processors, which have no native analogue", c.Bench)
	}
	if s := c.Scale; s > 1 {
		p.TotalCS /= s
	}
	p.TotalCS -= p.TotalCS % c.Procs
	if p.TotalCS < c.Procs {
		p.TotalCS = c.Procs
	}
	return p, nil
}

// work burns roughly n units of private compute. The unit is one cheap
// loop iteration — the native stand-in for one simulated cycle of Work.
func work(n int64) {
	for i := int64(0); i < n; i++ {
	}
}

// xorshift64* — the same generator family the fault planner uses;
// deterministic per goroutine.
type rng uint64

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng(seed)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// chooseLock samples the signature's contention distribution; the draw
// sequence lives in workload.PickLock, shared with the service load
// generator so both native harnesses replay identically per seed.
func chooseLock(r *rng, p workload.Params) int {
	return p.PickLock(r.intn)
}

// barrier is a reusable (cyclic) barrier: the native analogue of the
// workload's barrier episodes.
type barrier struct {
	mu      sync.Mutex
	parties int
	count   int
	release chan struct{}
}

func newBarrier(parties int) *barrier {
	return &barrier{parties: parties, release: make(chan struct{})}
}

func (b *barrier) wait() {
	b.mu.Lock()
	ch := b.release
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.release = make(chan struct{})
		close(ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-ch
}

// paddedCount is a per-lock protected counter on its own cache line, so
// the verification counters don't add false sharing of their own.
type paddedCount struct {
	n uint64
	_ [56]byte
}

// shard is one worker goroutine's private measurement state.
type shard struct {
	wait stats.Histogram // Lock() entry → lock held, ns
	hold stats.Histogram // lock held → Unlock() entry, ns
	ops  uint64
}

// Run executes one native benchmark: Procs worker goroutines replay the
// signature against one lock kind, and the per-goroutine shards are
// merged (stats.Histogram.Merge) into the result. The protected counters
// are plain uint64s guarded only by the lock under test, so every run
// doubles as a mutual-exclusion check — exactly like the simulated
// kernels.
func Run(cfg Config) (Result, error) {
	p, err := cfg.resolveParams()
	if err != nil {
		return Result{}, err
	}
	oldProcs := runtime.GOMAXPROCS(cfg.Procs)
	defer runtime.GOMAXPROCS(oldProcs)

	// Hook callbacks run on the lock holder, so each lock's histogram is
	// serialized by that lock; the per-lock shards merge after the run.
	// In tuned mode every lock additionally feeds one telemetry sink and
	// reads one shared tuning cell — the workload is uniform across
	// locks, so one band fits all.
	var (
		tel   *adaptive.LockTelemetry
		tuner *adaptive.Tuner
		tun   *locks.Tuning
	)
	if cfg.Tuned {
		tel = &adaptive.LockTelemetry{}
		tun = locks.NewTuning()
		tuner = adaptive.NewTuner(tel, tun)
	}
	lks := make([]locks.Lock, p.Locks)
	handoffs := make([]*stats.Histogram, p.Locks)
	for i := range lks {
		handoffs[i] = &stats.Histogram{}
		hooks := &locks.Hooks{Handoff: handoffs[i]}
		opts := []locks.Option{locks.WithHooks(hooks)}
		if cfg.Tuned {
			hooks.OnAcquired = tel.Record
			opts = append(opts, locks.WithTuning(tun))
		}
		l, err := locks.New(cfg.Lock, opts...)
		if err != nil {
			return Result{}, err
		}
		lks[i] = l
	}
	tunerDone := make(chan struct{})
	if cfg.Tuned {
		const interval = 2 * time.Millisecond
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tunerDone:
					return
				case <-tick.C:
					tuner.Tick(interval)
				}
			}
		}()
	}
	counters := make([]paddedCount, p.Locks)
	shards := make([]shard, cfg.Procs)
	bar := newBarrier(cfg.Procs)
	csPerG := p.TotalCS / cfg.Procs

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.Procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := &shards[g]
			r := newRNG(cfg.Seed + uint64(g)*0x9e3779b97f4a7c15 + 1)
			for iter := 0; iter < p.Iterations; iter++ {
				for cs := 0; cs < csPerG; cs++ {
					think := p.ThinkWork
					if p.ThinkJitter > 0 {
						think += r.intn(p.ThinkJitter)
					}
					work(think)
					idx := chooseLock(&r, p)
					t0 := time.Now()
					lks[idx].Lock()
					t1 := time.Now()
					counters[idx].n++ // guarded only by the lock under test
					work(p.CSWork)
					t2 := time.Now()
					lks[idx].Unlock()
					sh.wait.Add(uint64(t1.Sub(t0)))
					sh.hold.Add(uint64(t2.Sub(t1)))
					sh.ops++
				}
				for b := 0; b <= p.BarriersPerIter; b++ {
					bar.wait()
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	close(tunerDone)

	expected := uint64(p.Iterations) * uint64(p.TotalCS)
	var sum uint64
	for i := range counters {
		sum += counters[i].n
	}
	if sum != expected {
		return Result{}, fmt.Errorf("lockbench: %s/%s/p%d: protected counters sum to %d, want %d (mutual exclusion violated)",
			cfg.Bench, cfg.Lock, cfg.Procs, sum, expected)
	}

	res := Result{
		SchemaVersion:   ResultSchemaVersion,
		Bench:           cfg.Bench,
		Lock:            string(cfg.Lock),
		Procs:           cfg.Procs,
		Goroutines:      cfg.Procs,
		Ops:             expected,
		WallNS:          wall.Nanoseconds(),
		Throughput:      float64(expected) / wall.Seconds(),
		PerGoroutineOps: make([]uint64, cfg.Procs),
	}
	for g := range shards {
		res.Wait.Merge(&shards[g].wait)
		res.Hold.Merge(&shards[g].hold)
		res.PerGoroutineOps[g] = shards[g].ops
	}
	for _, h := range handoffs {
		res.Handoff.Merge(h)
	}
	res.Fairness = stats.Jain(res.PerGoroutineOps)
	res.WaitP50, res.WaitP99 = res.Wait.Percentile(50), res.Wait.Percentile(99)
	res.HandoffP50, res.HandoffP99 = res.Handoff.Percentile(50), res.Handoff.Percentile(99)
	if cfg.Tuned {
		res.TunedBand = tuner.Band().String()
	}
	return res, nil
}

// RunMatrix sweeps benches × locks × proc counts in order and returns
// every result. Each configuration runs exactly once; errors abort the
// sweep (a mutual-exclusion violation must not be summarized away).
func RunMatrix(benches []string, kinds []locks.Kind, procs []int, scale int, seed uint64, tuned bool) ([]Result, error) {
	var out []Result
	for _, b := range benches {
		for _, pr := range procs {
			for _, k := range kinds {
				res, err := Run(Config{Bench: b, Lock: k, Procs: pr, Scale: scale, Seed: seed, Tuned: tuned})
				if err != nil {
					return nil, err
				}
				out = append(out, res)
			}
		}
	}
	return out, nil
}
