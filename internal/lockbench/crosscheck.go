package lockbench

import (
	"fmt"
	"sort"
	"strings"

	"iqolb/internal/experiments"
	"iqolb/internal/report"
	"iqolb/internal/workload"
	"iqolb/locks"
)

// CrosscheckSchemaVersion identifies the serialized Report layout.
// v2: the adaptive lock is scored as an exact analogue of simulated
// IQOLB — its inserted-delay parameters are controller-driven (package
// adaptive), matching IQOLB's hardware-adaptive hand-off, so it enters
// the agreement verdict instead of riding along as a note.
const CrosscheckSchemaVersion = 2

// analogue maps a native lock kind to the simulated system realizing the
// same hand-off policy. Exact marks a one-to-one correspondence; the one
// inexact mapping (CLH has no simulated twin) is reported but excluded
// from the agreement verdict. Note, when set, is a standing divergence
// explanation emitted with the row.
type analogue struct {
	System string
	Exact  bool
	Note   string
}

var analogues = map[string]analogue{
	string(locks.KindTTS):    {"tts", true, ""},
	string(locks.KindTicket): {"ticket", true, ""},
	string(locks.KindMCS):    {"mcs", true, ""},
	string(locks.KindCLH):    {"mcs", false, ""},
	string(locks.KindAdaptive): {"iqolb", true,
		"exact analogue of sim iqolb: inserted delays are controller-driven, as IQOLB adapts its hand-off in hardware; " +
			"residual divergence — the native tuner moves backoff bands over millisecond telemetry windows through the Go " +
			"scheduler, while sim IQOLB adapts per acquire at cycle granularity, so orderings within ~10% can still flip " +
			"mid-window"},
}

// SimKey identifies one simulator run the crosscheck needs.
type SimKey struct {
	Bench  string `json:"bench"`
	Procs  int    `json:"procs"`
	System string `json:"system"`
}

// CollectSim runs the simulator (through the parallel harness, so the
// result cache applies) over every signature × system the native results
// reference, and returns throughput in operations per kilocycle.
func CollectSim(opt experiments.Options, results []Result, scale int) (map[SimKey]float64, error) {
	if scale < 1 {
		scale = 1
	}
	need := make(map[SimKey]bool)
	var keys []SimKey
	for _, r := range results {
		a, ok := analogues[r.Lock]
		if !ok {
			continue
		}
		k := SimKey{Bench: r.Bench, Procs: r.Procs, System: a.System}
		if !need[k] {
			need[k] = true
			keys = append(keys, k)
		}
	}
	specs := make([]experiments.Spec, len(keys))
	for i, k := range keys {
		specs[i] = experiments.Spec{Bench: k.Bench, System: k.System, Procs: k.Procs, Scale: scale}
	}
	simResults, _, err := experiments.RunSpecs(opt, specs)
	if err != nil {
		return nil, err
	}
	out := make(map[SimKey]float64, len(keys))
	for i, k := range keys {
		spec, err := workload.ByName(k.Bench)
		if err != nil {
			return nil, err
		}
		p := experiments.Scale(spec.Params, scale, k.Procs)
		ops := float64(p.Iterations) * float64(p.TotalCS)
		if c := simResults[i].Cycles; c > 0 {
			out[k] = ops / float64(c) * 1000
		}
	}
	return out, nil
}

// Row is one lock's native-vs-sim cell in a signature check.
type Row struct {
	Lock      string `json:"lock"`
	SimSystem string `json:"sim_system"`
	Exact     bool   `json:"exact_analogue"`
	// NativeThroughput is critical sections per second of wall time;
	// SimThroughput is critical sections per thousand simulated cycles.
	// Units differ by construction — only the relative columns compare.
	NativeThroughput float64 `json:"native_ops_per_sec"`
	SimThroughput    float64 `json:"sim_ops_per_kcycle"`
	// NativeRel/SimRel normalize to the best primitive on this
	// signature (1.00 = winner).
	NativeRel float64 `json:"native_rel"`
	SimRel    float64 `json:"sim_rel"`
}

// SignatureCheck is the differential verdict for one workload signature
// at one machine size.
type SignatureCheck struct {
	Bench string `json:"bench"`
	Procs int    `json:"procs"`
	Rows  []Row  `json:"rows"`
	// Rankings are over exact-analogue locks only, best first.
	NativeRanking []string `json:"native_ranking"`
	SimRanking    []string `json:"sim_ranking"`
	WinnerAgree   bool     `json:"winner_agree"`
	// PairAgreement is the fraction of exact-lock pairs ordered the same
	// way by simulator and metal.
	PairAgreement float64 `json:"pair_agreement"`
	Agree         bool    `json:"agree"`
	// Explanation is set on disagreement: which orderings flipped and
	// the standing reasons the comparison can diverge.
	Explanation string   `json:"explanation,omitempty"`
	Notes       []string `json:"notes,omitempty"`
}

// Report is the schema-versioned sim-vs-metal crosscheck artifact.
type Report struct {
	SchemaVersion int              `json:"schema_version"`
	SimScale      int              `json:"sim_scale"`
	Signatures    []SignatureCheck `json:"signatures"`
	Agreements    int              `json:"agreements"`
	Disagreements int              `json:"disagreements"`
}

// BuildReport joins native results with the simulator throughputs and
// scores primitive-ordering agreement per signature. Pure function — the
// unit tests drive it with synthetic numbers.
func BuildReport(native []Result, sim map[SimKey]float64, simScale int) *Report {
	rep := &Report{SchemaVersion: CrosscheckSchemaVersion, SimScale: simScale}
	order, groups := groupResults(native)
	for _, gk := range order {
		sc := SignatureCheck{Bench: gk.Bench, Procs: gk.Procs}
		var bestNative, bestSim float64
		type exactEntry struct {
			lock          string
			nativeT, simT float64
		}
		var exacts []exactEntry
		for _, r := range groups[gk] {
			a, ok := analogues[r.Lock]
			if !ok {
				sc.Notes = append(sc.Notes, fmt.Sprintf("%s: no simulated analogue, skipped", r.Lock))
				continue
			}
			simT := sim[SimKey{Bench: gk.Bench, Procs: gk.Procs, System: a.System}]
			row := Row{
				Lock: r.Lock, SimSystem: a.System, Exact: a.Exact,
				NativeThroughput: r.Throughput, SimThroughput: simT,
			}
			sc.Rows = append(sc.Rows, row)
			if row.NativeThroughput > bestNative {
				bestNative = row.NativeThroughput
			}
			if simT > bestSim {
				bestSim = simT
			}
			if a.Note != "" {
				sc.Notes = append(sc.Notes, fmt.Sprintf("%s: %s", r.Lock, a.Note))
			}
			if !a.Exact {
				sc.Notes = append(sc.Notes, fmt.Sprintf(
					"%s: inexact analogue (compared against sim %q), excluded from the verdict", r.Lock, a.System))
				continue
			}
			if simT == 0 {
				sc.Notes = append(sc.Notes, fmt.Sprintf("%s: no simulator result, excluded from the verdict", r.Lock))
				continue
			}
			exacts = append(exacts, exactEntry{r.Lock, r.Throughput, simT})
		}
		for i := range sc.Rows {
			if bestNative > 0 {
				sc.Rows[i].NativeRel = sc.Rows[i].NativeThroughput / bestNative
			}
			if bestSim > 0 {
				sc.Rows[i].SimRel = sc.Rows[i].SimThroughput / bestSim
			}
		}

		nativeOrder := append([]exactEntry(nil), exacts...)
		sort.SliceStable(nativeOrder, func(i, j int) bool { return nativeOrder[i].nativeT > nativeOrder[j].nativeT })
		simOrder := append([]exactEntry(nil), exacts...)
		sort.SliceStable(simOrder, func(i, j int) bool { return simOrder[i].simT > simOrder[j].simT })
		for _, e := range nativeOrder {
			sc.NativeRanking = append(sc.NativeRanking, e.lock)
		}
		for _, e := range simOrder {
			sc.SimRanking = append(sc.SimRanking, e.lock)
		}

		var pairs, agreeing int
		var flipped []string
		for i := 0; i < len(exacts); i++ {
			for j := i + 1; j < len(exacts); j++ {
				pairs++
				n := exacts[i].nativeT - exacts[j].nativeT
				s := exacts[i].simT - exacts[j].simT
				if (n >= 0) == (s >= 0) {
					agreeing++
				} else {
					flipped = append(flipped, fmt.Sprintf("%s vs %s (native %.2fx, sim %.2fx)",
						exacts[i].lock, exacts[j].lock,
						ratio(exacts[i].nativeT, exacts[j].nativeT),
						ratio(exacts[i].simT, exacts[j].simT)))
				}
			}
		}
		if pairs > 0 {
			sc.PairAgreement = float64(agreeing) / float64(pairs)
			sc.WinnerAgree = sc.NativeRanking[0] == sc.SimRanking[0]
		}
		sc.Agree = pairs > 0 && sc.WinnerAgree && sc.PairAgreement >= 2.0/3.0
		if pairs > 0 && !sc.Agree {
			sc.Explanation = fmt.Sprintf(
				"ordering flipped for %s — expected divergence sources: the simulator models a 32-node "+
					"bus-based SMP with cycle-exact backoff, while the native run sees a cache-coherent "+
					"multicore through the Go scheduler (preemption, sync.Pool traffic, timer-granularity "+
					"backoff); close calls (relative throughput within ~10%%) flip easily",
				strings.Join(flipped, "; "))
		}
		if sc.Agree {
			rep.Agreements++
		} else {
			rep.Disagreements++
		}
		rep.Signatures = append(rep.Signatures, sc)
	}
	return rep
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Crosscheck is the end-to-end oracle: simulate the signatures the
// native results cover and score the ordering agreement.
func Crosscheck(opt experiments.Options, native []Result, simScale int) (*Report, error) {
	sim, err := CollectSim(opt, native, simScale)
	if err != nil {
		return nil, err
	}
	return BuildReport(native, sim, simScale), nil
}

// RenderReport formats the crosscheck as aligned tables plus a verdict
// summary.
func RenderReport(rep *Report) string {
	var sb strings.Builder
	for _, sc := range rep.Signatures {
		t := report.NewTable(fmt.Sprintf("Crosscheck: %s, %d procs", sc.Bench, sc.Procs),
			"lock", "sim system", "native ops/s", "native rel", "sim ops/kcyc", "sim rel", "verdict basis")
		for _, r := range sc.Rows {
			basis := "exact"
			if !r.Exact {
				basis = "analogue only"
			}
			t.Row(r.Lock, r.SimSystem,
				fmt.Sprintf("%.0f", r.NativeThroughput), fmt.Sprintf("%.2f", r.NativeRel),
				fmt.Sprintf("%.2f", r.SimThroughput), fmt.Sprintf("%.2f", r.SimRel),
				basis)
		}
		t.Note("native ranking: %s", strings.Join(sc.NativeRanking, " > "))
		t.Note("sim ranking:    %s", strings.Join(sc.SimRanking, " > "))
		verdict := "DISAGREE"
		if sc.Agree {
			verdict = "agree"
		}
		t.Note("winner agree: %v, pair agreement: %.0f%% → %s", sc.WinnerAgree, sc.PairAgreement*100, verdict)
		if sc.Explanation != "" {
			t.Note("explanation: %s", sc.Explanation)
		}
		for _, n := range sc.Notes {
			t.Note("%s", n)
		}
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "crosscheck: %d/%d signatures agree (schema v%d, sim scale %d)\n",
		rep.Agreements, rep.Agreements+rep.Disagreements, rep.SchemaVersion, rep.SimScale)
	return sb.String()
}
