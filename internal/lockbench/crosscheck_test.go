package lockbench

import (
	"strings"
	"testing"

	"iqolb/internal/experiments"
	"iqolb/locks"
)

// synthetic builds a native result with just the fields the crosscheck
// reads.
func synthetic(bench string, procs int, lock locks.Kind, tput float64) Result {
	return Result{
		SchemaVersion: ResultSchemaVersion,
		Bench:         bench, Procs: procs, Lock: string(lock), Throughput: tput,
	}
}

func TestBuildReportAgreement(t *testing.T) {
	// Native and sim both order adaptive > mcs > ticket > tts; the
	// adaptive lock scores against sim iqolb as an exact analogue (v2).
	native := []Result{
		synthetic("hotlock", 4, locks.KindTTS, 100),
		synthetic("hotlock", 4, locks.KindTicket, 200),
		synthetic("hotlock", 4, locks.KindMCS, 300),
		synthetic("hotlock", 4, locks.KindCLH, 290),
		synthetic("hotlock", 4, locks.KindAdaptive, 310),
	}
	sim := map[SimKey]float64{
		{"hotlock", 4, "tts"}:    1.0,
		{"hotlock", 4, "ticket"}: 2.0,
		{"hotlock", 4, "mcs"}:    3.0,
		{"hotlock", 4, "iqolb"}:  3.5,
	}
	rep := BuildReport(native, sim, 1)
	if rep.SchemaVersion != CrosscheckSchemaVersion {
		t.Fatalf("schema version %d", rep.SchemaVersion)
	}
	if len(rep.Signatures) != 1 || rep.Agreements != 1 || rep.Disagreements != 0 {
		t.Fatalf("agreements %d, disagreements %d, signatures %d",
			rep.Agreements, rep.Disagreements, len(rep.Signatures))
	}
	sc := rep.Signatures[0]
	if !sc.Agree || !sc.WinnerAgree || sc.PairAgreement != 1 {
		t.Fatalf("check = %+v", sc)
	}
	wantRank := []string{"adaptive", "mcs", "ticket", "tts"}
	for i, w := range wantRank {
		if sc.NativeRanking[i] != w || sc.SimRanking[i] != w {
			t.Fatalf("rankings: native %v, sim %v", sc.NativeRanking, sc.SimRanking)
		}
	}
	// The inexact analogue rides along as a row and note, never in the
	// verdict; the adaptive row carries its standing divergence note.
	if len(sc.Rows) != 5 {
		t.Fatalf("rows %d, want 5", len(sc.Rows))
	}
	notes := strings.Join(sc.Notes, "\n")
	if !strings.Contains(notes, "clh") || !strings.Contains(notes, "adaptive: exact analogue") {
		t.Fatalf("notes missing: %q", notes)
	}
	if sc.Explanation != "" {
		t.Fatalf("explanation on agreement: %q", sc.Explanation)
	}
}

func TestBuildReportDisagreement(t *testing.T) {
	// The winner flips between sim and metal.
	native := []Result{
		synthetic("nullcs", 2, locks.KindTTS, 300),
		synthetic("nullcs", 2, locks.KindTicket, 100),
		synthetic("nullcs", 2, locks.KindMCS, 200),
	}
	sim := map[SimKey]float64{
		{"nullcs", 2, "tts"}:    1.0,
		{"nullcs", 2, "ticket"}: 2.0,
		{"nullcs", 2, "mcs"}:    3.0,
	}
	rep := BuildReport(native, sim, 1)
	if rep.Agreements != 0 || rep.Disagreements != 1 {
		t.Fatalf("agreements %d, disagreements %d", rep.Agreements, rep.Disagreements)
	}
	sc := rep.Signatures[0]
	if sc.Agree || sc.WinnerAgree {
		t.Fatalf("check = %+v", sc)
	}
	if sc.Explanation == "" || !strings.Contains(sc.Explanation, "tts vs mcs") {
		t.Fatalf("explanation = %q", sc.Explanation)
	}
}

func TestBuildReportMissingSim(t *testing.T) {
	// Only one exact analogue has a sim result: no pairs, so no verdict
	// can be claimed — that counts as disagreement, with notes.
	native := []Result{
		synthetic("nullcs", 2, locks.KindTTS, 300),
		synthetic("nullcs", 2, locks.KindTicket, 100),
	}
	sim := map[SimKey]float64{{"nullcs", 2, "tts"}: 1.0}
	rep := BuildReport(native, sim, 1)
	sc := rep.Signatures[0]
	if sc.Agree || rep.Disagreements != 1 {
		t.Fatalf("check = %+v", sc)
	}
	if !strings.Contains(strings.Join(sc.Notes, "\n"), "no simulator result") {
		t.Fatalf("notes = %v", sc.Notes)
	}
}

func TestBuildReportGroupsSignatures(t *testing.T) {
	native := []Result{
		synthetic("hotlock", 2, locks.KindTTS, 100),
		synthetic("hotlock", 2, locks.KindMCS, 200),
		synthetic("hotlock", 4, locks.KindTTS, 100),
		synthetic("hotlock", 4, locks.KindMCS, 200),
		synthetic("nullcs", 2, locks.KindTTS, 100),
		synthetic("nullcs", 2, locks.KindMCS, 200),
	}
	sim := map[SimKey]float64{
		{"hotlock", 2, "tts"}: 1, {"hotlock", 2, "mcs"}: 2,
		{"hotlock", 4, "tts"}: 1, {"hotlock", 4, "mcs"}: 2,
		{"nullcs", 2, "tts"}: 1, {"nullcs", 2, "mcs"}: 2,
	}
	rep := BuildReport(native, sim, 1)
	if len(rep.Signatures) != 3 || rep.Agreements != 3 {
		t.Fatalf("signatures %d, agreements %d", len(rep.Signatures), rep.Agreements)
	}
	out := RenderReport(rep)
	if !strings.Contains(out, "3/3 signatures agree") {
		t.Fatalf("render summary missing:\n%s", out)
	}
}

func TestCollectSimSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	native := []Result{
		synthetic("nullcs", 2, locks.KindTTS, 1),
		synthetic("nullcs", 2, locks.KindMCS, 2),
		synthetic("nullcs", 2, locks.KindCLH, 2), // shares the mcs sim run
	}
	sim, err := CollectSim(experiments.Options{Jobs: 2}, native, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 2 {
		t.Fatalf("sim runs %d, want 2 (tts, mcs): %v", len(sim), sim)
	}
	for k, v := range sim {
		if v <= 0 {
			t.Fatalf("%+v: throughput %f", k, v)
		}
	}
}
