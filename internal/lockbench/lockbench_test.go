package lockbench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"iqolb/internal/workload"
	"iqolb/locks"
)

func TestResolveParams(t *testing.T) {
	p, err := Config{Bench: "hotlock", Lock: locks.KindTTS, Procs: 3, Scale: 4}.resolveParams()
	if err != nil {
		t.Fatal(err)
	}
	// 1024/4 = 256, rounded down to a multiple of 3.
	if p.TotalCS != 255 {
		t.Fatalf("TotalCS = %d, want 255", p.TotalCS)
	}
	if _, err := (Config{Bench: "hotlock", Lock: locks.KindTTS}).resolveParams(); err == nil {
		t.Fatal("procs 0 accepted")
	}
	if _, err := (Config{Bench: "doom", Lock: locks.KindTTS, Procs: 2}).resolveParams(); err == nil {
		t.Fatal("unknown bench accepted")
	}
	// Extreme scale still leaves every worker at least one section.
	p, err = Config{Bench: "nullcs", Lock: locks.KindTTS, Procs: 2, Scale: 1 << 20}.resolveParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCS != 2 {
		t.Fatalf("TotalCS = %d, want 2", p.TotalCS)
	}
}

func TestChooseLockDistribution(t *testing.T) {
	spec, err := workload.ByName("multilock")
	if err != nil {
		t.Fatal(err)
	}
	r := newRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 4096; i++ {
		idx := chooseLock(&r, spec.Params)
		if idx < 0 || idx >= spec.Params.Locks {
			t.Fatalf("lock index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) != spec.Params.Locks {
		t.Fatalf("uniform choice hit %d/%d locks", len(seen), spec.Params.Locks)
	}

	hot, _ := workload.ByName("hotlock")
	r = newRNG(7)
	for i := 0; i < 256; i++ {
		if idx := chooseLock(&r, hot.Params); idx != 0 {
			t.Fatalf("hotlock chose lock %d", idx)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	for _, bench := range []string{"hotlock", "multilock"} {
		for _, k := range []locks.Kind{locks.KindTTS, locks.KindMCS} {
			cfg := Config{Bench: bench, Lock: k, Procs: 2, Scale: 8, Seed: 1}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			p, err := cfg.resolveParams()
			if err != nil {
				t.Fatal(err)
			}
			wantOps := uint64(p.Iterations) * uint64(p.TotalCS)
			if res.Ops != wantOps {
				t.Fatalf("%s/%s: ops = %d, want %d", bench, k, res.Ops, wantOps)
			}
			if res.SchemaVersion != ResultSchemaVersion {
				t.Fatalf("schema version %d", res.SchemaVersion)
			}
			if res.Wait.Count != wantOps || res.Hold.Count != wantOps {
				t.Fatalf("%s/%s: wait count %d, hold count %d, want %d",
					bench, k, res.Wait.Count, res.Hold.Count, wantOps)
			}
			// One hand-off per acquisition after each lock's first, so the
			// count sits in [ops - locks, ops - 1].
			if res.Handoff.Count >= wantOps || res.Handoff.Count+uint64(p.Locks) < wantOps {
				t.Fatalf("%s/%s: handoff count %d, ops %d, locks %d",
					bench, k, res.Handoff.Count, wantOps, p.Locks)
			}
			if res.Throughput <= 0 || res.WallNS <= 0 {
				t.Fatalf("%s/%s: throughput %f, wall %d", bench, k, res.Throughput, res.WallNS)
			}
			if res.Fairness <= 0 || res.Fairness > 1 {
				t.Fatalf("%s/%s: fairness %f out of (0,1]", bench, k, res.Fairness)
			}
			var sum uint64
			for _, n := range res.PerGoroutineOps {
				sum += n
			}
			if sum != wantOps {
				t.Fatalf("%s/%s: per-goroutine ops sum %d, want %d", bench, k, sum, wantOps)
			}
		}
	}
}

func TestRunTuned(t *testing.T) {
	// Tuned mode keeps mutual exclusion, reports the tuner's band, and
	// leaves untuned runs unmarked.
	cfg := Config{Bench: "hotlock", Lock: locks.KindAdaptive, Procs: 2, Scale: 8, Seed: 1, Tuned: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TunedBand == "" || res.TunedBand == "unknown" {
		t.Fatalf("tuned band = %q", res.TunedBand)
	}
	plain, err := Run(Config{Bench: "hotlock", Lock: locks.KindAdaptive, Procs: 2, Scale: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TunedBand != "" {
		t.Fatalf("untuned run has band %q", plain.TunedBand)
	}
}

func TestRunMatrixOrder(t *testing.T) {
	results, err := RunMatrix([]string{"nullcs"}, []locks.Kind{locks.KindTTS, locks.KindTicket}, []int{1, 2}, 32, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		procs int
		lock  string
	}{{1, "tts"}, {1, "ticket"}, {2, "tts"}, {2, "ticket"}}
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i, w := range want {
		if results[i].Procs != w.procs || results[i].Lock != w.lock {
			t.Fatalf("result %d = %s/p%d, want %s/p%d",
				i, results[i].Lock, results[i].Procs, w.lock, w.procs)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	res, err := Run(Config{Bench: "nullcs", Lock: locks.KindCLH, Procs: 2, Scale: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFile([]Result{res})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_locks.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Ops != res.Ops || got.Results[0].Wait.Count != res.Wait.Count {
		t.Fatalf("round trip mismatch: %+v", got.Results[0])
	}

	// Version checks: both the container and the per-result versions gate.
	bad := bytes.Replace(buf.Bytes(), []byte(`"schema_version": 1`), []byte(`"schema_version": 99`), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("wrong file schema version accepted")
	}
}
