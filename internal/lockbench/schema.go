package lockbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"iqolb/internal/report"
	"iqolb/internal/stats"
)

// Schema versions, following the harness artifact conventions: bump on
// any field addition, removal, or change of meaning.
const (
	// ResultSchemaVersion identifies one native measurement's layout.
	ResultSchemaVersion = 1
	// FileSchemaVersion identifies the BENCH_locks.json container.
	FileSchemaVersion = 1
)

// Result is one native benchmark execution's measurements. All latency
// histograms are in nanoseconds (the simulator's analogues are in
// cycles; the crosscheck compares orderings and ratios, never units).
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Bench         string `json:"bench"`
	Lock          string `json:"lock"`
	// Procs is GOMAXPROCS for the run (== worker goroutines).
	Procs      int    `json:"procs"`
	Goroutines int    `json:"goroutines"`
	Ops        uint64 `json:"ops"`
	WallNS     int64  `json:"wall_ns"`
	// Throughput is critical sections per second of wall time.
	Throughput float64 `json:"throughput_ops_per_sec"`
	// Fairness is Jain's index over per-goroutine completed operations.
	Fairness        float64  `json:"fairness_jain"`
	PerGoroutineOps []uint64 `json:"per_goroutine_ops"`
	// Wait: Lock() entry → lock held. Hold: lock held → Unlock() entry.
	// Handoff: previous Unlock() → next lock held, from the lock-side
	// hooks (the native analogue of the simulator's LockHandoff).
	Wait       stats.Histogram `json:"wait_ns"`
	Hold       stats.Histogram `json:"hold_ns"`
	Handoff    stats.Histogram `json:"handoff_ns"`
	WaitP50    float64         `json:"wait_p50_ns"`
	WaitP99    float64         `json:"wait_p99_ns"`
	HandoffP50 float64         `json:"handoff_p50_ns"`
	HandoffP99 float64         `json:"handoff_p99_ns"`
	// TunedBand is the adaptive tuner's final contention band when the
	// run used Config.Tuned; empty otherwise. Additive and omitempty, so
	// v1 artifacts load unchanged.
	TunedBand string `json:"tuned_band,omitempty"`
}

// File is the on-disk artifact (BENCH_locks.json): every result of one
// lockbench invocation plus the host context needed to read it honestly.
type File struct {
	SchemaVersion int      `json:"schema_version"`
	GoVersion     string   `json:"go_version"`
	NumCPU        int      `json:"num_cpu"`
	Results       []Result `json:"results"`
}

// NewFile wraps results in a schema-versioned container.
func NewFile(results []Result) *File {
	return &File{
		SchemaVersion: FileSchemaVersion,
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Results:       results,
	}
}

// WriteJSON writes the container as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadFile reads and version-checks a results file.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("lockbench: %s: %w", path, err)
	}
	if f.SchemaVersion != FileSchemaVersion {
		return nil, fmt.Errorf("lockbench: %s: schema version %d, want %d", path, f.SchemaVersion, FileSchemaVersion)
	}
	for i := range f.Results {
		if v := f.Results[i].SchemaVersion; v != ResultSchemaVersion {
			return nil, fmt.Errorf("lockbench: %s: result %d has schema version %d, want %d", path, i, v, ResultSchemaVersion)
		}
	}
	return &f, nil
}

// Render formats results as the CLI's human-readable table, grouped the
// way the matrix ran: bench, then procs, then the lock rows.
func Render(results []Result) string {
	t := report.NewTable("Native lock benchmarks (wall time; histograms in ns)",
		"bench", "procs", "lock", "ops", "ops/s", "wait p50", "wait p99", "handoff p50", "handoff p99", "fairness")
	for _, r := range results {
		t.Row(r.Bench, r.Procs, r.Lock, r.Ops,
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.0f", r.WaitP50), fmt.Sprintf("%.0f", r.WaitP99),
			fmt.Sprintf("%.0f", r.HandoffP50), fmt.Sprintf("%.0f", r.HandoffP99),
			fmt.Sprintf("%.3f", r.Fairness))
	}
	t.Note("wait: Lock() entry to lock held; handoff: previous Unlock() to next lock held")
	return t.String()
}

// groupKey identifies one signature×machine-size cell of the matrix.
type groupKey struct {
	Bench string
	Procs int
}

// groupResults buckets results by signature and proc count, with keys in
// first-seen order.
func groupResults(results []Result) ([]groupKey, map[groupKey][]Result) {
	groups := make(map[groupKey][]Result)
	var order []groupKey
	for _, r := range results {
		k := groupKey{r.Bench, r.Procs}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Bench != order[j].Bench {
			return order[i].Bench < order[j].Bench
		}
		return order[i].Procs < order[j].Procs
	})
	return order, groups
}
