// Package interconnect models the machine's two transports (Table 1):
// a split-transaction broadcast address bus (12-cycle access latency, up to
// 117 outstanding requests, Gigaplane-style) and a point-to-point crossbar
// data network (40 cycles per cache-line transfer, Gigaplane-XB-style).
package interconnect

import (
	"fmt"

	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

// Tx is one address-bus transaction.
type Tx struct {
	ID        uint64
	Kind      mem.TxKind
	Addr      mem.Addr
	Line      mem.LineID
	Requester mem.NodeID
}

// BusConfig parameterizes the address bus.
type BusConfig struct {
	// Latency is the cycles from bus grant to global observation (the
	// coherence point).
	Latency engine.Time
	// GrantInterval is the minimum spacing between consecutive grants
	// (address-bus bandwidth).
	GrantInterval engine.Time
	// MaxOutstanding caps transactions that have been granted but whose
	// data phase has not completed.
	MaxOutstanding int
}

// Validate rejects unusable configurations.
func (c BusConfig) Validate() error {
	if c.GrantInterval == 0 || c.MaxOutstanding <= 0 {
		return fmt.Errorf("interconnect: bad bus config %+v", c)
	}
	return nil
}

// Bus is the split-transaction broadcast address bus. Requests arbitrate
// FIFO; a granted transaction becomes globally visible Latency cycles
// later, at which point Observe is invoked exactly once. The requester (or
// its delegate) must call Complete when the transaction's data phase
// finishes to free an outstanding slot.
type Bus struct {
	eng     *engine.Engine
	cfg     BusConfig
	observe func(Tx)
	monitor func(queued, outstanding int)

	nextID      uint64
	nextGrant   engine.Time
	outstanding int
	waiting     []Tx

	// Statistics.
	Transactions uint64
	MaxQueue     int
}

// SetMonitor installs an occupancy probe invoked whenever the bus's queue
// or outstanding-transaction population changes (request enqueue, grant,
// completion). The probe observes only — it must not call back into the
// bus — so a nil-checked no-op is the only cost when detached. nil removes
// the probe.
func (b *Bus) SetMonitor(fn func(queued, outstanding int)) { b.monitor = fn }

func (b *Bus) sample() {
	if b.monitor != nil {
		b.monitor(len(b.waiting), b.outstanding)
	}
}

// NewBus builds the bus; observe is called at each transaction's global
// observation instant.
func NewBus(eng *engine.Engine, cfg BusConfig, observe func(Tx)) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{eng: eng, cfg: cfg, observe: observe}
}

// Outstanding reports granted-but-incomplete transactions.
func (b *Bus) Outstanding() int { return b.outstanding }

// Queued reports transactions waiting for arbitration.
func (b *Bus) Queued() int { return len(b.waiting) }

// Request enqueues a transaction for arbitration and returns its id.
func (b *Bus) Request(kind mem.TxKind, addr mem.Addr, requester mem.NodeID) uint64 {
	b.nextID++
	tx := Tx{ID: b.nextID, Kind: kind, Addr: addr, Line: addr.Line(), Requester: requester}
	b.waiting = append(b.waiting, tx)
	if len(b.waiting) > b.MaxQueue {
		b.MaxQueue = len(b.waiting)
	}
	b.sample()
	b.pump()
	return tx.ID
}

// Complete releases the outstanding slot held by a granted transaction.
func (b *Bus) Complete() {
	if b.outstanding == 0 {
		panic("interconnect: Complete without outstanding transaction")
	}
	b.outstanding--
	b.sample()
	b.pump()
}

// pump grants the next waiting transaction if bandwidth and outstanding
// slots allow.
func (b *Bus) pump() {
	if len(b.waiting) == 0 || b.outstanding >= b.cfg.MaxOutstanding {
		return
	}
	now := b.eng.Now()
	grantAt := b.nextGrant
	if grantAt < now {
		grantAt = now
	}
	tx := b.waiting[0]
	b.waiting = b.waiting[1:]
	b.outstanding++
	b.nextGrant = grantAt + b.cfg.GrantInterval
	b.Transactions++
	b.sample()
	b.eng.At(grantAt+b.cfg.Latency, func(engine.Time) {
		b.observe(tx)
		// Grant the next waiter (bandwidth period may have passed).
		b.pump()
	})
	// Chain further grants within bandwidth limits.
	if len(b.waiting) > 0 && b.outstanding < b.cfg.MaxOutstanding {
		b.eng.At(b.nextGrant, func(engine.Time) { b.pump() })
	}
}
