package interconnect

import (
	"fmt"

	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

// Msg is one data-network message: a cache line (or tear-off word) moving
// between nodes or between a node and memory.
type Msg struct {
	Kind  mem.DataKind
	Line  mem.LineID
	Data  mem.LineData
	Dirty bool // the payload differs from memory's copy
	From  mem.NodeID
	To    mem.NodeID
	TxID  uint64 // the address transaction this responds to, 0 if none

	// Loan marks a retention-mode exclusive response: the receiver must
	// perform its single pending write and send the line back to ReturnTo
	// with DataReturn (the paper's "special marker").
	Loan     bool
	ReturnTo mem.NodeID
}

// NetConfig parameterizes the crossbar data network.
type NetConfig struct {
	// Latency is the transfer time for one cache line between any pair of
	// ports.
	Latency engine.Time
	// PortInterval is per-source-port serialization: a port can begin a
	// new transfer only this many cycles after the previous one.
	PortInterval engine.Time
}

// Validate rejects unusable configurations.
func (c NetConfig) Validate() error {
	if c.PortInterval == 0 {
		return fmt.Errorf("interconnect: bad network config %+v", c)
	}
	return nil
}

// Network is the point-to-point crossbar. Messages from one source port
// serialize; distinct sources transfer concurrently. Delivery invokes the
// deliver callback at arrival time.
type Network struct {
	eng     *engine.Engine
	cfg     NetConfig
	deliver func(Msg)

	portFree map[mem.NodeID]engine.Time

	// perturb, when installed, stretches individual message latencies for
	// schedule exploration; lastArrive keeps per-source delivery order
	// intact under arbitrary perturbations.
	perturb    func(idx uint64, m Msg) engine.Time
	lastArrive map[mem.NodeID]engine.Time

	// Statistics.
	Messages  uint64
	ByKind    [8]uint64
	LineMoves uint64 // messages that moved a full line (everything but tear-offs)
}

// NewNetwork builds the crossbar; deliver runs at each message's arrival.
func NewNetwork(eng *engine.Engine, cfg NetConfig, deliver func(Msg)) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{eng: eng, cfg: cfg, deliver: deliver, portFree: make(map[mem.NodeID]engine.Time)}
}

// SetPerturb installs a per-message delivery-delay function used by the
// schedule explorer: message idx (the network's send sequence number) is
// delivered fn(idx, m) cycles later than its nominal arrival. Deliveries
// from the same source port remain in send order — the crossbar's
// constant-latency, port-serialized model guarantees per-source FIFO and
// the protocol is entitled to rely on it — but messages from distinct
// sources may now be reordered arbitrarily within the perturbation window.
// fn must be deterministic; nil restores exact nominal timing.
func (n *Network) SetPerturb(fn func(idx uint64, m Msg) engine.Time) {
	n.perturb = fn
	if fn != nil && n.lastArrive == nil {
		n.lastArrive = make(map[mem.NodeID]engine.Time)
	}
}

// Send schedules the message and returns its departure time (after source
// port serialization).
func (n *Network) Send(m Msg) engine.Time {
	now := n.eng.Now()
	depart := n.portFree[m.From]
	if depart < now {
		depart = now
	}
	n.portFree[m.From] = depart + n.cfg.PortInterval
	idx := n.Messages
	n.Messages++
	n.ByKind[m.Kind]++
	if m.Kind != mem.DataTearOff {
		n.LineMoves++
	}
	arrive := depart + n.cfg.Latency
	if n.perturb != nil {
		arrive += n.perturb(idx, m)
		if la := n.lastArrive[m.From]; arrive < la {
			arrive = la
		}
		n.lastArrive[m.From] = arrive
	}
	n.eng.At(arrive, func(engine.Time) { n.deliver(m) })
	return depart
}
