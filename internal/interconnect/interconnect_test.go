package interconnect

import (
	"testing"
	"testing/quick"

	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

func busCfg() BusConfig {
	return BusConfig{Latency: 12, GrantInterval: 2, MaxOutstanding: 4}
}

func TestBusObservationLatencyAndOrder(t *testing.T) {
	eng := engine.New()
	var seen []Tx
	var times []engine.Time
	b := NewBus(eng, busCfg(), func(tx Tx) {
		seen = append(seen, tx)
		times = append(times, eng.Now())
	})
	b.Request(mem.TxGETS, 64, 0)
	b.Request(mem.TxGETX, 128, 1)
	b.Request(mem.TxLPRFO, 64, 2)
	eng.Run(0)
	if len(seen) != 3 {
		t.Fatalf("observed %d txs, want 3", len(seen))
	}
	// FIFO order.
	if seen[0].Requester != 0 || seen[1].Requester != 1 || seen[2].Requester != 2 {
		t.Fatalf("order wrong: %+v", seen)
	}
	// First observed at Latency; spacing = GrantInterval.
	if times[0] != 12 || times[1] != 14 || times[2] != 16 {
		t.Fatalf("observation times %v, want [12 14 16]", times)
	}
	if seen[2].Line != 1 || seen[2].Addr != 64 {
		t.Fatalf("tx fields wrong: %+v", seen[2])
	}
}

func TestBusOutstandingCap(t *testing.T) {
	eng := engine.New()
	observed := 0
	var b *Bus
	b = NewBus(eng, BusConfig{Latency: 12, GrantInterval: 1, MaxOutstanding: 2}, func(tx Tx) {
		observed++
	})
	for i := 0; i < 5; i++ {
		b.Request(mem.TxGETS, mem.Addr(i*64), mem.NodeID(i))
	}
	eng.Run(0)
	if observed != 2 {
		t.Fatalf("observed %d with cap 2 and no completions, want 2", observed)
	}
	if b.Outstanding() != 2 || b.Queued() != 3 {
		t.Fatalf("outstanding/queued = %d/%d, want 2/3", b.Outstanding(), b.Queued())
	}
	// Completions free slots and the queue drains.
	b.Complete()
	b.Complete()
	eng.Run(0)
	if observed != 4 {
		t.Fatalf("observed %d after two completions, want 4", observed)
	}
}

func TestBusCompleteWithoutOutstandingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewBus(engine.New(), busCfg(), func(Tx) {}).Complete()
}

func TestBusIDsUnique(t *testing.T) {
	eng := engine.New()
	b := NewBus(eng, busCfg(), func(Tx) {})
	ids := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		id := b.Request(mem.TxGETS, 0, 0)
		if ids[id] {
			t.Fatal("duplicate tx id")
		}
		ids[id] = true
	}
}

// Property: with ample outstanding slots, observation times are strictly
// increasing with at least GrantInterval spacing, in FIFO order.
func TestPropertyBusSpacing(t *testing.T) {
	f := func(nReq uint8) bool {
		n := int(nReq%20) + 1
		eng := engine.New()
		var times []engine.Time
		var order []mem.NodeID
		b := NewBus(eng, BusConfig{Latency: 12, GrantInterval: 3, MaxOutstanding: 200},
			func(tx Tx) { times = append(times, eng.Now()); order = append(order, tx.Requester) })
		for i := 0; i < n; i++ {
			b.Request(mem.TxGETS, mem.Addr(i*64), mem.NodeID(i))
		}
		eng.Run(0)
		if len(times) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if times[i] < times[i-1]+3 || order[i] != mem.NodeID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkLatencyAndPortSerialization(t *testing.T) {
	eng := engine.New()
	var arrivals []engine.Time
	var kinds []mem.DataKind
	n := NewNetwork(eng, NetConfig{Latency: 40, PortInterval: 8}, func(m Msg) {
		arrivals = append(arrivals, eng.Now())
		kinds = append(kinds, m.Kind)
	})
	// Two messages from the same port serialize; one from another doesn't.
	n.Send(Msg{Kind: mem.DataExclusive, From: 0, To: 1})
	n.Send(Msg{Kind: mem.DataShared, From: 0, To: 2})
	n.Send(Msg{Kind: mem.DataTearOff, From: 3, To: 2})
	eng.Run(0)
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrivals))
	}
	// Same-port second departs at 8, arrives 48; other port arrives 40.
	want := []engine.Time{40, 40, 48}
	got := append([]engine.Time{}, arrivals...)
	if got[0] != 40 || got[1] != 40 || got[2] != 48 {
		t.Fatalf("arrivals %v, want %v", got, want)
	}
	if n.Messages != 3 || n.LineMoves != 2 {
		t.Fatalf("messages/linemoves = %d/%d, want 3/2", n.Messages, n.LineMoves)
	}
	if n.ByKind[mem.DataTearOff] != 1 {
		t.Fatal("tear-off not counted")
	}
}

func TestNetworkDataPayloadIntact(t *testing.T) {
	eng := engine.New()
	var got Msg
	n := NewNetwork(eng, NetConfig{Latency: 1, PortInterval: 1}, func(m Msg) { got = m })
	var data mem.LineData
	data[3] = 0xdeadbeef
	n.Send(Msg{Kind: mem.DataExclusive, Line: 9, Data: data, Dirty: true, From: 1, To: 2, TxID: 7})
	eng.Run(0)
	if got.Data[3] != 0xdeadbeef || !got.Dirty || got.Line != 9 || got.TxID != 7 {
		t.Fatalf("payload mangled: %+v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if (BusConfig{Latency: 1, GrantInterval: 0, MaxOutstanding: 1}).Validate() == nil {
		t.Error("zero grant interval accepted")
	}
	if (BusConfig{Latency: 1, GrantInterval: 1, MaxOutstanding: 0}).Validate() == nil {
		t.Error("zero outstanding accepted")
	}
	if (NetConfig{Latency: 1, PortInterval: 0}).Validate() == nil {
		t.Error("zero port interval accepted")
	}
}
