package adaptive

import (
	"sync/atomic"
	"time"

	"iqolb/locks"
)

// Band is a quantized contention level. The tuners map estimators onto
// bands rather than continuous values so the locks.Tuning actuator is
// written only on band transitions — retuning is cheap for the readers
// (one atomic load per acquire) but pointless churn still costs the
// writer a cache-line invalidation per field.
type Band int

const (
	// BandLow: uncontended or nearly so. Short initial delays, small
	// cap, generous optimistic spin — favor the fast path.
	BandLow Band = iota
	// BandMid: a steady queue exists. Default-ish delays, less
	// optimism.
	BandMid
	// BandHigh: heavy contention. Long capped delays sized to many
	// critical sections and near-zero optimistic spinning — the
	// paper's "insert a delay and get out of the way".
	BandHigh
)

func (b Band) String() string {
	switch b {
	case BandLow:
		return "low"
	case BandMid:
		return "mid"
	case BandHigh:
		return "high"
	}
	return "unknown"
}

// valuesFor is the band→parameters map shared by both tuners. The
// numbers move the two delay knobs the paper cares about (initial and
// cap of the inserted delay) together with the spin-then-queue lock's
// optimism budget.
func valuesFor(b Band) locks.TuningValues {
	v := locks.DefaultTuningValues()
	switch b {
	case BandLow:
		v.BackoffCap = 1 << 9
		v.SpinAttempts = 16
	case BandMid:
		// defaults
	case BandHigh:
		v.BackoffInitial = 1 << 6
		v.BackoffCap = 1 << 15
		v.SpinAttempts = 1
		v.TicketUnit = 1 << 8
	}
	return v
}

// bandTuner drives locks.Tuning from the controller's mean queue-depth
// estimate. Band edges get hysteresis margins and a dwell so the
// actuator cannot flap.
type bandTuner struct {
	tun   *locks.Tuning
	band  Band
	dwell int
	min   int
}

func newBandTuner(tun *locks.Tuning, dwellTicks int) *bandTuner {
	t := &bandTuner{tun: tun, band: BandMid, min: dwellTicks}
	tun.Set(valuesFor(BandMid))
	return t
}

// tick classifies the mean queue depth into a band. Enter thresholds
// are deliberately offset from exit thresholds (0.5/2.0 up, 0.25/1.0
// down) — a value oscillating on an edge stays put.
func (t *bandTuner) tick(meanQueue float64) {
	t.dwell++
	next := t.band
	switch t.band {
	case BandLow:
		if meanQueue >= 2.0 {
			next = BandHigh
		} else if meanQueue >= 0.5 {
			next = BandMid
		}
	case BandMid:
		if meanQueue >= 2.0 {
			next = BandHigh
		} else if meanQueue <= 0.25 {
			next = BandLow
		}
	case BandHigh:
		if meanQueue <= 0.25 {
			next = BandLow
		} else if meanQueue <= 1.0 {
			next = BandMid
		}
	}
	if next == t.band || t.dwell < t.min {
		return
	}
	t.band = next
	t.dwell = 0
	t.tun.Set(valuesFor(next))
}

// LockTelemetry is an atomic sink for the locks.Hooks.OnAcquired
// callback, shared safely across holders. Wire it with Hook().
type LockTelemetry struct {
	acquires  atomic.Uint64
	waitSumNS atomic.Uint64
}

// Record accumulates one acquisition's wait. Matches the OnAcquired
// signature so it can be installed directly.
func (t *LockTelemetry) Record(waitNS, handoffNS uint64) {
	t.acquires.Add(1)
	t.waitSumNS.Add(waitNS)
}

// Hook returns a locks.Hooks that feeds this sink.
func (t *LockTelemetry) Hook() *locks.Hooks {
	return &locks.Hooks{OnAcquired: t.Record}
}

// Tuner is the standalone lock tuner used where there is no serving
// layer to sample — lockbench's tuned mode. It estimates contention
// from the mean acquisition wait over each window and drives the same
// band map as the controller.
type Tuner struct {
	tel  *LockTelemetry
	tun  *locks.Tuning
	band *bandTuner

	prevAcq  uint64
	prevWait uint64

	// LowWaitNS and HighWaitNS are the mean-wait band edges. The
	// defaults (2µs, 20µs) separate "CAS retried a few times" from
	// "queued behind several critical sections" on current hardware.
	LowWaitNS  float64
	HighWaitNS float64
}

// NewTuner builds a tuner over a telemetry sink and a tuning cell.
func NewTuner(tel *LockTelemetry, tun *locks.Tuning) *Tuner {
	return &Tuner{
		tel:        tel,
		tun:        tun,
		band:       newBandTuner(tun, 2),
		LowWaitNS:  2_000,
		HighWaitNS: 20_000,
	}
}

// Tick closes one window: difference the sink, estimate mean wait, and
// feed the band tuner. The queue-depth scale expected by bandTuner is
// synthesized from the wait bands (0, 1, 4 ≈ low/mid/high centers).
func (t *Tuner) Tick(time.Duration) {
	acq := t.tel.acquires.Load()
	wait := t.tel.waitSumNS.Load()
	dAcq, dWait := acq-t.prevAcq, wait-t.prevWait
	t.prevAcq, t.prevWait = acq, wait
	if dAcq == 0 {
		return
	}
	mean := float64(dWait) / float64(dAcq)
	var proxy float64
	switch {
	case mean < t.LowWaitNS:
		proxy = 0
	case mean < t.HighWaitNS:
		proxy = 1
	default:
		proxy = 4
	}
	t.band.tick(proxy)
}

// Band reports the tuner's current band.
func (t *Tuner) Band() Band { return t.band.band }
