// Package adaptive closes the feedback loop the paper leaves open: it
// watches the cheap telemetry the serving layer already maintains
// (acquire rate, admission-queue depth, shed rate) and picks, per shard,
// the wakeup discipline that telemetry says the offered load deserves —
// broadcast wakeups while contention is low, IQOLB-style single hand-off
// while a queue exists, and the shed-everything degraded mutex when even
// the queue is drowning. The same estimates drive the inserted-delay
// parameters of the native locks/ primitives through locks.Tuning.
//
// The controller is deliberately a plain sampled-data loop: windowed
// EWMA estimators over counter deltas, watermark hysteresis, and a dwell
// time between actuations so policy flips cannot thrash. It knows
// nothing about the serving layer beyond the Plant interface, which
// keeps the import direction service → adaptive → locks.
package adaptive

import (
	"sync"
	"time"

	"iqolb/locks"
)

// Policy names a wakeup discipline a shard can run. The values mirror
// the serving layer's policies; the controller only ever hands them
// back through Plant.SetPolicy.
type Policy string

const (
	// PolicyBroadcast wakes every waiter on release (test&set herd).
	PolicyBroadcast Policy = "broadcast"
	// PolicyHandoff grants to exactly one queued waiter on release.
	PolicyHandoff Policy = "handoff"
	// PolicyDegraded sheds all queueing: plain mutual exclusion with
	// ErrDegraded for everyone who would have waited.
	PolicyDegraded Policy = "degraded"
)

// Sample is one shard's cumulative telemetry at a sampling instant.
// All counter fields are monotonic totals; the controller differences
// consecutive samples itself. Queued is an instantaneous gauge.
type Sample struct {
	// Acquires counts admission attempts (grants + queued + shed).
	Acquires uint64
	// Grants counts leases actually granted.
	Grants uint64
	// QueueFullSheds counts ErrQueueFull rejections.
	QueueFullSheds uint64
	// DegradedSheds counts ErrDegraded rejections.
	DegradedSheds uint64
	// Queued is the number of waiters parked right now (gauge).
	Queued int
	// Policy is the discipline the shard is actually running — the
	// plant's truth, not the controller's last request. A watchdog may
	// degrade a shard behind the controller's back.
	Policy Policy
}

// Plant is the process under control: something with numbered shards
// that can be sampled and re-disciplined. The serving layer implements
// it; tests use a fake.
type Plant interface {
	// NumShards reports how many shards the plant has. Must be stable.
	NumShards() int
	// SampleShard reads one shard's telemetry without disturbing it.
	SampleShard(shard int) Sample
	// SetPolicy migrates one shard to a new discipline. The plant must
	// make the flip atomic with respect to its own grant decisions; the
	// controller only promises dwell spacing between calls.
	SetPolicy(shard int, p Policy) error
}

// Config tunes the controller. The zero value is usable: every field
// defaults to the values below in New.
type Config struct {
	// Interval is the sampling period for Run. Default 25ms.
	Interval time.Duration
	// HighQueue and LowQueue are the queue-depth watermarks (EWMA of
	// the Queued gauge) for the broadcast↔handoff migration, with
	// HighQueue > LowQueue enforcing hysteresis. Defaults 1.5 and 0.25:
	// a shard whose smoothed queue holds above ~1.5 waiters earns a
	// hand-off queue; it must drain below ~0.25 to go back.
	HighQueue float64
	LowQueue  float64
	// DegradeShed is the windowed QueueFullShed fraction (sheds per
	// admission attempt) above which a shard is declared drowning and
	// degraded. Default 0.5. RestoreRate is the fraction of the
	// acquire rate observed at degrade time below which the shard is
	// restored. Default 0.5.
	DegradeShed float64
	RestoreRate float64
	// NoDegrade forbids the controller from choosing PolicyDegraded
	// itself. The serving layer's starvation watchdog degrades on its
	// own either way. Default false (degrade allowed).
	NoDegrade bool
	// DwellTicks is the minimum number of ticks between actuations on
	// one shard — the anti-thrash clamp. Default 4.
	DwellTicks int
	// Alpha is the EWMA smoothing factor in (0, 1]. Default 0.5.
	Alpha float64
	// Tuning, when non-nil, is the locks-layer actuator: the controller
	// maps its aggregate contention estimate onto inserted-delay
	// parameters and writes them here.
	Tuning *locks.Tuning
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.HighQueue <= 0 {
		c.HighQueue = 1.5
	}
	if c.LowQueue <= 0 {
		c.LowQueue = 0.25
	}
	if c.LowQueue >= c.HighQueue {
		c.LowQueue = c.HighQueue / 2
	}
	if c.DegradeShed <= 0 {
		c.DegradeShed = 0.5
	}
	if c.RestoreRate <= 0 {
		c.RestoreRate = 0.5
	}
	if c.DwellTicks <= 0 {
		c.DwellTicks = 4
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	return c
}

// shardLoop is the controller's per-shard estimator and actuator state.
type shardLoop struct {
	prev     Sample
	havePrev bool

	queueEWMA float64 // smoothed Queued gauge
	shedEWMA  float64 // smoothed QueueFullShed fraction per window
	rateEWMA  float64 // smoothed acquires per second

	dwell       int     // ticks since the last actuation on this shard
	degradeRate float64 // rateEWMA captured when we degraded

	migrations uint64
	lastTarget Policy
}

// ShardState is one shard's controller view, exported for snapshots.
type ShardState struct {
	Shard      int     `json:"shard"`
	Policy     Policy  `json:"policy"`
	QueueEWMA  float64 `json:"queue_ewma"`
	ShedEWMA   float64 `json:"shed_ewma"`
	RateEWMA   float64 `json:"acquire_rate_ewma"`
	Migrations uint64  `json:"migrations"`
}

// State is a point-in-time snapshot of the whole controller, embedded
// in the serving layer's snapshots when the controller is enabled.
type State struct {
	Ticks      uint64              `json:"ticks"`
	Migrations uint64              `json:"migrations"`
	TuningBand string              `json:"tuning_band,omitempty"`
	Tuning     *locks.TuningValues `json:"tuning,omitempty"`
	Shards     []ShardState        `json:"shards"`
}

// Controller runs the loop. Tick may be called from a timer goroutine
// while State is read from snapshot paths; a mutex covers both.
type Controller struct {
	cfg   Config
	plant Plant

	mu     sync.Mutex
	loops  []shardLoop
	ticks  uint64
	moves  uint64
	tuner  *bandTuner
	closed chan struct{}
	once   sync.Once
}

// New builds a controller over plant. Zero Config fields take the
// documented defaults; set NoDegrade to keep the controller away from
// the degraded-mutex target.
func New(plant Plant, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:    cfg,
		plant:  plant,
		loops:  make([]shardLoop, plant.NumShards()),
		closed: make(chan struct{}),
	}
	if cfg.Tuning != nil {
		c.tuner = newBandTuner(cfg.Tuning, cfg.DwellTicks)
	}
	return c
}

// Run ticks the controller every cfg.Interval until Close. Blocks;
// callers run it in a goroutine.
func (c *Controller) Run() {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-c.closed:
			return
		case now := <-t.C:
			c.Tick(now.Sub(last))
			last = now
		}
	}
}

// Close stops Run. Safe to call more than once.
func (c *Controller) Close() { c.once.Do(func() { close(c.closed) }) }

// Tick samples every shard, updates the estimators, and actuates where
// the hysteresis and dwell rules allow. dt is the elapsed time since
// the previous tick; tests drive Tick directly with a fixed dt.
func (c *Controller) Tick(dt time.Duration) {
	if dt <= 0 {
		dt = c.cfg.Interval
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	var contention float64
	for i := range c.loops {
		s := c.plant.SampleShard(i)
		c.step(i, s, dt)
		contention += c.loops[i].queueEWMA
	}
	if c.tuner != nil {
		c.tuner.tick(contention / float64(len(c.loops)))
	}
}

// step advances one shard's loop with a fresh sample.
func (c *Controller) step(i int, s Sample, dt time.Duration) {
	l := &c.loops[i]
	a := c.cfg.Alpha
	if !l.havePrev {
		l.prev, l.havePrev = s, true
		l.queueEWMA = float64(s.Queued)
		l.lastTarget = s.Policy
		return
	}
	dAcq := float64(s.Acquires - l.prev.Acquires)
	dShed := float64(s.QueueFullSheds - l.prev.QueueFullSheds)
	shedFrac := 0.0
	if dAcq > 0 {
		shedFrac = dShed / dAcq
	}
	rate := dAcq / dt.Seconds()
	l.queueEWMA = a*float64(s.Queued) + (1-a)*l.queueEWMA
	l.shedEWMA = a*shedFrac + (1-a)*l.shedEWMA
	l.rateEWMA = a*rate + (1-a)*l.rateEWMA
	l.prev = s
	l.dwell++

	if l.dwell < c.cfg.DwellTicks {
		return
	}
	target := c.decide(l, s.Policy)
	if target == s.Policy || target == "" {
		return
	}
	if err := c.plant.SetPolicy(i, target); err != nil {
		return // plant refused (e.g. closing); retry next dwell window
	}
	if target == PolicyDegraded {
		l.degradeRate = l.rateEWMA
	}
	l.lastTarget = target
	l.migrations++
	c.moves++
	l.dwell = 0
}

// decide maps one shard's estimators onto a target policy, given the
// discipline the shard is running right now. Watermark pairs give each
// transition hysteresis; returning cur means "stay".
func (c *Controller) decide(l *shardLoop, cur Policy) Policy {
	if cur == PolicyDegraded {
		// Restore only once offered load has genuinely backed off from
		// what drowned us; the flushed queue makes broadcast the safe
		// landing (nobody is parked, so there is no herd to create).
		if l.rateEWMA < c.cfg.RestoreRate*l.degradeRate {
			return PolicyBroadcast
		}
		return cur
	}
	if !c.cfg.NoDegrade && l.shedEWMA > c.cfg.DegradeShed {
		return PolicyDegraded
	}
	switch cur {
	case PolicyBroadcast:
		if l.queueEWMA >= c.cfg.HighQueue {
			return PolicyHandoff
		}
	case PolicyHandoff:
		if l.queueEWMA <= c.cfg.LowQueue {
			return PolicyBroadcast
		}
	}
	return cur
}

// State snapshots the controller.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{
		Ticks:      c.ticks,
		Migrations: c.moves,
		Shards:     make([]ShardState, len(c.loops)),
	}
	for i := range c.loops {
		l := &c.loops[i]
		st.Shards[i] = ShardState{
			Shard:      i,
			Policy:     l.prev.Policy,
			QueueEWMA:  l.queueEWMA,
			ShedEWMA:   l.shedEWMA,
			RateEWMA:   l.rateEWMA,
			Migrations: l.migrations,
		}
	}
	if c.tuner != nil {
		v := c.tuner.tun.Values()
		st.Tuning = &v
		st.TuningBand = c.tuner.band.String()
	}
	return st
}
