package adaptive

import (
	"sync"
	"testing"
	"time"

	"iqolb/locks"
)

// fakePlant is a scriptable plant: tests mutate the per-shard samples
// between ticks and inspect the SetPolicy calls the controller made.
type fakePlant struct {
	mu     sync.Mutex
	shards []Sample
	sets   []struct {
		shard int
		pol   Policy
	}
}

func newFakePlant(n int) *fakePlant {
	p := &fakePlant{shards: make([]Sample, n)}
	for i := range p.shards {
		p.shards[i].Policy = PolicyBroadcast
	}
	return p
}

func (p *fakePlant) NumShards() int { p.mu.Lock(); defer p.mu.Unlock(); return len(p.shards) }

func (p *fakePlant) SampleShard(i int) Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shards[i]
}

func (p *fakePlant) SetPolicy(i int, pol Policy) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shards[i].Policy = pol
	p.sets = append(p.sets, struct {
		shard int
		pol   Policy
	}{i, pol})
	return nil
}

func (p *fakePlant) load(i int, acq, sheds uint64, queued int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shards[i].Acquires += acq
	p.shards[i].Grants += acq - sheds
	p.shards[i].QueueFullSheds += sheds
	p.shards[i].Queued = queued
}

func (p *fakePlant) policy(i int) Policy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shards[i].Policy
}

func (p *fakePlant) setCount() int { p.mu.Lock(); defer p.mu.Unlock(); return len(p.sets) }

const dt = 100 * time.Millisecond

func TestMigratesOnQueueDepth(t *testing.T) {
	p := newFakePlant(2)
	c := New(p, Config{DwellTicks: 2})

	// Sustained queue on shard 0 only; shard 1 stays idle.
	for i := 0; i < 8; i++ {
		p.load(0, 100, 0, 6)
		p.load(1, 5, 0, 0)
		c.Tick(dt)
	}
	if got := p.policy(0); got != PolicyHandoff {
		t.Fatalf("hot shard policy = %q, want handoff", got)
	}
	if got := p.policy(1); got != PolicyBroadcast {
		t.Fatalf("idle shard policy = %q, want broadcast (untouched)", got)
	}

	// Load drains: the queue estimate must fall through LowQueue before
	// the controller goes back to broadcast.
	for i := 0; i < 12; i++ {
		p.load(0, 10, 0, 0)
		c.Tick(dt)
	}
	if got := p.policy(0); got != PolicyBroadcast {
		t.Fatalf("drained shard policy = %q, want broadcast", got)
	}
}

func TestHysteresisHoldsBetweenWatermarks(t *testing.T) {
	p := newFakePlant(1)
	c := New(p, Config{DwellTicks: 1, HighQueue: 4, LowQueue: 1})

	// Queue depth parked between the watermarks: no migration, ever.
	for i := 0; i < 20; i++ {
		p.load(0, 50, 0, 2)
		c.Tick(dt)
	}
	if n := p.setCount(); n != 0 {
		t.Fatalf("controller actuated %d times inside the hysteresis band", n)
	}
}

func TestDwellBoundsThrash(t *testing.T) {
	p := newFakePlant(1)
	c := New(p, Config{DwellTicks: 4})

	// Adversarial oscillation across both watermarks every tick.
	for i := 0; i < 40; i++ {
		q := 0
		if i%2 == 0 {
			q = 8
		}
		p.load(0, 50, 0, q)
		c.Tick(dt)
	}
	// At most one actuation per dwell window.
	if n := p.setCount(); n > 40/4 {
		t.Fatalf("dwell failed to bound actuations: %d flips in 40 ticks", n)
	}
}

func TestDegradeAndRestore(t *testing.T) {
	p := newFakePlant(1)
	c := New(p, Config{DwellTicks: 2})

	// Queue overflow dominates admissions: most attempts shed.
	for i := 0; i < 8; i++ {
		p.load(0, 100, 90, 8)
		c.Tick(dt)
	}
	if got := p.policy(0); got != PolicyDegraded {
		t.Fatalf("drowning shard policy = %q, want degraded", got)
	}

	// Offered load collapses well below the rate that drowned us.
	for i := 0; i < 12; i++ {
		p.load(0, 2, 0, 0)
		c.Tick(dt)
	}
	if got := p.policy(0); got != PolicyBroadcast {
		t.Fatalf("recovered shard policy = %q, want broadcast restore", got)
	}
}

func TestDegradeDisabled(t *testing.T) {
	p := newFakePlant(1)
	c := New(p, Config{DwellTicks: 1, NoDegrade: true})

	for i := 0; i < 10; i++ {
		p.load(0, 100, 95, 8)
		c.Tick(dt)
	}
	if got := p.policy(0); got == PolicyDegraded {
		t.Fatalf("controller degraded with AllowDegrade=false")
	}
}

func TestRespectsExternalPolicyChanges(t *testing.T) {
	p := newFakePlant(1)
	c := New(p, Config{DwellTicks: 2})

	// A watchdog degrades the shard behind the controller's back while
	// traffic is heavy; the controller must treat the plant's reported
	// policy as truth and hold degraded until load backs off — not
	// immediately "fix" the policy back.
	for i := 0; i < 4; i++ {
		p.load(0, 100, 0, 6)
		c.Tick(dt)
	}
	p.mu.Lock()
	p.shards[0].Policy = PolicyDegraded
	p.mu.Unlock()
	for i := 0; i < 3; i++ {
		p.load(0, 100, 0, 0)
		c.Tick(dt)
	}
	if got := p.policy(0); got != PolicyDegraded {
		t.Fatalf("controller overrode external degrade: policy = %q", got)
	}
}

func TestControllerState(t *testing.T) {
	p := newFakePlant(2)
	tun := locks.NewTuning()
	c := New(p, Config{DwellTicks: 2, Tuning: tun})
	for i := 0; i < 6; i++ {
		p.load(0, 100, 0, 6)
		c.Tick(dt)
	}
	st := c.State()
	if st.Ticks != 6 {
		t.Fatalf("Ticks = %d, want 6", st.Ticks)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("len(Shards) = %d, want 2", len(st.Shards))
	}
	if st.Shards[0].QueueEWMA <= st.Shards[1].QueueEWMA {
		t.Fatalf("hot shard EWMA %v not above idle %v",
			st.Shards[0].QueueEWMA, st.Shards[1].QueueEWMA)
	}
	if st.Migrations == 0 || st.Shards[0].Migrations == 0 {
		t.Fatalf("migrations not counted: %+v", st)
	}
	if st.Tuning == nil || st.TuningBand == "" {
		t.Fatalf("tuning state missing: %+v", st)
	}
}

func TestBandTunerActuatesLocks(t *testing.T) {
	tun := locks.NewTuning()
	p := newFakePlant(1)
	c := New(p, Config{DwellTicks: 1, Tuning: tun})

	// Heavy sustained queue: tuner must move to the high band — longer
	// inserted delays, near-zero optimistic spinning.
	for i := 0; i < 10; i++ {
		p.load(0, 200, 0, 10)
		c.Tick(dt)
	}
	v := tun.Values()
	want := valuesFor(BandHigh)
	if v != want {
		t.Fatalf("high-contention tuning = %+v, want %+v", v, want)
	}

	// Contention vanishes: back down (through mid) to the low band.
	for i := 0; i < 10; i++ {
		p.load(0, 5, 0, 0)
		c.Tick(dt)
	}
	if v := tun.Values(); v != valuesFor(BandLow) {
		t.Fatalf("idle tuning = %+v, want low band %+v", v, valuesFor(BandLow))
	}
}

func TestStandaloneTunerWaitBands(t *testing.T) {
	tel := &LockTelemetry{}
	tun := locks.NewTuning()
	tr := NewTuner(tel, tun)

	// Long mean waits: high band.
	for i := 0; i < 6; i++ {
		for j := 0; j < 100; j++ {
			tel.Record(50_000, 1000)
		}
		tr.Tick(dt)
	}
	if tr.Band() != BandHigh {
		t.Fatalf("band after long waits = %v, want high", tr.Band())
	}
	// Short waits: back down to low.
	for i := 0; i < 8; i++ {
		for j := 0; j < 100; j++ {
			tel.Record(100, 0)
		}
		tr.Tick(dt)
	}
	if tr.Band() != BandLow {
		t.Fatalf("band after short waits = %v, want low", tr.Band())
	}
	if v := tun.Values(); v != valuesFor(BandLow) {
		t.Fatalf("tuning = %+v, want low band", v)
	}
}

func TestTelemetryHook(t *testing.T) {
	tel := &LockTelemetry{}
	l, err := locks.New(locks.KindTTS, locks.WithHooks(tel.Hook()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		l.Lock()
		l.Unlock()
	}
	if got := tel.acquires.Load(); got != 5 {
		t.Fatalf("telemetry acquires = %d, want 5", got)
	}
}
