package workload

import (
	"fmt"

	"iqolb/internal/isa"
	"iqolb/internal/mem"
)

// Spec is a named benchmark: a synchronization signature standing in for
// one of the paper's SPLASH-2 applications (Table 2), or a microbenchmark.
type Spec struct {
	Name        string
	Description string
	// PaperInput records the input the paper ran (Table 2), for the
	// documentation trail.
	PaperInput string
	Params     Params
}

// Specs returns the Table 2 benchmark set in the paper's order. The
// signatures (locks, contention skew, critical-section and think times)
// follow the published characterizations of each application:
//
//   - Barnes: per-cell tree locks — many locks, little contention, heavy
//     computation between synchronizations.
//   - Ocean: barrier-dominated grid solver with a few global reductions.
//   - Radiosity: task queues with skewed lock traffic and short tasks —
//     lock-sensitive.
//   - Raytrace: one hot work-queue lock with tiny critical sections — the
//     most lock-bound of the set.
//   - Water-nsquared: per-molecule locks — hundreds of locks, long
//     computation, nearly uncontended.
func Specs() []Spec {
	return []Spec{
		{
			Name:        "barnes",
			Description: "Barnes-Hut N-body: per-cell locks, low contention, compute-heavy",
			PaperInput:  "2,048 bodies, 11 iter.",
			Params: Params{
				Iterations: 4, TotalCS: 512, Locks: 64, HotPct: 0,
				CSWork: 12, ThinkWork: 600, ThinkJitter: 250,
				PrivateLines: 8, PrivateStream: true, BarriersPerIter: 2,
			},
		},
		{
			Name:        "ocean",
			Description: "Ocean (contiguous): barrier-dominated solver, occasional global lock",
			PaperInput:  "130x130, 2 days",
			Params: Params{
				Iterations: 6, TotalCS: 128, Locks: 1, HotPct: 100,
				CSWork: 20, ThinkWork: 1500, ThinkJitter: 500,
				PrivateLines: 10, PrivateStream: true, BarriersPerIter: 3,
			},
		},
		{
			Name:        "radiosity",
			Description: "Radiosity: task queues, skewed lock traffic, short tasks",
			PaperInput:  "room, batch mode",
			Params: Params{
				Iterations: 3, TotalCS: 768, Locks: 8, HotPct: 60,
				CSWork: 25, ThinkWork: 1400, ThinkJitter: 400,
				PrivateLines: 2, BarriersPerIter: 1,
			},
		},
		{
			Name:        "raytrace",
			Description: "Raytrace: one hot work-queue lock, tiny critical sections",
			PaperInput:  "car",
			Params: Params{
				Iterations: 3, TotalCS: 768, Locks: 1, HotPct: 100,
				CSWork: 8, ThinkWork: 1400, ThinkJitter: 200,
				PrivateLines: 2, BarriersPerIter: 1,
			},
		},
		{
			Name:        "water-nsq",
			Description: "Water-nsquared: per-molecule locks, very low contention",
			PaperInput:  "512 mols, 3 iter.",
			Params: Params{
				Iterations: 3, TotalCS: 256, Locks: 128, HotPct: 0,
				CSWork: 15, ThinkWork: 1200, ThinkJitter: 300,
				PrivateLines: 3, PrivateStream: true, BarriersPerIter: 1,
			},
		},
	}
}

// MicroSpecs returns the microbenchmarks used by the sweeps and figures.
func MicroSpecs() []Spec {
	return []Spec{
		{
			Name:        "nullcs",
			Description: "single lock, empty critical section, zero think time",
			Params: Params{
				Iterations: 1, TotalCS: 1024, Locks: 1, HotPct: 100,
				CSWork: 0, ThinkWork: 0,
			},
		},
		{
			Name:        "hotlock",
			Description: "single hot lock, short critical section, moderate think",
			Params: Params{
				Iterations: 1, TotalCS: 1024, Locks: 1, HotPct: 100,
				CSWork: 10, ThinkWork: 300, ThinkJitter: 100,
			},
		},
		{
			Name:        "multilock",
			Description: "16 uniformly chosen locks, moderate think",
			Params: Params{
				Iterations: 1, TotalCS: 1024, Locks: 16, HotPct: 0,
				CSWork: 10, ThinkWork: 300, ThinkJitter: 100,
			},
		},
	}
}

// ByName finds a benchmark or microbenchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range append(Specs(), MicroSpecs()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// CounterAddr is the shared Fetch&Add target used by GenerateFetchAdd.
const CounterAddr = DataBase

// GenerateFetchAdd builds the lock-free Fetch&Add kernel (the paper's
// Fetch&Phi case, Figures 2 and 3): every processor performs totalOps/procs
// atomic increments of one shared counter with think cycles between them.
func GenerateFetchAdd(totalOps int, think int64, procs int) (*Build, error) {
	if procs < 1 || totalOps%procs != 0 {
		return nil, fmt.Errorf("workload: totalOps %d not divisible by %d procs", totalOps, procs)
	}
	b := isa.NewBuilder()
	b.Li(isa.A1, int64(CounterAddr)).
		Li(isa.S0, 0).
		Li(isa.S1, int64(totalOps/procs)).
		Label("loop")
	if think > 0 {
		b.Work(think)
	}
	l := b.Scope("fa")
	b.Label(l("retry")).
		Ll(isa.T1, 0, isa.A1).
		Addi(isa.T1, isa.T1, 1).
		Sc(isa.T1, 0, isa.A1).
		Beq(isa.T1, isa.R0, l("retry")).
		Addi(isa.S0, isa.S0, 1).
		Blt(isa.S0, isa.S1, "loop").
		Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Build{Program: prog, ExpectedCS: uint64(totalOps)}, nil
}

// VerifyFetchAdd checks the counter after a GenerateFetchAdd run.
func VerifyFetchAdd(expected uint64, peek func(mem.Addr) uint64) error {
	if got := peek(CounterAddr); got != expected {
		return fmt.Errorf("workload: fetch&add counter = %d, want %d (lost updates)", got, expected)
	}
	return nil
}

// GenerateFigureRMW builds the tiny staggered Fetch&Add kernel whose bus
// trace reproduces Figure 2 (baseline) and Figure 3 (delayed response):
// each processor performs one atomic increment, starting a few cycles
// apart so their requests overlap.
func GenerateFigureRMW(stagger int64) (*Build, error) {
	b := isa.NewBuilder()
	b.Li(isa.A1, int64(CounterAddr)).
		Cpuid(isa.T0).
		Li(isa.T2, stagger).
		Mul(isa.T0, isa.T0, isa.T2).
		Workr(isa.T0)
	l := b.Scope("fa")
	b.Label(l("retry")).
		Ll(isa.T1, 0, isa.A1).
		Addi(isa.T1, isa.T1, 1).
		Sc(isa.T1, 0, isa.A1).
		Beq(isa.T1, isa.R0, l("retry")).
		Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Build{Program: prog}, nil
}

// GenerateFigureLock builds the tiny lock kernel whose trace reproduces
// Figure 4 (IQOLB): each processor acquires the same TTS lock once,
// executes a critical section, and releases, with staggered starts.
func GenerateFigureLock(stagger, csWork int64) (*Build, error) {
	b := isa.NewBuilder()
	b.Li(isa.A0, int64(LockBase)).
		Cpuid(isa.T0).
		Li(isa.T2, stagger).
		Mul(isa.T0, isa.T0, isa.T2).
		Workr(isa.T0)
	l := b.Scope("acq")
	b.Label(l("spin")).
		Ll(isa.T1, 0, isa.A0).
		Bne(isa.T1, isa.R0, l("spin")).
		Li(isa.T0, 1).
		Sc(isa.T0, 0, isa.A0).
		Beq(isa.T0, isa.R0, l("spin")).
		Work(csWork).
		Sw(isa.R0, 0, isa.A0). // release
		Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Build{Program: prog, Locks: []mem.Addr{LockBase}}, nil
}
