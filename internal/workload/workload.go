// Package workload generates the benchmark kernels of the evaluation.
//
// The paper runs five SPLASH-2 applications (Table 2). As documented in
// DESIGN.md, this reproduction substitutes synthetic kernels that replicate
// each application's *synchronization signature* — the number of locks, the
// contention distribution over them, critical-section length, the
// compute-to-synchronization ratio, and barrier frequency — because Table 3
// measures sensitivity to lock-primitive performance, and that sensitivity
// is a function of the signature rather than of the numerical kernels.
//
// Every kernel increments a per-lock protected counter inside each critical
// section, so each run doubles as an end-to-end mutual-exclusion check: the
// counters must sum to the total number of critical sections executed.
package workload

import (
	"fmt"

	"iqolb/internal/isa"
	"iqolb/internal/mem"
	"iqolb/internal/synclib"
)

// Memory-layout bases. Each lock and each protected-data block occupies a
// full cache line; per-CPU private arrays are 64 KB apart.
const (
	LockBase    mem.Addr = 0x10_0000
	DataBase    mem.Addr = 0x20_0000
	QNodeBase   mem.Addr = 0x30_0000
	PrivateBase mem.Addr = 0x100_0000
	// PrivateStep spaces per-CPU private regions; PrivateWindow is the
	// streaming wrap size (must exceed the 512-KB L2 so streamed touches
	// keep missing).
	PrivateStep   = 0x10_0000
	PrivateWindow = 0x10_0000
)

// Params is the synchronization signature of a kernel.
type Params struct {
	// Iterations is the number of barrier-separated phases.
	Iterations int
	// TotalCS is the number of critical sections executed per iteration
	// across all processors (divided evenly; must be divisible by the
	// processor count).
	TotalCS int
	// Locks is the number of distinct locks.
	Locks int
	// HotPct is the percentage (0–100) of acquisitions that target lock
	// zero; the remainder spread uniformly over all locks. 100 with
	// Locks==1 models a single hot task-queue lock.
	HotPct int
	// CSWork is the computation inside the critical section, in cycles.
	CSWork int64
	// CSWrites is the number of protected-counter increments per critical
	// section (default 1), spread across CSWork — multi-write sections
	// expose mid-section interference from readers, the Generalized IQOLB
	// target. The counters then sum to Iterations*TotalCS*CSWrites.
	CSWrites int
	// ThinkWork is the private computation between critical sections.
	ThinkWork int64
	// ThinkJitter adds uniform random [0, ThinkJitter) cycles to each
	// think period.
	ThinkJitter int64
	// PrivateLines touches this many private cache lines per think
	// period (realistic background cache traffic).
	PrivateLines int
	// PrivateStream makes the private-array pointer advance persistently
	// through a window larger than the L2 (wrapping), so every touch is
	// a capacity miss: the memory-bandwidth-bound behaviour of the big
	// SPLASH-2 grids. Off, the same lines are re-touched and hit.
	PrivateStream bool
	// BarriersPerIter adds extra barrier episodes per iteration beyond
	// the phase-ending one.
	BarriersPerIter int
	// Collocate places the protected counter in the lock's own cache
	// line (the QOLB collocation optimization; off for Table 3).
	Collocate bool
	// LocksPerLine packs several locks into one cache line (false
	// sharing), which makes independent lock holders write each other's
	// delayed lines — the stressor for the queue-retention vs. breakdown
	// study. Zero or one means one lock per line.
	LocksPerLine int

	// PollProcs dedicates the highest-numbered processors to polling the
	// protected data with plain loads instead of running critical
	// sections — the reader population that motivates Generalized IQOLB
	// (§6): under plain modes their reads downgrade the writer's line
	// every section. TotalCS then divides over the remaining workers.
	PollProcs int
	// PollReads is each poller's read count per iteration.
	PollReads int
	// PollThink is the pollers' pause between reads, in cycles.
	PollThink int64
}

// Validate rejects unusable signatures.
func (p Params) Validate() error {
	if p.Iterations < 1 || p.TotalCS < 0 || p.Locks < 1 {
		return fmt.Errorf("workload: bad params %+v", p)
	}
	if p.HotPct < 0 || p.HotPct > 100 {
		return fmt.Errorf("workload: HotPct %d out of range", p.HotPct)
	}
	if p.LocksPerLine > mem.WordsPerLine {
		return fmt.Errorf("workload: %d locks per %d-byte line do not fit", p.LocksPerLine, mem.LineSize)
	}
	if p.Collocate && p.LocksPerLine > 1 {
		return fmt.Errorf("workload: collocation and packed locks conflict on the lock line")
	}
	return nil
}

func (p Params) csWrites() int {
	if p.CSWrites < 1 {
		return 1
	}
	return p.CSWrites
}

func (p Params) locksPerLine() int {
	if p.LocksPerLine < 1 {
		return 1
	}
	return p.LocksPerLine
}

// LockAddr returns the address of lock i under this signature's layout.
func (p Params) LockAddr(i int) mem.Addr {
	l := p.locksPerLine()
	return LockBase + mem.Addr(i/l)*mem.LineSize + mem.Addr(i%l)*mem.WordSize
}

// DataAddr returns the protected counter's address for lock i.
func (p Params) DataAddr(i int) mem.Addr {
	if p.Collocate {
		return p.LockAddr(i) + mem.WordSize
	}
	return DataBase + mem.Addr(i)*mem.LineSize
}

// Build is a ready-to-run kernel.
type Build struct {
	Program *isa.Program
	// Locks lists every lock address (registered with the fabric for
	// hand-off statistics).
	Locks []mem.Addr
	// ExpectedCS is the total critical-section count the protected
	// counters must sum to after the run.
	ExpectedCS uint64
}

// Generate emits the kernel for the given primitive and processor count.
func Generate(p Params, prim synclib.Primitive, procs int) (*Build, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("workload: procs = %d", procs)
	}
	workers := procs - p.PollProcs
	if p.PollProcs < 0 || workers < 1 {
		return nil, fmt.Errorf("workload: %d pollers leave no workers among %d processors", p.PollProcs, procs)
	}
	if p.TotalCS%workers != 0 {
		return nil, fmt.Errorf("workload: TotalCS %d not divisible by %d workers", p.TotalCS, workers)
	}
	lk, err := synclib.New(prim, uint64(QNodeBase))
	if err != nil {
		return nil, err
	}
	if prim == synclib.PrimTicket && (p.Collocate || p.locksPerLine() > 1) {
		return nil, fmt.Errorf("workload: ticket lock uses word 1 after the lock word; collocation/packing unsupported")
	}

	csPerProc := p.TotalCS / workers
	b := isa.NewBuilder()

	// Register map (callee-saved, stable across the whole kernel):
	//   s0 iteration counter     s1 iteration bound
	//   s2 CS counter            s3 CS bound
	//   s4 private array cursor  s5 chosen lock index
	//   s7 private array base    a2 lock base      a3 data base
	b.Li(isa.S1, int64(p.Iterations)).
		Li(isa.S3, int64(csPerProc)).
		Li(isa.A2, int64(LockBase)).
		Li(isa.A3, int64(DataBase)).
		Cpuid(isa.T0).
		Li(isa.S7, int64(PrivateBase)).
		Li(isa.T1, PrivateStep).
		Mul(isa.T0, isa.T0, isa.T1).
		Add(isa.S7, isa.S7, isa.T0).
		Mov(isa.S4, isa.S7).
		Li(isa.S0, 0)
	const roleReg = isa.Reg(24) // 1 = worker, 0 = poller
	if p.PollProcs > 0 {
		b.Cpuid(isa.T0).
			Li(isa.T1, int64(workers)).
			Slt(roleReg, isa.T0, isa.T1)
	}

	b.Label("iter")
	b.Li(isa.S2, 0)
	if p.PollProcs > 0 {
		b.Beq(roleReg, isa.R0, "poll")
	}
	if csPerProc > 0 {
		b.Label("cs")

		// --- think: private compute plus background cache traffic ---
		if p.ThinkWork > 0 {
			b.Work(p.ThinkWork)
		}
		if p.ThinkJitter > 0 {
			b.Rand(isa.T0, p.ThinkJitter).
				Workr(isa.T0)
		}
		if p.PrivateLines > 0 {
			l := b.Scope("touch")
			if p.PrivateStream {
				// Advance the persistent cursor; wrap past the window.
				b.Li(isa.T6, int64(p.PrivateLines)).
					Label(l("loop")).
					Lw(isa.T7, 0, isa.S4).
					Addi(isa.T7, isa.T7, 1).
					Sw(isa.T7, 0, isa.S4).
					Addi(isa.S4, isa.S4, mem.LineSize).
					Addi(isa.T6, isa.T6, -1).
					Bne(isa.T6, isa.R0, l("loop")).
					Addi(isa.T5, isa.S7, PrivateWindow).
					Blt(isa.S4, isa.T5, l("nowrap")).
					Mov(isa.S4, isa.S7).
					Label(l("nowrap"))
			} else {
				b.Mov(isa.T5, isa.S7).
					Li(isa.T6, int64(p.PrivateLines)).
					Label(l("loop")).
					Lw(isa.T7, 0, isa.T5).
					Addi(isa.T7, isa.T7, 1).
					Sw(isa.T7, 0, isa.T5).
					Addi(isa.T5, isa.T5, mem.LineSize).
					Addi(isa.T6, isa.T6, -1).
					Bne(isa.T6, isa.R0, l("loop"))
			}
		}

		// --- choose a lock (s5 = index) ---
		emitLockChoice(b, p)

		// a0 = lock address, a1 = protected data address.
		if lpl := p.locksPerLine(); lpl == 1 {
			b.Sll(isa.T0, isa.S5, 6).
				Add(isa.A0, isa.A2, isa.T0)
		} else {
			b.Li(isa.T1, int64(lpl)).
				Div(isa.T0, isa.S5, isa.T1). // line index
				Rem(isa.T2, isa.S5, isa.T1). // slot within line
				Sll(isa.T0, isa.T0, 6).
				Sll(isa.T2, isa.T2, 3).
				Add(isa.A0, isa.A2, isa.T0).
				Add(isa.A0, isa.A0, isa.T2)
		}
		if p.Collocate {
			b.Addi(isa.A1, isa.A0, mem.WordSize)
		} else {
			b.Sll(isa.T0, isa.S5, 6).
				Add(isa.A1, isa.A3, isa.T0)
		}

		// --- critical section ---
		lk.Acquire(b, isa.A0)
		writes := p.csWrites()
		slice := p.CSWork / int64(writes)
		for w := 0; w < writes; w++ {
			b.Lw(isa.T4, 0, isa.A1).
				Addi(isa.T4, isa.T4, 1).
				Sw(isa.T4, 0, isa.A1)
			if slice > 0 {
				b.Work(slice)
			}
		}
		lk.Release(b, isa.A0)

		b.Addi(isa.S2, isa.S2, 1).
			Blt(isa.S2, isa.S3, "cs")
	}
	if p.PollProcs > 0 {
		// Pollers read the protected data with plain loads — the reader
		// population whose GETS traffic Generalized IQOLB answers with
		// tear-offs instead of downgrading the writer.
		b.J("join").
			Label("poll").
			Li(isa.T6, int64(p.PollReads))
		if p.PollReads > 0 {
			b.Label("pollloop")
			emitLockChoice(b, p)
			if p.Collocate {
				// Poll the lock line's data word.
				b.Sll(isa.T0, isa.S5, 6).
					Add(isa.T5, isa.A2, isa.T0).
					Addi(isa.T5, isa.T5, mem.WordSize)
			} else {
				b.Sll(isa.T0, isa.S5, 6).
					Add(isa.T5, isa.A3, isa.T0)
			}
			b.Lw(isa.T7, 0, isa.T5)
			if p.PollThink > 0 {
				b.Work(p.PollThink)
			}
			b.Addi(isa.T6, isa.T6, -1).
				Bne(isa.T6, isa.R0, "pollloop")
		}
		b.Label("join")
	}

	// --- barriers ---
	// Episode ids pack (iteration implicit via reuse, site index explicit):
	// reusing an id across iterations is safe because an episode only
	// releases when all processors arrive.
	for extra := 0; extra < p.BarriersPerIter; extra++ {
		b.Bar(int64(2 + extra))
	}
	b.Bar(1)

	b.Addi(isa.S0, isa.S0, 1).
		Blt(isa.S0, isa.S1, "iter").
		Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	locks := make([]mem.Addr, p.Locks)
	for i := range locks {
		locks[i] = p.LockAddr(i)
	}
	return &Build{
		Program:    prog,
		Locks:      locks,
		ExpectedCS: uint64(p.Iterations) * uint64(p.TotalCS) * uint64(p.csWrites()),
	}, nil
}

// PickLock chooses a lock (or resource) index from the signature's
// contention distribution: HotPct of choices hit index zero, the rest
// spread uniformly. rand must return a uniform value in [0, n). The
// draw sequence (at most two draws) is fixed, so seeded callers replay
// identically; it deliberately mirrors emitLockChoice, and the native
// harnesses (lockbench, the service load generator) share it so every
// layer of the study samples the same distribution.
func (p Params) PickLock(rand func(n int64) int64) int {
	switch {
	case p.Locks == 1 || p.HotPct >= 100:
		return 0
	case p.HotPct == 0:
		return int(rand(int64(p.Locks)))
	default:
		if rand(100) < int64(p.HotPct) {
			return 0
		}
		return int(rand(int64(p.Locks)))
	}
}

// emitLockChoice leaves the chosen lock index in S5.
func emitLockChoice(b *isa.Builder, p Params) {
	switch {
	case p.Locks == 1:
		b.Li(isa.S5, 0)
	case p.HotPct == 0:
		b.Rand(isa.S5, int64(p.Locks))
	case p.HotPct >= 100:
		b.Li(isa.S5, 0)
	default:
		l := b.Scope("pick")
		b.Rand(isa.T0, 100).
			Li(isa.S5, 0).
			Slti(isa.T1, isa.T0, int64(p.HotPct)).
			Bne(isa.T1, isa.R0, l("done")).
			Rand(isa.S5, int64(p.Locks)).
			Label(l("done"))
	}
}

// VerifyCounters checks that the protected counters account for every
// critical section executed — the end-to-end mutual-exclusion invariant.
func (bld *Build) VerifyCounters(p Params, peek func(mem.Addr) uint64) error {
	var sum uint64
	for i := 0; i < p.Locks; i++ {
		sum += peek(p.DataAddr(i))
	}
	if sum != bld.ExpectedCS {
		return fmt.Errorf("workload: protected counters sum to %d, want %d (mutual exclusion violated or work lost)",
			sum, bld.ExpectedCS)
	}
	return nil
}
