package workload

import (
	"testing"
	"testing/quick"

	"iqolb/internal/core"
	"iqolb/internal/machine"
	"iqolb/internal/synclib"
)

// Property: for ANY small random synchronization signature, under ANY
// hardware mode, the protected counters account for exactly every critical
// section — the machine never loses or duplicates work. This is the
// broadest end-to-end correctness net in the suite.
func TestPropertyRandomSignaturesExact(t *testing.T) {
	modes := []core.Mode{core.ModeBaseline, core.ModeAggressive, core.ModeDelayed, core.ModeIQOLB}
	prims := []synclib.Primitive{synclib.PrimTTS, synclib.PrimTicket, synclib.PrimMCS, synclib.PrimQOLB}
	count := 0
	f := func(seed uint32) bool {
		count++
		rng := seed
		next := func(n uint32) int {
			rng = rng*1664525 + 1013904223
			return int(rng % n)
		}
		procs := 2 + next(4) // 2..5
		p := Params{
			Iterations:      1 + next(2),      // 1..2
			Locks:           1 + next(5),      // 1..5
			HotPct:          next(101),        // 0..100
			CSWork:          int64(next(40)),  // 0..39
			ThinkWork:       int64(next(120)), // 0..119
			ThinkJitter:     int64(next(60)),  // 0..59
			PrivateLines:    next(3),          // 0..2
			PrivateStream:   next(2) == 1,
			BarriersPerIter: next(2),
			CSWrites:        1 + next(3), // 1..3
			Collocate:       next(2) == 1,
			LocksPerLine:    1 + next(2), // 1..2
		}
		if p.Collocate && p.LocksPerLine > 1 {
			p.LocksPerLine = 1
		}
		p.TotalCS = procs * (1 + next(8)) // divisible by procs, 1..8 per proc
		prim := prims[next(uint32(len(prims)))]
		if prim == synclib.PrimTicket && (p.Collocate || p.LocksPerLine > 1) {
			prim = synclib.PrimTTS
		}
		mode := modes[next(uint32(len(modes)))]
		if prim == synclib.PrimQOLB {
			mode = core.ModeBaseline
		}
		retention := next(2) == 1
		tearOff := next(2) == 1
		generalized := next(2) == 1

		bld, err := Generate(p, prim, procs)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		cfg := machine.DefaultConfig(procs, mode)
		cfg.Core.QueueRetention = retention
		cfg.Core.TearOff = tearOff
		cfg.Core.GeneralizedData = generalized
		cfg.CycleLimit = 200_000_000
		m, err := machine.New(cfg, bld.Program, nil)
		if err != nil {
			t.Logf("seed %d: new: %v", seed, err)
			return false
		}
		for _, l := range bld.Locks {
			m.RegisterLockAddr(l)
		}
		res, err := m.Run()
		if err != nil || res.HitLimit {
			t.Logf("seed %d (%s/%s ret=%v tear=%v gen=%v procs=%d %+v): run: %v hit=%v",
				seed, prim, mode, retention, tearOff, generalized, procs, p, err, res.HitLimit)
			return false
		}
		if err := bld.VerifyCounters(p, m.Peek); err != nil {
			t.Logf("seed %d (%s/%s ret=%v tear=%v gen=%v procs=%d %+v): %v",
				seed, prim, mode, retention, tearOff, generalized, procs, p, err)
			return false
		}
		return true
	}
	n := 60
	if testing.Short() {
		n = 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("property never exercised")
	}
}
