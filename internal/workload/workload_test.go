package workload

import (
	"testing"

	"iqolb/internal/core"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
	"iqolb/internal/synclib"
)

func runKernel(t *testing.T, p Params, prim synclib.Primitive, mode core.Mode, procs int) (*machine.Machine, *Build, machine.Result) {
	t.Helper()
	bld, err := Generate(p, prim, procs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(procs, mode)
	cfg.CycleLimit = 200_000_000
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("hit cycle limit")
	}
	return m, bld, res
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Iterations: 0, TotalCS: 1, Locks: 1},
		{Iterations: 1, TotalCS: 1, Locks: 0},
		{Iterations: 1, TotalCS: 1, Locks: 1, HotPct: 101},
		{Iterations: 1, TotalCS: -1, Locks: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
}

func TestGenerateRejectsIndivisibleWork(t *testing.T) {
	p := Params{Iterations: 1, TotalCS: 10, Locks: 1}
	if _, err := Generate(p, synclib.PrimTTS, 3); err == nil {
		t.Fatal("indivisible TotalCS accepted")
	}
}

func TestGenerateRejectsTicketCollocation(t *testing.T) {
	p := Params{Iterations: 1, TotalCS: 8, Locks: 1, Collocate: true}
	if _, err := Generate(p, synclib.PrimTicket, 2); err == nil {
		t.Fatal("ticket+collocation accepted")
	}
}

func TestKernelCountersExact(t *testing.T) {
	p := Params{
		Iterations: 2, TotalCS: 64, Locks: 4, HotPct: 50,
		CSWork: 10, ThinkWork: 50, ThinkJitter: 30, PrivateLines: 2,
		BarriersPerIter: 1,
	}
	for _, prim := range []synclib.Primitive{synclib.PrimTTS, synclib.PrimQOLB, synclib.PrimTicket, synclib.PrimMCS} {
		for _, mode := range []core.Mode{core.ModeBaseline, core.ModeIQOLB} {
			if prim == synclib.PrimQOLB && mode != core.ModeBaseline {
				continue
			}
			t.Run(string(prim)+"-"+mode.String(), func(t *testing.T) {
				m, bld, _ := runKernel(t, p, prim, mode, 4)
				if err := bld.VerifyCounters(p, m.Peek); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestCollocatedKernel(t *testing.T) {
	p := Params{
		Iterations: 1, TotalCS: 64, Locks: 2, HotPct: 0,
		CSWork: 10, ThinkWork: 50, Collocate: true,
	}
	m, bld, _ := runKernel(t, p, synclib.PrimTTS, core.ModeIQOLB, 4)
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		t.Fatal(err)
	}
}

func TestAllSpecsRunSmall(t *testing.T) {
	// Every Table 2 signature must run correctly at a reduced scale under
	// TTS/baseline and TTS/IQOLB.
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p := s.Params
			p.Iterations = 1
			p.TotalCS = 64
			m, bld, _ := runKernel(t, p, synclib.PrimTTS, core.ModeIQOLB, 4)
			if err := bld.VerifyCounters(p, m.Peek); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMicroSpecsRun(t *testing.T) {
	for _, s := range MicroSpecs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p := s.Params
			p.TotalCS = 64
			m, bld, _ := runKernel(t, p, synclib.PrimTTS, core.ModeDelayed, 4)
			if err := bld.VerifyCounters(p, m.Peek); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("raytrace"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nullcs"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSpecsDivisibleByPowerOfTwoProcs(t *testing.T) {
	for _, s := range Specs() {
		for _, procs := range []int{1, 2, 4, 8, 16, 32} {
			if s.Params.TotalCS%procs != 0 {
				t.Errorf("%s: TotalCS %d not divisible by %d", s.Name, s.Params.TotalCS, procs)
			}
		}
	}
}

func TestFetchAddKernel(t *testing.T) {
	bld, err := GenerateFetchAdd(240, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(6, core.ModeDelayed)
	cfg.CycleLimit = 50_000_000
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFetchAdd(240, m.Peek); err != nil {
		t.Fatal(err)
	}
}

func TestFigureKernels(t *testing.T) {
	rmw, err := GenerateFigureRMW(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(3, core.ModeDelayed)
	cfg.CycleLimit = 1_000_000
	m, err := machine.New(cfg, rmw.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(CounterAddr); got != 3 {
		t.Fatalf("figure RMW counter = %d, want 3", got)
	}

	lock, err := GenerateFigureLock(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfgL := machine.DefaultConfig(3, core.ModeIQOLB)
	cfgL.Core.PredictorEntries = 0 // always-lock: single-shot figure kernel
	cfgL.CycleLimit = 1_000_000
	m2, err := machine.New(cfgL, lock.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.RegisterLockAddr(LockBase)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m2.Peek(mem.Addr(LockBase)); got != 0 {
		t.Fatalf("lock = %d after all releases, want 0", got)
	}
}

func TestPollerKernel(t *testing.T) {
	// Half the machine polls protected data; the workers' counters must
	// still be exact, and pollers must retire their reads.
	p := Params{
		Iterations: 2, TotalCS: 32, Locks: 2, HotPct: 0,
		CSWork: 20, ThinkWork: 50,
		PollProcs: 2, PollReads: 16, PollThink: 10,
	}
	m, bld, res := runKernel(t, p, synclib.PrimTTS, core.ModeIQOLB, 4)
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		t.Fatal(err)
	}
	// Pollers are the top CPUs; they executed loads but no SCs.
	for cpu := 2; cpu < 4; cpu++ {
		if res.PerCPU[cpu].MemOps == 0 {
			t.Fatalf("poller %d executed no memory ops", cpu)
		}
	}
	if res.Stats.Nodes[2].SCSuccess+res.Stats.Nodes[3].SCSuccess != 0 {
		t.Fatal("pollers performed SCs")
	}
}

func TestPollerValidation(t *testing.T) {
	p := Params{Iterations: 1, TotalCS: 4, Locks: 1, PollProcs: 4}
	if _, err := Generate(p, synclib.PrimTTS, 4); err == nil {
		t.Fatal("all-poller machine accepted")
	}
	p2 := Params{Iterations: 1, TotalCS: 5, Locks: 1, PollProcs: 2}
	if _, err := Generate(p2, synclib.PrimTTS, 4); err == nil {
		t.Fatal("TotalCS not divisible by workers accepted")
	}
}

func TestMultiWriteCS(t *testing.T) {
	p := Params{
		Iterations: 1, TotalCS: 16, Locks: 1, CSWork: 40, CSWrites: 4,
	}
	m, bld, _ := runKernel(t, p, synclib.PrimTTS, core.ModeBaseline, 4)
	if bld.ExpectedCS != 64 {
		t.Fatalf("expected count %d, want 64 (16 CS x 4 writes)", bld.ExpectedCS)
	}
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		t.Fatal(err)
	}
}
