package linearize

import (
	"fmt"
	"strings"
	"testing"
)

// regModel is a single int register with write(v) and read()->v, the
// textbook model for exercising the checker.
type regModel struct{}

type regIn struct {
	write bool
	v     int
}

func (regModel) Init() any { return 0 }

func (regModel) Step(state any, input, output any) (any, bool) {
	s := state.(int)
	in := input.(regIn)
	if in.write {
		return in.v, true
	}
	return s, output.(int) == s
}

func (regModel) Key(state any) string { return fmt.Sprint(state.(int)) }

func TestRegisterLinearizable(t *testing.T) {
	// w(1) concurrent with r()->1 then r()->0 is fine if the second read
	// overlaps the write (write linearizes between them... no: 1 then 0
	// needs the write AFTER the second read but BEFORE the first — only
	// legal if both reads overlap the write).
	h := []Op{
		{ClientID: 0, Call: 0, Ret: 10, Input: regIn{write: true, v: 1}},
		{ClientID: 1, Call: 1, Ret: 3, Input: regIn{}, Output: 1},
		{ClientID: 1, Call: 4, Ret: 9, Input: regIn{}, Output: 0},
	}
	if ok, why := Check(regModel{}, h); ok {
		t.Fatalf("read 1-then-0 with the second read after the write's effect should not linearize: %s", why)
	}
	// r()->0 then r()->1, both overlapping w(1): linearizable.
	h = []Op{
		{ClientID: 0, Call: 0, Ret: 10, Input: regIn{write: true, v: 1}},
		{ClientID: 1, Call: 1, Ret: 3, Input: regIn{}, Output: 0},
		{ClientID: 1, Call: 4, Ret: 9, Input: regIn{}, Output: 1},
	}
	if ok, why := Check(regModel{}, h); !ok {
		t.Fatalf("valid history rejected: %s", why)
	}
}

func TestRegisterRealTimeOrder(t *testing.T) {
	// The write strictly precedes the read; a stale read is a violation.
	h := []Op{
		{ClientID: 0, Call: 0, Ret: 1, Input: regIn{write: true, v: 7}},
		{ClientID: 1, Call: 2, Ret: 3, Input: regIn{}, Output: 0},
	}
	ok, why := Check(regModel{}, h)
	if ok {
		t.Fatal("stale read after completed write accepted")
	}
	if !strings.Contains(why, "client 1") {
		t.Fatalf("diagnostic does not name the stuck op: %s", why)
	}
	// Fresh read is fine.
	h[1].Output = 7
	if ok, why := Check(regModel{}, h); !ok {
		t.Fatalf("fresh read rejected: %s", why)
	}
}

func TestEmptyAndBounds(t *testing.T) {
	if ok, _ := Check(regModel{}, nil); !ok {
		t.Fatal("empty history not linearizable")
	}
	big := make([]Op, maxOps+1)
	for i := range big {
		big[i] = Op{Call: int64(2 * i), Ret: int64(2*i + 1), Input: regIn{write: true, v: i}}
	}
	if ok, why := Check(regModel{}, big); ok || !strings.Contains(why, "bound") {
		t.Fatalf("oversized history: ok=%v why=%s", ok, why)
	}
}

// TestMemoization sanity-checks that heavy overlap (all ops concurrent)
// still terminates quickly: 12 concurrent writes have 12! orders, far
// beyond a naive search, but the memo collapses them.
func TestMemoization(t *testing.T) {
	var h []Op
	for i := 0; i < 12; i++ {
		h = append(h, Op{ClientID: i, Call: 0, Ret: 100, Input: regIn{write: true, v: i % 3}})
	}
	h = append(h, Op{ClientID: 99, Call: 101, Ret: 102, Input: regIn{}, Output: 1})
	if ok, why := Check(regModel{}, h); !ok {
		t.Fatalf("concurrent writes + read rejected: %s", why)
	}
}
