// Package linearize implements a Wing–Gong linearizability checker with
// Lowe's memoization: given a history of concurrent operations (call and
// return timestamps plus inputs/outputs) and a sequential model, it
// searches for a legal sequential order that respects real-time
// precedence. It is the service-layer counterpart of internal/check's
// differential lock oracle — that one compares two interleaved
// executions step by step; this one validates a single concurrent
// execution against a specification after the fact.
package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// Op is one completed operation in a history. Call and Ret are logical
// timestamps from any monotonic source (the harnesses use a shared
// atomic counter): op A precedes op B in real time iff A.Ret < B.Call.
type Op struct {
	// ClientID identifies the issuing client (for reporting only; the
	// checker does not assume per-client ordering beyond timestamps).
	ClientID int
	Call     int64
	Ret      int64
	// Input and Output are interpreted solely by the Model.
	Input  any
	Output any
}

// Model is a sequential specification. Implementations must treat state
// as immutable: Step returns a fresh state (or the same one unchanged)
// rather than mutating its argument, because the checker backtracks.
type Model interface {
	// Init returns the initial sequential state.
	Init() any
	// Step applies one operation to the state. ok reports whether the
	// (input, output) pair is legal from this state.
	Step(state any, input, output any) (next any, ok bool)
	// Key returns a canonical string for the state, used to memoize
	// explored (linearized-set, state) pairs. States that behave
	// identically should share a key.
	Key(state any) string
}

// maxOps bounds history size: the memoization mask is a uint64 bitmap.
const maxOps = 64

// Check reports whether the history is linearizable with respect to the
// model. On failure it returns a human-readable explanation listing the
// minimal frontier the search could not extend past.
func Check(m Model, history []Op) (bool, string) {
	n := len(history)
	if n == 0 {
		return true, ""
	}
	if n > maxOps {
		return false, fmt.Sprintf("linearize: history has %d ops, checker bound is %d", n, maxOps)
	}
	ops := make([]Op, n)
	copy(ops, history)
	// Deterministic exploration order: by call time, then return time.
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Call != ops[j].Call {
			return ops[i].Call < ops[j].Call
		}
		return ops[i].Ret < ops[j].Ret
	})

	type frame struct {
		mask  uint64 // bitmap of linearized ops
		state any
	}
	seen := make(map[string]bool)
	full := uint64(1)<<uint(n) - 1

	var best uint64 // largest linearized set reached, for diagnostics
	var bestCount int

	stack := []frame{{0, m.Init()}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.mask == full {
			return true, ""
		}
		if c := popcount(f.mask); c > bestCount {
			bestCount, best = c, f.mask
		}
		// minRet: the earliest return among pending ops. Any pending op
		// whose call precedes it is a candidate to linearize next; an op
		// calling after minRet cannot be reordered before that return.
		minRet := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if f.mask&(1<<uint(i)) == 0 && ops[i].Ret < minRet {
				minRet = ops[i].Ret
			}
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if f.mask&bit != 0 || ops[i].Call > minRet {
				continue
			}
			next, ok := m.Step(f.state, ops[i].Input, ops[i].Output)
			if !ok {
				continue
			}
			nm := f.mask | bit
			memo := fmt.Sprintf("%x|%s", nm, m.Key(next))
			if seen[memo] {
				continue
			}
			seen[memo] = true
			stack = append(stack, frame{nm, next})
		}
	}
	return false, explain(ops, best)
}

// explain describes the failure frontier: which ops linearized, which
// could not be placed.
func explain(ops []Op, mask uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "no linearization found; best prefix linearized %d/%d ops; stuck pending ops:\n", popcount(mask), len(ops))
	for i, op := range ops {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		fmt.Fprintf(&b, "  client %d [%d,%d] %v -> %v\n", op.ClientID, op.Call, op.Ret, op.Input, op.Output)
	}
	return strings.TrimRight(b.String(), "\n")
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
