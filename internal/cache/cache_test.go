package cache

import (
	"testing"
	"testing/quick"

	"iqolb/internal/mem"
)

func small() *Cache {
	// 4 sets x 2 ways.
	return New(Config{SizeBytes: 4 * 2 * mem.LineSize, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 64 * 1024, Ways: 2},
		{SizeBytes: 512 * 1024, Ways: 4},
		{SizeBytes: 2 * mem.LineSize, Ways: 2}, // 1 set
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 2},
		{SizeBytes: 64 * 1024, Ways: 0},
		{SizeBytes: 3 * mem.LineSize, Ways: 1}, // 3 sets: not a power of two
		{SizeBytes: 100, Ways: 1},              // not line-divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestTable1Geometries(t *testing.T) {
	l1 := Config{SizeBytes: 64 * 1024, Ways: 2}
	if l1.Sets() != 512 {
		t.Errorf("L1 sets = %d, want 512", l1.Sets())
	}
	l2 := Config{SizeBytes: 512 * 1024, Ways: 4}
	if l2.Sets() != 2048 {
		t.Errorf("L2 sets = %d, want 2048", l2.Sets())
	}
}

func TestInstallLookup(t *testing.T) {
	c := small()
	c.Install(7, mem.Shared)
	if got := c.State(7); got != mem.Shared {
		t.Fatalf("State(7) = %s, want S", got)
	}
	if c.State(8) != mem.Invalid {
		t.Fatal("absent line not Invalid")
	}
	c.SetState(7, mem.Modified)
	if got := c.State(7); got != mem.Modified {
		t.Fatalf("State(7) = %s, want M", got)
	}
}

func TestInstallOverResidentReplacesInPlace(t *testing.T) {
	c := small()
	c.Install(7, mem.Shared)
	_, _, evicted := c.Install(7, mem.Exclusive)
	if evicted {
		t.Fatal("reinstall of resident line evicted something")
	}
	if c.State(7) != mem.Exclusive {
		t.Fatal("reinstall did not update state")
	}
	if len(c.Lines()) != 1 {
		t.Fatalf("duplicate entries for one line: %v", c.Lines())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways; lines 0,4,8,12 share set 0
	c.Install(0, mem.Shared)
	c.Install(4, mem.Shared)
	c.Touch(0) // 4 is now LRU
	victim, state, evicted := c.Install(8, mem.Modified)
	if !evicted || victim != 4 || state != mem.Shared {
		t.Fatalf("evicted %v (line %d, %s), want line 4 Shared", evicted, victim, state)
	}
	if c.State(0) != mem.Shared || c.State(8) != mem.Modified {
		t.Fatal("survivors corrupted by eviction")
	}
}

func TestVictimPreview(t *testing.T) {
	c := small()
	if _, _, full := c.Victim(0); full {
		t.Fatal("empty set reported full")
	}
	c.Install(0, mem.Shared)
	c.Install(4, mem.Modified)
	c.Touch(4)
	victim, state, full := c.Victim(8)
	if !full || victim != 0 || state != mem.Shared {
		t.Fatalf("Victim = %d %s %v, want line 0 Shared true", victim, state, full)
	}
	// Preview must not evict.
	if c.State(0) != mem.Shared {
		t.Fatal("Victim() mutated the cache")
	}
}

func TestInvalidateAndStats(t *testing.T) {
	c := small()
	c.Install(3, mem.Exclusive)
	if !c.Touch(3) {
		t.Fatal("touch of resident line missed")
	}
	if c.Touch(99) {
		t.Fatal("touch of absent line hit")
	}
	if !c.Invalidate(3) || c.Invalidate(3) {
		t.Fatal("invalidate semantics wrong")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestSetStateOnAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetState on absent line did not panic")
		}
	}()
	small().SetState(1, mem.Shared)
}

func TestInstallInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Install(Invalid) did not panic")
		}
	}()
	small().Install(1, mem.Invalid)
}

// Property: after any sequence of installs, (a) no set exceeds its
// associativity, (b) no line appears twice, (c) the most recently installed
// line of each set is always resident.
func TestPropertyAssociativityRespected(t *testing.T) {
	f := func(ops []uint16) bool {
		c := small()
		lastPerSet := map[uint64]mem.LineID{}
		for _, op := range ops {
			line := mem.LineID(op % 64)
			c.Install(line, mem.Shared)
			lastPerSet[uint64(line)&c.mask] = line
		}
		seen := map[mem.LineID]bool{}
		perSet := map[uint64]int{}
		for _, l := range c.Lines() {
			if seen[l] {
				return false
			}
			seen[l] = true
			perSet[uint64(l)&c.mask]++
		}
		for _, n := range perSet {
			if n > c.cfg.Ways {
				return false
			}
		}
		for _, l := range lastPerSet {
			if !c.Contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: eviction count equals installs minus distinct resident lines
// when every install targets a distinct line.
func TestPropertyEvictionAccounting(t *testing.T) {
	f := func(n uint8) bool {
		c := small()
		distinct := int(n%100) + 1
		for i := 0; i < distinct; i++ {
			c.Install(mem.LineID(i), mem.Exclusive)
		}
		return int(c.Evictions) == distinct-len(c.Lines())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
