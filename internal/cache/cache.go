// Package cache implements the set-associative tag arrays used for the L1
// and L2 caches of each node (Table 1: 64-KB 2-way L1, 512-KB 4-way L2,
// 64-byte lines, LRU replacement).
//
// The arrays track line presence and MOESI state only; the controller keeps
// a single canonical data image per node, so an L1 entry is a
// latency/permission filter over the L2 entry, exactly as the inclusive
// hierarchy in the paper behaves from the bus's point of view.
package cache

import (
	"fmt"

	"iqolb/internal/mem"
)

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / mem.LineSize / c.Ways }

// Validate checks that the geometry is a usable power-of-two arrangement.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(mem.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*linesize", c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type entry struct {
	line  mem.LineID
	state mem.State
	used  uint64 // LRU stamp; larger = more recent
}

// Cache is a set-associative tag/state array with LRU replacement.
type Cache struct {
	cfg   Config
	sets  [][]entry
	mask  uint64
	clock uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache from the configuration, panicking on invalid geometry
// (configurations are static and validated at machine construction).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets()
	sets := make([][]entry, n)
	backing := make([]entry, n*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, mask: uint64(n - 1)}
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setFor(line mem.LineID) []entry {
	return c.sets[uint64(line)&c.mask]
}

func (c *Cache) find(line mem.LineID) *entry {
	set := c.setFor(line)
	for i := range set {
		if set[i].state != mem.Invalid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// State returns the MOESI state of the line, Invalid if absent.
func (c *Cache) State(line mem.LineID) mem.State {
	if e := c.find(line); e != nil {
		return e.state
	}
	return mem.Invalid
}

// Contains reports whether the line is present in any valid state.
func (c *Cache) Contains(line mem.LineID) bool { return c.find(line) != nil }

// Touch marks the line most recently used and counts a hit; it counts a
// miss and reports false when the line is absent.
func (c *Cache) Touch(line mem.LineID) bool {
	e := c.find(line)
	if e == nil {
		c.Misses++
		return false
	}
	c.clock++
	e.used = c.clock
	c.Hits++
	return true
}

// SetState changes the state of a resident line. Setting Invalid removes
// the line. It panics if the line is absent: controllers must only
// transition lines they hold, and a silent no-op here would mask protocol
// bugs.
func (c *Cache) SetState(line mem.LineID, s mem.State) {
	e := c.find(line)
	if e == nil {
		panic(fmt.Sprintf("cache: SetState(%d, %s) on absent line", line, s))
	}
	e.state = s
}

// Invalidate removes the line if present and reports whether it was.
func (c *Cache) Invalidate(line mem.LineID) bool {
	e := c.find(line)
	if e == nil {
		return false
	}
	e.state = mem.Invalid
	return true
}

// Victim returns the line that Install would evict for an insertion
// mapping to line's set, without performing the eviction. It reports
// ok=false when a free way exists (no eviction needed).
func (c *Cache) Victim(line mem.LineID) (victim mem.LineID, state mem.State, ok bool) {
	set := c.setFor(line)
	var lru *entry
	for i := range set {
		if set[i].state == mem.Invalid {
			return 0, mem.Invalid, false
		}
		if lru == nil || set[i].used < lru.used {
			lru = &set[i]
		}
	}
	return lru.line, lru.state, true
}

// Install inserts the line in the given state, evicting the LRU entry of a
// full set. It returns the evicted line and its prior state when an
// eviction occurred. Installing over a resident line replaces its state in
// place (no eviction).
func (c *Cache) Install(line mem.LineID, s mem.State) (victim mem.LineID, victimState mem.State, evicted bool) {
	if s == mem.Invalid {
		panic("cache: Install with Invalid state")
	}
	c.clock++
	if e := c.find(line); e != nil {
		e.state = s
		e.used = c.clock
		return 0, mem.Invalid, false
	}
	set := c.setFor(line)
	var slot *entry
	for i := range set {
		if set[i].state == mem.Invalid {
			slot = &set[i]
			break
		}
	}
	if slot == nil {
		for i := range set {
			if slot == nil || set[i].used < slot.used {
				slot = &set[i]
			}
		}
		victim, victimState, evicted = slot.line, slot.state, true
		c.Evictions++
	}
	slot.line = line
	slot.state = s
	slot.used = c.clock
	return victim, victimState, evicted
}

// Lines returns all resident lines; used by invariant-checking tests.
func (c *Cache) Lines() []mem.LineID {
	var out []mem.LineID
	for _, set := range c.sets {
		for _, e := range set {
			if e.state != mem.Invalid {
				out = append(out, e.line)
			}
		}
	}
	return out
}
