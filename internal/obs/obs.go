// Package obs is the cycle-accurate observability layer: a structured
// event stream fed by the probe hooks in internal/engine,
// internal/coherence and internal/machine, plus the consumers built on it
// — a Chrome-trace-event (Perfetto) exporter, per-lock contention
// profiles, and a compact metrics Snapshot for harness manifests.
//
// The collectors are strictly passive. They attach through the same
// one-way probe interfaces as the invariant monitor in internal/check, so
// an instrumented run is cycle-for-cycle identical to an uninstrumented
// one, and with no Log attached every hook reduces to an empty-slice (or
// nil) check on the simulator's hot paths.
package obs

import (
	"fmt"
	"sort"

	"iqolb/internal/coherence"
	"iqolb/internal/faults"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
)

// Kind classifies one observed event.
type Kind uint8

const (
	// EvLockAttempt: Node started waiting on the lock at Addr.
	EvLockAttempt Kind = iota
	// EvLockAcquire: Node completed an acquisition of the lock at Addr.
	EvLockAcquire
	// EvLockRelease: Node released the lock at Addr.
	EvLockRelease
	// EvLPRFOIssue: Node put an LPRFO for Line on the address bus.
	EvLPRFOIssue
	// EvDelayStart: Node began delaying its response to Peer's queued
	// LPRFO for Line; A is 1 for a lock-hold delay, 0 for an LL→SC window.
	EvDelayStart
	// EvDelayEnd: Node forwarded the delayed Line to Peer; A is the
	// coherence.DelayEndReason.
	EvDelayEnd
	// EvTearOff: Node sent Peer a read-only tear-off copy of Line.
	EvTearOff
	// EvBusSample: address-bus occupancy changed; A is the arbitration
	// queue length, B the outstanding (granted, data-phase pending) count.
	EvBusSample
	// EvBarrierArrive: processor Node reached barrier episode A.
	EvBarrierArrive
	// EvBarrierRelease: barrier episode A opened with B participants.
	EvBarrierRelease
	// EvFaultInject: an injected fault of kind A (faults.Kind) struck
	// line Line.
	EvFaultInject
	// EvDegrade: the fabric fell back to plain-RFO semantics.
	EvDegrade
)

var kindNames = [...]string{
	"lock-attempt", "lock-acquire", "lock-release", "lprfo-issue",
	"delay-start", "delay-end", "tear-off", "bus-sample",
	"barrier-arrive", "barrier-release", "fault-inject", "degrade",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NoNode marks an event not attributable to one processor (bus samples,
// barrier releases).
const NoNode = int32(-1)

// Event is one timestamped observation. The meaning of Addr/Line/Peer/A/B
// depends on Kind (see the Kind constants); unused fields are zero except
// Node and Peer, which use NoNode for "not applicable".
type Event struct {
	Cycle uint64 `json:"cycle"`
	Kind  Kind   `json:"kind"`
	Node  int32  `json:"node"`
	Peer  int32  `json:"peer"`
	Addr  uint64 `json:"addr,omitempty"`
	Line  uint64 `json:"line,omitempty"`
	A     uint64 `json:"a,omitempty"`
	B     uint64 `json:"b,omitempty"`
}

// Log accumulates the event stream of one run. It implements
// coherence.SyncProbe and machine.BarrierObserver and provides the bus
// monitor callback; Attach wires all three. Collection order is the
// simulator's deterministic event order, so cycles are nondecreasing and
// two runs of the same spec produce identical logs.
type Log struct {
	now    func() uint64
	procs  int
	events []Event

	lastQueued      uint64
	lastOutstanding uint64
	haveBusSample   bool
}

var (
	_ coherence.SyncProbe     = (*Log)(nil)
	_ coherence.FaultObserver = (*Log)(nil)
	_ machine.BarrierObserver = (*Log)(nil)
)

// NewLog builds a collector for procs processors reading the simulated
// clock through now. Most callers want Attach instead.
func NewLog(procs int, now func() uint64) *Log {
	return &Log{now: now, procs: procs}
}

// Attach builds a Log and hooks it into every probe point of m: the
// coherence fabric's synchronization probes, the address bus occupancy
// monitor, and the hardware barrier. Call before m.Run, and after any
// exclusive SetProbe-style attachment (the invariant monitor's Attach
// resets the fabric's probe list).
func Attach(m *machine.Machine) *Log {
	eng := m.Engine()
	l := NewLog(m.Processors(), func() uint64 { return uint64(eng.Now()) })
	m.Fabric().AddSyncProbe(l)
	m.Fabric().Bus().SetMonitor(l.BusSample)
	m.SetBarrierObserver(l)
	return l
}

// Events returns the collected stream (caller must not modify it).
func (l *Log) Events() []Event { return l.events }

// Len reports the number of collected events.
func (l *Log) Len() int { return len(l.events) }

// Procs reports the processor count the log was built for.
func (l *Log) Procs() int { return l.procs }

// EndCycle returns the timestamp of the last collected event (zero when
// empty) — the horizon used to close still-open spans at export time.
func (l *Log) EndCycle() uint64 {
	if len(l.events) == 0 {
		return 0
	}
	return l.events[len(l.events)-1].Cycle
}

func (l *Log) add(e Event) {
	e.Cycle = l.now()
	l.events = append(l.events, e)
}

// LockAttempt implements coherence.SyncProbe.
func (l *Log) LockAttempt(node mem.NodeID, addr mem.Addr) {
	l.add(Event{Kind: EvLockAttempt, Node: int32(node), Peer: NoNode, Addr: uint64(addr)})
}

// LockAcquire implements coherence.SyncProbe.
func (l *Log) LockAcquire(node mem.NodeID, addr mem.Addr) {
	l.add(Event{Kind: EvLockAcquire, Node: int32(node), Peer: NoNode, Addr: uint64(addr)})
}

// LockRelease implements coherence.SyncProbe.
func (l *Log) LockRelease(node mem.NodeID, addr mem.Addr) {
	l.add(Event{Kind: EvLockRelease, Node: int32(node), Peer: NoNode, Addr: uint64(addr)})
}

// LPRFOIssue implements coherence.SyncProbe.
func (l *Log) LPRFOIssue(node mem.NodeID, line mem.LineID) {
	l.add(Event{Kind: EvLPRFOIssue, Node: int32(node), Peer: NoNode, Line: uint64(line)})
}

// DelayStart implements coherence.SyncProbe.
func (l *Log) DelayStart(node, waiter mem.NodeID, line mem.LineID, lockHold bool) {
	var hold uint64
	if lockHold {
		hold = 1
	}
	l.add(Event{Kind: EvDelayStart, Node: int32(node), Peer: int32(waiter), Line: uint64(line), A: hold})
}

// DelayEnd implements coherence.SyncProbe.
func (l *Log) DelayEnd(node, waiter mem.NodeID, line mem.LineID, reason coherence.DelayEndReason) {
	l.add(Event{Kind: EvDelayEnd, Node: int32(node), Peer: int32(waiter), Line: uint64(line), A: uint64(reason)})
}

// TearOff implements coherence.SyncProbe.
func (l *Log) TearOff(node, to mem.NodeID, line mem.LineID) {
	l.add(Event{Kind: EvTearOff, Node: int32(node), Peer: int32(to), Line: uint64(line)})
}

// BusSample is the address-bus occupancy callback (interconnect
// Bus.SetMonitor). Consecutive identical samples are collapsed.
func (l *Log) BusSample(queued, outstanding int) {
	q, o := uint64(queued), uint64(outstanding)
	if l.haveBusSample && q == l.lastQueued && o == l.lastOutstanding {
		return
	}
	l.haveBusSample = true
	l.lastQueued, l.lastOutstanding = q, o
	l.add(Event{Kind: EvBusSample, Node: NoNode, Peer: NoNode, A: q, B: o})
}

// FaultInjected implements coherence.FaultObserver: injected faults
// enter the event stream so a faulted trace shows where the campaign
// struck.
func (l *Log) FaultInjected(kind faults.Kind, line mem.LineID) {
	l.add(Event{Kind: EvFaultInject, Node: NoNode, Peer: NoNode, Line: uint64(line), A: uint64(kind)})
}

// Degraded implements coherence.FaultObserver.
func (l *Log) Degraded(reason string) {
	l.add(Event{Kind: EvDegrade, Node: NoNode, Peer: NoNode})
}

// BarrierArrive implements machine.BarrierObserver.
func (l *Log) BarrierArrive(episode int64, cpu int) {
	l.add(Event{Kind: EvBarrierArrive, Node: int32(cpu), Peer: NoNode, A: uint64(episode)})
}

// BarrierRelease implements machine.BarrierObserver.
func (l *Log) BarrierRelease(episode int64, procs int) {
	l.add(Event{Kind: EvBarrierRelease, Node: NoNode, Peer: NoNode, A: uint64(episode), B: uint64(procs)})
}

// lockAddrs returns the distinct lock addresses seen, sorted.
func (l *Log) lockAddrs() []uint64 {
	seen := make(map[uint64]bool)
	for i := range l.events {
		e := &l.events[i]
		switch e.Kind {
		case EvLockAttempt, EvLockAcquire, EvLockRelease:
			seen[e.Addr] = true
		}
	}
	addrs := make([]uint64, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
