package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"iqolb/internal/coherence"
)

// TraceSchemaVersion identifies the layout of the exported trace file's
// envelope (the otherData block); the traceEvents themselves follow the
// Chrome trace-event format, which Perfetto defines.
const TraceSchemaVersion = 1

// Process (pid) layout of the exported trace. Chrome trace viewers group
// tracks by pid, so the machine-wide tracks, the per-processor timelines,
// and the per-lock tracks each get their own group.
const (
	pidMachine = 0 // bus-occupancy counter, barrier spans
	pidProcs   = 1 // one thread per processor
	pidLocks   = 2 // one thread + one counter per lock address
)

// traceEvent is one Chrome trace-event JSON object. Field order (and the
// sorted map keys in Args) make the marshalled form deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func span(name string, pid, tid int, start, end uint64, cat string, args map[string]any) traceEvent {
	d := end - start
	return traceEvent{Name: name, Ph: "X", Ts: start, Dur: &d, Pid: pid, Tid: tid, Cat: cat, Args: args}
}

func instant(name string, pid, tid int, ts uint64, cat string) traceEvent {
	return traceEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, Cat: cat, S: "t"}
}

// ExportPerfetto writes the log as Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. One simulated cycle maps
// to one microsecond of trace time. The output is deterministic: the same
// event stream yields byte-identical JSON.
//
// The trace renders three process groups: per-processor timelines
// (lock-wait and lock-hold spans, delayed-response spans, LPRFO and
// tear-off instants, barrier arrivals), per-lock tracks (hand-off spans
// between consecutive holders and a queue-depth counter), and machine-wide
// tracks (bus-occupancy counter, barrier episode spans).
func (l *Log) ExportPerfetto(w io.Writer) error {
	end := l.EndCycle()
	addrs := l.lockAddrs()
	lockTid := make(map[uint64]int, len(addrs))
	for i, a := range addrs {
		lockTid[a] = i
	}

	var evs []traceEvent
	meta := func(kind string, pid, tid int, name string) {
		evs = append(evs, traceEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	meta("process_name", pidMachine, 0, "machine")
	meta("thread_name", pidMachine, 0, "bus")
	meta("thread_name", pidMachine, 1, "barriers")
	meta("process_name", pidProcs, 0, "processors")
	for p := 0; p < l.procs; p++ {
		meta("thread_name", pidProcs, p, fmt.Sprintf("cpu %d", p))
	}
	meta("process_name", pidLocks, 0, "locks")
	for i, a := range addrs {
		meta("thread_name", pidLocks, i, fmt.Sprintf("lock %#x", a))
	}

	type holdKey struct {
		addr uint64
		node int32
	}
	type delayKey struct {
		line uint64
		node int32
	}
	type delayOpen struct {
		start    uint64
		waiter   int32
		lockHold bool
	}
	waitStart := make(map[holdKey]uint64)
	holdStart := make(map[holdKey]uint64)
	delays := make(map[delayKey]delayOpen)
	lastRel := make(map[uint64]uint64)     // lock addr -> release cycle
	lastRelBy := make(map[uint64]int32)    // lock addr -> releasing proc
	firstArrive := make(map[uint64]uint64) // barrier episode -> first arrival

	for i := range l.events {
		e := &l.events[i]
		switch e.Kind {
		case EvLockAttempt:
			waitStart[holdKey{e.Addr, e.Node}] = e.Cycle
		case EvLockAcquire:
			k := holdKey{e.Addr, e.Node}
			if start, ok := waitStart[k]; ok {
				evs = append(evs, span(fmt.Sprintf("wait %#x", e.Addr), pidProcs, int(e.Node),
					start, e.Cycle, "lock", nil))
				delete(waitStart, k)
			}
			holdStart[k] = e.Cycle
			if rel, ok := lastRel[e.Addr]; ok {
				evs = append(evs, span(fmt.Sprintf("handoff cpu%d→cpu%d", lastRelBy[e.Addr], e.Node),
					pidLocks, lockTid[e.Addr], rel, e.Cycle, "handoff",
					map[string]any{"from": lastRelBy[e.Addr], "to": e.Node}))
				delete(lastRel, e.Addr)
			}
		case EvLockRelease:
			k := holdKey{e.Addr, e.Node}
			if start, ok := holdStart[k]; ok {
				evs = append(evs, span(fmt.Sprintf("hold %#x", e.Addr), pidProcs, int(e.Node),
					start, e.Cycle, "lock", nil))
				delete(holdStart, k)
			}
			lastRel[e.Addr] = e.Cycle
			lastRelBy[e.Addr] = e.Node
		case EvLPRFOIssue:
			evs = append(evs, instant("lprfo", pidProcs, int(e.Node), e.Cycle, "tx"))
		case EvDelayStart:
			delays[delayKey{e.Line, e.Node}] = delayOpen{start: e.Cycle, waiter: e.Peer, lockHold: e.A == 1}
		case EvDelayEnd:
			k := delayKey{e.Line, e.Node}
			if d, ok := delays[k]; ok {
				reason := "flushed"
				if coherence.DelayEndReason(e.A) == coherence.DelayTimedOut {
					reason = "timeout"
				}
				evs = append(evs, span("delay Δ", pidProcs, int(e.Node), d.start, e.Cycle, "delay",
					map[string]any{"line": e.Line, "lock_hold": d.lockHold, "reason": reason, "waiter": d.waiter}))
				delete(delays, k)
			}
		case EvTearOff:
			evs = append(evs, instant(fmt.Sprintf("tear-off→cpu%d", e.Peer), pidProcs, int(e.Node),
				e.Cycle, "tearoff"))
		case EvBusSample:
			evs = append(evs, traceEvent{Name: "bus occupancy", Ph: "C", Ts: e.Cycle,
				Pid: pidMachine, Tid: 0,
				Args: map[string]any{"outstanding": e.B, "queued": e.A}})
		case EvBarrierArrive:
			evs = append(evs, instant(fmt.Sprintf("barrier %d", e.A), pidProcs, int(e.Node),
				e.Cycle, "barrier"))
			if _, ok := firstArrive[e.A]; !ok {
				firstArrive[e.A] = e.Cycle
			}
		case EvBarrierRelease:
			if start, ok := firstArrive[e.A]; ok {
				evs = append(evs, span(fmt.Sprintf("barrier %d", e.A), pidMachine, 1,
					start, e.Cycle, "barrier", map[string]any{"procs": e.B}))
				delete(firstArrive, e.A)
			}
		}
	}

	// Close spans still open at the end of the run (a lock held at halt, a
	// delay pending when the cycle limit hit) so the timeline stays honest.
	// Map iteration order is randomized, so route these through the
	// deterministic replay state instead: collect by replaying keys in
	// event order.
	for i := range l.events {
		e := &l.events[i]
		switch e.Kind {
		case EvLockAcquire:
			k := holdKey{e.Addr, e.Node}
			if start, ok := holdStart[k]; ok {
				evs = append(evs, span(fmt.Sprintf("hold %#x", e.Addr), pidProcs, int(e.Node),
					start, end, "lock", map[string]any{"open": true}))
				delete(holdStart, k)
			}
		case EvDelayStart:
			k := delayKey{e.Line, e.Node}
			if d, ok := delays[k]; ok {
				evs = append(evs, span("delay Δ", pidProcs, int(e.Node), d.start, end, "delay",
					map[string]any{"line": e.Line, "lock_hold": d.lockHold, "open": true, "waiter": d.waiter}))
				delete(delays, k)
			}
		}
	}

	// Per-lock queue-depth counter tracks, from the contention profiles.
	for _, p := range l.Profiles() {
		name := fmt.Sprintf("queue %#x", p.Addr)
		for _, s := range p.QueueDepth {
			evs = append(evs, traceEvent{Name: name, Ph: "C", Ts: s.Cycle,
				Pid: pidLocks, Tid: lockTid[p.Addr],
				Args: map[string]any{"waiters": s.Depth}})
		}
	}

	out, err := json.Marshal(traceFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"schema_version": TraceSchemaVersion,
			"time_unit":      "1 ts = 1 simulated cycle",
		},
	})
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
