package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"iqolb/internal/experiments"
	"iqolb/internal/machine"
	"iqolb/internal/obs"
	"iqolb/internal/workload"
)

// runTraced executes one scaled-down benchmark under the named system with
// an observability Log attached and returns the log plus the run's cycle
// count.
func runTraced(t *testing.T, bench, system string, procs, scale int) (*obs.Log, uint64) {
	t.Helper()
	log, cycles, err := tracedRun(bench, system, procs, scale, true)
	if err != nil {
		t.Fatal(err)
	}
	return log, cycles
}

func tracedRun(bench, system string, procs, scale int, attach bool) (*obs.Log, uint64, error) {
	sys, err := experiments.SystemByName(system)
	if err != nil {
		return nil, 0, err
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, 0, err
	}
	p := experiments.Scale(spec.Params, scale, procs)
	bld, err := workload.Generate(p, sys.Primitive, procs)
	if err != nil {
		return nil, 0, err
	}
	m, err := machine.New(sys.MachineConfig(procs), bld.Program, nil)
	if err != nil {
		return nil, 0, err
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	var log *obs.Log
	if attach {
		log = obs.Attach(m)
	}
	res, err := m.Run()
	if err != nil {
		return nil, 0, err
	}
	return log, res.Cycles, nil
}

// TestEventStream checks the raw log of an 8-proc IQOLB run: cycles are
// nondecreasing in collection order, node/peer IDs are in range, and every
// event family the run must produce is present.
func TestEventStream(t *testing.T) {
	const procs = 8
	log, cycles := runTraced(t, "raytrace", "iqolb", procs, 8)
	evs := log.Events()
	if len(evs) == 0 {
		t.Fatal("no events collected")
	}
	if log.Len() != len(evs) {
		t.Fatalf("Len() = %d, len(Events()) = %d", log.Len(), len(evs))
	}
	seen := make(map[obs.Kind]int)
	var prev uint64
	for i, e := range evs {
		if e.Cycle < prev {
			t.Fatalf("event %d (%s): cycle %d < previous %d", i, e.Kind, e.Cycle, prev)
		}
		prev = e.Cycle
		if e.Cycle > cycles {
			t.Fatalf("event %d (%s): cycle %d beyond run end %d", i, e.Kind, e.Cycle, cycles)
		}
		if e.Node != obs.NoNode && (e.Node < 0 || int(e.Node) >= procs) {
			t.Fatalf("event %d (%s): node %d out of range", i, e.Kind, e.Node)
		}
		if e.Peer != obs.NoNode && (e.Peer < 0 || int(e.Peer) >= procs) {
			t.Fatalf("event %d (%s): peer %d out of range", i, e.Kind, e.Peer)
		}
		seen[e.Kind]++
	}
	if log.EndCycle() != prev {
		t.Fatalf("EndCycle() = %d, want last event cycle %d", log.EndCycle(), prev)
	}
	// raytrace on IQOLB hammers one hot lock across barriered iterations:
	// the full lock lifecycle, LPRFO traffic, delayed responses, bus
	// samples and barrier episodes must all appear.
	for _, k := range []obs.Kind{
		obs.EvLockAttempt, obs.EvLockAcquire, obs.EvLockRelease,
		obs.EvLPRFOIssue, obs.EvDelayStart, obs.EvDelayEnd,
		obs.EvBusSample, obs.EvBarrierArrive, obs.EvBarrierRelease,
	} {
		if seen[k] == 0 {
			t.Errorf("no %s events collected (histogram: %v)", k, seen)
		}
	}
}

// TestProfiles checks the derived per-lock contention profiles for
// internal consistency.
func TestProfiles(t *testing.T) {
	const procs = 8
	log, _ := runTraced(t, "raytrace", "iqolb", procs, 8)
	profiles := log.Profiles()
	if len(profiles) == 0 {
		t.Fatal("no lock profiles")
	}
	for i, p := range profiles {
		if i > 0 && profiles[i-1].Addr >= p.Addr {
			t.Fatalf("profiles not sorted by address: %#x then %#x", profiles[i-1].Addr, p.Addr)
		}
		if p.Acquires == 0 || p.Releases == 0 || p.Attempts == 0 {
			t.Fatalf("lock %#x: empty lifecycle counts %+v", p.Addr, p)
		}
		var byProc uint64
		for _, n := range p.AcquiresByProc {
			byProc += n
		}
		if byProc != p.Acquires {
			t.Errorf("lock %#x: AcquiresByProc sums to %d, Acquires = %d", p.Addr, byProc, p.Acquires)
		}
		if len(p.AcquiresByProc) != procs {
			t.Errorf("lock %#x: AcquiresByProc has %d entries, want %d", p.Addr, len(p.AcquiresByProc), procs)
		}
		if p.MaxQueueDepth < 1 {
			t.Errorf("lock %#x: MaxQueueDepth = %d on a contended lock", p.Addr, p.MaxQueueDepth)
		}
		if p.HoldTime.Count > p.Acquires {
			t.Errorf("lock %#x: %d hold samples > %d acquires", p.Addr, p.HoldTime.Count, p.Acquires)
		}
		if p.AcquireWait.Count > p.Attempts {
			t.Errorf("lock %#x: %d wait samples > %d attempts", p.Addr, p.AcquireWait.Count, p.Attempts)
		}
		if p.HandoffLatency.Count == 0 {
			t.Errorf("lock %#x: no hand-off samples on a contended lock", p.Addr)
		}
		if len(p.QueueDepth) == 0 {
			t.Errorf("lock %#x: no queue-depth series", p.Addr)
		}
	}

	snap := log.Snapshot()
	if snap.SchemaVersion != obs.SnapshotSchemaVersion {
		t.Errorf("snapshot schema %d, want %d", snap.SchemaVersion, obs.SnapshotSchemaVersion)
	}
	if snap.Events != log.Len() {
		t.Errorf("snapshot Events = %d, log has %d", snap.Events, log.Len())
	}
	if snap.EndCycle != log.EndCycle() {
		t.Errorf("snapshot EndCycle = %d, log says %d", snap.EndCycle, log.EndCycle())
	}
	for _, p := range snap.Locks {
		if p.QueueDepth != nil {
			t.Errorf("lock %#x: snapshot kept the queue-depth series", p.Addr)
		}
	}
	if snap.Bus.Samples == 0 || snap.Bus.MaxOutstanding == 0 {
		t.Errorf("empty bus profile: %+v", snap.Bus)
	}
	if snap.Barriers.Episodes == 0 || snap.Barriers.Span.Count != snap.Barriers.Episodes {
		t.Errorf("inconsistent barrier profile: %+v", snap.Barriers)
	}
}

// TestPerfettoValidity loads the export of an 8-proc IQOLB run back as
// JSON and checks the Chrome trace-event contract: every event carries a
// known phase, the pid/tid/ts fields Perfetto groups by, durations on
// complete events, and the tracks the ISSUE promises (lock-hold spans,
// hand-off spans, a bus-occupancy counter).
func TestPerfettoValidity(t *testing.T) {
	log, _ := runTraced(t, "raytrace", "iqolb", 8, 8)
	var buf bytes.Buffer
	if err := log.ExportPerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	if file.OtherData["schema_version"] != float64(obs.TraceSchemaVersion) {
		t.Errorf("otherData schema_version = %v, want %d", file.OtherData["schema_version"], obs.TraceSchemaVersion)
	}
	var holds, handoffs, busCounters, waits, delays int
	for i, e := range file.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur == nil {
				t.Fatalf("event %d (%q): complete event without dur", i, e.Name)
			}
		case "i":
			if e.S != "t" {
				t.Fatalf("event %d (%q): instant without thread scope", i, e.Name)
			}
		case "C", "M":
		default:
			t.Fatalf("event %d (%q): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d (%q): missing pid/tid", i, e.Name)
		}
		if e.Ph != "M" && e.Ts == nil {
			t.Fatalf("event %d (%q): missing ts", i, e.Name)
		}
		if e.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		switch {
		case strings.HasPrefix(e.Name, "hold "):
			holds++
		case strings.HasPrefix(e.Name, "handoff "):
			handoffs++
		case strings.HasPrefix(e.Name, "wait "):
			waits++
		case e.Name == "bus occupancy" && e.Ph == "C":
			busCounters++
		case e.Name == "delay Δ":
			delays++
		}
	}
	if holds == 0 || handoffs == 0 || waits == 0 || busCounters == 0 || delays == 0 {
		t.Errorf("missing tracks: holds=%d handoffs=%d waits=%d bus=%d delays=%d",
			holds, handoffs, waits, busCounters, delays)
	}
}

// TestExportDeterminism runs the same spec twice and demands byte-identical
// Perfetto exports and metric snapshots — the regression guard behind the
// "same spec + seed ⇒ same trace" contract.
func TestExportDeterminism(t *testing.T) {
	export := func() ([]byte, []byte) {
		log, _ := runTraced(t, "raytrace", "iqolb", 8, 8)
		var buf bytes.Buffer
		if err := log.ExportPerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := json.Marshal(log.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), snap
	}
	trace1, snap1 := export()
	trace2, snap2 := export()
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("Perfetto exports differ across identical runs (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if !bytes.Equal(snap1, snap2) {
		t.Errorf("snapshots differ across identical runs:\n%s\n%s", snap1, snap2)
	}
}

// TestNoPerturbation proves the collectors are passive: a run with the full
// observability layer attached finishes in exactly the same number of
// cycles as a bare run.
func TestNoPerturbation(t *testing.T) {
	for _, sys := range []string{"iqolb", "qolb", "tts"} {
		_, bare, err := tracedRun("raytrace", sys, 8, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		log, traced, err := tracedRun("raytrace", sys, 8, 8, true)
		if err != nil {
			t.Fatal(err)
		}
		if bare != traced {
			t.Errorf("%s: tracing perturbed the run: %d cycles bare, %d traced", sys, bare, traced)
		}
		if log.Len() == 0 {
			t.Errorf("%s: traced run collected nothing", sys)
		}
	}
}
