package obs

import "iqolb/internal/stats"

// SnapshotSchemaVersion identifies the serialized layout of Snapshot (and
// the LockProfile records inside it). Bump it whenever a field is added,
// removed, or changes meaning; the golden-file test under testdata/ pins
// the current shape.
const SnapshotSchemaVersion = 1

// DepthSample is one point of a lock's queue-depth-over-time series: Depth
// processors were waiting (attempted, not yet acquired) from Cycle until
// the next sample.
type DepthSample struct {
	Cycle uint64 `json:"cycle"`
	Depth int    `json:"depth"`
}

// LockProfile is the contention profile of one lock address, derived from
// the event stream after the run.
type LockProfile struct {
	// Addr is the lock's byte address.
	Addr uint64 `json:"addr"`
	// Attempts / Acquires / Releases count the lock's lifecycle events.
	Attempts uint64 `json:"attempts"`
	Acquires uint64 `json:"acquires"`
	Releases uint64 `json:"releases"`
	// AcquiresByProc is the fairness profile: acquisitions per processor.
	AcquiresByProc []uint64 `json:"acquires_by_proc"`
	// MaxQueueDepth is the peak number of simultaneous waiters.
	MaxQueueDepth int `json:"max_queue_depth"`
	// HoldTime distributes acquire→release, HandoffLatency release→next
	// acquire, AcquireWait attempt→acquire — all in cycles.
	HoldTime       stats.Histogram `json:"hold_time"`
	HandoffLatency stats.Histogram `json:"handoff_latency"`
	AcquireWait    stats.Histogram `json:"acquire_wait"`
	// QueueDepth is the full depth-over-time series (one sample per
	// change). Snapshot drops it; the trace exporter renders it as a
	// counter track.
	QueueDepth []DepthSample `json:"queue_depth,omitempty"`
}

// BusProfile summarizes the address-bus occupancy samples.
type BusProfile struct {
	Samples        int    `json:"samples"`
	MaxQueued      uint64 `json:"max_queued"`
	MaxOutstanding uint64 `json:"max_outstanding"`
}

// BarrierProfile summarizes barrier traffic.
type BarrierProfile struct {
	Episodes uint64          `json:"episodes"`
	Span     stats.Histogram `json:"span"` // first arrival -> release, cycles
}

// Snapshot is the compact end-of-run metrics summary: the contention
// profiles without their time series, plus bus and barrier aggregates. It
// is small enough to embed in a harness manifest record.
type Snapshot struct {
	SchemaVersion int           `json:"schema_version"`
	Events        int           `json:"events"`
	EndCycle      uint64        `json:"end_cycle"`
	Locks         []LockProfile `json:"locks"`
	Bus           BusProfile    `json:"bus"`
	Barriers      BarrierProfile `json:"barriers"`
}

// lockState is the per-lock replay accumulator.
type lockState struct {
	p         *LockProfile
	waitStart map[int32]uint64 // attempt cycle per waiting proc
	depth     int
	holder    int32
	holdStart uint64
	lastRel   uint64
	hasRel    bool
	held      bool
}

// Profiles replays the event stream into per-lock contention profiles,
// sorted by lock address. Spans still open when the log ends (a lock held
// at halt) contribute no histogram sample.
func (l *Log) Profiles() []LockProfile {
	states := make(map[uint64]*lockState)
	get := func(addr uint64) *lockState {
		s := states[addr]
		if s == nil {
			s = &lockState{
				p:         &LockProfile{Addr: addr, AcquiresByProc: make([]uint64, l.procs)},
				waitStart: make(map[int32]uint64),
				holder:    NoNode,
			}
			states[addr] = s
		}
		return s
	}
	for i := range l.events {
		e := &l.events[i]
		switch e.Kind {
		case EvLockAttempt:
			s := get(e.Addr)
			s.p.Attempts++
			if _, dup := s.waitStart[e.Node]; !dup {
				s.waitStart[e.Node] = e.Cycle
				s.depth++
				if s.depth > s.p.MaxQueueDepth {
					s.p.MaxQueueDepth = s.depth
				}
				s.p.QueueDepth = append(s.p.QueueDepth, DepthSample{Cycle: e.Cycle, Depth: s.depth})
			}
		case EvLockAcquire:
			s := get(e.Addr)
			s.p.Acquires++
			if int(e.Node) < len(s.p.AcquiresByProc) {
				s.p.AcquiresByProc[e.Node]++
			}
			if start, ok := s.waitStart[e.Node]; ok {
				s.p.AcquireWait.Add(e.Cycle - start)
				delete(s.waitStart, e.Node)
				s.depth--
				s.p.QueueDepth = append(s.p.QueueDepth, DepthSample{Cycle: e.Cycle, Depth: s.depth})
			}
			if s.hasRel {
				s.p.HandoffLatency.Add(e.Cycle - s.lastRel)
				s.hasRel = false
			}
			s.holder = e.Node
			s.holdStart = e.Cycle
			s.held = true
		case EvLockRelease:
			s := get(e.Addr)
			s.p.Releases++
			if s.held && s.holder == e.Node {
				s.p.HoldTime.Add(e.Cycle - s.holdStart)
			}
			s.held = false
			s.holder = NoNode
			s.lastRel = e.Cycle
			s.hasRel = true
		}
	}
	out := make([]LockProfile, 0, len(states))
	for _, a := range l.lockAddrs() {
		if s := states[a]; s != nil {
			out = append(out, *s.p)
		}
	}
	return out
}

// Snapshot summarizes the run: the profiles with their time series
// stripped, bus occupancy maxima, and barrier episode spans.
func (l *Log) Snapshot() Snapshot {
	snap := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Events:        len(l.events),
		EndCycle:      l.EndCycle(),
		Locks:         l.Profiles(),
	}
	for i := range snap.Locks {
		snap.Locks[i].QueueDepth = nil
	}
	firstArrive := make(map[uint64]uint64)
	for i := range l.events {
		e := &l.events[i]
		switch e.Kind {
		case EvBusSample:
			snap.Bus.Samples++
			if e.A > snap.Bus.MaxQueued {
				snap.Bus.MaxQueued = e.A
			}
			if e.B > snap.Bus.MaxOutstanding {
				snap.Bus.MaxOutstanding = e.B
			}
		case EvBarrierArrive:
			if _, ok := firstArrive[e.A]; !ok {
				firstArrive[e.A] = e.Cycle
			}
		case EvBarrierRelease:
			snap.Barriers.Episodes++
			if start, ok := firstArrive[e.A]; ok {
				snap.Barriers.Span.Add(e.Cycle - start)
				delete(firstArrive, e.A)
			}
		}
	}
	return snap
}
