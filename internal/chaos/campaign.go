package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"iqolb/internal/linearize"
	"iqolb/internal/service"
)

// The chaos campaign: kind × seed runs of a real client/server serving
// path with a deterministic fault proxy per client, each run classified
// and checked. Per run it asserts the two invariants the repo trusts:
//
//   - Lease conservation: Grants = Releases + Expiries + Revocations +
//     Live, read from the service's own counters after a graceful
//     drain.
//   - Linearizability: the server-boundary history (every acquire,
//     release, resume, and expiry the service actually executed,
//     retries and duplicates included) checks against the sequential
//     lease model, split per resource.
//
// Classification is deliberately coarse — booleans over the resilient
// clients' counters and the proxies' injection logs, never raw counts —
// so the committed artifact is byte-identical across runs of one seed
// even though retry timing varies.

// Campaign outcome classes, best to worst.
const (
	// OutcomeClean: no faults fired and no retries were needed.
	OutcomeClean = "clean"
	// OutcomeAbsorbed: faults fired but the retry/backoff layer absorbed
	// them without any reconnect.
	OutcomeAbsorbed = "absorbed"
	// OutcomeRecovered: at least one connection died (or a lease was
	// lost to TTL) and the client recovered by reconnect + fenced
	// resume.
	OutcomeRecovered = "recovered"
	// OutcomeDegraded: some operation exhausted its retry budget and
	// failed typed (no hang, but work was lost).
	OutcomeDegraded = "degraded"
)

// ReportSchemaVersion identifies the BENCH_chaos.json layout.
const ReportSchemaVersion = 1

// CampaignConfig scales a campaign; zero fields select defaults.
type CampaignConfig struct {
	// Kinds to run, one per row (default: every kind). A "none" control
	// row (clean proxy) is always prepended.
	Kinds []Kind
	// Seeds to run per kind (default 1..8).
	Seeds []uint64
	// Clients / OpsPerClient / Resources shape each run's workload
	// (defaults 3 / 5 / 2). Kept small on purpose: each resource's
	// history must fit the linearize checker's 64-op bound even with
	// retries.
	Clients      int
	OpsPerClient int
	Resources    int
	// TTL is each lease's lifetime (default 300ms) — short, so orphaned
	// leases (a grant whose response was truncated) expire inside the
	// run and the reconnect-fencing path is exercised.
	TTL time.Duration
	// DrainGrace is the graceful-drain window at the end of each run
	// (default 150ms).
	DrainGrace time.Duration
	// Window, when ≥ 2, runs every client connection pipelined (wire
	// v3) with that in-flight window, each client's ops spread across
	// `Window` concurrent workers on the shared connection. The op
	// schedule per resource is unchanged (worker w takes ops j with
	// j mod Window = w), so each resource's history still fits the
	// linearize checker's bound. ≤ 1 = lock-step clients.
	Window int
	// OnRun, when non-nil, observes each finished run (progress
	// reporting).
	OnRun func(RunResult)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = Kinds()
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 5
	}
	if c.Resources == 0 {
		c.Resources = 2
	}
	if c.TTL == 0 {
		c.TTL = 300 * time.Millisecond
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 150 * time.Millisecond
	}
	return c
}

// RunResult is one kind × seed run's verdict. Only deterministic fields
// belong here (no wall times, no raw retry counts): the committed
// artifact must be byte-identical across runs of the same seed.
type RunResult struct {
	Kind string `json:"kind"`
	Seed uint64 `json:"seed"`
	// Outcome is one of the Outcome* classes.
	Outcome string `json:"outcome"`
	// Conservation is "ok" or the violated equation.
	Conservation string `json:"conservation"`
	// Linearizable reports the per-resource model check.
	Linearizable bool `json:"linearizable"`
	// Failures lists the typed failure classes seen (sorted, unique);
	// empty for runs where every operation eventually succeeded.
	Failures []string `json:"failures,omitempty"`
}

// Failed reports whether the run violates an invariant (a degraded
// outcome is a legal classification; broken conservation or
// linearizability is not).
func (r RunResult) Failed() bool {
	return r.Conservation != "ok" || !r.Linearizable
}

// Report is the schema-versioned campaign artifact.
type Report struct {
	SchemaVersion int            `json:"schema_version"`
	Runs          []RunResult    `json:"runs"`
	Outcomes      map[string]int `json:"outcomes"`
	// Failures counts runs with violated invariants; a clean campaign
	// has 0.
	Failures int `json:"failures"`
}

// WriteJSON writes the indented artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunCampaign executes the full kind × seed grid, sequentially (runs
// share the host's ports and scheduler; sequencing keeps them honest).
func RunCampaign(cfg CampaignConfig) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{SchemaVersion: ReportSchemaVersion, Outcomes: make(map[string]int)}
	rows := append([]string{"none"}, make([]string, 0, len(cfg.Kinds))...)
	for _, k := range cfg.Kinds {
		rows = append(rows, k.String())
	}
	for _, row := range rows {
		var kinds []Kind
		if row != "none" {
			k, _ := Parse(row)
			kinds = []Kind{k}
		}
		for _, seed := range cfg.Seeds {
			res := runOne(row, kinds, seed, cfg)
			rep.Runs = append(rep.Runs, res)
			rep.Outcomes[res.Outcome]++
			if res.Failed() {
				rep.Failures++
			}
			if cfg.OnRun != nil {
				cfg.OnRun(res)
			}
		}
	}
	return rep
}

// ---------------------------------------------------------------------
// Server-boundary history recording.
// ---------------------------------------------------------------------

type recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []linearize.Op
}

func (rec *recorder) tick() int64 { return rec.clock.Add(1) }

func (rec *recorder) add(client int, call, ret int64, in, out any) {
	rec.mu.Lock()
	rec.ops = append(rec.ops, linearize.Op{ClientID: client, Call: call, Ret: ret, Input: in, Output: out})
	rec.mu.Unlock()
}

func (rec *recorder) history() []linearize.Op {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]linearize.Op(nil), rec.ops...)
}

// recordingBackend wraps the real service as the server's backend,
// logging every executed operation — including retried duplicates,
// which really did execute and really do belong in the history.
type recordingBackend struct {
	svc *service.Service
	rec *recorder
}

// clientID recovers the campaign's client index from its owner name.
func clientID(owner string) int {
	if len(owner) > 1 && owner[0] == 'c' {
		if n, err := strconv.Atoi(owner[1:]); err == nil {
			return n
		}
	}
	return -1
}

func (b *recordingBackend) Acquire(res, owner string, opt service.AcquireOptions) (service.Lease, error) {
	call := b.rec.tick()
	l, err := b.svc.Acquire(res, owner, opt)
	ret := b.rec.tick()
	if err != nil {
		b.rec.add(clientID(owner), call, ret, acqIn{Res: res}, acquireCode(err))
	} else {
		b.rec.add(clientID(owner), call, ret, acqIn{Res: res}, l.Token)
	}
	return l, err
}

func (b *recordingBackend) ReleaseFenced(res string, token, fence uint64) error {
	call := b.rec.tick()
	err := b.svc.ReleaseFenced(res, token, fence)
	b.rec.add(-1, call, b.rec.tick(), relIn{Res: res, Token: token}, releaseCode(err))
	return err
}

func (b *recordingBackend) Resume(res string, token, fence uint64) (service.Lease, error) {
	call := b.rec.tick()
	l, err := b.svc.Resume(res, token, fence)
	ret := b.rec.tick()
	if err != nil {
		b.rec.add(-1, call, ret, resIn{Res: res, Token: token}, releaseCode(err))
	} else {
		b.rec.add(-1, call, ret, resIn{Res: res, Token: token}, l.Token)
	}
	return l, err
}

func (b *recordingBackend) Drain(grace time.Duration) error { return b.svc.Drain(grace) }
func (b *recordingBackend) Close() error                    { return b.svc.Close() }

// acquireCode maps a typed acquire error to a model output.
func acquireCode(err error) string {
	switch {
	case errors.Is(err, service.ErrNoWait):
		return "busy"
	case errors.Is(err, service.ErrWaitTimeout):
		return "timeout"
	case errors.Is(err, service.ErrQueueFull):
		return "queuefull"
	case errors.Is(err, service.ErrShed), errors.Is(err, service.ErrDegraded):
		return "shed"
	case errors.Is(err, service.ErrDraining):
		return "draining"
	case errors.Is(err, service.ErrClosed):
		return "closed"
	}
	return "unknown:" + err.Error()
}

// releaseCode maps a typed release/resume error to a model output.
func releaseCode(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, service.ErrNotHeld):
		return "notheld"
	case errors.Is(err, service.ErrLeaseExpired):
		return "expired"
	case errors.Is(err, service.ErrRevoked):
		return "revoked"
	case errors.Is(err, service.ErrFenced):
		return "fenced"
	case errors.Is(err, service.ErrDraining):
		return "draining"
	case errors.Is(err, service.ErrClosed):
		return "closed"
	}
	return "unknown:" + err.Error()
}

// failureClass buckets a gave-up operation's error for the artifact.
func failureClass(err error) string {
	switch {
	case errors.Is(err, service.ErrWaitTimeout):
		return "timeout"
	case errors.Is(err, service.ErrQueueFull),
		errors.Is(err, service.ErrShed),
		errors.Is(err, service.ErrDegraded):
		return "shed"
	case errors.Is(err, service.ErrDraining):
		return "draining"
	case errors.Is(err, service.ErrNotHeld),
		errors.Is(err, service.ErrLeaseExpired),
		errors.Is(err, service.ErrRevoked),
		errors.Is(err, service.ErrFenced):
		return "lease-lost"
	}
	return "transport"
}

// ---------------------------------------------------------------------
// One kind × seed run.
// ---------------------------------------------------------------------

func runOne(kindName string, kinds []Kind, seed uint64, cfg CampaignConfig) RunResult {
	out := RunResult{Kind: kindName, Seed: seed, Conservation: "ok", Linearizable: true}
	fail := func(format string, args ...any) RunResult {
		out.Outcome = OutcomeDegraded
		out.Conservation = fmt.Sprintf(format, args...)
		return out
	}

	rec := &recorder{}
	svc, err := service.New(service.Config{
		Shards:     2,
		QueueDepth: 32,
		DefaultTTL: cfg.TTL,
		OnExpire: func(l service.Lease) {
			// Expiry linearizes somewhere before the callback; Call=0 is
			// the sound (maximally wide) lower bound.
			rec.add(-1, 0, rec.tick(), expIn{Res: l.Resource, Token: l.Token}, nil)
		},
	})
	if err != nil {
		return fail("service: %v", err)
	}
	backend := &recordingBackend{svc: svc, rec: rec}
	srv := service.NewServerWithOptions(backend, service.ServerOptions{
		IdleTimeout: 2 * time.Second,
		MaxWait:     250 * time.Millisecond,
		RetryAfter:  2 * time.Millisecond,
		Window:      cfg.Window,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return fail("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// One proxy and one resilient client per campaign client: dial
	// order = connection order = deterministic stream seeding.
	maxInj := uint64(4)
	if len(kinds) == 1 && (kinds[0] == Stall || kinds[0] == Partition) {
		maxInj = 2 // these cost a full op-timeout (or refused dials) each
	}
	proxies := make([]*Proxy, cfg.Clients)
	clients := make([]*service.ResilientClient, cfg.Clients)
	for i := range proxies {
		p, err := New(ln.Addr().String(), Plan{
			Seed:          seed ^ (uint64(i)+0x51)*0x9e3779b97f4a7c15,
			Kinds:         kinds,
			MaxInjections: maxInj,
		})
		if err != nil {
			svc.Close()
			srv.Close()
			return fail("proxy: %v", err)
		}
		proxies[i] = p
		clients[i] = service.NewResilient(p.Addr(), service.ResilientOptions{
			OpTimeout:   350 * time.Millisecond,
			DialTimeout: 250 * time.Millisecond,
			Retry:       service.RetryPolicy{Initial: time.Millisecond, Cap: 16 * time.Millisecond, MaxAttempts: 12},
			Seed:        seed*7919 + uint64(i),
			Pipeline:    cfg.Window,
		})
	}

	// The workload: closed-loop acquire/release pairs over shared
	// resources, every op riding the retry loop. With a pipelined
	// window, each client's ops are striped across `window` workers
	// sharing the one connection — same ops, same resources, genuinely
	// concurrent frames.
	workers := cfg.Window
	if workers < 1 {
		workers = 1
	}
	failureSet := make(map[string]bool)
	var failMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				rc := clients[i]
				owner := fmt.Sprintf("c%d", i)
				for j := w; j < cfg.OpsPerClient; j += workers {
					res := fmt.Sprintf("r%d", (i+j)%cfg.Resources)
					lease, err := rc.Acquire(res, owner, service.AcquireOptions{
						TTL:     cfg.TTL,
						Wait:    true,
						MaxWait: 150 * time.Millisecond,
					})
					if err != nil {
						failMu.Lock()
						failureSet[failureClass(err)] = true
						failMu.Unlock()
						continue
					}
					if err := rc.Release(lease); err != nil {
						failMu.Lock()
						failureSet[failureClass(err)] = true
						failMu.Unlock()
					}
				}
			}(i, w)
		}
	}
	wg.Wait()

	// Aggregate the retry-layer counters before teardown.
	var stats service.ResilientStats
	for _, rc := range clients {
		st := rc.Stats()
		stats.Dials += st.Dials
		stats.Reconnects += st.Reconnects
		stats.Retries += st.Retries
		stats.ResumedOK += st.ResumedOK
		stats.ResumedLost += st.ResumedLost
		stats.GaveUp += st.GaveUp
		rc.Close()
	}
	var injections uint64
	for _, p := range proxies {
		injections += p.Stats().Total()
	}

	// Graceful drain, then the invariants.
	srv.Drain(cfg.DrainGrace)
	snap := svc.Snapshot()
	t := snap.Totals
	if got, want := t.Grants, t.Releases+t.Expiries+t.Revocations+uint64(snap.LiveLeases); got != want {
		out.Conservation = fmt.Sprintf(
			"grants=%d != releases=%d + expiries=%d + revocations=%d + live=%d",
			got, t.Releases, t.Expiries, t.Revocations, snap.LiveLeases)
	}

	history := rec.history()
	perRes := make(map[string][]linearize.Op)
	for _, op := range history {
		if res := resourceOf(op.Input); res != "" {
			perRes[res] = append(perRes[res], op)
		}
	}
	resNames := make([]string, 0, len(perRes))
	for res := range perRes {
		resNames = append(resNames, res)
	}
	sort.Strings(resNames)
	for _, res := range resNames {
		if ok, _ := linearize.Check(leaseModel{}, perRes[res]); !ok {
			out.Linearizable = false
			failureSet["linearize:"+res] = true
		}
	}

	svc.Close()
	srv.Close()
	<-serveDone
	for _, p := range proxies {
		p.Close()
	}

	for f := range failureSet {
		out.Failures = append(out.Failures, f)
	}
	sort.Strings(out.Failures)

	// Classification hierarchy: worst signal wins. Booleans only — raw
	// counts vary with timing, booleans do not (see package comment).
	switch {
	case stats.GaveUp > 0:
		out.Outcome = OutcomeDegraded
	case stats.Reconnects > 0 || stats.ResumedLost > 0:
		out.Outcome = OutcomeRecovered
	case stats.Retries > 0 || injections > 0:
		out.Outcome = OutcomeAbsorbed
	default:
		out.Outcome = OutcomeClean
	}
	return out
}
