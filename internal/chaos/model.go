package chaos

import (
	"fmt"
	"sort"
	"strings"
)

// The sequential lease model the campaign's linearizability check
// replays server-boundary histories against. It mirrors the in-package
// model of the service's own linearizability tests, extended with the
// wire-v2 operations: resume (a reconnect re-validating a lease) and
// the "fenced"/"draining" verdicts.
//
// Ops touch exactly one resource and the model keeps no cross-resource
// state, so campaigns split each history per resource and check the
// pieces independently — a product-machine decomposition that also
// keeps each piece inside the checker's 64-op memoization bound.

type acqIn struct{ Res string }

type relIn struct {
	Res   string
	Token uint64
}

type resIn struct {
	Res   string
	Token uint64
}

type expIn struct {
	Res   string
	Token uint64
}

func (a acqIn) String() string { return fmt.Sprintf("acquire(%s)", a.Res) }
func (r relIn) String() string { return fmt.Sprintf("release(%s,#%d)", r.Res, r.Token) }
func (r resIn) String() string { return fmt.Sprintf("resume(%s,#%d)", r.Res, r.Token) }
func (e expIn) String() string { return fmt.Sprintf("expire(%s,#%d)", e.Res, e.Token) }

type modelState struct {
	hold    map[string]uint64
	expired map[uint64]bool
	revoked map[uint64]bool
}

func (st modelState) clone() modelState {
	n := modelState{
		hold:    make(map[string]uint64, len(st.hold)),
		expired: make(map[uint64]bool, len(st.expired)),
		revoked: make(map[uint64]bool, len(st.revoked)),
	}
	for k, v := range st.hold {
		n.hold[k] = v
	}
	for k := range st.expired {
		n.expired[k] = true
	}
	for k := range st.revoked {
		n.revoked[k] = true
	}
	return n
}

type leaseModel struct{}

func (leaseModel) Init() any {
	return modelState{hold: map[string]uint64{}, expired: map[uint64]bool{}, revoked: map[uint64]bool{}}
}

func (leaseModel) Step(state any, input, output any) (any, bool) {
	st := state.(modelState)
	switch in := input.(type) {
	case acqIn:
		switch out := output.(type) {
		case uint64: // granted
			if st.hold[in.Res] != 0 {
				return state, false
			}
			n := st.clone()
			n.hold[in.Res] = out
			return n, true
		case string:
			switch out {
			case "busy": // legal only while the resource is held
				return state, st.hold[in.Res] != 0
			case "timeout", "queuefull", "shed", "closed", "draining":
				// Admission refusals, timeouts, and the drain verdict are
				// legal no-ops: they depend on queue occupancy, timing, or
				// lifecycle, which the sequential lease model does not
				// track.
				return state, true
			}
		}
		return state, false
	case relIn:
		switch output.(string) {
		case "ok":
			if st.hold[in.Res] != in.Token {
				return state, false
			}
			n := st.clone()
			delete(n.hold, in.Res)
			return n, true
		case "notheld":
			return state, st.hold[in.Res] != in.Token && !st.expired[in.Token] && !st.revoked[in.Token]
		case "expired":
			return state, st.expired[in.Token]
		case "revoked":
			return state, st.revoked[in.Token]
		case "fenced":
			// A fenced rejection proves the token does not hold the
			// resource (a newer grant exists); the model does not track
			// fence counters, so that is exactly the legality condition.
			return state, st.hold[in.Res] != in.Token
		}
		return state, false
	case resIn:
		switch out := output.(type) {
		case uint64: // re-validated: the token must still hold the resource
			return state, out == in.Token && st.hold[in.Res] == in.Token
		case string:
			switch out {
			case "notheld":
				return state, st.hold[in.Res] != in.Token && !st.expired[in.Token] && !st.revoked[in.Token]
			case "expired":
				return state, st.expired[in.Token]
			case "revoked":
				return state, st.revoked[in.Token]
			case "fenced":
				return state, st.hold[in.Res] != in.Token
			case "closed", "draining":
				return state, true
			}
		}
		return state, false
	case expIn:
		if st.hold[in.Res] != in.Token {
			return state, false
		}
		n := st.clone()
		delete(n.hold, in.Res)
		n.expired[in.Token] = true
		return n, true
	}
	return state, false
}

func (leaseModel) Key(state any) string {
	st := state.(modelState)
	var parts []string
	for r, t := range st.hold {
		parts = append(parts, fmt.Sprintf("h:%s=%d", r, t))
	}
	for t := range st.expired {
		parts = append(parts, fmt.Sprintf("e:%d", t))
	}
	for t := range st.revoked {
		parts = append(parts, fmt.Sprintf("r:%d", t))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// resourceOf extracts the resource an op touches, for per-resource
// history splitting.
func resourceOf(input any) string {
	switch in := input.(type) {
	case acqIn:
		return in.Res
	case relIn:
		return in.Res
	case resIn:
		return in.Res
	case expIn:
		return in.Res
	}
	return ""
}
