package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestKindParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("gremlins"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	ks, err := ParseKinds("all")
	if err != nil || len(ks) != len(Kinds()) {
		t.Fatalf("ParseKinds(all) = %v, %v", ks, err)
	}
	ks, err = ParseKinds("reset,truncate")
	if err != nil || len(ks) != 2 || ks[0] != Reset || ks[1] != Truncate {
		t.Fatalf("ParseKinds(reset,truncate) = %v, %v", ks, err)
	}
	if _, err := ParseKinds("reset,,"); err == nil {
		t.Fatal("empty kind accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan invalid: %v", err)
	}
	if err := (Plan{Rate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := (Plan{Rate: -0.1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// frame builds a wire-shaped frame (the relay is frame-aware).
func frame(payload []byte) []byte {
	b := []byte{1, 9, byte(len(payload) >> 8), byte(len(payload))}
	return append(b, payload...)
}

// TestProxyPassThrough proves a kind-less proxy is a faithful pipe for
// framed traffic and injects nothing.
func TestProxyPassThrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()

	p, err := New(ln.Addr().String(), Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	for i := 0; i < 10; i++ {
		msg := frame([]byte{byte(i), 0xab, 0xcd})
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("frame %d: got %x, want %x", i, got, msg)
		}
	}
	st := p.Stats()
	if st.Total() != 0 {
		t.Fatalf("kind-less proxy injected %d faults: %v", st.Total(), st.Injections)
	}
	if st.Conns != 1 {
		t.Fatalf("conns = %d, want 1", st.Conns)
	}
}

// reportBytes runs a campaign and renders its artifact.
func reportBytes(t *testing.T, cfg CampaignConfig) []byte {
	t.Helper()
	rep := RunCampaign(cfg)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignDeterminism is the artifact contract: the same seeds must
// produce a byte-identical report across runs, retry timing and
// scheduler jitter notwithstanding.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs real sockets and timeouts")
	}
	cfg := CampaignConfig{
		Kinds:        []Kind{Latency, Truncate, Reset},
		Seeds:        []uint64{1, 2},
		Clients:      2,
		OpsPerClient: 3,
	}
	a := reportBytes(t, cfg)
	b := reportBytes(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed campaigns differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestCampaignAllKinds runs every fault kind once and asserts the
// invariants the campaign exists to check: every run classifies, lease
// conservation holds, and every per-resource history linearizes.
func TestCampaignAllKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs real sockets and timeouts")
	}
	rep := RunCampaign(CampaignConfig{
		Seeds:        []uint64{7},
		Clients:      2,
		OpsPerClient: 3,
	})
	if want := len(Kinds()) + 1; len(rep.Runs) != want {
		t.Fatalf("runs = %d, want %d", len(rep.Runs), want)
	}
	valid := map[string]bool{
		OutcomeClean: true, OutcomeAbsorbed: true,
		OutcomeRecovered: true, OutcomeDegraded: true,
	}
	for _, run := range rep.Runs {
		if !valid[run.Outcome] {
			t.Errorf("%s/%d: unclassified outcome %q", run.Kind, run.Seed, run.Outcome)
		}
		if run.Conservation != "ok" {
			t.Errorf("%s/%d: conservation violated: %s", run.Kind, run.Seed, run.Conservation)
		}
		if !run.Linearizable {
			t.Errorf("%s/%d: history not linearizable: %v", run.Kind, run.Seed, run.Failures)
		}
	}
	if rep.Failures != 0 {
		t.Errorf("report failures = %d, want 0", rep.Failures)
	}
}

// TestCampaignPipelined is the pipelined chaos contract: with every
// client connection running a wire-v3 window, faults that land mid-
// batch — a truncation cutting several in-flight frames at once, a
// reset with a full window outstanding — must still classify, conserve
// leases, and linearize, and the artifact must stay deterministic.
func TestCampaignPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs real sockets and timeouts")
	}
	cfg := CampaignConfig{
		Kinds:        []Kind{Truncate, Reset, Latency},
		Seeds:        []uint64{3, 5},
		Clients:      2,
		OpsPerClient: 4,
		Window:       4,
	}
	rep := RunCampaign(cfg)
	valid := map[string]bool{
		OutcomeClean: true, OutcomeAbsorbed: true,
		OutcomeRecovered: true, OutcomeDegraded: true,
	}
	for _, run := range rep.Runs {
		if !valid[run.Outcome] {
			t.Errorf("%s/%d: unclassified outcome %q", run.Kind, run.Seed, run.Outcome)
		}
		if run.Conservation != "ok" {
			t.Errorf("%s/%d: conservation violated: %s", run.Kind, run.Seed, run.Conservation)
		}
		if !run.Linearizable {
			t.Errorf("%s/%d: history not linearizable: %v", run.Kind, run.Seed, run.Failures)
		}
	}
	if rep.Failures != 0 {
		t.Errorf("report failures = %d, want 0", rep.Failures)
	}
	// Truncation mid-batch must surface as a retryable transport fault
	// the resilient layer absorbs or recovers from — never a degraded
	// (budget-exhausted) run at these small scales.
	for _, run := range rep.Runs {
		if run.Kind == string(Truncate) && run.Outcome == OutcomeDegraded {
			t.Errorf("truncate/%d: pipelined truncation degraded instead of recovering", run.Seed)
		}
	}
	// And the pipelined artifact obeys the same byte-identity contract.
	a := reportBytes(t, cfg)
	b := reportBytes(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed pipelined campaigns differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
