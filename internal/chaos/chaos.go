// Package chaos is a deterministic fault-injecting TCP proxy for the
// lock-lease wire protocol, plus the campaign harness that drives the
// serving path through it and checks lease conservation and
// linearizability on the far side.
//
// Determinism is the whole design. The proxy is frame-aware: it relays
// whole wire frames (4-byte header + payload, read with io.ReadFull),
// and draws one injection decision per frame from a seeded
// faults.Stream. Each (connection, direction) pair owns its own stream,
// seeded from (plan seed, connection index, direction) — and because
// one proxy serves exactly one client, connection indices are assigned
// in dial order even across reconnects. A decision therefore depends
// only on (seed, connection index, direction, frame index), never on
// wall-clock time or cross-connection races: the same seed injects the
// same faults at the same frames, run after run.
//
// Fault kinds cover the serving path's failure surface: added latency,
// bandwidth caps, and partial writes (benign — the bytes all arrive);
// frame truncation, connection resets, one-way stalls, and full
// partitions (disruptive — the client must reconnect and re-validate
// its leases by fencing token). Disruptive kinds are pinned to one
// direction each so a single armed kind yields a fully deterministic
// kill schedule: resets, stalls, and partitions strike the request
// path, truncation strikes the response path — the lost-grant case
// that only fencing tokens make safe.
package chaos

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"iqolb/internal/faults"
)

// Kind is one network fault kind.
type Kind uint8

const (
	// Latency delays each injected frame by Plan.Latency before
	// forwarding it (benign).
	Latency Kind = iota
	// Bandwidth paces injected frames as if squeezed through
	// Plan.BandwidthBPS (benign).
	Bandwidth
	// PartialWrite forwards an injected frame in two writes with a gap
	// between them — the bytes all arrive, but never in one read
	// (benign).
	PartialWrite
	// Truncate forwards only a prefix of the frame and kills the
	// connection — the peer observes a frame cut off mid-payload.
	// Response direction: this is the lost-grant fault.
	Truncate
	// Reset kills the connection without forwarding the frame.
	Reset
	// Stall stops forwarding this direction (frames are read and
	// discarded) until the peer gives up; the other direction keeps
	// flowing — a one-way (half-open) failure.
	Stall
	// Partition kills the connection AND refuses the next
	// Plan.PartitionDials reconnect attempts — a full, then healing,
	// network partition.
	Partition

	numKinds
)

var kindNames = [...]string{
	"latency", "bandwidth", "partial-write", "truncate", "reset", "stall", "partition",
}

// String returns the kind's stable CLI/JSON name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Parse resolves a kind name.
func Parse(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault kind %q (have %s)", s, strings.Join(kindNames[:], ", "))
}

// Kinds returns every fault kind in enum order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKinds resolves a comma-separated kind list; "all" (or "*")
// selects every kind.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" || s == "*" {
		return Kinds(), nil
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		k, err := Parse(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Relay directions. Disruptive kinds are pinned per direction so a
// single-kind plan has a deterministic kill schedule (see the package
// comment).
const (
	dirRequest  = 0 // client → server
	dirResponse = 1 // server → client
)

// allowed reports whether kind may strike in direction dir.
func (k Kind) allowed(dir int) bool {
	switch k {
	case Latency, Bandwidth, PartialWrite:
		return true
	case Truncate:
		return dir == dirResponse
	case Reset, Stall, Partition:
		return dir == dirRequest
	}
	return false
}

// Plan is one proxy's deterministic fault schedule — pure data, like
// faults.Plan. Zero optional fields select the documented defaults.
type Plan struct {
	// Seed drives every injection decision; equal seeds (and equal peer
	// behavior) inject identically.
	Seed uint64 `json:"seed"`
	// Kinds lists the armed fault kinds; empty arms nothing (a clean
	// relay, useful as the control run).
	Kinds []Kind `json:"kinds,omitempty"`
	// Rate is the per-frame injection probability in (0, 1]; 0 means 1.
	// Campaigns use 1 with a MaxInjections cap, which makes the full
	// fault schedule independent of frame counts beyond the cap.
	Rate float64 `json:"rate,omitempty"`
	// MaxInjections caps injections per direction across the proxy's
	// whole life (0 = 4). Without a cap, rate-1 disruptive kinds would
	// kill every reconnect forever.
	MaxInjections uint64 `json:"max_injections,omitempty"`
	// MaxSkip bounds each connection's clean warm-up: every (conn, dir)
	// stream first draws skip ∈ [0, MaxSkip] frames to pass untouched,
	// so faults also strike mid-session, with leases held (0 = 3).
	MaxSkip int64 `json:"max_skip,omitempty"`
	// Latency is the Latency kind's added delay (0 = 2ms).
	Latency time.Duration `json:"latency,omitempty"`
	// BandwidthBPS is the Bandwidth kind's simulated rate (0 = 20000).
	BandwidthBPS int64 `json:"bandwidth_bps,omitempty"`
	// PartitionDials is how many reconnect attempts each Partition
	// refuses before healing (0 = 2). Counting dials instead of wall
	// time keeps the healing point deterministic.
	PartitionDials int `json:"partition_dials,omitempty"`
}

func (p Plan) rate() float64 {
	if p.Rate == 0 {
		return 1
	}
	return p.Rate
}

func (p Plan) maxInjections() uint64 {
	if p.MaxInjections == 0 {
		return 4
	}
	return p.MaxInjections
}

func (p Plan) maxSkip() int64 {
	if p.MaxSkip == 0 {
		return 3
	}
	return p.MaxSkip
}

func (p Plan) latency() time.Duration {
	if p.Latency == 0 {
		return 2 * time.Millisecond
	}
	return p.Latency
}

func (p Plan) bandwidthBPS() int64 {
	if p.BandwidthBPS == 0 {
		return 20_000
	}
	return p.BandwidthBPS
}

func (p Plan) partitionDials() int {
	if p.PartitionDials == 0 {
		return 2
	}
	return p.PartitionDials
}

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("chaos: rate %v outside [0, 1]", p.Rate)
	}
	for _, k := range p.Kinds {
		if int(k) >= int(numKinds) {
			return fmt.Errorf("chaos: unknown kind %d in plan", uint8(k))
		}
	}
	if p.MaxSkip < 0 || p.Latency < 0 || p.BandwidthBPS < 0 || p.PartitionDials < 0 {
		return fmt.Errorf("chaos: negative knob in plan")
	}
	return nil
}

// wireHeaderLen mirrors the service wire framing (version, op, u16
// length); duplicated here so chaos does not import the service.
const wireHeaderLen = 4

// session is one relayed connection pair; kill closes both ends exactly
// once, which terminates both relay goroutines.
type session struct {
	client, server net.Conn
	once           sync.Once
}

func (ss *session) kill() {
	ss.once.Do(func() {
		ss.client.Close()
		ss.server.Close()
	})
}

// Stats summarizes what a proxy did.
type Stats struct {
	// Conns counts served (relayed) connections; refused partition
	// dials are not served and not counted.
	Conns uint64 `json:"conns"`
	// Injections aggregates injected faults by kind name (nil when
	// nothing fired).
	Injections map[string]uint64 `json:"injections,omitempty"`
}

// Total sums the injection counts.
func (s Stats) Total() uint64 {
	var n uint64
	for _, c := range s.Injections {
		n += c
	}
	return n
}

// Proxy is a deterministic fault-injecting TCP proxy between ONE client
// and a lockserve target. One proxy per client is load-bearing: it
// makes connection order equal dial order, which keeps stream seeding
// deterministic across reconnects.
type Proxy struct {
	target string
	plan   Plan
	ln     net.Listener

	mu        sync.Mutex
	connIndex uint64
	refuse    int // partition: dials left to refuse
	perDir    [2]uint64
	injected  map[string]uint64
	conns     uint64
	sessions  map[*session]struct{}
	closed    bool

	wg sync.WaitGroup
}

// New starts a proxy on an ephemeral localhost port relaying to target.
func New(target string, plan Plan) (*Proxy, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target:   target,
		plan:     plan,
		ln:       ln,
		injected: make(map[string]uint64),
		sessions: make(map[*session]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what the client dials.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a copy of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{Conns: p.conns}
	if len(p.injected) > 0 {
		st.Injections = make(map[string]uint64, len(p.injected))
		for k, v := range p.injected {
			st.Injections[k] = v
		}
	}
	return st
}

// Close stops accepting, kills live sessions, and waits for every relay
// goroutine.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	sessions := make([]*session, 0, len(p.sessions))
	for ss := range p.sessions {
		sessions = append(sessions, ss)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, ss := range sessions {
		ss.kill()
	}
	p.wg.Wait()
	return err
}

// streamSeed mixes the plan seed with the connection index and
// direction; faults.NewStream finalizes with splitmix64, so simple
// odd-constant spreading suffices.
func (p *Proxy) streamSeed(connIndex uint64, dir int) uint64 {
	return p.plan.Seed ^ (connIndex+1)*0x9e3779b97f4a7c15 ^ uint64(dir+1)*0x94d049bb133111eb
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		if p.refuse > 0 {
			// Partitioned: this dial is refused (and, unlike served
			// connections, consumes no connection index).
			p.refuse--
			p.mu.Unlock()
			c.Close()
			continue
		}
		idx := p.connIndex
		p.connIndex++
		p.conns++
		p.mu.Unlock()

		s, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		ss := &session{client: c, server: s}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			ss.kill()
			return
		}
		p.sessions[ss] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.relay(ss, idx, dirRequest, c, s)
		go p.relay(ss, idx, dirResponse, s, c)
	}
}

func (p *Proxy) dropSession(ss *session) {
	ss.kill()
	p.mu.Lock()
	delete(p.sessions, ss)
	p.mu.Unlock()
}

// tryInject atomically consumes one unit of dir's injection budget for
// kind; it reports false when the budget is spent.
func (p *Proxy) tryInject(dir int, kind Kind) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perDir[dir] >= p.plan.maxInjections() {
		return false
	}
	p.perDir[dir]++
	p.injected[kind.String()]++
	return true
}

func (p *Proxy) budgetLeft(dir int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.perDir[dir] < p.plan.maxInjections()
}

// relay forwards whole wire frames src→dst, drawing one injection
// decision per frame from this (connection, direction)'s own stream.
func (p *Proxy) relay(ss *session, connIndex uint64, dir int, src, dst net.Conn) {
	defer p.wg.Done()
	defer p.dropSession(ss)

	var armed []Kind
	for _, k := range p.plan.Kinds { // plan order; campaigns arm one kind
		if k.allowed(dir) {
			armed = append(armed, k)
		}
	}
	str := faults.NewStream(p.streamSeed(connIndex, dir))
	skip := int64(0)
	if len(armed) > 0 {
		skip = str.Intn(p.plan.maxSkip() + 1)
	}

	var hdr [wireHeaderLen]byte
	buf := make([]byte, 0, 256)
	for frame := int64(0); ; frame++ {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		n := int(hdr[2])<<8 | int(hdr[3])
		buf = append(buf[:0], hdr[:]...)
		buf = buf[:wireHeaderLen+n]
		if _, err := io.ReadFull(src, buf[wireHeaderLen:]); err != nil {
			return
		}

		kind := numKinds // sentinel: no injection
		if len(armed) > 0 && frame >= skip && p.budgetLeft(dir) && str.Chance(p.plan.rate()) {
			k := armed[str.Intn(int64(len(armed)))]
			if p.tryInject(dir, k) {
				kind = k
			}
		}

		switch kind {
		case Latency:
			time.Sleep(p.plan.latency())
		case Bandwidth:
			time.Sleep(time.Duration(int64(len(buf))) * time.Second / time.Duration(p.plan.bandwidthBPS()))
		case PartialWrite:
			half := len(buf) / 2
			if half == 0 {
				half = 1
			}
			if _, err := dst.Write(buf[:half]); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
			if _, err := dst.Write(buf[half:]); err != nil {
				return
			}
			continue
		case Truncate:
			// Cut the frame off mid-payload (or mid-header for empty
			// payloads) and kill the session: the receiver sees an
			// unexpected EOF inside a frame.
			cut := wireHeaderLen + n/2
			if n == 0 {
				cut = wireHeaderLen / 2
			}
			dst.Write(buf[:cut])
			return
		case Reset:
			return // kill without forwarding
		case Stall:
			// One-way stall: blackhole this direction's frames (still
			// reading, so the peer's close is noticed) until the session
			// dies.
			for {
				if _, err := io.ReadFull(src, hdr[:]); err != nil {
					return
				}
				m := int(hdr[2])<<8 | int(hdr[3])
				if _, err := io.CopyN(io.Discard, src, int64(m)); err != nil {
					return
				}
			}
		case Partition:
			p.mu.Lock()
			p.refuse += p.plan.partitionDials()
			p.mu.Unlock()
			return
		}

		if _, err := dst.Write(buf); err != nil {
			return
		}
	}
}
