package cliconfig

import (
	"errors"
	"testing"

	"iqolb/internal/service"
	"iqolb/locks"
)

func TestPositiveInts(t *testing.T) {
	got, err := PositiveInts("1, 4,16", "client count")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("PositiveInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "4,,8"} {
		if _, err := PositiveInts(bad, "count"); err == nil {
			t.Errorf("PositiveInts(%q) accepted", bad)
		}
	}
}

func TestLockKinds(t *testing.T) {
	all, err := LockKinds("all")
	if err != nil || len(all) != len(locks.Kinds()) {
		t.Fatalf("LockKinds(all) = %v, %v", all, err)
	}
	got, err := LockKinds("mcs, ticket")
	if err != nil || len(got) != 2 || got[0] != locks.KindMCS || got[1] != locks.KindTicket {
		t.Fatalf("LockKinds = %v, %v", got, err)
	}
	if _, err := LockKinds("zigzag"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := LockKind("zigzag"); err == nil {
		t.Fatal("LockKind accepted unknown kind")
	}
}

func TestPolicies(t *testing.T) {
	both, err := Policies("both", "")
	if err != nil || len(both) != 2 {
		t.Fatalf("Policies(both) = %v, %v", both, err)
	}
	if _, err := Policies("both", "10.0.0.1:7"); err == nil {
		t.Fatal("both with external addr accepted")
	}
	one, err := Policies("broadcast", "10.0.0.1:7")
	if err != nil || len(one) != 1 || one[0] != service.PolicyBroadcast {
		t.Fatalf("Policies(broadcast) = %v, %v", one, err)
	}
	if _, err := Policies("zigzag", ""); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBenches(t *testing.T) {
	all, err := Benches("all")
	if err != nil || len(all) == 0 {
		t.Fatalf("Benches(all) = %v, %v", all, err)
	}
	if _, err := Benches("no-such-bench"); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestExitCode(t *testing.T) {
	if got := ExitCode(nil); got != 0 {
		t.Fatalf("ExitCode(nil) = %d", got)
	}
	if _, err := service.New(service.Config{Shards: -1}); ExitCode(err) != 2 {
		t.Fatalf("config error exit = %d, want 2", ExitCode(err))
	}
	if _, err := locks.New(locks.Kind("zigzag")); ExitCode(err) != 2 {
		t.Fatalf("unknown kind exit = %d, want 2", ExitCode(err))
	}
	if got := ExitCode(errors.New("boom")); got != 1 {
		t.Fatalf("runtime error exit = %d, want 1", got)
	}
}
