// Package cliconfig holds the flag-value parsing shared by the
// serving-layer CLIs (cmd/lockserve, cmd/lockload, cmd/lockbench).
// Each helper turns one comma-list or keyword flag into validated
// values; the CLIs keep only their flag declarations and wiring. All
// errors are plain values — the CLIs decide exit codes (the repo
// convention: 2 for unusable configuration, 1 for runtime failure) via
// ExitCode.
package cliconfig

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"iqolb/internal/service"
	"iqolb/internal/workload"
	"iqolb/locks"
)

// PositiveInts parses a comma-separated list of positive integers
// (client counts, GOMAXPROCS sweeps). what names the quantity in
// errors.
func PositiveInts(s, what string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s %q", what, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// Durations parses a comma-separated list of non-negative Go durations
// (flush-delay sweeps). what names the quantity in errors.
func Durations(s, what string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(f))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad %s %q", what, f)
		}
		out = append(out, d)
	}
	return out, nil
}

// LockKind validates a single lock-kind name against the registry.
func LockKind(s string) (locks.Kind, error) {
	return locks.ParseKind(s)
}

// LockKinds parses a comma-separated list of lock kinds, or "all" for
// every registered kind in canonical order.
func LockKinds(s string) ([]locks.Kind, error) {
	if s == "all" {
		return locks.Kinds(), nil
	}
	var kinds []locks.Kind
	for _, n := range strings.Split(s, ",") {
		k, err := locks.ParseKind(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// Policies parses a grant-policy flag for the flat load runner:
// "handoff", "broadcast", or "both". "both" needs an in-process server
// (an external server's policy is fixed), signalled by an empty addr.
func Policies(s, addr string) ([]service.Policy, error) {
	if s == "both" {
		if addr != "" {
			return nil, fmt.Errorf(`-policy both needs an in-process server (the policy is fixed by the external server); pick "handoff" or "broadcast"`)
		}
		return []service.Policy{service.PolicyHandoff, service.PolicyBroadcast}, nil
	}
	p, err := service.ParsePolicy(s)
	if err != nil {
		return nil, err
	}
	return []service.Policy{p}, nil
}

// Benches parses a comma-separated list of workload signature names, or
// "all" for every signature that has a native analogue (dedicated
// pollers excluded).
func Benches(s string) ([]string, error) {
	if s == "all" {
		var names []string
		for _, sp := range append(workload.Specs(), workload.MicroSpecs()...) {
			if sp.Params.PollProcs > 0 {
				continue // no native analogue for dedicated pollers
			}
			names = append(names, sp.Name)
		}
		return names, nil
	}
	names := strings.Split(s, ",")
	for _, n := range names {
		if _, err := workload.ByName(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// ExitCode maps an error onto the repo's CLI exit-code convention:
// configuration errors (service.ConfigError, locks.UnknownKindError)
// are 2, anything else 1, nil 0.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ce *service.ConfigError
	var uk *locks.UnknownKindError
	if errors.As(err, &ce) || errors.As(err, &uk) {
		return 2
	}
	return 1
}
