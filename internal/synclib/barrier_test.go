package synclib

import (
	"testing"

	"iqolb/internal/core"
	"iqolb/internal/isa"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
)

const (
	barrierAddr = mem.Addr(0x8000)
	phaseBase   = mem.Addr(0x9000) // one counter line per phase
)

// barrierProgram makes every CPU increment phase counter k (under LL/SC)
// and cross the software barrier, for K phases. If the barrier leaks, a
// processor increments phase k+1 before everyone finished k; the test
// catches that by having each CPU verify the full count for the phase it
// just left.
func barrierProgram(t *testing.T, procs, phases int) *isa.Program {
	t.Helper()
	cb := CentralBarrier{Addr: barrierAddr, Procs: procs}
	b := isa.NewBuilder()
	cb.EmitInit(b)
	b.Li(isa.S0, 0).
		Li(isa.S1, int64(phases)).
		Li(isa.S2, int64(phaseBase)).
		Li(isa.S3, 0) // error flag
	b.Label("phase")
	// a1 = &phaseCounter[s0]
	b.Sll(isa.T4, isa.S0, 6).
		Add(isa.A1, isa.S2, isa.T4)
	l := b.Scope("inc")
	b.Label(l("fa")).
		Ll(isa.T1, 0, isa.A1).
		Addi(isa.T1, isa.T1, 1).
		Sc(isa.T1, 0, isa.A1).
		Beq(isa.T1, isa.R0, l("fa"))
	cb.Emit(b)
	// After the barrier the phase counter must read exactly procs.
	b.Lw(isa.T5, 0, isa.A1).
		Li(isa.T6, int64(procs)).
		Beq(isa.T5, isa.T6, "ok")
	b.Li(isa.S3, 1) // leak detected
	b.Label("ok").
		Addi(isa.S0, isa.S0, 1).
		Blt(isa.S0, isa.S1, "phase").
		// Publish the error flag at a per-cpu address.
		Cpuid(isa.T0).
		Sll(isa.T0, isa.T0, 3).
		Li(isa.T1, 0xA000).
		Add(isa.T1, isa.T1, isa.T0).
		Sw(isa.S3, 0, isa.T1).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCentralBarrierSynchronizes(t *testing.T) {
	const procs, phases = 8, 6
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeDelayed, core.ModeIQOLB} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := machine.DefaultConfig(procs, mode)
			cfg.CycleLimit = 100_000_000
			m, err := machine.New(cfg, barrierProgram(t, procs, phases), nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.HitLimit {
				t.Fatal("barrier deadlocked")
			}
			for i := 0; i < procs; i++ {
				if m.Peek(mem.Addr(0xA000+8*i)) != 0 {
					t.Fatalf("cpu %d crossed the barrier before all arrived", i)
				}
			}
			for k := 0; k < phases; k++ {
				if got := m.Peek(phaseBase + mem.Addr(k*64)); got != procs {
					t.Fatalf("phase %d counter = %d, want %d", k, got, procs)
				}
			}
			// The count word must have been reset by the last episode.
			if got := m.Peek(barrierAddr); got != 0 {
				t.Fatalf("barrier count = %d after final episode, want 0", got)
			}
		})
	}
}

func TestCentralBarrierSingleProc(t *testing.T) {
	cfg := machine.DefaultConfig(1, core.ModeBaseline)
	cfg.CycleLimit = 10_000_000
	m, err := machine.New(cfg, barrierProgram(t, 1, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("single-proc barrier hung")
	}
}

func TestBarrierFasterUnderDelayedResponse(t *testing.T) {
	// The paper's §2 point: LL/SC software barriers benefit from the
	// delayed-response hardware because the arrival Fetch&Add pipelines
	// with no SC retries.
	const procs, phases = 12, 8
	run := func(mode core.Mode) uint64 {
		cfg := machine.DefaultConfig(procs, mode)
		cfg.CycleLimit = 100_000_000
		m, err := machine.New(cfg, barrierProgram(t, procs, phases), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.HitLimit {
			t.Fatal("hung")
		}
		return res.Cycles
	}
	base := run(core.ModeBaseline)
	delayed := run(core.ModeDelayed)
	if delayed >= base {
		t.Fatalf("delayed-response barrier (%d cycles) not faster than baseline (%d)", delayed, base)
	}
}
