// Package synclib emits the synchronization routines the workloads run, as
// sequences of the simulated ISA. The same TTS routine serves four of the
// paper's configurations unchanged — baseline, aggressive baseline, delayed
// response and IQOLB differ only in the hardware mode — which is exactly
// the paper's "no change to existing software" claim. QOLB uses the
// explicit EnQOLB/DeQOLB instructions; the ticket and MCS locks are the
// classic software alternatives included for the extension studies.
package synclib

import (
	"fmt"

	"iqolb/internal/isa"
	"iqolb/internal/mem"
)

// Lock is a code generator for one lock primitive. Acquire and Release
// emit code operating on the lock whose base byte address is in the `lock`
// register; both clobber T0–T3 and assume each lock occupies its own cache
// line.
type Lock interface {
	Name() string
	Acquire(b *isa.Builder, lock isa.Reg)
	Release(b *isa.Builder, lock isa.Reg)
}

// TTS is test&test&set over LL/SC: spin reading until the lock looks free,
// then try a conditional store (the paper's software baseline, §4).
type TTS struct{}

// Name implements Lock.
func (TTS) Name() string { return "tts" }

// Acquire implements Lock.
func (TTS) Acquire(b *isa.Builder, lock isa.Reg) {
	l := b.Scope("tts.acq")
	b.Label(l("spin")).
		Ll(isa.T1, 0, lock).
		Bne(isa.T1, isa.R0, l("spin")). // lock held: keep testing
		Li(isa.T0, 1).
		Sc(isa.T0, 0, lock).
		Beq(isa.T0, isa.R0, l("spin")) // SC failed: retry
}

// Release implements Lock.
func (TTS) Release(b *isa.Builder, lock isa.Reg) {
	b.Sw(isa.R0, 0, lock)
}

// QOLB uses the explicit EnQOLB/DeQOLB instructions: the hardware queue
// grants the lock directly, so no spin loop is needed in software.
type QOLB struct{}

// Name implements Lock.
func (QOLB) Name() string { return "qolb" }

// Acquire implements Lock.
func (QOLB) Acquire(b *isa.Builder, lock isa.Reg) {
	b.Enqolb(isa.T0, 0, lock)
}

// Release implements Lock.
func (QOLB) Release(b *isa.Builder, lock isa.Reg) {
	b.Deqolb(0, lock)
}

// Ticket is the classic ticket lock: Fetch&Add on the next-ticket word,
// then spin until now-serving reaches the ticket. Layout: word 0 =
// next-ticket, word 1 = now-serving (both in the lock's line).
type Ticket struct{}

// Name implements Lock.
func (Ticket) Name() string { return "ticket" }

// Acquire implements Lock.
func (Ticket) Acquire(b *isa.Builder, lock isa.Reg) {
	l := b.Scope("ticket.acq")
	// t2 = fetch&add(lock[0], 1)
	b.Label(l("fa")).
		Ll(isa.T2, 0, lock).
		Addi(isa.T0, isa.T2, 1).
		Sc(isa.T0, 0, lock).
		Beq(isa.T0, isa.R0, l("fa")).
		// spin until lock[1] == t2
		Label(l("spin")).
		Lw(isa.T1, int64(mem.WordSize), lock).
		Bne(isa.T1, isa.T2, l("spin"))
}

// Release implements Lock.
func (Ticket) Release(b *isa.Builder, lock isa.Reg) {
	b.Lw(isa.T0, int64(mem.WordSize), lock).
		Addi(isa.T0, isa.T0, 1).
		Sw(isa.T0, int64(mem.WordSize), lock)
}

// MCS is the Mellor-Crummey/Scott queue lock in software: a swap on the
// tail pointer enqueues; each waiter spins on its own queue node. Queue
// nodes live at QNodeBase + cpuid*LineSize with word 0 = next pointer
// (stored as the node's byte address; 0 = none) and word 1 = locked flag.
//
// Acquire leaves the caller's node address in S6, which Release consumes:
// MCS acquire/release pairs must therefore not nest over another MCS lock.
type MCS struct {
	// QNodeBase is the byte address of the per-processor queue-node
	// array. It must be line-aligned and leave LineSize bytes per CPU.
	QNodeBase uint64
}

// Name implements Lock.
func (MCS) Name() string { return "mcs" }

// Acquire implements Lock.
func (m MCS) Acquire(b *isa.Builder, lock isa.Reg) {
	l := b.Scope("mcs.acq")
	// s6 = my qnode address
	b.Cpuid(isa.T0).
		Sll(isa.T0, isa.T0, 6). // * LineSize
		Li(isa.S6, int64(m.QNodeBase)).
		Add(isa.S6, isa.S6, isa.T0).
		// node.next = 0; node.locked = 1
		Sw(isa.R0, 0, isa.S6).
		Li(isa.T1, 1).
		Sw(isa.T1, int64(mem.WordSize), isa.S6).
		// pred = swap(tail, node)
		Mov(isa.T2, isa.S6).
		Swap(isa.T2, 0, lock).
		// no predecessor: lock acquired
		Beq(isa.T2, isa.R0, l("done")).
		// pred.next = node, then spin on our own locked flag
		Sw(isa.S6, 0, isa.T2).
		Label(l("spin")).
		Lw(isa.T3, int64(mem.WordSize), isa.S6).
		Bne(isa.T3, isa.R0, l("spin")).
		Label(l("done"))
}

// Release implements Lock.
func (m MCS) Release(b *isa.Builder, lock isa.Reg) {
	l := b.Scope("mcs.rel")
	b.Lw(isa.T0, 0, isa.S6). // next
					Bne(isa.T0, isa.R0, l("handoff")).
		// No visible successor: try CAS(tail, node, 0).
		Label(l("cas")).
		Ll(isa.T1, 0, lock).
		Bne(isa.T1, isa.S6, l("waitnext")). // someone enqueued behind us
		Li(isa.T2, 0).
		Sc(isa.T2, 0, lock).
		Beq(isa.T2, isa.R0, l("cas")).
		J(l("done")).
		// A successor is linking itself: wait for node.next.
		Label(l("waitnext")).
		Lw(isa.T0, 0, isa.S6).
		Beq(isa.T0, isa.R0, l("waitnext")).
		Label(l("handoff")).
		Sw(isa.R0, int64(mem.WordSize), isa.T0). // next.locked = 0
		Label(l("done"))
}

// Primitive names a software/hardware experiment configuration's lock.
type Primitive string

// The primitives exposed to the workload generators and CLI tools.
const (
	PrimTTS    Primitive = "tts"
	PrimQOLB   Primitive = "qolb"
	PrimTicket Primitive = "ticket"
	PrimMCS    Primitive = "mcs"
)

// New returns the emitter for a primitive. MCS needs the machine's qnode
// area base.
func New(p Primitive, mcsQNodeBase uint64) (Lock, error) {
	switch p {
	case PrimTTS:
		return TTS{}, nil
	case PrimQOLB:
		return QOLB{}, nil
	case PrimTicket:
		return Ticket{}, nil
	case PrimMCS:
		return MCS{QNodeBase: mcsQNodeBase}, nil
	default:
		return nil, fmt.Errorf("synclib: unknown primitive %q", p)
	}
}
