package synclib

import (
	"fmt"
	"testing"

	"iqolb/internal/core"
	"iqolb/internal/isa"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
)

const (
	lockAddr    = 1024
	counterAddr = 2048
	qnodeBase   = 8192
)

// counterProgram builds the standard mutual-exclusion kernel: every CPU
// increments a shared counter iters times under the given lock, with
// think cycles of private work between critical sections. Zero think time
// lets an unfair lock "win" by letting one CPU hog the line, which no real
// workload looks like; performance comparisons use think > 0.
func counterProgram(t *testing.T, lk Lock, iters int, think int64) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Li(isa.A0, lockAddr).
		Li(isa.A1, counterAddr).
		Li(isa.S0, 0).
		Li(isa.S1, int64(iters)).
		Label("loop")
	lk.Acquire(b, isa.A0)
	b.Lw(isa.T4, 0, isa.A1).
		Addi(isa.T4, isa.T4, 1).
		Sw(isa.T4, 0, isa.A1)
	lk.Release(b, isa.A0)
	if think > 0 {
		b.Work(think)
	}
	b.Addi(isa.S0, isa.S0, 1).
		Blt(isa.S0, isa.S1, "loop").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runCounter(t *testing.T, prim Primitive, mode core.Mode, procs, iters int) (*machine.Machine, machine.Result) {
	return runCounterThink(t, prim, mode, procs, iters, 0)
}

func runCounterThink(t *testing.T, prim Primitive, mode core.Mode, procs, iters int, think int64) (*machine.Machine, machine.Result) {
	t.Helper()
	lk, err := New(prim, qnodeBase)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(procs, mode)
	cfg.CycleLimit = 100_000_000
	m, err := machine.New(cfg, counterProgram(t, lk, iters, think), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterLockAddr(lockAddr)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("hit cycle limit")
	}
	return m, res
}

func TestAllPrimitivesMutualExclusion(t *testing.T) {
	const procs, iters = 8, 15
	cases := []struct {
		prim Primitive
		mode core.Mode
	}{
		{PrimTTS, core.ModeBaseline},
		{PrimTTS, core.ModeAggressive},
		{PrimTTS, core.ModeDelayed},
		{PrimTTS, core.ModeIQOLB},
		{PrimQOLB, core.ModeBaseline},
		{PrimTicket, core.ModeBaseline},
		{PrimTicket, core.ModeIQOLB},
		{PrimMCS, core.ModeBaseline},
		{PrimMCS, core.ModeIQOLB},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s-%s", c.prim, c.mode), func(t *testing.T) {
			m, _ := runCounter(t, c.prim, c.mode, procs, iters)
			if got := m.Peek(counterAddr); got != procs*iters {
				t.Fatalf("counter = %d, want %d (mutual exclusion violated)", got, procs*iters)
			}
		})
	}
}

func TestSingleProcessorAllPrimitives(t *testing.T) {
	for _, prim := range []Primitive{PrimTTS, PrimQOLB, PrimTicket, PrimMCS} {
		t.Run(string(prim), func(t *testing.T) {
			m, _ := runCounter(t, prim, core.ModeBaseline, 1, 30)
			if got := m.Peek(counterAddr); got != 30 {
				t.Fatalf("counter = %d, want 30", got)
			}
		})
	}
}

func TestIQOLBFasterThanBaselineTTSUnderContention(t *testing.T) {
	// The headline qualitative claim at small scale: contended lock
	// hand-off under IQOLB beats TTS over baseline LL/SC.
	const procs, iters = 8, 15
	_, tts := runCounterThink(t, PrimTTS, core.ModeBaseline, procs, iters, 300)
	_, iq := runCounterThink(t, PrimTTS, core.ModeIQOLB, procs, iters, 300)
	if iq.Cycles >= tts.Cycles {
		t.Fatalf("IQOLB (%d cycles) not faster than baseline TTS (%d cycles)", iq.Cycles, tts.Cycles)
	}
}

func TestQOLBAndIQOLBComparable(t *testing.T) {
	// Table 3's key result: IQOLB tracks QOLB (the paper reports within
	// 2%; we allow a generous envelope at this tiny scale).
	const procs, iters = 8, 15
	_, q := runCounterThink(t, PrimQOLB, core.ModeBaseline, procs, iters, 300)
	_, iq := runCounterThink(t, PrimTTS, core.ModeIQOLB, procs, iters, 300)
	ratio := float64(iq.Cycles) / float64(q.Cycles)
	if ratio > 2.0 || ratio < 0.3 {
		t.Fatalf("IQOLB/QOLB cycle ratio %.2f outside sanity envelope", ratio)
	}
}

func TestTicketLockFIFOFairness(t *testing.T) {
	// With a ticket lock every processor completes the same number of
	// acquisitions; under heavy contention none can starve. We check the
	// final ticket counters.
	const procs, iters = 6, 10
	m, _ := runCounter(t, PrimTicket, core.ModeBaseline, procs, iters)
	if next := m.Peek(lockAddr); next != procs*iters {
		t.Fatalf("next-ticket = %d, want %d", next, procs*iters)
	}
	if serving := m.Peek(lockAddr + mem.WordSize); serving != procs*iters {
		t.Fatalf("now-serving = %d, want %d", serving, procs*iters)
	}
}

func TestMCSQueueNodesIsolated(t *testing.T) {
	// MCS nodes sit one line apart; after the run all locked flags must
	// be clear and the tail pointer nil.
	const procs, iters = 6, 10
	m, _ := runCounter(t, PrimMCS, core.ModeBaseline, procs, iters)
	if tail := m.Peek(lockAddr); tail != 0 {
		t.Fatalf("MCS tail = %#x, want 0", tail)
	}
	for i := 0; i < procs; i++ {
		flag := mem.Addr(qnodeBase + i*mem.LineSize + mem.WordSize)
		if v := m.Peek(flag); v != 0 {
			t.Fatalf("cpu %d locked flag = %d, want 0", i, v)
		}
	}
}

func TestNewUnknownPrimitive(t *testing.T) {
	if _, err := New("bogus", 0); err == nil {
		t.Fatal("unknown primitive accepted")
	}
}

func TestEmittersProduceValidPrograms(t *testing.T) {
	for _, prim := range []Primitive{PrimTTS, PrimQOLB, PrimTicket, PrimMCS} {
		lk, err := New(prim, qnodeBase)
		if err != nil {
			t.Fatal(err)
		}
		b := isa.NewBuilder()
		b.Li(isa.A0, lockAddr)
		lk.Acquire(b, isa.A0)
		lk.Release(b, isa.A0)
		lk.Acquire(b, isa.A0) // re-emission must not collide labels
		lk.Release(b, isa.A0)
		b.Halt()
		if _, err := b.Build(); err != nil {
			t.Errorf("%s: %v", prim, err)
		}
	}
}
