package synclib

import (
	"iqolb/internal/isa"
	"iqolb/internal/mem"
)

// CentralBarrier emits a centralized sense-reversing software barrier
// built on LL/SC — one of the uses the paper names for the primitive (§2).
// The arrival count lives at Addr and the global sense flag one cache line
// later (Addr+LineSize): putting the polled sense word in the line being
// atomically incremented would make every sense poll hit the arrivers'
// LL→SC delay window under the LPRFO modes and be answered uncached. Each
// processor keeps its local sense in a dedicated register across episodes.
//
// Under the delayed-response hardware the LL/SC arrival increments pipeline
// through the LPRFO queue with one bus transaction each, which is exactly
// the paper's Fetch&Phi argument applied to barriers.
type CentralBarrier struct {
	// Addr is the barrier's base address (count word; sense one line later).
	Addr mem.Addr
	// Procs is the participant count.
	Procs int
}

// SenseReg is the register the emitted code uses for the processor-local
// sense; kernels using CentralBarrier must not clobber it between
// episodes. R25 is unused by the lock emitters and the kernel generators.
const SenseReg = isa.Reg(25)

// EmitInit emits one-time setup (local sense starts at 1, matching an
// initial global sense of 0 meaning "phase not yet released").
func (cb CentralBarrier) EmitInit(b *isa.Builder) {
	b.Li(SenseReg, 1)
}

// Emit emits one barrier episode. Clobbers T0–T3 and A0.
func (cb CentralBarrier) Emit(b *isa.Builder) {
	l := b.Scope("cbar")
	b.Li(isa.A0, int64(cb.Addr)).
		// t2 = fetch&add(count, 1) + 1
		Label(l("fa")).
		Ll(isa.T2, 0, isa.A0).
		Addi(isa.T0, isa.T2, 1).
		Mov(isa.T2, isa.T0).
		Sc(isa.T0, 0, isa.A0).
		Beq(isa.T0, isa.R0, l("fa")).
		// Last arriver resets the count and flips the global sense.
		Li(isa.T1, int64(cb.Procs)).
		Bne(isa.T2, isa.T1, l("wait")).
		Sw(isa.R0, 0, isa.A0).
		Sw(SenseReg, int64(mem.LineSize), isa.A0).
		J(l("done")).
		// Everyone else spins until the global sense matches theirs.
		Label(l("wait")).
		Lw(isa.T3, int64(mem.LineSize), isa.A0).
		Bne(isa.T3, SenseReg, l("wait")).
		Label(l("done")).
		// Flip the local sense for the next episode.
		Li(isa.T0, 1).
		Xor(SenseReg, SenseReg, isa.T0)
}
