package service

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"iqolb/internal/linearize"
	"iqolb/locks"
)

// This file is the live-migration suite required by the adaptive
// redesign: randomized policy flips (including degrade/restore cycles)
// in the middle of concurrent lease traffic, with every history checked
// against the sequential lease model and lease conservation verified
// after every flip. Run it under -race; the CI adaptive job does.

// checkConservation asserts the lease-conservation invariant at a
// snapshot instant: every lease ever granted is exactly one of live,
// released, expired, or revoked. Counter updates share the grant's
// critical section, so the identity must hold exactly at any guard
// instant — including immediately after a policy flip.
func checkConservation(t *testing.T, s *Service, when string) {
	t.Helper()
	snap := s.Snapshot()
	accounted := snap.Totals.Releases + snap.Totals.Expiries + snap.Totals.Revocations + uint64(snap.LiveLeases)
	if snap.Totals.Grants != accounted {
		t.Errorf("%s: lease conservation violated: grants=%d but releases=%d + expiries=%d + revocations=%d + live=%d = %d",
			when, snap.Totals.Grants, snap.Totals.Releases, snap.Totals.Expiries,
			snap.Totals.Revocations, snap.LiveLeases, accounted)
	}
}

// runMigrationHistory is runHistory with a migrator in the loop: while
// the clients run their randomized ops against a single-shard service,
// a migrator goroutine flips the shard between handoff and broadcast —
// and occasionally through a degrade/restore cycle — verifying lease
// conservation after every flip.
func runMigrationHistory(t *testing.T, kind locks.Kind, seed int64) []linearize.Op {
	t.Helper()
	rec := &recorder{}
	cfg := Config{
		Shards:     1,
		Lock:       kind,
		QueueDepth: 8,
		DefaultTTL: time.Minute,
		NoSweeper:  true,
		OnExpire: func(l Lease) {
			rec.add(-1, 0, rec.tick(), expIn{Res: l.Resource, Token: l.Token}, nil)
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 3
	const opsPerClient = 6
	resources := []string{"a", "b"}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1315423911 + int64(c)))
			owner := fmt.Sprintf("c%d", c)
			held := map[string]uint64{}
			var past []relIn
			for i := 0; i < opsPerClient; i++ {
				res := resources[rng.Intn(len(resources))]
				switch {
				case held[res] != 0 && rng.Intn(100) < 80:
					in := relIn{Res: res, Token: held[res]}
					call := rec.tick()
					err := s.Release(in.Res, in.Token)
					rec.add(c, call, rec.tick(), in, releaseCode(err))
					past = append(past, in)
					delete(held, res)
				case len(past) > 0 && rng.Intn(100) < 15:
					in := past[rng.Intn(len(past))]
					call := rec.tick()
					err := s.Release(in.Res, in.Token)
					rec.add(c, call, rec.tick(), in, releaseCode(err))
				case rng.Intn(100) < 10:
					in := revIn{Res: res}
					call := rec.tick()
					l, ok, err := s.Revoke(in.Res)
					if err != nil {
						t.Errorf("revoke: %v", err)
						return
					}
					var tok uint64
					if ok {
						tok = l.Token
					}
					rec.add(c, call, rec.tick(), in, tok)
				default:
					in := acqIn{Res: res, NoWait: rng.Intn(100) < 25}
					opt := AcquireOptions{Wait: !in.NoWait, MaxWait: 2 * time.Millisecond}
					call := rec.tick()
					l, err := s.Acquire(in.Res, owner, opt)
					ret := rec.tick()
					if err != nil {
						rec.add(c, call, ret, in, acquireCode(err))
					} else {
						rec.add(c, call, ret, in, l.Token)
						if old := held[res]; old != 0 {
							past = append(past, relIn{Res: res, Token: old})
						}
						held[res] = l.Token
					}
				}
				for k := rng.Intn(3); k > 0; k-- {
					runtime.Gosched()
				}
			}
			for res, tok := range held {
				in := relIn{Res: res, Token: tok}
				call := rec.tick()
				err := s.Release(in.Res, in.Token)
				rec.add(c, call, rec.tick(), in, releaseCode(err))
			}
		}(c)
	}

	// The migrator: random flips interleaved with the traffic above.
	migratorDone := make(chan struct{})
	go func() {
		defer close(migratorDone)
		rng := rand.New(rand.NewSource(seed * 2654435761))
		flips := 4 + rng.Intn(5)
		for f := 0; f < flips; f++ {
			switch rng.Intn(5) {
			case 0:
				// Degrade/restore cycle: flush everything queued, shed a
				// while, come back.
				if err := s.DegradeShard(0, "migration suite"); err != nil {
					t.Errorf("degrade: %v", err)
				}
				checkConservation(t, s, fmt.Sprintf("seed %d flip %d (degrade)", seed, f))
				runtime.Gosched()
				if err := s.RestoreShard(0); err != nil {
					t.Errorf("restore: %v", err)
				}
				checkConservation(t, s, fmt.Sprintf("seed %d flip %d (restore)", seed, f))
			default:
				p := PolicyHandoff
				if rng.Intn(2) == 0 {
					p = PolicyBroadcast
				}
				if err := s.MigrateShard(0, p); err != nil {
					t.Errorf("migrate to %s: %v", p, err)
				}
				checkConservation(t, s, fmt.Sprintf("seed %d flip %d (→%s)", seed, f, p))
			}
			for k := rng.Intn(4); k > 0; k-- {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	<-migratorDone
	checkConservation(t, s, fmt.Sprintf("seed %d final", seed))
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.ops
}

// TestMigrationLinearizability runs 500 randomized histories with live
// policy migration mid-traffic, cycling through every lock primitive,
// and checks each against the sequential lease model. Failure prints
// the seed for replay.
func TestMigrationLinearizability(t *testing.T) {
	const histories = 500
	kinds := locks.Kinds()
	for i := 0; i < histories; i++ {
		seed := int64(i) + 30_000
		kind := kinds[i%len(kinds)]
		h := runMigrationHistory(t, kind, seed)
		if ok, why := linearize.Check(leaseModel{}, h); !ok {
			t.Fatalf("seed %d (%s): migration history not linearizable:\n%s\nhistory:\n%s",
				seed, kind, why, dumpHistory(h))
		}
	}
}

// TestMigrationHandoffToBroadcast queues waiters under handoff, flips
// to broadcast mid-wait, and verifies the release wakes the pack and
// every waiter is eventually granted — no grant lost across the flip.
func TestMigrationHandoffToBroadcast(t *testing.T) {
	testMigrationMidWait(t, PolicyHandoff, PolicyBroadcast)
}

// TestMigrationBroadcastToHandoff is the reverse direction: waiters
// parked under broadcast (possibly holding unconsumed retry wake-ups)
// must be granted one at a time after the flip to handoff.
func TestMigrationBroadcastToHandoff(t *testing.T) {
	testMigrationMidWait(t, PolicyBroadcast, PolicyHandoff)
}

func testMigrationMidWait(t *testing.T, from, to Policy) {
	s, err := New(Config{Shards: 1, Policy: from, QueueDepth: 8, NoSweeper: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hold, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	grants := make(chan Lease, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := s.Acquire("r", fmt.Sprintf("w%d", i), AcquireOptions{Wait: true})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			grants <- l
			if err := s.Release("r", l.Token); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}(i)
	}
	waitQueued(t, s, "r", waiters)

	if err := s.MigrateShard(0, to); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s, "after flip")
	if p, degraded, err := s.ShardPolicy(0); err != nil || degraded || p != to {
		t.Fatalf("ShardPolicy = %v,%v,%v; want %v, healthy", p, degraded, err, to)
	}
	if err := s.Release("r", hold.Token); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(grants)
	seen := map[uint64]bool{}
	for l := range grants {
		if seen[l.Token] {
			t.Fatalf("token %d granted twice", l.Token)
		}
		seen[l.Token] = true
	}
	if len(seen) != waiters {
		t.Fatalf("granted %d waiters, want %d", len(seen), waiters)
	}
	checkConservation(t, s, "final")
	snap := s.Snapshot()
	if snap.Totals.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", snap.Totals.Migrations)
	}
	if snap.Shards[0].Policy != string(to) || snap.Shards[0].Epoch != 1 {
		t.Fatalf("shard snapshot policy=%q epoch=%d, want %q epoch=1",
			snap.Shards[0].Policy, snap.Shards[0].Epoch, to)
	}
}

// TestDegradeRestoreCycle drives the full administrative cycle: degrade
// flushes the queue and sheds, restore returns the shard to
// primitive-guarded service, and the service is fully usable after.
func TestDegradeRestoreCycle(t *testing.T) {
	s, err := New(Config{Shards: 1, QueueDepth: 8, NoSweeper: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hold, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var waiterErr error
	go func() {
		defer wg.Done()
		_, waiterErr = s.Acquire("r", "w", AcquireOptions{Wait: true})
	}()
	waitQueued(t, s, "r", 1)

	if err := s.DegradeShard(0, "test cycle"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !errors.Is(waiterErr, ErrDegraded) {
		t.Fatalf("flushed waiter got %v, want ErrDegraded", waiterErr)
	}
	// Degraded: new waiters are shed, immediate grants still work.
	if _, err := s.Acquire("r", "x", AcquireOptions{Wait: true}); !errors.Is(err, ErrShed) {
		t.Fatalf("degraded acquire on held resource: %v, want ErrShed", err)
	}
	if err := s.Release("r", hold.Token); err != nil {
		t.Fatal(err)
	}
	free, err := s.Acquire("r", "y", AcquireOptions{})
	if err != nil {
		t.Fatalf("degraded immediate grant: %v", err)
	}

	if err := s.RestoreShard(0); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Degraded != 0 || snap.Totals.Degrades != 1 || snap.Totals.Restores != 1 {
		t.Fatalf("after restore: degraded=%d degrades=%d restores=%d, want 0/1/1",
			snap.Degraded, snap.Totals.Degrades, snap.Totals.Restores)
	}
	// Restored: queueing works again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		l, err := s.Acquire("r", "z", AcquireOptions{Wait: true})
		if err != nil {
			t.Errorf("post-restore waiter: %v", err)
			return
		}
		s.Release("r", l.Token)
	}()
	waitQueued(t, s, "r", 1)
	if err := s.Release("r", free.Token); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	checkConservation(t, s, "after cycle")

	// Restore of a healthy shard is a no-op.
	if err := s.RestoreShard(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Totals.Restores; got != 1 {
		t.Fatalf("no-op restore bumped Restores to %d", got)
	}
}

// TestMigrateValidation covers the typed errors and no-op cases of the
// migration verbs.
func TestMigrateValidation(t *testing.T) {
	s, err := New(Config{Shards: 2, NoSweeper: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ce *ConfigError
	if err := s.MigrateShard(9, PolicyBroadcast); !errors.As(err, &ce) || ce.Field != "shard" {
		t.Fatalf("out-of-range shard: %v", err)
	}
	if err := s.MigrateShard(0, Policy("zigzag")); !errors.As(err, &ce) || ce.Field != "policy" {
		t.Fatalf("bad policy: %v", err)
	}
	if err := s.MigrateShard(0, PolicyHandoff); err != nil { // already handoff
		t.Fatal(err)
	}
	if got := s.Snapshot().Totals.Migrations; got != 0 {
		t.Fatalf("no-op migration counted: %d", got)
	}
	if err := s.DegradeShard(-1, "x"); !errors.As(err, &ce) || ce.Field != "shard" {
		t.Fatalf("degrade out-of-range: %v", err)
	}
	if err := s.RestoreShard(99); !errors.As(err, &ce) || ce.Field != "shard" {
		t.Fatalf("restore out-of-range: %v", err)
	}
	// Migrating a degraded shard records the policy for restore.
	if err := s.DegradeShard(1, "park"); err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateShard(1, PolicyBroadcast); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreShard(1); err != nil {
		t.Fatal(err)
	}
	if p, degraded, err := s.ShardPolicy(1); err != nil || degraded || p != PolicyBroadcast {
		t.Fatalf("restored shard = %v,%v,%v; want broadcast, healthy", p, degraded, err)
	}
}

// TestAdaptiveServiceMigratesUnderLoad is the end-to-end loop: a
// service built with Config.Adaptive under sustained single-resource
// contention must migrate the hot shard from broadcast to hand-off on
// its own, and report controller state in its snapshot.
func TestAdaptiveServiceMigratesUnderLoad(t *testing.T) {
	s, err := New(Config{
		Shards:           1,
		Policy:           PolicyBroadcast,
		QueueDepth:       32,
		Adaptive:         true,
		AdaptiveInterval: 2 * time.Millisecond,
		NoSweeper:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			owner := fmt.Sprintf("c%d", c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l, err := s.Acquire("hot", owner, AcquireOptions{Wait: true, MaxWait: 50 * time.Millisecond})
				if err != nil {
					continue
				}
				s.Release("hot", l.Token)
			}
		}(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	migrated := false
	for time.Now().Before(deadline) {
		if p, degraded, _ := s.ShardPolicy(0); p == PolicyHandoff && !degraded {
			migrated = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !migrated {
		t.Fatalf("controller never migrated the hot shard to handoff; state: %+v", s.ControllerState())
	}
	snap := s.Snapshot()
	if snap.Controller == nil || snap.Controller.Ticks == 0 || snap.Controller.Migrations == 0 {
		t.Fatalf("snapshot controller state missing or idle: %+v", snap.Controller)
	}
	if snap.Controller.Tuning == nil {
		t.Fatalf("snapshot controller tuning missing")
	}
	checkConservation(t, s, "adaptive load")
}
