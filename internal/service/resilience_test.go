package service

import (
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"
)

// startServerOpts spins an in-process server with explicit options.
func startServerOpts(t *testing.T, mut func(*Config), opt ServerOptions) (*Server, string) {
	t.Helper()
	cfg := Config{Shards: 2, QueueDepth: 16, DefaultTTL: 30 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWithOptions(svc, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		svc.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus scheduler noise).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientCloseUnblocksPendingRoundTrip pins the Close-deadlock fix: a
// round trip blocked mid-read on an unresponsive peer must be unblocked
// by a concurrent Close, not hold its mutex against it forever.
func TestClientCloseUnblocksPendingRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Read and drop everything; never answer (a stalled peer).
			go io.Copy(io.Discard, conn)
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pingDone := make(chan error, 1)
	go func() { pingDone <- c.Ping() }()
	time.Sleep(20 * time.Millisecond) // let the ping block in the read
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-pingDone:
		if err == nil {
			t.Fatal("ping succeeded against a mute peer")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the pending round trip")
	}
	// Further use of the closed client fails typed, immediately.
	if err := c.Ping(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("ping after close: %v, want net.ErrClosed", err)
	}
}

// TestClientsNoGoroutineLeak churns many client connections through the
// server and asserts both sides drain completely.
func TestClientsNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, addr := startServerOpts(t, nil, ServerOptions{})
	for i := 0; i < 20; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
		l, err := c.Acquire("r", "o", AcquireOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Release("r", l.Token); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// TestServerIdleTimeoutReaps: a connection that goes quiet (or half-open)
// is closed by the idle deadline instead of pinning its goroutine.
func TestServerIdleTimeoutReaps(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, addr := startServerOpts(t, nil, ServerOptions{IdleTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadResponse(conn); err == nil {
		t.Fatal("idle connection got a response out of nowhere")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never reaped the idle connection")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// TestServerMaxWaitCap: the server-side wait cap bounds a queued acquire
// regardless of the client's ask, so an abandoned connection cannot pin
// its goroutine in the queue.
func TestServerMaxWaitCap(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{MaxWait: 50 * time.Millisecond})
	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.Acquire("r", "holder", AcquireOptions{}); err != nil {
		t.Fatal(err)
	}
	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	start := time.Now()
	_, err = waiter.Acquire("r", "w", AcquireOptions{Wait: true, MaxWait: 10 * time.Second})
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("capped wait: %v, want ErrWaitTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("server honored the client's 10s ask despite a 50ms cap (took %v)", elapsed)
	}
}

// TestServerDeadlinePropagation: a v2 acquire whose propagated deadline
// has already passed is refused immediately with the typed timeout.
func TestServerDeadlinePropagation(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := AppendRequest(nil, Request{
		Version:  WireVersion2,
		Op:       OpAcquire,
		Resource: "r",
		Owner:    "late",
		Wait:     true,
		MaxWait:  10 * time.Second,
		Deadline: time.Now().Add(-time.Second).UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != OpError || !errors.Is(codeError(resp), ErrWaitTimeout) {
		t.Fatalf("expired-deadline acquire: %+v, want typed ErrWaitTimeout", resp)
	}
	if resp.Version != WireVersion2 {
		t.Fatalf("server answered v%d to a v2 request", resp.Version)
	}
}

// TestServerFenceOverWire exercises the v2 fencing surface end to end:
// fences arrive with grants, protect releases, and gate resume.
func TestServerFenceOverWire(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.Acquire("r", "o", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Fence == 0 {
		t.Fatal("v2 grant carried no fence")
	}
	if err := c.ReleaseFenced("r", l.Token, l.Fence+1); !errors.Is(err, ErrFenced) {
		t.Fatalf("wrong-fence release: %v, want ErrFenced", err)
	}
	got, err := c.Resume("r", l.Token, l.Fence)
	if err != nil || got.Token != l.Token || got.Fence != l.Fence {
		t.Fatalf("resume: %+v, %v", got, err)
	}
	if _, err := c.Resume("r", l.Token, l.Fence+1); !errors.Is(err, ErrFenced) {
		t.Fatalf("wrong-fence resume: %v, want ErrFenced", err)
	}
	if err := c.ReleaseFenced("r", l.Token, l.Fence); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume("r", l.Token, l.Fence); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("resume after release: %v, want ErrNotHeld", err)
	}
}

// TestServerV1Interop: a v1 client works unchanged against the v2
// server, and the server answers it in v1.
func TestServerV1Interop(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetVersion(WireVersion); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	l, err := c.Acquire("r", "legacy", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Fence != 0 {
		t.Fatalf("v1 grant carried a fence: %+v", l)
	}
	if err := c.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainGraceful: drain stops accepting, flushes queued waiters
// typed, refuses new acquires with the draining verdict plus a
// retry-after hint, yet lets connected holders finish their releases.
func TestServerDrainGraceful(t *testing.T) {
	srv, addr := startServerOpts(t, nil, ServerOptions{RetryAfter: 5 * time.Millisecond})
	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	l, err := holder.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	waitErr := make(chan error, 1)
	go func() {
		_, err := waiter.Acquire("r", "w", AcquireOptions{Wait: true, MaxWait: 10 * time.Second})
		waitErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter queue

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(2 * time.Second) }()

	// The queued waiter is flushed with the typed draining verdict.
	select {
	case err := <-waitErr:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("queued waiter: %v, want ErrDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never flushed during drain")
	}
	// The connected holder can still release inside the grace window...
	if err := holder.Release("r", l.Token); err != nil {
		t.Fatalf("release during drain: %v", err)
	}
	// ...which lets the drain finish before its grace deadline.
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after the last release")
	}
	// New acquires on a live connection get the typed verdict + hint.
	_, err = holder.Acquire("r2", "holder", AcquireOptions{})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: %v, want ErrDraining", err)
	}
	if hint, ok := RetryAfterHint(err); !ok || hint != 5*time.Millisecond {
		t.Fatalf("retry-after hint = %v, %v; want 5ms, true", hint, ok)
	}
	// New connections are refused (the listener is down).
	if c, err := DialTimeout(addr, time.Second); err == nil {
		c.Close()
		t.Fatal("dial succeeded against a draining server")
	}
}
