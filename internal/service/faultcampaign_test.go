package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iqolb/internal/faults"
)

// The service fault campaign mirrors experiments.RunCampaign: seeded,
// typed fault kinds injected into live traffic, every run classified
// into the campaign vocabulary, and a hard guarantee of zero bare hangs
// (every blocked operation must end in a grant, a typed error, or the
// watchdog's degradation — never silence).

// Service-level fault kinds.
const (
	// faultClockSkew jumps the lease clock forward in random increments,
	// expiring leases out from under live holders.
	faultClockSkew = "clock-skew"
	// faultDroppedRelease makes clients "crash": they forget to release
	// with some probability, leaving reclamation to the TTL backstop —
	// or, when the TTL outlives the starvation bound, to the watchdog.
	faultDroppedRelease = "dropped-release"
)

// Campaign outcome classification, following experiments/campaign.go.
const (
	outcomeAbsorbed  = "absorbed"  // faults fired, no safety net needed
	outcomeRecovered = "recovered" // TTL expiry reclaimed leaked leases
	outcomeDegraded  = "degraded"  // the starvation watchdog tripped
)

type campaignConfig struct {
	kind  string
	seed  uint64
	ttl   time.Duration
	bound time.Duration
}

type campaignOutcome struct {
	status   string
	expiries uint64
	degrades uint64
	grants   uint64
}

// runFaultCampaign executes one seeded chaos run and classifies it. All
// timing is FakeClock-driven, so the schedule is reproducible per seed
// up to goroutine interleaving — and the classification invariants hold
// on every interleaving.
func runFaultCampaign(t *testing.T, cc campaignConfig) campaignOutcome {
	t.Helper()
	clk := NewFakeClock()
	s, err := New(Config{
		Shards:          2,
		QueueDepth:      16,
		DefaultTTL:      cc.ttl,
		MaxTTL:          time.Hour,
		StarvationBound: cc.bound,
		Clock:           clk,
		NoSweeper:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 4
	const opsPerClient = 20
	resources := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	var clientsDone atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer clientsDone.Add(1)
			// Per-client stream split off the campaign seed, same seedMix
			// discipline as the fault planner.
			str := faults.NewStream(cc.seed + uint64(c)*0x9e3779b97f4a7c15 + 1)
			for i := 0; i < opsPerClient; i++ {
				res := resources[str.Intn(int64(len(resources)))]
				l, err := s.Acquire(res, fmt.Sprintf("c%d", c), AcquireOptions{
					Wait:    true,
					MaxWait: 30 * time.Second, // bounded by fake time: no bare hangs
				})
				if err != nil {
					// Typed refusals are legitimate fault fallout.
					if !errors.Is(err, ErrWaitTimeout) && !errors.Is(err, ErrQueueFull) &&
						!errors.Is(err, ErrShed) && !errors.Is(err, ErrDegraded) {
						t.Errorf("client %d acquire: %v", c, err)
					}
					continue
				}
				if cc.kind == faultDroppedRelease && str.Chance(0.4) {
					continue // crash: the release never happens
				}
				if cc.kind == faultClockSkew {
					// Hold across a few controller ticks so the skewed clock
					// can kill the lease mid-hold.
					time.Sleep(time.Duration(200+str.Intn(1800)) * time.Microsecond)
				}
				if err := s.Release(res, l.Token); err != nil {
					// Clock skew may have expired the lease mid-hold; that
					// must surface as the typed expiry, nothing else.
					if !errors.Is(err, ErrLeaseExpired) && !errors.Is(err, ErrRevoked) {
						t.Errorf("client %d release: %v", c, err)
					}
				}
			}
		}(c)
	}

	// Chaos controller: advances the lease clock (the skew injection) and
	// drives expiry sweeps until the clients drain. Progress is
	// guaranteed: every advance ages MaxWait timers, TTLs, and the
	// starvation watchdog together.
	ctrl := faults.NewStream(cc.seed ^ 0xc0ffee)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	watchdog := time.After(60 * time.Second)
	for {
		select {
		case <-done:
		case <-watchdog:
			buf := make([]byte, 256<<10)
			t.Fatalf("bare hang: %d/%d clients finished after 60s real time\n%s",
				clientsDone.Load(), clients, buf[:runtime.Stack(buf, true)])
		default:
		}
		select {
		case <-done:
		default:
			step := 20 * time.Millisecond
			if cc.kind == faultClockSkew {
				step = time.Duration(50+ctrl.Intn(450)) * time.Millisecond
			}
			clk.Advance(step)
			s.SweepExpired()
			time.Sleep(200 * time.Microsecond)
			continue
		}
		break
	}

	// Drain: expire whatever the crashed clients leaked.
	for i := 0; i < 100 && s.Snapshot().LiveLeases > 0; i++ {
		clk.Advance(cc.ttl)
		s.SweepExpired()
	}
	snap := s.Snapshot()
	if snap.LiveLeases != 0 {
		t.Fatalf("%d leases still live after drain", snap.LiveLeases)
	}
	// Conservation: every grant ends in exactly one of release, expiry,
	// or revocation — the service-level "leases die exactly once".
	if snap.Totals.Grants != snap.Totals.Releases+snap.Totals.Expiries+snap.Totals.Revocations {
		t.Fatalf("lease conservation violated: grants=%d releases=%d expiries=%d revocations=%d",
			snap.Totals.Grants, snap.Totals.Releases, snap.Totals.Expiries, snap.Totals.Revocations)
	}
	out := campaignOutcome{
		expiries: snap.Totals.Expiries,
		degrades: snap.Totals.Degrades,
		grants:   snap.Totals.Grants,
	}
	switch {
	case out.degrades > 0:
		out.status = outcomeDegraded
	case out.expiries > 0:
		out.status = outcomeRecovered
	default:
		out.status = outcomeAbsorbed
	}
	return out
}

// TestFaultCampaign sweeps both fault kinds across seeds and both
// TTL-vs-starvation-bound regimes, asserting every run classifies
// cleanly and the campaign as a whole exercises all three outcomes.
func TestFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign is seconds-long")
	}
	type key struct{ kind, status string }
	seen := map[key]int{}
	var mu sync.Mutex
	configs := []campaignConfig{
		// Skewed clocks with a roomy bound: expiry absorbs the damage.
		{kind: faultClockSkew, ttl: 500 * time.Millisecond, bound: time.Minute},
		// Dropped releases with TTL well under the bound: the TTL backstop
		// reclaims (recovered).
		{kind: faultDroppedRelease, ttl: 300 * time.Millisecond, bound: time.Minute},
		// Dropped releases with TTL far past the bound: waiters age out
		// and the watchdog degrades the shard (degraded).
		{kind: faultDroppedRelease, ttl: time.Hour, bound: 2 * time.Second},
	}
	for _, cc := range configs {
		cc := cc
		for seed := uint64(1); seed <= 4; seed++ {
			cc := cc
			cc.seed = seed
			t.Run(fmt.Sprintf("%s/ttl=%s/seed=%d", cc.kind, cc.ttl, seed), func(t *testing.T) {
				t.Parallel()
				out := runFaultCampaign(t, cc)
				if out.grants == 0 {
					t.Fatal("campaign made no progress: zero grants")
				}
				mu.Lock()
				seen[key{cc.kind, out.status}]++
				mu.Unlock()
			})
		}
	}
	t.Cleanup(func() {
		// Campaign-level coverage: the sweep must demonstrate both safety
		// nets and not only the happy path.
		if seen[key{faultDroppedRelease, outcomeRecovered}] == 0 {
			t.Errorf("no dropped-release run recovered via TTL expiry: %v", seen)
		}
		if seen[key{faultDroppedRelease, outcomeDegraded}] == 0 {
			t.Errorf("no dropped-release run degraded via the watchdog: %v", seen)
		}
		if seen[key{faultClockSkew, outcomeRecovered}] == 0 {
			t.Errorf("no clock-skew run saw a mid-hold expiry (recovered): %v", seen)
		}
	})
}

// TestFaultCampaignDeterministicSchedule pins that the injection
// schedule is seed-deterministic: the same seed draws the same fault
// decisions (the concurrent grant order may differ, but the per-client
// crash pattern may not).
func TestFaultCampaignDeterministicSchedule(t *testing.T) {
	draw := func(seed uint64) []bool {
		mix := uint64(0x9e3779b97f4a7c15) // wrap-around is intended
		str := faults.NewStream(seed + 2*mix + 1)
		var out []bool
		for i := 0; i < 20; i++ {
			str.Intn(3)
			out = append(out, str.Chance(0.4))
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different crash schedules")
		}
	}
}
