package service

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestResilientGiveUpTyped: a dead address exhausts the retry budget and
// fails with the wrapped typed cause — never a hang, never a bare error.
func TestResilientGiveUpTyped(t *testing.T) {
	// Grab a port that refuses: listen, note the address, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := NewResilient(addr, ResilientOptions{
		OpTimeout: 100 * time.Millisecond,
		Retry:     RetryPolicy{Initial: time.Millisecond, Cap: 2 * time.Millisecond, MaxAttempts: 3},
		Seed:      1,
	})
	defer rc.Close()
	start := time.Now()
	err = rc.Ping()
	if err == nil {
		t.Fatal("ping succeeded against a dead address")
	}
	if !Retryable(err) {
		t.Fatalf("give-up error lost its retryable cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("give-up took %v", elapsed)
	}
	st := rc.Stats()
	if st.GaveUp != 1 {
		t.Fatalf("stats = %+v, want GaveUp 1", st)
	}
	if st.Retries != 2 {
		t.Fatalf("stats = %+v, want 2 backoffs for 3 attempts", st)
	}
}

// TestResilientFatalNotRetried: a typed fatal verdict returns immediately
// without burning the retry budget.
func TestResilientFatalNotRetried(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{})
	rc := NewResilient(addr, ResilientOptions{
		OpTimeout: time.Second,
		Retry:     RetryPolicy{Initial: time.Millisecond, Cap: 2 * time.Millisecond, MaxAttempts: 8},
		Seed:      1,
	})
	defer rc.Close()
	err := rc.Release(Lease{Resource: "r", Token: 999})
	if !errors.Is(err, ErrNotHeld) {
		t.Fatalf("bogus release: %v, want ErrNotHeld", err)
	}
	if st := rc.Stats(); st.Retries != 0 || st.GaveUp != 0 {
		t.Fatalf("fatal error consumed retries: %+v", st)
	}
}

// cuttableRelay is a single-target TCP relay whose live connections can
// be severed on demand — the minimal "network cable" for reconnect
// tests.
type cuttableRelay struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  []net.Conn
}

func newCuttableRelay(t *testing.T, target string) *cuttableRelay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &cuttableRelay{ln: ln, target: target}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			r.mu.Lock()
			r.conns = append(r.conns, c, up)
			r.mu.Unlock()
			go func() { io.Copy(up, c); up.Close() }()
			go func() { io.Copy(c, up); c.Close() }()
		}
	}()
	t.Cleanup(func() { ln.Close(); r.cut() })
	return r
}

func (r *cuttableRelay) addr() string { return r.ln.Addr().String() }

func (r *cuttableRelay) cut() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
}

// TestResilientReconnectResume: cut the network under a held lease; the
// next operation reconnects, the resume re-validates the same lease
// (same token, same fence), and the release completes against it.
func TestResilientReconnectResume(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{})
	relay := newCuttableRelay(t, addr)
	rc := NewResilient(relay.addr(), ResilientOptions{
		OpTimeout: time.Second,
		Retry:     RetryPolicy{Initial: time.Millisecond, Cap: 8 * time.Millisecond, MaxAttempts: 8},
		Seed:      1,
	})
	defer rc.Close()
	l, err := rc.Acquire("r", "o", AcquireOptions{TTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	relay.cut()
	// The cut surfaces on the next op as a transport fault; the retry
	// loop reconnects and resumes the held lease first.
	if err := rc.Ping(); err != nil {
		t.Fatalf("ping across the cut: %v", err)
	}
	st := rc.Stats()
	if st.Reconnects == 0 || st.ResumedOK == 0 || st.ResumedLost != 0 {
		t.Fatalf("stats = %+v, want a reconnect with a clean resume", st)
	}
	held := rc.Held()
	if len(held) != 1 || held[0].Token != l.Token || held[0].Fence != l.Fence {
		t.Fatalf("held after resume = %+v, want the original lease %+v", held, l)
	}
	if err := rc.Release(l); err != nil {
		t.Fatalf("release after reconnect: %v", err)
	}
}
