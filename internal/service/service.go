// Package service is the serving layer over the native lock library: a
// lock/lease service in which named resources are sharded across
// locks.Lock instances and every grant decision is a software rendering
// of the paper's delay-insertion argument.
//
// The analogy, precisely:
//
//   - The paper inserts delays at the requester (delayed requests) or the
//     holder (delayed responses) so a contended line is transferred once
//     per hand-off instead of once per poll. The service's bounded
//     admission queue is the same idea at the serving boundary: excess
//     requesters are deflected (shed) at admission instead of being
//     allowed to hammer the resource, and queued waiters are parked on a
//     private channel instead of polling.
//   - PolicyHandoff is the software form of QOLB/IQOLB's releaser→waiter
//     grant: a release (or expiry) builds the next lease while still
//     holding the shard and delivers it to exactly one queued waiter in
//     one transfer. Nobody re-contends.
//   - PolicyBroadcast is the plain-RFO baseline: a release marks the
//     resource free and wakes every waiter, who all race to re-acquire;
//     all but one wake-up is wasted (counted as WastedWakeups, the
//     service's analogue of redundant bus transactions).
//
// Leases carry deadlines. Expiry is typed and exactly-once: a crashed
// client's lease is reclaimed by the sweeper, the next waiter is granted
// directly, and a late Release of the dead token reports ErrLeaseExpired.
//
// Each shard's internal state is guarded by a selectable locks.Lock
// primitive (tts/ticket/mcs/clh/adaptive), so the serving layer's own
// hot path rides the PR-5 primitives. A starvation watchdog — the same
// role the check monitor's watchdog plays for the simulator — degrades a
// pathological shard to a plain sync.Mutex plus shed-load mode: queued
// waiters are flushed with a typed error and no new waiters are admitted,
// mirroring the simulator's graceful degradation to plain RFO.
package service

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"iqolb/internal/adaptive"
	"iqolb/internal/stats"
	"iqolb/locks"
)

// Policy selects how a release passes the resource to waiters.
type Policy string

const (
	// PolicyHandoff grants the resource directly to the queued next
	// waiter in one transfer (the IQOLB analogue).
	PolicyHandoff Policy = "handoff"
	// PolicyBroadcast wakes every waiter and lets them re-contend (the
	// plain test&set analogue).
	PolicyBroadcast Policy = "broadcast"
)

// ParsePolicy resolves a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyHandoff, PolicyBroadcast:
		return Policy(s), nil
	}
	return "", configErr("policy", "unknown policy %q (have handoff, broadcast)", s)
}

// Lease is one granted exclusive claim on a named resource.
type Lease struct {
	Resource string
	Owner    string
	// Token uniquely identifies this grant; release and revocation
	// address the lease by token, so a stale holder can never release a
	// successor's lease.
	Token uint64
	// Fence is the resource's monotonic grant counter at this grant: the
	// fencing token of the classic fencing argument. It survives the
	// resource's table entry (the per-resource counter is never reset),
	// so even after the bounded gone-ring forgets a dead token, a zombie
	// client presenting a stale fence is rejected typed (ErrFenced)
	// rather than mistaken for a never-granted claim.
	Fence uint64
	// Deadline is when the lease expires if not released.
	Deadline time.Time
}

// AcquireOptions tunes one acquire.
type AcquireOptions struct {
	// TTL is the lease lifetime (0 = Config.DefaultTTL; clamped to
	// Config.MaxTTL).
	TTL time.Duration
	// Wait queues the request when the resource is held; otherwise a
	// held resource reports ErrNoWait immediately.
	Wait bool
	// MaxWait bounds the queued wait (0 = wait until granted or
	// flushed).
	MaxWait time.Duration
}

// Config describes a Service.
type Config struct {
	// Shards is the number of lease-table shards (default 8). Resources
	// hash to shards; each shard is one lock domain.
	Shards int
	// Lock is the primitive guarding every shard (default mcs). Locks,
	// when non-empty, overrides it per shard (len must equal Shards) —
	// "primitive selectable per shard".
	Lock  locks.Kind
	Locks []locks.Kind
	// Policy is the grant policy (default PolicyHandoff).
	Policy Policy
	// QueueDepth bounds each shard's admission queue (default 64).
	// Requests beyond it are shed with ErrQueueFull — backpressure as
	// delay insertion.
	QueueDepth int
	// DefaultTTL and MaxTTL bound lease lifetimes (defaults 5s, 60s).
	DefaultTTL time.Duration
	MaxTTL     time.Duration
	// StarvationBound is the oldest tolerated queued wait before the
	// watchdog degrades the shard (default 10s; <0 disables).
	StarvationBound time.Duration
	// Clock substitutes a manual clock (nil = wall clock).
	Clock Clock
	// OnExpire, when non-nil, is called exactly once per expired lease,
	// outside all shard locks.
	OnExpire func(Lease)
	// OnDegrade, when non-nil, is called once per shard degradation,
	// outside all shard locks.
	OnDegrade func(shard int, reason string)
	// NoSweeper disables the background expiry sweeper; tests drive
	// SweepExpired manually against a FakeClock.
	NoSweeper bool
	// Adaptive enables the contention controller: every shard's
	// telemetry feeds an adaptive.Controller that live-migrates shards
	// between policies and retunes the shard locks' inserted-delay
	// parameters online. Policy then only sets each shard's starting
	// discipline.
	Adaptive bool
	// AdaptiveInterval overrides the controller's sampling period
	// (0 = the controller default, 25ms).
	AdaptiveInterval time.Duration

	// brokenHandoff is the linearizability harness's seeded bug: the
	// direct hand-off grants the waiter but "forgets" to record the
	// transfer, so a racing acquire is granted a second live lease. Only
	// in-package tests can set it; it exists to prove the harness
	// catches real hand-off bugs.
	brokenHandoff bool
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 1 {
		return cfg, configErr("shards", "must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Lock == "" {
		cfg.Lock = locks.KindMCS
	}
	if len(cfg.Locks) != 0 && len(cfg.Locks) != cfg.Shards {
		return cfg, configErr("locks", "%d per-shard locks for %d shards", len(cfg.Locks), cfg.Shards)
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyHandoff
	}
	if cfg.Policy != PolicyHandoff && cfg.Policy != PolicyBroadcast {
		return cfg, configErr("policy", "unknown policy %q", cfg.Policy)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 1 {
		return cfg, configErr("queue_depth", "must be >= 1, got %d", cfg.QueueDepth)
	}
	if cfg.DefaultTTL == 0 {
		cfg.DefaultTTL = 5 * time.Second
	}
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = 60 * time.Second
	}
	if cfg.DefaultTTL < 0 || cfg.MaxTTL < cfg.DefaultTTL {
		return cfg, configErr("ttl", "bounds default=%v max=%v", cfg.DefaultTTL, cfg.MaxTTL)
	}
	if cfg.StarvationBound == 0 {
		cfg.StarvationBound = 10 * time.Second
	}
	if cfg.AdaptiveInterval < 0 {
		return cfg, configErr("adaptive_interval", "must be >= 0, got %v", cfg.AdaptiveInterval)
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	return cfg, nil
}

// Validate reports whether the Config would construct, without
// constructing. Every failure is a *ConfigError naming the offending
// field, so CLIs can report exactly which knob was wrong before
// starting anything.
func (c Config) Validate() error {
	_, err := (&c).withDefaults()
	return err
}

// grantResult is what a parked waiter receives: a lease (handoff), or a
// broadcast wake-up telling it to re-contend.
type grantResult struct {
	lease Lease
	retry bool
}

// waiter is one queued acquire. grant is buffered so the releaser's
// hand-off never blocks; flushed/flushErr are guarded by the shard lock
// and published by closing grant.
type waiter struct {
	owner    string
	ttl      time.Duration
	enq      time.Time
	grant    chan grantResult
	flushed  bool
	flushErr error
}

// leaseState is the shard's record of a live lease.
type leaseState struct {
	lease     Lease
	grantedAt time.Time
}

// resource is one named resource's state within a shard.
type resource struct {
	name   string
	holder *leaseState
	q      []*waiter // FIFO admission order
}

// heapEntry schedules one lease's expiry; entries are lazily invalidated
// by token comparison, so releases never search the heap.
type heapEntry struct {
	deadline int64 // UnixNano
	token    uint64
	res      string
}

type leaseHeap []heapEntry

func (h leaseHeap) Len() int           { return len(h) }
func (h leaseHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h leaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *leaseHeap) Push(x any)        { *h = append(*h, x.(heapEntry)) }
func (h *leaseHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// goneRingSize bounds each shard's memory of ended tokens (expired or
// revoked), which types late releases.
const goneRingSize = 1024

// lockToken records which guard a shard operation holds; see
// shard.lockShard.
type lockToken struct {
	fb     bool // entered via the degraded fallback mutex
	alsoFB bool // degraded mid-operation: holding both guards
}

// shard is one lock domain: a lease table plus its admission queue,
// guarded by a selectable primitive with a plain-mutex degradation path.
type shard struct {
	svc *Service
	id  int

	mu       locks.Lock // primitive guard (normal mode)
	fb       sync.Mutex // fallback guard (degraded mode)
	degraded atomic.Bool

	// Everything below is guarded by mu (normal) or fb (degraded); the
	// degradation protocol in degradeLocked / restore makes the switch
	// safe.
	degradeReason string
	// policy is this shard's live wakeup discipline. It starts at
	// Config.Policy and moves under MigrateShard; every grant decision
	// reads it under the shard guard, so a flip is atomic with respect
	// to grants — the epoch fence.
	policy Policy
	// epoch counts discipline changes (migrations, degrades, restores).
	epoch uint64
	// armedAt re-arms the starvation watchdog: waits are measured from
	// max(enqueue, armedAt), so a discipline change gives the new
	// policy a full StarvationBound to prove itself before the
	// watchdog may degrade the shard.
	armedAt time.Time
	res     map[string]*resource
	queued  int
	heap    leaseHeap
	gone    map[uint64]error // token → ErrLeaseExpired / ErrRevoked
	// fences holds each resource's monotonic grant counter. Entries
	// deliberately outlive the resource's res entry (never deleted), so
	// fencing verdicts survive resource GC.
	fences    map[string]uint64
	goneRing  [goneRingSize]uint64
	goneNext  int
	live      int
	counters  Counters
	grantWait stats.Histogram // enqueue → grant, ns
	hold      stats.Histogram // grant → release, ns
}

// lockShard acquires the shard guard. Before degradation that is the
// configured primitive; after, the plain fallback mutex. The flag is
// re-checked after acquiring either guard so a goroutine that raced a
// degradation — or, since RestoreShard, a restoration — never mutates
// state under the abandoned guard.
func (sh *shard) lockShard() lockToken {
	for {
		if sh.degraded.Load() {
			sh.fb.Lock()
			if sh.degraded.Load() {
				return lockToken{fb: true}
			}
			sh.fb.Unlock()
			continue
		}
		sh.mu.Lock()
		if !sh.degraded.Load() {
			return lockToken{}
		}
		sh.mu.Unlock()
	}
}

func (sh *shard) unlockShard(t lockToken) {
	if t.fb {
		sh.fb.Unlock()
		return
	}
	if t.alsoFB {
		sh.fb.Unlock()
	}
	sh.mu.Unlock()
}

// degradeLocked switches the shard to plain-mutex + shed-load mode. The
// caller holds the primitive guard; the fallback mutex is acquired
// BEFORE the flag flips and stays held until the caller's unlockShard,
// so at no instant can a fallback-path goroutine overlap the degrading
// critical section. Queued waiters are flushed with ErrDegraded — the
// serving-layer analogue of the simulator flushing held delays when it
// degrades to plain RFO.
func (sh *shard) degradeLocked(t lockToken, reason string) lockToken {
	if t.fb || sh.degraded.Load() {
		return t
	}
	sh.fb.Lock()
	t.alsoFB = true
	sh.degraded.Store(true)
	sh.degradeReason = reason
	sh.epoch++
	sh.counters.Degrades++
	sh.flushWaitersLocked(ErrDegraded)
	if cb := sh.svc.cfg.OnDegrade; cb != nil {
		id := sh.id
		sh.svc.pendingCallbacks(func() { cb(id, reason) })
	}
	return t
}

// flushWaitersLocked fails every queued waiter with err and empties the
// admission queue.
func (sh *shard) flushWaitersLocked(err error) {
	for _, r := range sh.res {
		for _, w := range r.q {
			w.flushed = true
			w.flushErr = err
			sh.counters.Flushed++
			close(w.grant)
		}
		r.q = nil
	}
	sh.queued = 0
}

// rememberGone records why a token's lease ended so a late Release is
// typed; the ring bounds memory.
func (sh *shard) rememberGone(token uint64, cause error) {
	if old := sh.goneRing[sh.goneNext]; old != 0 {
		delete(sh.gone, old)
	}
	sh.goneRing[sh.goneNext] = token
	sh.goneNext = (sh.goneNext + 1) % goneRingSize
	sh.gone[token] = cause
}

// resourceLocked returns (creating if needed) the named resource.
func (sh *shard) resourceLocked(name string) *resource {
	r := sh.res[name]
	if r == nil {
		r = &resource{name: name}
		sh.res[name] = r
	}
	return r
}

// gcLocked drops an idle resource entry.
func (sh *shard) gcLocked(r *resource) {
	if r.holder == nil && len(r.q) == 0 {
		delete(sh.res, r.name)
	}
}

// oldestWaitLocked returns the enqueue time of the oldest queued waiter
// and whether one exists.
func (sh *shard) oldestWaitLocked() (time.Time, bool) {
	if sh.queued == 0 {
		// Nobody waits: skip the scan. The watchdog runs on every
		// dispatch, so with private (uncontended) resources this guard
		// is the difference between O(1) and O(resources) per op.
		return time.Time{}, false
	}
	var oldest time.Time
	found := false
	for _, r := range sh.res {
		for _, w := range r.q {
			if !found || w.enq.Before(oldest) {
				oldest = w.enq
				found = true
			}
		}
	}
	return oldest, found
}

// watchdogLocked is the starvation watchdog: a queued wait older than
// StarvationBound degrades the shard.
func (sh *shard) watchdogLocked(t lockToken, now time.Time) lockToken {
	if t.fb || sh.svc.cfg.StarvationBound <= 0 {
		return t
	}
	if oldest, ok := sh.oldestWaitLocked(); ok {
		if sh.armedAt.After(oldest) {
			oldest = sh.armedAt // re-armed since the oldest enqueue
		}
		if age := now.Sub(oldest); age > sh.svc.cfg.StarvationBound {
			return sh.degradeLocked(t, fmt.Sprintf("starvation: waiter queued %v > bound %v", age, sh.svc.cfg.StarvationBound))
		}
	}
	return t
}

// Service is a sharded lock-lease service.
type Service struct {
	cfg    Config
	clock  Clock
	shards []*shard
	tokens atomic.Uint64
	closed atomic.Bool
	// draining refuses new acquires (typed ErrDraining) while existing
	// leases run out their grace; see Drain.
	draining atomic.Bool

	// tun and ctrl exist only in adaptive mode: tun is the shared
	// inserted-delay parameter cell every shard lock reads, ctrl the
	// controller retuning it and migrating shard policies.
	tun      *locks.Tuning
	ctrl     *adaptive.Controller
	ctrlDone chan struct{}

	stop        chan struct{}
	sweeperDone chan struct{}

	// cbMu serializes deferred callbacks (expiry, degrade) so observers
	// see them in a consistent order without any shard lock held.
	cbMu    sync.Mutex
	cbQueue []func()
}

// New builds a service and, unless NoSweeper, starts its expiry sweeper.
func New(cfg Config) (*Service, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   full,
		clock: full.Clock,
		stop:  make(chan struct{}),
	}
	var lockOpts []locks.Option
	if full.Adaptive {
		s.tun = locks.NewTuning()
		lockOpts = append(lockOpts, locks.WithTuning(s.tun))
	}
	s.shards = make([]*shard, full.Shards)
	for i := range s.shards {
		kind := full.Lock
		if len(full.Locks) != 0 {
			kind = full.Locks[i]
		}
		mu, err := locks.New(kind, lockOpts...)
		if err != nil {
			return nil, configErr("lock", "shard %d: %v", i, err)
		}
		s.shards[i] = &shard{
			svc:    s,
			id:     i,
			mu:     mu,
			policy: full.Policy,
			res:    make(map[string]*resource),
			gone:   make(map[uint64]error),
			fences: make(map[string]uint64),
		}
	}
	if !full.NoSweeper {
		s.sweeperDone = make(chan struct{})
		go s.sweeper()
	}
	if full.Adaptive {
		s.ctrl = adaptive.New(plantAdapter{s}, adaptive.Config{
			Interval: full.AdaptiveInterval,
			Tuning:   s.tun,
		})
		s.ctrlDone = make(chan struct{})
		go func() { defer close(s.ctrlDone); s.ctrl.Run() }()
	}
	return s, nil
}

// Policy returns the service's configured (starting) grant policy.
// Individual shards may have migrated since; see ShardPolicy.
func (s *Service) Policy() Policy { return s.cfg.Policy }

// ShardPolicy reports the live discipline of one shard: its current
// policy, or degraded state if the shard has been degraded.
func (s *Service) ShardPolicy(shard int) (p Policy, degraded bool, err error) {
	if shard < 0 || shard >= len(s.shards) {
		return "", false, configErr("shard", "index %d out of range [0,%d)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	t := sh.lockShard()
	p, degraded = sh.policy, t.fb
	sh.unlockShard(t)
	return p, degraded, nil
}

// shardFor hashes a resource name to its shard.
func (s *Service) shardFor(resource string) *shard {
	h := fnv.New32a()
	h.Write([]byte(resource))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// pendingCallbacks enqueues a deferred callback; runCallbacks drains the
// queue outside all shard locks.
func (s *Service) pendingCallbacks(f func()) {
	s.cbMu.Lock()
	s.cbQueue = append(s.cbQueue, f)
	s.cbMu.Unlock()
}

func (s *Service) runCallbacks() {
	for {
		s.cbMu.Lock()
		if len(s.cbQueue) == 0 {
			s.cbMu.Unlock()
			return
		}
		f := s.cbQueue[0]
		s.cbQueue = s.cbQueue[1:]
		s.cbMu.Unlock()
		f()
	}
}

// newLeaseLocked creates a live lease for r and schedules its expiry.
func (s *Service) newLeaseLocked(sh *shard, r *resource, owner string, now time.Time, ttl time.Duration) Lease {
	sh.fences[r.name]++
	lease := Lease{
		Resource: r.name,
		Owner:    owner,
		Token:    s.tokens.Add(1),
		Fence:    sh.fences[r.name],
		Deadline: now.Add(ttl),
	}
	r.holder = &leaseState{lease: lease, grantedAt: now}
	heap.Push(&sh.heap, heapEntry{deadline: lease.Deadline.UnixNano(), token: lease.Token, res: r.name})
	sh.live++
	sh.counters.Grants++
	return lease
}

// clampTTL resolves an acquire's TTL against the config bounds.
func (s *Service) clampTTL(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	if ttl > s.cfg.MaxTTL {
		ttl = s.cfg.MaxTTL
	}
	return ttl
}

// grantNextLocked passes a freed resource onward per the shard's live
// grant policy.
func (s *Service) grantNextLocked(sh *shard, r *resource, now time.Time) {
	if sh.policy == PolicyBroadcast {
		// Broadcast: wake the whole pack; they re-contend under the
		// shard guard and all but one wake-up is wasted.
		if n := len(r.q); n > 0 {
			sh.counters.BroadcastWakeups += uint64(n)
			for _, w := range r.q {
				select {
				case w.grant <- grantResult{retry: true}:
				default: // a wake-up is already pending
				}
			}
		}
		sh.gcLocked(r)
		return
	}
	// Direct hand-off: build the successor's lease while still holding
	// the shard and deliver it in one transfer.
	if len(r.q) > 0 {
		w := r.q[0]
		r.q = r.q[1:]
		sh.queued--
		lease := s.newLeaseLocked(sh, r, w.owner, now, w.ttl)
		sh.counters.Handoffs++
		sh.grantWait.Add(uint64(now.Sub(w.enq)))
		if s.cfg.brokenHandoff {
			r.holder = nil // seeded bug: the transfer is "forgotten"
		}
		w.grant <- grantResult{lease: lease}
		return
	}
	sh.gcLocked(r)
}

// expireDueLocked reclaims every lease past its deadline in this shard
// and grants successors; it returns the expired leases for the
// exactly-once OnExpire callbacks (run by the caller outside the lock).
func (s *Service) expireDueLocked(sh *shard, now time.Time) []Lease {
	var out []Lease
	nowNS := now.UnixNano()
	for len(sh.heap) > 0 && sh.heap[0].deadline <= nowNS {
		e := heap.Pop(&sh.heap).(heapEntry)
		r := sh.res[e.res]
		if r == nil || r.holder == nil || r.holder.lease.Token != e.token {
			continue // stale entry: the lease was released or revoked
		}
		lease := r.holder.lease
		r.holder = nil
		sh.live--
		sh.rememberGone(e.token, ErrLeaseExpired)
		sh.counters.Expiries++
		out = append(out, lease)
		s.grantNextLocked(sh, r, now)
	}
	return out
}

// queueExpiryCallbacks defers OnExpire for each expired lease.
func (s *Service) queueExpiryCallbacks(expired []Lease) {
	if cb := s.cfg.OnExpire; cb != nil {
		for _, l := range expired {
			lease := l
			s.pendingCallbacks(func() { cb(lease) })
		}
	}
}

// Acquire requests an exclusive lease on a named resource. A free
// resource is granted immediately. A held one is queued (opt.Wait)
// subject to the shard's bounded admission queue, shed when the queue is
// full or the shard is degraded, or refused with ErrNoWait. All errors
// are typed; see errors.go.
func (s *Service) Acquire(resourceName, owner string, opt AcquireOptions) (Lease, error) {
	if resourceName == "" {
		return Lease{}, configErrf("empty resource name")
	}
	if s.closed.Load() {
		return Lease{}, ErrClosed
	}
	if s.draining.Load() {
		return Lease{}, ErrDraining
	}
	ttl := s.clampTTL(opt.TTL)
	sh := s.shardFor(resourceName)
	now := s.clock.Now()

	t := sh.lockShard()
	if s.closed.Load() {
		sh.unlockShard(t)
		return Lease{}, ErrClosed
	}
	if s.draining.Load() {
		// Re-checked under the shard guard so no waiter can slip into the
		// queue after Drain's flush pass.
		sh.unlockShard(t)
		return Lease{}, ErrDraining
	}
	sh.counters.Acquires++
	expired := s.expireDueLocked(sh, now)
	t = sh.watchdogLocked(t, now)
	r := sh.resourceLocked(resourceName)

	if r.holder == nil && (t.fb || sh.policy == PolicyBroadcast || len(r.q) == 0) {
		lease := s.newLeaseLocked(sh, r, owner, now, ttl)
		sh.counters.ImmediateGrants++
		sh.grantWait.Add(0)
		sh.unlockShard(t)
		s.queueExpiryCallbacks(expired)
		s.runCallbacks()
		return lease, nil
	}
	// Held (or hand-off pending). Decide admission.
	var refusal error
	switch {
	case t.fb:
		// Degraded: shed-load mode, no queueing at all.
		sh.counters.DegradedSheds++
		refusal = ErrShed
	case !opt.Wait:
		sh.counters.NoWaitBusy++
		refusal = ErrNoWait
	case sh.queued >= s.cfg.QueueDepth:
		// Backpressure: the bounded admission queue deflects the
		// request instead of letting it pile on the resource.
		sh.counters.QueueFullSheds++
		refusal = ErrQueueFull
	}
	if refusal != nil {
		sh.gcLocked(r)
		sh.unlockShard(t)
		s.queueExpiryCallbacks(expired)
		s.runCallbacks()
		return Lease{}, refusal
	}

	w := &waiter{owner: owner, ttl: ttl, enq: now, grant: make(chan grantResult, 1)}
	r.q = append(r.q, w)
	sh.queued++
	sh.unlockShard(t)
	s.queueExpiryCallbacks(expired)
	s.runCallbacks()
	return s.await(sh, resourceName, w, opt)
}

// await parks a queued waiter until grant, flush, or timeout.
func (s *Service) await(sh *shard, resourceName string, w *waiter, opt AcquireOptions) (Lease, error) {
	var timeout <-chan time.Time
	var timer Timer
	if opt.MaxWait > 0 {
		timer = s.clock.NewTimer(opt.MaxWait)
		timeout = timer.C()
		defer timer.Stop()
	}
	for {
		select {
		case g, ok := <-w.grant:
			if !ok {
				// Flushed: degraded shard or service shutdown; the
				// cause was published before the close.
				return Lease{}, w.flushErr
			}
			if !g.retry {
				return g.lease, nil
			}
			// Broadcast wake-up: re-contend.
			if lease, done, err := s.tryClaim(sh, resourceName, w); done {
				return lease, err
			}
		case <-timeout:
			if lease, granted, err := s.abandonWait(sh, resourceName, w); granted {
				return lease, err
			}
			return Lease{}, ErrWaitTimeout
		}
	}
}

// tryClaim is the broadcast waiter's re-contention step: claim the
// resource if it is free, otherwise record a wasted wake-up and keep
// waiting.
func (s *Service) tryClaim(sh *shard, resourceName string, w *waiter) (Lease, bool, error) {
	now := s.clock.Now()
	t := sh.lockShard()
	if w.flushed {
		err := w.flushErr
		sh.unlockShard(t)
		return Lease{}, true, err
	}
	r := sh.res[resourceName]
	if r == nil {
		// The resource entry was collected, so it is free; recreate.
		r = sh.resourceLocked(resourceName)
	}
	if r.holder == nil {
		removeWaiter(sh, r, w)
		lease := s.newLeaseLocked(sh, r, w.owner, now, w.ttl)
		sh.counters.BroadcastClaims++
		sh.grantWait.Add(uint64(now.Sub(w.enq)))
		sh.unlockShard(t)
		return lease, true, nil
	}
	sh.counters.WastedWakeups++
	sh.unlockShard(t)
	return Lease{}, false, nil
}

// abandonWait removes a timed-out waiter. If the waiter was already
// granted or flushed (the message raced the timeout), the pending
// outcome is consumed and returned instead.
func (s *Service) abandonWait(sh *shard, resourceName string, w *waiter) (Lease, bool, error) {
	t := sh.lockShard()
	removed := false
	if !w.flushed {
		if r := sh.res[resourceName]; r != nil {
			removed = removeWaiter(sh, r, w)
			sh.gcLocked(r)
		}
	}
	if removed {
		sh.counters.Timeouts++
	}
	sh.unlockShard(t)
	if removed {
		return Lease{}, false, nil
	}
	// Not queued anymore: a grant or flush is pending (the sender
	// completed while holding the shard guard).
	g, ok := <-w.grant
	if !ok {
		return Lease{}, true, w.flushErr
	}
	if g.retry {
		// Broadcast retry raced the timeout while a flush cleared the
		// queue — the close follows; wait for the definitive outcome.
		if g2, ok2 := <-w.grant; ok2 && !g2.retry {
			return g2.lease, true, nil
		}
		return Lease{}, true, w.flushErr
	}
	return g.lease, true, nil
}

// removeWaiter unlinks w from r's queue; reports whether it was queued.
func removeWaiter(sh *shard, r *resource, w *waiter) bool {
	for i, o := range r.q {
		if o == w {
			r.q = append(r.q[:i], r.q[i+1:]...)
			sh.queued--
			return true
		}
	}
	return false
}

// Release ends a lease by token. Late releases are typed: an expired
// lease reports ErrLeaseExpired, a revoked one ErrRevoked, anything else
// ErrNotHeld.
func (s *Service) Release(resourceName string, token uint64) error {
	return s.release(resourceName, token, 0)
}

// ReleaseFenced ends a lease by token, additionally validated against
// the lease's fencing token. Fence 0 makes no fence claim (identical to
// Release). A non-zero stale fence is rejected ErrFenced — the typed
// verdict a zombie client gets even after the gone-ring has forgotten
// its token, because the per-resource fence counter is never reset.
func (s *Service) ReleaseFenced(resourceName string, token, fence uint64) error {
	return s.release(resourceName, token, fence)
}

func (s *Service) release(resourceName string, token, fence uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	sh := s.shardFor(resourceName)
	now := s.clock.Now()

	t := sh.lockShard()
	// Expire first: a release racing its own deadline resolves to the
	// typed expiry, never to a silent double-release.
	expired := s.expireDueLocked(sh, now)
	t = sh.watchdogLocked(t, now)
	var err error
	r := sh.res[resourceName]
	switch {
	case r == nil || r.holder == nil || r.holder.lease.Token != token:
		if cause, ok := sh.gone[token]; ok {
			err = cause
		} else if fence != 0 && fence < sh.fences[resourceName] {
			err = ErrFenced
			sh.counters.FencedRejects++
		} else {
			err = ErrNotHeld
		}
		sh.counters.BadReleases++
	case fence != 0 && r.holder.lease.Fence != fence:
		// The token matches but the fence claim does not: a confused
		// client must not release a lease it cannot prove is its own.
		err = ErrFenced
		sh.counters.FencedRejects++
		sh.counters.BadReleases++
	default:
		sh.counters.Releases++
		sh.hold.Add(uint64(now.Sub(r.holder.grantedAt)))
		r.holder = nil
		sh.live--
		s.grantNextLocked(sh, r, now)
	}
	sh.unlockShard(t)
	s.queueExpiryCallbacks(expired)
	s.runCallbacks()
	return err
}

// Resume re-validates a lease after a reconnect: if token still holds
// the resource the live lease is returned and the client may carry on;
// otherwise the typed reason it cannot — ErrLeaseExpired / ErrRevoked
// while the gone-ring remembers the token, ErrFenced when the fence
// claim is provably stale, ErrNotHeld otherwise. Resume never mutates
// lease state: it is safe to call any number of times.
func (s *Service) Resume(resourceName string, token, fence uint64) (Lease, error) {
	if resourceName == "" {
		return Lease{}, configErrf("empty resource name")
	}
	if s.closed.Load() {
		return Lease{}, ErrClosed
	}
	sh := s.shardFor(resourceName)
	now := s.clock.Now()

	t := sh.lockShard()
	// Expire first so a resume racing its own deadline sees the typed
	// expiry, never a lease that is about to vanish.
	expired := s.expireDueLocked(sh, now)
	var lease Lease
	var err error
	r := sh.res[resourceName]
	switch {
	case r != nil && r.holder != nil && r.holder.lease.Token == token:
		if fence != 0 && r.holder.lease.Fence != fence {
			err = ErrFenced
			sh.counters.FencedRejects++
		} else {
			lease = r.holder.lease
			sh.counters.Resumes++
		}
	default:
		if cause, ok := sh.gone[token]; ok {
			err = cause
		} else if fence != 0 && fence < sh.fences[resourceName] {
			err = ErrFenced
			sh.counters.FencedRejects++
		} else {
			err = ErrNotHeld
		}
	}
	sh.unlockShard(t)
	s.queueExpiryCallbacks(expired)
	s.runCallbacks()
	return lease, err
}

// Revoke force-releases a resource's current lease (administrative
// preemption); the revoked lease (if any) is returned and the resource
// is granted onward. A late Release of the revoked token reports
// ErrRevoked.
func (s *Service) Revoke(resourceName string) (Lease, bool, error) {
	if s.closed.Load() {
		return Lease{}, false, ErrClosed
	}
	sh := s.shardFor(resourceName)
	now := s.clock.Now()

	t := sh.lockShard()
	expired := s.expireDueLocked(sh, now)
	r := sh.res[resourceName]
	if r == nil || r.holder == nil {
		sh.unlockShard(t)
		s.queueExpiryCallbacks(expired)
		s.runCallbacks()
		return Lease{}, false, nil
	}
	lease := r.holder.lease
	r.holder = nil
	sh.live--
	sh.rememberGone(lease.Token, ErrRevoked)
	sh.counters.Revocations++
	s.grantNextLocked(sh, r, now)
	sh.unlockShard(t)
	s.queueExpiryCallbacks(expired)
	s.runCallbacks()
	return lease, true, nil
}

// SweepExpired reclaims every due lease across all shards and runs the
// starvation watchdog; it returns how many leases expired. The
// background sweeper calls it; tests with NoSweeper call it manually.
func (s *Service) SweepExpired() int {
	now := s.clock.Now()
	total := 0
	for _, sh := range s.shards {
		t := sh.lockShard()
		expired := s.expireDueLocked(sh, now)
		t = sh.watchdogLocked(t, now)
		sh.unlockShard(t)
		total += len(expired)
		s.queueExpiryCallbacks(expired)
	}
	s.runCallbacks()
	return total
}

// sweeper is the background expiry loop: it wakes at the earliest lease
// deadline (bounded so the starvation watchdog runs regularly) and
// sweeps.
func (s *Service) sweeper() {
	defer close(s.sweeperDone)
	const maxNap = 50 * time.Millisecond
	const minNap = 100 * time.Microsecond
	for {
		nap := maxNap
		now := s.clock.Now()
		for _, sh := range s.shards {
			t := sh.lockShard()
			if len(sh.heap) > 0 {
				if d := time.Duration(sh.heap[0].deadline - now.UnixNano()); d < nap {
					nap = d
				}
			}
			sh.unlockShard(t)
		}
		if nap < minNap {
			nap = minNap
		}
		timer := s.clock.NewTimer(nap)
		select {
		case <-timer.C():
			s.SweepExpired()
		case <-s.stop:
			timer.Stop()
			return
		}
	}
}

// Draining reports whether the service is refusing new acquires for
// shutdown.
func (s *Service) Draining() bool { return s.draining.Load() }

// liveLeaseCount sums live leases across shards.
func (s *Service) liveLeaseCount() int {
	total := 0
	for _, sh := range s.shards {
		t := sh.lockShard()
		total += sh.live
		sh.unlockShard(t)
	}
	return total
}

// Drain winds the service down gracefully: new acquires are refused
// with ErrDraining, every queued waiter is flushed with ErrDraining
// under the shard epoch fence (epoch++ so in-flight grant decisions
// from before the drain cannot land after it), live leases get up to
// grace to be released or to expire, and any straggler is then revoked
// (a late Release of a revoked token reports ErrRevoked). Drain is
// idempotent and leaves the service alive for Release/Resume traffic —
// callers typically follow with Close.
func (s *Service) Drain(grace time.Duration) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range s.shards {
		t := sh.lockShard()
		sh.epoch++
		sh.flushWaitersLocked(ErrDraining)
		sh.unlockShard(t)
	}
	s.runCallbacks()

	// Grace: let holders release (or their leases expire) before the
	// revoke pass. The deadline timer rides the service clock so
	// FakeClock tests drive it with Advance; the poll nap is a real
	// sleep, which is only pacing, not semantics.
	if grace > 0 {
		deadline := s.clock.NewTimer(grace)
		for s.liveLeaseCount() > 0 {
			s.SweepExpired()
			if s.liveLeaseCount() == 0 {
				break
			}
			fired := false
			select {
			case <-deadline.C():
				fired = true
			default:
			}
			if fired || s.closed.Load() {
				break
			}
			time.Sleep(500 * time.Microsecond)
		}
		deadline.Stop()
	}

	// Revoke stragglers so the drained service ends with zero live
	// leases; conservation stays intact (each straggler moves from Live
	// to Revocations).
	for _, sh := range s.shards {
		t := sh.lockShard()
		now := s.clock.Now()
		expired := s.expireDueLocked(sh, now)
		for _, r := range sh.res {
			if r.holder == nil {
				continue
			}
			lease := r.holder.lease
			r.holder = nil
			sh.live--
			sh.rememberGone(lease.Token, ErrRevoked)
			sh.counters.Revocations++
			sh.gcLocked(r)
		}
		sh.unlockShard(t)
		s.queueExpiryCallbacks(expired)
	}
	s.runCallbacks()
	return nil
}

// Close shuts the service down: the sweeper stops and every queued
// waiter is flushed with ErrClosed. Close is idempotent.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	if s.ctrl != nil {
		s.ctrl.Close()
		<-s.ctrlDone
	}
	if s.sweeperDone != nil {
		<-s.sweeperDone
	}
	for _, sh := range s.shards {
		t := sh.lockShard()
		sh.flushWaitersLocked(ErrClosed)
		sh.unlockShard(t)
	}
	s.runCallbacks()
	return nil
}
