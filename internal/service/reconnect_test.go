package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"iqolb/internal/faults"
)

// The reconnect-fencing suite: 500 seeded histories of the crash →
// reconnect → resume lifecycle, driven in-process against a manual
// clock so every expiry is deterministic. Each history asserts the
// wire-v2 safety contract:
//
//   - a crashed client's lease expires exactly once (never zero, never
//     twice), observed through the OnExpire callback;
//   - a stale token can never double-release: after expiry or a
//     successor grant, release and resume with the old credentials fail
//     typed and leave the successor untouched;
//   - a reconnect before expiry resumes the same lease, same fence;
//   - lease conservation holds at the end of every history.
func TestReconnectFencingHistories(t *testing.T) {
	const (
		histories = 500
		ttl       = 100 * time.Millisecond
	)
	for seed := uint64(0); seed < histories; seed++ {
		str := faults.NewStream(seed*0x9e3779b9 + 1)

		var mu sync.Mutex
		expiries := make(map[uint64]int)
		clk := NewFakeClock()
		svc, err := New(Config{
			Shards:     1,
			QueueDepth: 8,
			DefaultTTL: ttl,
			Clock:      clk,
			NoSweeper:  true,
			OnExpire: func(l Lease) {
				mu.Lock()
				expiries[l.Token]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		grants := 0
		for step := 0; step < 10; step++ {
			l, err := svc.Acquire("r", "c1", AcquireOptions{})
			if err != nil {
				t.Fatalf("seed %d step %d: acquire: %v", seed, step, err)
			}
			grants++
			if l.Fence == 0 {
				t.Fatalf("seed %d step %d: grant without fence", seed, step)
			}

			if !str.Chance(0.5) {
				// Well-behaved client: release, then prove the release is
				// not repeatable.
				if err := svc.ReleaseFenced("r", l.Token, l.Fence); err != nil {
					t.Fatalf("seed %d step %d: release: %v", seed, step, err)
				}
				if err := svc.ReleaseFenced("r", l.Token, l.Fence); err == nil {
					t.Fatalf("seed %d step %d: double release accepted", seed, step)
				}
				continue
			}

			// Crash mid-hold: the client vanishes without releasing.
			if str.Chance(0.5) {
				// Reconnect before the TTL: resume revalidates the same
				// lease with the same fence...
				got, err := svc.Resume("r", l.Token, l.Fence)
				if err != nil || got.Token != l.Token || got.Fence != l.Fence {
					t.Fatalf("seed %d step %d: resume: %+v, %v", seed, step, got, err)
				}
				// ...while a stale fence claim for the same token is
				// rejected without touching the lease.
				if _, err := svc.Resume("r", l.Token, l.Fence+1); !errors.Is(err, ErrFenced) {
					t.Fatalf("seed %d step %d: stale-fence resume: %v, want ErrFenced", seed, step, err)
				}
				if err := svc.ReleaseFenced("r", l.Token, l.Fence); err != nil {
					t.Fatalf("seed %d step %d: release after resume: %v", seed, step, err)
				}
				continue
			}

			// No reconnect in time: the lease must expire, exactly once.
			clk.Advance(ttl + time.Millisecond)
			svc.SweepExpired()
			mu.Lock()
			n := expiries[l.Token]
			mu.Unlock()
			if n != 1 {
				t.Fatalf("seed %d step %d: token %d expired %d times, want 1", seed, step, l.Token, n)
			}

			// A successor takes the resource with a strictly newer fence.
			l2, err := svc.Acquire("r", "c2", AcquireOptions{})
			if err != nil {
				t.Fatalf("seed %d step %d: successor acquire: %v", seed, step, err)
			}
			grants++
			if l2.Fence <= l.Fence {
				t.Fatalf("seed %d step %d: successor fence %d not past %d", seed, step, l2.Fence, l.Fence)
			}

			// The crashed client reconnects with stale credentials: every
			// path fails typed and the successor is untouched.
			if _, err := svc.Resume("r", l.Token, l.Fence); !errors.Is(err, ErrLeaseExpired) {
				t.Fatalf("seed %d step %d: stale resume: %v, want ErrLeaseExpired", seed, step, err)
			}
			if err := svc.ReleaseFenced("r", l.Token, l.Fence); !errors.Is(err, ErrLeaseExpired) {
				t.Fatalf("seed %d step %d: stale release: %v, want ErrLeaseExpired", seed, step, err)
			}
			if got, err := svc.Resume("r", l2.Token, l2.Fence); err != nil || got.Token != l2.Token {
				t.Fatalf("seed %d step %d: successor displaced: %+v, %v", seed, step, got, err)
			}
			if err := svc.ReleaseFenced("r", l2.Token, l2.Fence); err != nil {
				t.Fatalf("seed %d step %d: successor release: %v", seed, step, err)
			}
			// Exactly once, still: the stale churn above must not have
			// re-expired the old token.
			mu.Lock()
			n = expiries[l.Token]
			mu.Unlock()
			if n != 1 {
				t.Fatalf("seed %d step %d: token %d expiries drifted to %d", seed, step, l.Token, n)
			}
		}

		snap := svc.Snapshot()
		tt := snap.Totals
		if uint64(grants) != tt.Grants {
			t.Fatalf("seed %d: grants counted %d, service saw %d", seed, grants, tt.Grants)
		}
		if got, want := tt.Grants, tt.Releases+tt.Expiries+tt.Revocations+uint64(snap.LiveLeases); got != want {
			t.Fatalf("seed %d: conservation: grants=%d releases=%d expiries=%d revocations=%d live=%d",
				seed, tt.Grants, tt.Releases, tt.Expiries, tt.Revocations, snap.LiveLeases)
		}
		svc.Close()
	}
}
