package service

import (
	"io"
	"net"
	"sync"
	"time"
)

// flushWriter is the delay-inserted write coalescer: frames written
// while the flusher is holding the socket are batched into one Write
// syscall. The delay is the paper's move applied to the transmit path —
// deliberately NOT sending for up to `delay` raises throughput (fewer
// syscalls, fuller packets) at a bounded cost to p50 latency. A delay
// of zero writes through immediately, reproducing the uncoalesced
// behavior byte for byte.
//
// Concurrent WriteFrame calls are safe; each frame is written whole
// (never interleaved). Buffered bytes are flushed by Close, so a frame
// accepted before Close is never dropped by the coalescer itself.
//
// Memory stays bounded without an explicit cap because every producer
// is window-limited: a server connection has at most `window` worker
// frames outstanding and a client at most `window` requests, so the
// pending buffer tops out near window × max frame size.
type flushWriter struct {
	w     io.Writer
	delay time.Duration

	mu     sync.Mutex
	buf    []byte // frames accepted since the last flush
	spare  []byte // the previous flush's buffer, recycled
	err    error  // first write error, sticky
	closed bool

	kick   chan struct{} // first-frame-since-flush signal, cap 1
	urgent chan struct{} // size-threshold reached: flush without finishing the delay, cap 1
	stop   chan struct{}
	done   chan struct{}
}

// coalesceThreshold is the pending-byte level that flushes immediately
// instead of waiting out the delay: once a batch is already big enough
// to fill a syscall, holding it longer buys nothing and costs latency.
// The inserted delay is therefore an upper bound, not a fixed tax.
const coalesceThreshold = 8 << 10

// newFlushWriter wraps w; with delay > 0 it starts the flusher
// goroutine, which Close stops.
func newFlushWriter(w io.Writer, delay time.Duration) *flushWriter {
	fw := &flushWriter{
		w:     w,
		delay: delay,
		buf:    make([]byte, 0, 2048),
		spare:  make([]byte, 0, 2048),
		kick:   make(chan struct{}, 1),
		urgent: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if delay > 0 {
		go fw.loop()
	} else {
		close(fw.done)
	}
	return fw
}

// WriteFrame queues (or, with no delay, writes) one whole frame.
func (fw *flushWriter) WriteFrame(frame []byte) error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	if fw.closed {
		fw.mu.Unlock()
		return net.ErrClosed
	}
	if fw.delay <= 0 {
		// Write-through: the mutex alone serializes writers on the socket.
		_, err := fw.w.Write(frame)
		if err != nil {
			fw.err = err
		}
		fw.mu.Unlock()
		return err
	}
	wasEmpty := len(fw.buf) == 0
	fw.buf = append(fw.buf, frame...)
	full := len(fw.buf) >= coalesceThreshold
	fw.mu.Unlock()
	if wasEmpty {
		select {
		case fw.kick <- struct{}{}:
		default:
		}
	}
	if full {
		select {
		case fw.urgent <- struct{}{}:
		default:
		}
	}
	return nil
}

// loop is the flusher: on the first frame after an empty buffer it
// holds the socket for up to the configured delay — the inserted delay
// — then writes everything that accumulated in one syscall. A batch
// that reaches the size threshold flushes early; the delay is the
// latency bound, not a fixed tax.
func (fw *flushWriter) loop() {
	defer close(fw.done)
	timer := time.NewTimer(fw.delay)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-fw.kick:
			timer.Reset(fw.delay)
			select {
			case <-timer.C:
			case <-fw.urgent:
				if !timer.Stop() {
					<-timer.C
				}
			case <-fw.stop:
				if !timer.Stop() {
					<-timer.C
				}
				fw.flush()
				return
			}
			fw.flush()
			// A stale urgent signal from the batch just flushed must not
			// cut the next batch's delay short.
			select {
			case <-fw.urgent:
			default:
			}
		case <-fw.stop:
			fw.flush()
			return
		}
	}
}

// flush writes the pending buffer. Only the flusher goroutine calls it,
// so the socket write happens outside the mutex and producers keep
// appending to the swapped-in spare buffer meanwhile.
func (fw *flushWriter) flush() {
	fw.mu.Lock()
	if len(fw.buf) == 0 || fw.err != nil {
		fw.mu.Unlock()
		return
	}
	out := fw.buf
	fw.buf = fw.spare[:0]
	fw.mu.Unlock()
	_, err := fw.w.Write(out)
	fw.mu.Lock()
	fw.spare = out[:0]
	if err != nil && fw.err == nil {
		fw.err = err
	}
	fw.mu.Unlock()
}

// Err reports the sticky first write error.
func (fw *flushWriter) Err() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.err
}

// Close stops the flusher after a final flush of anything buffered.
// Idempotent; returns the sticky write error, if any.
func (fw *flushWriter) Close() error {
	fw.mu.Lock()
	if fw.closed {
		fw.mu.Unlock()
		<-fw.done
		return fw.Err()
	}
	fw.closed = true
	fw.mu.Unlock()
	if fw.delay > 0 {
		close(fw.stop)
	}
	<-fw.done
	return fw.Err()
}
