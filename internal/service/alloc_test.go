package service

import (
	"bytes"
	"testing"
	"time"
)

// The zero-allocation contract of the hot-path codec: encoding appends
// into a caller-owned buffer and steady-state decoding reuses the
// Decoder's scratch and interned names. These are regression tests, not
// benchmarks — a refactor that sneaks an allocation into the codec
// fails here long before it shows up in a throughput sweep.

func TestEncodeAllocs(t *testing.T) {
	req := Request{
		Version:  WireVersion3,
		ID:       42,
		Op:       OpAcquire,
		Resource: "res-alloc",
		Owner:    "owner-alloc",
		TTL:      5 * time.Second,
		MaxWait:  time.Second,
		Wait:     true,
		Deadline: 1234567890,
	}
	resp := Response{
		Version:  WireVersion3,
		ID:       42,
		Op:       OpGranted,
		Token:    7,
		Fence:    9,
		Deadline: 1234567890,
	}
	buf := make([]byte, 0, wireHeaderLen+MaxPayload)
	if n := testing.AllocsPerRun(200, func() {
		out, err := AppendRequest(buf[:0], req)
		if err != nil || len(out) == 0 {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendRequest allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		out, err := AppendResponse(buf[:0], resp)
		if err != nil || len(out) == 0 {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendResponse allocates %.1f/op, want 0", n)
	}
}

func TestDecodeAllocs(t *testing.T) {
	reqFrame, err := AppendRequest(nil, Request{
		Version:  WireVersion3,
		ID:       42,
		Op:       OpAcquire,
		Resource: "res-alloc",
		Owner:    "owner-alloc",
		TTL:      5 * time.Second,
		Wait:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	respFrame, err := AppendResponse(nil, Response{
		Version:  WireVersion3,
		ID:       42,
		Op:       OpGranted,
		Token:    7,
		Fence:    9,
		Deadline: 1234567890,
	})
	if err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder()
	r := bytes.NewReader(nil)
	// Warm up: the first decode of each name interns it (one allocation,
	// amortized over the connection's lifetime).
	r.Reset(reqFrame)
	if _, err := dec.ReadRequest(r); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		r.Reset(reqFrame)
		if _, err := dec.ReadRequest(r); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state ReadRequest allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		r.Reset(respFrame)
		if _, err := dec.ReadResponse(r); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state ReadResponse allocates %.1f/op, want 0", n)
	}
}

// TestPipelinedOpAllocs bounds the steady-state allocation budget of a
// full pipelined round trip (encode, coalesced write, server dispatch,
// response demux). It cannot be zero — channel-based wakeups and the
// service's lease bookkeeping are real — but the frame buffers, reply
// channels, and op timers are all pooled, so the budget must stay flat
// and small. The bound has headroom over the measured value; what it
// guards against is a per-op allocation sneaking back into the codec or
// router (each such slip costs whole allocations, not fractions).
func TestPipelinedOpAllocs(t *testing.T) {
	srv, addr := startServerOpts(t, nil, ServerOptions{})
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(10 * time.Second)
	if err := cl.Pipeline(4, 0); err != nil {
		t.Fatal(err)
	}
	// Warm up pools, interner, and the connection's server-side state.
	for i := 0; i < 50; i++ {
		lease, err := cl.Acquire("res-alloc", "owner-alloc", AcquireOptions{TTL: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.ReleaseFenced("res-alloc", lease.Token, lease.Fence); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		lease, err := cl.Acquire("res-alloc", "owner-alloc", AcquireOptions{TTL: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.ReleaseFenced("res-alloc", lease.Token, lease.Fence); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 40 // measured ~12 for acquire+release; headroom for scheduler noise
	if n > budget {
		t.Errorf("pipelined acquire+release allocates %.1f/op, budget %d", n, budget)
	}
}
