package service

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpAcquire, Resource: "db", Owner: "alice", TTL: 5 * time.Second, MaxWait: 250 * time.Millisecond, Wait: true},
		{Op: OpAcquire, Resource: "r", Owner: "", TTL: 0, MaxWait: 0, Wait: false},
		{Op: OpRelease, Resource: "db", Token: 0xdeadbeefcafe},
		{Op: OpPing},
	}
	for _, req := range reqs {
		b, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		got, err := ReadRequest(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
		// Canonical: re-encoding the parsed frame is byte-identical.
		b2, err := AppendRequest(nil, got)
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", b, b2, err)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Op: OpGranted, Token: 42, Deadline: 123456789},
		{Op: OpOK},
		{Op: OpError, Code: CodeQueueFull, Msg: "queue full"},
	}
	for _, resp := range resps {
		b, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("%+v: %v", resp, err)
		}
		got, err := ReadResponse(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%+v: %v", resp, err)
		}
		if got != resp {
			t.Fatalf("round trip: got %+v, want %+v", got, resp)
		}
	}
}

func TestRequestEncodeBounds(t *testing.T) {
	long := string(make([]byte, MaxResourceLen+1))
	if _, err := AppendRequest(nil, Request{Op: OpPing, Resource: long}); err == nil {
		t.Fatal("oversized resource accepted")
	}
	if _, err := AppendRequest(nil, Request{Op: 99}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestMalformedFrames(t *testing.T) {
	cases := map[string][]byte{
		"bad version":       {2, OpPing, 0, 0},
		"oversized payload": {1, OpAcquire, 0xff, 0xff},
		"unknown op":        {1, 77, 0, 0},
		"ping with payload": {1, OpPing, 0, 1, 0},
		"empty resource": func() []byte {
			// Hand-built release frame naming a zero-length resource.
			return []byte{1, OpRelease, 0, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		}(),
		"acquire bad flags": func() []byte {
			b, _ := AppendRequest(nil, Request{Op: OpAcquire, Resource: "r", Wait: true})
			b[len(b)-1] = 0xff
			return b
		}(),
		"truncated string": {1, OpRelease, 0, 3, 0, 9, 'r'},
	}
	for name, frame := range cases {
		_, err := ReadRequest(bytes.NewReader(frame))
		var we *WireError
		if !errors.As(err, &we) {
			t.Errorf("%s: err = %v, want *WireError", name, err)
		}
	}
	// Clean EOF at a frame boundary passes through untyped.
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestErrorCodeBijection(t *testing.T) {
	for _, err := range []error{
		ErrNotHeld, ErrLeaseExpired, ErrClosed, ErrQueueFull, ErrShed,
		ErrDegraded, ErrWaitTimeout, ErrNoWait, ErrRevoked,
	} {
		code := errorCode(err)
		back := codeError(code, err.Error())
		if !errors.Is(back, err) {
			t.Errorf("code %d: %v does not round-trip (got %v)", code, err, back)
		}
	}
	if errorCode(errors.New("surprise")) != CodeInternal {
		t.Error("untyped error not mapped to CodeInternal")
	}
}

// FuzzServiceWire fuzzes both directions of the codec. For any byte
// stream the decoder must (a) never panic, (b) either parse a frame and
// re-encode it byte-identically from the consumed prefix, or (c) reject
// with a typed *WireError (EOF variants mean truncation, which is a
// clean close at a boundary and a WireError mid-frame by construction
// of readFrame).
func FuzzServiceWire(f *testing.F) {
	seed := func(b []byte, err error) []byte {
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(AppendRequest(nil, Request{Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, MaxWait: 50 * time.Millisecond, Wait: true})))
	f.Add(seed(AppendRequest(nil, Request{Op: OpRelease, Resource: "db", Token: 7})))
	f.Add(seed(AppendRequest(nil, Request{Op: OpPing})))
	f.Add(seed(AppendResponse(nil, Response{Op: OpGranted, Token: 1, Deadline: 99})))
	f.Add(seed(AppendResponse(nil, Response{Op: OpOK})))
	f.Add(seed(AppendResponse(nil, Response{Op: OpError, Code: CodeShed, Msg: "shed"})))
	f.Add([]byte{2, 1, 0, 0})          // bad version
	f.Add([]byte{1, 1, 0xff, 0xff})    // oversized
	f.Add([]byte{1, 3, 0, 0, 1, 3, 0}) // ping then truncated frame

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		req, err := ReadRequest(r)
		if err == nil {
			consumed := data[:len(data)-r.Len()]
			enc, err := AppendRequest(nil, req)
			if err != nil {
				t.Fatalf("parsed request %+v does not re-encode: %v", req, err)
			}
			if !bytes.Equal(enc, consumed) {
				t.Fatalf("request re-encode differs:\n  consumed %x\n  encoded  %x", consumed, enc)
			}
		} else if !isCleanWireReject(err) {
			t.Fatalf("request decode error not typed: %v", err)
		}

		r = bytes.NewReader(data)
		resp, err := ReadResponse(r)
		if err == nil {
			consumed := data[:len(data)-r.Len()]
			enc, err := AppendResponse(nil, resp)
			if err != nil {
				t.Fatalf("parsed response %+v does not re-encode: %v", resp, err)
			}
			if !bytes.Equal(enc, consumed) {
				t.Fatalf("response re-encode differs:\n  consumed %x\n  encoded  %x", consumed, enc)
			}
		} else if !isCleanWireReject(err) {
			t.Fatalf("response decode error not typed: %v", err)
		}
	})
}

// isCleanWireReject reports whether a decode error is one of the
// contract's allowed rejections.
func isCleanWireReject(err error) bool {
	var we *WireError
	return errors.As(err, &we) || err == io.EOF || err == io.ErrUnexpectedEOF
}
