package service

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		// v1 (Version 0 encodes as v1; the decoder reports 1).
		{Version: 1, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: 5 * time.Second, MaxWait: 250 * time.Millisecond, Wait: true},
		{Version: 1, Op: OpAcquire, Resource: "r", Owner: "", TTL: 0, MaxWait: 0, Wait: false},
		{Version: 1, Op: OpRelease, Resource: "db", Token: 0xdeadbeefcafe},
		{Version: 1, Op: OpPing},
		// v2: deadline propagation, fencing tokens, resume.
		{Version: 2, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, MaxWait: 50 * time.Millisecond, Wait: true, Deadline: 1755550000000000000},
		{Version: 2, Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second},
		{Version: 2, Op: OpRelease, Resource: "db", Token: 7, Fence: 3},
		{Version: 2, Op: OpResume, Resource: "db", Token: 7, Fence: 3},
		{Version: 2, Op: OpPing},
		// v3: pipelining request IDs prefixed onto the v2 body shapes.
		{Version: 3, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, MaxWait: 50 * time.Millisecond, Wait: true, Deadline: 1755550000000000000, ID: 1},
		{Version: 3, Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second, ID: 0xffffffffffffffff},
		{Version: 3, Op: OpRelease, Resource: "db", Token: 7, Fence: 3, ID: 42},
		{Version: 3, Op: OpResume, Resource: "db", Token: 7, Fence: 3, ID: 43},
		{Version: 3, Op: OpPing, ID: 44},
		{Version: 3, Op: OpPing}, // ID 0 is legal
	}
	for _, req := range reqs {
		b, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		got, err := ReadRequest(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
		// Canonical: re-encoding the parsed frame is byte-identical.
		b2, err := AppendRequest(nil, got)
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", b, b2, err)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Version: 1, Op: OpGranted, Token: 42, Deadline: 123456789},
		{Version: 1, Op: OpOK},
		{Version: 1, Op: OpError, Code: CodeQueueFull, Msg: "queue full"},
		{Version: 2, Op: OpGranted, Token: 42, Deadline: 123456789, Fence: 9},
		{Version: 2, Op: OpOK},
		{Version: 2, Op: OpError, Code: CodeShed, Msg: "shed", RetryAfter: 2 * time.Millisecond},
		{Version: 2, Op: OpError, Code: CodeDraining, Msg: "draining"},
		{Version: 3, Op: OpGranted, Token: 42, Deadline: 123456789, Fence: 9, ID: 7},
		{Version: 3, Op: OpOK, ID: 8},
		{Version: 3, Op: OpError, Code: CodeShed, Msg: "shed", RetryAfter: 2 * time.Millisecond, ID: 9},
	}
	for _, resp := range resps {
		b, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("%+v: %v", resp, err)
		}
		got, err := ReadResponse(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%+v: %v", resp, err)
		}
		if got != resp {
			t.Fatalf("round trip: got %+v, want %+v", got, resp)
		}
		b2, err := AppendResponse(nil, got)
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("re-encode not canonical: %x vs %x (%v)", b, b2, err)
		}
	}
}

func TestRequestEncodeBounds(t *testing.T) {
	long := string(make([]byte, MaxResourceLen+1))
	if _, err := AppendRequest(nil, Request{Op: OpPing, Resource: long}); err == nil {
		t.Fatal("oversized resource accepted")
	}
	if _, err := AppendRequest(nil, Request{Op: 99}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// v2-only constructs must not encode into a v1 frame.
	if _, err := AppendRequest(nil, Request{Version: 1, Op: OpResume, Resource: "r", Token: 1}); err == nil {
		t.Fatal("v1 resume accepted")
	}
	if _, err := AppendRequest(nil, Request{Version: 1, Op: OpRelease, Resource: "r", Token: 1, Fence: 2}); err == nil {
		t.Fatal("v1 fenced release accepted")
	}
	if _, err := AppendRequest(nil, Request{Version: 1, Op: OpAcquire, Resource: "r", Deadline: 5}); err == nil {
		t.Fatal("v1 acquire with deadline accepted")
	}
	if _, err := AppendResponse(nil, Response{Version: 1, Op: OpGranted, Token: 1, Fence: 2}); err == nil {
		t.Fatal("v1 granted with fence accepted")
	}
	if _, err := AppendResponse(nil, Response{Version: 1, Op: OpError, Code: CodeShed, RetryAfter: time.Millisecond}); err == nil {
		t.Fatal("v1 error with retry-after accepted")
	}
	// Request IDs are a v3 construct.
	if _, err := AppendRequest(nil, Request{Version: 2, Op: OpPing, ID: 1}); err == nil {
		t.Fatal("v2 request with id accepted")
	}
	if _, err := AppendResponse(nil, Response{Version: 1, Op: OpOK, ID: 1}); err == nil {
		t.Fatal("v1 response with id accepted")
	}
}

func TestMalformedFrames(t *testing.T) {
	cases := map[string][]byte{
		"bad version":       {9, OpPing, 0, 0},
		"v3 truncated id":   {3, OpPing, 0, 4, 0, 0, 0, 1}, // v3 payload shorter than the 8-byte ID prefix
		"oversized payload": {1, OpAcquire, 0xff, 0xff},
		"unknown op":        {1, 77, 0, 0},
		"ping with payload": {1, OpPing, 0, 1, 0},
		"empty resource": func() []byte {
			// Hand-built release frame naming a zero-length resource.
			return []byte{1, OpRelease, 0, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		}(),
		"acquire bad flags": func() []byte {
			b, _ := AppendRequest(nil, Request{Op: OpAcquire, Resource: "r", Wait: true})
			b[len(b)-1] = 0xff
			return b
		}(),
		"truncated string": {1, OpRelease, 0, 3, 0, 9, 'r'},
		// Cross-version shapes: each version's trailing lengths are exact,
		// so a v1 body inside a v2 frame (and vice versa) must reject.
		"v2 frame, v1 acquire body": func() []byte {
			b, _ := AppendRequest(nil, Request{Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second})
			b[0] = 2
			return b
		}(),
		"v1 frame, v2 acquire body": func() []byte {
			b, _ := AppendRequest(nil, Request{Version: 2, Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second})
			b[0] = 1
			return b
		}(),
		"v1 frame, resume op": func() []byte {
			b, _ := AppendRequest(nil, Request{Version: 2, Op: OpResume, Resource: "r", Token: 1})
			b[0] = 1
			return b
		}(),
		"v1 frame, v2 release body": func() []byte {
			b, _ := AppendRequest(nil, Request{Version: 2, Op: OpRelease, Resource: "r", Token: 1, Fence: 2})
			b[0] = 1
			return b
		}(),
		"v2 release missing fence": func() []byte {
			b, _ := AppendRequest(nil, Request{Op: OpRelease, Resource: "r", Token: 1})
			b[0] = 2
			return b
		}(),
		// A v2 body inside a v3 frame would eat the body's first 8 bytes
		// as an ID and fail the exact-length check.
		"v3 frame, v2 release body": func() []byte {
			b, _ := AppendRequest(nil, Request{Version: 2, Op: OpRelease, Resource: "r", Token: 1, Fence: 2})
			b[0] = 3
			return b
		}(),
		"v2 frame, v3 acquire body": func() []byte {
			b, _ := AppendRequest(nil, Request{Version: 3, Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second, ID: 5})
			b[0] = 2
			return b
		}(),
	}
	for name, frame := range cases {
		_, err := ReadRequest(bytes.NewReader(frame))
		var we *WireError
		if !errors.As(err, &we) {
			t.Errorf("%s: err = %v, want *WireError", name, err)
		}
	}
	// Clean EOF at a frame boundary passes through untyped.
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	// A mid-payload cut is a transport fault, not a protocol violation:
	// it must classify retryable, not *WireError.
	full, _ := AppendRequest(nil, Request{Op: OpRelease, Resource: "res", Token: 1})
	_, err := ReadRequest(bytes.NewReader(full[:len(full)-2]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v, want io.ErrUnexpectedEOF", err)
	}
	var we *WireError
	if errors.As(err, &we) {
		t.Fatalf("truncated payload typed as *WireError: %v", err)
	}
	if !Retryable(err) {
		t.Fatalf("truncated payload not retryable: %v", err)
	}
}

func TestErrorCodeBijection(t *testing.T) {
	for _, err := range []error{
		ErrNotHeld, ErrLeaseExpired, ErrClosed, ErrQueueFull, ErrShed,
		ErrDegraded, ErrWaitTimeout, ErrNoWait, ErrRevoked, ErrFenced,
		ErrDraining,
	} {
		code := errorCode(err)
		back := codeError(Response{Op: OpError, Code: code, Msg: err.Error()})
		if !errors.Is(back, err) {
			t.Errorf("code %d: %v does not round-trip (got %v)", code, err, back)
		}
	}
	if errorCode(errors.New("surprise")) != CodeInternal {
		t.Error("untyped error not mapped to CodeInternal")
	}
}

func TestRetryAfterHintRoundTrip(t *testing.T) {
	resp := Response{Version: 2, Op: OpError, Code: CodeShed, Msg: "shed", RetryAfter: 3 * time.Millisecond}
	err := codeError(resp)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("hinted error lost its sentinel: %v", err)
	}
	hint, ok := RetryAfterHint(err)
	if !ok || hint != 3*time.Millisecond {
		t.Fatalf("hint = %v, %v; want 3ms, true", hint, ok)
	}
	if _, ok := RetryAfterHint(ErrShed); ok {
		t.Fatal("bare sentinel reported a hint")
	}
}

// TestDecoderStream drives one Decoder across an interleaved pipelined
// stream: scratch reuse must not let a later frame corrupt an earlier
// decode, and interned names must be stable across frames.
func TestDecoderStream(t *testing.T) {
	reqs := []Request{
		{Version: 3, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, Wait: true, ID: 1},
		{Version: 3, Op: OpAcquire, Resource: "cache", Owner: "bob", TTL: time.Second, ID: 2},
		{Version: 3, Op: OpRelease, Resource: "db", Token: 5, Fence: 1, ID: 3},
		{Version: 3, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, Wait: true, ID: 4},
		{Version: 3, Op: OpPing, ID: 5},
		{Version: 2, Op: OpResume, Resource: "db", Token: 5, Fence: 1}, // mixed versions on one stream
	}
	var stream []byte
	for _, req := range reqs {
		b, err := AppendRequest(stream, req)
		if err != nil {
			t.Fatal(err)
		}
		stream = b
	}
	d := NewDecoder()
	r := bytes.NewReader(stream)
	var got []Request
	for {
		req, err := d.ReadRequest(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, req)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("frame %d: got %+v, want %+v", i, got[i], reqs[i])
		}
	}
	if got[0].Resource != "db" || got[3].Resource != "db" {
		t.Fatal("interned resource mismatch")
	}
}

// FuzzServiceWire fuzzes both directions of the codec across both wire
// versions. For any byte stream the decoder must (a) never panic, (b)
// either parse a frame and re-encode it byte-identically from the
// consumed prefix, or (c) reject typed: a *WireError for protocol
// violations, io.EOF for a clean close at a frame boundary, or a
// wrapped io.ErrUnexpectedEOF for a mid-frame cut (a transport fault).
func FuzzServiceWire(f *testing.F) {
	seed := func(b []byte, err error) []byte {
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(AppendRequest(nil, Request{Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, MaxWait: 50 * time.Millisecond, Wait: true})))
	f.Add(seed(AppendRequest(nil, Request{Op: OpRelease, Resource: "db", Token: 7})))
	f.Add(seed(AppendRequest(nil, Request{Op: OpPing})))
	f.Add(seed(AppendResponse(nil, Response{Op: OpGranted, Token: 1, Deadline: 99})))
	f.Add(seed(AppendResponse(nil, Response{Op: OpOK})))
	f.Add(seed(AppendResponse(nil, Response{Op: OpError, Code: CodeShed, Msg: "shed"})))
	// Wire v2 frames.
	f.Add(seed(AppendRequest(nil, Request{Version: 2, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, MaxWait: 50 * time.Millisecond, Wait: true, Deadline: 1755550000000000000})))
	f.Add(seed(AppendRequest(nil, Request{Version: 2, Op: OpRelease, Resource: "db", Token: 7, Fence: 3})))
	f.Add(seed(AppendRequest(nil, Request{Version: 2, Op: OpResume, Resource: "db", Token: 7, Fence: 3})))
	f.Add(seed(AppendResponse(nil, Response{Version: 2, Op: OpGranted, Token: 1, Deadline: 99, Fence: 4})))
	f.Add(seed(AppendResponse(nil, Response{Version: 2, Op: OpError, Code: CodeDraining, Msg: "draining", RetryAfter: 2 * time.Millisecond})))
	// Cross-version seeds: a valid body under the wrong version byte.
	cross := func(req Request, v byte) []byte {
		b := seed(AppendRequest(nil, req))
		b[0] = v
		return b
	}
	f.Add(cross(Request{Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second}, 2))
	f.Add(cross(Request{Version: 2, Op: OpAcquire, Resource: "r", Owner: "o", TTL: time.Second}, 1))
	f.Add(cross(Request{Version: 2, Op: OpResume, Resource: "r", Token: 1}, 1))
	f.Add(seed(AppendRequest(nil, Request{Version: 2, Op: OpPing})))
	// Wire v3 frames: pipelined request IDs.
	f.Add(seed(AppendRequest(nil, Request{Version: 3, Op: OpAcquire, Resource: "db", Owner: "alice", TTL: time.Second, Wait: true, ID: 1})))
	f.Add(seed(AppendRequest(nil, Request{Version: 3, Op: OpRelease, Resource: "db", Token: 7, Fence: 3, ID: 2})))
	f.Add(seed(AppendRequest(nil, Request{Version: 3, Op: OpResume, Resource: "db", Token: 7, Fence: 3, ID: 3})))
	f.Add(seed(AppendResponse(nil, Response{Version: 3, Op: OpGranted, Token: 1, Deadline: 99, Fence: 4, ID: 3})))
	f.Add(seed(AppendResponse(nil, Response{Version: 3, Op: OpError, Code: CodeShed, Msg: "shed", RetryAfter: time.Millisecond, ID: 2})))
	f.Add(cross(Request{Version: 3, Op: OpPing, ID: 9}, 2))
	f.Add(cross(Request{Version: 2, Op: OpRelease, Resource: "r", Token: 1, Fence: 2}, 3))
	// Pipelined/interleaved corpora: several v3 frames with distinct IDs
	// back to back, and out-of-order response IDs (the demux router's
	// input shape).
	interleaved := func(frames ...[]byte) []byte {
		var b []byte
		for _, f := range frames {
			b = append(b, f...)
		}
		return b
	}
	f.Add(interleaved(
		seed(AppendRequest(nil, Request{Version: 3, Op: OpAcquire, Resource: "a", Owner: "o", TTL: time.Second, ID: 1})),
		seed(AppendRequest(nil, Request{Version: 3, Op: OpAcquire, Resource: "b", Owner: "o", TTL: time.Second, ID: 2})),
		seed(AppendRequest(nil, Request{Version: 3, Op: OpRelease, Resource: "a", Token: 5, ID: 3})),
		seed(AppendRequest(nil, Request{Version: 3, Op: OpPing, ID: 4})),
	))
	f.Add(interleaved(
		seed(AppendResponse(nil, Response{Version: 3, Op: OpGranted, Token: 5, Deadline: 9, Fence: 1, ID: 2})),
		seed(AppendResponse(nil, Response{Version: 3, Op: OpOK, ID: 3})),
		seed(AppendResponse(nil, Response{Version: 3, Op: OpGranted, Token: 6, Deadline: 9, Fence: 2, ID: 1})),
	))
	f.Add([]byte{9, 1, 0, 0})             // bad version
	f.Add([]byte{1, 1, 0xff, 0xff})       // oversized
	f.Add([]byte{1, 3, 0, 0, 1, 3, 0})    // ping then truncated frame
	f.Add([]byte{2, 3, 0, 0, 2, 1, 0})    // v2 ping then truncated frame
	f.Add([]byte{3, 3, 0, 4, 0, 0, 0, 1}) // v3 payload shorter than its ID prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		req, err := ReadRequest(r)
		if err == nil {
			consumed := data[:len(data)-r.Len()]
			enc, err := AppendRequest(nil, req)
			if err != nil {
				t.Fatalf("parsed request %+v does not re-encode: %v", req, err)
			}
			if !bytes.Equal(enc, consumed) {
				t.Fatalf("request re-encode differs:\n  consumed %x\n  encoded  %x", consumed, enc)
			}
		} else if !isCleanWireReject(err) {
			t.Fatalf("request decode error not typed: %v", err)
		}

		r = bytes.NewReader(data)
		resp, err := ReadResponse(r)
		if err == nil {
			consumed := data[:len(data)-r.Len()]
			enc, err := AppendResponse(nil, resp)
			if err != nil {
				t.Fatalf("parsed response %+v does not re-encode: %v", resp, err)
			}
			if !bytes.Equal(enc, consumed) {
				t.Fatalf("response re-encode differs:\n  consumed %x\n  encoded  %x", consumed, enc)
			}
		} else if !isCleanWireReject(err) {
			t.Fatalf("response decode error not typed: %v", err)
		}
	})
}

// isCleanWireReject reports whether a decode error is one of the
// contract's allowed rejections.
func isCleanWireReject(err error) bool {
	var we *WireError
	return errors.As(err, &we) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
