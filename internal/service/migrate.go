package service

import (
	"iqolb/internal/adaptive"
)

// This file is the live-migration half of the adaptive redesign: the
// verbs that change one shard's wakeup discipline while traffic is in
// flight, and the adapter that exposes shards to the contention
// controller as an adaptive.Plant.
//
// The safety argument is an epoch fence, shard-local: every grant
// decision — immediate grant, hand-off, broadcast wake, flush — runs
// under the shard guard, and the policy flip runs under the same guard.
// So the flip has a precise place in the shard's serialization order:
// every grant before it fully completed under the old discipline, every
// grant after it runs under the new one, and no lease can be dropped or
// double-granted by the transition itself. The migration suite proves
// this with randomized flips under the linearizability checker.

// MigrateShard live-migrates one shard between PolicyHandoff and
// PolicyBroadcast without disturbing live leases or parked waiters.
// Under the shard guard it drains due expiries under the old policy,
// flips, re-arms the starvation watchdog, and re-dispatches any
// free-but-queued resource under the new discipline (a head waiter is
// granted directly on →handoff; the pack is woken on →broadcast).
// Migrating a degraded shard only records the policy it will resume
// with on restore. Migrating to the current policy is a no-op.
func (s *Service) MigrateShard(shard int, p Policy) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if shard < 0 || shard >= len(s.shards) {
		return configErr("shard", "index %d out of range [0,%d)", shard, len(s.shards))
	}
	if p != PolicyHandoff && p != PolicyBroadcast {
		return configErr("policy", "cannot migrate to %q (have handoff, broadcast)", p)
	}
	sh := s.shards[shard]
	now := s.clock.Now()

	t := sh.lockShard()
	if sh.policy == p {
		sh.unlockShard(t)
		return nil
	}
	expired := s.expireDueLocked(sh, now) // drain due work under the old policy
	sh.policy = p
	sh.epoch++
	sh.armedAt = now
	sh.counters.Migrations++
	if !t.fb {
		if p == PolicyHandoff {
			// Waiters queued under broadcast may hold an unconsumed
			// retry wake-up in their grant buffer. Hand-off delivery
			// assumes that buffer slot is free — drain it now, under the
			// guard, so no future grant can block behind a stale retry.
			for _, r := range sh.res {
				for _, w := range r.q {
					select {
					case <-w.grant:
					default:
					}
				}
			}
		}
		// Re-dispatch: a free resource with a queue must not stay idle
		// across the flip (its wake-ups may have been consumed under the
		// old discipline and lost their race).
		for _, r := range sh.res {
			if r.holder == nil && len(r.q) > 0 {
				s.grantNextLocked(sh, r, now)
			}
		}
	}
	sh.unlockShard(t)
	s.queueExpiryCallbacks(expired)
	s.runCallbacks()
	return nil
}

// DegradeShard administratively degrades one shard to plain-mutex
// shed-load mode, exactly as the starvation watchdog would: queued
// waiters are flushed with ErrDegraded and new waiters are shed. A
// degraded shard stays degraded until RestoreShard.
func (s *Service) DegradeShard(shard int, reason string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if shard < 0 || shard >= len(s.shards) {
		return configErr("shard", "index %d out of range [0,%d)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	t := sh.lockShard()
	t = sh.degradeLocked(t, reason)
	sh.unlockShard(t)
	s.runCallbacks()
	return nil
}

// RestoreShard returns a degraded shard to primitive-guarded service
// under its recorded policy. The restore inverts the degradation
// protocol: with the fallback mutex held it acquires the primitive
// guard too, and only with BOTH guards held does the flag flip — so no
// goroutine can be mid-critical-section under either guard at the
// instant authority transfers back. Restoring a healthy shard is a
// no-op.
func (s *Service) RestoreShard(shard int) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if shard < 0 || shard >= len(s.shards) {
		return configErr("shard", "index %d out of range [0,%d)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	now := s.clock.Now()

	sh.fb.Lock()
	if !sh.degraded.Load() {
		sh.fb.Unlock()
		return nil
	}
	sh.mu.Lock()
	// Both guards held: nobody is inside the shard. (Deadlock-free:
	// degradeLocked's mu→fb order only runs on non-degraded shards, and
	// this fb→mu order only on degraded ones; the flag arbitrates.)
	sh.degraded.Store(false)
	sh.degradeReason = ""
	sh.epoch++
	sh.armedAt = now
	sh.counters.Restores++
	sh.fb.Unlock()
	sh.mu.Unlock()
	return nil
}

// plantAdapter exposes the service's shards as an adaptive.Plant. It
// lives on the service side of the service → adaptive import edge; the
// controller never learns anything about leases.
type plantAdapter struct{ s *Service }

// NumShards implements adaptive.Plant.
func (p plantAdapter) NumShards() int { return len(p.s.shards) }

// SampleShard implements adaptive.Plant: a consistent read of one
// shard's telemetry under its guard.
func (p plantAdapter) SampleShard(i int) adaptive.Sample {
	sh := p.s.shards[i]
	t := sh.lockShard()
	smp := adaptive.Sample{
		Acquires:       sh.counters.Acquires,
		Grants:         sh.counters.Grants,
		QueueFullSheds: sh.counters.QueueFullSheds,
		DegradedSheds:  sh.counters.DegradedSheds,
		Queued:         sh.queued,
		Policy:         adaptive.Policy(sh.policy),
	}
	if t.fb {
		smp.Policy = adaptive.PolicyDegraded
	}
	sh.unlockShard(t)
	return smp
}

// SetPolicy implements adaptive.Plant, mapping the controller's three
// targets onto the service's migration verbs.
func (p plantAdapter) SetPolicy(i int, pol adaptive.Policy) error {
	switch pol {
	case adaptive.PolicyDegraded:
		return p.s.DegradeShard(i, "controller: shed fraction above degrade watermark")
	case adaptive.PolicyHandoff, adaptive.PolicyBroadcast:
		if err := p.s.RestoreShard(i); err != nil {
			return err
		}
		return p.s.MigrateShard(i, Policy(pol))
	}
	return configErr("policy", "unknown controller policy %q", pol)
}

// ControllerState reports the adaptive controller's live state, or nil
// when the service runs without one (Config.Adaptive false).
func (s *Service) ControllerState() *adaptive.State {
	if s.ctrl == nil {
		return nil
	}
	st := s.ctrl.State()
	return &st
}
