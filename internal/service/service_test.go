package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"iqolb/locks"
)

// newTestService builds a NoSweeper service on a FakeClock with small
// bounds; tests drive expiry and starvation by hand.
func newTestService(t *testing.T, mut func(*Config)) (*Service, *FakeClock) {
	t.Helper()
	clk := NewFakeClock()
	cfg := Config{
		Shards:          2,
		QueueDepth:      4,
		DefaultTTL:      time.Second,
		MaxTTL:          time.Minute,
		StarvationBound: 10 * time.Second,
		Clock:           clk,
		NoSweeper:       true,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, clk
}

func TestAcquireReleaseBasic(t *testing.T) {
	s, _ := newTestService(t, nil)
	l, err := s.Acquire("db", "alice", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Resource != "db" || l.Owner != "alice" || l.Token == 0 {
		t.Fatalf("lease = %+v", l)
	}
	// Second acquire without wait: typed busy.
	if _, err := s.Acquire("db", "bob", AcquireOptions{}); !errors.Is(err, ErrNoWait) {
		t.Fatalf("busy acquire: %v, want ErrNoWait", err)
	}
	if err := s.Release("db", l.Token); err != nil {
		t.Fatal(err)
	}
	// Double release: typed.
	if err := s.Release("db", l.Token); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release: %v, want ErrNotHeld", err)
	}
	// Reacquire works.
	if _, err := s.Acquire("db", "bob", AcquireOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestHandoffFIFO pins the direct hand-off order: queued waiters are
// granted in admission order, one transfer each.
func TestHandoffFIFO(t *testing.T) {
	s, _ := newTestService(t, func(c *Config) { c.QueueDepth = 16 })
	l, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	order := make(chan int, waiters)
	started := make(chan struct{}, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			wl, err := s.Acquire("r", fmt.Sprintf("w%d", i), AcquireOptions{Wait: true})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			if err := s.Release("r", wl.Token); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}(i)
		<-started
		// Wait until the waiter is actually queued so admission order is
		// deterministic.
		waitQueued(t, s, "r", i+1)
	}
	if err := s.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(order)
	i := 0
	for got := range order {
		if got != i {
			t.Fatalf("grant %d went to waiter %d (hand-off order violated)", i, got)
		}
		i++
	}
	snap := s.Snapshot()
	if snap.Totals.Handoffs != waiters {
		t.Fatalf("handoffs = %d, want %d", snap.Totals.Handoffs, waiters)
	}
	if snap.Totals.BroadcastWakeups != 0 {
		t.Fatalf("broadcast wakeups = %d under handoff policy", snap.Totals.BroadcastWakeups)
	}
}

// waitQueued spins until the resource has n queued waiters.
func waitQueued(t *testing.T, s *Service, res string, n int) {
	t.Helper()
	sh := s.shardFor(res)
	deadline := time.Now().Add(5 * time.Second)
	for {
		tok := sh.lockShard()
		q := 0
		if r := sh.res[res]; r != nil {
			q = len(r.q)
		}
		sh.unlockShard(tok)
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiter %d never queued", n)
		}
		runtime.Gosched()
	}
}

// TestBroadcastGrants exercises the baseline policy end to end: all
// waiters eventually granted, wasted wake-ups counted.
func TestBroadcastGrants(t *testing.T) {
	s, _ := newTestService(t, func(c *Config) {
		c.Policy = PolicyBroadcast
		c.QueueDepth = 16
	})
	l, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	var wg sync.WaitGroup
	granted := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl, err := s.Acquire("r", fmt.Sprintf("w%d", i), AcquireOptions{Wait: true})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			granted <- struct{}{}
			if err := s.Release("r", wl.Token); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}(i)
	}
	waitQueued(t, s, "r", waiters)
	if err := s.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(granted) != waiters {
		t.Fatalf("granted %d of %d waiters", len(granted), waiters)
	}
	snap := s.Snapshot()
	if snap.Totals.BroadcastWakeups == 0 {
		t.Fatal("no broadcast wakeups recorded under broadcast policy")
	}
	if snap.Totals.Handoffs != 0 {
		t.Fatalf("handoffs = %d under broadcast policy", snap.Totals.Handoffs)
	}
}

// TestQueueFullShed pins the bounded admission queue: waiters beyond
// QueueDepth are shed with the typed backpressure error.
func TestQueueFullShed(t *testing.T) {
	s, _ := newTestService(t, func(c *Config) { c.Shards = 1; c.QueueDepth = 2 })
	l, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wl, err := s.Acquire("r", "w", AcquireOptions{Wait: true})
			if err != nil {
				t.Errorf("queued waiter: %v", err)
				return
			}
			s.Release("r", wl.Token)
		}()
	}
	waitQueued(t, s, "r", 2)
	if _, err := s.Acquire("r", "late", AcquireOptions{Wait: true}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire: %v, want ErrQueueFull", err)
	}
	if err := s.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := s.Snapshot().Totals.QueueFullSheds; got != 1 {
		t.Fatalf("queue-full sheds = %d, want 1", got)
	}
}

// TestWaitTimeout pins MaxWait: the waiter dequeues itself and reports
// the typed timeout.
func TestWaitTimeout(t *testing.T) {
	s, clk := newTestService(t, nil)
	l, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire("r", "w", AcquireOptions{Wait: true, MaxWait: 100 * time.Millisecond})
		done <- err
	}()
	waitQueued(t, s, "r", 1)
	clk.Advance(200 * time.Millisecond)
	select {
	case err := <-done:
		if !errors.Is(err, ErrWaitTimeout) {
			t.Fatalf("timed-out acquire: %v, want ErrWaitTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never timed out")
	}
	if got := s.Snapshot().Totals.Timeouts; got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	// The holder still holds; release cleanly.
	if err := s.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
}

// TestExpiryGrantsNextWaiter pins the expiry path: a crashed holder's
// lease expires exactly once, is typed on late release, and the queued
// waiter is granted directly.
func TestExpiryGrantsNextWaiter(t *testing.T) {
	var expiries []Lease
	var mu sync.Mutex
	s, clk := newTestService(t, func(c *Config) {
		c.OnExpire = func(l Lease) { mu.Lock(); expiries = append(expiries, l); mu.Unlock() }
	})
	l, err := s.Acquire("r", "crasher", AcquireOptions{TTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Lease, 1)
	go func() {
		wl, err := s.Acquire("r", "patient", AcquireOptions{Wait: true})
		if err != nil {
			t.Errorf("waiter: %v", err)
			return
		}
		got <- wl
	}()
	waitQueued(t, s, "r", 1)
	clk.Advance(1100 * time.Millisecond)
	if n := s.SweepExpired(); n != 1 {
		t.Fatalf("sweep expired %d leases, want 1", n)
	}
	var wl Lease
	select {
	case wl = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not granted after expiry")
	}
	if wl.Owner != "patient" {
		t.Fatalf("granted to %q", wl.Owner)
	}
	// The crasher's late release is typed.
	if err := s.Release("r", l.Token); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("late release: %v, want ErrLeaseExpired", err)
	}
	// Exactly once: further sweeps expire nothing more of this lease.
	if n := s.SweepExpired(); n != 0 {
		t.Fatalf("second sweep expired %d", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(expiries) != 1 || expiries[0].Token != l.Token {
		t.Fatalf("expiry callbacks = %+v, want exactly one for token %d", expiries, l.Token)
	}
	if err := s.Release("r", wl.Token); err != nil {
		t.Fatal(err)
	}
}

// TestRevoke pins administrative revocation: the holder's late release
// is typed ErrRevoked and the next waiter is granted.
func TestRevoke(t *testing.T) {
	s, _ := newTestService(t, nil)
	l, err := s.Acquire("r", "victim", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	revoked, ok, err := s.Revoke("r")
	if err != nil || !ok || revoked.Token != l.Token {
		t.Fatalf("revoke = %+v %v %v", revoked, ok, err)
	}
	if err := s.Release("r", l.Token); !errors.Is(err, ErrRevoked) {
		t.Fatalf("release after revoke: %v, want ErrRevoked", err)
	}
	if _, ok, _ := s.Revoke("r"); ok {
		t.Fatal("revoke of free resource reported a lease")
	}
}

// TestStarvationDegrade pins the watchdog → degrade path: an over-aged
// waiter degrades the shard, queued waiters are flushed typed, new
// requests are shed, and the shard keeps serving immediate grants under
// the fallback mutex.
func TestStarvationDegrade(t *testing.T) {
	var degraded []string
	var mu sync.Mutex
	s, clk := newTestService(t, func(c *Config) {
		c.Shards = 1
		c.StarvationBound = time.Second
		c.OnDegrade = func(sh int, reason string) {
			mu.Lock()
			degraded = append(degraded, fmt.Sprintf("shard%d:%s", sh, reason))
			mu.Unlock()
		}
	})
	l, err := s.Acquire("r", "hog", AcquireOptions{TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	flushed := make(chan error, 1)
	go func() {
		_, err := s.Acquire("r", "starved", AcquireOptions{Wait: true})
		flushed <- err
	}()
	waitQueued(t, s, "r", 1)
	clk.Advance(2 * time.Second)
	s.SweepExpired() // runs the watchdog
	select {
	case err := <-flushed:
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("flushed waiter: %v, want ErrDegraded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("starved waiter never flushed")
	}
	// Degraded shard sheds instead of queueing.
	if _, err := s.Acquire("r", "late", AcquireOptions{Wait: true}); !errors.Is(err, ErrShed) {
		t.Fatalf("degraded acquire of held resource: %v, want ErrShed", err)
	}
	// But still serves free resources (plain-mutex path).
	l2, err := s.Acquire("other", "ok", AcquireOptions{})
	if err != nil {
		t.Fatalf("degraded immediate grant: %v", err)
	}
	if err := s.Release("other", l2.Token); err != nil {
		t.Fatal(err)
	}
	if err := s.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Degraded != 1 || snap.Totals.Degrades != 1 || snap.Totals.Flushed != 1 {
		t.Fatalf("degrade accounting: %+v", snap.Totals)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(degraded) != 1 {
		t.Fatalf("degrade callbacks = %v", degraded)
	}
}

// TestDegradedExclusion hammers a degraded shard and a clean shard
// concurrently with a plain counter per resource; the race detector and
// the counts are the oracle that the primitive→fallback guard swap
// never breaks mutual exclusion.
func TestDegradedExclusion(t *testing.T) {
	for _, kind := range locks.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s, clk := newTestService(t, func(c *Config) {
				c.Shards = 1
				c.Lock = kind
				c.StarvationBound = time.Second
				c.QueueDepth = 64
			})
			// Degrade the shard mid-traffic: a hog plus a starved waiter.
			hog, err := s.Acquire("hog", "hog", AcquireOptions{TTL: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			go s.Acquire("hog", "starved", AcquireOptions{Wait: true})
			waitQueued(t, s, "hog", 1)

			const goroutines, ops = 8, 300
			counters := make([]uint64, goroutines) // per-goroutine, summed later
			var grants uint64
			var gmu sync.Mutex
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					res := fmt.Sprintf("res%d", g%2)
					for i := 0; i < ops; i++ {
						l, err := s.Acquire(res, "w", AcquireOptions{TTL: time.Minute})
						if err != nil {
							continue // busy: fine, we only count held work
						}
						counters[g]++
						gmu.Lock()
						grants++
						gmu.Unlock()
						if err := s.Release(res, l.Token); err != nil {
							t.Errorf("release: %v", err)
							return
						}
						if i == ops/2 && g == 0 {
							// Trip the watchdog mid-hammer.
							clk.Advance(2 * time.Second)
							s.SweepExpired()
						}
					}
				}(g)
			}
			wg.Wait()
			if !s.shards[0].degraded.Load() {
				t.Fatal("shard never degraded")
			}
			var sum uint64
			for _, c := range counters {
				sum += c
			}
			if sum != grants {
				t.Fatalf("counted %d grants, recorded %d", sum, grants)
			}
			s.Release("hog", hog.Token)
		})
	}
}

// TestCloseFlushesWaiters pins shutdown: queued waiters get ErrClosed,
// later ops get ErrClosed, Close is idempotent.
func TestCloseFlushesWaiters(t *testing.T) {
	s, _ := newTestService(t, nil)
	l, err := s.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire("r", "w", AcquireOptions{Wait: true})
		done <- err
	}()
	waitQueued(t, s, "r", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("flushed waiter: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not flushed on close")
	}
	if _, err := s.Acquire("x", "y", AcquireOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	if err := s.Release("r", l.Token); !errors.Is(err, ErrClosed) {
		t.Fatalf("release after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close not idempotent:", err)
	}
}

// TestPerShardPrimitives pins the per-shard lock selection.
func TestPerShardPrimitives(t *testing.T) {
	s, _ := newTestService(t, func(c *Config) {
		c.Shards = 5
		c.Locks = locks.Kinds()
	})
	snap := s.Snapshot()
	for i, k := range locks.Kinds() {
		if snap.Shards[i].Lock != string(k) {
			t.Fatalf("shard %d lock = %q, want %q", i, snap.Shards[i].Lock, k)
		}
	}
	if _, err := New(Config{Shards: 2, Locks: []locks.Kind{locks.KindTTS}}); err == nil {
		t.Fatal("mismatched per-shard lock list accepted")
	}
	var ce *ConfigError
	_, err := New(Config{Shards: -1})
	if !errors.As(err, &ce) {
		t.Fatalf("bad config error not typed: %v", err)
	}
}

// TestSweeperBackground exercises the real-clock sweeper: a lease with a
// short TTL expires without any client action.
func TestSweeperBackground(t *testing.T) {
	expired := make(chan Lease, 1)
	s, err := New(Config{
		Shards:     1,
		DefaultTTL: 20 * time.Millisecond,
		OnExpire:   func(l Lease) { expired <- l },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Acquire("r", "crash", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-expired:
		if e.Token != l.Token {
			t.Fatalf("expired %d, want %d", e.Token, l.Token)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("background sweeper never expired the lease")
	}
}
