package service

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelinedRoundTrips drives many concurrent ops through one
// pipelined client: every acquire/release pair must resolve correctly
// even though responses come back in completion order, not send order.
func TestPipelinedRoundTrips(t *testing.T) {
	_, addr := startServerOpts(t, func(cfg *Config) { cfg.Shards = 8 }, ServerOptions{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(5 * time.Second)
	if err := cl.Pipeline(16, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Pipeline(16, 0); err == nil {
		t.Fatal("double Pipeline accepted")
	}

	const workers = 16
	const opsEach = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := fmt.Sprintf("res-%d", w%4)
			owner := fmt.Sprintf("w%d", w)
			for i := 0; i < opsEach; i++ {
				lease, err := cl.Acquire(res, owner, AcquireOptions{TTL: 5 * time.Second, Wait: true, MaxWait: 5 * time.Second})
				if err != nil {
					errs <- fmt.Errorf("acquire: %w", err)
					return
				}
				if lease.Fence == 0 {
					errs <- errors.New("pipelined grant missing fence")
					return
				}
				if err := cl.ReleaseFenced(res, lease.Token, lease.Fence); err != nil {
					errs <- fmt.Errorf("release: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPipelinedCoalesced is the same workload with write coalescing on
// both ends: correctness must be identical with the flush delay held.
func TestPipelinedCoalesced(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{FlushDelay: 200 * time.Microsecond, Window: 8})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(5 * time.Second)
	if err := cl.Pipeline(8, 200*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				lease, err := cl.Acquire("hot", fmt.Sprintf("w%d", w), AcquireOptions{TTL: 5 * time.Second, Wait: true, MaxWait: 5 * time.Second})
				if err != nil {
					errs <- err
					return
				}
				if err := cl.ReleaseFenced("hot", lease.Token, lease.Fence); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPipelinedInterop holds a v2 lock-step client and a v3 pipelined
// client against the same server: cross-version fencing must still
// order them, and the v2 client's one-in-flight discipline must be
// untouched by the pipelined connection beside it.
func TestPipelinedInterop(t *testing.T) {
	_, addr := startServerOpts(t, nil, ServerOptions{})
	v2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	v2.SetOpTimeout(2 * time.Second)
	v3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v3.Close()
	v3.SetOpTimeout(2 * time.Second)
	if err := v3.Pipeline(4, 0); err != nil {
		t.Fatal(err)
	}

	l2, err := v2.Acquire("shared", "v2", AcquireOptions{TTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Acquire("shared", "v3", AcquireOptions{TTL: 5 * time.Second}); !errors.Is(err, ErrNoWait) {
		t.Fatalf("contended no-wait acquire over v3: %v, want ErrNoWait", err)
	}
	if err := v2.ReleaseFenced("shared", l2.Token, l2.Fence); err != nil {
		t.Fatal(err)
	}
	l3, err := v3.Acquire("shared", "v3", AcquireOptions{TTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if l3.Fence <= l2.Fence {
		t.Fatalf("fence not monotonic across versions: %d then %d", l2.Fence, l3.Fence)
	}
	if err := v3.ReleaseFenced("shared", l3.Token, l3.Fence); err != nil {
		t.Fatal(err)
	}
	// v1 interop: a v1 client on the same server still round-trips.
	v1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if err := v1.SetVersion(WireVersion); err != nil {
		t.Fatal(err)
	}
	if err := v1.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedOpTimeout pins the per-op timer: with a server that
// never answers, a pipelined op must fail with a typed timeout that
// classifies as a transport fault (net.Error, Timeout() true), and a
// late response must not corrupt a later op.
func TestPipelinedOpTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // read nothing, answer nothing
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(50 * time.Millisecond)
	if err := cl.Pipeline(2, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = cl.Ping()
	if err == nil {
		t.Fatal("ping against a mute server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("pipelined timeout not a net.Error timeout: %v", err)
	}
	if !isTransport(err) {
		t.Fatalf("pipelined timeout not transport-class: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

// TestPipelinedWindowBackpressure verifies the window cap: with window
// W and a slow resource, at most W requests are outstanding at once.
func TestPipelinedWindowBackpressure(t *testing.T) {
	var inFlight, peak atomic.Int64
	be := &countingBackend{inFlight: &inFlight, peak: &peak}
	srv := NewServerWithOptions(be, ServerOptions{Window: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(5 * time.Second)
	if err := cl.Pipeline(16, 0); err != nil { // client window larger than server's
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Acquire("r", "o", AcquireOptions{TTL: time.Second})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 4 {
		t.Fatalf("peak in-flight %d exceeds server window 4", got)
	}
}

// countingBackend tracks concurrent Acquire calls.
type countingBackend struct {
	inFlight, peak *atomic.Int64
}

func (b *countingBackend) Acquire(resource, owner string, opt AcquireOptions) (Lease, error) {
	n := b.inFlight.Add(1)
	for {
		p := b.peak.Load()
		if n <= p || b.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond) // hold the slot so overlap is observable
	b.inFlight.Add(-1)
	return Lease{Resource: resource, Owner: owner, Token: 1, Fence: 1, Deadline: time.Now().Add(time.Second)}, nil
}
func (b *countingBackend) ReleaseFenced(string, uint64, uint64) error { return nil }
func (b *countingBackend) Resume(string, uint64, uint64) (Lease, error) {
	return Lease{}, ErrNotHeld
}
func (b *countingBackend) Drain(time.Duration) error { return nil }
func (b *countingBackend) Close() error              { return nil }

// TestResilientPipelined shares one ResilientClient across goroutines
// with a pipelined window and checks reconnect-with-resume still works:
// kill the connection under it mid-workload and let the retry loop
// redial.
func TestResilientPipelined(t *testing.T) {
	srv, addr := startServerOpts(t, nil, ServerOptions{})
	rc := NewResilient(addr, ResilientOptions{
		OpTimeout: time.Second,
		Retry:     RetryPolicy{Initial: time.Millisecond, Cap: 8 * time.Millisecond, MaxAttempts: 10},
		Seed:      1,
		Pipeline:  8,
	})
	defer rc.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := fmt.Sprintf("r%d", w%2)
			for i := 0; i < 20; i++ {
				lease, err := rc.Acquire(res, fmt.Sprintf("w%d", w), AcquireOptions{TTL: 5 * time.Second, Wait: true, MaxWait: 2 * time.Second})
				if err != nil {
					errs <- fmt.Errorf("acquire: %w", err)
					return
				}
				if err := rc.Release(lease); err != nil {
					errs <- fmt.Errorf("release: %w", err)
					return
				}
			}
		}(w)
	}
	// Yank every live server-side connection partway through; the
	// resilient layer must redial (pipelined again) and finish.
	time.Sleep(20 * time.Millisecond)
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if rc.Stats().Dials == 0 {
		t.Fatal("no dials recorded")
	}
}

// TestFlushWriterCoalesces pins the coalescer itself: frames written
// within the delay window arrive as one Write call, and a zero delay
// writes through immediately.
func TestFlushWriterCoalesces(t *testing.T) {
	var rec writeRecorder
	fw := newFlushWriter(&rec, 2*time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := fw.WriteFrame([]byte{byte(i), 1, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if calls := rec.calls(); calls >= 5 {
		t.Fatalf("coalescer made %d writes for 5 frames", calls)
	}
	if got := rec.bytes(); got != 20 {
		t.Fatalf("wrote %d bytes, want 20", got)
	}

	rec = writeRecorder{}
	fw = newFlushWriter(&rec, 0)
	fw.WriteFrame([]byte{1, 2, 3})
	if rec.calls() != 1 {
		t.Fatalf("write-through made %d writes, want 1", rec.calls())
	}
	fw.Close()
	if err := fw.WriteFrame([]byte{9}); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close: %v, want net.ErrClosed", err)
	}
}

// writeRecorder counts Write calls and bytes.
type writeRecorder struct {
	mu  sync.Mutex
	n   int
	buf bytes.Buffer
}

func (r *writeRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	return r.buf.Write(p)
}
func (r *writeRecorder) calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
func (r *writeRecorder) bytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Len()
}

// TestFlushWriterError pins sticky error propagation: once the sink
// fails, every subsequent WriteFrame reports it.
func TestFlushWriterError(t *testing.T) {
	boom := errors.New("boom")
	fw := newFlushWriter(failingWriter{err: boom}, 0)
	if err := fw.WriteFrame([]byte{1}); !errors.Is(err, boom) {
		t.Fatalf("first write: %v, want boom", err)
	}
	if err := fw.WriteFrame([]byte{2}); !errors.Is(err, boom) {
		t.Fatalf("sticky error lost: %v", err)
	}
	fw.Close()
}

type failingWriter struct{ err error }

func (w failingWriter) Write([]byte) (int, error) { return 0, w.err }
