package service

import (
	"errors"
	"fmt"
)

// The typed outcomes of service operations. Every non-grant outcome is
// one of these sentinels (possibly wrapped with context), so callers —
// the wire layer, the load generator, the fault campaigns — classify by
// errors.Is and never by string matching.
var (
	// ErrClosed: the service has shut down; waiters are flushed with it.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull: the shard's bounded admission queue is at capacity
	// and the request was shed. This is the backpressure half of the
	// paper's delay-insertion argument: instead of letting excess
	// requesters hammer the resource, the service deflects them at
	// admission.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrShed: a degraded shard refuses to queue waiters at all; the
	// request was shed immediately (shed-load mode).
	ErrShed = errors.New("service: degraded shard shed the request")
	// ErrWaitTimeout: the waiter's MaxWait elapsed before a grant.
	ErrWaitTimeout = errors.New("service: wait timed out")
	// ErrNoWait: the resource was held and the request did not ask to
	// wait.
	ErrNoWait = errors.New("service: resource held")
	// ErrNotHeld: the release named a token that is not the resource's
	// current lease (never granted, already released, or revoked).
	ErrNotHeld = errors.New("service: lease not held")
	// ErrLeaseExpired: the release named a token whose lease already
	// expired — the typed signal a slow or crashed-and-recovered client
	// sees exactly once per lost lease.
	ErrLeaseExpired = errors.New("service: lease expired")
	// ErrDegraded: the shard degraded while the waiter was queued; the
	// waiter is flushed with this typed error and may retry (retries are
	// then shed or granted immediately, never queued).
	ErrDegraded = errors.New("service: shard degraded, waiter flushed")
	// ErrRevoked: the lease was administratively revoked while queued
	// waiters were flushed (Close during revoke-and-drain paths).
	ErrRevoked = errors.New("service: lease revoked")
)

// ConfigError reports an unusable Config or argument (exit-code-2 class
// in the CLIs). Field names the offending Config field or call argument
// so callers can report precisely which knob was wrong; it is empty for
// errors not attributable to a single field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	if e.Field == "" {
		return "service: config: " + e.Reason
	}
	return "service: config: " + e.Field + ": " + e.Reason
}

func configErr(field, format string, args ...any) error {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

func configErrf(format string, args ...any) error {
	return configErr("", format, args...)
}
