package service

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"
)

// The typed outcomes of service operations. Every non-grant outcome is
// one of these sentinels (possibly wrapped with context), so callers —
// the wire layer, the load generator, the fault campaigns — classify by
// errors.Is and never by string matching.
var (
	// ErrClosed: the service has shut down; waiters are flushed with it.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull: the shard's bounded admission queue is at capacity
	// and the request was shed. This is the backpressure half of the
	// paper's delay-insertion argument: instead of letting excess
	// requesters hammer the resource, the service deflects them at
	// admission.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrShed: a degraded shard refuses to queue waiters at all; the
	// request was shed immediately (shed-load mode).
	ErrShed = errors.New("service: degraded shard shed the request")
	// ErrWaitTimeout: the waiter's MaxWait elapsed before a grant.
	ErrWaitTimeout = errors.New("service: wait timed out")
	// ErrNoWait: the resource was held and the request did not ask to
	// wait.
	ErrNoWait = errors.New("service: resource held")
	// ErrNotHeld: the release named a token that is not the resource's
	// current lease (never granted, already released, or revoked).
	ErrNotHeld = errors.New("service: lease not held")
	// ErrLeaseExpired: the release named a token whose lease already
	// expired — the typed signal a slow or crashed-and-recovered client
	// sees exactly once per lost lease.
	ErrLeaseExpired = errors.New("service: lease expired")
	// ErrDegraded: the shard degraded while the waiter was queued; the
	// waiter is flushed with this typed error and may retry (retries are
	// then shed or granted immediately, never queued).
	ErrDegraded = errors.New("service: shard degraded, waiter flushed")
	// ErrRevoked: the lease was administratively revoked while queued
	// waiters were flushed (Close during revoke-and-drain paths).
	ErrRevoked = errors.New("service: lease revoked")
	// ErrFenced: the release or resume named a lease that has been fenced
	// off — the resource has granted a newer lease since, so the caller's
	// claim is a zombie's. Distinct from ErrNotHeld so a reconnected
	// client can tell "my lease is simply gone" from "someone else holds
	// it now and my stale token must never release theirs".
	ErrFenced = errors.New("service: lease fenced off")
	// ErrDraining: the service is draining for shutdown; new acquires are
	// refused and queued waiters are flushed with it. Retryable — against
	// a replica, or after the drain's retry-after hint.
	ErrDraining = errors.New("service: draining")
)

// RetryAfterError wraps a shed-class sentinel with the server's back-off
// hint (wire v2 retry-after): the server inserting a delay into the
// client's retry loop, the same anti-herd move the paper makes in spin
// loops. errors.Is/As see through it.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfterHint extracts the server's back-off hint, if any.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *RetryAfterError
	if errors.As(err, &ra) && ra.After > 0 {
		return ra.After, true
	}
	return 0, false
}

// Retryable classifies an operation error as transient (retry may
// succeed: load shedding, timeouts, drain, transport faults) versus
// fatal (retrying cannot help: protocol violations, lost leases, bad
// config). Unknown errors are fatal — a retry loop must not spin on
// surprises.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrQueueFull),
		errors.Is(err, ErrShed),
		errors.Is(err, ErrDegraded),
		errors.Is(err, ErrDraining),
		errors.Is(err, ErrWaitTimeout):
		return true
	case errors.Is(err, ErrNotHeld),
		errors.Is(err, ErrLeaseExpired),
		errors.Is(err, ErrRevoked),
		errors.Is(err, ErrFenced),
		errors.Is(err, ErrNoWait),
		errors.Is(err, ErrClosed):
		return false
	}
	var werr *WireError
	if errors.As(err, &werr) {
		return false
	}
	var cerr *ConfigError
	if errors.As(err, &cerr) {
		return false
	}
	return isTransport(err)
}

// isTransport reports whether err is a connection-level failure (the
// peer vanished, the socket died) rather than a protocol-level verdict.
func isTransport(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// ConfigError reports an unusable Config or argument (exit-code-2 class
// in the CLIs). Field names the offending Config field or call argument
// so callers can report precisely which knob was wrong; it is empty for
// errors not attributable to a single field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	if e.Field == "" {
		return "service: config: " + e.Reason
	}
	return "service: config: " + e.Field + ": " + e.Reason
}

func configErr(field, format string, args ...any) error {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

func configErrf(format string, args ...any) error {
	return configErr("", format, args...)
}
