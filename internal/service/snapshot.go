package service

import (
	"iqolb/internal/adaptive"
	"iqolb/internal/stats"
)

// SnapshotSchemaVersion identifies the Snapshot layout, following the
// repo's artifact conventions (internal/obs, internal/harness): bump on
// any field addition, removal, or change of meaning.
//
// v2: per-shard live policy and epoch, migration/restore counters, and
// the optional adaptive-controller state block.
//
// v3: resume and fenced-reject counters (wire-v2 reconnect fencing).
const SnapshotSchemaVersion = 3

// Counters are one shard's monotonic event counts. The broadcast-policy
// fields quantify the thundering herd the hand-off policy avoids:
// WastedWakeups is the service's analogue of the redundant bus
// transactions the paper's delays eliminate.
type Counters struct {
	Acquires        uint64 `json:"acquires"`
	Grants          uint64 `json:"grants"`
	ImmediateGrants uint64 `json:"immediate_grants"`
	// Handoffs: grants delivered releaser→waiter in one transfer
	// (PolicyHandoff).
	Handoffs uint64 `json:"handoffs"`
	// BroadcastWakeups / BroadcastClaims / WastedWakeups: wake-ups sent,
	// wake-ups that claimed the resource, and wake-ups that found it
	// already taken (PolicyBroadcast).
	BroadcastWakeups uint64 `json:"broadcast_wakeups"`
	BroadcastClaims  uint64 `json:"broadcast_claims"`
	WastedWakeups    uint64 `json:"wasted_wakeups"`
	// QueueFullSheds: requests shed by the bounded admission queue.
	// DegradedSheds: requests shed by a degraded shard's shed-load mode.
	QueueFullSheds uint64 `json:"queue_full_sheds"`
	DegradedSheds  uint64 `json:"degraded_sheds"`
	NoWaitBusy     uint64 `json:"no_wait_busy"`
	Timeouts       uint64 `json:"timeouts"`
	Releases       uint64 `json:"releases"`
	BadReleases    uint64 `json:"bad_releases"`
	Expiries       uint64 `json:"expiries"`
	Revocations    uint64 `json:"revocations"`
	// Resumes: leases successfully re-validated after a reconnect.
	// FencedRejects: stale-fence releases/resumes rejected typed — each
	// one is a double-release the fencing tokens prevented.
	Resumes       uint64 `json:"resumes"`
	FencedRejects uint64 `json:"fenced_rejects"`
	// Flushed: waiters failed with a typed error on degrade or close.
	Flushed  uint64 `json:"flushed"`
	Degrades uint64 `json:"degrades"`
	// Migrations: live policy flips (MigrateShard). Restores: degraded
	// shards returned to primitive-guarded service (RestoreShard).
	Migrations uint64 `json:"migrations"`
	Restores   uint64 `json:"restores"`
}

// add accumulates o into c (for the snapshot totals row).
func (c *Counters) add(o Counters) {
	c.Acquires += o.Acquires
	c.Grants += o.Grants
	c.ImmediateGrants += o.ImmediateGrants
	c.Handoffs += o.Handoffs
	c.BroadcastWakeups += o.BroadcastWakeups
	c.BroadcastClaims += o.BroadcastClaims
	c.WastedWakeups += o.WastedWakeups
	c.QueueFullSheds += o.QueueFullSheds
	c.DegradedSheds += o.DegradedSheds
	c.NoWaitBusy += o.NoWaitBusy
	c.Timeouts += o.Timeouts
	c.Releases += o.Releases
	c.BadReleases += o.BadReleases
	c.Expiries += o.Expiries
	c.Revocations += o.Revocations
	c.Resumes += o.Resumes
	c.FencedRejects += o.FencedRejects
	c.Flushed += o.Flushed
	c.Degrades += o.Degrades
	c.Migrations += o.Migrations
	c.Restores += o.Restores
}

// Sheds is the total of both shed classes.
func (c Counters) Sheds() uint64 { return c.QueueFullSheds + c.DegradedSheds }

// ShardSnapshot is one shard's state at capture time.
type ShardSnapshot struct {
	Shard int    `json:"shard"`
	Lock  string `json:"lock"`
	// Policy is the shard's live wakeup discipline; Epoch counts the
	// discipline changes (migrations, degrades, restores) it has seen.
	Policy        string   `json:"policy"`
	Epoch         uint64   `json:"epoch"`
	Degraded      bool     `json:"degraded,omitempty"`
	DegradeReason string   `json:"degrade_reason,omitempty"`
	Queued        int      `json:"queued"`
	LiveLeases    int      `json:"live_leases"`
	Counters      Counters `json:"counters"`
	// GrantWaitNS: enqueue → grant (zero samples for immediate grants).
	// HoldNS: grant → release.
	GrantWaitNS stats.Histogram `json:"grant_wait_ns"`
	HoldNS      stats.Histogram `json:"hold_ns"`
}

// Snapshot is a consistent-per-shard capture of the whole service
// (shards are captured one at a time, so cross-shard totals are
// approximate under load — same contract as obs.Snapshot's counters).
type Snapshot struct {
	SchemaVersion int             `json:"schema_version"`
	Policy        string          `json:"policy"`
	QueueDepth    int             `json:"queue_depth"`
	Shards        []ShardSnapshot `json:"shards"`
	// Controller is the adaptive controller's state; nil for static
	// (non-adaptive) services.
	Controller  *adaptive.State `json:"controller,omitempty"`
	Totals      Counters        `json:"totals"`
	GrantWaitNS stats.Histogram `json:"grant_wait_ns"`
	HoldNS      stats.Histogram `json:"hold_ns"`
	LiveLeases  int             `json:"live_leases"`
	Degraded    int             `json:"degraded_shards"`
}

// Snapshot captures the current service state.
func (s *Service) Snapshot() *Snapshot {
	snap := &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Policy:        string(s.cfg.Policy),
		QueueDepth:    s.cfg.QueueDepth,
		Shards:        make([]ShardSnapshot, len(s.shards)),
	}
	for i, sh := range s.shards {
		t := sh.lockShard()
		ss := ShardSnapshot{
			Shard:         i,
			Lock:          sh.mu.Name(),
			Policy:        string(sh.policy),
			Epoch:         sh.epoch,
			Degraded:      t.fb,
			DegradeReason: sh.degradeReason,
			Queued:        sh.queued,
			LiveLeases:    sh.live,
			Counters:      sh.counters,
		}
		ss.GrantWaitNS.Merge(&sh.grantWait)
		ss.HoldNS.Merge(&sh.hold)
		sh.unlockShard(t)
		snap.Shards[i] = ss
		snap.Totals.add(ss.Counters)
		snap.GrantWaitNS.Merge(&ss.GrantWaitNS)
		snap.HoldNS.Merge(&ss.HoldNS)
		snap.LiveLeases += ss.LiveLeases
		if ss.Degraded {
			snap.Degraded++
		}
	}
	snap.Controller = s.ControllerState()
	return snap
}
