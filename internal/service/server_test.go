package service

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// startServer spins an in-process server on a loopback listener.
func startServer(t *testing.T, mut func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{Shards: 2, QueueDepth: 16, DefaultTTL: 30 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		svc.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func TestServerRoundTrip(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	l, err := c.Acquire("db", "alice", AcquireOptions{TTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if l.Token == 0 || l.Deadline.IsZero() {
		t.Fatalf("lease = %+v", l)
	}
	// Typed busy over the wire.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Acquire("db", "bob", AcquireOptions{}); !errors.Is(err, ErrNoWait) {
		t.Fatalf("wire busy: %v, want ErrNoWait", err)
	}
	if err := c.Release("db", l.Token); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("db", l.Token); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("wire double release: %v, want ErrNotHeld", err)
	}
}

// TestServerHandoffOverWire runs a contended acquire across
// connections: the waiter blocks on its connection until the holder's
// release hands the lease over.
func TestServerHandoffOverWire(t *testing.T) {
	_, addr := startServer(t, nil)
	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	l, err := holder.Acquire("r", "holder", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			wl, err := c.Acquire("r", fmt.Sprintf("w%d", i), AcquireOptions{Wait: true, MaxWait: 10 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			errs <- c.Release("r", wl.Token)
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters queue
	if err := holder.Release("r", l.Token); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerMalformedFrame pins the abuse path: garbage gets a typed
// CodeBadFrame response, the connection is closed, and no connection
// goroutine leaks — even across many abusive connections.
func TestServerMalformedFrame(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, addr := startServer(t, nil)
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte{2, 0xee, 0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadResponse(conn)
		if err != nil {
			t.Fatalf("conn %d: no bad-frame response: %v", i, err)
		}
		if resp.Op != OpError || resp.Code != CodeBadFrame {
			t.Fatalf("conn %d: resp = %+v, want OpError/CodeBadFrame", i, resp)
		}
		// The server hangs up after a malformed frame.
		if _, err := ReadResponse(conn); err == nil {
			t.Fatalf("conn %d: connection still open after malformed frame", i)
		}
		conn.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Connection goroutines must drain. Close waits for them, so only
	// scheduler noise remains; poll briefly to let it settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCloseUnblocksWaiters: closing service + server flushes a
// connection blocked in a waiting acquire.
func TestServerCloseUnblocksWaiters(t *testing.T) {
	srv, addr := startServer(t, nil)
	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.Acquire("r", "holder", AcquireOptions{}); err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan error, 1)
	go func() {
		c, err := Dial(addr)
		if err != nil {
			waiterDone <- err
			return
		}
		defer c.Close()
		_, err = c.Acquire("r", "w", AcquireOptions{Wait: true})
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// Service close flushes the waiter with ErrClosed; the server relays
	// it (or the socket drops — both unblock).
	srv.svc.Close()
	select {
	case err := <-waiterDone:
		if err == nil {
			t.Fatal("waiting acquire succeeded across close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiting connection never unblocked on close")
	}
}
