// The resilient client: the serving-path rendering of the paper's
// delay-insertion argument applied to retries. A connection reset or a
// shed is the re-arrival herd problem all over again — every affected
// client would re-dial and re-acquire at once, which is the test&set
// stampede the paper fixes with calibrated delays. The ResilientClient
// therefore retries behind a capped exponential backoff quantized to
// bands (the locks.Tuning band idea) with seeded jitter inside the
// band, honors the server's retry-after hints (the server inserting the
// delay), and re-validates held leases by fencing token after every
// reconnect so a zombie can never double-release.
package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"iqolb/internal/faults"
)

// RetryPolicy is the capped-exponential delay schedule: attempt n backs
// off within the band [b/2, b) where b = min(Initial<<n, Cap). The
// half-open band plus seeded jitter spreads retries the way the paper's
// inserted delays spread polls — no two clients herd on the same
// instant, yet the quantized bands keep the schedule analyzable.
type RetryPolicy struct {
	// Initial is the first band (default 2ms); Cap bounds the growth
	// (default 250ms).
	Initial time.Duration
	Cap     time.Duration
	// MaxAttempts bounds the total tries per operation, first attempt
	// included (default 8). When exhausted the operation fails with the
	// last typed error wrapped in a give-up message.
	MaxAttempts int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Initial <= 0 {
		p.Initial = 2 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 250 * time.Millisecond
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	return p
}

// band returns attempt's backoff band (attempt 0 = first retry).
func (p RetryPolicy) band(attempt int) time.Duration {
	b := p.Initial
	for i := 0; i < attempt && b < p.Cap; i++ {
		b <<= 1
	}
	if b > p.Cap {
		b = p.Cap
	}
	return b
}

// ResilientOptions tune a ResilientClient.
type ResilientOptions struct {
	// OpTimeout bounds each round trip (default 1s); it doubles as the
	// propagated acquire deadline (wire v2).
	OpTimeout time.Duration
	// DialTimeout bounds each (re)connect (default OpTimeout).
	DialTimeout time.Duration
	// Retry is the backoff schedule.
	Retry RetryPolicy
	// Seed drives the jitter stream; equal seeds yield equal retry
	// schedules, which is what keeps chaos campaigns reproducible.
	Seed uint64
	// Pipeline, when ≥ 2, runs the underlying connection in pipelined
	// mode (wire v3) with that in-flight window, letting concurrent
	// goroutines share this ResilientClient instead of serializing on
	// one round trip. ≤ 1 keeps the lock-step connection.
	Pipeline int
	// FlushDelay coalesces the pipelined connection's request frames:
	// the socket is held up to this long so concurrent ops batch into
	// one write syscall (only meaningful with Pipeline ≥ 2).
	FlushDelay time.Duration
}

// ResilientStats counts what the retry loop did; all monotonic.
type ResilientStats struct {
	Dials       uint64 `json:"dials"`
	Reconnects  uint64 `json:"reconnects"`
	Retries     uint64 `json:"retries"`
	ResumedOK   uint64 `json:"resumed_ok"`
	ResumedLost uint64 `json:"resumed_lost"`
	GaveUp      uint64 `json:"gave_up"`
}

// ResilientClient wraps the wire client with reconnect, typed
// retryable-vs-fatal classification, jittered-delay backoff, and
// fenced lease resumption. It is safe for concurrent use: operations
// run outside the client's mutex, so with Pipeline ≥ 2 many goroutines
// genuinely share one pipelined connection; without it they serialize
// on the underlying Client's round trip, like before.
type ResilientClient struct {
	addr string
	opt  ResilientOptions

	mu     sync.Mutex
	cl     *Client
	str    faults.Stream
	held   map[string]Lease // resource → lease to re-validate on reconnect
	stats  ResilientStats
	closed bool
}

// NewResilient builds a resilient client for addr; the first connection
// is dialed lazily on the first operation.
func NewResilient(addr string, opt ResilientOptions) *ResilientClient {
	if opt.OpTimeout <= 0 {
		opt.OpTimeout = time.Second
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = opt.OpTimeout
	}
	opt.Retry = opt.Retry.withDefaults()
	return &ResilientClient{
		addr: addr,
		opt:  opt,
		str:  faults.NewStream(opt.Seed),
		held: make(map[string]Lease),
	}
}

// Stats returns a copy of the retry-loop counters.
func (rc *ResilientClient) Stats() ResilientStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// Held returns the leases the client believes it holds (post-resume
// truth after the latest reconnect).
func (rc *ResilientClient) Held() []Lease {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]Lease, 0, len(rc.held))
	for _, l := range rc.held {
		out = append(out, l)
	}
	return out
}

// Close drops the connection; held-lease records are kept (the server's
// sweeper reclaims them by TTL).
func (rc *ResilientClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.closed = true
	if rc.cl != nil {
		err := rc.cl.Close()
		rc.cl = nil
		return err
	}
	return nil
}

// connectLocked returns the live connection, dialing (and resuming held
// leases) if needed.
func (rc *ResilientClient) connectLocked() (*Client, error) {
	if rc.closed {
		return nil, ErrClosed
	}
	if rc.cl != nil {
		return rc.cl, nil
	}
	cl, err := DialTimeout(rc.addr, rc.opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	cl.SetOpTimeout(rc.opt.OpTimeout)
	if rc.opt.Pipeline >= 2 {
		if err := cl.Pipeline(rc.opt.Pipeline, rc.opt.FlushDelay); err != nil {
			cl.Close()
			return nil, err
		}
	}
	rc.stats.Dials++
	if rc.stats.Dials > 1 {
		rc.stats.Reconnects++
	}
	rc.cl = cl
	rc.resumeHeldLocked(cl)
	return cl, nil
}

// resumeHeldLocked re-validates every held lease over a fresh
// connection. A typed loss verdict (expired, revoked, fenced, not held)
// removes the record — the lease is gone and must never be released
// with the stale token. A transport failure mid-resume leaves the
// record in place; the next reconnect retries it.
func (rc *ResilientClient) resumeHeldLocked(cl *Client) {
	for res, lease := range rc.held {
		got, err := cl.Resume(res, lease.Token, lease.Fence)
		switch {
		case err == nil:
			rc.held[res] = got
			rc.stats.ResumedOK++
		case Retryable(err):
			// Transport or transient: resolved by a later reconnect.
			return
		default:
			delete(rc.held, res)
			rc.stats.ResumedLost++
		}
	}
}

// connect takes the mutex around connectLocked.
func (rc *ResilientClient) connect() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.connectLocked()
}

// drop discards a connection whose round trip failed at the transport
// level — but only if it is still the current one; with concurrent
// callers another goroutine may already have replaced it, and closing
// the replacement would fail its in-flight ops for nothing.
func (rc *ResilientClient) drop(cl *Client) {
	rc.mu.Lock()
	if rc.cl == cl {
		rc.cl = nil
	}
	rc.mu.Unlock()
	cl.Close()
}

// backoff inserts the retry delay for attempt: the server's retry-after
// hint when it sent one, else the policy band, jittered to [band/2,
// band) by the seeded stream. The sleep happens outside the mutex so
// one backing-off goroutine never stalls the others; the jitter draw
// itself is serialized, which keeps single-actor schedules (the chaos
// campaigns) exactly reproducible.
func (rc *ResilientClient) backoff(attempt int, hint time.Duration) {
	band := rc.opt.Retry.band(attempt)
	if hint > 0 {
		band = hint
	}
	half := band / 2
	if half <= 0 {
		half = 1
	}
	rc.mu.Lock()
	d := half + time.Duration(rc.str.Intn(int64(half)))
	rc.mu.Unlock()
	time.Sleep(d)
	rc.mu.Lock()
	rc.stats.Retries++
	rc.mu.Unlock()
}

// do runs one operation through the retry loop. op runs with a live
// connection, outside the client mutex; transportRetried tells it
// whether an earlier attempt may have reached the server (for release
// idempotence).
func (rc *ResilientClient) do(op func(cl *Client, transportRetried bool) error) error {
	var lastErr error
	transportRetried := false
	for attempt := 0; attempt < rc.opt.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			hint, _ := RetryAfterHint(lastErr)
			rc.backoff(attempt-1, hint)
		}
		cl, err := rc.connect()
		if err != nil {
			if !Retryable(err) {
				return err
			}
			lastErr = err
			continue
		}
		err = op(cl, transportRetried)
		if err == nil {
			return nil
		}
		lastErr = err
		if isTransport(err) {
			rc.drop(cl)
			transportRetried = true
			continue
		}
		if !Retryable(err) {
			return err
		}
	}
	rc.mu.Lock()
	rc.stats.GaveUp++
	rc.mu.Unlock()
	return fmt.Errorf("service: gave up after %d attempts: %w", rc.opt.Retry.MaxAttempts, lastErr)
}

// Acquire requests a lease, retrying transient refusals and transport
// faults behind the jittered backoff. A transport retry can observe the
// side effect of its own earlier attempt (the first try's grant landed
// but the response was lost); the fencing token keeps that safe — the
// orphan lease expires by TTL and its stale release would be rejected
// typed.
func (rc *ResilientClient) Acquire(resource, owner string, opt AcquireOptions) (Lease, error) {
	var lease Lease
	err := rc.do(func(cl *Client, _ bool) error {
		got, err := cl.Acquire(resource, owner, opt)
		if err != nil {
			return err
		}
		lease = got
		rc.mu.Lock()
		rc.held[resource] = got
		rc.mu.Unlock()
		return nil
	})
	return lease, err
}

// Release ends a held lease by its fencing token. After a transport
// retry, a typed ErrNotHeld/ErrLeaseExpired/ErrFenced verdict resolves
// to success: the earlier attempt may have landed, and each of those
// verdicts proves this token no longer holds the resource — which is
// all a release needs.
func (rc *ResilientClient) Release(lease Lease) error {
	err := rc.do(func(cl *Client, transportRetried bool) error {
		err := cl.ReleaseFenced(lease.Resource, lease.Token, lease.Fence)
		if err == nil {
			return nil
		}
		if transportRetried && isReleaseSettled(err) {
			return nil
		}
		return err
	})
	rc.mu.Lock()
	if held, ok := rc.held[lease.Resource]; ok && held.Token == lease.Token {
		delete(rc.held, lease.Resource)
	}
	rc.mu.Unlock()
	return err
}

// isReleaseSettled reports whether err proves the lease is no longer
// held by this token (so a retried release is complete).
func isReleaseSettled(err error) bool {
	return errors.Is(err, ErrNotHeld) || errors.Is(err, ErrLeaseExpired) ||
		errors.Is(err, ErrRevoked) || errors.Is(err, ErrFenced)
}

// Ping round-trips a no-op through the retry loop.
func (rc *ResilientClient) Ping() error {
	return rc.do(func(cl *Client, _ bool) error { return cl.Ping() })
}
