package service

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// framePool recycles encode buffers for pipelined sends; every buffer
// holds a maximal frame so encodes never grow them.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, wireHeaderLen+MaxPayload)
		return &b
	},
}

// opTimerPool recycles the per-op timeout timers: at pipelined rates
// time.NewTimer per op is a top-five CPU line, and Go 1.23+ timer
// semantics (synchronous Stop/Reset, no stale channel values) make
// Reset-after-Stop safe without draining.
var opTimerPool = sync.Pool{}

func getOpTimer(d time.Duration) *time.Timer {
	if t, _ := opTimerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putOpTimer(t *time.Timer) {
	t.Stop()
	opTimerPool.Put(t)
}

// replyChanPool recycles the buffered-1 reply channels ops register
// with the read loop. A channel may be pooled only when no late send or
// close can still target it: after its single response was received, or
// after a deregister that found the registration still present (so the
// router never saw it and the failure path cannot close it).
var replyChanPool = sync.Pool{
	New: func() any { return make(chan Response, 1) },
}

// Client is a lockserve wire-protocol client. It is safe for concurrent
// use. By default requests serialize on the single connection (one in
// flight), matching the closed-loop clients of the load generator; open
// one Client per concurrent actor, or call Pipeline to let one
// connection carry a window of concurrent requests (wire v3). It speaks
// wire v2 by default; see SetVersion for talking to a v1-only server.
type Client struct {
	conn   net.Conn
	closed atomic.Bool

	// version, opTimeout, and pl are atomics because the pipelined hot
	// path reads them on every op from many goroutines; taking the
	// round-trip mutex just to read them would serialize the window.
	version   atomic.Uint32
	opTimeout atomic.Int64                   // time.Duration
	pl        atomic.Pointer[clientPipeline] // nil until Pipeline

	mu  sync.Mutex // serializes lock-step round trips (and mode changes)
	br  *bufio.Reader
	dec *Decoder
	enc []byte // lock-step encode scratch
}

// Dial connects to a lockserve address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout connects with a bound on the dial itself.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
		dec:  NewDecoder(),
	}
	c.version.Store(uint32(WireVersion2))
	return c
}

// SetVersion selects the wire version for subsequent requests
// (WireVersion for a v1-only server, WireVersion2 by default;
// WireVersion3 frames carry pipelining IDs — use Pipeline to actually
// run a window).
func (c *Client) SetVersion(v uint8) error {
	if v != WireVersion && v != WireVersion2 && v != WireVersion3 {
		return wireErrf("unknown client version %d", v)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pl.Load() != nil {
		return wireErrf("cannot change version on a pipelined client")
	}
	c.version.Store(uint32(v))
	return nil
}

// SetOpTimeout bounds each subsequent operation, so a dead or
// partitioned peer surfaces as a typed timeout instead of a hang. In
// lock-step mode it is a connection deadline around the round trip; in
// pipelined mode each op registers a deadline that the pipeline's
// watchdog enforces (the shared socket cannot carry per-op read
// deadlines). With wire v2+ the same budget is propagated to the server
// inside acquire frames, which clamps its queued wait to the client's
// remaining budget. 0 disables.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.opTimeout.Store(int64(d))
}

// Pipeline switches the client to pipelined mode: wire v3 frames, up to
// `window` requests in flight at once on the one connection (0 =
// DefaultWindow), responses demultiplexed by request ID. flushDelay > 0
// additionally coalesces request frames — the socket is held up to that
// long so concurrent ops' frames batch into one write syscall (the
// delay-insertion trade: p50 for throughput). Pipeline must be called
// before the client is shared across goroutines and cannot be undone on
// this connection.
func (c *Client) Pipeline(window int, flushDelay time.Duration) error {
	if window <= 0 {
		window = DefaultWindow
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return net.ErrClosed
	}
	if c.pl.Load() != nil {
		return wireErrf("client already pipelined")
	}
	// Clear any lock-step deadline left on the socket; pipelined ops are
	// bounded by watchdog-enforced per-op deadlines instead.
	c.conn.SetDeadline(time.Time{})
	c.version.Store(uint32(WireVersion3))
	pl := &clientPipeline{
		c:       c,
		fw:      newFlushWriter(c.conn, flushDelay),
		sem:     make(chan struct{}, window),
		pending: make(map[uint64]pendingOp),
		stopc:   make(chan struct{}),
	}
	c.pl.Store(pl)
	go pl.readLoop(c.br)
	go pl.watchdog()
	return nil
}

// Close closes the connection. It deliberately does NOT take the
// round-trip mutex: a round trip blocked mid-read on a vanished peer
// holds it indefinitely, and net.Conn.Close is safe to call
// concurrently — it unblocks that pending read with net.ErrClosed. In
// pipelined mode the dying read loop then fails every in-flight op
// typed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return c.conn.Close()
}

// roundTrip executes one request: pipelined when a window is active,
// lock-step (write, then read, under the mutex) otherwise.
func (c *Client) roundTrip(req Request) (Response, error) {
	if pl := c.pl.Load(); pl != nil {
		if c.closed.Load() {
			return Response{}, net.ErrClosed
		}
		return pl.do(req, time.Duration(c.opTimeout.Load()))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return Response{}, net.ErrClosed
	}
	req.Version = uint8(c.version.Load())
	if d := time.Duration(c.opTimeout.Load()); d > 0 {
		c.conn.SetDeadline(time.Now().Add(d))
	}
	frame, err := AppendRequest(c.enc[:0], req)
	if err != nil {
		return Response{}, err
	}
	c.enc = frame
	if _, err := c.conn.Write(frame); err != nil {
		return Response{}, err
	}
	return c.dec.ReadResponse(c.br)
}

// clientPipeline is the demultiplexing response router behind a
// pipelined Client: ops register a reply channel under a fresh request
// ID, frames go out through the (optionally coalescing) flushWriter,
// and the read loop matches responses — which arrive in the server's
// completion order, not send order — back to their waiting ops.
//
// Op timeouts are enforced by a single watchdog goroutine scanning the
// pending registrations, not by a timer per op: arming and disarming a
// runtime timer twice per op is a top-five CPU line at pipelined rates,
// while one scan per tick is O(in-flight window) every few tens of
// milliseconds. Timeouts are therefore coarse — an op can outlive its
// deadline by up to one watchdog tick — which is the right trade for a
// bound whose job is unwedging ops from a dead peer, not precision.
type clientPipeline struct {
	c   *Client
	fw  *flushWriter
	sem chan struct{} // in-flight window slots

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]pendingOp
	err     error // first transport failure, sticky

	stopc chan struct{} // closed by fail(); stops the watchdog
}

// pendingOp is one in-flight registration: the reply channel and the
// absolute deadline (UnixNano; 0 = no timeout) the watchdog enforces.
type pendingOp struct {
	ch       chan Response
	deadline int64
}

// opTimedOut is the watchdog's in-band timeout marker: an op byte no
// wire version emits, delivered on the reply channel so do() needs only
// one channel receive instead of a select with a timer.
const opTimedOut = 0xFF

// watchdogTick bounds how long past its deadline an op can linger.
const watchdogTick = 25 * time.Millisecond

// opTimeoutError is a pipelined per-op timeout. It implements net.Error
// with Timeout() true, so the resilient layer classifies it exactly
// like a connection deadline: transport fault, drop the connection,
// redial, retry.
type opTimeoutError struct{ op string }

func (e *opTimeoutError) Error() string {
	return "service: " + e.op + " timed out awaiting pipelined response"
}
func (e *opTimeoutError) Timeout() bool   { return true }
func (e *opTimeoutError) Temporary() bool { return true }

// do runs one pipelined op: take a window slot, register, send, await.
func (p *clientPipeline) do(req Request, timeout time.Duration) (Response, error) {
	// Window acquisition: the non-blocking fast path costs no timer at
	// all; only an actually-full window arms one (pooled) to bound the
	// wait.
	select {
	case p.sem <- struct{}{}:
	default:
		if timeout > 0 {
			timer := getOpTimer(timeout)
			select {
			case p.sem <- struct{}{}:
				putOpTimer(timer)
			case <-timer.C:
				putOpTimer(timer)
				return Response{}, &opTimeoutError{op: opName(req.Op)}
			}
		} else {
			p.sem <- struct{}{}
		}
	}
	defer func() { <-p.sem }()

	var deadline int64
	if timeout > 0 {
		deadline = time.Now().Add(timeout).UnixNano()
	}
	id := p.nextID.Add(1)
	ch := replyChanPool.Get().(chan Response)
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		replyChanPool.Put(ch)
		return Response{}, err
	}
	p.pending[id] = pendingOp{ch: ch, deadline: deadline}
	p.mu.Unlock()

	req.Version = WireVersion3
	req.ID = id
	buf := framePool.Get().(*[]byte)
	frame, err := AppendRequest((*buf)[:0], req)
	if err != nil {
		framePool.Put(buf)
		if p.deregister(id) {
			replyChanPool.Put(ch)
		}
		return Response{}, err
	}
	// No per-op write deadline: a peer that stopped reading wedges the
	// socket write, but the watchdog then times out some op, classifies
	// transport, and the resilient layer (or the caller) closes the
	// connection — which unblocks the writer. Skipping the syscall per
	// op matters at these rates.
	*buf = frame
	werr := p.fw.WriteFrame(frame)
	framePool.Put(buf)
	if werr != nil {
		// A write error means the frame never reached the coalescing
		// buffer, so no response can land on ch; if the registration is
		// still ours (fail() has not closed it), the channel is clean.
		if p.deregister(id) {
			replyChanPool.Put(ch)
		}
		p.fail(werr)
		return Response{}, werr
	}

	// One plain receive: the router delivers the response, the watchdog
	// delivers the opTimedOut marker, or fail() closes the channel.
	// Whoever delivers deleted the registration first, so the (single)
	// send makes the channel clean to recycle.
	resp, ok := <-ch
	if !ok {
		// fail() closed it — a closed channel is never pooled.
		p.mu.Lock()
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return Response{}, err
	}
	replyChanPool.Put(ch)
	if resp.Op == opTimedOut {
		return Response{}, &opTimeoutError{op: opName(req.Op)}
	}
	return resp, nil
}

// watchdog enforces pipelined op deadlines: every tick it sweeps the
// pending registrations and delivers the timeout marker to any op past
// its deadline. It exits when fail() closes stopc (transport death
// already woke every op by closing its channel).
func (p *clientPipeline) watchdog() {
	timer := time.NewTimer(watchdogTick)
	defer timer.Stop()
	var expired []chan Response
	for {
		select {
		case <-p.stopc:
			return
		case <-timer.C:
		}
		now := time.Now().UnixNano()
		expired = expired[:0]
		p.mu.Lock()
		for id, po := range p.pending {
			if po.deadline != 0 && now >= po.deadline {
				delete(p.pending, id)
				expired = append(expired, po.ch)
			}
		}
		p.mu.Unlock()
		for _, ch := range expired {
			ch <- Response{Op: opTimedOut} // buffered; sole sender post-delete
		}
		timer.Reset(watchdogTick)
	}
}

// deregister removes id's reply registration, reporting whether it was
// still present (false: the router or fail() already claimed it).
func (p *clientPipeline) deregister(id uint64) bool {
	p.mu.Lock()
	_, ok := p.pending[id]
	delete(p.pending, id)
	p.mu.Unlock()
	return ok
}

// fail marks the pipeline dead, wakes every in-flight op by closing
// its reply channel, and stops the watchdog; subsequent ops fail fast
// at registration.
func (p *clientPipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
		close(p.stopc)
		for id, po := range p.pending {
			delete(p.pending, id)
			close(po.ch)
		}
	}
	p.mu.Unlock()
}

// readLoop is the router: one decoder, one reader goroutine for the
// connection's lifetime, zero steady-state allocations beyond the reply
// channels.
func (p *clientPipeline) readLoop(br *bufio.Reader) {
	dec := NewDecoder()
	for {
		resp, err := dec.ReadResponse(br)
		if err != nil {
			p.fail(fmt.Errorf("service: pipelined read: %w", err))
			return
		}
		p.mu.Lock()
		po, ok := p.pending[resp.ID]
		if ok {
			delete(p.pending, resp.ID)
		}
		p.mu.Unlock()
		if ok {
			po.ch <- resp // buffered; never blocks the router
		}
		// Unknown ID: the op timed out and deregistered — drop it.
	}
}

// Acquire requests a lease over the wire; errors are the same typed
// sentinels the in-process API returns.
func (c *Client) Acquire(resource, owner string, opt AcquireOptions) (Lease, error) {
	req := Request{
		Op:       OpAcquire,
		Resource: resource,
		Owner:    owner,
		TTL:      opt.TTL,
		MaxWait:  opt.MaxWait,
		Wait:     opt.Wait,
	}
	if d := time.Duration(c.opTimeout.Load()); d > 0 && uint8(c.version.Load()) >= WireVersion2 {
		req.Deadline = time.Now().Add(d).UnixNano()
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return Lease{}, err
	}
	switch resp.Op {
	case OpGranted:
		return Lease{
			Resource: resource,
			Owner:    owner,
			Token:    resp.Token,
			Fence:    resp.Fence,
			Deadline: time.Unix(0, resp.Deadline),
		}, nil
	case OpError:
		return Lease{}, codeError(resp)
	}
	return Lease{}, fmt.Errorf("service: unexpected response op %d to acquire", resp.Op)
}

// Release ends a lease over the wire.
func (c *Client) Release(resource string, token uint64) error {
	return c.ReleaseFenced(resource, token, 0)
}

// ReleaseFenced ends a lease over the wire with its fencing token
// (wire v2); fence 0 makes no fence claim.
func (c *Client) ReleaseFenced(resource string, token, fence uint64) error {
	resp, err := c.roundTrip(Request{Op: OpRelease, Resource: resource, Token: token, Fence: fence})
	if err != nil {
		return err
	}
	switch resp.Op {
	case OpOK:
		return nil
	case OpError:
		return codeError(resp)
	}
	return fmt.Errorf("service: unexpected response op %d to release", resp.Op)
}

// Resume re-validates a held lease after a reconnect (wire v2): the
// live lease if the token still holds the resource, or the typed reason
// it no longer does.
func (c *Client) Resume(resource string, token, fence uint64) (Lease, error) {
	resp, err := c.roundTrip(Request{Op: OpResume, Resource: resource, Token: token, Fence: fence})
	if err != nil {
		return Lease{}, err
	}
	switch resp.Op {
	case OpGranted:
		return Lease{
			Resource: resource,
			Token:    resp.Token,
			Fence:    resp.Fence,
			Deadline: time.Unix(0, resp.Deadline),
		}, nil
	case OpError:
		return Lease{}, codeError(resp)
	}
	return Lease{}, fmt.Errorf("service: unexpected response op %d to resume", resp.Op)
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Op != OpOK {
		return fmt.Errorf("service: unexpected response op %d to ping", resp.Op)
	}
	return nil
}
