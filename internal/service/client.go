package service

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a lockserve wire-protocol client. It is safe for concurrent
// use, but requests serialize on the single connection (one in flight),
// matching the closed-loop clients of the load generator; open one
// Client per concurrent actor.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a lockserve address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip writes one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	frame, err := AppendRequest(nil, req)
	if err != nil {
		return Response{}, err
	}
	if _, err := c.bw.Write(frame); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	return ReadResponse(c.br)
}

// Acquire requests a lease over the wire; errors are the same typed
// sentinels the in-process API returns.
func (c *Client) Acquire(resource, owner string, opt AcquireOptions) (Lease, error) {
	resp, err := c.roundTrip(Request{
		Op:       OpAcquire,
		Resource: resource,
		Owner:    owner,
		TTL:      opt.TTL,
		MaxWait:  opt.MaxWait,
		Wait:     opt.Wait,
	})
	if err != nil {
		return Lease{}, err
	}
	switch resp.Op {
	case OpGranted:
		return Lease{
			Resource: resource,
			Owner:    owner,
			Token:    resp.Token,
			Deadline: time.Unix(0, resp.Deadline),
		}, nil
	case OpError:
		return Lease{}, codeError(resp.Code, resp.Msg)
	}
	return Lease{}, fmt.Errorf("service: unexpected response op %d to acquire", resp.Op)
}

// Release ends a lease over the wire.
func (c *Client) Release(resource string, token uint64) error {
	resp, err := c.roundTrip(Request{Op: OpRelease, Resource: resource, Token: token})
	if err != nil {
		return err
	}
	switch resp.Op {
	case OpOK:
		return nil
	case OpError:
		return codeError(resp.Code, resp.Msg)
	}
	return fmt.Errorf("service: unexpected response op %d to release", resp.Op)
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Op != OpOK {
		return fmt.Errorf("service: unexpected response op %d to ping", resp.Op)
	}
	return nil
}
