package service

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a lockserve wire-protocol client. It is safe for concurrent
// use, but requests serialize on the single connection (one in flight),
// matching the closed-loop clients of the load generator; open one
// Client per concurrent actor. It speaks wire v2 by default; see
// SetVersion for talking to a v1-only server.
type Client struct {
	conn   net.Conn
	closed atomic.Bool

	mu        sync.Mutex // serializes round trips
	br        *bufio.Reader
	bw        *bufio.Writer
	version   uint8
	opTimeout time.Duration
}

// Dial connects to a lockserve address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout connects with a bound on the dial itself.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		version: WireVersion2,
	}
}

// SetVersion selects the wire version for subsequent requests
// (WireVersion for a v1-only server, WireVersion2 by default).
func (c *Client) SetVersion(v uint8) error {
	if v != WireVersion && v != WireVersion2 {
		return wireErrf("unknown client version %d", v)
	}
	c.mu.Lock()
	c.version = v
	c.mu.Unlock()
	return nil
}

// SetOpTimeout bounds each subsequent round trip (write + read) with a
// connection deadline, so a dead or partitioned peer surfaces as a
// typed timeout instead of a hang. With wire v2 the same deadline is
// propagated to the server inside acquire frames, which clamps its
// queued wait to the client's remaining budget. 0 disables.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.opTimeout = d
	c.mu.Unlock()
}

// Close closes the connection. It deliberately does NOT take the
// round-trip mutex: a round trip blocked mid-read on a vanished peer
// holds it indefinitely, and net.Conn.Close is safe to call
// concurrently — it unblocks that pending read with net.ErrClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return c.conn.Close()
}

// roundTrip writes one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return Response{}, net.ErrClosed
	}
	req.Version = c.version
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	}
	frame, err := AppendRequest(nil, req)
	if err != nil {
		return Response{}, err
	}
	if _, err := c.bw.Write(frame); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	return ReadResponse(c.br)
}

// Acquire requests a lease over the wire; errors are the same typed
// sentinels the in-process API returns.
func (c *Client) Acquire(resource, owner string, opt AcquireOptions) (Lease, error) {
	req := Request{
		Op:       OpAcquire,
		Resource: resource,
		Owner:    owner,
		TTL:      opt.TTL,
		MaxWait:  opt.MaxWait,
		Wait:     opt.Wait,
	}
	c.mu.Lock()
	if c.version == WireVersion2 && c.opTimeout > 0 {
		req.Deadline = time.Now().Add(c.opTimeout).UnixNano()
	}
	c.mu.Unlock()
	resp, err := c.roundTrip(req)
	if err != nil {
		return Lease{}, err
	}
	switch resp.Op {
	case OpGranted:
		return Lease{
			Resource: resource,
			Owner:    owner,
			Token:    resp.Token,
			Fence:    resp.Fence,
			Deadline: time.Unix(0, resp.Deadline),
		}, nil
	case OpError:
		return Lease{}, codeError(resp)
	}
	return Lease{}, fmt.Errorf("service: unexpected response op %d to acquire", resp.Op)
}

// Release ends a lease over the wire.
func (c *Client) Release(resource string, token uint64) error {
	return c.ReleaseFenced(resource, token, 0)
}

// ReleaseFenced ends a lease over the wire with its fencing token
// (wire v2); fence 0 makes no fence claim.
func (c *Client) ReleaseFenced(resource string, token, fence uint64) error {
	resp, err := c.roundTrip(Request{Op: OpRelease, Resource: resource, Token: token, Fence: fence})
	if err != nil {
		return err
	}
	switch resp.Op {
	case OpOK:
		return nil
	case OpError:
		return codeError(resp)
	}
	return fmt.Errorf("service: unexpected response op %d to release", resp.Op)
}

// Resume re-validates a held lease after a reconnect (wire v2): the
// live lease if the token still holds the resource, or the typed reason
// it no longer does.
func (c *Client) Resume(resource string, token, fence uint64) (Lease, error) {
	resp, err := c.roundTrip(Request{Op: OpResume, Resource: resource, Token: token, Fence: fence})
	if err != nil {
		return Lease{}, err
	}
	switch resp.Op {
	case OpGranted:
		return Lease{
			Resource: resource,
			Token:    resp.Token,
			Fence:    resp.Fence,
			Deadline: time.Unix(0, resp.Deadline),
		}, nil
	case OpError:
		return Lease{}, codeError(resp)
	}
	return Lease{}, fmt.Errorf("service: unexpected response op %d to resume", resp.Op)
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Op != OpOK {
		return fmt.Errorf("service: unexpected response op %d to ping", resp.Op)
	}
	return nil
}
