package service

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iqolb/internal/linearize"
	"iqolb/locks"
)

// ---------------------------------------------------------------------
// Sequential lease model for the linearizability checker.
//
// State: which token (if any) holds each resource, plus the sets of
// expired and revoked tokens. Tokens are globally unique, so the model
// never needs generation counters.
// ---------------------------------------------------------------------

type acqIn struct {
	Res    string
	NoWait bool
}

type relIn struct {
	Res   string
	Token uint64
}

type revIn struct {
	Res string
}

type expIn struct {
	Res   string
	Token uint64
}

func (a acqIn) String() string { return fmt.Sprintf("acquire(%s,nowait=%v)", a.Res, a.NoWait) }
func (r relIn) String() string { return fmt.Sprintf("release(%s,#%d)", r.Res, r.Token) }
func (r revIn) String() string { return fmt.Sprintf("revoke(%s)", r.Res) }
func (e expIn) String() string { return fmt.Sprintf("expire(%s,#%d)", e.Res, e.Token) }

type modelState struct {
	hold    map[string]uint64
	expired map[uint64]bool
	revoked map[uint64]bool
}

func (st modelState) clone() modelState {
	n := modelState{
		hold:    make(map[string]uint64, len(st.hold)),
		expired: make(map[uint64]bool, len(st.expired)),
		revoked: make(map[uint64]bool, len(st.revoked)),
	}
	for k, v := range st.hold {
		n.hold[k] = v
	}
	for k := range st.expired {
		n.expired[k] = true
	}
	for k := range st.revoked {
		n.revoked[k] = true
	}
	return n
}

type leaseModel struct{}

func (leaseModel) Init() any {
	return modelState{hold: map[string]uint64{}, expired: map[uint64]bool{}, revoked: map[uint64]bool{}}
}

func (leaseModel) Step(state any, input, output any) (any, bool) {
	st := state.(modelState)
	switch in := input.(type) {
	case acqIn:
		switch out := output.(type) {
		case uint64: // granted
			if st.hold[in.Res] != 0 {
				return state, false
			}
			n := st.clone()
			n.hold[in.Res] = out
			return n, true
		case string:
			switch out {
			case "busy": // ErrNoWait: legal only if the resource is held
				return state, st.hold[in.Res] != 0
			case "timeout", "queuefull", "shed", "closed":
				// Admission refusals and timeouts are legal no-ops: they
				// depend on queue occupancy and timing, which the
				// sequential lease model does not track.
				return state, true
			}
		}
		return state, false
	case relIn:
		switch output.(string) {
		case "ok":
			if st.hold[in.Res] != in.Token {
				return state, false
			}
			n := st.clone()
			delete(n.hold, in.Res)
			return n, true
		case "notheld":
			return state, st.hold[in.Res] != in.Token && !st.expired[in.Token] && !st.revoked[in.Token]
		case "expired":
			return state, st.expired[in.Token]
		case "revoked":
			return state, st.revoked[in.Token]
		}
		return state, false
	case revIn:
		tok := output.(uint64)
		if tok == 0 { // nothing to revoke
			return state, st.hold[in.Res] == 0
		}
		if st.hold[in.Res] != tok {
			return state, false
		}
		n := st.clone()
		delete(n.hold, in.Res)
		n.revoked[tok] = true
		return n, true
	case expIn:
		if st.hold[in.Res] != in.Token {
			return state, false
		}
		n := st.clone()
		delete(n.hold, in.Res)
		n.expired[in.Token] = true
		return n, true
	}
	return state, false
}

func (leaseModel) Key(state any) string {
	st := state.(modelState)
	var parts []string
	for r, t := range st.hold {
		parts = append(parts, fmt.Sprintf("h:%s=%d", r, t))
	}
	for t := range st.expired {
		parts = append(parts, fmt.Sprintf("e:%d", t))
	}
	for t := range st.revoked {
		parts = append(parts, fmt.Sprintf("r:%d", t))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ---------------------------------------------------------------------
// History recorder: a global logical clock plus a thread-safe op log.
// ---------------------------------------------------------------------

type recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []linearize.Op
}

func (rec *recorder) tick() int64 { return rec.clock.Add(1) }

func (rec *recorder) add(client int, call, ret int64, in, out any) {
	rec.mu.Lock()
	rec.ops = append(rec.ops, linearize.Op{ClientID: client, Call: call, Ret: ret, Input: in, Output: out})
	rec.mu.Unlock()
}

// acquireCode maps a typed acquire error to a model output.
func acquireCode(err error) string {
	switch {
	case errors.Is(err, ErrNoWait):
		return "busy"
	case errors.Is(err, ErrWaitTimeout):
		return "timeout"
	case errors.Is(err, ErrQueueFull):
		return "queuefull"
	case errors.Is(err, ErrShed), errors.Is(err, ErrDegraded):
		return "shed"
	case errors.Is(err, ErrClosed):
		return "closed"
	}
	return "unknown:" + err.Error()
}

func releaseCode(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNotHeld):
		return "notheld"
	case errors.Is(err, ErrLeaseExpired):
		return "expired"
	case errors.Is(err, ErrRevoked):
		return "revoked"
	}
	return "unknown:" + err.Error()
}

// runHistory executes one randomized concurrent run against a
// single-shard service and returns the recorded history. Leases use a
// long TTL so expiry never interferes; expiry has its own scenario.
func runHistory(t *testing.T, kind locks.Kind, seed int64, mut func(*Config)) []linearize.Op {
	t.Helper()
	cfg := Config{
		Shards:     1,
		Lock:       kind,
		QueueDepth: 8,
		DefaultTTL: time.Minute,
		NoSweeper:  true,
	}
	if mut != nil {
		mut(&cfg)
	}
	rec := &recorder{}
	cfg.OnExpire = func(l Lease) {
		// Expiry linearizes somewhere before the callback; Call=0 is the
		// sound (maximally wide) lower bound. Exactly-once and
		// held-by-token legality still come from the model.
		rec.add(-1, 0, rec.tick(), expIn{Res: l.Resource, Token: l.Token}, nil)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 3
	const opsPerClient = 6
	resources := []string{"a", "b"}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1315423911 + int64(c)))
			owner := fmt.Sprintf("c%d", c)
			held := map[string]uint64{} // res -> token currently held
			var past []relIn            // released tokens, for double-release probes
			for i := 0; i < opsPerClient; i++ {
				res := resources[rng.Intn(len(resources))]
				switch {
				case held[res] != 0 && rng.Intn(100) < 80:
					// Release what we hold.
					in := relIn{Res: res, Token: held[res]}
					call := rec.tick()
					err := s.Release(in.Res, in.Token)
					rec.add(c, call, rec.tick(), in, releaseCode(err))
					past = append(past, in)
					delete(held, res)
				case len(past) > 0 && rng.Intn(100) < 15:
					// Double release of a stale token.
					in := past[rng.Intn(len(past))]
					call := rec.tick()
					err := s.Release(in.Res, in.Token)
					rec.add(c, call, rec.tick(), in, releaseCode(err))
				case rng.Intn(100) < 10:
					in := revIn{Res: res}
					call := rec.tick()
					l, ok, err := s.Revoke(in.Res)
					if err != nil {
						t.Errorf("revoke: %v", err)
						return
					}
					var tok uint64
					if ok {
						tok = l.Token
					}
					rec.add(c, call, rec.tick(), in, tok)
				default:
					in := acqIn{Res: res, NoWait: rng.Intn(100) < 25}
					opt := AcquireOptions{Wait: !in.NoWait, MaxWait: 2 * time.Millisecond}
					call := rec.tick()
					l, err := s.Acquire(in.Res, owner, opt)
					ret := rec.tick()
					if err != nil {
						rec.add(c, call, ret, in, acquireCode(err))
					} else {
						rec.add(c, call, ret, in, l.Token)
						if old := held[res]; old != 0 {
							// A re-grant while we still track a token means the
							// old lease was revoked out from under us (the
							// checker verifies that); keep the dead token as a
							// double-release probe.
							past = append(past, relIn{Res: res, Token: old})
						}
						held[res] = l.Token
					}
				}
				for k := rng.Intn(3); k > 0; k-- {
					runtime.Gosched()
				}
			}
			// Drop remaining leases so later histories in shared services
			// would start clean; here it also exercises final releases.
			for res, tok := range held {
				in := relIn{Res: res, Token: tok}
				call := rec.tick()
				err := s.Release(in.Res, in.Token)
				rec.add(c, call, rec.tick(), in, releaseCode(err))
			}
		}(c)
	}
	wg.Wait()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.ops
}

// TestLinearizability runs 500 randomized histories per lock primitive
// under the race detector and checks each against the sequential lease
// model. Failure prints the seed for replay.
func TestLinearizability(t *testing.T) {
	const histories = 500
	for _, kind := range locks.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < histories; i++ {
				seed := int64(i) + 1
				h := runHistory(t, kind, seed, nil)
				if ok, why := linearize.Check(leaseModel{}, h); !ok {
					t.Fatalf("seed %d: history not linearizable:\n%s\nhistory:\n%s", seed, why, dumpHistory(h))
				}
			}
		})
	}
}

// TestLinearizabilityBroadcast covers the baseline grant policy with a
// smaller budget: the re-contention path has different interleavings.
func TestLinearizabilityBroadcast(t *testing.T) {
	const histories = 100
	for i := 0; i < histories; i++ {
		seed := int64(i) + 10_000
		h := runHistory(t, locks.KindMCS, seed, func(c *Config) { c.Policy = PolicyBroadcast })
		if ok, why := linearize.Check(leaseModel{}, h); !ok {
			t.Fatalf("seed %d: broadcast history not linearizable:\n%s\nhistory:\n%s", seed, why, dumpHistory(h))
		}
	}
}

// TestLinearizabilityCatchesBrokenHandoff is the harness's own
// regression test: with the seeded hand-off bug enabled (the releaser
// "forgets" to record the transfer, so the grantee's lease is not the
// holder), randomized histories must fail the check. If this test ever
// passes with the bug enabled, the harness has lost its teeth.
func TestLinearizabilityCatchesBrokenHandoff(t *testing.T) {
	const attempts = 50
	for i := 0; i < attempts; i++ {
		seed := int64(i) + 20_000
		h := runHistory(t, locks.KindMCS, seed, func(c *Config) { c.brokenHandoff = true })
		if ok, _ := linearize.Check(leaseModel{}, h); !ok {
			return // caught, as required
		}
	}
	t.Fatalf("seeded hand-off bug survived %d randomized histories; the harness is blind", attempts)
}

// TestCrashClientExpiresExactlyOnce is the crash-client scenario: a
// holder vanishes without releasing, its lease must expire exactly once,
// the queued waiters are granted in turn, and the full concurrent
// history (including the expiry and the crasher's late release)
// linearizes against the lease model.
func TestCrashClientExpiresExactlyOnce(t *testing.T) {
	rec := &recorder{}
	var expiries atomic.Int64
	clk := NewFakeClock()
	s, err := New(Config{
		Shards:     1,
		QueueDepth: 8,
		DefaultTTL: time.Second,
		Clock:      clk,
		NoSweeper:  true,
		OnExpire: func(l Lease) {
			expiries.Add(1)
			rec.add(-1, 0, rec.tick(), expIn{Res: l.Resource, Token: l.Token}, nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The crasher takes the lease and never releases.
	call := rec.tick()
	crashed, err := s.Acquire("r", "crasher", AcquireOptions{TTL: time.Second})
	rec.add(0, call, rec.tick(), acqIn{Res: "r"}, crashed.Token)
	if err != nil {
		t.Fatal(err)
	}

	const patients = 2
	var wg sync.WaitGroup
	for p := 0; p < patients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			in := acqIn{Res: "r"}
			call := rec.tick()
			l, err := s.Acquire("r", fmt.Sprintf("p%d", p), AcquireOptions{Wait: true})
			ret := rec.tick()
			if err != nil {
				rec.add(1+p, call, ret, in, acquireCode(err))
				t.Errorf("patient %d: %v", p, err)
				return
			}
			rec.add(1+p, call, ret, in, l.Token)
			rin := relIn{Res: "r", Token: l.Token}
			call = rec.tick()
			rerr := s.Release(rin.Res, rin.Token)
			rec.add(1+p, call, rec.tick(), rin, releaseCode(rerr))
		}(p)
	}
	waitQueued(t, s, "r", patients)
	clk.Advance(1100 * time.Millisecond)
	if n := s.SweepExpired(); n != 1 {
		t.Fatalf("sweep expired %d, want 1", n)
	}
	wg.Wait()
	// Redundant sweeps must not double-expire.
	s.SweepExpired()
	s.SweepExpired()

	// The crasher comes back and learns its lease died.
	rin := relIn{Res: "r", Token: crashed.Token}
	call = rec.tick()
	rerr := s.Release(rin.Res, rin.Token)
	rec.add(0, call, rec.tick(), rin, releaseCode(rerr))
	if !errors.Is(rerr, ErrLeaseExpired) {
		t.Fatalf("crasher's late release: %v, want ErrLeaseExpired", rerr)
	}

	if n := expiries.Load(); n != 1 {
		t.Fatalf("lease expired %d times, want exactly once", n)
	}
	rec.mu.Lock()
	h := append([]linearize.Op(nil), rec.ops...)
	rec.mu.Unlock()
	if ok, why := linearize.Check(leaseModel{}, h); !ok {
		t.Fatalf("crash-client history not linearizable:\n%s\nhistory:\n%s", why, dumpHistory(h))
	}
}

func dumpHistory(h []linearize.Op) string {
	var b strings.Builder
	for _, op := range h {
		fmt.Fprintf(&b, "  client %d [%d,%d] %v -> %v\n", op.ClientID, op.Call, op.Ret, op.Input, op.Output)
	}
	return strings.TrimRight(b.String(), "\n")
}
