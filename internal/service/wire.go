package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// The lockserve wire protocol. Every frame is:
//
//	byte 0      protocol version (WireVersion, WireVersion2, or WireVersion3)
//	byte 1      op code
//	bytes 2..3  big-endian payload length (≤ MaxPayload)
//	bytes 4..   payload
//
// Strings are u16-length-prefixed UTF-8 (not validated as UTF-8; the
// service treats names as opaque bytes). Durations travel as u32
// milliseconds, absolute deadlines as u64 UnixNano. The codec is
// strict: unknown versions, unknown ops, oversized fields, and payloads
// whose length does not exactly match their fields are all typed
// *WireError rejections — the fuzz target (FuzzServiceWire) holds the
// codec to "parse exactly or reject, never panic, and re-encode parsed
// frames byte-identically".
//
// Version 2 adds the network-fault-tolerance fields:
//
//   - OpAcquire carries an absolute client deadline (deadline
//     propagation: the server clamps its queued wait to the remaining
//     budget, so an abandoned client cannot pin a server goroutine).
//   - OpRelease carries the lease's fencing token, so a zombie holder's
//     stale release is rejected with the typed ErrFenced instead of a
//     generic ErrNotHeld.
//   - OpResume (v2+) re-validates a held lease after a reconnect:
//     resource + token + fence in, the live lease or a typed loss
//     verdict out.
//   - OpGranted carries the lease's fencing token.
//   - OpError carries a retry-after hint (milliseconds) on shed-class
//     refusals — the server inserting a delay into the client's retry
//     loop, which is the paper's delay-insertion argument applied to
//     the re-arrival herd after a fault.
//
// Version 3 adds pipelining: every v3 payload begins with a big-endian
// u64 request ID, and responses echo the ID of the request they answer.
// IDs are what let one connection carry a window of outstanding ops with
// responses returning in completion order — the demultiplexing router in
// Client matches them back up. The ID lives in the payload (not the
// header) deliberately: the frame envelope is identical across versions,
// so frame-aware middleboxes (the chaos proxy) relay v3 traffic without
// changes. A v3 server answers each request in the version it arrived
// in; v1/v2 connections keep their strict one-in-flight discipline.
//
// A v2+ server still accepts well-formed v1 frames (and answers them in
// v1); malformed frames of any version are rejected typed, never hung
// on.
const (
	WireVersion  = 1
	WireVersion2 = 2
	WireVersion3 = 3
	// MaxPayload bounds one frame's payload; MaxResourceLen/MaxOwnerLen
	// bound the name fields.
	MaxPayload     = 1024
	MaxResourceLen = 256
	MaxOwnerLen    = 128
	wireHeaderLen  = 4
	// wireIDLen is the v3 request-ID prefix inside the payload.
	wireIDLen = 8
)

// Request op codes.
const (
	OpAcquire uint8 = 1
	OpRelease uint8 = 2
	OpPing    uint8 = 3
	// OpResume re-validates a lease over a fresh connection (wire v2+):
	// the server answers OpGranted if the token still holds the
	// resource, or the typed reason it no longer does.
	OpResume uint8 = 4
)

// Response op codes.
const (
	OpGranted uint8 = 129
	OpOK      uint8 = 130
	OpError   uint8 = 131
)

// Wire error codes carried by OpError responses; each maps to one typed
// service error so clients classify without string matching.
const (
	CodeNotHeld   uint8 = 1
	CodeExpired   uint8 = 2
	CodeClosed    uint8 = 3
	CodeQueueFull uint8 = 4
	CodeShed      uint8 = 5
	CodeDegraded  uint8 = 6
	CodeTimeout   uint8 = 7
	CodeNoWait    uint8 = 8
	CodeRevoked   uint8 = 9
	CodeBadFrame  uint8 = 10
	CodeInternal  uint8 = 11
	// CodeFenced: the release/resume named a lease that was fenced off —
	// a newer lease has been granted on the resource since (wire v2).
	CodeFenced uint8 = 12
	// CodeDraining: the server is draining for shutdown and refuses new
	// acquires; the retry-after hint says when to try elsewhere (wire v2).
	CodeDraining uint8 = 13
)

// WireError is a malformed-frame rejection.
type WireError struct{ Msg string }

func (e *WireError) Error() string { return "service: wire: " + e.Msg }

func wireErrf(format string, args ...any) error {
	return &WireError{Msg: fmt.Sprintf(format, args...)}
}

// Request is one decoded client frame.
type Request struct {
	// Version is the frame's wire version; 0 encodes as v1 so existing
	// construction sites are unchanged. ReadRequest always sets it.
	Version  uint8
	Op       uint8
	Resource string
	Owner    string        // OpAcquire
	TTL      time.Duration // OpAcquire; millisecond granularity
	MaxWait  time.Duration // OpAcquire; millisecond granularity
	Wait     bool          // OpAcquire
	Token    uint64        // OpRelease, OpResume
	// Fence is the lease's fencing token (v2+ OpRelease, OpResume).
	Fence uint64
	// Deadline is the client's absolute per-op deadline, UnixNano
	// (v2+ OpAcquire; 0 = none).
	Deadline int64
	// ID is the pipelining request ID (wire v3 only); the response to
	// this request echoes it. 0 is a legal ID (the lock-step clients use
	// it), but pipelined clients assign IDs from 1 upward.
	ID uint64
}

// Response is one decoded server frame.
type Response struct {
	// Version mirrors Request.Version; servers answer in the version the
	// request arrived in.
	Version  uint8
	Op       uint8
	Token    uint64 // OpGranted
	Deadline int64  // OpGranted; UnixNano
	Fence    uint64 // OpGranted (v2+)
	Code     uint8  // OpError
	Msg      string // OpError
	// RetryAfter is the server's back-off hint on shed-class errors
	// (v2+ OpError; millisecond granularity, 0 = none).
	RetryAfter time.Duration
	// ID echoes the request's pipelining ID (wire v3 only).
	ID uint64
}

// version resolves the 0-means-v1 default.
func frameVersion(v uint8) uint8 {
	if v == 0 {
		return WireVersion
	}
	return v
}

// appendString encodes a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// takeBytes decodes a u16-length-prefixed field bounded by max. The
// returned slice aliases b (the decoder's scratch); callers must copy or
// intern before the next frame is read.
func takeBytes(b []byte, max int, what string) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, wireErrf("truncated %s length", what)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > max {
		return nil, nil, wireErrf("%s length %d exceeds %d", what, n, max)
	}
	if len(b) < n {
		return nil, nil, wireErrf("truncated %s", what)
	}
	return b[:n], b[n:], nil
}

// durMS bounds a duration to the u32-millisecond wire range.
func durMS(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	return uint32(ms)
}

// AppendRequest encodes a request frame onto b. The frame's version is
// req.Version (0 = v1); fields a version does not carry are an encoding
// error, not silent truncation. The encode is allocation-free when b has
// capacity: fields append in place and the length is patched afterward.
func AppendRequest(b []byte, req Request) ([]byte, error) {
	v := frameVersion(req.Version)
	if v != WireVersion && v != WireVersion2 && v != WireVersion3 {
		return nil, wireErrf("unknown request version %d", v)
	}
	if req.ID != 0 && v != WireVersion3 {
		return nil, wireErrf("request id requires wire v3")
	}
	if len(req.Resource) > MaxResourceLen {
		return nil, wireErrf("resource length %d exceeds %d", len(req.Resource), MaxResourceLen)
	}
	if len(req.Owner) > MaxOwnerLen {
		return nil, wireErrf("owner length %d exceeds %d", len(req.Owner), MaxOwnerLen)
	}
	start := len(b)
	b = append(b, v, req.Op, 0, 0)
	if v == WireVersion3 {
		b = binary.BigEndian.AppendUint64(b, req.ID)
	}
	switch req.Op {
	case OpAcquire:
		b = appendString(b, req.Resource)
		b = appendString(b, req.Owner)
		b = binary.BigEndian.AppendUint32(b, durMS(req.TTL))
		b = binary.BigEndian.AppendUint32(b, durMS(req.MaxWait))
		var flags uint8
		if req.Wait {
			flags |= 1
		}
		b = append(b, flags)
		if v >= WireVersion2 {
			if req.Deadline < 0 {
				return nil, wireErrf("negative acquire deadline %d", req.Deadline)
			}
			b = binary.BigEndian.AppendUint64(b, uint64(req.Deadline))
		} else if req.Deadline != 0 {
			return nil, wireErrf("acquire deadline requires wire v2")
		}
	case OpRelease:
		b = appendString(b, req.Resource)
		b = binary.BigEndian.AppendUint64(b, req.Token)
		if v >= WireVersion2 {
			b = binary.BigEndian.AppendUint64(b, req.Fence)
		} else if req.Fence != 0 {
			return nil, wireErrf("release fence requires wire v2")
		}
	case OpResume:
		if v < WireVersion2 {
			return nil, wireErrf("resume requires wire v2")
		}
		b = appendString(b, req.Resource)
		b = binary.BigEndian.AppendUint64(b, req.Token)
		b = binary.BigEndian.AppendUint64(b, req.Fence)
	case OpPing:
	default:
		return nil, wireErrf("unknown request op %d", req.Op)
	}
	return finishFrame(b, start)
}

// AppendResponse encodes a response frame onto b, allocation-free when b
// has capacity.
func AppendResponse(b []byte, resp Response) ([]byte, error) {
	v := frameVersion(resp.Version)
	if v != WireVersion && v != WireVersion2 && v != WireVersion3 {
		return nil, wireErrf("unknown response version %d", v)
	}
	if resp.ID != 0 && v != WireVersion3 {
		return nil, wireErrf("response id requires wire v3")
	}
	start := len(b)
	b = append(b, v, resp.Op, 0, 0)
	if v == WireVersion3 {
		b = binary.BigEndian.AppendUint64(b, resp.ID)
	}
	switch resp.Op {
	case OpGranted:
		b = binary.BigEndian.AppendUint64(b, resp.Token)
		b = binary.BigEndian.AppendUint64(b, uint64(resp.Deadline))
		if v >= WireVersion2 {
			b = binary.BigEndian.AppendUint64(b, resp.Fence)
		} else if resp.Fence != 0 {
			return nil, wireErrf("granted fence requires wire v2")
		}
	case OpOK:
	case OpError:
		msg := resp.Msg
		if len(msg) > MaxResourceLen {
			msg = msg[:MaxResourceLen]
		}
		b = append(b, resp.Code)
		b = appendString(b, msg)
		if v >= WireVersion2 {
			b = binary.BigEndian.AppendUint32(b, durMS(resp.RetryAfter))
		} else if resp.RetryAfter != 0 {
			return nil, wireErrf("retry-after hint requires wire v2")
		}
	default:
		return nil, wireErrf("unknown response op %d", resp.Op)
	}
	return finishFrame(b, start)
}

// finishFrame patches the frame's length field once the payload is in
// place.
func finishFrame(b []byte, start int) ([]byte, error) {
	n := len(b) - start - wireHeaderLen
	if n > MaxPayload {
		return nil, wireErrf("payload length %d exceeds %d", n, MaxPayload)
	}
	binary.BigEndian.PutUint16(b[start+2:], uint16(n))
	return b, nil
}

// Decoder reads wire frames with zero steady-state allocations: the
// payload is read into a reusable scratch buffer and name strings are
// interned in a bounded per-decoder table (repeat names — the hot path —
// hit the map without allocating; Go elides the []byte→string conversion
// in map lookups). A Decoder is what every long-lived connection should
// read through; it is not safe for concurrent use. The zero value is
// ready.
type Decoder struct {
	scratch []byte
	names   map[string]string
}

// NewDecoder returns a connection-lifetime frame decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// maxInternedNames bounds each decoder's name table so an adversarial
// peer streaming unique names cannot grow it without bound; names past
// the cap still decode, they just allocate.
const maxInternedNames = 4096

// intern maps field bytes to a stable string, allocation-free once the
// name has been seen.
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.names == nil {
		d.names = make(map[string]string)
	}
	if len(d.names) < maxInternedNames {
		d.names[s] = s
	}
	return s
}

// readFrame reads one frame header + payload from r into the decoder's
// scratch buffer; the returned payload aliases it.
func (d *Decoder) readFrame(r io.Reader) (version, op uint8, payload []byte, err error) {
	// The header reads through the scratch buffer too: a stack array
	// would escape through the io.Reader interface and cost one heap
	// allocation per frame.
	if cap(d.scratch) < wireHeaderLen {
		d.scratch = make([]byte, 0, MaxPayload)
	}
	hdr := d.scratch[:wireHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err // io.EOF between frames is a clean close
	}
	if hdr[0] < WireVersion || hdr[0] > WireVersion3 {
		return 0, 0, nil, wireErrf("unknown protocol version %d", hdr[0])
	}
	version, op = hdr[0], hdr[1]
	n := int(binary.BigEndian.Uint16(hdr[2:]))
	if n > MaxPayload {
		return 0, 0, nil, wireErrf("payload length %d exceeds %d", n, MaxPayload)
	}
	if cap(d.scratch) < n {
		d.scratch = make([]byte, 0, MaxPayload)
	}
	// Overwrites the header bytes; they are already parsed into locals.
	payload = d.scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		// A mid-payload cut is a transport fault (the peer or the network
		// died), not a protocol violation: wrap rather than convert to
		// *WireError so it classifies retryable.
		return 0, 0, nil, fmt.Errorf("service: wire: truncated payload: %w", err)
	}
	return version, op, payload, nil
}

// takeU64 pops a big-endian u64; the caller has already length-checked.
func takeU64(b []byte) (uint64, []byte) {
	return binary.BigEndian.Uint64(b), b[8:]
}

// takeID strips the v3 request-ID prefix; other versions carry none.
func takeID(version uint8, payload []byte) (uint64, []byte, error) {
	if version != WireVersion3 {
		return 0, payload, nil
	}
	if len(payload) < wireIDLen {
		return 0, nil, wireErrf("truncated request id")
	}
	id, rest := takeU64(payload)
	return id, rest, nil
}

// ReadRequest decodes one request frame from r. io.EOF (and only a
// clean EOF at a frame boundary) passes through unchanged so servers
// can distinguish a closed connection from a malformed frame.
func (d *Decoder) ReadRequest(r io.Reader) (Request, error) {
	version, op, payload, err := d.readFrame(r)
	if err != nil {
		return Request{}, err
	}
	req := Request{Version: version, Op: op}
	if req.ID, payload, err = takeID(version, payload); err != nil {
		return Request{}, err
	}
	switch op {
	case OpAcquire:
		var res, owner []byte
		res, payload, err = takeBytes(payload, MaxResourceLen, "resource")
		if err != nil {
			return Request{}, err
		}
		owner, payload, err = takeBytes(payload, MaxOwnerLen, "owner")
		if err != nil {
			return Request{}, err
		}
		want := 9
		if version >= WireVersion2 {
			want = 17
		}
		if len(payload) != want {
			return Request{}, wireErrf("acquire payload has %d trailing bytes, want %d", len(payload), want)
		}
		req.TTL = time.Duration(binary.BigEndian.Uint32(payload)) * time.Millisecond
		req.MaxWait = time.Duration(binary.BigEndian.Uint32(payload[4:])) * time.Millisecond
		flags := payload[8]
		if flags > 1 {
			return Request{}, wireErrf("unknown acquire flags %#x", flags)
		}
		req.Wait = flags&1 != 0
		if version >= WireVersion2 {
			dl := binary.BigEndian.Uint64(payload[9:])
			if dl > uint64(1)<<63-1 {
				return Request{}, wireErrf("acquire deadline %#x out of range", dl)
			}
			req.Deadline = int64(dl)
		}
		if len(res) == 0 {
			return Request{}, wireErrf("empty resource")
		}
		req.Resource = d.intern(res)
		req.Owner = d.intern(owner)
	case OpRelease, OpResume:
		if op == OpResume && version < WireVersion2 {
			return Request{}, wireErrf("resume requires wire v2")
		}
		var res []byte
		res, payload, err = takeBytes(payload, MaxResourceLen, "resource")
		if err != nil {
			return Request{}, err
		}
		want := 8
		if version >= WireVersion2 {
			want = 16
		}
		if len(payload) != want {
			return Request{}, wireErrf("%s payload has %d trailing bytes, want %d", opName(op), len(payload), want)
		}
		req.Token, payload = takeU64(payload)
		if version >= WireVersion2 {
			req.Fence, _ = takeU64(payload)
		}
		if len(res) == 0 {
			return Request{}, wireErrf("empty resource")
		}
		req.Resource = d.intern(res)
	case OpPing:
		if len(payload) != 0 {
			return Request{}, wireErrf("ping payload has %d bytes, want 0", len(payload))
		}
	default:
		return Request{}, wireErrf("unknown request op %d", op)
	}
	return req, nil
}

func opName(op uint8) string {
	switch op {
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpPing:
		return "ping"
	case OpResume:
		return "resume"
	}
	return fmt.Sprintf("op%d", op)
}

// ReadResponse decodes one response frame from r.
func (d *Decoder) ReadResponse(r io.Reader) (Response, error) {
	version, op, payload, err := d.readFrame(r)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Version: version, Op: op}
	if resp.ID, payload, err = takeID(version, payload); err != nil {
		return Response{}, err
	}
	switch op {
	case OpGranted:
		want := 16
		if version >= WireVersion2 {
			want = 24
		}
		if len(payload) != want {
			return Response{}, wireErrf("granted payload has %d bytes, want %d", len(payload), want)
		}
		resp.Token = binary.BigEndian.Uint64(payload)
		resp.Deadline = int64(binary.BigEndian.Uint64(payload[8:]))
		if version >= WireVersion2 {
			resp.Fence = binary.BigEndian.Uint64(payload[16:])
		}
	case OpOK:
		if len(payload) != 0 {
			return Response{}, wireErrf("ok payload has %d bytes, want 0", len(payload))
		}
	case OpError:
		if len(payload) < 1 {
			return Response{}, wireErrf("error payload empty")
		}
		resp.Code = payload[0]
		msg, rest, err := takeBytes(payload[1:], MaxResourceLen, "message")
		if err != nil {
			return Response{}, err
		}
		resp.Msg = string(msg)
		if version >= WireVersion2 {
			if len(rest) != 4 {
				return Response{}, wireErrf("error payload has %d trailing bytes, want 4", len(rest))
			}
			resp.RetryAfter = time.Duration(binary.BigEndian.Uint32(rest)) * time.Millisecond
		} else if len(rest) != 0 {
			return Response{}, wireErrf("error payload has %d trailing bytes", len(rest))
		}
	default:
		return Response{}, wireErrf("unknown response op %d", op)
	}
	return resp, nil
}

// ReadRequest decodes one request frame from r with a throwaway decoder;
// long-lived connections should hold a Decoder instead (zero-alloc
// steady state).
func ReadRequest(r io.Reader) (Request, error) {
	var d Decoder
	return d.ReadRequest(r)
}

// ReadResponse decodes one response frame from r with a throwaway
// decoder; long-lived connections should hold a Decoder instead.
func ReadResponse(r io.Reader) (Response, error) {
	var d Decoder
	return d.ReadResponse(r)
}

// errorCode maps a typed service error to its wire code.
func errorCode(err error) uint8 {
	switch {
	case errors.Is(err, ErrNotHeld):
		return CodeNotHeld
	case errors.Is(err, ErrLeaseExpired):
		return CodeExpired
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrDegraded):
		return CodeDegraded
	case errors.Is(err, ErrWaitTimeout):
		return CodeTimeout
	case errors.Is(err, ErrNoWait):
		return CodeNoWait
	case errors.Is(err, ErrRevoked):
		return CodeRevoked
	case errors.Is(err, ErrFenced):
		return CodeFenced
	case errors.Is(err, ErrDraining):
		return CodeDraining
	}
	return CodeInternal
}

// shedClass reports whether a wire code names a load-shedding refusal
// that deserves a retry-after hint.
func shedClass(code uint8) bool {
	switch code {
	case CodeQueueFull, CodeShed, CodeDegraded, CodeDraining:
		return true
	}
	return false
}

// codeError maps a decoded error response back to the typed service
// error; the client side of errorCode. A v2 retry-after hint is wrapped
// around the sentinel (see RetryAfterHint).
func codeError(resp Response) error {
	var err error
	switch resp.Code {
	case CodeNotHeld:
		err = ErrNotHeld
	case CodeExpired:
		err = ErrLeaseExpired
	case CodeClosed:
		err = ErrClosed
	case CodeQueueFull:
		err = ErrQueueFull
	case CodeShed:
		err = ErrShed
	case CodeDegraded:
		err = ErrDegraded
	case CodeTimeout:
		err = ErrWaitTimeout
	case CodeNoWait:
		err = ErrNoWait
	case CodeRevoked:
		err = ErrRevoked
	case CodeFenced:
		err = ErrFenced
	case CodeDraining:
		err = ErrDraining
	case CodeBadFrame:
		return &WireError{Msg: resp.Msg}
	default:
		return fmt.Errorf("service: server error: %s", resp.Msg)
	}
	if resp.RetryAfter > 0 {
		return &RetryAfterError{Err: err, After: resp.RetryAfter}
	}
	return err
}
