package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// The lockserve wire protocol, version 1. Every frame is:
//
//	byte 0      protocol version (WireVersion)
//	byte 1      op code
//	bytes 2..3  big-endian payload length (≤ MaxPayload)
//	bytes 4..   payload
//
// Strings are u16-length-prefixed UTF-8 (not validated as UTF-8; the
// service treats names as opaque bytes). Durations travel as u32
// milliseconds. The codec is strict: unknown versions, unknown ops,
// oversized fields, and payloads whose length does not exactly match
// their fields are all typed *WireError rejections — the fuzz target
// (FuzzServiceWire) holds the codec to "parse exactly or reject, never
// panic, and re-encode parsed frames byte-identically".
const (
	WireVersion = 1
	// MaxPayload bounds one frame's payload; MaxResourceLen/MaxOwnerLen
	// bound the name fields.
	MaxPayload     = 1024
	MaxResourceLen = 256
	MaxOwnerLen    = 128
	wireHeaderLen  = 4
)

// Request op codes.
const (
	OpAcquire uint8 = 1
	OpRelease uint8 = 2
	OpPing    uint8 = 3
)

// Response op codes.
const (
	OpGranted uint8 = 129
	OpOK      uint8 = 130
	OpError   uint8 = 131
)

// Wire error codes carried by OpError responses; each maps to one typed
// service error so clients classify without string matching.
const (
	CodeNotHeld   uint8 = 1
	CodeExpired   uint8 = 2
	CodeClosed    uint8 = 3
	CodeQueueFull uint8 = 4
	CodeShed      uint8 = 5
	CodeDegraded  uint8 = 6
	CodeTimeout   uint8 = 7
	CodeNoWait    uint8 = 8
	CodeRevoked   uint8 = 9
	CodeBadFrame  uint8 = 10
	CodeInternal  uint8 = 11
)

// WireError is a malformed-frame rejection.
type WireError struct{ Msg string }

func (e *WireError) Error() string { return "service: wire: " + e.Msg }

func wireErrf(format string, args ...any) error {
	return &WireError{Msg: fmt.Sprintf(format, args...)}
}

// Request is one decoded client frame.
type Request struct {
	Op       uint8
	Resource string
	Owner    string        // OpAcquire
	TTL      time.Duration // OpAcquire; millisecond granularity
	MaxWait  time.Duration // OpAcquire; millisecond granularity
	Wait     bool          // OpAcquire
	Token    uint64        // OpRelease
}

// Response is one decoded server frame.
type Response struct {
	Op       uint8
	Token    uint64 // OpGranted
	Deadline int64  // OpGranted; UnixNano
	Code     uint8  // OpError
	Msg      string // OpError
}

// appendString encodes a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// takeString decodes a u16-length-prefixed string bounded by max.
func takeString(b []byte, max int, what string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, wireErrf("truncated %s length", what)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > max {
		return "", nil, wireErrf("%s length %d exceeds %d", what, n, max)
	}
	if len(b) < n {
		return "", nil, wireErrf("truncated %s", what)
	}
	return string(b[:n]), b[n:], nil
}

// durMS bounds a duration to the u32-millisecond wire range.
func durMS(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	return uint32(ms)
}

// AppendRequest encodes a request frame onto b.
func AppendRequest(b []byte, req Request) ([]byte, error) {
	if len(req.Resource) > MaxResourceLen {
		return nil, wireErrf("resource length %d exceeds %d", len(req.Resource), MaxResourceLen)
	}
	if len(req.Owner) > MaxOwnerLen {
		return nil, wireErrf("owner length %d exceeds %d", len(req.Owner), MaxOwnerLen)
	}
	var payload []byte
	switch req.Op {
	case OpAcquire:
		payload = appendString(payload, req.Resource)
		payload = appendString(payload, req.Owner)
		payload = binary.BigEndian.AppendUint32(payload, durMS(req.TTL))
		payload = binary.BigEndian.AppendUint32(payload, durMS(req.MaxWait))
		var flags uint8
		if req.Wait {
			flags |= 1
		}
		payload = append(payload, flags)
	case OpRelease:
		payload = appendString(payload, req.Resource)
		payload = binary.BigEndian.AppendUint64(payload, req.Token)
	case OpPing:
	default:
		return nil, wireErrf("unknown request op %d", req.Op)
	}
	return appendFrame(b, req.Op, payload), nil
}

// AppendResponse encodes a response frame onto b.
func AppendResponse(b []byte, resp Response) ([]byte, error) {
	var payload []byte
	switch resp.Op {
	case OpGranted:
		payload = binary.BigEndian.AppendUint64(payload, resp.Token)
		payload = binary.BigEndian.AppendUint64(payload, uint64(resp.Deadline))
	case OpOK:
	case OpError:
		msg := resp.Msg
		if len(msg) > MaxResourceLen {
			msg = msg[:MaxResourceLen]
		}
		payload = append(payload, resp.Code)
		payload = appendString(payload, msg)
	default:
		return nil, wireErrf("unknown response op %d", resp.Op)
	}
	return appendFrame(b, resp.Op, payload), nil
}

func appendFrame(b []byte, op uint8, payload []byte) []byte {
	b = append(b, WireVersion, op)
	b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
	return append(b, payload...)
}

// readFrame reads one frame header + payload from r.
func readFrame(r io.Reader) (op uint8, payload []byte, err error) {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF between frames is a clean close
	}
	if hdr[0] != WireVersion {
		return 0, nil, wireErrf("unknown protocol version %d", hdr[0])
	}
	n := int(binary.BigEndian.Uint16(hdr[2:]))
	if n > MaxPayload {
		return 0, nil, wireErrf("payload length %d exceeds %d", n, MaxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, wireErrf("truncated payload: %v", err)
	}
	return hdr[1], payload, nil
}

// ReadRequest decodes one request frame from r. io.EOF (and only a
// clean EOF at a frame boundary) passes through unchanged so servers
// can distinguish a closed connection from a malformed frame.
func ReadRequest(r io.Reader) (Request, error) {
	op, payload, err := readFrame(r)
	if err != nil {
		return Request{}, err
	}
	req := Request{Op: op}
	switch op {
	case OpAcquire:
		var res, owner string
		res, payload, err = takeString(payload, MaxResourceLen, "resource")
		if err != nil {
			return Request{}, err
		}
		owner, payload, err = takeString(payload, MaxOwnerLen, "owner")
		if err != nil {
			return Request{}, err
		}
		if len(payload) != 9 {
			return Request{}, wireErrf("acquire payload has %d trailing bytes, want 9", len(payload))
		}
		req.Resource = res
		req.Owner = owner
		req.TTL = time.Duration(binary.BigEndian.Uint32(payload)) * time.Millisecond
		req.MaxWait = time.Duration(binary.BigEndian.Uint32(payload[4:])) * time.Millisecond
		flags := payload[8]
		if flags > 1 {
			return Request{}, wireErrf("unknown acquire flags %#x", flags)
		}
		req.Wait = flags&1 != 0
		if req.Resource == "" {
			return Request{}, wireErrf("empty resource")
		}
	case OpRelease:
		var res string
		res, payload, err = takeString(payload, MaxResourceLen, "resource")
		if err != nil {
			return Request{}, err
		}
		if len(payload) != 8 {
			return Request{}, wireErrf("release payload has %d trailing bytes, want 8", len(payload))
		}
		req.Resource = res
		req.Token = binary.BigEndian.Uint64(payload)
		if req.Resource == "" {
			return Request{}, wireErrf("empty resource")
		}
	case OpPing:
		if len(payload) != 0 {
			return Request{}, wireErrf("ping payload has %d bytes, want 0", len(payload))
		}
	default:
		return Request{}, wireErrf("unknown request op %d", op)
	}
	return req, nil
}

// ReadResponse decodes one response frame from r.
func ReadResponse(r io.Reader) (Response, error) {
	op, payload, err := readFrame(r)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Op: op}
	switch op {
	case OpGranted:
		if len(payload) != 16 {
			return Response{}, wireErrf("granted payload has %d bytes, want 16", len(payload))
		}
		resp.Token = binary.BigEndian.Uint64(payload)
		resp.Deadline = int64(binary.BigEndian.Uint64(payload[8:]))
	case OpOK:
		if len(payload) != 0 {
			return Response{}, wireErrf("ok payload has %d bytes, want 0", len(payload))
		}
	case OpError:
		if len(payload) < 1 {
			return Response{}, wireErrf("error payload empty")
		}
		resp.Code = payload[0]
		var msg string
		msg, rest, err := takeString(payload[1:], MaxResourceLen, "message")
		if err != nil {
			return Response{}, err
		}
		if len(rest) != 0 {
			return Response{}, wireErrf("error payload has %d trailing bytes", len(rest))
		}
		resp.Msg = msg
	default:
		return Response{}, wireErrf("unknown response op %d", op)
	}
	return resp, nil
}

// errorCode maps a typed service error to its wire code.
func errorCode(err error) uint8 {
	switch {
	case errors.Is(err, ErrNotHeld):
		return CodeNotHeld
	case errors.Is(err, ErrLeaseExpired):
		return CodeExpired
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrDegraded):
		return CodeDegraded
	case errors.Is(err, ErrWaitTimeout):
		return CodeTimeout
	case errors.Is(err, ErrNoWait):
		return CodeNoWait
	case errors.Is(err, ErrRevoked):
		return CodeRevoked
	}
	return CodeInternal
}

// codeError maps a wire code back to the typed service error; the
// client side of errorCode.
func codeError(code uint8, msg string) error {
	switch code {
	case CodeNotHeld:
		return ErrNotHeld
	case CodeExpired:
		return ErrLeaseExpired
	case CodeClosed:
		return ErrClosed
	case CodeQueueFull:
		return ErrQueueFull
	case CodeShed:
		return ErrShed
	case CodeDegraded:
		return ErrDegraded
	case CodeTimeout:
		return ErrWaitTimeout
	case CodeNoWait:
		return ErrNoWait
	case CodeRevoked:
		return ErrRevoked
	case CodeBadFrame:
		return &WireError{Msg: msg}
	}
	return fmt.Errorf("service: server error: %s", msg)
}
