package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// The lockserve wire protocol. Every frame is:
//
//	byte 0      protocol version (WireVersion or WireVersion2)
//	byte 1      op code
//	bytes 2..3  big-endian payload length (≤ MaxPayload)
//	bytes 4..   payload
//
// Strings are u16-length-prefixed UTF-8 (not validated as UTF-8; the
// service treats names as opaque bytes). Durations travel as u32
// milliseconds, absolute deadlines as u64 UnixNano. The codec is
// strict: unknown versions, unknown ops, oversized fields, and payloads
// whose length does not exactly match their fields are all typed
// *WireError rejections — the fuzz target (FuzzServiceWire) holds the
// codec to "parse exactly or reject, never panic, and re-encode parsed
// frames byte-identically".
//
// Version 2 adds the network-fault-tolerance fields:
//
//   - OpAcquire carries an absolute client deadline (deadline
//     propagation: the server clamps its queued wait to the remaining
//     budget, so an abandoned client cannot pin a server goroutine).
//   - OpRelease carries the lease's fencing token, so a zombie holder's
//     stale release is rejected with the typed ErrFenced instead of a
//     generic ErrNotHeld.
//   - OpResume (v2-only) re-validates a held lease after a reconnect:
//     resource + token + fence in, the live lease or a typed loss
//     verdict out.
//   - OpGranted carries the lease's fencing token.
//   - OpError carries a retry-after hint (milliseconds) on shed-class
//     refusals — the server inserting a delay into the client's retry
//     loop, which is the paper's delay-insertion argument applied to
//     the re-arrival herd after a fault.
//
// A v2 server still accepts well-formed v1 frames (and answers them in
// v1); malformed frames of either version are rejected typed, never
// hung on.
const (
	WireVersion  = 1
	WireVersion2 = 2
	// MaxPayload bounds one frame's payload; MaxResourceLen/MaxOwnerLen
	// bound the name fields.
	MaxPayload     = 1024
	MaxResourceLen = 256
	MaxOwnerLen    = 128
	wireHeaderLen  = 4
)

// Request op codes.
const (
	OpAcquire uint8 = 1
	OpRelease uint8 = 2
	OpPing    uint8 = 3
	// OpResume re-validates a lease over a fresh connection (wire v2
	// only): the server answers OpGranted if the token still holds the
	// resource, or the typed reason it no longer does.
	OpResume uint8 = 4
)

// Response op codes.
const (
	OpGranted uint8 = 129
	OpOK      uint8 = 130
	OpError   uint8 = 131
)

// Wire error codes carried by OpError responses; each maps to one typed
// service error so clients classify without string matching.
const (
	CodeNotHeld   uint8 = 1
	CodeExpired   uint8 = 2
	CodeClosed    uint8 = 3
	CodeQueueFull uint8 = 4
	CodeShed      uint8 = 5
	CodeDegraded  uint8 = 6
	CodeTimeout   uint8 = 7
	CodeNoWait    uint8 = 8
	CodeRevoked   uint8 = 9
	CodeBadFrame  uint8 = 10
	CodeInternal  uint8 = 11
	// CodeFenced: the release/resume named a lease that was fenced off —
	// a newer lease has been granted on the resource since (wire v2).
	CodeFenced uint8 = 12
	// CodeDraining: the server is draining for shutdown and refuses new
	// acquires; the retry-after hint says when to try elsewhere (wire v2).
	CodeDraining uint8 = 13
)

// WireError is a malformed-frame rejection.
type WireError struct{ Msg string }

func (e *WireError) Error() string { return "service: wire: " + e.Msg }

func wireErrf(format string, args ...any) error {
	return &WireError{Msg: fmt.Sprintf(format, args...)}
}

// Request is one decoded client frame.
type Request struct {
	// Version is the frame's wire version; 0 encodes as v1 so existing
	// construction sites are unchanged. ReadRequest always sets it.
	Version  uint8
	Op       uint8
	Resource string
	Owner    string        // OpAcquire
	TTL      time.Duration // OpAcquire; millisecond granularity
	MaxWait  time.Duration // OpAcquire; millisecond granularity
	Wait     bool          // OpAcquire
	Token    uint64        // OpRelease, OpResume
	// Fence is the lease's fencing token (v2 OpRelease, OpResume).
	Fence uint64
	// Deadline is the client's absolute per-op deadline, UnixNano
	// (v2 OpAcquire; 0 = none).
	Deadline int64
}

// Response is one decoded server frame.
type Response struct {
	// Version mirrors Request.Version; servers answer in the version the
	// request arrived in.
	Version  uint8
	Op       uint8
	Token    uint64 // OpGranted
	Deadline int64  // OpGranted; UnixNano
	Fence    uint64 // OpGranted (v2)
	Code     uint8  // OpError
	Msg      string // OpError
	// RetryAfter is the server's back-off hint on shed-class errors
	// (v2 OpError; millisecond granularity, 0 = none).
	RetryAfter time.Duration
}

// version resolves the 0-means-v1 default.
func frameVersion(v uint8) uint8 {
	if v == 0 {
		return WireVersion
	}
	return v
}

// appendString encodes a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// takeString decodes a u16-length-prefixed string bounded by max.
func takeString(b []byte, max int, what string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, wireErrf("truncated %s length", what)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > max {
		return "", nil, wireErrf("%s length %d exceeds %d", what, n, max)
	}
	if len(b) < n {
		return "", nil, wireErrf("truncated %s", what)
	}
	return string(b[:n]), b[n:], nil
}

// durMS bounds a duration to the u32-millisecond wire range.
func durMS(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	return uint32(ms)
}

// AppendRequest encodes a request frame onto b. The frame's version is
// req.Version (0 = v1); v2-only fields in a v1 request are an encoding
// error, not silent truncation.
func AppendRequest(b []byte, req Request) ([]byte, error) {
	v := frameVersion(req.Version)
	if v != WireVersion && v != WireVersion2 {
		return nil, wireErrf("unknown request version %d", v)
	}
	if len(req.Resource) > MaxResourceLen {
		return nil, wireErrf("resource length %d exceeds %d", len(req.Resource), MaxResourceLen)
	}
	if len(req.Owner) > MaxOwnerLen {
		return nil, wireErrf("owner length %d exceeds %d", len(req.Owner), MaxOwnerLen)
	}
	var payload []byte
	switch req.Op {
	case OpAcquire:
		payload = appendString(payload, req.Resource)
		payload = appendString(payload, req.Owner)
		payload = binary.BigEndian.AppendUint32(payload, durMS(req.TTL))
		payload = binary.BigEndian.AppendUint32(payload, durMS(req.MaxWait))
		var flags uint8
		if req.Wait {
			flags |= 1
		}
		payload = append(payload, flags)
		if v == WireVersion2 {
			if req.Deadline < 0 {
				return nil, wireErrf("negative acquire deadline %d", req.Deadline)
			}
			payload = binary.BigEndian.AppendUint64(payload, uint64(req.Deadline))
		} else if req.Deadline != 0 {
			return nil, wireErrf("acquire deadline requires wire v2")
		}
	case OpRelease:
		payload = appendString(payload, req.Resource)
		payload = binary.BigEndian.AppendUint64(payload, req.Token)
		if v == WireVersion2 {
			payload = binary.BigEndian.AppendUint64(payload, req.Fence)
		} else if req.Fence != 0 {
			return nil, wireErrf("release fence requires wire v2")
		}
	case OpResume:
		if v != WireVersion2 {
			return nil, wireErrf("resume requires wire v2")
		}
		payload = appendString(payload, req.Resource)
		payload = binary.BigEndian.AppendUint64(payload, req.Token)
		payload = binary.BigEndian.AppendUint64(payload, req.Fence)
	case OpPing:
	default:
		return nil, wireErrf("unknown request op %d", req.Op)
	}
	return appendFrame(b, v, req.Op, payload), nil
}

// AppendResponse encodes a response frame onto b.
func AppendResponse(b []byte, resp Response) ([]byte, error) {
	v := frameVersion(resp.Version)
	if v != WireVersion && v != WireVersion2 {
		return nil, wireErrf("unknown response version %d", v)
	}
	var payload []byte
	switch resp.Op {
	case OpGranted:
		payload = binary.BigEndian.AppendUint64(payload, resp.Token)
		payload = binary.BigEndian.AppendUint64(payload, uint64(resp.Deadline))
		if v == WireVersion2 {
			payload = binary.BigEndian.AppendUint64(payload, resp.Fence)
		} else if resp.Fence != 0 {
			return nil, wireErrf("granted fence requires wire v2")
		}
	case OpOK:
	case OpError:
		msg := resp.Msg
		if len(msg) > MaxResourceLen {
			msg = msg[:MaxResourceLen]
		}
		payload = append(payload, resp.Code)
		payload = appendString(payload, msg)
		if v == WireVersion2 {
			payload = binary.BigEndian.AppendUint32(payload, durMS(resp.RetryAfter))
		} else if resp.RetryAfter != 0 {
			return nil, wireErrf("retry-after hint requires wire v2")
		}
	default:
		return nil, wireErrf("unknown response op %d", resp.Op)
	}
	return appendFrame(b, v, resp.Op, payload), nil
}

func appendFrame(b []byte, version, op uint8, payload []byte) []byte {
	b = append(b, version, op)
	b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
	return append(b, payload...)
}

// readFrame reads one frame header + payload from r.
func readFrame(r io.Reader) (version, op uint8, payload []byte, err error) {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err // io.EOF between frames is a clean close
	}
	if hdr[0] != WireVersion && hdr[0] != WireVersion2 {
		return 0, 0, nil, wireErrf("unknown protocol version %d", hdr[0])
	}
	n := int(binary.BigEndian.Uint16(hdr[2:]))
	if n > MaxPayload {
		return 0, 0, nil, wireErrf("payload length %d exceeds %d", n, MaxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		// A mid-payload cut is a transport fault (the peer or the network
		// died), not a protocol violation: wrap rather than convert to
		// *WireError so it classifies retryable.
		return 0, 0, nil, fmt.Errorf("service: wire: truncated payload: %w", err)
	}
	return hdr[0], hdr[1], payload, nil
}

// takeU64 pops a big-endian u64; the caller has already length-checked.
func takeU64(b []byte) (uint64, []byte) {
	return binary.BigEndian.Uint64(b), b[8:]
}

// ReadRequest decodes one request frame from r. io.EOF (and only a
// clean EOF at a frame boundary) passes through unchanged so servers
// can distinguish a closed connection from a malformed frame.
func ReadRequest(r io.Reader) (Request, error) {
	version, op, payload, err := readFrame(r)
	if err != nil {
		return Request{}, err
	}
	req := Request{Version: version, Op: op}
	switch op {
	case OpAcquire:
		var res, owner string
		res, payload, err = takeString(payload, MaxResourceLen, "resource")
		if err != nil {
			return Request{}, err
		}
		owner, payload, err = takeString(payload, MaxOwnerLen, "owner")
		if err != nil {
			return Request{}, err
		}
		want := 9
		if version == WireVersion2 {
			want = 17
		}
		if len(payload) != want {
			return Request{}, wireErrf("acquire payload has %d trailing bytes, want %d", len(payload), want)
		}
		req.Resource = res
		req.Owner = owner
		req.TTL = time.Duration(binary.BigEndian.Uint32(payload)) * time.Millisecond
		req.MaxWait = time.Duration(binary.BigEndian.Uint32(payload[4:])) * time.Millisecond
		flags := payload[8]
		if flags > 1 {
			return Request{}, wireErrf("unknown acquire flags %#x", flags)
		}
		req.Wait = flags&1 != 0
		if version == WireVersion2 {
			d := binary.BigEndian.Uint64(payload[9:])
			if d > uint64(1)<<63-1 {
				return Request{}, wireErrf("acquire deadline %#x out of range", d)
			}
			req.Deadline = int64(d)
		}
		if req.Resource == "" {
			return Request{}, wireErrf("empty resource")
		}
	case OpRelease, OpResume:
		if op == OpResume && version != WireVersion2 {
			return Request{}, wireErrf("resume requires wire v2")
		}
		var res string
		res, payload, err = takeString(payload, MaxResourceLen, "resource")
		if err != nil {
			return Request{}, err
		}
		want := 8
		if version == WireVersion2 {
			want = 16
		}
		if len(payload) != want {
			return Request{}, wireErrf("%s payload has %d trailing bytes, want %d", opName(op), len(payload), want)
		}
		req.Resource = res
		req.Token, payload = takeU64(payload)
		if version == WireVersion2 {
			req.Fence, _ = takeU64(payload)
		}
		if req.Resource == "" {
			return Request{}, wireErrf("empty resource")
		}
	case OpPing:
		if len(payload) != 0 {
			return Request{}, wireErrf("ping payload has %d bytes, want 0", len(payload))
		}
	default:
		return Request{}, wireErrf("unknown request op %d", op)
	}
	return req, nil
}

func opName(op uint8) string {
	switch op {
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpPing:
		return "ping"
	case OpResume:
		return "resume"
	}
	return fmt.Sprintf("op%d", op)
}

// ReadResponse decodes one response frame from r.
func ReadResponse(r io.Reader) (Response, error) {
	version, op, payload, err := readFrame(r)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Version: version, Op: op}
	switch op {
	case OpGranted:
		want := 16
		if version == WireVersion2 {
			want = 24
		}
		if len(payload) != want {
			return Response{}, wireErrf("granted payload has %d bytes, want %d", len(payload), want)
		}
		resp.Token = binary.BigEndian.Uint64(payload)
		resp.Deadline = int64(binary.BigEndian.Uint64(payload[8:]))
		if version == WireVersion2 {
			resp.Fence = binary.BigEndian.Uint64(payload[16:])
		}
	case OpOK:
		if len(payload) != 0 {
			return Response{}, wireErrf("ok payload has %d bytes, want 0", len(payload))
		}
	case OpError:
		if len(payload) < 1 {
			return Response{}, wireErrf("error payload empty")
		}
		resp.Code = payload[0]
		var msg string
		msg, rest, err := takeString(payload[1:], MaxResourceLen, "message")
		if err != nil {
			return Response{}, err
		}
		resp.Msg = msg
		if version == WireVersion2 {
			if len(rest) != 4 {
				return Response{}, wireErrf("error payload has %d trailing bytes, want 4", len(rest))
			}
			resp.RetryAfter = time.Duration(binary.BigEndian.Uint32(rest)) * time.Millisecond
		} else if len(rest) != 0 {
			return Response{}, wireErrf("error payload has %d trailing bytes", len(rest))
		}
	default:
		return Response{}, wireErrf("unknown response op %d", op)
	}
	return resp, nil
}

// errorCode maps a typed service error to its wire code.
func errorCode(err error) uint8 {
	switch {
	case errors.Is(err, ErrNotHeld):
		return CodeNotHeld
	case errors.Is(err, ErrLeaseExpired):
		return CodeExpired
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrDegraded):
		return CodeDegraded
	case errors.Is(err, ErrWaitTimeout):
		return CodeTimeout
	case errors.Is(err, ErrNoWait):
		return CodeNoWait
	case errors.Is(err, ErrRevoked):
		return CodeRevoked
	case errors.Is(err, ErrFenced):
		return CodeFenced
	case errors.Is(err, ErrDraining):
		return CodeDraining
	}
	return CodeInternal
}

// shedClass reports whether a wire code names a load-shedding refusal
// that deserves a retry-after hint.
func shedClass(code uint8) bool {
	switch code {
	case CodeQueueFull, CodeShed, CodeDegraded, CodeDraining:
		return true
	}
	return false
}

// codeError maps a decoded error response back to the typed service
// error; the client side of errorCode. A v2 retry-after hint is wrapped
// around the sentinel (see RetryAfterHint).
func codeError(resp Response) error {
	var err error
	switch resp.Code {
	case CodeNotHeld:
		err = ErrNotHeld
	case CodeExpired:
		err = ErrLeaseExpired
	case CodeClosed:
		err = ErrClosed
	case CodeQueueFull:
		err = ErrQueueFull
	case CodeShed:
		err = ErrShed
	case CodeDegraded:
		err = ErrDegraded
	case CodeTimeout:
		err = ErrWaitTimeout
	case CodeNoWait:
		err = ErrNoWait
	case CodeRevoked:
		err = ErrRevoked
	case CodeFenced:
		err = ErrFenced
	case CodeDraining:
		err = ErrDraining
	case CodeBadFrame:
		return &WireError{Msg: resp.Msg}
	default:
		return fmt.Errorf("service: server error: %s", resp.Msg)
	}
	if resp.RetryAfter > 0 {
		return &RetryAfterError{Err: err, After: resp.RetryAfter}
	}
	return err
}
