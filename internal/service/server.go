package service

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"
)

// Backend is what the network server needs from the lease service.
// *Service implements it; the chaos campaigns wrap it to record the
// server-boundary history the linearizability checker replays.
type Backend interface {
	Acquire(resource, owner string, opt AcquireOptions) (Lease, error)
	ReleaseFenced(resource string, token, fence uint64) error
	Resume(resource string, token, fence uint64) (Lease, error)
	Drain(grace time.Duration) error
	Close() error
}

// ServerOptions tune the network layer's robustness behavior; the zero
// value reproduces the original permissive server.
type ServerOptions struct {
	// IdleTimeout reaps connections that go quiet between requests —
	// including half-open peers that died mid-frame, which a bare TCP
	// read would wait on forever (0 = never reap).
	IdleTimeout time.Duration
	// MaxWait caps the server-side queued wait of any acquire,
	// regardless of what the client asked for, so an abandoned
	// connection cannot pin its goroutine in the admission queue
	// indefinitely (0 = honor the client's request unbounded).
	MaxWait time.Duration
	// RetryAfter, when positive, is attached to wire-v2 shed-class
	// refusals (queue-full, shed, degraded, draining) as the retry-after
	// hint: the server inserting a delay into the client's retry loop,
	// which is the paper's anti-herd delay one layer up.
	RetryAfter time.Duration
}

// Server serves the wire protocol over TCP, one goroutine per
// connection with a strict one-request-in-flight-per-connection
// discipline (the closed-loop clients the load generator models never
// pipeline). Waiting acquires block the connection's request, which is
// exactly the queued-waiter semantics of the in-process API.
type Server struct {
	svc Backend
	opt ServerOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// NewServer wraps a service for network serving with default options.
func NewServer(svc Backend) *Server {
	return NewServerWithOptions(svc, ServerOptions{})
}

// NewServerWithOptions wraps a service for network serving.
func NewServerWithOptions(svc Backend, opt ServerOptions) *Server {
	return &Server{svc: svc, opt: opt, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close or Drain; it returns nil
// after a clean shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Drain is the graceful half of shutdown: stop accepting, then drain
// the backend (flush queued waiters typed ErrDraining, grace-wait the
// live leases, revoke stragglers). Existing connections stay up —
// connected clients receive the typed CodeDraining verdict with a
// retry-after hint on their next acquire and can still release or
// resume — until the caller finishes with Close.
func (s *Server) Drain(grace time.Duration) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return s.svc.Drain(grace)
}

// Close stops accepting, closes every live connection, and waits for
// the connection goroutines to drain — no goroutine leaks even
// mid-request (in-flight waiting acquires are flushed by svc.Close if
// the caller closes the service too; a bare server Close unblocks reads
// by closing the sockets).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
		if s.draining {
			err = nil // the drain already closed the listener
		}
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.wg.Done()
}

// serveConn is the per-connection request loop. A malformed frame is
// answered with a typed CodeBadFrame error and the connection is closed
// — a misbehaving client cannot wedge the read loop. With IdleTimeout
// set, a peer that goes quiet (or half-open) between requests is reaped
// by the read deadline instead of pinning the goroutine forever.
func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		if s.opt.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opt.IdleTimeout))
		}
		req, err := ReadRequest(br)
		if err != nil {
			var werr *WireError
			if errors.As(err, &werr) {
				// Malformed frames are version-ambiguous; answer in v1,
				// which every client decodes.
				resp := Response{Op: OpError, Code: CodeBadFrame, Msg: werr.Msg}
				if out, eerr := AppendResponse(scratch[:0], resp); eerr == nil {
					bw.Write(out)
					bw.Flush()
				}
			}
			return // EOF, closed socket, idle deadline, or malformed frame
		}
		resp := s.dispatch(req)
		out, err := AppendResponse(scratch[:0], resp)
		if err != nil {
			return
		}
		scratch = out
		if _, err := bw.Write(out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// errResp builds the typed error response for v, attaching the
// retry-after hint to v2 shed-class refusals.
func (s *Server) errResp(v uint8, err error) Response {
	resp := Response{Version: v, Op: OpError, Code: errorCode(err), Msg: err.Error()}
	if v == WireVersion2 && s.opt.RetryAfter > 0 && shedClass(resp.Code) {
		resp.RetryAfter = s.opt.RetryAfter
	}
	return resp
}

// dispatch executes one request against the service, answering in the
// version the request arrived in.
func (s *Server) dispatch(req Request) Response {
	v := req.Version
	switch req.Op {
	case OpAcquire:
		opt := AcquireOptions{TTL: req.TTL, Wait: req.Wait, MaxWait: req.MaxWait}
		if s.opt.MaxWait > 0 && (opt.MaxWait <= 0 || opt.MaxWait > s.opt.MaxWait) {
			opt.MaxWait = s.opt.MaxWait
		}
		if req.Deadline > 0 {
			// Deadline propagation: clamp the queued wait to the client's
			// remaining budget so a caller that has already given up
			// cannot hold a queue slot (or this goroutine) past it.
			remaining := time.Until(time.Unix(0, req.Deadline))
			if remaining <= 0 {
				return s.errResp(v, ErrWaitTimeout)
			}
			if opt.Wait && (opt.MaxWait <= 0 || opt.MaxWait > remaining) {
				opt.MaxWait = remaining
			}
		}
		lease, err := s.svc.Acquire(req.Resource, req.Owner, opt)
		if err != nil {
			return s.errResp(v, err)
		}
		resp := Response{Version: v, Op: OpGranted, Token: lease.Token, Deadline: lease.Deadline.UnixNano()}
		if v == WireVersion2 {
			resp.Fence = lease.Fence
		}
		return resp
	case OpRelease:
		if err := s.svc.ReleaseFenced(req.Resource, req.Token, req.Fence); err != nil {
			return s.errResp(v, err)
		}
		return Response{Version: v, Op: OpOK}
	case OpResume:
		lease, err := s.svc.Resume(req.Resource, req.Token, req.Fence)
		if err != nil {
			return s.errResp(v, err)
		}
		resp := Response{Version: v, Op: OpGranted, Token: lease.Token, Deadline: lease.Deadline.UnixNano(), Fence: lease.Fence}
		return resp
	case OpPing:
		return Response{Version: v, Op: OpOK}
	}
	return Response{Version: v, Op: OpError, Code: CodeBadFrame, Msg: "unknown op"}
}
