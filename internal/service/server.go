package service

import (
	"bufio"
	"errors"
	"net"
	"sync"
)

// Server serves the wire protocol over TCP, one goroutine per
// connection with a strict one-request-in-flight-per-connection
// discipline (the closed-loop clients the load generator models never
// pipeline). Waiting acquires block the connection's request, which is
// exactly the queued-waiter semantics of the in-process API.
type Server struct {
	svc *Service

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a service for network serving.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close; it returns nil after a
// clean Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for
// the connection goroutines to drain — no goroutine leaks even
// mid-request (in-flight waiting acquires are flushed by svc.Close if
// the caller closes the service too; a bare server Close unblocks reads
// by closing the sockets).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.wg.Done()
}

// serveConn is the per-connection request loop. A malformed frame is
// answered with a typed CodeBadFrame error and the connection is closed
// — a misbehaving client cannot wedge the read loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		req, err := ReadRequest(br)
		if err != nil {
			var werr *WireError
			if errors.As(err, &werr) {
				resp := Response{Op: OpError, Code: CodeBadFrame, Msg: werr.Msg}
				if out, eerr := AppendResponse(scratch[:0], resp); eerr == nil {
					bw.Write(out)
					bw.Flush()
				}
			}
			return // EOF, closed socket, or malformed frame
		}
		resp := s.dispatch(req)
		out, err := AppendResponse(scratch[:0], resp)
		if err != nil {
			return
		}
		scratch = out
		if _, err := bw.Write(out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one request against the service.
func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case OpAcquire:
		lease, err := s.svc.Acquire(req.Resource, req.Owner, AcquireOptions{
			TTL:     req.TTL,
			Wait:    req.Wait,
			MaxWait: req.MaxWait,
		})
		if err != nil {
			return Response{Op: OpError, Code: errorCode(err), Msg: err.Error()}
		}
		return Response{Op: OpGranted, Token: lease.Token, Deadline: lease.Deadline.UnixNano()}
	case OpRelease:
		if err := s.svc.Release(req.Resource, req.Token); err != nil {
			return Response{Op: OpError, Code: errorCode(err), Msg: err.Error()}
		}
		return Response{Op: OpOK}
	case OpPing:
		return Response{Op: OpOK}
	}
	return Response{Op: OpError, Code: CodeBadFrame, Msg: "unknown op"}
}
