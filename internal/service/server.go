package service

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"
)

// Backend is what the network server needs from the lease service.
// *Service implements it; the chaos campaigns wrap it to record the
// server-boundary history the linearizability checker replays.
type Backend interface {
	Acquire(resource, owner string, opt AcquireOptions) (Lease, error)
	ReleaseFenced(resource string, token, fence uint64) error
	Resume(resource string, token, fence uint64) (Lease, error)
	Drain(grace time.Duration) error
	Close() error
}

// ServerOptions tune the network layer's robustness behavior; the zero
// value reproduces the original permissive server.
type ServerOptions struct {
	// IdleTimeout reaps connections that go quiet between requests —
	// including half-open peers that died mid-frame, which a bare TCP
	// read would wait on forever (0 = never reap).
	IdleTimeout time.Duration
	// MaxWait caps the server-side queued wait of any acquire,
	// regardless of what the client asked for, so an abandoned
	// connection cannot pin its goroutine in the admission queue
	// indefinitely (0 = honor the client's request unbounded).
	MaxWait time.Duration
	// RetryAfter, when positive, is attached to wire-v2 shed-class
	// refusals (queue-full, shed, degraded, draining) as the retry-after
	// hint: the server inserting a delay into the client's retry loop,
	// which is the paper's anti-herd delay one layer up.
	RetryAfter time.Duration
	// FlushDelay, when positive, holds each connection's response socket
	// for up to this long so frames completing close together batch into
	// one write syscall — delay-inserted write coalescing, the paper's
	// throughput-for-p50 trade made explicit (0 = write through).
	FlushDelay time.Duration
	// Window caps the concurrently-executing pipelined (wire v3)
	// requests per connection; once the window is full the connection's
	// read loop stops pulling frames, pushing backpressure into the TCP
	// window. v1/v2 connections stay strictly one-in-flight regardless
	// (0 = DefaultWindow).
	Window int
}

// DefaultWindow is the per-connection pipelining window when
// ServerOptions.Window is zero.
const DefaultWindow = 32

// Server serves the wire protocol over TCP, one goroutine per
// connection with a strict one-request-in-flight-per-connection
// discipline (the closed-loop clients the load generator models never
// pipeline). Waiting acquires block the connection's request, which is
// exactly the queued-waiter semantics of the in-process API.
type Server struct {
	svc Backend
	opt ServerOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// NewServer wraps a service for network serving with default options.
func NewServer(svc Backend) *Server {
	return NewServerWithOptions(svc, ServerOptions{})
}

// NewServerWithOptions wraps a service for network serving.
func NewServerWithOptions(svc Backend, opt ServerOptions) *Server {
	return &Server{svc: svc, opt: opt, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close or Drain; it returns nil
// after a clean shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Drain is the graceful half of shutdown: stop accepting, then drain
// the backend (flush queued waiters typed ErrDraining, grace-wait the
// live leases, revoke stragglers). Existing connections stay up —
// connected clients receive the typed CodeDraining verdict with a
// retry-after hint on their next acquire and can still release or
// resume — until the caller finishes with Close.
func (s *Server) Drain(grace time.Duration) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return s.svc.Drain(grace)
}

// Close stops accepting, closes every live connection, and waits for
// the connection goroutines to drain — no goroutine leaks even
// mid-request (in-flight waiting acquires are flushed by svc.Close if
// the caller closes the service too; a bare server Close unblocks reads
// by closing the sockets).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
		if s.draining {
			err = nil // the drain already closed the listener
		}
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.wg.Done()
}

// serveConn is the per-connection request loop. A malformed frame is
// answered with a typed CodeBadFrame error and the connection is closed
// — a misbehaving client cannot wedge the read loop. With IdleTimeout
// set, a peer that goes quiet (or half-open) between requests is reaped
// by the read deadline instead of pinning the goroutine forever.
//
// v1/v2 frames dispatch serially in-line, preserving the strict
// one-in-flight discipline those clients rely on. The first v3 frame
// lazily starts the connection's pipeline: a fixed pool of `window`
// workers fed by a window-deep channel, so at most `window` requests
// execute concurrently and at most another window sit decoded awaiting
// a worker; past that the read loop blocks (TCP backpressure) rather
// than growing an unbounded queue. The buffer keeps the read loop
// decoding while workers run instead of stalling on a synchronous
// goroutine hand-off per frame. Responses leave through the shared
// flushWriter in completion order; request IDs let the client reorder.
func (s *Server) serveConn(conn net.Conn) {
	dec := NewDecoder()
	// 32 KiB: coalesced peers deliver multi-frame batches (up to the
	// 8 KiB flush threshold plus whatever lands while a read is parked),
	// and the reader should swallow a batch in one syscall.
	br := bufio.NewReaderSize(conn, 32<<10)
	fw := newFlushWriter(conn, s.opt.FlushDelay)
	var pl *connPipeline
	defer func() {
		if pl != nil {
			pl.stop()
		}
		fw.Close()
		s.dropConn(conn)
	}()
	var scratch []byte
	for {
		if s.opt.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opt.IdleTimeout))
		}
		req, err := dec.ReadRequest(br)
		if err != nil {
			var werr *WireError
			if errors.As(err, &werr) {
				// Malformed frames are version-ambiguous; answer in v1,
				// which every client decodes.
				resp := Response{Op: OpError, Code: CodeBadFrame, Msg: werr.Msg}
				if out, eerr := AppendResponse(scratch[:0], resp); eerr == nil {
					fw.WriteFrame(out)
				}
			}
			return // EOF, closed socket, idle deadline, or malformed frame
		}
		if req.Version == WireVersion3 {
			// Acquires can park in an admission queue, so they run on the
			// window's worker pool. Everything else (release, resume, ping)
			// only ever takes a shard lock briefly — dispatching those
			// inline on the read loop skips a goroutine hand-off per op,
			// which at pipelined rates is a top-line scheduler cost on few
			// cores. Responses interleave by ID, so ordering is free.
			if req.Op == OpAcquire {
				if pl == nil {
					pl = s.startPipeline(conn, fw)
				}
				pl.submit(req)
				continue
			}
			resp := s.dispatch(req)
			resp.ID = req.ID
			out, err := AppendResponse(scratch[:0], resp)
			if err != nil {
				return
			}
			scratch = out
			if err := fw.WriteFrame(out); err != nil {
				return
			}
			continue
		}
		resp := s.dispatch(req)
		out, err := AppendResponse(scratch[:0], resp)
		if err != nil {
			return
		}
		scratch = out
		if err := fw.WriteFrame(out); err != nil {
			return
		}
	}
}

// connPipeline is one connection's v3 worker pool.
type connPipeline struct {
	reqs chan Request
	wg   sync.WaitGroup
}

// startPipeline spins up the connection's pipelined dispatch workers.
// Each worker owns its encode scratch; resource-level parallelism comes
// from the service's shards, so workers for different resources really
// do proceed concurrently while workers queued on one hot resource wait
// in its shard's admission queue like any other waiter.
func (s *Server) startPipeline(conn net.Conn, fw *flushWriter) *connPipeline {
	window := s.opt.Window
	if window <= 0 {
		window = DefaultWindow
	}
	pl := &connPipeline{reqs: make(chan Request, window)}
	pl.wg.Add(window)
	for i := 0; i < window; i++ {
		go func() {
			defer pl.wg.Done()
			var scratch []byte
			failed := false
			for req := range pl.reqs {
				if failed {
					continue // drain so submit never blocks without receivers
				}
				resp := s.dispatch(req)
				resp.ID = req.ID
				out, err := AppendResponse(scratch[:0], resp)
				if err != nil {
					failed = true
					conn.Close()
					continue
				}
				scratch = out
				if err := fw.WriteFrame(out); err != nil {
					failed = true
					conn.Close()
					continue
				}
			}
		}()
	}
	return pl
}

// submit hands one request to the worker pool, blocking once the
// window's worth of decoded requests is already waiting — bounded
// buffering, then backpressure.
func (pl *connPipeline) submit(req Request) { pl.reqs <- req }

// stop ends intake and waits for in-flight dispatches to finish.
func (pl *connPipeline) stop() {
	close(pl.reqs)
	pl.wg.Wait()
}

// errResp builds the typed error response for v, attaching the
// retry-after hint to v2 shed-class refusals.
func (s *Server) errResp(v uint8, err error) Response {
	resp := Response{Version: v, Op: OpError, Code: errorCode(err), Msg: err.Error()}
	if v >= WireVersion2 && s.opt.RetryAfter > 0 && shedClass(resp.Code) {
		resp.RetryAfter = s.opt.RetryAfter
	}
	return resp
}

// dispatch executes one request against the service, answering in the
// version the request arrived in.
func (s *Server) dispatch(req Request) Response {
	v := req.Version
	switch req.Op {
	case OpAcquire:
		opt := AcquireOptions{TTL: req.TTL, Wait: req.Wait, MaxWait: req.MaxWait}
		if s.opt.MaxWait > 0 && (opt.MaxWait <= 0 || opt.MaxWait > s.opt.MaxWait) {
			opt.MaxWait = s.opt.MaxWait
		}
		if req.Deadline > 0 {
			// Deadline propagation: clamp the queued wait to the client's
			// remaining budget so a caller that has already given up
			// cannot hold a queue slot (or this goroutine) past it.
			remaining := time.Until(time.Unix(0, req.Deadline))
			if remaining <= 0 {
				return s.errResp(v, ErrWaitTimeout)
			}
			if opt.Wait && (opt.MaxWait <= 0 || opt.MaxWait > remaining) {
				opt.MaxWait = remaining
			}
		}
		lease, err := s.svc.Acquire(req.Resource, req.Owner, opt)
		if err != nil {
			return s.errResp(v, err)
		}
		resp := Response{Version: v, Op: OpGranted, Token: lease.Token, Deadline: lease.Deadline.UnixNano()}
		if v >= WireVersion2 {
			resp.Fence = lease.Fence
		}
		return resp
	case OpRelease:
		if err := s.svc.ReleaseFenced(req.Resource, req.Token, req.Fence); err != nil {
			return s.errResp(v, err)
		}
		return Response{Version: v, Op: OpOK}
	case OpResume:
		lease, err := s.svc.Resume(req.Resource, req.Token, req.Fence)
		if err != nil {
			return s.errResp(v, err)
		}
		resp := Response{Version: v, Op: OpGranted, Token: lease.Token, Deadline: lease.Deadline.UnixNano(), Fence: lease.Fence}
		return resp
	case OpPing:
		return Response{Version: v, Op: OpOK}
	}
	return Response{Version: v, Op: OpError, Code: CodeBadFrame, Msg: "unknown op"}
}
