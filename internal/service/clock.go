package service

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the service: lease deadlines, waiter
// timeouts, and the expiry sweeper all read it, so tests and fault
// campaigns can substitute a manual clock and make expiry deterministic.
type Clock interface {
	Now() time.Time
	// NewTimer arms a one-shot timer. The returned Timer's channel fires
	// once at or after d from now.
	NewTimer(d time.Duration) Timer
}

// Timer is the one-shot timer a Clock hands out.
type Timer interface {
	C() <-chan time.Time
	// Stop disarms the timer; it reports whether the timer was still
	// pending (mirrors time.Timer.Stop).
	Stop() bool
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

// FakeClock is a manual clock for tests and deterministic fault
// campaigns: time moves only via Advance, which fires every timer whose
// deadline has been reached. The zero value starts at a fixed non-zero
// epoch so lease deadlines are never confused with the zero time.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// fakeEpoch keeps FakeClock times away from time.Time's zero value.
var fakeEpoch = time.Unix(1_000_000, 0)

// NewFakeClock returns a manual clock starting at a fixed epoch.
func NewFakeClock() *FakeClock { return &FakeClock{now: fakeEpoch} }

// Now returns the current manual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = fakeEpoch
	}
	return c.now
}

// NewTimer arms a manual timer; a non-positive duration fires
// immediately.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = fakeEpoch
	}
	t := &fakeTimer{clock: c, when: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
		return t
	}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward and fires every due timer in deadline
// order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	if c.now.IsZero() {
		c.now = fakeEpoch
	}
	c.now = c.now.Add(d)
	now := c.now
	var due []*fakeTimer
	var keep []*fakeTimer
	for _, t := range c.timers {
		if !t.when.After(now) {
			due = append(due, t)
		} else {
			keep = append(keep, t)
		}
	}
	c.timers = keep
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	for _, t := range due {
		t.fire(now)
	}
}

type fakeTimer struct {
	clock *FakeClock
	when  time.Time
	ch    chan time.Time
	fired bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) fire(now time.Time) {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired {
		return
	}
	t.fired = true
	t.ch <- now
}

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	for i, o := range t.clock.timers {
		if o == t {
			t.clock.timers = append(t.clock.timers[:i], t.clock.timers[i+1:]...)
			break
		}
	}
	return true
}
