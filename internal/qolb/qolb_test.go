package qolb

import (
	"testing"
	"testing/quick"

	"iqolb/internal/mem"
)

type grantLog struct {
	grants []mem.NodeID
}

func (g *grantLog) grant(n mem.NodeID, _ mem.Addr) { g.grants = append(g.grants, n) }

func TestFreeLockGrantedImmediately(t *testing.T) {
	g := &grantLog{}
	m := NewManager(g.grant)
	m.Enqueue(3, 64)
	if len(g.grants) != 1 || g.grants[0] != 3 {
		t.Fatalf("grants = %v, want [3]", g.grants)
	}
	if h, ok := m.Holder(64); !ok || h != 3 {
		t.Fatal("holder not recorded")
	}
	if m.ImmediateOK != 1 {
		t.Fatal("immediate grant not counted")
	}
}

func TestFIFOHandoff(t *testing.T) {
	g := &grantLog{}
	m := NewManager(g.grant)
	m.Enqueue(0, 64)
	m.Enqueue(1, 64)
	m.Enqueue(2, 64)
	if m.QueueLen(64) != 2 {
		t.Fatalf("queue len = %d, want 2", m.QueueLen(64))
	}
	m.Release(0, 64)
	m.Release(1, 64)
	m.Release(2, 64)
	want := []mem.NodeID{0, 1, 2}
	if len(g.grants) != 3 {
		t.Fatalf("grants = %v", g.grants)
	}
	for i, n := range want {
		if g.grants[i] != n {
			t.Fatalf("grant order %v, want %v", g.grants, want)
		}
	}
	if _, held := m.Holder(64); held {
		t.Fatal("lock still held after final release")
	}
	if m.Handoffs != 2 || m.FreeReleases != 1 {
		t.Fatalf("handoffs/free = %d/%d, want 2/1", m.Handoffs, m.FreeReleases)
	}
}

func TestIndependentLocks(t *testing.T) {
	g := &grantLog{}
	m := NewManager(g.grant)
	m.Enqueue(0, 64)
	m.Enqueue(1, 128)
	if len(g.grants) != 2 {
		t.Fatal("distinct locks interfered")
	}
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewManager(func(mem.NodeID, mem.Addr) {}).Release(0, 64)
}

func TestDoubleEnqueuePanics(t *testing.T) {
	m := NewManager(func(mem.NodeID, mem.Addr) {})
	m.Enqueue(0, 64)
	m.Enqueue(1, 64)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m.Enqueue(1, 64)
}

func TestHolderReEnqueuePanics(t *testing.T) {
	m := NewManager(func(mem.NodeID, mem.Addr) {})
	m.Enqueue(0, 64)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m.Enqueue(0, 64)
}

// Property: for any permutation of enqueuers, grants happen in exact
// enqueue order and every node is granted exactly once.
func TestPropertyFIFOOrder(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%16) + 2
		g := &grantLog{}
		m := NewManager(g.grant)
		for i := 0; i < n; i++ {
			m.Enqueue(mem.NodeID(i), 64)
		}
		for i := 0; i < n; i++ {
			m.Release(mem.NodeID(i), 64)
		}
		if len(g.grants) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if g.grants[i] != mem.NodeID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the manager always agrees with a straightforward reference
// model (holder identity and queue length) under random enqueue/release
// interleavings.
func TestPropertyMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewManager(func(mem.NodeID, mem.Addr) {})
		var refHolder mem.NodeID = -99
		var refQueue []mem.NodeID
		inSystem := map[mem.NodeID]bool{}
		for _, op := range ops {
			node := mem.NodeID(op % 8)
			if !inSystem[node] {
				m.Enqueue(node, 64)
				inSystem[node] = true
				if refHolder == -99 {
					refHolder = node
				} else {
					refQueue = append(refQueue, node)
				}
			} else if refHolder == node {
				m.Release(node, 64)
				delete(inSystem, node)
				if len(refQueue) > 0 {
					refHolder = refQueue[0]
					refQueue = refQueue[1:]
				} else {
					refHolder = -99
				}
			}
			h, held := m.Holder(64)
			if held != (refHolder != -99) {
				return false
			}
			if held && h != refHolder {
				return false
			}
			if m.QueueLen(64) != len(refQueue) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
