// Package qolb implements the explicit QOLB primitive the paper compares
// against: a hardware queue of processors waiting on a lock, with direct
// releaser-to-acquirer hand-off (Goodman, Vernon & Woest; Kägi, Burger &
// Goodman "Let Them Eat QOLB").
//
// The paper's QOLB distributes the queue through SCI-style shadow-line
// pointers; as documented in DESIGN.md we centralize the queue bookkeeping
// per lock while charging the same transport costs (an address transaction
// to enqueue, one data-network line transfer per hand-off), which preserves
// QOLB's timing behaviour on a bus-based machine.
package qolb

import (
	"fmt"

	"iqolb/internal/mem"
)

// GrantFunc delivers the lock (and its cache line) to a node. The fabric
// implements it by migrating the line to the grantee's cache.
type GrantFunc func(node mem.NodeID, addr mem.Addr)

// Manager tracks every QOLB lock's holder and wait queue.
type Manager struct {
	grant GrantFunc
	locks map[mem.Addr]*lockState

	// Statistics.
	Enqueues     uint64
	ImmediateOK  uint64 // enqueues that found the lock free
	Handoffs     uint64 // releases that passed the lock to a waiter
	FreeReleases uint64 // releases with an empty queue
}

type lockState struct {
	held   bool
	holder mem.NodeID
	queue  []mem.NodeID
}

// NewManager builds a manager delivering grants through grant.
func NewManager(grant GrantFunc) *Manager {
	return &Manager{grant: grant, locks: make(map[mem.Addr]*lockState)}
}

func (m *Manager) state(addr mem.Addr) *lockState {
	s := m.locks[addr]
	if s == nil {
		s = &lockState{}
		m.locks[addr] = s
	}
	return s
}

// Enqueue joins node to the lock's hardware queue. A free lock is granted
// immediately (through the grant callback); otherwise the node waits its
// turn. Duplicate enqueues by the current holder or an already-queued node
// are protocol violations and panic: the synchronization routines never
// produce them, so one indicates a simulator bug.
func (m *Manager) Enqueue(node mem.NodeID, addr mem.Addr) {
	s := m.state(addr)
	m.Enqueues++
	if s.held && s.holder == node {
		panic(fmt.Sprintf("qolb: %s re-enqueued on lock %#x it already holds", node, uint64(addr)))
	}
	for _, q := range s.queue {
		if q == node {
			panic(fmt.Sprintf("qolb: %s already queued on lock %#x", node, uint64(addr)))
		}
	}
	if !s.held {
		s.held = true
		s.holder = node
		m.ImmediateOK++
		m.grant(node, addr)
		return
	}
	s.queue = append(s.queue, node)
}

// Release hands the lock off: to the queue head when someone waits,
// otherwise the lock becomes free. Releasing a lock the node does not hold
// panics for the same reason as above.
func (m *Manager) Release(node mem.NodeID, addr mem.Addr) {
	s := m.state(addr)
	if !s.held || s.holder != node {
		panic(fmt.Sprintf("qolb: %s released lock %#x it does not hold", node, uint64(addr)))
	}
	if len(s.queue) == 0 {
		s.held = false
		s.holder = 0
		m.FreeReleases++
		return
	}
	next := s.queue[0]
	s.queue = s.queue[1:]
	s.holder = next
	m.Handoffs++
	m.grant(next, addr)
}

// Holder reports the current holder of the lock, if held.
func (m *Manager) Holder(addr mem.Addr) (mem.NodeID, bool) {
	s, ok := m.locks[addr]
	if !ok || !s.held {
		return 0, false
	}
	return s.holder, true
}

// QueueLen reports how many nodes wait on the lock.
func (m *Manager) QueueLen(addr mem.Addr) int {
	s, ok := m.locks[addr]
	if !ok {
		return 0
	}
	return len(s.queue)
}
