// Package stats collects the measurements the experiment harness reports:
// coherence-transaction counts by kind, data-network traffic, LL/SC
// outcomes, lock events, and latency histograms.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Histogram is a simple power-of-two-bucketed latency histogram.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	buckets map[int]uint64 // bucket i covers [2^i, 2^(i+1))
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	b := 0
	for x := v; x > 1; x >>= 1 {
		b++
	}
	h.buckets[b]++
}

// Merge folds every sample of o into h (bucket-exact: merging histograms
// is equivalent to having Added all samples into one). o is unchanged; a
// nil or empty o is a no-op. Used to combine per-goroutine shard
// histograms after a native lockbench run.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if h.buckets == nil {
		h.buckets = make(map[int]uint64, len(o.buckets))
	}
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
}

// Mean returns the average sample, or zero with no samples.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation inside the power-of-two bucket that contains the target
// rank. The recorded Min/Max clamp the bucket edges, so Percentile(0)
// is Min and Percentile(100) is Max exactly.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p <= 0 {
		return float64(h.Min)
	}
	if p >= 100 {
		return float64(h.Max)
	}
	target := p / 100 * float64(h.Count)
	var keys []int
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var cum float64
	for _, k := range keys {
		n := float64(h.buckets[k])
		if cum+n < target {
			cum += n
			continue
		}
		lo, hi := bucketBounds(k)
		if lo < float64(h.Min) {
			lo = float64(h.Min)
		}
		if hi > float64(h.Max) {
			hi = float64(h.Max)
		}
		if hi < lo {
			hi = lo
		}
		frac := (target - cum) / n
		return lo + frac*(hi-lo)
	}
	return float64(h.Max)
}

// bucketBounds returns the value range covered by bucket b: bucket 0
// holds samples in [0,1], bucket i>0 holds [2^i, 2^(i+1)).
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	lo = float64(uint64(1) << b)
	return lo, 2*lo - 1
}

// histogramJSON is the serialized form of Histogram; the bucket map is
// exported so cached results round-trip bit-exactly.
type histogramJSON struct {
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Min     uint64         `json:"min"`
	Max     uint64         `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON serializes the histogram including its buckets.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{h.Count, h.Sum, h.Min, h.Max, h.buckets})
}

// UnmarshalJSON restores a histogram serialized by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var hj histogramJSON
	if err := json.Unmarshal(data, &hj); err != nil {
		return err
	}
	*h = Histogram{Count: hj.Count, Sum: hj.Sum, Min: hj.Min, Max: hj.Max, buckets: hj.Buckets}
	return nil
}

// String renders "count mean [min,max]" plus the occupied buckets.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	var keys []int
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f min=%d max=%d", h.Count, h.Mean(), h.Min, h.Max)
	for _, k := range keys {
		fmt.Fprintf(&sb, " [2^%d:%d]", k, h.buckets[k])
	}
	return sb.String()
}

// Jain is Jain's fairness index over per-actor completed-work counts:
// 1 = perfectly even, 1/n = one actor did everything, 0 = no work (or
// no actors). Shared by the native harnesses (lockbench per-goroutine
// ops, the service load generator's per-client grants).
func Jain(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sq += f * f
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Node aggregates per-node (per-controller) counters.
type Node struct {
	// Address-bus transactions issued by this node, by kind index
	// (mem.TxKind). Sized generously to avoid importing mem here.
	TxIssued [8]uint64

	// Data-network messages sent by this node, by kind index
	// (mem.DataKind).
	DataSent [8]uint64

	// LL/SC outcomes observed at the controller.
	LLCount     uint64
	SCSuccess   uint64
	SCFail      uint64
	SwapCount   uint64
	LoadCount   uint64
	StoreCount  uint64
	LocalSpins  uint64 // LLs satisfied locally while waiting (tear-off or S copy)
	TearOffsIn  uint64
	TearOffsOut uint64

	// Delay machinery.
	DelaysStarted   uint64
	DelaysReleased  uint64 // ended by SC completion or lock release
	DelayTimeouts   uint64
	DelayEvictions  uint64 // delayed line evicted: treated as timeout
	QueueBreakdowns uint64 // retention off: waiters squashed by a plain RFO
	RetentionTrips  uint64 // retention on: line loaned out and returned

	// Lock-level events (IQOLB policy view).
	LockAcquires    uint64
	LockReleases    uint64
	PredictorHits   uint64
	PredictorMisses uint64

	// Explicit QOLB events.
	QOLBEnqueues uint64
	QOLBHandoffs uint64

	// L1/L2 hit accounting is kept in the cache arrays; controllers fold
	// them in at report time.
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
}

// Machine aggregates a whole run.
type Machine struct {
	Nodes []Node

	// Global clock at completion.
	Cycles uint64

	// Address bus.
	BusTransactions uint64
	BusBusyCycles   uint64
	BusMaxQueue     int

	// Memory controller.
	MemReads      uint64
	MemWritebacks uint64

	// Latency distributions.
	LockHandoff Histogram // release -> next acquire completion
	AcquireWait Histogram // acquire start -> critical section entry
	MissLatency Histogram // controller miss -> fill
}

// NewMachine sizes the per-node slice.
func NewMachine(nodes int) *Machine {
	return &Machine{Nodes: make([]Node, nodes)}
}

// TotalTx sums address transactions of kind k across nodes.
func (m *Machine) TotalTx(kind int) uint64 {
	var sum uint64
	for i := range m.Nodes {
		sum += m.Nodes[i].TxIssued[kind]
	}
	return sum
}

// TotalData sums data messages of kind k across nodes.
func (m *Machine) TotalData(kind int) uint64 {
	var sum uint64
	for i := range m.Nodes {
		sum += m.Nodes[i].DataSent[kind]
	}
	return sum
}

// Total folds a per-node accessor across nodes.
func (m *Machine) Total(f func(*Node) uint64) uint64 {
	var sum uint64
	for i := range m.Nodes {
		sum += f(&m.Nodes[i])
	}
	return sum
}

// SCFailureRate returns failed SCs / all SCs, or 0 with none.
func (m *Machine) SCFailureRate() float64 {
	ok := m.Total(func(n *Node) uint64 { return n.SCSuccess })
	fail := m.Total(func(n *Node) uint64 { return n.SCFail })
	if ok+fail == 0 {
		return 0
	}
	return float64(fail) / float64(ok+fail)
}
