package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.String() != "n=0" {
		t.Fatal("empty histogram misbehaves")
	}
	for _, v := range []uint64{1, 2, 3, 10, 100} {
		h.Add(v)
	}
	if h.Count != 5 || h.Min != 1 || h.Max != 100 || h.Sum != 116 {
		t.Fatalf("histogram stats wrong: %+v", h)
	}
	if h.Mean() != 116.0/5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Fatalf("string: %s", h.String())
	}
}

// Property: Count equals the number of Adds, Sum equals their total, and
// Min/Max bound every sample.
func TestPropertyHistogram(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		var sum uint64
		for _, v := range vals {
			h.Add(uint64(v))
			sum += uint64(v)
		}
		if h.Count != uint64(len(vals)) || h.Sum != sum {
			return false
		}
		for _, v := range vals {
			if uint64(v) < h.Min || uint64(v) > h.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
	// 100 identical samples: every percentile collapses to the sample.
	for i := 0; i < 100; i++ {
		h.Add(64)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 64 {
			t.Fatalf("Percentile(%v) = %v, want 64", p, got)
		}
	}
	// A spread: 90 samples in [2,3] (bucket 1), 10 samples at 1024.
	h = Histogram{}
	for i := 0; i < 90; i++ {
		h.Add(2)
	}
	for i := 0; i < 10; i++ {
		h.Add(1024)
	}
	if p0, p100 := h.Percentile(0), h.Percentile(100); p0 != 2 || p100 != 1024 {
		t.Fatalf("extremes = %v, %v", p0, p100)
	}
	if p50 := h.Percentile(50); p50 < 2 || p50 > 3 {
		t.Fatalf("p50 = %v, want within bucket [2,3]", p50)
	}
	if p99 := h.Percentile(99); p99 != 1024 {
		t.Fatalf("p99 = %v, want 1024 (clamped to Max)", p99)
	}
	// Monotone in p.
	prev := -1.0
	for p := 0.0; p <= 100; p += 5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("Percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 7, 100, 5000} {
		h.Add(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", h, back)
	}
	// Marshal of the round-tripped value must be byte-identical (cache
	// hits must reproduce the serial output exactly).
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal differs:\n%s\n%s", data, data2)
	}
	if back.Percentile(50) != h.Percentile(50) {
		t.Fatal("percentile differs after round trip")
	}
}

func TestMachineTotals(t *testing.T) {
	m := NewMachine(3)
	m.Nodes[0].TxIssued[1] = 5
	m.Nodes[2].TxIssued[1] = 7
	if m.TotalTx(1) != 12 {
		t.Fatalf("TotalTx = %d, want 12", m.TotalTx(1))
	}
	m.Nodes[1].DataSent[2] = 4
	if m.TotalData(2) != 4 {
		t.Fatalf("TotalData = %d", m.TotalData(2))
	}
	m.Nodes[0].SCSuccess, m.Nodes[0].SCFail = 3, 1
	m.Nodes[1].SCFail = 1
	if got := m.SCFailureRate(); got != 0.4 {
		t.Fatalf("SCFailureRate = %v, want 0.4", got)
	}
	if m.Total(func(n *Node) uint64 { return n.SCSuccess }) != 3 {
		t.Fatal("Total accessor wrong")
	}
}

func TestSCFailureRateEmpty(t *testing.T) {
	if NewMachine(2).SCFailureRate() != 0 {
		t.Fatal("empty rate not zero")
	}
}

// mergeEquals checks that h is sample-for-sample identical to a histogram
// built by Adding all of vals directly.
func mergeEquals(t *testing.T, h *Histogram, vals []uint64) {
	t.Helper()
	var want Histogram
	for _, v := range vals {
		want.Add(v)
	}
	hj, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(&want)
	if err != nil {
		t.Fatal(err)
	}
	if string(hj) != string(wj) {
		t.Fatalf("merged histogram %s, want %s", hj, wj)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var h Histogram
	h.Merge(nil)
	h.Merge(&Histogram{})
	if h.Count != 0 {
		t.Fatalf("merging empties produced %d samples", h.Count)
	}

	// Empty receiver adopts the other side wholesale, including Min.
	var o Histogram
	for _, v := range []uint64{7, 900} {
		o.Add(v)
	}
	h.Merge(&o)
	mergeEquals(t, &h, []uint64{7, 900})

	// Merging an empty histogram into a populated one changes nothing
	// (in particular it must not clobber Min with the zero value).
	h.Merge(&Histogram{})
	mergeEquals(t, &h, []uint64{7, 900})
}

func TestHistogramMergeDisjointBuckets(t *testing.T) {
	var lo, hi Histogram
	loVals := []uint64{1, 2, 3}          // buckets 0–1
	hiVals := []uint64{1 << 10, 1 << 12} // buckets 10, 12
	for _, v := range loVals {
		lo.Add(v)
	}
	for _, v := range hiVals {
		hi.Add(v)
	}
	lo.Merge(&hi)
	mergeEquals(t, &lo, append(append([]uint64{}, loVals...), hiVals...))
	if lo.Min != 1 || lo.Max != 1<<12 {
		t.Fatalf("min/max = %d/%d", lo.Min, lo.Max)
	}
	// The source is unchanged.
	mergeEquals(t, &hi, hiVals)
}

func TestHistogramMergeOverlappingBuckets(t *testing.T) {
	var a, b Histogram
	aVals := []uint64{4, 5, 64, 100}
	bVals := []uint64{5, 6, 7, 80, 5000}
	for _, v := range aVals {
		a.Add(v)
	}
	for _, v := range bVals {
		b.Add(v)
	}
	a.Merge(&b)
	all := append(append([]uint64{}, aVals...), bVals...)
	mergeEquals(t, &a, all)
	// Percentiles of the merge match a directly-built histogram too.
	var want Histogram
	for _, v := range all {
		want.Add(v)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got, w := a.Percentile(p), want.Percentile(p); got != w {
			t.Fatalf("p%.0f = %v, want %v", p, got, w)
		}
	}
}

func TestHistogramMergeSelfDoubling(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{3, 3, 700} {
		h.Add(v)
	}
	h.Merge(&h)
	mergeEquals(t, &h, []uint64{3, 3, 700, 3, 3, 700})
}

// TestJain pins the fairness index (moved here from lockbench when the
// service load generator began sharing it).
func TestJain(t *testing.T) {
	if f := Jain([]uint64{10, 10, 10, 10}); f != 1 {
		t.Fatalf("even shares: %f", f)
	}
	if f := Jain([]uint64{40, 0, 0, 0}); f != 0.25 {
		t.Fatalf("single winner: %f", f)
	}
	if f := Jain(nil); f != 0 {
		t.Fatalf("empty: %f", f)
	}
	if f := Jain([]uint64{0, 0}); f != 0 {
		t.Fatalf("all-zero: %f", f)
	}
}
