package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.String() != "n=0" {
		t.Fatal("empty histogram misbehaves")
	}
	for _, v := range []uint64{1, 2, 3, 10, 100} {
		h.Add(v)
	}
	if h.Count != 5 || h.Min != 1 || h.Max != 100 || h.Sum != 116 {
		t.Fatalf("histogram stats wrong: %+v", h)
	}
	if h.Mean() != 116.0/5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Fatalf("string: %s", h.String())
	}
}

// Property: Count equals the number of Adds, Sum equals their total, and
// Min/Max bound every sample.
func TestPropertyHistogram(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		var sum uint64
		for _, v := range vals {
			h.Add(uint64(v))
			sum += uint64(v)
		}
		if h.Count != uint64(len(vals)) || h.Sum != sum {
			return false
		}
		for _, v := range vals {
			if uint64(v) < h.Min || uint64(v) > h.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMachineTotals(t *testing.T) {
	m := NewMachine(3)
	m.Nodes[0].TxIssued[1] = 5
	m.Nodes[2].TxIssued[1] = 7
	if m.TotalTx(1) != 12 {
		t.Fatalf("TotalTx = %d, want 12", m.TotalTx(1))
	}
	m.Nodes[1].DataSent[2] = 4
	if m.TotalData(2) != 4 {
		t.Fatalf("TotalData = %d", m.TotalData(2))
	}
	m.Nodes[0].SCSuccess, m.Nodes[0].SCFail = 3, 1
	m.Nodes[1].SCFail = 1
	if got := m.SCFailureRate(); got != 0.4 {
		t.Fatalf("SCFailureRate = %v, want 0.4", got)
	}
	if m.Total(func(n *Node) uint64 { return n.SCSuccess }) != 3 {
		t.Fatal("Total accessor wrong")
	}
}

func TestSCFailureRateEmpty(t *testing.T) {
	if NewMachine(2).SCFailureRate() != 0 {
		t.Fatal("empty rate not zero")
	}
}
