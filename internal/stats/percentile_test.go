package stats

import "testing"

// TestPercentileEdges pins the documented edge behavior of
// Histogram.Percentile: empty → 0, p<=0 → Min, p>=100 → Max, and a
// single-bucket histogram interpolating strictly inside [Min, Max].
func TestPercentileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, p := range []float64{0, 50, 100} {
			if got := h.Percentile(p); got != 0 {
				t.Errorf("empty histogram Percentile(%v) = %v, want 0", p, got)
			}
		}
	})

	t.Run("bounds", func(t *testing.T) {
		var h Histogram
		for _, v := range []uint64{37, 5, 900, 41} {
			h.Add(v)
		}
		if got := h.Percentile(0); got != 5 {
			t.Errorf("Percentile(0) = %v, want Min 5", got)
		}
		if got := h.Percentile(-10); got != 5 {
			t.Errorf("Percentile(-10) = %v, want Min 5", got)
		}
		if got := h.Percentile(100); got != 900 {
			t.Errorf("Percentile(100) = %v, want Max 900", got)
		}
		if got := h.Percentile(150); got != 900 {
			t.Errorf("Percentile(150) = %v, want Max 900", got)
		}
	})

	t.Run("single-sample", func(t *testing.T) {
		var h Histogram
		h.Add(64)
		for _, p := range []float64{0, 1, 50, 99, 100} {
			if got := h.Percentile(p); got != 64 {
				t.Errorf("single-sample Percentile(%v) = %v, want 64 (Min==Max clamp)", p, got)
			}
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		// All samples inside one power-of-two bucket [32,64): the
		// interpolated percentile must stay within the recorded
		// [Min, Max] range and be monotone in p.
		var h Histogram
		for _, v := range []uint64{40, 44, 48, 52} {
			h.Add(v)
		}
		prev := -1.0
		for _, p := range []float64{10, 25, 50, 75, 90} {
			got := h.Percentile(p)
			if got < 40 || got > 52 {
				t.Errorf("Percentile(%v) = %v outside [Min=40, Max=52]", p, got)
			}
			if got < prev {
				t.Errorf("Percentile(%v) = %v not monotone (prev %v)", p, got, prev)
			}
			prev = got
		}
	})

	t.Run("zero-sample", func(t *testing.T) {
		var h Histogram
		h.Add(0)
		h.Add(0)
		if got := h.Percentile(50); got != 0 {
			t.Errorf("all-zero Percentile(50) = %v, want 0", got)
		}
	})
}
