// Package mem defines the primitive vocabulary shared by the whole memory
// system: addresses, cache-line geometry and data, coherence states,
// transaction and access kinds, and the request/result structs exchanged
// between processors and their cache controllers.
package mem

import "fmt"

// Geometry of the simulated memory system (Table 1 of the paper).
const (
	// LineSize is the coherence granularity in bytes.
	LineSize = 64
	// WordSize is the access granularity of LW/SW/LL/SC in bytes.
	WordSize = 8
	// WordsPerLine is the number of words in a cache line.
	WordsPerLine = LineSize / WordSize
)

// Addr is a byte address in the shared physical address space.
type Addr uint64

// Line returns the cache line containing the address.
func (a Addr) Line() LineID { return LineID(a / LineSize) }

// WordIndex returns the word slot of the address within its line.
func (a Addr) WordIndex() int { return int(a % LineSize / WordSize) }

// Aligned reports whether the address is word-aligned.
func (a Addr) Aligned() bool { return a%WordSize == 0 }

// LineID identifies one cache line in the address space.
type LineID uint64

// Base returns the address of the line's first byte.
func (l LineID) Base() Addr { return Addr(l) * LineSize }

// LineData is the 64-byte payload of one cache line, stored as words.
type LineData [WordsPerLine]uint64

// State is a MOESI cache-line state.
type State uint8

const (
	// Invalid: no copy.
	Invalid State = iota
	// Shared: read-only copy; memory or another cache is responsible for
	// supplying data.
	Shared
	// Exclusive: the only cached copy, clean.
	Exclusive
	// Owned: shared dirty copy responsible for supplying data.
	Owned
	// Modified: the only cached copy, dirty.
	Modified
)

var stateNames = [...]string{"I", "S", "E", "O", "M"}

// String returns the one-letter MOESI name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// CanRead reports whether a copy in state s satisfies a load.
func (s State) CanRead() bool { return s != Invalid }

// CanWrite reports whether a copy in state s satisfies a store.
func (s State) CanWrite() bool { return s == Exclusive || s == Modified }

// IsOwner reports whether a cache holding state s is the line's supplier.
func (s State) IsOwner() bool { return s == Exclusive || s == Owned || s == Modified }

// Dirty reports whether the copy differs from memory.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// NodeID identifies a processor node. MemoryNode is the home memory
// controller, which owns every line that no cache owns.
type NodeID int

// MemoryNode is the NodeID of the home memory controller.
const MemoryNode NodeID = -1

// String renders a node id ("P3" or "Mem").
func (n NodeID) String() string {
	if n == MemoryNode {
		return "Mem"
	}
	return fmt.Sprintf("P%d", int(n))
}

// TxKind is an address-bus transaction type.
type TxKind uint8

const (
	// TxGETS requests a readable copy.
	TxGETS TxKind = iota
	// TxGETX requests an exclusive (writable) copy; a normal
	// read-for-ownership that must be serviced promptly.
	TxGETX
	// TxUPGR requests write permission for a copy already held Shared.
	TxUPGR
	// TxLPRFO is the paper's low-priority read-for-ownership, issued for
	// LL instructions under the delayed-response and IQOLB modes. The
	// owner may delay its response for a bounded time.
	TxLPRFO
	// TxWB writes a dirty evicted line back to memory.
	TxWB
	// TxQOLB is the explicit-QOLB enqueue transaction (the EnQOLB
	// instruction's bus appearance).
	TxQOLB
)

var txNames = [...]string{"GETS", "GETX", "UPGR", "LPRFO", "WB", "QOLB"}

// String returns the transaction mnemonic.
func (t TxKind) String() string {
	if int(t) < len(txNames) {
		return txNames[t]
	}
	return fmt.Sprintf("TxKind(%d)", uint8(t))
}

// WantsOwnership reports whether the transaction asks for a writable copy.
func (t TxKind) WantsOwnership() bool {
	return t == TxGETX || t == TxUPGR || t == TxLPRFO
}

// DataKind classifies a data-network message.
type DataKind uint8

const (
	// DataShared carries a readable copy without ownership transfer.
	DataShared DataKind = iota
	// DataExclusive carries the line together with ownership; the
	// receiver may write.
	DataExclusive
	// DataTearOff is the paper's speculative response: the current value,
	// usable for local spinning, carrying neither ownership nor a durable
	// copy.
	DataTearOff
	// DataWriteback carries a dirty line home to memory.
	DataWriteback
	// DataReturn carries the line back to the queue head after a
	// retention-mode write (the paper's "special marker" path).
	DataReturn
)

var dataNames = [...]string{"DataS", "DataE", "TearOff", "WB", "Return"}

// String returns the data-message mnemonic.
func (d DataKind) String() string {
	if int(d) < len(dataNames) {
		return dataNames[d]
	}
	return fmt.Sprintf("DataKind(%d)", uint8(d))
}

// AccessKind is the kind of memory operation a processor issues.
type AccessKind uint8

const (
	// Load is a plain LW.
	Load AccessKind = iota
	// Store is a plain SW.
	Store
	// LoadLinked is LL: a load that sets the link flag.
	LoadLinked
	// StoreCond is SC: a store that succeeds only if the link is intact.
	StoreCond
	// SwapOp is an atomic exchange.
	SwapOp
	// EnqolbOp joins the explicit QOLB hardware queue for a lock.
	EnqolbOp
	// DeqolbOp releases / hands off an explicit QOLB lock.
	DeqolbOp
)

var accessNames = [...]string{"LW", "SW", "LL", "SC", "SWAP", "ENQOLB", "DEQOLB"}

// String returns the access mnemonic.
func (k AccessKind) String() string {
	if int(k) < len(accessNames) {
		return accessNames[k]
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(k))
}

// IsWrite reports whether the access may modify memory.
func (k AccessKind) IsWrite() bool {
	switch k {
	case Store, StoreCond, SwapOp, DeqolbOp:
		return true
	}
	return false
}

// Request is one memory operation presented by a processor to its cache
// controller. Done is invoked exactly once when the operation completes,
// at the completion cycle.
type Request struct {
	Kind  AccessKind
	Addr  Addr
	Value uint64 // store/SC/swap datum
	PC    int    // issuing instruction index, for the lock predictor
	Done  func(Result)
}

// Result reports the outcome of a Request.
type Result struct {
	Value   uint64 // load value; swap returns the old value
	OK      bool   // SC success; Enqolb: lock already free and acquired
	TearOff bool   // the value came from a tear-off copy
}
