package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	cases := []struct {
		addr Addr
		line LineID
		word int
	}{
		{0, 0, 0},
		{8, 0, 1},
		{56, 0, 7},
		{64, 1, 0},
		{200, 3, 1},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Addr(%d).Line() = %d, want %d", c.addr, got, c.line)
		}
		if got := c.addr.WordIndex(); got != c.word {
			t.Errorf("Addr(%d).WordIndex() = %d, want %d", c.addr, got, c.word)
		}
	}
	if !Addr(16).Aligned() || Addr(17).Aligned() {
		t.Error("alignment check wrong")
	}
}

// Property: line/word decomposition is a bijection for aligned addresses.
func TestPropertyAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw &^ (WordSize - 1) % (1 << 40))
		back := a.Line().Base() + Addr(a.WordIndex()*WordSize)
		return back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatePredicates(t *testing.T) {
	type want struct {
		read, write, owner, dirty bool
	}
	cases := map[State]want{
		Invalid:   {false, false, false, false},
		Shared:    {true, false, false, false},
		Exclusive: {true, true, true, false},
		Owned:     {true, false, true, true},
		Modified:  {true, true, true, true},
	}
	for s, w := range cases {
		if s.CanRead() != w.read || s.CanWrite() != w.write ||
			s.IsOwner() != w.owner || s.Dirty() != w.dirty {
			t.Errorf("state %s predicates wrong", s)
		}
	}
}

func TestStringers(t *testing.T) {
	if Modified.String() != "M" || Invalid.String() != "I" {
		t.Error("state names wrong")
	}
	if TxLPRFO.String() != "LPRFO" || TxGETS.String() != "GETS" {
		t.Error("tx names wrong")
	}
	if DataTearOff.String() != "TearOff" {
		t.Error("data names wrong")
	}
	if LoadLinked.String() != "LL" || StoreCond.String() != "SC" {
		t.Error("access names wrong")
	}
	if MemoryNode.String() != "Mem" || NodeID(4).String() != "P4" {
		t.Error("node names wrong")
	}
}

func TestTxWantsOwnership(t *testing.T) {
	for _, tx := range []TxKind{TxGETX, TxUPGR, TxLPRFO} {
		if !tx.WantsOwnership() {
			t.Errorf("%s should want ownership", tx)
		}
	}
	for _, tx := range []TxKind{TxGETS, TxWB} {
		if tx.WantsOwnership() {
			t.Errorf("%s should not want ownership", tx)
		}
	}
}

func TestAccessIsWrite(t *testing.T) {
	for _, k := range []AccessKind{Store, StoreCond, SwapOp, DeqolbOp} {
		if !k.IsWrite() {
			t.Errorf("%s should be a write", k)
		}
	}
	for _, k := range []AccessKind{Load, LoadLinked, EnqolbOp} {
		if k.IsWrite() {
			t.Errorf("%s should not be a write", k)
		}
	}
}
