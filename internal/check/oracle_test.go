package check

import (
	"fmt"
	"testing"
)

// TestOracleFiftySignatures is the acceptance run: fifty random workload
// signatures, each executed under all five mechanisms (TTS, ticket, MCS,
// QOLB, IQOLB) with invariant monitors attached, asserting identical final
// protected-counter state everywhere.
func TestOracleFiftySignatures(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		procs := 2 + int(seed%3) // 2..4
		p := RandomSignature(seed, procs)
		states, err := Diff(p, DiffOptions{Procs: procs, Monitor: true}, nil)
		if err != nil {
			t.Fatalf("seed %d (procs %d, %+v): %v", seed, procs, p, err)
		}
		if len(states) != 5 {
			t.Fatalf("seed %d: %d mechanisms ran, want 5", seed, len(states))
		}
	}
}

// TestRandomSignatureAlwaysValid: every seed yields a signature inside
// every primitive's constraints (generation must never reject it).
func TestRandomSignatureAlwaysValid(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		for procs := 2; procs <= 4; procs++ {
			p := RandomSignature(seed, procs)
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d procs %d: %v", seed, procs, err)
			}
			if p.TotalCS%procs != 0 {
				t.Fatalf("seed %d procs %d: TotalCS %d not divisible", seed, procs, p.TotalCS)
			}
			if p.Collocate || p.LocksPerLine > 1 {
				t.Fatalf("seed %d: signature outside the ticket lock's constraints: %+v", seed, p)
			}
		}
	}
}

// TestDiffDetectsDivergence: the comparison itself is live — two
// FinalStates that disagree produce an error (exercised via the exported
// pieces rather than a doctored simulator).
func TestDiffStateComparison(t *testing.T) {
	p := RandomSignature(7, 2)
	states, err := Diff(p, DiffOptions{Procs: 2}, []Mechanism{Mechanisms()[0], Mechanisms()[4]})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(states); i++ {
		if fmt.Sprint(states[i].Counters) != fmt.Sprint(states[0].Counters) {
			t.Fatalf("unexpected divergence: %v vs %v", states[0], states[i])
		}
	}
}
