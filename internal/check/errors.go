package check

import (
	"errors"
	"fmt"
	"strings"
)

// ErrProtocolViolation is the sentinel matched by errors.Is when a
// monitor recorded invariant violations. The concrete error is a
// *ViolationError carrying the recorded list.
var ErrProtocolViolation = errors.New("check: protocol violation")

// ViolationError is the typed form of Monitor.Err: a run whose
// invariant monitor recorded one or more breaches.
type ViolationError struct {
	Violations []Violation
}

// Error keeps the exact rendering the untyped Monitor.Err used: a count
// line followed by up to four violations.
func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s):", len(e.Violations))
	for i, v := range e.Violations {
		if i == 4 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(e.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// Unwrap lets errors.Is(err, ErrProtocolViolation) match.
func (e *ViolationError) Unwrap() error { return ErrProtocolViolation }

// Kinds returns the distinct violation kinds in first-seen order
// (failure-manifest classification).
func (e *ViolationError) Kinds() []string {
	var kinds []string
	seen := make(map[string]bool)
	for _, v := range e.Violations {
		if !seen[v.Kind] {
			seen[v.Kind] = true
			kinds = append(kinds, v.Kind)
		}
	}
	return kinds
}
