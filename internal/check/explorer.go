package check

import (
	"fmt"

	"iqolb/internal/engine"
	"iqolb/internal/interconnect"
	"iqolb/internal/machine"
	"iqolb/internal/workload"
)

// ExploreConfig bounds a schedule-exploration run. The explorer permutes
// coherence-message delivery by assigning each of the first Window data
// messages (starting at Offset) one extra latency from Deltas, enumerating
// every len(Deltas)^Window assignment. Per-source FIFO ordering is
// preserved (the network refuses to reorder messages from one node), so
// every explored schedule is one the crossbar could legally produce.
type ExploreConfig struct {
	// Procs is the machine size (the explorer targets 2–4).
	Procs int
	// Mechanism under exploration; the zero value selects IQOLB.
	Mechanism Mechanism
	// Params is the workload signature; nil selects a 1-line lock
	// hand-off kernel sized to Procs.
	Params *workload.Params
	// Window is how many consecutive data messages get perturbed (0 = 6).
	Window int
	// Offset is the index of the first perturbed message.
	Offset uint64
	// Deltas are the candidate extra latencies (nil = {0, 17, 41} cycles,
	// straddling the 12-cycle address and 40-cycle data latencies).
	Deltas []engine.Time
	// MaxSchedules refuses (with an error, not silent truncation) to
	// enumerate more than this many schedules (0 = 4096).
	MaxSchedules int
	// CycleLimit aborts one schedule's run (0 = 20M cycles).
	CycleLimit engine.Time
	// StarvationBound passes through to the per-schedule monitor.
	StarvationBound engine.Time
}

// ExploreReport summarizes an exploration.
type ExploreReport struct {
	// Schedules is how many delivery schedules ran.
	Schedules int
	// Violations aggregates monitor violations across schedules; each
	// Detail is prefixed with its schedule number.
	Violations []Violation
	// Panics records protocol panics (caught per schedule).
	Panics []string
	// Baseline is the unperturbed schedule's final per-lock counters.
	Baseline []uint64
	// DistinctFinals counts distinct final counter vectors; a correct
	// protocol yields exactly 1 (the kernels are timing-independent).
	DistinctFinals int
}

// Err reports the exploration's outcome as an error (nil when every
// schedule was clean and converged to one final state).
func (r *ExploreReport) Err() error {
	switch {
	case len(r.Violations) > 0:
		return fmt.Errorf("check: explorer: %d violation(s) across %d schedules, first: %s",
			len(r.Violations), r.Schedules, r.Violations[0])
	case len(r.Panics) > 0:
		return fmt.Errorf("check: explorer: %d panic(s) across %d schedules, first: %s",
			len(r.Panics), r.Schedules, r.Panics[0])
	case r.DistinctFinals > 1:
		return fmt.Errorf("check: explorer: %d distinct final states across %d schedules (want 1)",
			r.DistinctFinals, r.Schedules)
	}
	return nil
}

// defaultHandoffParams is the 2-proc/1-line hand-off kernel of the
// acceptance criteria: every processor contends for one lock repeatedly,
// so the whole run is LPRFO queueing, delayed responses, tear-offs, and
// releaser-to-acquirer transfers on a single line.
func defaultHandoffParams(procs int) workload.Params {
	return workload.Params{
		Iterations: 1,
		Locks:      1,
		TotalCS:    procs * 3,
		HotPct:     100,
		CSWork:     5,
		CSWrites:   1,
		ThinkWork:  10,
	}
}

// Explore enumerates the configured schedule space, running the invariant
// monitors at full strength (a scan after every event) on every schedule,
// and checks that all schedules converge to the same final counters.
func Explore(cfg ExploreConfig) (*ExploreReport, error) {
	if cfg.Procs == 0 {
		cfg.Procs = 2
	}
	if cfg.Mechanism.Name == "" {
		cfg.Mechanism = Mechanisms()[4] // iqolb
	}
	if cfg.Window == 0 {
		cfg.Window = 6
	}
	if len(cfg.Deltas) == 0 {
		cfg.Deltas = []engine.Time{0, 17, 41}
	}
	if cfg.MaxSchedules == 0 {
		cfg.MaxSchedules = 4096
	}
	if cfg.CycleLimit == 0 {
		cfg.CycleLimit = 20_000_000
	}
	p := defaultHandoffParams(cfg.Procs)
	if cfg.Params != nil {
		p = *cfg.Params
	}

	total := 1
	for i := 0; i < cfg.Window; i++ {
		total *= len(cfg.Deltas)
		if total > cfg.MaxSchedules {
			return nil, fmt.Errorf("check: explorer: %d^%d schedules exceed MaxSchedules %d",
				len(cfg.Deltas), cfg.Window, cfg.MaxSchedules)
		}
	}

	rep := &ExploreReport{}
	finals := make(map[string]bool)
	assign := make([]int, cfg.Window)
	for sched := 0; sched < total; sched++ {
		// Decode sched as a base-len(Deltas) odometer; schedule 0 is the
		// all-zero (unperturbed) assignment.
		n := sched
		for i := range assign {
			assign[i] = n % len(cfg.Deltas)
			n /= len(cfg.Deltas)
		}
		counters, vs, panicMsg := runSchedule(cfg, p, assign)
		rep.Schedules++
		for _, v := range vs {
			v.Detail = fmt.Sprintf("schedule %d: %s", sched, v.Detail)
			rep.Violations = append(rep.Violations, v)
		}
		if panicMsg != "" {
			rep.Panics = append(rep.Panics, fmt.Sprintf("schedule %d: %s", sched, panicMsg))
			continue
		}
		if counters == nil {
			continue // run failed; already recorded
		}
		finals[fmt.Sprint(counters)] = true
		if sched == 0 {
			rep.Baseline = counters
		}
	}
	rep.DistinctFinals = len(finals)
	return rep, nil
}

// runSchedule executes one perturbed run under a full-strength monitor.
func runSchedule(cfg ExploreConfig, p workload.Params, assign []int) (
	counters []uint64, vs []Violation, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	bld, err := workload.Generate(p, cfg.Mechanism.Primitive, cfg.Procs)
	if err != nil {
		return nil, nil, err.Error()
	}
	mcfg := cfg.Mechanism.Config(cfg.Procs)
	mcfg.CycleLimit = cfg.CycleLimit
	m, err := machine.New(mcfg, bld.Program, nil)
	if err != nil {
		return nil, nil, err.Error()
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	mon := AttachToMachine(m, Config{ScanStride: 1, StarvationBound: cfg.StarvationBound})
	end := cfg.Offset + uint64(len(assign))
	m.Fabric().Net().SetPerturb(func(idx uint64, msg interconnect.Msg) engine.Time {
		if idx < cfg.Offset || idx >= end {
			return 0
		}
		return cfg.Deltas[assign[idx-cfg.Offset]]
	})
	res, err := m.Run()
	mon.Finish()
	vs = mon.Violations()
	if len(vs) > 0 {
		return nil, vs, ""
	}
	if err != nil {
		return nil, nil, err.Error()
	}
	if res.HitLimit {
		return nil, nil, fmt.Sprintf("hit the %d-cycle limit", cfg.CycleLimit)
	}
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		return nil, nil, err.Error()
	}
	counters = make([]uint64, p.Locks)
	for i := 0; i < p.Locks; i++ {
		counters[i] = m.Peek(p.DataAddr(i))
	}
	return counters, nil, ""
}
