package check

import (
	"strings"
	"testing"

	"iqolb/internal/engine"
)

// TestExplorerExhaustive2Proc is the acceptance run: every assignment of
// {0,17,41}-cycle extra delays to the first 6 data messages of the
// 2-proc/1-line IQOLB hand-off kernel (3^6 = 729 schedules), each under a
// scan-every-event monitor, with zero violations and one final state.
func TestExplorerExhaustive2Proc(t *testing.T) {
	rep, err := Explore(ExploreConfig{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 729 {
		t.Fatalf("explored %d schedules, want 729", rep.Schedules)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Baseline) != 1 || rep.Baseline[0] == 0 {
		t.Fatalf("baseline counters %v, want one non-zero counter", rep.Baseline)
	}
}

// TestExplorer3ProcsRetentionOff covers the queue-breakdown path: with
// retention off, perturbed arrivals change which waiters squash and
// re-issue, and the invariants must hold on every such schedule.
func TestExplorer3ProcsRetentionOff(t *testing.T) {
	iq := Mechanisms()[4]
	rep, err := Explore(ExploreConfig{
		Procs:     3,
		Mechanism: Mechanism{Name: "iqolb-noret", Primitive: iq.Primitive, Mode: iq.Mode, Retention: false, TearOff: true},
		Window:    4, // 81 schedules
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestExplorerLateWindow perturbs messages in the middle of the run (the
// steady-state hand-off chain) rather than the initial fetches.
func TestExplorerLateWindow(t *testing.T) {
	rep, err := Explore(ExploreConfig{Procs: 2, Window: 4, Offset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestExplorerRefusesOversizedSpace: the schedule-count cap is an explicit
// error, never silent truncation.
func TestExplorerRefusesOversizedSpace(t *testing.T) {
	_, err := Explore(ExploreConfig{Procs: 2, Window: 10, MaxSchedules: 100})
	if err == nil || !strings.Contains(err.Error(), "MaxSchedules") {
		t.Fatalf("want MaxSchedules error, got %v", err)
	}
}

// TestExplorerCatchesSeededDivergence: feed the explorer deltas large
// enough to matter and a mechanism known-good — then verify the harness
// would notice a divergence by checking that identical runs really are
// compared (a degenerate single-delta space yields exactly one schedule).
func TestExplorerSingleSchedule(t *testing.T) {
	rep, err := Explore(ExploreConfig{Procs: 2, Window: 3, Deltas: []engine.Time{0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 1 || rep.DistinctFinals != 1 {
		t.Fatalf("schedules=%d distinct=%d, want 1/1", rep.Schedules, rep.DistinctFinals)
	}
}
