package check

import (
	"fmt"
	"math/rand"

	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/machine"
	"iqolb/internal/synclib"
	"iqolb/internal/workload"
)

// Mechanism names one lock implementation × hardware pairing the
// differential oracle compares. (It deliberately mirrors
// experiments.System without importing it: experiments imports this
// package for the -check wiring.)
type Mechanism struct {
	Name      string
	Primitive synclib.Primitive
	Mode      core.Mode
	Retention bool
	TearOff   bool
}

// Mechanisms returns the five primitives of the oracle: TTS, ticket, MCS,
// explicit QOLB, and IQOLB. Timing differs wildly across them; final
// memory state may not.
func Mechanisms() []Mechanism {
	return []Mechanism{
		{Name: "tts", Primitive: synclib.PrimTTS, Mode: core.ModeBaseline},
		{Name: "ticket", Primitive: synclib.PrimTicket, Mode: core.ModeBaseline},
		{Name: "mcs", Primitive: synclib.PrimMCS, Mode: core.ModeBaseline},
		{Name: "qolb", Primitive: synclib.PrimQOLB, Mode: core.ModeBaseline},
		{Name: "iqolb", Primitive: synclib.PrimTTS, Mode: core.ModeIQOLB, Retention: true, TearOff: true},
	}
}

// Config derives the machine configuration for the mechanism.
func (mech Mechanism) Config(procs int) machine.Config {
	cfg := machine.DefaultConfig(procs, mech.Mode)
	cfg.Core.QueueRetention = mech.Retention
	cfg.Core.TearOff = mech.TearOff
	return cfg
}

// DiffOptions configures a differential run.
type DiffOptions struct {
	// Procs is the machine size (the oracle targets small configs).
	Procs int
	// Monitor additionally attaches the invariant monitors to every run.
	Monitor bool
	// MonitorCfg tunes the attached monitors (zero value = defaults).
	MonitorCfg Config
	// CycleLimit overrides the runaway-run abort budget (0 = default).
	CycleLimit engine.Time
}

// FinalState is the semantically meaningful outcome of one run: the
// per-lock protected counters (the lock words themselves legitimately hold
// primitive-specific residue — ticket counts, MCS queue tails — and are
// excluded).
type FinalState struct {
	Mechanism string
	Counters  []uint64
	Cycles    uint64
}

// RunMechanism executes the signature under one mechanism and extracts its
// final state, verifying the workload's own mutual-exclusion counter sum.
func RunMechanism(p workload.Params, mech Mechanism, opt DiffOptions) (FinalState, error) {
	fs := FinalState{Mechanism: mech.Name}
	bld, err := workload.Generate(p, mech.Primitive, opt.Procs)
	if err != nil {
		return fs, fmt.Errorf("%s: %w", mech.Name, err)
	}
	cfg := mech.Config(opt.Procs)
	if opt.CycleLimit != 0 {
		cfg.CycleLimit = opt.CycleLimit
	}
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		return fs, fmt.Errorf("%s: %w", mech.Name, err)
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	var mon *Monitor
	if opt.Monitor {
		mon = AttachToMachine(m, opt.MonitorCfg)
	}
	res, err := m.Run()
	if mon != nil {
		if cerr := mon.Finish(); cerr != nil {
			return fs, fmt.Errorf("%s: %w", mech.Name, cerr)
		}
	}
	if err != nil {
		return fs, fmt.Errorf("%s: %w", mech.Name, err)
	}
	if res.HitLimit {
		return fs, fmt.Errorf("%s: hit the cycle limit at %d", mech.Name, res.Cycles)
	}
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		return fs, fmt.Errorf("%s: %w", mech.Name, err)
	}
	fs.Cycles = res.Cycles
	fs.Counters = make([]uint64, p.Locks)
	for i := 0; i < p.Locks; i++ {
		fs.Counters[i] = m.Peek(p.DataAddr(i))
	}
	return fs, nil
}

// Diff runs the signature under every mechanism and asserts identical
// final protected-counter state. The kernels draw lock choices and think
// jitter from per-CPU RNGs consumed in program order, so the per-lock
// counter vector is timing-independent: any divergence is a lost or
// duplicated critical section.
func Diff(p workload.Params, opt DiffOptions, mechs []Mechanism) ([]FinalState, error) {
	if len(mechs) == 0 {
		mechs = Mechanisms()
	}
	states := make([]FinalState, 0, len(mechs))
	for _, mech := range mechs {
		fs, err := RunMechanism(p, mech, opt)
		if err != nil {
			return states, err
		}
		states = append(states, fs)
	}
	ref := states[0]
	for _, fs := range states[1:] {
		for i := range ref.Counters {
			if fs.Counters[i] != ref.Counters[i] {
				return states, fmt.Errorf(
					"check: divergence on lock %d: %s left counter %d, %s left %d",
					i, ref.Mechanism, ref.Counters[i], fs.Mechanism, fs.Counters[i])
			}
		}
	}
	return states, nil
}

// RandomSignature derives a small valid workload signature from a seed.
// The space stays inside every primitive's constraints (no collocation or
// lock packing, which the ticket lock rejects) and small enough that a
// 5-mechanism differential run completes in milliseconds.
func RandomSignature(seed uint64, procs int) workload.Params {
	rng := rand.New(rand.NewSource(int64(seed)))
	workers := procs // the oracle uses no pollers: every proc runs the loop
	p := workload.Params{
		Iterations: 1 + rng.Intn(2),
		Locks:      1 + rng.Intn(4),
		TotalCS:    workers * (1 + rng.Intn(6)),
		HotPct:     []int{0, 50, 100}[rng.Intn(3)],
		CSWork:     int64(rng.Intn(30)),
		CSWrites:   1 + rng.Intn(2),
		ThinkWork:  int64(rng.Intn(100)),
		ThinkJitter: func() int64 {
			if rng.Intn(2) == 0 {
				return 0
			}
			return int64(1 + rng.Intn(50))
		}(),
		PrivateLines:    rng.Intn(3),
		BarriersPerIter: rng.Intn(2),
	}
	return p
}
