package check

import "testing"

// FuzzSignature drives arbitrary workload signatures through the
// differential oracle: whatever the seed, all five lock mechanisms must
// produce the identical final protected-counter state, with the invariant
// monitors clean on every run.
func FuzzSignature(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(42), uint8(1))
	f.Add(uint64(0xdeadbeef), uint8(2))
	f.Add(uint64(7777), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, procsRaw uint8) {
		procs := 2 + int(procsRaw%3) // 2..4
		p := RandomSignature(seed, procs)
		if _, err := Diff(p, DiffOptions{Procs: procs, Monitor: true}, nil); err != nil {
			t.Fatalf("seed %d procs %d (%+v): %v", seed, procs, p, err)
		}
	})
}
