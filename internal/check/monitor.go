// Package check is the correctness-verification subsystem for the IQOLB
// simulator: always-on protocol-invariant monitors (this file), a bounded
// schedule explorer that permutes coherence-message delivery orders
// (explorer.go), and a differential oracle that runs one workload
// signature under every lock primitive and compares final memory state
// (oracle.go).
//
// The monitors watch the properties the paper's delay machinery is most
// likely to break: single-writer-multiple-reader, the data-value
// invariant, bus-order lock hand-off, tear-off copies staying
// non-coherent, and freedom from starvation of queued LPRFO waiters.
package check

import (
	"fmt"

	"iqolb/internal/coherence"
	"iqolb/internal/engine"
	"iqolb/internal/interconnect"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
)

// Config tunes a Monitor. The zero value is a sensible always-on setup:
// full invariant scans every defaultScanStride events, a starvation bound
// derived from the policy's delay budgets, and fail-fast halting.
type Config struct {
	// ScanStride runs a full invariant scan every N dispatched events
	// (1 = every event, as the explorer uses; 0 = defaultScanStride).
	// Installs and grants are additionally checked immediately, so a
	// sparse stride only delays detection of scan-only violations.
	ScanStride uint64
	// StarvationBound is the maximum age, in cycles, of an observed but
	// ungranted LPRFO before the watchdog flags starvation. 0 derives a
	// bound from the policy's lock/SC delay budgets and the node count.
	StarvationBound engine.Time
	// KeepGoing records violations without halting the engine. The
	// default (false) halts the machine at the end of the first violating
	// event, so a broken run stops burning cycles.
	KeepGoing bool
	// MaxViolations caps the recorded violation list (0 = 32).
	MaxViolations int
	// Degrader, when non-nil, turns the starvation watchdog into a
	// recovery trigger: the first starvation detection calls
	// Degrade(reason) — dropping the machine to plain-RFO semantics —
	// instead of reporting a violation, and every pending grant's clock
	// restarts so the degraded protocol gets a full bound to drain the
	// queue. A second starvation after degradation reports normally.
	// Pass the machine's Fabric.
	Degrader Degrader
}

// Degrader is the graceful-degradation hook the starvation watchdog
// fires: coherence.Fabric implements it by falling back to plain-RFO
// semantics.
type Degrader interface {
	Degrade(reason string)
}

const (
	defaultScanStride    = 4096
	defaultMaxViolations = 32
)

// Violation is one observed invariant breach.
type Violation struct {
	At     engine.Time
	Kind   string // "swmr", "data-value", "handoff-order", "tearoff-ownership", "starvation"
	Line   mem.LineID
	Node   mem.NodeID
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: node %s line %d: %s", v.At, v.Kind, v.Node, v.Line, v.Detail)
}

// pendingGrant is an observed LPRFO that has not yet been granted the line.
type pendingGrant struct {
	node  mem.NodeID
	since engine.Time
}

// Monitor implements coherence.Probe and engine after-step checking. It
// tracks only lines contended by two or more distinct requesters, so
// private streaming traffic costs one map lookup per bus transaction.
type Monitor struct {
	eng       *engine.Engine
	f         *coherence.Fabric
	procs     int
	cfg       Config
	retention bool

	tracked  map[mem.LineID]bool
	firstReq map[mem.LineID]mem.NodeID
	shadow   map[mem.Addr]uint64
	pending  map[mem.LineID][]pendingGrant

	tearNode  mem.NodeID
	tearLine  mem.LineID
	tearValid bool

	events     uint64
	scans      uint64
	violations []Violation
	halted     bool

	degraded      bool
	degradeReason string
	finishing     bool
}

// Attach builds a monitor over an assembled fabric and hooks it into the
// engine and the coherence probe. Call before the machine runs.
func Attach(eng *engine.Engine, f *coherence.Fabric, procs int, cfg Config) *Monitor {
	pol := f.Node(0).Policy().Config()
	if cfg.ScanStride == 0 {
		cfg.ScanStride = defaultScanStride
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = defaultMaxViolations
	}
	if cfg.StarvationBound == 0 {
		cfg.StarvationBound = engine.Time(procs+1)*(pol.LockTimeout+pol.SCTimeout) + 1_000_000
	}
	mo := &Monitor{
		eng:       eng,
		f:         f,
		procs:     procs,
		cfg:       cfg,
		retention: pol.QueueRetention,
		tracked:   make(map[mem.LineID]bool),
		firstReq:  make(map[mem.LineID]mem.NodeID),
		shadow:    make(map[mem.Addr]uint64),
		pending:   make(map[mem.LineID][]pendingGrant),
	}
	f.SetProbe(mo)
	eng.SetAfterStep(mo.afterStep)
	return mo
}

// AttachToMachine attaches a monitor to an assembled, not-yet-run machine.
func AttachToMachine(m *machine.Machine, cfg Config) *Monitor {
	return Attach(m.Engine(), m.Fabric(), m.Processors(), cfg)
}

// Violations returns the recorded breaches (nil when the run was clean).
func (mo *Monitor) Violations() []Violation { return mo.violations }

// Events reports how many engine events the monitor observed.
func (mo *Monitor) Events() uint64 { return mo.events }

// Scans reports how many full invariant scans ran.
func (mo *Monitor) Scans() uint64 { return mo.scans }

// TrackedLines reports how many contended lines the monitor is checking.
func (mo *Monitor) TrackedLines() int { return len(mo.tracked) }

// Degraded reports whether (and why) the monitor triggered graceful
// degradation via Config.Degrader.
func (mo *Monitor) Degraded() (bool, string) { return mo.degraded, mo.degradeReason }

// Err summarizes the violations as an error, nil if the run was clean.
// A non-nil result is a *ViolationError matching
// errors.Is(err, ErrProtocolViolation).
func (mo *Monitor) Err() error {
	if len(mo.violations) == 0 {
		return nil
	}
	return &ViolationError{Violations: mo.violations}
}

// Finish runs the end-of-run checks (a final full scan plus the committed
// value vs. surviving memory state comparison) and returns Err.
func (mo *Monitor) Finish() error {
	// The engine has stopped; degrading now would flush delays into a
	// dead event queue. Starvation found here reports as a violation.
	mo.finishing = true
	mo.scanAll(mo.eng.Now())
	for addr, want := range mo.shadow {
		if got := mo.peek(addr); got != want {
			mo.report(Violation{At: mo.eng.Now(), Kind: "data-value", Line: addr.Line(),
				Node: mem.MemoryNode,
				Detail: fmt.Sprintf("final state of addr %#x is %d, last committed store was %d",
					uint64(addr), got, want)})
		}
	}
	return mo.Err()
}

// peek reads an address the way a quiescent machine would: dirty cached
// copies first, then home memory.
func (mo *Monitor) peek(addr mem.Addr) uint64 {
	for i := 0; i < mo.procs; i++ {
		if v, ok := mo.f.Node(i).PeekWord(addr); ok {
			return v
		}
	}
	return mo.f.Memory().Peek(addr)
}

func (mo *Monitor) report(v Violation) {
	// A broken state persists across the probes of one event (and across
	// events in KeepGoing mode); collapse consecutive repeats.
	if n := len(mo.violations); n > 0 {
		last := mo.violations[n-1]
		if last.Kind == v.Kind && last.Line == v.Line && last.Node == v.Node {
			return
		}
	}
	if len(mo.violations) < mo.cfg.MaxViolations {
		mo.violations = append(mo.violations, v)
	}
}

// ---------------------------------------------------------------------------
// coherence.Probe
// ---------------------------------------------------------------------------

// Observe tracks contention and the bus-order hand-off queue.
func (mo *Monitor) Observe(tx interconnect.Tx) {
	line := tx.Line
	if !mo.tracked[line] {
		if first, ok := mo.firstReq[line]; !ok {
			mo.firstReq[line] = tx.Requester
		} else if first != tx.Requester {
			mo.tracked[line] = true
		}
	}
	if tx.Kind == mem.TxLPRFO {
		mo.pending[line] = append(mo.pending[line], pendingGrant{node: tx.Requester, since: mo.eng.Now()})
	}
}

// DataSend checks that exclusive grants respect the bus-order queue.
func (mo *Monitor) DataSend(m interconnect.Msg) {
	if m.Kind != mem.DataExclusive || m.Loan || m.To == mem.MemoryNode {
		return
	}
	q := mo.pending[m.Line]
	for i, p := range q {
		if p.node != m.To {
			continue
		}
		if i != 0 {
			mo.report(Violation{At: mo.eng.Now(), Kind: "handoff-order", Line: m.Line, Node: m.To,
				Detail: fmt.Sprintf("granted ahead of %d earlier queued LPRFO(s) (head %s)",
					i, q[0].node)})
		}
		mo.pending[m.Line] = append(q[:i:i], q[i+1:]...)
		return
	}
	// Not in the queue: a plain writer cutting in at the holder, which
	// the paper permits. Nothing to check.
}

// DataDeliver arms the tear-off ownership check for this event.
func (mo *Monitor) DataDeliver(m interconnect.Msg) {
	if m.Kind == mem.DataTearOff {
		mo.tearNode, mo.tearLine, mo.tearValid = m.To, m.Line, true
	}
}

// Install checks SWMR immediately at every install of a tracked line, and
// that tear-off deliveries never install anything.
func (mo *Monitor) Install(node mem.NodeID, line mem.LineID, state mem.State) {
	if mo.tearValid && mo.tearNode == node && mo.tearLine == line {
		mo.report(Violation{At: mo.eng.Now(), Kind: "tearoff-ownership", Line: line, Node: node,
			Detail: fmt.Sprintf("tear-off delivery installed a durable %s copy", state)})
	}
	if mo.tracked[line] {
		mo.checkLine(line, mo.eng.Now())
	}
}

// CommitStore maintains the last-committed-value shadow for tracked lines.
func (mo *Monitor) CommitStore(node mem.NodeID, addr mem.Addr, value uint64) {
	if mo.tracked[addr.Line()] {
		mo.shadow[addr] = value
	}
}

// Squash removes the squashing node from the hand-off queue; its re-issued
// LPRFO re-enters at its new bus position with a fresh starvation clock.
func (mo *Monitor) Squash(node mem.NodeID, line mem.LineID) {
	q := mo.pending[line]
	for i, p := range q {
		if p.node == node {
			mo.pending[line] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

// afterStep runs after every dispatched engine event.
func (mo *Monitor) afterStep(now engine.Time) {
	mo.events++
	mo.tearValid = false
	if mo.events%mo.cfg.ScanStride == 0 {
		mo.scanAll(now)
	}
	if !mo.cfg.KeepGoing && len(mo.violations) > 0 && !mo.halted {
		mo.halted = true
		mo.eng.Halt()
	}
}

// scanAll checks every tracked line plus the starvation watchdog.
func (mo *Monitor) scanAll(now engine.Time) {
	mo.scans++
	for line := range mo.tracked {
		mo.checkLine(line, now)
	}
	for line, q := range mo.pending {
		for _, p := range q {
			if now-p.since > mo.cfg.StarvationBound {
				if mo.cfg.Degrader != nil && !mo.degraded && !mo.finishing {
					// Recovery, not failure: drop the machine to
					// plain-RFO semantics and give every pending grant
					// a fresh starvation clock. Only a second
					// starvation — the degraded protocol itself failing
					// to make progress — is reported as a violation.
					mo.degraded = true
					mo.degradeReason = fmt.Sprintf(
						"starvation: node %s LPRFO on line %d ungranted after %d cycles",
						p.node, line, now-p.since)
					mo.cfg.Degrader.Degrade(mo.degradeReason)
					for _, pq := range mo.pending {
						for i := range pq {
							pq[i].since = now
						}
					}
					return
				}
				mo.report(Violation{At: now, Kind: "starvation", Line: line, Node: p.node,
					Detail: fmt.Sprintf("LPRFO observed at cycle %d still ungranted after %d cycles",
						p.since, now-p.since)})
			}
		}
	}
}

// checkLine verifies SWMR and the data-value invariant on one line.
func (mo *Monitor) checkLine(line mem.LineID, now engine.Time) {
	exclusive, owned, readers := 0, 0, 0
	exclNode := mem.MemoryNode
	for i := 0; i < mo.procs; i++ {
		st := mo.f.Node(i).State(line)
		switch st {
		case mem.Exclusive, mem.Modified:
			exclusive++
			exclNode = mem.NodeID(i)
		case mem.Owned:
			owned++
		}
		if st.CanRead() {
			readers++
		}
	}
	switch {
	case exclusive > 1:
		mo.report(Violation{At: now, Kind: "swmr", Line: line, Node: exclNode,
			Detail: fmt.Sprintf("%d writable (E/M) copies", exclusive)})
	case exclusive == 1 && readers > 1:
		mo.report(Violation{At: now, Kind: "swmr", Line: line, Node: exclNode,
			Detail: fmt.Sprintf("writable copy coexists with %d other readable copies", readers-1)})
	case exclusive+owned > 1:
		mo.report(Violation{At: now, Kind: "swmr", Line: line, Node: exclNode,
			Detail: fmt.Sprintf("%d owning copies (E/M/O)", exclusive + owned)})
	}
	// Data-value invariant: every readable copy agrees with every other
	// copy and with the last committed store where one is known.
	base := line.Base()
	haveRef := false
	var ref [mem.WordsPerLine]uint64
	for i := 0; i < mo.procs; i++ {
		if !mo.f.Node(i).State(line).CanRead() {
			continue
		}
		for w := 0; w < mem.WordsPerLine; w++ {
			addr := base + mem.Addr(w*mem.WordSize)
			v, ok := mo.f.Node(i).PeekWord(addr)
			if !ok {
				continue
			}
			if want, known := mo.shadow[addr]; known && v != want {
				mo.report(Violation{At: now, Kind: "data-value", Line: line, Node: mem.NodeID(i),
					Detail: fmt.Sprintf("addr %#x reads %d, last committed store was %d",
						uint64(addr), v, want)})
			}
			if haveRef && v != ref[w] {
				mo.report(Violation{At: now, Kind: "data-value", Line: line, Node: mem.NodeID(i),
					Detail: fmt.Sprintf("addr %#x reads %d, another copy reads %d",
						uint64(addr), v, ref[w])})
			}
			if !haveRef {
				ref[w] = v
			}
		}
		haveRef = true
	}
}
