package check

import (
	"testing"

	"iqolb/internal/machine"
	"iqolb/internal/workload"
)

// monitoredRun executes p under mech with a full-strength monitor (scan
// every event) and returns the monitor; the run itself must succeed.
func monitoredRun(t *testing.T, p workload.Params, mech Mechanism, procs int) *Monitor {
	t.Helper()
	bld, err := workload.Generate(p, mech.Primitive, procs)
	if err != nil {
		t.Fatalf("%s: generate: %v", mech.Name, err)
	}
	m, err := machine.New(mech.Config(procs), bld.Program, nil)
	if err != nil {
		t.Fatalf("%s: new machine: %v", mech.Name, err)
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	mon := AttachToMachine(m, Config{ScanStride: 1})
	res, err := m.Run()
	if cerr := mon.Finish(); cerr != nil {
		t.Fatalf("%s: %v", mech.Name, cerr)
	}
	if err != nil {
		t.Fatalf("%s: run: %v", mech.Name, err)
	}
	if res.HitLimit {
		t.Fatalf("%s: hit cycle limit", mech.Name)
	}
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		t.Fatalf("%s: %v", mech.Name, err)
	}
	return mon
}

// TestMonitorCleanAcrossMechanisms: a contended hand-off kernel satisfies
// every invariant under each of the five mechanisms, and the monitor
// demonstrably watched (tracked lines, ran scans).
func TestMonitorCleanAcrossMechanisms(t *testing.T) {
	p := defaultHandoffParams(4)
	for _, mech := range Mechanisms() {
		mon := monitoredRun(t, p, mech, 4)
		if len(mon.Violations()) != 0 {
			t.Errorf("%s: violations: %v", mech.Name, mon.Violations())
		}
		if mon.TrackedLines() == 0 {
			t.Errorf("%s: monitor tracked no lines (vacuous run)", mech.Name)
		}
		if mon.Scans() == 0 || mon.Events() == 0 {
			t.Errorf("%s: monitor never scanned (scans=%d events=%d)",
				mech.Name, mon.Scans(), mon.Events())
		}
	}
}

// TestMonitorCleanIQOLBVariants exercises the delay machinery's
// alternatives: queue breakdown (retention off, which squashes and
// re-issues LPRFOs) and no-tear-off operation, plus a multi-lock signature
// with barriers, jitter, and private traffic.
func TestMonitorCleanIQOLBVariants(t *testing.T) {
	variants := []Mechanism{
		{Name: "iqolb-noret", Primitive: Mechanisms()[4].Primitive, Mode: Mechanisms()[4].Mode, Retention: false, TearOff: true},
		{Name: "iqolb-notear", Primitive: Mechanisms()[4].Primitive, Mode: Mechanisms()[4].Mode, Retention: true, TearOff: false},
	}
	p := workload.Params{
		Iterations: 2, Locks: 3, TotalCS: 24, HotPct: 50,
		CSWork: 20, CSWrites: 2, ThinkWork: 40, ThinkJitter: 20,
		PrivateLines: 2, BarriersPerIter: 1,
	}
	for _, mech := range variants {
		mon := monitoredRun(t, p, mech, 4)
		if len(mon.Violations()) != 0 {
			t.Errorf("%s: violations: %v", mech.Name, mon.Violations())
		}
	}
}

// TestMonitorSparseStrideMatchesDense: the default (sparse) scan stride
// must not itself create false positives on a clean contended run.
func TestMonitorSparseStride(t *testing.T) {
	p := defaultHandoffParams(4)
	mech := Mechanisms()[4]
	bld, err := workload.Generate(p, mech.Primitive, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(mech.Config(4), bld.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	mon := AttachToMachine(m, Config{}) // default stride
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Finish(); err != nil {
		t.Fatal(err)
	}
}
