package check

import (
	"testing"

	"iqolb/internal/coherence"
	"iqolb/internal/machine"
	"iqolb/internal/workload"
)

// mutationRun executes the 2-proc hand-off kernel under IQOLB with a
// full-strength monitor and returns it without failing on run errors (a
// detected violation halts the machine, which surfaces as a deadlock).
func mutationRun(t *testing.T) *Monitor {
	t.Helper()
	p := defaultHandoffParams(2)
	mech := Mechanisms()[4] // iqolb
	bld, err := workload.Generate(p, mech.Primitive, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mech.Config(2)
	cfg.CycleLimit = 5_000_000 // backstop: the stuck-delay fault livelocks
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	mon := AttachToMachine(m, Config{ScanStride: 1, StarvationBound: 50_000})
	m.Run()
	mon.Finish()
	return mon
}

func kinds(vs []Violation) map[string]int {
	k := make(map[string]int)
	for _, v := range vs {
		k[v.Kind]++
	}
	return k
}

// TestMutationTearOffOwnership: with the seeded fault sending tear-offs as
// ownership transfers (two writable copies of the lock line), the SWMR
// monitor must fire. Guards against a vacuously passing checker.
func TestMutationTearOffOwnership(t *testing.T) {
	coherence.SetFaultTearOffOwnership(true)
	defer coherence.SetFaultTearOffOwnership(false)
	mon := mutationRun(t)
	if kinds(mon.Violations())["swmr"] == 0 {
		t.Fatalf("seeded tear-off-ownership mutation not detected; violations: %v", mon.Violations())
	}
}

// TestMutationStuckDelay: with the seeded fault making delayed responses
// permanent (flush and time-out both suppressed), the queued LPRFO waiter
// starves and the watchdog must fire.
func TestMutationStuckDelay(t *testing.T) {
	coherence.SetFaultStuckDelay(true)
	defer coherence.SetFaultStuckDelay(false)
	mon := mutationRun(t)
	if kinds(mon.Violations())["starvation"] == 0 {
		t.Fatalf("seeded stuck-delay mutation not detected; violations: %v", mon.Violations())
	}
}

// TestMutationsOff: the identical run with both faults clear is clean —
// the mutation tests above detect the faults, not the workload.
func TestMutationsOff(t *testing.T) {
	mon := mutationRun(t)
	if len(mon.Violations()) != 0 {
		t.Fatalf("unmutated run not clean: %v", mon.Violations())
	}
}
