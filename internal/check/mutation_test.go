package check

import (
	"errors"
	"testing"

	"iqolb/internal/faults"
	"iqolb/internal/machine"
	"iqolb/internal/workload"
)

// mutationRun executes the 2-proc hand-off kernel under IQOLB with a
// full-strength monitor and the given fault plan (nil = clean run),
// returning the monitor and the run error without failing on either (a
// detected violation halts the machine, which surfaces as a deadlock).
// The fault switches are per-machine, so these tests parallelize with
// the rest of the package.
func mutationRun(t *testing.T, plan *faults.Plan) (*Monitor, error) {
	t.Helper()
	p := defaultHandoffParams(2)
	mech := Mechanisms()[4] // iqolb
	bld, err := workload.Generate(p, mech.Primitive, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mech.Config(2)
	cfg.CycleLimit = 5_000_000 // backstop: the stuck-delay fault livelocks
	cfg.Faults = plan
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	mon := AttachToMachine(m, Config{ScanStride: 1, StarvationBound: 50_000})
	_, runErr := m.Run()
	mon.Finish()
	return mon, runErr
}

func kinds(vs []Violation) map[string]int {
	k := make(map[string]int)
	for _, v := range vs {
		k[v.Kind]++
	}
	return k
}

// TestMutationTearOffOwnership: with the injected fault sending tear-offs
// as ownership transfers (two writable copies of the lock line), the SWMR
// monitor must fire. Guards against a vacuously passing checker.
func TestMutationTearOffOwnership(t *testing.T) {
	t.Parallel()
	mon, _ := mutationRun(t, &faults.Plan{Seed: 1, Kinds: []faults.Kind{faults.TearOffOwnership}})
	if kinds(mon.Violations())["swmr"] == 0 {
		t.Fatalf("injected tear-off-ownership fault not detected; violations: %v", mon.Violations())
	}
	if !errors.Is(mon.Err(), ErrProtocolViolation) {
		t.Fatalf("Err() = %v; want ErrProtocolViolation", mon.Err())
	}
}

// TestMutationStuckDelay: with the injected fault wedging delayed
// responses (flush and time-out both suppressed), the queued LPRFO waiter
// starves and the watchdog must fire.
func TestMutationStuckDelay(t *testing.T) {
	t.Parallel()
	mon, _ := mutationRun(t, &faults.Plan{Seed: 1, Kinds: []faults.Kind{faults.StuckDelay}})
	if kinds(mon.Violations())["starvation"] == 0 {
		t.Fatalf("injected stuck-delay fault not detected; violations: %v", mon.Violations())
	}
}

// TestMutationsOff: the identical run with no fault plan is clean — the
// mutation tests above detect the faults, not the workload.
func TestMutationsOff(t *testing.T) {
	t.Parallel()
	mon, err := mutationRun(t, nil)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if len(mon.Violations()) != 0 {
		t.Fatalf("unmutated run not clean: %v", mon.Violations())
	}
}

// TestMutationStuckDelayDegrades: the same stuck-delay injection with the
// fabric wired as the monitor's Degrader recovers instead of starving:
// the watchdog drops the machine to plain-RFO semantics, the run
// completes, and no violation is recorded.
func TestMutationStuckDelayDegrades(t *testing.T) {
	t.Parallel()
	p := defaultHandoffParams(2)
	mech := Mechanisms()[4] // iqolb
	bld, err := workload.Generate(p, mech.Primitive, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mech.Config(2)
	cfg.CycleLimit = 5_000_000
	cfg.Faults = &faults.Plan{Seed: 1, Kinds: []faults.Kind{faults.StuckDelay}}
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	mon := AttachToMachine(m, Config{ScanStride: 1, StarvationBound: 50_000,
		Degrader: m.Fabric()})
	res, runErr := m.Run()
	if err := mon.Finish(); err != nil {
		t.Fatalf("degraded run not clean: %v", err)
	}
	if runErr != nil {
		t.Fatalf("degraded run failed: %v", runErr)
	}
	if res.HitLimit {
		t.Fatal("degraded run hit the cycle limit")
	}
	if deg, reason := mon.Degraded(); !deg || reason == "" {
		t.Fatalf("monitor did not degrade (degraded=%v reason=%q)", deg, reason)
	}
	if deg, _ := m.Fabric().Degraded(); !deg {
		t.Fatal("fabric did not degrade")
	}
}
