package core

import (
	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

// HeldLock is one entry of the held-locks table: a location this node
// recently acquired with a successful LL/SC and has not yet released.
type HeldLock struct {
	Line  mem.LineID
	Addr  mem.Addr // exact word, so collocated-data stores are not misread as releases
	PC    int      // acquiring LL's PC, for predictor training
	Since engine.Time
	// Delaying marks entries whose speculation extends response delays
	// past the SC (predicted locks). Non-delaying entries exist purely to
	// observe the release store for training.
	Delaying bool
	// Footprint lists protected-data lines written during this lock
	// tenure; under Generalized IQOLB (§6) requests for them are delayed
	// and answered speculatively exactly like the lock line itself.
	Footprint []mem.LineID
}

// InFootprint reports whether the line is part of the entry's protected
// data.
func (e *HeldLock) InFootprint(line mem.LineID) bool {
	for _, l := range e.Footprint {
		if l == line {
			return true
		}
	}
	return false
}

// HeldTable is the small fully-associative table of locks currently held
// (§3.4). Capacity overflow discards the oldest entry — the paper's rule
// that on entering a nested critical section the outer speculation can be
// discarded.
type HeldTable struct {
	cap     int
	entries []HeldLock
}

// NewHeldTable builds a table with the given capacity (minimum 1).
func NewHeldTable(capacity int) *HeldTable {
	if capacity < 1 {
		capacity = 1
	}
	return &HeldTable{cap: capacity}
}

// Len reports the live entry count.
func (t *HeldTable) Len() int { return len(t.entries) }

// Cap reports the capacity.
func (t *HeldTable) Cap() int { return t.cap }

// Insert adds an entry, returning the evicted oldest entry when the table
// was full. Re-acquiring an address already present refreshes the entry in
// place (no eviction).
func (t *HeldTable) Insert(e HeldLock) (evicted HeldLock, wasEvicted bool) {
	for i := range t.entries {
		if t.entries[i].Addr == e.Addr {
			t.entries[i] = e
			return HeldLock{}, false
		}
	}
	if len(t.entries) == t.cap {
		evicted = t.entries[0]
		copy(t.entries, t.entries[1:])
		t.entries[len(t.entries)-1] = e
		return evicted, true
	}
	t.entries = append(t.entries, e)
	return HeldLock{}, false
}

// Lookup finds the entry for an exact word address.
func (t *HeldTable) Lookup(addr mem.Addr) (HeldLock, bool) {
	for _, e := range t.entries {
		if e.Addr == addr {
			return e, true
		}
	}
	return HeldLock{}, false
}

// LookupLine finds any entry on the given line.
func (t *HeldTable) LookupLine(line mem.LineID) (HeldLock, bool) {
	for _, e := range t.entries {
		if e.Line == line {
			return e, true
		}
	}
	return HeldLock{}, false
}

// Remove deletes and returns the entry for an exact word address.
func (t *HeldTable) Remove(addr mem.Addr) (HeldLock, bool) {
	for i, e := range t.entries {
		if e.Addr == addr {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return e, true
		}
	}
	return HeldLock{}, false
}

// RemoveLine deletes and returns the first entry on the given line.
func (t *HeldTable) RemoveLine(line mem.LineID) (HeldLock, bool) {
	for i, e := range t.entries {
		if e.Line == line {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return e, true
		}
	}
	return HeldLock{}, false
}
