// Package core implements the paper's primary contribution: the speculation
// and delay machinery that turns ordinary LL/SC code into an implicit
// hardware lock queue (IQOLB).
//
// It provides the four hardware modes of the paper's Figure 1 progression —
// baseline LL/SC, aggressive baseline (RFO on LL), delayed response, and
// implicit QOLB — plus the two queue-retention alternatives, the PC-indexed
// lock predictor of §3.4, and the held-locks table used to recognize
// release stores. The cache controllers in package coherence consult this
// policy at every decision point; nothing here touches software: the same
// programs run under every mode.
package core

import (
	"fmt"

	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

// Mode selects the hardware synchronization mechanism (Figure 1).
type Mode int

const (
	// ModeBaseline is conventional LL/SC: LL fetches Shared, SC upgrades.
	// At least one processor always succeeds; two bus transactions per
	// contended read-modify-write.
	ModeBaseline Mode = iota
	// ModeAggressive is the aggressive baseline: the LL itself issues a
	// read-for-ownership. One transaction per RMW when uncontended, but
	// livelock-prone under contention (§3.1).
	ModeAggressive
	// ModeDelayed is the delayed-response scheme of §3.2: LL issues an
	// LPRFO and the owner delays its response until its own SC completes
	// (or a time-out), building a queue of requests in bus order.
	ModeDelayed
	// ModeIQOLB adds the lock speculation of §3.3–3.4: predicted lock
	// acquires extend the delay past the SC until the releasing store,
	// with tear-off copies keeping waiters spinning locally.
	ModeIQOLB
)

var modeNames = [...]string{"baseline", "aggressive", "delayed", "iqolb"}

// String returns the mode's name as used by the CLI tools.
func (m Mode) String() string {
	if int(m) < len(modeNames) && m >= 0 {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, error) {
	for i, n := range modeNames {
		if s == n {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q", s)
}

// UsesLPRFO reports whether LL misses issue low-priority RFOs in this mode.
func (m Mode) UsesLPRFO() bool { return m == ModeDelayed || m == ModeIQOLB }

// Config parameterizes the policy.
type Config struct {
	Mode Mode

	// QueueRetention selects the "with queue retention" alternative: an
	// external plain write to a queued line is serviced with a
	// return-marker and the queue survives. Off, the queue breaks down
	// and waiters re-issue their requests (§3.2, §3.3).
	QueueRetention bool

	// SCTimeout bounds how long a response may be delayed while waiting
	// for the local SC to complete (the §3.2 time-out).
	SCTimeout engine.Time

	// LockTimeout bounds how long a predicted lock holder may delay a
	// response while waiting for its release store (§3.3).
	LockTimeout engine.Time

	// RFOServiceDelay is the small mandatory service latency for plain
	// (high-priority) read-for-ownership requests.
	RFOServiceDelay engine.Time

	// TearOff enables speculative tear-off responses to delayed
	// requesters (§3.3). Disabling it is an ablation: waiters then block
	// until ownership arrives.
	TearOff bool

	// PredictorEntries sizes the PC-indexed lock predictor. Zero disables
	// prediction; with prediction disabled under ModeIQOLB every
	// successful LL/SC is treated as a lock acquire (the "always lock"
	// ablation).
	PredictorEntries int

	// HeldLockEntries sizes the table of locks currently held (§3.4
	// "the table can be small"). The oldest speculation is discarded
	// when a nested acquire overflows the table.
	HeldLockEntries int

	// GeneralizedData enables the paper's §6 "Generalized implicit QOLB"
	// extension: protected-data lines written during a predicted lock's
	// critical section join the speculation — requests for them are
	// delayed and served with tear-offs until the release, so the data
	// rides with the lock instead of ping-ponging mid-section. Only
	// meaningful under ModeIQOLB.
	GeneralizedData bool
	// FootprintLines bounds how many data lines one lock tenure may pull
	// into its speculation (hardware tag budget). Zero selects a default
	// of 4 when GeneralizedData is on.
	FootprintLines int
}

// DefaultConfig returns the policy parameters used in the evaluation.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:             mode,
		QueueRetention:   true,
		SCTimeout:        1000,
		LockTimeout:      10000,
		RFOServiceDelay:  4,
		TearOff:          true,
		PredictorEntries: 256,
		HeldLockEntries:  4,
	}
}

// Validate rejects configurations that cannot work.
func (c Config) Validate() error {
	if c.Mode < ModeBaseline || c.Mode > ModeIQOLB {
		return fmt.Errorf("core: invalid mode %d", int(c.Mode))
	}
	if c.Mode.UsesLPRFO() {
		if c.SCTimeout == 0 {
			return fmt.Errorf("core: SCTimeout must be positive in %s mode (forward progress)", c.Mode)
		}
		if c.Mode == ModeIQOLB && c.LockTimeout == 0 {
			return fmt.Errorf("core: LockTimeout must be positive in iqolb mode")
		}
	}
	if c.HeldLockEntries < 0 || c.PredictorEntries < 0 {
		return fmt.Errorf("core: negative table size")
	}
	return nil
}

// AcquireClass is the predictor's verdict for a successful LL/SC.
type AcquireClass int

const (
	// ClassFetchPhi: treat the RMW as a simple Fetch&Phi; stop delaying
	// once the SC has completed.
	ClassFetchPhi AcquireClass = iota
	// ClassLock: treat the RMW as a lock acquire; keep delaying until the
	// release store (or LockTimeout).
	ClassLock
)

// String names the class.
func (c AcquireClass) String() string {
	if c == ClassLock {
		return "lock"
	}
	return "fetchphi"
}

// Policy is the per-node decision engine consulted by a cache controller.
// It owns the node's predictor and held-locks table.
type Policy struct {
	cfg  Config
	pred *Predictor
	held *HeldTable
}

// NewPolicy builds a policy (and its tables) from the configuration.
func NewPolicy(cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Policy{cfg: cfg, held: NewHeldTable(cfg.HeldLockEntries)}
	if cfg.PredictorEntries > 0 {
		p.pred = NewPredictor(cfg.PredictorEntries)
	}
	return p, nil
}

// Config returns the policy's configuration.
func (p *Policy) Config() Config { return p.cfg }

// Held exposes the held-locks table (the controller consults it when
// deciding whether a store is a release and tests inspect it).
func (p *Policy) Held() *HeldTable { return p.held }

// Predictor exposes the lock predictor, nil when disabled.
func (p *Policy) Predictor() *Predictor { return p.pred }

// TxForLL returns the bus transaction an LL miss should issue.
func (p *Policy) TxForLL() mem.TxKind {
	switch p.cfg.Mode {
	case ModeBaseline:
		return mem.TxGETS
	case ModeAggressive:
		return mem.TxGETX
	default:
		return mem.TxLPRFO
	}
}

// ClassifyAcquire is consulted when an SC succeeds: should the node keep
// holding the line past the SC (lock behaviour) or not (Fetch&Phi)?
// Under non-IQOLB modes the answer is always Fetch&Phi. Under IQOLB with
// the predictor disabled, every acquire is treated as a lock.
func (p *Policy) ClassifyAcquire(pc int) AcquireClass {
	if p.cfg.Mode != ModeIQOLB {
		return ClassFetchPhi
	}
	if p.pred == nil {
		return ClassLock
	}
	if p.pred.PredictLock(pc) {
		return ClassLock
	}
	return ClassFetchPhi
}

// OnSCSuccess records a completed read-modify-write in the held table so a
// later release store can be recognized (training happens even for
// PCs currently predicted Fetch&Phi). It returns the class driving the
// delay decision and any entry evicted by capacity (whose speculative
// delay the controller must abandon, per §3.3's nested-section rule).
func (p *Policy) OnSCSuccess(pc int, addr mem.Addr, now engine.Time) (AcquireClass, *HeldLock, bool) {
	class := p.ClassifyAcquire(pc)
	if p.cfg.Mode != ModeIQOLB {
		return class, nil, false
	}
	evicted, ok := p.held.Insert(HeldLock{Line: addr.Line(), Addr: addr, PC: pc, Since: now,
		Delaying: class == ClassLock})
	if ok {
		return class, &evicted, true
	}
	return class, nil, false
}

// OnStore is consulted for every store the node performs. If the store
// address matches a held-locks entry it is a release: the entry is removed,
// the predictor is trained toward "lock", and the releasing entry is
// returned (with its data footprint) so the controller can forward the
// lock line and flush the footprint delays. A store that is not a release
// instead extends the innermost delaying lock's footprint under
// Generalized IQOLB.
func (p *Policy) OnStore(addr mem.Addr) (HeldLock, bool) {
	e, ok := p.held.Remove(addr)
	if !ok {
		p.noteCSWrite(addr)
		return HeldLock{}, false
	}
	if p.pred != nil {
		p.pred.TrainLock(e.PC)
	}
	return e, true
}

// footprintCap returns the per-tenure data-line budget.
func (p *Policy) footprintCap() int {
	if !p.cfg.GeneralizedData || p.cfg.Mode != ModeIQOLB {
		return 0
	}
	if p.cfg.FootprintLines > 0 {
		return p.cfg.FootprintLines
	}
	return 4
}

// noteCSWrite records a critical-section data write in the newest delaying
// lock's footprint.
func (p *Policy) noteCSWrite(addr mem.Addr) {
	budget := p.footprintCap()
	if budget == 0 {
		return
	}
	line := addr.Line()
	// Newest delaying entry wins (nested sections speculate innermost).
	for i := len(p.held.entries) - 1; i >= 0; i-- {
		e := &p.held.entries[i]
		if !e.Delaying {
			continue
		}
		if e.Line == line || e.InFootprint(line) {
			return
		}
		if len(e.Footprint) < budget {
			e.Footprint = append(e.Footprint, line)
		}
		return
	}
}

// OnDelayTimeout is consulted when a delayed response is forced out by the
// time-out. For the lock line itself the speculation was wrong (or the
// critical section far too long): train away from "lock" and drop the
// entry. For a footprint line only that line's speculation ends; the lock
// prediction stands.
func (p *Policy) OnDelayTimeout(line mem.LineID) {
	for i := range p.held.entries {
		e := &p.held.entries[i]
		if e.Line == line {
			if p.pred != nil {
				p.pred.TrainNotLock(e.PC)
			}
			p.held.entries = append(p.held.entries[:i], p.held.entries[i+1:]...)
			return
		}
		if e.InFootprint(line) {
			for j, l := range e.Footprint {
				if l == line {
					e.Footprint = append(e.Footprint[:j], e.Footprint[j+1:]...)
					break
				}
			}
			return
		}
	}
}

// Note: there is deliberately no hook for losing a cache line. Holding a
// lock is a property of the program, not of line residence: a node whose
// lock line is stolen or evicted still holds the lock, must still be
// recognized as the releaser when its store comes back around (that store
// both trains the predictor and triggers the hand-off), and should delay
// LPRFO responses again if the line returns to it before the release.
// Held-table entries therefore persist until the release store, a delay
// time-out (OnDelayTimeout), or capacity eviction.

// CorruptPredictor flips the predictor's verdict for pc (fault
// injection, see Predictor.Corrupt). No-op with the predictor disabled.
func (p *Policy) CorruptPredictor(pc int) {
	if p.pred == nil {
		return
	}
	p.pred.Corrupt(pc)
}

// DelayBudget returns how long a response for the line may be delayed from
// the moment the delay starts, given whether the node is inside an LL→SC
// window or holding a predicted lock. A zero budget means "respond
// promptly" (after RFOServiceDelay).
func (p *Policy) DelayBudget(holdingLock bool) engine.Time {
	if !p.cfg.Mode.UsesLPRFO() {
		return 0
	}
	if holdingLock {
		return p.cfg.LockTimeout
	}
	return p.cfg.SCTimeout
}

// HoldingLockOn reports whether the node currently holds a predicted lock
// whose delay extends past the SC on the given line — either the lock's
// own line or, under Generalized IQOLB, a protected-data line in a
// delaying tenure's footprint.
func (p *Policy) HoldingLockOn(line mem.LineID) bool {
	for i := range p.held.entries {
		e := &p.held.entries[i]
		if !e.Delaying {
			continue
		}
		if e.Line == line || e.InFootprint(line) {
			return true
		}
	}
	return false
}
