package core

import (
	"fmt"
	"testing"

	"iqolb/internal/mem"
)

// Table-driven aliasing tests for the direct-mapped predictor: two PCs
// that map to the same slot (pc & (size-1)) fight over one entry, and
// the most recent training always wins the slot outright.
func TestPredictorAliasingTable(t *testing.T) {
	type step struct {
		op string // "lock", "notlock", "predict"
		pc int
		// want applies to "predict" steps only.
		want bool
	}
	cases := []struct {
		name  string
		size  int // requested entry count (rounded up to power of two)
		steps []step
	}{
		{
			name: "alias-evicts-confident-entry",
			size: 4,
			steps: []step{
				{op: "lock", pc: 1},
				{op: "predict", pc: 1, want: true},
				{op: "lock", pc: 5}, // 5 & 3 == 1: same slot
				{op: "predict", pc: 5, want: true},
				{op: "predict", pc: 1, want: false}, // evicted, conservative default
			},
		},
		{
			name: "notlock-alias-resets-slot",
			size: 4,
			steps: []step{
				{op: "lock", pc: 2},
				{op: "notlock", pc: 6}, // 6 & 3 == 2: replaces with conf 0
				{op: "predict", pc: 2, want: false},
				{op: "predict", pc: 6, want: false},
				{op: "lock", pc: 6},
				{op: "predict", pc: 6, want: true},
			},
		},
		{
			name: "distinct-slots-do-not-interfere",
			size: 4,
			steps: []step{
				{op: "lock", pc: 1},
				{op: "lock", pc: 2},
				{op: "notlock", pc: 3},
				{op: "predict", pc: 1, want: true},
				{op: "predict", pc: 2, want: true},
				{op: "predict", pc: 3, want: false},
			},
		},
		{
			name: "size-rounds-up-so-pc3-and-pc7-alias",
			size: 3, // rounds up to 4, so 3 and 7 share a slot
			steps: []step{
				{op: "lock", pc: 3},
				{op: "lock", pc: 7},
				{op: "predict", pc: 3, want: false},
				{op: "predict", pc: 7, want: true},
			},
		},
		{
			name: "single-entry-table-everything-aliases",
			size: 1,
			steps: []step{
				{op: "lock", pc: 10},
				{op: "predict", pc: 10, want: true},
				{op: "lock", pc: 11},
				{op: "predict", pc: 10, want: false},
				{op: "predict", pc: 11, want: true},
			},
		},
		{
			name: "decay-needs-two-timeouts-from-max",
			size: 8,
			steps: []step{
				{op: "lock", pc: 4}, // conf = confMax = 3
				{op: "notlock", pc: 4},
				{op: "predict", pc: 4, want: true}, // conf 2 >= threshold
				{op: "notlock", pc: 4},
				{op: "predict", pc: 4, want: false}, // conf 1 < threshold
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPredictor(tc.size)
			for i, s := range tc.steps {
				switch s.op {
				case "lock":
					p.TrainLock(s.pc)
				case "notlock":
					p.TrainNotLock(s.pc)
				case "predict":
					if got := p.PredictLock(s.pc); got != s.want {
						t.Fatalf("step %d: PredictLock(%d) = %v, want %v", i, s.pc, got, s.want)
					}
				default:
					t.Fatalf("step %d: bad op %q", i, s.op)
				}
			}
		})
	}
}

// Table-driven overflow tests for the held-locks table: insertion order
// decides the eviction victim (oldest first), refreshes never evict, and
// capacity is clamped to at least one entry.
func TestHeldTableOverflowTable(t *testing.T) {
	entry := func(i int) HeldLock {
		return HeldLock{Line: mem.LineID(i), Addr: mem.Addr(i * 64), PC: i}
	}
	cases := []struct {
		name        string
		cap         int
		inserts     []int // entry indices passed to entry()
		wantEvicted []int // PCs of evicted entries, in eviction order
		wantLive    []int // entry indices still present afterwards
	}{
		{
			name:        "underfull-never-evicts",
			cap:         3,
			inserts:     []int{1, 2, 3},
			wantEvicted: nil,
			wantLive:    []int{1, 2, 3},
		},
		{
			name:        "overflow-evicts-in-fifo-order",
			cap:         2,
			inserts:     []int{1, 2, 3, 4},
			wantEvicted: []int{1, 2},
			wantLive:    []int{3, 4},
		},
		{
			name:        "refresh-does-not-count-against-capacity",
			cap:         2,
			inserts:     []int{1, 2, 1, 1, 2},
			wantEvicted: nil,
			wantLive:    []int{1, 2},
		},
		{
			name:        "capacity-clamped-to-one",
			cap:         0,
			inserts:     []int{1, 2, 3},
			wantEvicted: []int{1, 2},
			wantLive:    []int{3},
		},
		{
			name:        "refresh-then-overflow-victim-is-original-slot",
			cap:         2,
			inserts:     []int{1, 2, 1, 3}, // refreshing 1 does not make 2 the oldest
			wantEvicted: []int{1},
			wantLive:    []int{2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ht := NewHeldTable(tc.cap)
			var evicted []int
			for _, i := range tc.inserts {
				if e, was := ht.Insert(entry(i)); was {
					evicted = append(evicted, e.PC)
				}
			}
			if fmt.Sprint(evicted) != fmt.Sprint(tc.wantEvicted) {
				t.Errorf("evicted PCs %v, want %v", evicted, tc.wantEvicted)
			}
			wantCap := tc.cap
			if wantCap < 1 {
				wantCap = 1
			}
			if ht.Cap() != wantCap || ht.Len() != len(tc.wantLive) {
				t.Errorf("cap %d len %d, want cap %d len %d", ht.Cap(), ht.Len(), wantCap, len(tc.wantLive))
			}
			for _, i := range tc.wantLive {
				if _, ok := ht.Lookup(entry(i).Addr); !ok {
					t.Errorf("entry %d missing after inserts", i)
				}
				if _, ok := ht.LookupLine(entry(i).Line); !ok {
					t.Errorf("entry %d not found by line", i)
				}
			}
		})
	}
}

// TestHeldTableRemoveLineFirstMatch: RemoveLine deletes only the first
// entry on a line, leaving later same-line entries live.
func TestHeldTableRemoveLineFirstMatch(t *testing.T) {
	ht := NewHeldTable(4)
	ht.Insert(HeldLock{Line: 9, Addr: 576, PC: 1})
	ht.Insert(HeldLock{Line: 9, Addr: 584, PC: 2})
	e, ok := ht.RemoveLine(9)
	if !ok || e.PC != 1 {
		t.Fatalf("RemoveLine = %+v ok=%v, want first entry PC 1", e, ok)
	}
	if e, ok := ht.LookupLine(9); !ok || e.PC != 2 {
		t.Fatalf("second same-line entry lost: %+v ok=%v", e, ok)
	}
	if _, ok := ht.RemoveLine(9); !ok {
		t.Fatal("second RemoveLine failed")
	}
	if _, ok := ht.RemoveLine(9); ok {
		t.Fatal("RemoveLine on empty line succeeded")
	}
}
