package core

import (
	"testing"
	"testing/quick"

	"iqolb/internal/mem"
)

func TestModeParseRoundTrip(t *testing.T) {
	for m := ModeBaseline; m <= ModeIQOLB; m++ {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%s) = %v, %v", m, back, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode parsed")
	}
}

func TestTxForLLPerMode(t *testing.T) {
	want := map[Mode]mem.TxKind{
		ModeBaseline:   mem.TxGETS,
		ModeAggressive: mem.TxGETX,
		ModeDelayed:    mem.TxLPRFO,
		ModeIQOLB:      mem.TxLPRFO,
	}
	for m, tx := range want {
		p, err := NewPolicy(DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TxForLL(); got != tx {
			t.Errorf("mode %s: TxForLL = %s, want %s", m, got, tx)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	c := DefaultConfig(ModeIQOLB)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.SCTimeout = 0
	if err := c.Validate(); err == nil {
		t.Error("zero SCTimeout accepted for LPRFO mode")
	}
	c = DefaultConfig(ModeIQOLB)
	c.LockTimeout = 0
	if err := c.Validate(); err == nil {
		t.Error("zero LockTimeout accepted for iqolb")
	}
	c = DefaultConfig(ModeBaseline)
	c.SCTimeout = 0 // irrelevant in baseline
	if err := c.Validate(); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
	c.Mode = Mode(99)
	if err := c.Validate(); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestPredictorDefaultsToFetchPhi(t *testing.T) {
	p := NewPredictor(16)
	if p.PredictLock(1234) {
		t.Fatal("unknown PC predicted lock")
	}
}

func TestPredictorLearnsLockOnRelease(t *testing.T) {
	p := NewPredictor(16)
	p.TrainLock(42)
	if !p.PredictLock(42) {
		t.Fatal("trained PC not predicted lock")
	}
	if p.Confidence(42) != confMax {
		t.Fatalf("confidence = %d, want %d", p.Confidence(42), confMax)
	}
}

func TestPredictorDecaysOnTimeout(t *testing.T) {
	p := NewPredictor(16)
	p.TrainLock(42)
	p.TrainNotLock(42)
	if !p.PredictLock(42) { // 3 -> 2, still confident
		t.Fatal("single timeout flipped a strongly trained PC")
	}
	p.TrainNotLock(42)
	if p.PredictLock(42) { // 2 -> 1
		t.Fatal("repeated timeouts did not turn prediction off")
	}
	for i := 0; i < 5; i++ {
		p.TrainNotLock(42) // must saturate at 0, not wrap
	}
	if p.Confidence(42) != 0 {
		t.Fatalf("confidence = %d, want 0", p.Confidence(42))
	}
}

func TestPredictorAliasReplacement(t *testing.T) {
	p := NewPredictor(4) // pcs 1 and 5 alias
	p.TrainLock(1)
	p.TrainNotLock(5)
	if p.PredictLock(1) {
		t.Fatal("aliased entry survived replacement")
	}
	if p.Confidence(5) != 0 {
		t.Fatal("fresh not-lock entry has nonzero confidence")
	}
}

// Property: a PC trained by k releases and no timeouts always predicts
// lock for k >= 1; and Confidence never leaves [0, confMax].
func TestPropertyPredictorSaturation(t *testing.T) {
	f := func(ops []bool, pc uint16) bool {
		p := NewPredictor(64)
		for _, lock := range ops {
			if lock {
				p.TrainLock(int(pc))
			} else {
				p.TrainNotLock(int(pc))
			}
			if c := p.Confidence(int(pc)); c < 0 || c > confMax {
				return false
			}
		}
		if len(ops) > 0 && ops[len(ops)-1] {
			return p.PredictLock(int(pc))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeldTableInsertLookupRemove(t *testing.T) {
	ht := NewHeldTable(2)
	ht.Insert(HeldLock{Line: 1, Addr: 64, PC: 7, Delaying: true})
	if e, ok := ht.Lookup(64); !ok || e.PC != 7 {
		t.Fatal("lookup failed")
	}
	if _, ok := ht.Lookup(72); ok {
		t.Fatal("lookup of collocated word matched lock word")
	}
	if e, ok := ht.LookupLine(1); !ok || !e.Delaying {
		t.Fatal("line lookup failed")
	}
	if _, ok := ht.Remove(64); !ok {
		t.Fatal("remove failed")
	}
	if ht.Len() != 0 {
		t.Fatal("entry not removed")
	}
}

func TestHeldTableEvictsOldestOnOverflow(t *testing.T) {
	ht := NewHeldTable(2)
	ht.Insert(HeldLock{Addr: 0, PC: 1})
	ht.Insert(HeldLock{Addr: 64, PC: 2})
	evicted, was := ht.Insert(HeldLock{Addr: 128, PC: 3})
	if !was || evicted.PC != 1 {
		t.Fatalf("evicted %+v (was=%v), want oldest PC 1", evicted, was)
	}
	if _, ok := ht.Lookup(0); ok {
		t.Fatal("evicted entry still present")
	}
}

func TestHeldTableReacquireRefreshesInPlace(t *testing.T) {
	ht := NewHeldTable(2)
	ht.Insert(HeldLock{Addr: 8, PC: 1, Since: 10})
	_, was := ht.Insert(HeldLock{Addr: 8, PC: 1, Since: 99})
	if was {
		t.Fatal("refresh evicted")
	}
	if e, _ := ht.Lookup(8); e.Since != 99 {
		t.Fatal("refresh did not update")
	}
	if ht.Len() != 1 {
		t.Fatal("duplicate entries")
	}
}

func TestPolicyClassification(t *testing.T) {
	// Non-IQOLB modes never classify as lock.
	for _, m := range []Mode{ModeBaseline, ModeAggressive, ModeDelayed} {
		p, _ := NewPolicy(DefaultConfig(m))
		if p.ClassifyAcquire(5) != ClassFetchPhi {
			t.Errorf("mode %s classified lock", m)
		}
	}
	// IQOLB with predictor: unknown -> fetchphi, after release -> lock.
	p, _ := NewPolicy(DefaultConfig(ModeIQOLB))
	if p.ClassifyAcquire(5) != ClassFetchPhi {
		t.Error("unknown PC classified lock")
	}
	class, _, _ := p.OnSCSuccess(5, 64, 100)
	if class != ClassFetchPhi {
		t.Error("first acquire classified lock")
	}
	if _, ok := p.OnStore(64); !ok {
		t.Fatal("release store not recognized")
	}
	if p.ClassifyAcquire(5) != ClassLock {
		t.Error("PC not lock after observed release")
	}
	// IQOLB without predictor: always lock.
	cfg := DefaultConfig(ModeIQOLB)
	cfg.PredictorEntries = 0
	p2, _ := NewPolicy(cfg)
	if p2.ClassifyAcquire(5) != ClassLock {
		t.Error("predictor-less iqolb not always-lock")
	}
}

func TestPolicyTimeoutTrainsAway(t *testing.T) {
	p, _ := NewPolicy(DefaultConfig(ModeIQOLB))
	p.Predictor().TrainLock(5)
	class, _, _ := p.OnSCSuccess(5, 64, 100)
	if class != ClassLock {
		t.Fatal("trained PC not classified lock")
	}
	if !p.HoldingLockOn(mem.Addr(64).Line()) {
		t.Fatal("held table missing delaying entry")
	}
	p.OnDelayTimeout(mem.Addr(64).Line())
	if p.Predictor().Confidence(5) != confMax-1 {
		t.Fatal("timeout did not decay confidence")
	}
	if p.HoldingLockOn(mem.Addr(64).Line()) {
		t.Fatal("timeout did not clear held entry")
	}
}

func TestHeldEntrySurvivesLineLoss(t *testing.T) {
	// Holding a lock is a program property, not line residence: the held
	// entry must persist so the eventual release store still trains the
	// predictor and triggers the hand-off (there is deliberately no
	// "line lost" hook on the policy).
	p, _ := NewPolicy(DefaultConfig(ModeIQOLB))
	p.OnSCSuccess(9, 128, 1)
	if _, ok := p.Held().Lookup(mem.Addr(128)); !ok {
		t.Fatal("held entry missing after acquire")
	}
	if _, ok := p.OnStore(128); !ok {
		t.Fatal("release after (conceptual) line loss not recognized")
	}
	if !p.Predictor().PredictLock(9) {
		t.Fatal("release did not train predictor")
	}
}

func TestPolicyNestedOverflowDiscardsOldest(t *testing.T) {
	cfg := DefaultConfig(ModeIQOLB)
	cfg.HeldLockEntries = 1
	p, _ := NewPolicy(cfg)
	p.Predictor().TrainLock(1)
	p.Predictor().TrainLock(2)
	p.OnSCSuccess(1, 64, 10)
	_, evicted, was := p.OnSCSuccess(2, 128, 20)
	if !was || evicted.PC != 1 {
		t.Fatalf("nested acquire did not evict outer speculation: %+v %v", evicted, was)
	}
}

func TestDelayBudget(t *testing.T) {
	p, _ := NewPolicy(DefaultConfig(ModeIQOLB))
	if p.DelayBudget(false) != p.Config().SCTimeout {
		t.Error("SC budget wrong")
	}
	if p.DelayBudget(true) != p.Config().LockTimeout {
		t.Error("lock budget wrong")
	}
	pb, _ := NewPolicy(DefaultConfig(ModeBaseline))
	if pb.DelayBudget(true) != 0 {
		t.Error("baseline mode has a delay budget")
	}
}

func TestOnStoreNonReleaseIgnored(t *testing.T) {
	p, _ := NewPolicy(DefaultConfig(ModeIQOLB))
	if _, ok := p.OnStore(4096); ok {
		t.Fatal("random store treated as release")
	}
}
