package core

import (
	"testing"

	"iqolb/internal/mem"
)

func genPolicy(t *testing.T, footprint int) *Policy {
	t.Helper()
	cfg := DefaultConfig(ModeIQOLB)
	cfg.GeneralizedData = true
	cfg.FootprintLines = footprint
	p, err := NewPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// acquireLock establishes a delaying tenure on lockAddr at PC pc.
func acquireLock(t *testing.T, p *Policy, pc int, lockAddr mem.Addr) {
	t.Helper()
	p.Predictor().TrainLock(pc)
	class, _, _ := p.OnSCSuccess(pc, lockAddr, 1)
	if class != ClassLock {
		t.Fatal("setup: acquire not classified lock")
	}
}

func TestFootprintGrowsOnCSWrites(t *testing.T) {
	p := genPolicy(t, 4)
	acquireLock(t, p, 7, 64)
	p.OnStore(1024) // CS data write, not a release
	p.OnStore(2048)
	if !p.HoldingLockOn(mem.Addr(1024).Line()) || !p.HoldingLockOn(mem.Addr(2048).Line()) {
		t.Fatal("footprint lines not covered by the speculation")
	}
	if p.HoldingLockOn(mem.Addr(4096).Line()) {
		t.Fatal("unwritten line covered")
	}
	// Duplicate writes must not duplicate entries.
	p.OnStore(1032) // same line as 1024
	e, _ := p.Held().Lookup(64)
	if len(e.Footprint) != 2 {
		t.Fatalf("footprint has %d lines, want 2", len(e.Footprint))
	}
}

func TestFootprintBounded(t *testing.T) {
	p := genPolicy(t, 2)
	acquireLock(t, p, 7, 64)
	for i := 1; i <= 5; i++ {
		p.OnStore(mem.Addr(1024 * i))
	}
	e, _ := p.Held().Lookup(64)
	if len(e.Footprint) != 2 {
		t.Fatalf("footprint has %d lines, budget 2", len(e.Footprint))
	}
}

func TestFootprintReleasedWithLock(t *testing.T) {
	p := genPolicy(t, 4)
	acquireLock(t, p, 7, 64)
	p.OnStore(1024)
	e, ok := p.OnStore(64) // the release
	if !ok {
		t.Fatal("release not recognized")
	}
	if len(e.Footprint) != 1 || e.Footprint[0] != mem.Addr(1024).Line() {
		t.Fatalf("release did not carry the footprint: %+v", e.Footprint)
	}
	if p.HoldingLockOn(mem.Addr(1024).Line()) {
		t.Fatal("footprint survived the release")
	}
}

func TestFootprintTimeoutDropsOnlyThatLine(t *testing.T) {
	p := genPolicy(t, 4)
	acquireLock(t, p, 7, 64)
	p.OnStore(1024)
	p.OnStore(2048)
	conf := p.Predictor().Confidence(7)
	p.OnDelayTimeout(mem.Addr(1024).Line())
	if p.HoldingLockOn(mem.Addr(1024).Line()) {
		t.Fatal("timed-out footprint line still covered")
	}
	if !p.HoldingLockOn(mem.Addr(2048).Line()) || !p.HoldingLockOn(mem.Addr(64).Line()) {
		t.Fatal("footprint timeout killed the whole tenure")
	}
	if p.Predictor().Confidence(7) != conf {
		t.Fatal("footprint timeout trained the lock predictor")
	}
	// A lock-line timeout, by contrast, ends the tenure and trains away.
	p.OnDelayTimeout(mem.Addr(64).Line())
	if p.HoldingLockOn(mem.Addr(64).Line()) || p.HoldingLockOn(mem.Addr(2048).Line()) {
		t.Fatal("lock timeout did not end the tenure")
	}
	if p.Predictor().Confidence(7) != conf-1 {
		t.Fatal("lock timeout did not train away")
	}
}

func TestFootprintDisabledByDefault(t *testing.T) {
	p, _ := NewPolicy(DefaultConfig(ModeIQOLB))
	p.Predictor().TrainLock(7)
	p.OnSCSuccess(7, 64, 1)
	p.OnStore(1024)
	if p.HoldingLockOn(mem.Addr(1024).Line()) {
		t.Fatal("footprint active without GeneralizedData")
	}
}

func TestFootprintAttachesToInnermostDelayingTenure(t *testing.T) {
	p := genPolicy(t, 4)
	acquireLock(t, p, 7, 64)
	acquireLock(t, p, 8, 128) // nested
	p.OnStore(4096)
	inner, _ := p.Held().Lookup(128)
	outer, _ := p.Held().Lookup(64)
	if len(inner.Footprint) != 1 || len(outer.Footprint) != 0 {
		t.Fatalf("footprint attached wrong: inner=%v outer=%v", inner.Footprint, outer.Footprint)
	}
}

func TestFootprintIgnoresFetchPhiTenures(t *testing.T) {
	p := genPolicy(t, 4)
	// Untrained acquire: entry exists but is not delaying.
	p.OnSCSuccess(7, 64, 1)
	p.OnStore(1024)
	e, _ := p.Held().Lookup(64)
	if len(e.Footprint) != 0 {
		t.Fatal("non-delaying tenure collected a footprint")
	}
}
