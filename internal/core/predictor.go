package core

// Predictor is the PC-indexed lock predictor of §3.4. Each entry carries a
// saturating confidence counter; a PC predicts "lock acquire" once its
// counter reaches the confident threshold.
//
// Training follows the paper's inference rule: a successful LL/SC to a
// location followed some time later by a plain store to the same location
// is a lock acquire/release pair — the release trains the PC strongly
// toward "lock". A speculation that instead dies by time-out trains gently
// away from "lock" (the pathological-case detector that "turns the
// predictor off" for that PC).
type Predictor struct {
	entries []predEntry

	// Lookups / outcomes, for the accuracy ablation.
	Lookups    uint64
	PredictsLk uint64
	TrainsLk   uint64
	TrainsNot  uint64
}

type predEntry struct {
	pc    int
	conf  int8
	valid bool
}

const (
	confMax       = 3
	confThreshold = 2
)

// NewPredictor builds a direct-mapped predictor with the given entry count
// (rounded up to a power of two).
func NewPredictor(entries int) *Predictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &Predictor{entries: make([]predEntry, n)}
}

func (p *Predictor) slot(pc int) *predEntry {
	return &p.entries[pc&(len(p.entries)-1)]
}

// PredictLock reports whether the PC is predicted to be a lock acquire.
// Unknown PCs predict Fetch&Phi (the conservative default of §3.4).
func (p *Predictor) PredictLock(pc int) bool {
	p.Lookups++
	e := p.slot(pc)
	lock := e.valid && e.pc == pc && e.conf >= confThreshold
	if lock {
		p.PredictsLk++
	}
	return lock
}

// TrainLock records an observed release for the PC, jumping confidence to
// the maximum ("once a lock operation is seen, one can predict with high
// confidence that this will be true for all future executions").
func (p *Predictor) TrainLock(pc int) {
	p.TrainsLk++
	e := p.slot(pc)
	if !e.valid || e.pc != pc {
		*e = predEntry{pc: pc, valid: true}
	}
	e.conf = confMax
}

// TrainNotLock records a speculation for the PC that ended in a time-out,
// decaying confidence by one.
func (p *Predictor) TrainNotLock(pc int) {
	p.TrainsNot++
	e := p.slot(pc)
	if !e.valid || e.pc != pc {
		*e = predEntry{pc: pc, valid: true}
		return
	}
	if e.conf > 0 {
		e.conf--
	}
}

// Corrupt flips the predictor's verdict for the PC (fault injection):
// a confident entry is cleared to zero confidence, anything else jumps
// straight to full confidence. The protocol must survive either
// misprediction — a wrong "lock" costs a LockTimeout, a wrong
// "fetchphi" just forgoes the delay — so this models a soft error in
// the predictor SRAM without touching protocol state.
func (p *Predictor) Corrupt(pc int) {
	e := p.slot(pc)
	if e.valid && e.pc == pc && e.conf >= confThreshold {
		e.conf = 0
		return
	}
	*e = predEntry{pc: pc, valid: true, conf: confMax}
}

// Confidence exposes the counter for a PC (tests and the sweep tool).
func (p *Predictor) Confidence(pc int) int {
	e := p.slot(pc)
	if !e.valid || e.pc != pc {
		return 0
	}
	return int(e.conf)
}
