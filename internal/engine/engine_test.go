package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFIFOWithinSameCycle(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of order: %v", order)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %d, want 5", e.Now())
	}
}

func TestTimeOrdering(t *testing.T) {
	e := New()
	times := []Time{9, 3, 7, 1, 8, 2, 0, 6, 5, 4}
	var fired []Time
	for _, at := range times {
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.Run(0)
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of time order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New()
	var secondAt Time
	e.At(10, func(Time) {
		e.After(5, func(now Time) { secondAt = now })
	})
	e.Run(0)
	if secondAt != 15 {
		t.Fatalf("After(5) from cycle 10 fired at %d, want 15", secondAt)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(3, func(Time) {})
	})
	e.Run(0)
}

func TestHaltStopsRun(t *testing.T) {
	e := New()
	count := 0
	for i := Time(0); i < 100; i++ {
		e.At(i, func(now Time) {
			count++
			if now == 10 {
				e.Halt()
			}
		})
	}
	e.Run(0)
	if count != 11 {
		t.Fatalf("fired %d events before halt, want 11", count)
	}
	if e.Pending() != 89 {
		t.Fatalf("pending = %d, want 89", e.Pending())
	}
}

func TestRunLimit(t *testing.T) {
	e := New()
	fired := 0
	e.At(5, func(Time) { fired++ })
	e.At(500, func(Time) { fired++ })
	end, hit := e.Run(100)
	if !hit {
		t.Fatal("limit not reported as hit")
	}
	if end != 100 {
		t.Fatalf("end = %d, want 100", end)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event beyond limit must not fire)", fired)
	}
}

func TestStepEmptyQueue(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestCascadedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recur func(Time)
	recur = func(Time) {
		depth++
		if depth < 1000 {
			e.After(1, recur)
		}
	}
	e.At(0, recur)
	end, _ := e.Run(0)
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if end != 999 {
		t.Fatalf("end = %d, want 999", end)
	}
}

// Property: for any set of (time, id) pairs, the engine dispatches them
// sorted by time with ties broken by insertion order.
func TestPropertyDispatchOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		type rec struct {
			at  Time
			idx int
		}
		e := New()
		var want, got []rec
		for i, r := range raw {
			at := Time(r % 64) // force plenty of ties
			want = append(want, rec{at, i})
			idx := i
			e.At(at, func(now Time) { got = append(got, rec{now, idx}) })
		}
		e.Run(0)
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(got) != len(raw) {
			return false
		}
		for i := range got {
			if got[i].at != want[i].at || got[i].idx != want[i].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var out []Time
		for i := 0; i < 500; i++ {
			e.At(Time(rng.Intn(100)), func(now Time) { out = append(out, now) })
		}
		e.Run(0)
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
