// Package engine provides the deterministic discrete-event core that drives
// the multiprocessor simulation.
//
// All simulator components (processors, caches, buses, memory controllers)
// schedule work as events on a single Engine. Events fire in nondecreasing
// time order; events scheduled for the same cycle fire in the order they
// were scheduled (FIFO by a monotonically increasing sequence number), which
// makes every simulation bit-for-bit reproducible.
package engine

import (
	"container/heap"
	"fmt"
)

// Time is the simulated clock, measured in processor cycles.
type Time uint64

// Event is a callback scheduled to run at a particular simulated time.
type Event func(now Time)

type item struct {
	at   Time
	seq  uint64
	call Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(item)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is not ready to use; call New.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	fired     uint64
	halted    bool
	afterStep []func(Time)
}

// New returns an empty engine with the clock at cycle zero.
func New() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules ev to fire at absolute time at. Scheduling into the past
// panics: it would silently corrupt causality and always indicates a bug in
// a component's latency arithmetic.
func (e *Engine) At(at Time, ev Event) {
	if at < e.now {
		panic(fmt.Sprintf("engine: event scheduled at %d, before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, call: ev})
}

// After schedules ev to fire delay cycles from now.
func (e *Engine) After(delay Time, ev Event) {
	e.At(e.now+delay, ev)
}

// Halt stops Run before the next event is dispatched. It is safe to call
// from inside an event.
func (e *Engine) Halt() { e.halted = true }

// SetAfterStep installs a callback invoked after every dispatched event,
// with the clock at that event's time. Observers (invariant monitors) use
// it for periodic scans; the callback must not schedule events or otherwise
// perturb the simulation. nil removes every installed callback.
func (e *Engine) SetAfterStep(fn func(Time)) {
	if fn == nil {
		e.afterStep = nil
		return
	}
	e.afterStep = []func(Time){fn}
}

// AddAfterStep appends an after-step callback without displacing those
// already installed, so independent observers (an invariant monitor and an
// observability collector, say) can coexist on one engine. Callbacks fire
// in attachment order.
func (e *Engine) AddAfterStep(fn func(Time)) {
	if fn == nil {
		return
	}
	e.afterStep = append(e.afterStep, fn)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(item)
	e.now = it.at
	e.fired++
	it.call(e.now)
	for _, fn := range e.afterStep {
		fn(e.now)
	}
	return true
}

// Run dispatches events until the queue drains, Halt is called, or the
// clock passes limit (a safety net against livelock in misbehaving
// protocols; limit==0 means no limit). It returns the final time and
// whether the run ended because the limit was hit.
func (e *Engine) Run(limit Time) (end Time, hitLimit bool) {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if limit != 0 && e.queue[0].at > limit {
			e.now = limit
			return e.now, true
		}
		e.Step()
	}
	return e.now, false
}
