package harness

import (
	"fmt"
	"io"
	"time"
)

// progress streams completed/total lines with an ETA estimate. All calls
// to report happen under the batch mutex, so no extra locking is needed.
type progress struct {
	w     io.Writer
	total int
	start time.Time
}

func newProgress(w io.Writer, total int) *progress {
	return &progress{w: w, total: total, start: time.Now()}
}

func (p *progress) report(done, hits int, rec Record) {
	if p.w == nil {
		return
	}
	eta := "?"
	if done > 0 && done < p.total {
		per := time.Since(p.start) / time.Duration(done)
		eta = (per * time.Duration(p.total-done)).Round(100 * time.Millisecond).String()
	} else if done == p.total {
		eta = "done"
	}
	status := rec.Status
	if rec.Status == StatusMiss {
		status = fmt.Sprintf("ran %.0f ms", rec.WallMS)
	}
	fmt.Fprintf(p.w, "harness: %d/%d (%d cached) eta %s  %s [%s]\n",
		done, p.total, hits, eta, rec.Label, status)
}
