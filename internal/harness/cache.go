package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// DefaultCacheDir is the conventional on-disk result cache location.
const DefaultCacheDir = ".iqolb-cache"

// Key returns the stable cache key for a canonical job configuration:
// the hex SHA-256 of its JSON encoding. encoding/json is deterministic
// for structs (field order) and maps (sorted keys), so equal configs
// always hash equally.
func Key(config any) (string, error) {
	data, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("harness: canonicalize config: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Cache memoizes job results as one JSON file per key under Dir.
type Cache struct {
	Dir string
}

// NewCache returns a cache rooted at dir ("" selects DefaultCacheDir).
// The directory is created lazily on the first Put.
func NewCache(dir string) *Cache {
	if dir == "" {
		dir = DefaultCacheDir
	}
	return &Cache{Dir: dir}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// Get loads the entry for key into out, reporting whether it existed.
func (c *Cache) Get(key string, out any) (bool, error) {
	data, err := os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, out); err != nil {
		return false, fmt.Errorf("harness: corrupt cache entry %s: %w", key, err)
	}
	return true, nil
}

// Quarantine moves the entry for key aside to <key>.corrupt so a
// corrupt or unreadable entry survives for post-mortem instead of being
// silently overwritten by the repairing fresh run. Best-effort: a
// missing entry or failed rename is ignored (the fresh Put wins either
// way).
func (c *Cache) Quarantine(key string) {
	os.Rename(c.path(key), filepath.Join(c.Dir, key+".corrupt"))
}

// Put stores v under key, atomically (write to a temp file, rename).
func (c *Cache) Put(key string, v any) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), c.path(key))
}
