// Package harness orchestrates batches of deterministic simulation jobs:
// it fans jobs out across a bounded worker pool, memoizes completed
// results in an on-disk cache keyed by a stable hash of each job's
// canonical configuration, streams progress to an io.Writer, and emits
// structured run artifacts (per-job JSON results plus an aggregate
// manifest with wall-clock timings and cache statistics).
//
// The harness is generic and knows nothing about the simulator: a Job
// carries a canonical config (hashed for the cache key) and a Run
// closure. Results are collected positionally — the output order is the
// input order regardless of completion order — so any output rendered
// from a harness batch is byte-identical to a serial run.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of work: a deterministic computation identified by its
// canonical configuration.
type Job[T any] struct {
	// Label names the job in progress lines, artifacts and the manifest.
	Label string
	// Config is the canonical description of the computation. It is
	// JSON-marshaled and hashed for the cache key; two jobs with equal
	// configs are the same computation. A nil Config opts this job out
	// of caching.
	Config any
	// Run executes the job on a cache miss. It must be safe to call
	// concurrently with other jobs' Run functions.
	Run func() (T, error)
	// Metrics optionally extracts scalar measurements from a result for
	// the manifest (e.g. sim cycles, latency percentiles). Called for
	// both fresh and cached results.
	Metrics func(T) map[string]float64
	// Snapshot optionally extracts a structured metrics snapshot from a
	// result for the manifest record; returning nil omits it. Called for
	// both fresh and cached results.
	Snapshot func(T) any
}

// Options configures a batch run.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// Cache memoizes results on disk; nil disables caching.
	Cache *Cache
	// Progress receives streaming completed/total/ETA lines; nil is
	// silent. Progress output never goes to stdout results.
	Progress io.Writer
	// ArtifactDir, when non-empty, receives one JSON file per job result
	// plus manifest.json for the batch.
	ArtifactDir string
	// KeepGoing runs every job even after failures. The manifest then
	// doubles as a failure manifest: each failed job carries its error
	// in its record, and the returned error is still the first failure
	// in job order (so callers notice), alongside the partial results.
	KeepGoing bool
	// JobTimeout bounds one job's wall-clock run time (0 = none). A job
	// that exceeds it fails with a timeout error; its goroutine is
	// abandoned (simulation jobs cannot be cancelled mid-event-loop).
	JobTimeout time.Duration
	// Retries re-runs a failed job up to N more times; meant for jobs
	// with environmental failure modes (cache I/O races, timeouts on a
	// loaded host), not for deterministic simulation errors, which will
	// simply fail identically each attempt.
	Retries int
	// RetryBackoff sleeps attempt*RetryBackoff before each retry.
	RetryBackoff time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Run executes the batch and returns the results in job order along with
// the batch manifest. On job failure the remaining queued jobs are
// skipped (or, under Options.KeepGoing, still run), the manifest records
// every outcome, and the returned error is the first failure in job
// order (wrapped with its label). The manifest is returned even on
// error; under KeepGoing the results of every succeeding job are too.
func Run[T any](opt Options, jobs []Job[T]) ([]T, *Manifest, error) {
	start := time.Now()
	results := make([]T, len(jobs))
	records := make([]Record, len(jobs))
	errs := make([]error, len(jobs))

	var (
		mu     sync.Mutex
		failed bool
		done   int
		hits   int
	)
	prog := newProgress(opt.Progress, len(jobs))

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				mu.Lock()
				skip := failed && !opt.KeepGoing
				mu.Unlock()
				if skip {
					records[i] = Record{Label: jobs[i].Label, Status: StatusSkipped}
					continue
				}
				rec, res, err := runOne(opt, jobs[i])
				results[i], records[i], errs[i] = res, rec, err
				mu.Lock()
				if err != nil {
					failed = true
				}
				done++
				if rec.Status == StatusHit {
					hits++
				}
				prog.report(done, hits, rec)
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	m := buildManifest(opt, records, time.Since(start))
	var firstErr error
	for i, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("%s: %w", jobs[i].Label, err)
			break
		}
	}
	if opt.ArtifactDir != "" {
		if err := writeArtifacts(opt.ArtifactDir, jobs, results, records, m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return results, m, firstErr
}

// runOne resolves a single job through the cache or by running it.
func runOne[T any](opt Options, job Job[T]) (Record, T, error) {
	t0 := time.Now()
	rec := Record{Label: job.Label}
	var zero T

	if job.Config != nil {
		key, err := Key(job.Config)
		if err != nil {
			rec.Status = StatusError
			rec.Error = err.Error()
			return rec, zero, fmt.Errorf("cache key: %w", err)
		}
		rec.Key = key
		if opt.Cache != nil {
			var cached T
			ok, err := opt.Cache.Get(key, &cached)
			if err != nil {
				// A corrupt or unreadable entry is quarantined aside as
				// <key>.corrupt for post-mortem, and the job re-runs
				// fresh (writing a repaired entry below).
				opt.Cache.Quarantine(key)
				ok = false
			}
			if ok {
				rec.Status = StatusHit
				rec.WallMS = msSince(t0)
				fillMetrics(&rec, job, cached)
				return rec, cached, nil
			}
		}
	}

	var res T
	var err error
	attempts := 0
	for {
		attempts++
		res, err = runGuarded(opt, job)
		if err == nil || attempts > opt.Retries {
			break
		}
		if opt.RetryBackoff > 0 {
			time.Sleep(time.Duration(attempts) * opt.RetryBackoff)
		}
	}
	if attempts > 1 {
		rec.Attempts = attempts
	}
	rec.WallMS = msSince(t0)
	if err != nil {
		rec.Status = StatusError
		rec.Error = err.Error()
		return rec, zero, err
	}
	rec.Status = StatusMiss
	fillMetrics(&rec, job, res)
	if opt.Cache != nil && rec.Key != "" {
		if err := opt.Cache.Put(rec.Key, res); err != nil {
			return rec, res, fmt.Errorf("cache put: %w", err)
		}
	}
	return rec, res, nil
}

// runGuarded invokes job.Run once, converting a panic into an error and
// enforcing Options.JobTimeout. On timeout the job's goroutine is
// abandoned, not cancelled: a deterministic simulation offers no
// preemption point, so the harness walks away and lets it finish (or
// spin) in the background while the batch proceeds.
func runGuarded[T any](opt Options, job Job[T]) (T, error) {
	type outcome struct {
		res T
		err error
	}
	call := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out.err = fmt.Errorf("panic: %v", r)
			}
		}()
		out.res, out.err = job.Run()
		return
	}
	if opt.JobTimeout <= 0 {
		out := call()
		return out.res, out.err
	}
	ch := make(chan outcome, 1)
	go func() { ch <- call() }()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-time.After(opt.JobTimeout):
		var zero T
		return zero, fmt.Errorf("timed out after %s (job abandoned)", opt.JobTimeout)
	}
}

func fillMetrics[T any](rec *Record, job Job[T], res T) {
	if job.Metrics != nil {
		rec.Metrics = job.Metrics(res)
	}
	if job.Snapshot != nil {
		rec.Snapshot = job.Snapshot(res)
	}
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
