package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ManifestSchemaVersion identifies the serialized manifest layout. Bump
// it whenever a Manifest or Record field is added, removed, or changes
// meaning; the golden-file test in the experiments package pins the
// current shape.
const ManifestSchemaVersion = 2

// Job outcome statuses recorded in the manifest.
const (
	StatusHit     = "hit"     // served from the result cache
	StatusMiss    = "miss"    // simulated fresh (and cached, if enabled)
	StatusError   = "error"   // the job's Run returned an error
	StatusSkipped = "skipped" // abandoned after an earlier failure
)

// Record is one job's entry in the manifest.
type Record struct {
	Label   string             `json:"label"`
	Key     string             `json:"key,omitempty"`
	Status  string             `json:"status"`
	WallMS  float64            `json:"wall_ms"`
	Error   string             `json:"error,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Attempts counts how many times the job ran when retries were
	// needed (omitted for first-try outcomes).
	Attempts int `json:"attempts,omitempty"`
	// Snapshot carries the job's structured metrics snapshot (the
	// observability layer's obs.Snapshot) when the job provides one.
	Snapshot any `json:"snapshot,omitempty"`
}

// Manifest aggregates one batch: counts, cache statistics, wall-clock
// and total simulated cycles (the sum of each job's "cycles" metric).
type Manifest struct {
	SchemaVersion int      `json:"schema_version"`
	Workers       int      `json:"workers"`
	Jobs          int      `json:"jobs"`
	CacheHits     int      `json:"cache_hits"`
	CacheMisses   int      `json:"cache_misses"`
	Errors        int      `json:"errors"`
	Skipped       int      `json:"skipped"`
	WallMS        float64  `json:"wall_ms"`
	SimCycles     float64  `json:"sim_cycles"`
	Records       []Record `json:"records"`
}

func buildManifest(opt Options, records []Record, wall time.Duration) *Manifest {
	m := &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Workers:       opt.workers(),
		Jobs:          len(records),
		WallMS:        float64(wall) / float64(time.Millisecond),
		Records:       records,
	}
	for _, r := range records {
		switch r.Status {
		case StatusHit:
			m.CacheHits++
		case StatusMiss:
			m.CacheMisses++
		case StatusError:
			m.Errors++
		case StatusSkipped:
			m.Skipped++
		}
		m.SimCycles += r.Metrics["cycles"]
	}
	return m
}

// Summary renders a one-line account of the batch.
func (m *Manifest) Summary() string {
	return fmt.Sprintf("%d jobs on %d workers in %.0f ms: %d cache hits, %d misses, %d errors (%.3g sim cycles)",
		m.Jobs, m.Workers, m.WallMS, m.CacheHits, m.CacheMisses, m.Errors, m.SimCycles)
}

// WriteFile stores the manifest as indented JSON at path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeArtifacts emits one JSON file per successful job result plus the
// batch manifest under dir.
func writeArtifacts[T any](dir string, jobs []Job[T], results []T, records []Record, m *Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, rec := range records {
		if rec.Status != StatusHit && rec.Status != StatusMiss {
			continue
		}
		name := sanitizeLabel(jobs[i].Label)
		if rec.Key != "" {
			name += "-" + rec.Key[:8]
		}
		data, err := json.MarshalIndent(results[i], "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return m.WriteFile(filepath.Join(dir, "manifest.json"))
}

// SanitizeLabel maps a job label to a safe file-name stem (the same
// mapping the artifact writer uses, so callers can predict per-job file
// names).
func SanitizeLabel(label string) string { return sanitizeLabel(label) }

// sanitizeLabel maps a job label to a safe file-name stem.
func sanitizeLabel(label string) string {
	f := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}
	s := strings.Map(f, label)
	if s == "" {
		s = "job"
	}
	return s
}
