package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

type out struct {
	N int `json:"n"`
}

func squareJobs(n int, ran *atomic.Int64) []Job[out] {
	jobs := make([]Job[out], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[out]{
			Label:  fmt.Sprintf("sq-%d", i),
			Config: map[string]int{"i": i},
			Run: func() (out, error) {
				if ran != nil {
					ran.Add(1)
				}
				return out{N: i * i}, nil
			},
			Metrics: func(o out) map[string]float64 {
				return map[string]float64{"cycles": float64(o.N)}
			},
		}
	}
	return jobs
}

// Results come back in job order regardless of worker count, and the
// manifest accounts for every job.
func TestRunDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		res, m, err := Run(Options{Workers: workers}, squareJobs(33, nil))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.N != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, r.N, i*i)
			}
		}
		if m.Jobs != 33 || m.CacheMisses != 33 || m.CacheHits != 0 {
			t.Fatalf("manifest: %+v", m)
		}
		if m.Workers != workers {
			t.Fatalf("manifest workers = %d", m.Workers)
		}
	}
}

// A warm cache serves every job without re-running it, byte-identically.
func TestRunCacheRoundTrip(t *testing.T) {
	cache := NewCache(filepath.Join(t.TempDir(), "cache"))
	var ran atomic.Int64

	cold, m1, err := Run(Options{Workers: 4, Cache: cache}, squareJobs(12, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 || m1.CacheMisses != 12 {
		t.Fatalf("cold run: ran=%d manifest=%+v", ran.Load(), m1)
	}

	warm, m2, err := Run(Options{Workers: 4, Cache: cache}, squareJobs(12, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Fatalf("warm run re-executed jobs: ran=%d", ran.Load())
	}
	if m2.CacheHits != 12 || m2.CacheMisses != 0 {
		t.Fatalf("warm manifest: %+v", m2)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("cached result differs at %d: %+v vs %+v", i, cold[i], warm[i])
		}
	}
	// Metrics survive the cache path (computed from the decoded result).
	if m2.SimCycles != m1.SimCycles {
		t.Fatalf("sim cycles differ: %v vs %v", m2.SimCycles, m1.SimCycles)
	}
}

// Distinct configs never collide; equal configs always collide.
func TestKeyStability(t *testing.T) {
	type cfg struct {
		A string
		B int
	}
	k1, err := Key(cfg{"x", 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(cfg{"x", 1})
	k3, _ := Key(cfg{"x", 2})
	if k1 != k2 {
		t.Fatal("equal configs hash differently")
	}
	if k1 == k3 {
		t.Fatal("distinct configs collide")
	}
	if len(k1) != 64 {
		t.Fatalf("key length %d", len(k1))
	}
}

// A failing job surfaces its error (wrapped with the label), later jobs
// are skipped, and the manifest records both.
func TestRunErrorSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job[out]
	for i := 0; i < 20; i++ {
		i := i
		jobs = append(jobs, Job[out]{
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (out, error) {
				if i == 3 {
					return out{}, boom
				}
				return out{N: i}, nil
			},
		})
	}
	_, m, err := Run(Options{Workers: 1}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "job-3") {
		t.Fatalf("error not labeled: %v", err)
	}
	if m.Errors != 1 || m.Skipped != 16 {
		t.Fatalf("manifest: errors=%d skipped=%d", m.Errors, m.Skipped)
	}
}

// Artifacts land on disk: one JSON per result plus manifest.json.
func TestRunArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts")
	_, _, err := Run(Options{Workers: 2, ArtifactDir: dir}, squareJobs(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	if !names["manifest.json"] {
		t.Fatalf("no manifest.json in %v", names)
	}
	if len(entries) != 4 {
		t.Fatalf("want 3 results + manifest, got %v", names)
	}
}

// Progress lines stream to the writer and count up to the total.
func TestProgressStream(t *testing.T) {
	var sb strings.Builder
	_, _, err := Run(Options{Workers: 2, Progress: &sb}, squareJobs(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 progress lines, got %d:\n%s", len(lines), sb.String())
	}
	if !strings.Contains(lines[4], "5/5") || !strings.Contains(lines[4], "done") {
		t.Fatalf("final line: %s", lines[4])
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel("a b/c:d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitizeLabel(""); got != "job" {
		t.Fatalf("empty label = %q", got)
	}
}

// A panicking job becomes a StatusError record instead of crashing the
// worker pool, and under KeepGoing the other jobs still complete.
func TestRunRecoversPanic(t *testing.T) {
	var jobs []Job[out]
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, Job[out]{
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (out, error) {
				if i == 2 {
					panic("injected panic")
				}
				return out{N: i}, nil
			},
		})
	}
	res, m, err := Run(Options{Workers: 2, KeepGoing: true}, jobs)
	if err == nil || !strings.Contains(err.Error(), "panic: injected panic") {
		t.Fatalf("err = %v; want the recovered panic", err)
	}
	if m.Errors != 1 || m.Skipped != 0 {
		t.Fatalf("manifest: errors=%d skipped=%d", m.Errors, m.Skipped)
	}
	if m.Records[2].Status != StatusError || !strings.Contains(m.Records[2].Error, "injected panic") {
		t.Fatalf("record 2: %+v", m.Records[2])
	}
	for i, r := range res {
		if i != 2 && r.N != i {
			t.Fatalf("KeepGoing lost result %d: %+v", i, r)
		}
	}
}

// A hung job trips JobTimeout and is recorded as an error while the
// rest of the batch completes.
func TestRunJobTimeout(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	jobs := []Job[out]{
		{Label: "hung", Run: func() (out, error) {
			<-hung
			return out{}, nil
		}},
		{Label: "fine", Run: func() (out, error) { return out{N: 7}, nil }},
	}
	res, m, err := Run(Options{Workers: 1, KeepGoing: true, JobTimeout: 50 * time.Millisecond}, jobs)
	if err == nil || !strings.Contains(err.Error(), "timed out after") {
		t.Fatalf("err = %v; want timeout", err)
	}
	if m.Records[0].Status != StatusError || !strings.Contains(m.Records[0].Error, "timed out") {
		t.Fatalf("record 0: %+v", m.Records[0])
	}
	if m.Records[1].Status != StatusMiss || res[1].N != 7 {
		t.Fatalf("later job did not complete: %+v / %+v", m.Records[1], res[1])
	}
}

// Retries re-run a flaky job until it succeeds and record the attempt
// count; a first-try success records no attempts.
func TestRunRetry(t *testing.T) {
	var calls atomic.Int64
	jobs := []Job[out]{{
		Label: "flaky",
		Run: func() (out, error) {
			if calls.Add(1) < 3 {
				return out{}, errors.New("transient")
			}
			return out{N: 9}, nil
		},
	}}
	res, m, err := Run(Options{Workers: 1, Retries: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || res[0].N != 9 {
		t.Fatalf("calls=%d res=%+v", calls.Load(), res[0])
	}
	if m.Records[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", m.Records[0].Attempts)
	}

	// Exhausted retries still fail.
	calls.Store(0)
	always := []Job[out]{{
		Label: "doomed",
		Run: func() (out, error) {
			calls.Add(1)
			return out{}, errors.New("permanent")
		},
	}}
	_, m2, err := Run(Options{Workers: 1, Retries: 2}, always)
	if err == nil || calls.Load() != 3 {
		t.Fatalf("err=%v calls=%d; want failure after 3 attempts", err, calls.Load())
	}
	if m2.Records[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", m2.Records[0].Attempts)
	}
}

// KeepGoing runs every job despite failures and the manifest doubles as
// the failure manifest: no skips, each failure labeled.
func TestKeepGoingPartialResults(t *testing.T) {
	var jobs []Job[out]
	for i := 0; i < 10; i++ {
		i := i
		jobs = append(jobs, Job[out]{
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (out, error) {
				if i%3 == 0 {
					return out{}, fmt.Errorf("fail-%d", i)
				}
				return out{N: i * i}, nil
			},
		})
	}
	res, m, err := Run(Options{Workers: 4, KeepGoing: true}, jobs)
	if err == nil {
		t.Fatal("KeepGoing hid the failures")
	}
	if m.Skipped != 0 || m.Errors != 4 {
		t.Fatalf("manifest: skipped=%d errors=%d; want 0 and 4", m.Skipped, m.Errors)
	}
	for i, r := range res {
		if i%3 != 0 && r.N != i*i {
			t.Fatalf("partial result %d missing: %+v", i, r)
		}
	}
	for i, rec := range m.Records {
		want := StatusMiss
		if i%3 == 0 {
			want = StatusError
		}
		if rec.Status != want {
			t.Fatalf("record %d status %s, want %s", i, rec.Status, want)
		}
	}
}

// A corrupt cache entry is quarantined to <key>.corrupt, the job re-runs
// as a miss, and the repaired entry serves the next run.
func TestCorruptCacheEntryQuarantined(t *testing.T) {
	cache := NewCache(filepath.Join(t.TempDir(), "cache"))
	var ran atomic.Int64

	if _, _, err := Run(Options{Workers: 1, Cache: cache}, squareJobs(1, &ran)); err != nil {
		t.Fatal(err)
	}
	key, err := Key(map[string]int{"i": 0})
	if err != nil {
		t.Fatal(err)
	}
	entry := filepath.Join(cache.Dir, key+".json")
	if err := os.WriteFile(entry, []byte("{truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, m, err := Run(Options{Workers: 1, Cache: cache}, squareJobs(1, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheMisses != 1 || ran.Load() != 2 {
		t.Fatalf("corrupt entry not treated as miss: manifest=%+v ran=%d", m, ran.Load())
	}
	quarantined, err := os.ReadFile(filepath.Join(cache.Dir, key+".corrupt"))
	if err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	if string(quarantined) != "{truncated garbage" {
		t.Fatalf("quarantine content = %q", quarantined)
	}

	// The repaired entry now hits.
	_, m3, err := Run(Options{Workers: 1, Cache: cache}, squareJobs(1, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if m3.CacheHits != 1 || ran.Load() != 2 {
		t.Fatalf("repaired entry did not hit: %+v ran=%d", m3, ran.Load())
	}
}
