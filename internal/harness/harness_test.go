package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

type out struct {
	N int `json:"n"`
}

func squareJobs(n int, ran *atomic.Int64) []Job[out] {
	jobs := make([]Job[out], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[out]{
			Label:  fmt.Sprintf("sq-%d", i),
			Config: map[string]int{"i": i},
			Run: func() (out, error) {
				if ran != nil {
					ran.Add(1)
				}
				return out{N: i * i}, nil
			},
			Metrics: func(o out) map[string]float64 {
				return map[string]float64{"cycles": float64(o.N)}
			},
		}
	}
	return jobs
}

// Results come back in job order regardless of worker count, and the
// manifest accounts for every job.
func TestRunDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		res, m, err := Run(Options{Workers: workers}, squareJobs(33, nil))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.N != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, r.N, i*i)
			}
		}
		if m.Jobs != 33 || m.CacheMisses != 33 || m.CacheHits != 0 {
			t.Fatalf("manifest: %+v", m)
		}
		if m.Workers != workers {
			t.Fatalf("manifest workers = %d", m.Workers)
		}
	}
}

// A warm cache serves every job without re-running it, byte-identically.
func TestRunCacheRoundTrip(t *testing.T) {
	cache := NewCache(filepath.Join(t.TempDir(), "cache"))
	var ran atomic.Int64

	cold, m1, err := Run(Options{Workers: 4, Cache: cache}, squareJobs(12, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 || m1.CacheMisses != 12 {
		t.Fatalf("cold run: ran=%d manifest=%+v", ran.Load(), m1)
	}

	warm, m2, err := Run(Options{Workers: 4, Cache: cache}, squareJobs(12, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Fatalf("warm run re-executed jobs: ran=%d", ran.Load())
	}
	if m2.CacheHits != 12 || m2.CacheMisses != 0 {
		t.Fatalf("warm manifest: %+v", m2)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("cached result differs at %d: %+v vs %+v", i, cold[i], warm[i])
		}
	}
	// Metrics survive the cache path (computed from the decoded result).
	if m2.SimCycles != m1.SimCycles {
		t.Fatalf("sim cycles differ: %v vs %v", m2.SimCycles, m1.SimCycles)
	}
}

// Distinct configs never collide; equal configs always collide.
func TestKeyStability(t *testing.T) {
	type cfg struct {
		A string
		B int
	}
	k1, err := Key(cfg{"x", 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(cfg{"x", 1})
	k3, _ := Key(cfg{"x", 2})
	if k1 != k2 {
		t.Fatal("equal configs hash differently")
	}
	if k1 == k3 {
		t.Fatal("distinct configs collide")
	}
	if len(k1) != 64 {
		t.Fatalf("key length %d", len(k1))
	}
}

// A failing job surfaces its error (wrapped with the label), later jobs
// are skipped, and the manifest records both.
func TestRunErrorSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job[out]
	for i := 0; i < 20; i++ {
		i := i
		jobs = append(jobs, Job[out]{
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (out, error) {
				if i == 3 {
					return out{}, boom
				}
				return out{N: i}, nil
			},
		})
	}
	_, m, err := Run(Options{Workers: 1}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "job-3") {
		t.Fatalf("error not labeled: %v", err)
	}
	if m.Errors != 1 || m.Skipped != 16 {
		t.Fatalf("manifest: errors=%d skipped=%d", m.Errors, m.Skipped)
	}
}

// Artifacts land on disk: one JSON per result plus manifest.json.
func TestRunArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts")
	_, _, err := Run(Options{Workers: 2, ArtifactDir: dir}, squareJobs(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	if !names["manifest.json"] {
		t.Fatalf("no manifest.json in %v", names)
	}
	if len(entries) != 4 {
		t.Fatalf("want 3 results + manifest, got %v", names)
	}
}

// Progress lines stream to the writer and count up to the total.
func TestProgressStream(t *testing.T) {
	var sb strings.Builder
	_, _, err := Run(Options{Workers: 2, Progress: &sb}, squareJobs(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 progress lines, got %d:\n%s", len(lines), sb.String())
	}
	if !strings.Contains(lines[4], "5/5") || !strings.Contains(lines[4], "done") {
		t.Fatalf("final line: %s", lines[4])
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel("a b/c:d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitizeLabel(""); got != "job" {
		t.Fatalf("empty label = %q", got)
	}
}
