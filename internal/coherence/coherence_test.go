package coherence

import (
	"testing"

	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/mem"
	"iqolb/internal/stats"
	"iqolb/internal/trace"
)

// rig bundles a small test machine driven directly at the controller level
// (no processors): operations chain through Done callbacks.
type rig struct {
	t   *testing.T
	eng *engine.Engine
	f   *Fabric
	st  *stats.Machine
	rec *trace.Recorder
}

func newRig(t *testing.T, n int, cfg core.Config) *rig {
	t.Helper()
	eng := engine.New()
	st := stats.NewMachine(n)
	rec := trace.NewRecorderAll()
	f, err := NewFabric(eng, DefaultTiming(), DefaultCacheGeometry(), cfg, n, st, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, eng: eng, f: f, st: st, rec: rec}
}

func (r *rig) run() {
	r.t.Helper()
	if _, hit := r.eng.Run(10_000_000); hit {
		r.t.Fatal("rig run hit cycle limit (likely deadlock or livelock)")
	}
}

// op issues one access and returns a pointer that will hold the result.
func (r *rig) op(node int, kind mem.AccessKind, addr mem.Addr, val uint64, after func(mem.Result)) {
	r.f.Node(node).Access(mem.Request{
		Kind: kind, Addr: addr, Value: val, PC: 100 + node,
		Done: func(res mem.Result) {
			if after != nil {
				after(res)
			}
		},
	})
}

// sync issues one access and runs the engine until it completes.
func (r *rig) sync(node int, kind mem.AccessKind, addr mem.Addr, val uint64) mem.Result {
	r.t.Helper()
	var out mem.Result
	done := false
	r.op(node, kind, addr, val, func(res mem.Result) { out = res; done = true })
	r.run()
	if !done {
		r.t.Fatalf("%s on P%d never completed", kind, node)
	}
	return out
}

func baselineCfg() core.Config { return core.DefaultConfig(core.ModeBaseline) }

func TestColdLoadFromMemory(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	r.f.Memory().Poke(64, 42)
	res := r.sync(0, mem.Load, 64, 0)
	if res.Value != 42 {
		t.Fatalf("load = %d, want 42", res.Value)
	}
	if got := r.f.Node(0).State(1); got != mem.Shared {
		t.Fatalf("state = %s, want S", got)
	}
	// One GETS, supplied by memory.
	if r.st.Nodes[0].TxIssued[mem.TxGETS] != 1 {
		t.Fatal("expected one GETS")
	}
	if r.f.Memory().Reads != 1 {
		t.Fatal("memory did not supply")
	}
	// Latency sanity: bus (12) + DRAM (68) + data (40) plus small constants.
	if r.eng.Now() < 120 || r.eng.Now() > 140 {
		t.Fatalf("cold miss took %d cycles, expected ~120", r.eng.Now())
	}
}

func TestStoreMissGetsExclusive(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	res := r.sync(0, mem.Store, 64, 7)
	_ = res
	if got := r.f.Node(0).State(1); got != mem.Modified {
		t.Fatalf("state = %s, want M", got)
	}
	if v, ok := r.f.Node(0).PeekWord(64); !ok || v != 7 {
		t.Fatalf("data = %d,%v want 7", v, ok)
	}
}

func TestDirtyDataMigratesCacheToCache(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	r.sync(0, mem.Store, 64, 99)
	res := r.sync(1, mem.Load, 64, 0)
	if res.Value != 99 {
		t.Fatalf("P1 load = %d, want 99 (dirty supply)", res.Value)
	}
	// Supplier downgrades M -> O, requester installs S.
	if got := r.f.Node(0).State(1); got != mem.Owned {
		t.Fatalf("P0 state = %s, want O", got)
	}
	if got := r.f.Node(1).State(1); got != mem.Shared {
		t.Fatalf("P1 state = %s, want S", got)
	}
	// Memory must not have been read for the second access.
	if r.f.Memory().Reads != 1 {
		t.Fatalf("memory reads = %d, want 1 (GETX only)", r.f.Memory().Reads)
	}
}

func TestGETXInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3, baselineCfg())
	r.sync(0, mem.Load, 64, 0)
	r.sync(1, mem.Load, 64, 0)
	r.sync(2, mem.Store, 64, 5)
	if r.f.Node(0).State(1) != mem.Invalid || r.f.Node(1).State(1) != mem.Invalid {
		t.Fatal("sharers not invalidated by GETX")
	}
	if r.f.Node(2).State(1) != mem.Modified {
		t.Fatal("writer not M")
	}
	if v := r.sync(0, mem.Load, 64, 0); v.Value != 5 {
		t.Fatalf("stale read %d after invalidation", v.Value)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	r.sync(0, mem.Load, 64, 0)
	r.sync(1, mem.Load, 64, 0)
	r.sync(0, mem.Store, 64, 3)
	if r.st.Nodes[0].TxIssued[mem.TxUPGR] != 1 {
		t.Fatal("store on S copy did not upgrade")
	}
	if r.f.Node(1).State(1) != mem.Invalid {
		t.Fatal("upgrade did not invalidate sharer")
	}
	if r.f.Node(0).State(1) != mem.Modified {
		t.Fatal("upgrader not M")
	}
}

func TestBaselineLLSCSuccess(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	if res := r.sync(0, mem.LoadLinked, 64, 0); res.Value != 0 {
		t.Fatal("LL value wrong")
	}
	res := r.sync(0, mem.StoreCond, 64, 1)
	if !res.OK {
		t.Fatal("uncontended SC failed")
	}
	// Baseline: GETS + UPGR = two transactions.
	n := &r.st.Nodes[0]
	if n.TxIssued[mem.TxGETS] != 1 || n.TxIssued[mem.TxUPGR] != 1 {
		t.Fatalf("tx mix = GETS %d UPGR %d, want 1/1", n.TxIssued[mem.TxGETS], n.TxIssued[mem.TxUPGR])
	}
	if n.SCSuccess != 1 || n.SCFail != 0 {
		t.Fatal("SC accounting wrong")
	}
}

func TestSCFailsAfterInterveningWrite(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	r.sync(0, mem.LoadLinked, 64, 0)
	r.sync(1, mem.Store, 64, 9) // invalidates P0's copy, resets link
	res := r.sync(0, mem.StoreCond, 64, 1)
	if res.OK {
		t.Fatal("SC succeeded despite intervening write")
	}
	if v := r.sync(1, mem.Load, 64, 0); v.Value != 9 {
		t.Fatalf("value = %d, want 9 (SC must not have written)", v.Value)
	}
}

func TestSCFailsWithoutLL(t *testing.T) {
	r := newRig(t, 1, baselineCfg())
	if res := r.sync(0, mem.StoreCond, 64, 1); res.OK {
		t.Fatal("SC without LL succeeded")
	}
}

func TestContendedSCExactlyOneWins(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	// Both LL the same word, then both SC.
	var ok0, ok1 bool
	var done int
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(0, mem.StoreCond, 64, 1, func(res mem.Result) { ok0 = res.OK; done++ })
	})
	r.op(1, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(1, mem.StoreCond, 64, 2, func(res mem.Result) { ok1 = res.OK; done++ })
	})
	r.run()
	if done != 2 {
		t.Fatal("ops incomplete")
	}
	if ok0 == ok1 {
		t.Fatalf("exactly one SC must win: P0=%v P1=%v", ok0, ok1)
	}
}

func TestSwapAtomicExchange(t *testing.T) {
	r := newRig(t, 2, baselineCfg())
	r.f.Memory().Poke(64, 5)
	res := r.sync(0, mem.SwapOp, 64, 7)
	if res.Value != 5 {
		t.Fatalf("swap old = %d, want 5", res.Value)
	}
	if v := r.sync(1, mem.Load, 64, 0); v.Value != 7 {
		t.Fatalf("swapped value = %d, want 7", v.Value)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	r := newRig(t, 1, baselineCfg())
	// L2 is 512KB 4-way, 2048 sets: lines k*2048 collide. Fill 5 ways.
	base := mem.Addr(0)
	step := mem.Addr(2048 * mem.LineSize)
	for i := 0; i < 5; i++ {
		r.sync(0, mem.Store, base+mem.Addr(i)*step, uint64(i+1))
	}
	if r.f.Memory().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", r.f.Memory().Writebacks)
	}
	// The evicted line's data must have reached memory.
	if v := r.f.Memory().Peek(base); v != 1 {
		t.Fatalf("memory = %d, want 1", v)
	}
	// And reloading it must see the written value.
	if res := r.sync(0, mem.Load, base, 0); res.Value != 1 {
		t.Fatalf("reload = %d, want 1", res.Value)
	}
}

// --- LPRFO / delayed-response behaviour ---

func delayedCfg() core.Config { return core.DefaultConfig(core.ModeDelayed) }

func TestLPRFOSingleTransactionRMW(t *testing.T) {
	r := newRig(t, 2, delayedCfg())
	r.sync(0, mem.LoadLinked, 64, 0)
	res := r.sync(0, mem.StoreCond, 64, 1)
	if !res.OK {
		t.Fatal("SC failed")
	}
	n := &r.st.Nodes[0]
	if n.TxIssued[mem.TxLPRFO] != 1 || n.TxIssued[mem.TxUPGR] != 0 || n.TxIssued[mem.TxGETS] != 0 {
		t.Fatalf("tx mix LPRFO=%d UPGR=%d GETS=%d, want 1/0/0",
			n.TxIssued[mem.TxLPRFO], n.TxIssued[mem.TxUPGR], n.TxIssued[mem.TxGETS])
	}
}

func TestDelayedResponseHoldsLineThroughSC(t *testing.T) {
	r := newRig(t, 2, delayedCfg())
	// P0 LLs (gets the line exclusively). P1 LLs the same word: its LPRFO
	// must be delayed until P0's SC completes; then both SCs succeed with
	// no retries.
	var p0sc, p1sc bool
	var p1Val uint64 = 999
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		// Issue P1's LL as soon as P0 has its copy; then P0 SCs a bit later.
		r.op(1, mem.LoadLinked, 64, 0, func(res mem.Result) {
			p1Val = res.Value
			r.op(1, mem.StoreCond, 64, res.Value+1, func(res2 mem.Result) { p1sc = res2.OK })
		})
		r.eng.After(100, func(engine.Time) {
			r.op(0, mem.StoreCond, 64, 1, func(res mem.Result) { p0sc = res.OK })
		})
	})
	r.run()
	if !p0sc {
		t.Fatal("P0 SC failed")
	}
	if !p1sc {
		t.Fatal("P1 SC failed (queue hand-off broken)")
	}
	if p1Val != 1 {
		t.Fatalf("P1 read %d, want 1 (P0's RMW must be ordered first)", p1Val)
	}
	if got := r.sync(1, mem.Load, 64, 0).Value; got != 2 {
		t.Fatalf("final value %d, want 2", got)
	}
	if r.st.Nodes[0].DelaysStarted == 0 {
		t.Fatal("no delay was started")
	}
	if r.st.Nodes[0].SCFail+r.st.Nodes[1].SCFail != 0 {
		t.Fatal("delayed response should avoid SC retries")
	}
}

func TestDelayTimeoutForcesForward(t *testing.T) {
	cfg := delayedCfg()
	cfg.SCTimeout = 200
	r := newRig(t, 2, cfg)
	var p1Done bool
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		// P0 never SCs. P1 must still get the line via the time-out.
		r.op(1, mem.LoadLinked, 64, 0, func(res mem.Result) {
			r.op(1, mem.StoreCond, 64, 5, func(res2 mem.Result) { p1Done = res2.OK })
		})
	})
	r.run()
	if !p1Done {
		t.Fatal("time-out did not forward the line")
	}
	if r.st.Nodes[0].DelayTimeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", r.st.Nodes[0].DelayTimeouts)
	}
}

func TestThreeNodeQueueFormsInBusOrder(t *testing.T) {
	r := newRig(t, 3, delayedCfg())
	var order []int
	chain := func(node int) {
		r.op(node, mem.LoadLinked, 64, 0, func(res mem.Result) {
			r.op(node, mem.StoreCond, 64, res.Value+1, func(res2 mem.Result) {
				if res2.OK {
					order = append(order, node)
				}
			})
		})
	}
	// P0 first, then P1 and P2 while P0's RMW is pending.
	chain(0)
	r.eng.At(5, func(engine.Time) { chain(1) })
	r.eng.At(10, func(engine.Time) { chain(2) })
	r.run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order %v, want [0 1 2] (bus-order queue)", order)
	}
	if got := r.sync(0, mem.Load, 64, 0).Value; got != 3 {
		t.Fatalf("final counter %d, want 3", got)
	}
}

// --- IQOLB behaviour ---

func iqolbCfg() core.Config { return core.DefaultConfig(core.ModeIQOLB) }

// trainLock teaches node's predictor that PC 100+node is a lock acquire.
func trainLock(r *rig, node int) {
	r.f.Node(node).Policy().Predictor().TrainLock(100 + node)
}

func TestIQOLBHoldsThroughReleaseAndSendsTearOff(t *testing.T) {
	r := newRig(t, 2, iqolbCfg())
	r.f.RegisterLockAddr(64)
	trainLock(r, 0)
	var events []string
	var p1TearVal uint64 = 99
	// P0 acquires the lock; P1 requests while held; P0 releases later.
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(0, mem.StoreCond, 64, 1, func(res mem.Result) {
			if !res.OK {
				t.Error("P0 acquire failed")
			}
			events = append(events, "p0-acquired")
			// P1 tries while held.
			r.op(1, mem.LoadLinked, 64, 0, func(res2 mem.Result) {
				if res2.TearOff {
					p1TearVal = res2.Value
					events = append(events, "p1-tearoff")
				} else {
					events = append(events, "p1-data")
				}
			})
			// Release after a long critical section.
			r.eng.After(500, func(engine.Time) {
				r.op(0, mem.Store, 64, 0, func(mem.Result) {
					events = append(events, "p0-released")
				})
			})
		})
	})
	r.run()
	if p1TearVal != 1 {
		t.Fatalf("tear-off value = %d, want 1 (lock held)", p1TearVal)
	}
	want := []string{"p0-acquired", "p1-tearoff", "p0-released"}
	if len(events) != 3 {
		t.Fatalf("events %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events %v, want %v", events, want)
		}
	}
	// After release the line must be at P1 (forwarded), with lock value 0.
	if v, ok := r.f.Node(1).PeekWord(64); !ok || v != 0 {
		t.Fatalf("P1 copy = %d,%v; want 0,true (release-triggered hand-off)", v, ok)
	}
	if r.st.Nodes[0].TearOffsOut != 1 || r.st.Nodes[1].TearOffsIn != 1 {
		t.Fatal("tear-off accounting wrong")
	}
	if r.st.Nodes[0].DelayTimeouts != 0 {
		t.Fatal("release hand-off must not be a timeout")
	}
}

func TestIQOLBUntrainedPCFallsBackToDelayedResponse(t *testing.T) {
	r := newRig(t, 2, iqolbCfg())
	// No training: the first acquire is classified Fetch&Phi, so the line
	// is forwarded right after the SC (not held till release).
	var p1GotLine bool
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(1, mem.LoadLinked, 64, 0, func(res mem.Result) {
			if !res.TearOff {
				p1GotLine = true
			}
		})
		r.eng.After(100, func(engine.Time) {
			r.op(0, mem.StoreCond, 64, 1, nil)
		})
	})
	r.run()
	if !p1GotLine {
		t.Fatal("untrained acquire held the line past SC")
	}
}

func TestIQOLBPredictorLearnsFromReleaseStore(t *testing.T) {
	r := newRig(t, 1, iqolbCfg())
	pol := r.f.Node(0).Policy()
	// Acquire (SC) then release (store): PC 100 must become a lock.
	r.sync(0, mem.LoadLinked, 64, 0)
	r.sync(0, mem.StoreCond, 64, 1)
	if pol.Predictor().PredictLock(100) {
		t.Fatal("predicted lock before any release")
	}
	r.sync(0, mem.Store, 64, 0)
	if !pol.Predictor().PredictLock(100) {
		t.Fatal("release store did not train the predictor")
	}
	if r.st.Nodes[0].LockReleases == 0 {
		t.Fatal("release not counted")
	}
}

func TestIQOLBWaiterSpinsLocallyOnTearOff(t *testing.T) {
	r := newRig(t, 2, iqolbCfg())
	trainLock(r, 0)
	spins := 0
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(0, mem.StoreCond, 64, 1, func(mem.Result) {
			var spinLoop func(mem.Result)
			spinLoop = func(res mem.Result) {
				if res.Value == 0 {
					return // lock observed free
				}
				spins++
				if spins > 10000 {
					t.Error("spin did not terminate")
					return
				}
				// Re-read after a short pause, as a spin loop would.
				r.eng.After(10, func(engine.Time) {
					r.op(1, mem.LoadLinked, 64, 0, spinLoop)
				})
			}
			r.op(1, mem.LoadLinked, 64, 0, spinLoop)
			r.eng.After(2000, func(engine.Time) {
				r.op(0, mem.Store, 64, 0, nil)
			})
		})
	})
	r.run()
	if spins < 5 {
		t.Fatalf("spins = %d, want several local re-reads", spins)
	}
	// Local spinning must not generate extra bus transactions.
	if got := r.st.Nodes[1].TxIssued[mem.TxLPRFO]; got != 1 {
		t.Fatalf("P1 issued %d LPRFOs while spinning, want 1", got)
	}
	if r.st.Nodes[1].LocalSpins == 0 {
		t.Fatal("local spins not counted")
	}
}

func TestQueueBreakdownWithoutRetention(t *testing.T) {
	cfg := iqolbCfg()
	cfg.QueueRetention = false
	cfg.LockTimeout = 100000
	r := newRig(t, 3, cfg)
	trainLock(r, 0)
	// P0 holds the lock's line as holder; P1 queues an LPRFO; P2 issues a
	// plain store to collocated data on the same line -> breakdown.
	var p1Res mem.Result
	var p1Completed bool
	var p1Spin func(res mem.Result)
	p1Spin = func(res mem.Result) {
		if res.TearOff || res.Value != 0 {
			// Lock still held (possibly via tear-off): keep spinning.
			r.eng.After(10, func(engine.Time) { r.op(1, mem.LoadLinked, 64, 0, p1Spin) })
			return
		}
		p1Res = res
		p1Completed = true
	}
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(0, mem.StoreCond, 64, 1, func(mem.Result) {
			r.op(1, mem.LoadLinked, 64, 0, p1Spin)
			r.eng.After(300, func(engine.Time) {
				r.op(2, mem.Store, 72, 7, nil) // collocated word
			})
			r.eng.After(600, func(engine.Time) {
				r.op(0, mem.Store, 64, 0, nil) // release
			})
		})
	})
	r.run()
	if r.st.Nodes[1].QueueBreakdowns == 0 {
		t.Fatal("no breakdown recorded at the squashed waiter")
	}
	if !p1Completed {
		t.Fatal("P1's reissued request never completed")
	}
	if p1Res.Value != 0 {
		t.Fatalf("P1 finally saw %d, want 0 after release", p1Res.Value)
	}
}

func TestQueueRetentionLoansAndReturns(t *testing.T) {
	cfg := iqolbCfg()
	cfg.QueueRetention = true
	cfg.LockTimeout = 100000
	r := newRig(t, 3, cfg)
	trainLock(r, 0)
	var p1GotOwnership, p2StoreDone bool
	var p1Spin func(res mem.Result)
	p1Spin = func(res mem.Result) {
		if res.TearOff || res.Value != 0 {
			r.eng.After(10, func(engine.Time) { r.op(1, mem.LoadLinked, 64, 0, p1Spin) })
			return
		}
		p1GotOwnership = true
	}
	r.op(0, mem.LoadLinked, 64, 0, func(mem.Result) {
		r.op(0, mem.StoreCond, 64, 1, func(mem.Result) {
			r.op(1, mem.LoadLinked, 64, 0, p1Spin)
			// P2 writes collocated data: must be served via loan without
			// dissolving P1's queue position.
			r.eng.After(300, func(engine.Time) {
				r.op(2, mem.Store, 72, 7, func(mem.Result) { p2StoreDone = true })
			})
			r.eng.After(1000, func(engine.Time) {
				r.op(0, mem.Store, 64, 0, nil) // release
			})
		})
	})
	r.run()
	if !p2StoreDone {
		t.Fatal("collocated store starved")
	}
	if !p1GotOwnership {
		t.Fatal("queue head never received the line after release")
	}
	if r.st.Nodes[1].QueueBreakdowns != 0 {
		t.Fatal("retention mode must not break the queue down")
	}
	if r.st.Nodes[0].RetentionTrips == 0 && r.st.Nodes[2].RetentionTrips == 0 {
		t.Fatal("no retention loan recorded")
	}
	// The collocated write must have landed in the line P1 received.
	if v, ok := r.f.Node(1).PeekWord(72); !ok || v != 7 {
		t.Fatalf("collocated word at P1 = %d,%v; want 7", v, ok)
	}
}

func TestAggressiveModeUsesGETXForLL(t *testing.T) {
	r := newRig(t, 2, core.DefaultConfig(core.ModeAggressive))
	r.sync(0, mem.LoadLinked, 64, 0)
	res := r.sync(0, mem.StoreCond, 64, 1)
	if !res.OK {
		t.Fatal("SC failed")
	}
	n := &r.st.Nodes[0]
	if n.TxIssued[mem.TxGETX] != 1 || n.TxIssued[mem.TxGETS] != 0 || n.TxIssued[mem.TxUPGR] != 0 {
		t.Fatalf("aggressive LL tx mix GETX=%d GETS=%d UPGR=%d, want 1/0/0",
			n.TxIssued[mem.TxGETX], n.TxIssued[mem.TxGETS], n.TxIssued[mem.TxUPGR])
	}
}

// --- explicit QOLB ---

func TestQOLBGrantAndHandoff(t *testing.T) {
	r := newRig(t, 3, baselineCfg())
	r.f.RegisterLockAddr(64)
	var order []int
	acquire := func(node int, then func()) {
		r.op(node, mem.EnqolbOp, 64, 0, func(res mem.Result) {
			order = append(order, node)
			if then != nil {
				then()
			}
		})
	}
	release := func(node int) {
		r.op(node, mem.DeqolbOp, 64, 0, nil)
	}
	acquire(0, func() {
		acquire(1, nil)
		acquire(2, nil)
		r.eng.After(200, func(engine.Time) { release(0) })
	})
	r.eng.At(3000, func(engine.Time) {
		if len(order) >= 2 {
			release(1)
		}
	})
	r.eng.At(6000, func(engine.Time) {
		if len(order) >= 3 {
			release(2)
		}
	})
	r.run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want [0 1 2]", order)
	}
	if r.f.QOLB().Handoffs != 2 {
		t.Fatalf("handoffs = %d, want 2", r.f.QOLB().Handoffs)
	}
	// The lock line migrates with the grant.
	if !r.f.Node(2).State(1).CanWrite() {
		t.Fatal("final holder lacks the lock line")
	}
}

func TestQOLBUncontendedReacquire(t *testing.T) {
	r := newRig(t, 1, baselineCfg())
	for i := 0; i < 3; i++ {
		res := r.sync(0, mem.EnqolbOp, 64, 0)
		if !res.OK {
			t.Fatal("grant failed")
		}
		r.sync(0, mem.DeqolbOp, 64, 0)
	}
	if r.f.QOLB().ImmediateOK != 3 {
		t.Fatalf("immediate grants = %d, want 3", r.f.QOLB().ImmediateOK)
	}
	// Re-acquires after the first must not touch memory again.
	if r.f.Memory().Reads > 1 {
		t.Fatalf("memory reads = %d, want <= 1", r.f.Memory().Reads)
	}
}

// --- cross-cutting invariants ---

// checkSingleWriter asserts the MOESI single-writer/multi-reader invariant
// across all nodes for the given line.
func checkSingleWriter(t *testing.T, r *rig, line mem.LineID) {
	t.Helper()
	writers, owners := 0, 0
	for i := range r.f.nodes {
		s := r.f.Node(i).State(line)
		if s.CanWrite() {
			writers++
		}
		if s.IsOwner() {
			owners++
		}
	}
	if writers > 1 {
		t.Fatalf("line %d has %d writers", line, writers)
	}
	if owners > 1 {
		t.Fatalf("line %d has %d owners", line, owners)
	}
}

func TestRandomStressInvariants(t *testing.T) {
	noRet := func(m core.Mode) core.Config {
		c := core.DefaultConfig(m)
		c.QueueRetention = false
		return c
	}
	noTear := func(m core.Mode) core.Config {
		c := core.DefaultConfig(m)
		c.TearOff = false
		return c
	}
	cfgs := map[string]core.Config{
		"baseline":        baselineCfg(),
		"aggressive":      core.DefaultConfig(core.ModeAggressive),
		"delayed":         delayedCfg(),
		"iqolb":           iqolbCfg(),
		"delayed-noret":   noRet(core.ModeDelayed),
		"iqolb-noret":     noRet(core.ModeIQOLB),
		"iqolb-notearoff": noTear(core.ModeIQOLB),
	}
	names := []string{"baseline", "aggressive", "delayed", "iqolb",
		"delayed-noret", "iqolb-noret", "iqolb-notearoff"}
	for _, name := range names {
		cfg := cfgs[name]
		t.Run(name, func(t *testing.T) {
			const nodes = 6
			r := newRig(t, nodes, cfg)
			// A deterministic pseudo-random mix of loads/stores/LL/SC/swap
			// from all nodes over a few contended lines, with invariant
			// checks at the end.
			seed := uint64(12345)
			next := func(n uint64) uint64 {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				return seed % n
			}
			outstanding := 0
			kinds := []mem.AccessKind{
				mem.Load, mem.Store, mem.LoadLinked, mem.StoreCond,
				mem.LoadLinked, mem.StoreCond, mem.SwapOp,
			}
			var issue func(depth int)
			issue = func(depth int) {
				if depth == 0 {
					return
				}
				node := int(next(nodes))
				addr := mem.Addr(next(24) * 8) // 3 lines, 8 words each
				kind := kinds[next(uint64(len(kinds)))]
				outstanding++
				r.op(node, kind, addr, next(100), func(mem.Result) {
					outstanding--
					issue(depth - 1)
				})
			}
			for i := 0; i < 12; i++ {
				issue(150)
			}
			r.run()
			if outstanding != 0 {
				t.Fatalf("%d operations never completed", outstanding)
			}
			for line := mem.LineID(0); line < 3; line++ {
				checkSingleWriter(t, r, line)
			}
			if r.f.Bus().Outstanding() != 0 {
				t.Fatalf("bus leaked %d outstanding slots", r.f.Bus().Outstanding())
			}
		})
	}
}
