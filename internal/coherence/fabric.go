package coherence

import (
	"fmt"

	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/faults"
	"iqolb/internal/interconnect"
	"iqolb/internal/mem"
	"iqolb/internal/qolb"
	"iqolb/internal/stats"
	"iqolb/internal/trace"
)

// Fabric owns the global pieces of the memory system: the address bus, the
// data crossbar, the home memory controller, the explicit-QOLB queue
// manager, and the per-line serialization bookkeeping that routes each
// transaction to its supplier.
//
// Two per-line registers drive routing, mirroring the paper's implicit
// queue:
//
//   - holder: the node the line's data currently lives at (or is in flight
//     to). Plain GETS/GETX requests are serviced by the holder.
//   - owner: the end of the LPRFO chain — the node that will possess the
//     line last. LPRFO requests queue there, so the chain of pending
//     supply duties is exactly the bus-order queue of §3.2.
type Fabric struct {
	eng    *engine.Engine
	timing Timing
	bus    *interconnect.Bus
	net    *interconnect.Network
	memory *Memory
	nodes  []*Controller
	qolb   *qolb.Manager

	owner  map[mem.LineID]mem.NodeID
	holder map[mem.LineID]mem.NodeID

	lockAddrs   map[mem.Addr]bool
	lastRelease map[mem.Addr]engine.Time

	st         *stats.Machine
	rec        *trace.Recorder
	probes     []Probe
	syncProbes []SyncProbe
	faultObs   []FaultObserver

	// Fault injection and graceful degradation (see faults.go).
	inj           *faults.Injector
	stuck         map[mem.LineID]bool
	degraded      bool
	degradeReason string
}

// NewFabric assembles the memory system for n nodes. Each node's
// controller is built with its own policy instance derived from coreCfg.
func NewFabric(eng *engine.Engine, timing Timing, geo CacheGeometry, coreCfg core.Config,
	n int, st *stats.Machine, rec *trace.Recorder) (*Fabric, error) {
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	if err := coreCfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("coherence: need at least one node, got %d", n)
	}
	f := &Fabric{
		eng:         eng,
		timing:      timing,
		owner:       make(map[mem.LineID]mem.NodeID),
		holder:      make(map[mem.LineID]mem.NodeID),
		lockAddrs:   make(map[mem.Addr]bool),
		lastRelease: make(map[mem.Addr]engine.Time),
		st:          st,
		rec:         rec,
	}
	f.bus = interconnect.NewBus(eng, timing.BusConfig(), f.observe)
	f.net = interconnect.NewNetwork(eng, timing.NetConfig(), f.deliver)
	f.memory = newMemory(f)
	f.qolb = qolb.NewManager(f.grantQOLB)
	f.nodes = make([]*Controller, n)
	for i := 0; i < n; i++ {
		pol, err := core.NewPolicy(coreCfg)
		if err != nil {
			return nil, err
		}
		f.nodes[i] = newController(mem.NodeID(i), f, geo, pol, &st.Nodes[i])
	}
	return f, nil
}

// Node returns controller i (the processor's memory port).
func (f *Fabric) Node(i int) *Controller { return f.nodes[i] }

// Memory returns the home memory controller.
func (f *Fabric) Memory() *Memory { return f.memory }

// QOLB returns the explicit-QOLB manager.
func (f *Fabric) QOLB() *qolb.Manager { return f.qolb }

// Bus exposes the address bus (stats).
func (f *Fabric) Bus() *interconnect.Bus { return f.bus }

// Net exposes the data network (stats).
func (f *Fabric) Net() *interconnect.Network { return f.net }

// RegisterLockAddr marks an address as a lock for the hand-off latency
// statistics (workload generators call this; it has no protocol effect).
func (f *Fabric) RegisterLockAddr(a mem.Addr) { f.lockAddrs[a] = true }

func (f *Fabric) isLockAddr(a mem.Addr) bool { return f.lockAddrs[a] }

func (f *Fabric) recordRelease(node mem.NodeID, a mem.Addr) {
	if f.isLockAddr(a) {
		f.lastRelease[a] = f.eng.Now()
		f.probeLockRelease(node, a)
	}
}

func (f *Fabric) recordAcquire(node mem.NodeID, a mem.Addr) {
	if !f.isLockAddr(a) {
		return
	}
	f.probeLockAcquire(node, a)
	if rel, ok := f.lastRelease[a]; ok {
		f.st.LockHandoff.Add(uint64(f.eng.Now() - rel))
		delete(f.lastRelease, a)
	}
}

// noteLockAttempt reports the start of an acquire attempt at a registered
// lock address (controllers call it from their first LL or EnQOLB).
func (f *Fabric) noteLockAttempt(node mem.NodeID, a mem.Addr) {
	if f.isLockAddr(a) {
		f.probeLockAttempt(node, a)
	}
}

func (f *Fabric) holderOf(line mem.LineID) mem.NodeID {
	if h, ok := f.holder[line]; ok {
		return h
	}
	return mem.MemoryNode
}

func (f *Fabric) ownerOf(line mem.LineID) mem.NodeID {
	if o, ok := f.owner[line]; ok {
		return o
	}
	return mem.MemoryNode
}

func (f *Fabric) setHolder(line mem.LineID, n mem.NodeID) {
	if n == mem.MemoryNode {
		delete(f.holder, line)
	} else {
		f.holder[line] = n
	}
}

func (f *Fabric) setOwner(line mem.LineID, n mem.NodeID) {
	if n == mem.MemoryNode {
		delete(f.owner, line)
	} else {
		f.owner[line] = n
	}
}

// send puts a data message on the crossbar, maintaining the holder register
// and the trace/stat streams.
func (f *Fabric) send(m interconnect.Msg) {
	f.probeDataSend(m)
	switch m.Kind {
	case mem.DataExclusive:
		if !m.Loan {
			f.setHolder(m.Line, m.To)
			// A transfer out of the registered chain end passes that
			// status to the receiver (e.g. a plain write request that
			// chased the line down the chain and was served by its last
			// member, or an eviction-forward from the end).
			f.setOwnerIfHeldBy(m.Line, m.From, m.To)
		}
	case mem.DataReturn:
		f.setHolder(m.Line, m.To)
	case mem.DataWriteback:
		f.setHolder(m.Line, mem.MemoryNode)
		f.setOwnerIfHeldBy(m.Line, m.From, mem.MemoryNode)
	}
	if m.From != mem.MemoryNode {
		f.st.Nodes[m.From].DataSent[m.Kind]++
	}
	if f.rec.Wants(m.Line) {
		f.rec.Add(trace.Event{At: f.eng.Now(), Kind: trace.EvDataSend, Node: m.From, Peer: m.To,
			Line: m.Line, Data: m.Kind, Note: fmt.Sprintf("w0=%d", m.Data[0])})
	}
	f.net.Send(m)
}

// setOwnerIfHeldBy moves the owner register off a node that is giving the
// line up outside the LPRFO chain (writeback, clean eviction).
func (f *Fabric) setOwnerIfHeldBy(line mem.LineID, from, to mem.NodeID) {
	if f.ownerOf(line) == from {
		f.setOwner(line, to)
	}
}

// setHolderIfNode moves the holder register off a node that downgraded or
// silently dropped its copy.
func (f *Fabric) setHolderIfNode(line mem.LineID, from, to mem.NodeID) {
	if f.holderOf(line) == from {
		f.setHolder(line, to)
	}
}

// deliver routes an arriving data message.
func (f *Fabric) deliver(m interconnect.Msg) {
	f.probeDataDeliver(m)
	f.rec.Add(trace.Event{At: f.eng.Now(), Kind: trace.EvDataRecv, Node: m.To, Peer: m.From,
		Line: m.Line, Data: m.Kind})
	if m.To == mem.MemoryNode {
		f.memory.onData(m)
		return
	}
	f.nodes[m.To].onData(m)
}

// dbgObserve is a test hook seeing every observation with the pre-update
// registers.
var dbgObserve func(f *Fabric, tx interconnect.Tx)

// observe is the coherence point: the transaction is now globally ordered.
func (f *Fabric) observe(tx interconnect.Tx) {
	if dbgObserve != nil {
		dbgObserve(f, tx)
	}
	f.probeObserve(tx)
	f.rec.Add(trace.Event{At: f.eng.Now(), Kind: trace.EvTxObserve, Node: tx.Requester,
		Line: tx.Line, Tx: tx.Kind})
	f.st.BusTransactions++
	if tx.Requester != mem.MemoryNode && tx.Kind != mem.TxWB {
		f.nodes[tx.Requester].ownTxObserved(tx.Line)
	}
	switch tx.Kind {
	case mem.TxQOLB:
		f.bus.Complete()
		f.qolb.Enqueue(tx.Requester, tx.Addr)
	case mem.TxWB:
		// Bookkeeping was done synchronously at eviction time; the
		// transaction only charges bus bandwidth.
		f.bus.Complete()
	case mem.TxGETS:
		f.snoopAll(tx)
		sup := f.holderOf(tx.Line)
		if sup == mem.MemoryNode {
			f.memory.supply(tx, false)
		} else {
			f.nodes[sup].addDuty(tx, false)
		}
	case mem.TxUPGR:
		n := f.nodes[tx.Requester]
		if n.hasReadableLine(tx.Line) {
			f.snoopAll(tx)
			if !n.policy.Config().QueueRetention {
				// The waiters squash and re-issue on this broadcast;
				// the upgrader's own queued LPRFO duties go with them.
				n.dropQueuedLPRFOs(tx.Line)
			}
			// Same chain-end rule as observeGETX: an upgrade never moves
			// the owner register past a surviving LPRFO chain.
			if f.ownerOf(tx.Line) == f.holderOf(tx.Line) || !n.policy.Config().QueueRetention {
				f.setOwner(tx.Line, tx.Requester)
			}
			f.setHolder(tx.Line, tx.Requester)
			f.bus.Complete()
			n.upgradeGranted(tx)
		} else {
			// The copy was invalidated while the upgrade waited for the
			// bus: convert to a full read-for-ownership.
			tx.Kind = mem.TxGETX
			f.observeGETX(tx)
		}
	case mem.TxGETX:
		f.observeGETX(tx)
	case mem.TxLPRFO:
		f.snoopAll(tx)
		prev := f.ownerOf(tx.Line)
		if prev == tx.Requester {
			// Stale owner registration (the requester gave the line up
			// outside the chain); fall back to the holder.
			prev = f.holderOf(tx.Line)
			if prev == tx.Requester {
				panic(fmt.Sprintf("coherence: %s LPRFO for line it holds", tx.Requester))
			}
		}
		f.setOwner(tx.Line, tx.Requester)
		if prev == mem.MemoryNode {
			if h := f.holderOf(tx.Line); h != mem.MemoryNode && h != tx.Requester {
				f.nodes[h].addDuty(tx, false)
			} else {
				f.setHolder(tx.Line, tx.Requester)
				f.memory.supply(tx, true)
			}
		} else {
			f.nodes[prev].addDuty(tx, false)
		}
	default:
		panic(fmt.Sprintf("coherence: unknown transaction kind %v", tx.Kind))
	}
}

func (f *Fabric) observeGETX(tx interconnect.Tx) {
	sup := f.holderOf(tx.Line)
	loan := false
	if sup != mem.MemoryNode && sup != tx.Requester && f.nodes[sup].willRetain(tx.Line) {
		loan = true
	}
	f.snoopAll(tx)
	// A plain write request cuts in at the *holder*, ahead of any queued
	// LPRFO chain. The owner register marks the chain's end, so it moves
	// to the writer only when no chain extends beyond the holder — or
	// when the chain has just been dissolved (queue breakdown: the
	// snoop above made every waiter squash and re-issue).
	chainBeyondHolder := f.ownerOf(tx.Line) != sup
	retention := f.nodes[tx.Requester].policy.Config().QueueRetention
	if !loan && (!chainBeyondHolder || !retention) {
		f.setOwner(tx.Line, tx.Requester)
	}
	if sup == mem.MemoryNode {
		f.setHolder(tx.Line, tx.Requester)
		f.memory.supply(tx, true)
	} else if sup == tx.Requester {
		panic(fmt.Sprintf("coherence: %s GETX for line it holds", tx.Requester))
	} else {
		f.nodes[sup].addDuty(tx, loan)
	}
}

// snoopAll broadcasts the transaction to every node except the requester.
func (f *Fabric) snoopAll(tx interconnect.Tx) {
	for _, n := range f.nodes {
		if n.id != tx.Requester {
			n.snoop(tx)
		}
	}
}

// reroute re-delivers a duty that reached a node no longer responsible for
// the line (it raced with a hand-off). The holder register was updated at
// send time, so the chain of reroutes terminates.
func (f *Fabric) reroute(tx interconnect.Tx, loan bool) {
	h := f.holderOf(tx.Line)
	if h == mem.MemoryNode {
		f.memory.supply(tx, tx.Kind.WantsOwnership())
		return
	}
	if h == tx.Requester {
		panic(fmt.Sprintf("coherence: duty for %s rerouted to itself (line %d)", tx.Requester, tx.Line))
	}
	f.nodes[h].addDuty(tx, loan)
}

// grantQOLB delivers an explicit-QOLB lock to a node by migrating the
// lock's cache line there — the single direct transfer that gives QOLB its
// hand-off speed. The grantee's controller completes the pending EnQOLB
// operation when the line arrives.
func (f *Fabric) grantQOLB(node mem.NodeID, addr mem.Addr) {
	line := addr.Line()
	grantee := f.nodes[node]
	if grantee.hasReadableLine(line) {
		// Uncontended re-acquire: the line never left.
		grantee.qolbGrantedLocal(addr)
		return
	}
	h := f.holderOf(line)
	syn := interconnect.Tx{Kind: mem.TxGETX, Addr: addr, Line: line, Requester: node}
	// Invalidate stray shared copies so the grantee gets a writable line.
	f.snoopAll(syn)
	f.setOwner(line, node)
	if h == mem.MemoryNode {
		f.setHolder(line, node)
		f.memory.supplyUntracked(syn)
	} else {
		f.nodes[h].addDuty(syn, false)
	}
}
