package coherence

import (
	"iqolb/internal/interconnect"
	"iqolb/internal/mem"
)

// Probe observes the protocol's externally meaningful events: bus-order
// observation, data-network traffic, cache installs, committed stores, and
// queue breakdowns. It exists for the invariant monitors in internal/check
// — the protocol never reads anything back from it, so a probe cannot
// perturb a run (it must not call back into the fabric).
//
// All methods are invoked synchronously inside the event that caused them,
// so a probe sees a consistent global snapshot: no other protocol activity
// interleaves with a callback.
type Probe interface {
	// Observe fires at the coherence point, when tx becomes globally
	// ordered on the address bus, before the fabric routes it.
	Observe(tx interconnect.Tx)
	// DataSend fires when a data message enters the crossbar.
	DataSend(m interconnect.Msg)
	// DataDeliver fires when a data message arrives, before the receiving
	// controller processes it.
	DataDeliver(m interconnect.Msg)
	// Install fires after node has placed line into its hierarchy with the
	// given state (including upgrade grants, which install in place).
	Install(node mem.NodeID, line mem.LineID, state mem.State)
	// CommitStore fires when a store-class operation (Store, successful
	// StoreCond, Swap) commits its value to a cached copy of addr.
	CommitStore(node mem.NodeID, addr mem.Addr, value uint64)
	// Squash fires when node abandons its queued LPRFO and re-issues
	// (queue breakdown).
	Squash(node mem.NodeID, line mem.LineID)
}

// SetProbe attaches a protocol probe; nil detaches. Call before Run.
func (f *Fabric) SetProbe(p Probe) { f.probe = p }

// probeInstall reports an install (or in-place writable upgrade) on c.
func (c *Controller) probeInstall(line mem.LineID, state mem.State) {
	if c.f.probe != nil {
		c.f.probe.Install(c.id, line, state)
	}
}

// probeCommit reports a committed store-class write on c.
func (c *Controller) probeCommit(addr mem.Addr, v uint64) {
	if c.f.probe != nil {
		c.f.probe.CommitStore(c.id, addr, v)
	}
}
