package coherence

import (
	"iqolb/internal/faults"
	"iqolb/internal/interconnect"
	"iqolb/internal/mem"
)

// Probe observes the protocol's externally meaningful events: bus-order
// observation, data-network traffic, cache installs, committed stores, and
// queue breakdowns. It exists for the invariant monitors in internal/check
// and the observability collectors in internal/obs — the protocol never
// reads anything back from it, so a probe cannot perturb a run (it must
// not call back into the fabric).
//
// All methods are invoked synchronously inside the event that caused them,
// so a probe sees a consistent global snapshot: no other protocol activity
// interleaves with a callback.
type Probe interface {
	// Observe fires at the coherence point, when tx becomes globally
	// ordered on the address bus, before the fabric routes it.
	Observe(tx interconnect.Tx)
	// DataSend fires when a data message enters the crossbar.
	DataSend(m interconnect.Msg)
	// DataDeliver fires when a data message arrives, before the receiving
	// controller processes it.
	DataDeliver(m interconnect.Msg)
	// Install fires after node has placed line into its hierarchy with the
	// given state (including upgrade grants, which install in place).
	Install(node mem.NodeID, line mem.LineID, state mem.State)
	// CommitStore fires when a store-class operation (Store, successful
	// StoreCond, Swap) commits its value to a cached copy of addr.
	CommitStore(node mem.NodeID, addr mem.Addr, value uint64)
	// Squash fires when node abandons its queued LPRFO and re-issues
	// (queue breakdown).
	Squash(node mem.NodeID, line mem.LineID)
}

// DelayEndReason classifies how a delayed response ended.
type DelayEndReason uint8

const (
	// DelayFlushed: the delay's purpose completed (SC performed or the
	// lock was released) and the line was forwarded on the hand-off path.
	DelayFlushed DelayEndReason = iota
	// DelayTimedOut: the time-out safety net (or an eviction, which is
	// charged the same way) forced the response out before the release.
	DelayTimedOut
)

// SyncProbe observes the synchronization-level events layered over the
// base protocol: lock acquire attempts, acquisitions and releases at
// registered lock addresses, LPRFO issue, the delayed-response window, and
// tear-off hand-outs. It exists for the observability layer in
// internal/obs; like Probe, it is strictly one-way.
//
// A SyncProbe fires only for addresses registered with RegisterLockAddr
// (the lock-addressed callbacks) or for the line-addressed delay/tear-off
// machinery, which is inherently lock-related under the LPRFO modes.
type SyncProbe interface {
	// LockAttempt fires when node starts waiting on a registered lock (the
	// first LL or EnQOLB of an acquire attempt). It fires once per
	// attempt: local spinning does not repeat it.
	LockAttempt(node mem.NodeID, addr mem.Addr)
	// LockAcquire fires when node completes an acquisition of a registered
	// lock (SC success classified at the lock address, or a QOLB grant).
	LockAcquire(node mem.NodeID, addr mem.Addr)
	// LockRelease fires when node releases a registered lock (release
	// store or DeQOLB).
	LockRelease(node mem.NodeID, addr mem.Addr)
	// LPRFOIssue fires when node puts an LPRFO transaction on the bus
	// (first issue and breakdown re-issue alike).
	LPRFOIssue(node mem.NodeID, line mem.LineID)
	// DelayStart fires when node begins delaying its response to waiter's
	// queued LPRFO (the paper's Δ); lockHold distinguishes a lock-hold
	// delay from an LL→SC window delay.
	DelayStart(node, waiter mem.NodeID, line mem.LineID, lockHold bool)
	// DelayEnd fires when the delayed line is forwarded to waiter, with
	// the reason the delay ended.
	DelayEnd(node, waiter mem.NodeID, line mem.LineID, reason DelayEndReason)
	// TearOff fires when node sends to a read-only tear-off copy of line.
	TearOff(node, to mem.NodeID, line mem.LineID)
}

// FaultObserver receives fault-injection and degradation notifications
// (see faults.go). Probes that also implement it are attached to this
// stream automatically; like the other probe interfaces it is strictly
// one-way.
type FaultObserver interface {
	// FaultInjected fires when an armed fault strikes at line.
	FaultInjected(kind faults.Kind, line mem.LineID)
	// Degraded fires once, when the fabric falls back to plain-RFO
	// semantics.
	Degraded(reason string)
}

// SetProbe attaches a protocol probe, detaching every probe attached
// before it; nil detaches all. Call before Run. If p also implements
// SyncProbe or FaultObserver it receives those event streams too.
func (f *Fabric) SetProbe(p Probe) {
	f.probes = nil
	f.syncProbes = nil
	f.faultObs = nil
	if p != nil {
		f.AddProbe(p)
	}
}

// AddProbe attaches a protocol probe alongside those already attached
// (the fan-out lets an invariant monitor and an observability collector
// share one run). Probes fire in attachment order. If p also implements
// SyncProbe or FaultObserver it receives those event streams too.
func (f *Fabric) AddProbe(p Probe) {
	if p == nil {
		return
	}
	f.probes = append(f.probes, p)
	if sp, ok := p.(SyncProbe); ok {
		f.syncProbes = append(f.syncProbes, sp)
	}
	if fo, ok := p.(FaultObserver); ok {
		f.faultObs = append(f.faultObs, fo)
	}
}

// AddSyncProbe attaches a probe that wants only the synchronization-level
// events, skipping the (much hotter) base protocol stream. If p also
// implements FaultObserver it receives that stream too.
func (f *Fabric) AddSyncProbe(p SyncProbe) {
	if p == nil {
		return
	}
	f.syncProbes = append(f.syncProbes, p)
	if fo, ok := p.(FaultObserver); ok {
		f.faultObs = append(f.faultObs, fo)
	}
}

// The base-probe fan-out. Each wrapper reduces to one len check when no
// probe is attached, keeping the disabled-observability hot path free.

func (f *Fabric) probeObserve(tx interconnect.Tx) {
	for _, p := range f.probes {
		p.Observe(tx)
	}
}

func (f *Fabric) probeDataSend(m interconnect.Msg) {
	for _, p := range f.probes {
		p.DataSend(m)
	}
}

func (f *Fabric) probeDataDeliver(m interconnect.Msg) {
	for _, p := range f.probes {
		p.DataDeliver(m)
	}
}

func (f *Fabric) probeSquash(node mem.NodeID, line mem.LineID) {
	for _, p := range f.probes {
		p.Squash(node, line)
	}
}

// probeInstall reports an install (or in-place writable upgrade) on c.
func (c *Controller) probeInstall(line mem.LineID, state mem.State) {
	for _, p := range c.f.probes {
		p.Install(c.id, line, state)
	}
}

// probeCommit reports a committed store-class write on c.
func (c *Controller) probeCommit(addr mem.Addr, v uint64) {
	for _, p := range c.f.probes {
		p.CommitStore(c.id, addr, v)
	}
}

// The sync-probe fan-out.

func (f *Fabric) probeLockAttempt(node mem.NodeID, addr mem.Addr) {
	for _, p := range f.syncProbes {
		p.LockAttempt(node, addr)
	}
}

func (f *Fabric) probeLockAcquire(node mem.NodeID, addr mem.Addr) {
	for _, p := range f.syncProbes {
		p.LockAcquire(node, addr)
	}
}

func (f *Fabric) probeLockRelease(node mem.NodeID, addr mem.Addr) {
	for _, p := range f.syncProbes {
		p.LockRelease(node, addr)
	}
}

func (f *Fabric) probeLPRFOIssue(node mem.NodeID, line mem.LineID) {
	for _, p := range f.syncProbes {
		p.LPRFOIssue(node, line)
	}
}

func (f *Fabric) probeDelayStart(node, waiter mem.NodeID, line mem.LineID, lockHold bool) {
	for _, p := range f.syncProbes {
		p.DelayStart(node, waiter, line, lockHold)
	}
}

func (f *Fabric) probeDelayEnd(node, waiter mem.NodeID, line mem.LineID, reason DelayEndReason) {
	for _, p := range f.syncProbes {
		p.DelayEnd(node, waiter, line, reason)
	}
}

func (f *Fabric) probeTearOff(node, to mem.NodeID, line mem.LineID) {
	for _, p := range f.syncProbes {
		p.TearOff(node, to, line)
	}
}

// The fault-observer fan-out.

func (f *Fabric) probeFaultInjected(kind faults.Kind, line mem.LineID) {
	for _, p := range f.faultObs {
		p.FaultInjected(kind, line)
	}
}

func (f *Fabric) probeDegraded(reason string) {
	for _, p := range f.faultObs {
		p.Degraded(reason)
	}
}
