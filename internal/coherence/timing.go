// Package coherence implements the broadcast MOESI snooping protocol, the
// per-node cache controllers, and the home memory controller, together with
// the IQOLB extensions (LPRFO routing, delayed responses, tear-off copies,
// queue retention) driven by the policy in package core.
package coherence

import (
	"fmt"

	"iqolb/internal/cache"
	"iqolb/internal/engine"
	"iqolb/internal/interconnect"
)

// Timing carries the latency parameters of Table 1, in processor cycles.
type Timing struct {
	// L1Hit is the L1 data cache hit latency.
	L1Hit engine.Time
	// L2Hit is the (uncontended) unified L2 hit latency.
	L2Hit engine.Time
	// AddrLatency is the address-bus access latency (grant to global
	// observation).
	AddrLatency engine.Time
	// GrantInterval is the address-bus bandwidth (cycles between grants).
	GrantInterval engine.Time
	// MaxOutstanding caps in-flight address transactions.
	MaxOutstanding int
	// DataLatency is the crossbar's per-line transfer latency.
	DataLatency engine.Time
	// DataPortInterval serializes transfers leaving one port.
	DataPortInterval engine.Time
	// MemAccess is the DRAM access time for a full line (first-part
	// latency plus the remaining bursts: 40 + 7x4 for Table 1's 8-byte-
	// wide, 64-byte-line memory).
	MemAccess engine.Time
	// MemBanks is the number of independently busy DRAM banks; a bank is
	// occupied for MemAccess cycles per line it supplies or absorbs, so
	// aggregate memory bandwidth is MemBanks lines per MemAccess cycles.
	MemBanks int
}

// DefaultTiming returns Table 1's parameters.
func DefaultTiming() Timing {
	return Timing{
		L1Hit:            1,
		L2Hit:            6,
		AddrLatency:      12,
		GrantInterval:    6,
		MaxOutstanding:   117,
		DataLatency:      40,
		DataPortInterval: 32,
		MemAccess:        40 + 7*4,
		MemBanks:         8,
	}
}

// Validate rejects unusable timings.
func (t Timing) Validate() error {
	if t.L1Hit == 0 || t.L2Hit == 0 || t.GrantInterval == 0 ||
		t.DataPortInterval == 0 || t.MaxOutstanding <= 0 || t.MemBanks <= 0 {
		return fmt.Errorf("coherence: bad timing %+v", t)
	}
	return nil
}

// BusConfig derives the interconnect bus parameters.
func (t Timing) BusConfig() interconnect.BusConfig {
	return interconnect.BusConfig{
		Latency:        t.AddrLatency,
		GrantInterval:  t.GrantInterval,
		MaxOutstanding: t.MaxOutstanding,
	}
}

// NetConfig derives the crossbar parameters.
func (t Timing) NetConfig() interconnect.NetConfig {
	return interconnect.NetConfig{Latency: t.DataLatency, PortInterval: t.DataPortInterval}
}

// CacheGeometry carries the Table 1 cache sizes.
type CacheGeometry struct {
	L1 cache.Config
	L2 cache.Config
}

// DefaultCacheGeometry returns Table 1's 64-KB 2-way L1 and 512-KB 4-way L2.
func DefaultCacheGeometry() CacheGeometry {
	return CacheGeometry{
		L1: cache.Config{SizeBytes: 64 * 1024, Ways: 2},
		L2: cache.Config{SizeBytes: 512 * 1024, Ways: 4},
	}
}
