package coherence

import (
	"fmt"
	"testing"

	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/mem"
)

// Protocol conformance: for every reachable initial placement of one line
// across the caches, apply every access kind from a previously uninvolved
// node and check the resulting MOESI states, the value, and who supplied.
//
// Placements are established through ordinary operations (the protocol has
// no back door), so this also documents how each state arises:
//
//	uncached : nothing
//	S@1      : P1 load
//	S@1,2    : P1 and P2 load
//	M@1      : P1 store
//	O@1,S@2  : P1 store, P2 load
//	E@1      : P1 LL under delayed mode (exclusive clean from memory)
func TestProtocolConformance(t *testing.T) {
	type placement struct {
		name  string
		setup func(r *rig)
		// state of the line at P1/P2 after setup
		p1, p2 mem.State
	}
	const addr = mem.Addr(64)
	const line = mem.LineID(1)
	const initial = uint64(42)

	placements := []placement{
		{"uncached", func(r *rig) {}, mem.Invalid, mem.Invalid},
		{"S@1", func(r *rig) { r.sync(1, mem.Load, addr, 0) }, mem.Shared, mem.Invalid},
		{"S@1+S@2", func(r *rig) {
			r.sync(1, mem.Load, addr, 0)
			r.sync(2, mem.Load, addr, 0)
		}, mem.Shared, mem.Shared},
		{"M@1", func(r *rig) { r.sync(1, mem.Store, addr, initial) }, mem.Modified, mem.Invalid},
		{"O@1+S@2", func(r *rig) {
			r.sync(1, mem.Store, addr, initial)
			r.sync(2, mem.Load, addr, 0)
		}, mem.Owned, mem.Shared},
	}

	type access struct {
		name string
		kind mem.AccessKind
		val  uint64
		// wantP0 is P0's state after the access completes.
		wantP0 mem.State
		// invalidatesOthers: all other copies must be gone.
		invalidatesOthers bool
		// wantValue is the value the access must observe (loads) —
		// initial everywhere (setup wrote initial or memory holds it).
		checksValue bool
	}
	accesses := []access{
		{name: "load", kind: mem.Load, wantP0: mem.Shared, checksValue: true},
		{name: "store", kind: mem.Store, val: 7, wantP0: mem.Modified, invalidatesOthers: true},
		{name: "swap", kind: mem.SwapOp, val: 9, wantP0: mem.Modified, invalidatesOthers: true, checksValue: true},
	}

	for _, pl := range placements {
		for _, ac := range accesses {
			t.Run(pl.name+"/"+ac.name, func(t *testing.T) {
				r := newRig(t, 3, baselineCfg())
				r.f.Memory().Poke(addr, initial)
				pl.setup(r)
				if got := r.f.Node(1).State(line); got != pl.p1 {
					t.Fatalf("setup: P1 state %s, want %s", got, pl.p1)
				}
				if got := r.f.Node(2).State(line); got != pl.p2 {
					t.Fatalf("setup: P2 state %s, want %s", got, pl.p2)
				}
				res := r.sync(0, ac.kind, addr, ac.val)
				if ac.checksValue && res.Value != initial {
					t.Errorf("observed value %d, want %d", res.Value, initial)
				}
				if got := r.f.Node(0).State(line); got != ac.wantP0 {
					t.Errorf("P0 state %s, want %s", got, ac.wantP0)
				}
				if ac.invalidatesOthers {
					for n := 1; n <= 2; n++ {
						if got := r.f.Node(n).State(line); got != mem.Invalid {
							t.Errorf("P%d state %s after %s, want I", n, got, ac.name)
						}
					}
				}
				checkSingleWriter(t, r, line)
				// A follow-up read from P2 must observe the latest value
				// regardless of where it lives.
				want := initial
				if ac.kind == mem.Store {
					want = 7
				} else if ac.kind == mem.SwapOp {
					want = 9
				}
				if got := r.sync(2, mem.Load, addr, 0); got.Value != want {
					t.Errorf("P2 re-read %d, want %d", got.Value, want)
				}
			})
		}
	}
}

// TestProtocolConformanceLL checks the LL-specific initial transaction per
// mode and the resulting states.
func TestProtocolConformanceLL(t *testing.T) {
	const addr = mem.Addr(64)
	const line = mem.LineID(1)
	cases := []struct {
		mode      core.Mode
		wantState mem.State
		wantTx    mem.TxKind
	}{
		{core.ModeBaseline, mem.Shared, mem.TxGETS},
		{core.ModeAggressive, mem.Exclusive, mem.TxGETX},
		{core.ModeDelayed, mem.Exclusive, mem.TxLPRFO},
		{core.ModeIQOLB, mem.Exclusive, mem.TxLPRFO},
	}
	for _, c := range cases {
		t.Run(c.mode.String(), func(t *testing.T) {
			r := newRig(t, 2, core.DefaultConfig(c.mode))
			r.f.Memory().Poke(addr, 5)
			res := r.sync(0, mem.LoadLinked, addr, 0)
			if res.Value != 5 {
				t.Fatalf("LL value %d, want 5", res.Value)
			}
			if got := r.f.Node(0).State(line); got != c.wantState {
				t.Errorf("state %s, want %s", got, c.wantState)
			}
			if got := r.st.Nodes[0].TxIssued[c.wantTx]; got != 1 {
				t.Errorf("issued %d %s, want 1", got, c.wantTx)
			}
		})
	}
}

// TestSupplierSelection checks who supplies data in each placement: memory
// for clean lines, the owning cache for dirty ones.
func TestSupplierSelection(t *testing.T) {
	const addr = mem.Addr(64)
	t.Run("memory-supplies-clean", func(t *testing.T) {
		r := newRig(t, 3, baselineCfg())
		r.sync(1, mem.Load, addr, 0)
		r.sync(0, mem.Load, addr, 0)
		if r.f.Memory().Reads != 2 {
			t.Fatalf("memory reads = %d, want 2 (S copies do not supply)", r.f.Memory().Reads)
		}
	})
	t.Run("owner-supplies-dirty", func(t *testing.T) {
		r := newRig(t, 3, baselineCfg())
		r.sync(1, mem.Store, addr, 3)
		r.sync(0, mem.Load, addr, 0)
		r.sync(2, mem.Load, addr, 0)
		if r.f.Memory().Reads != 1 {
			t.Fatalf("memory reads = %d, want 1 (GETX only; O supplies the rest)", r.f.Memory().Reads)
		}
		if r.st.Nodes[1].DataSent[mem.DataShared] != 2 {
			t.Fatalf("owner supplied %d shared copies, want 2", r.st.Nodes[1].DataSent[mem.DataShared])
		}
	})
}

// TestWritebackRoundTrip checks that dirty evictions land in memory and a
// re-fetch observes the data, for every hardware mode.
func TestWritebackRoundTrip(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeIQOLB} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, 1, core.DefaultConfig(mode))
			step := mem.Addr(2048 * mem.LineSize)
			// Dirty five conflicting lines (4-way L2 set).
			for i := 0; i < 5; i++ {
				r.sync(0, mem.Store, mem.Addr(i)*step, uint64(100+i))
			}
			for i := 0; i < 5; i++ {
				if got := r.sync(0, mem.Load, mem.Addr(i)*step, 0); got.Value != uint64(100+i) {
					t.Fatalf("line %d read %d, want %d", i, got.Value, 100+i)
				}
			}
			if r.f.Memory().Writebacks == 0 {
				t.Fatal("no writebacks despite conflict misses")
			}
		})
	}
}

// TestValueInterleavings drives two writers and a reader through every
// relative order of a 3-op schedule and checks per-location coherence: the
// reader must observe one of the legal values, and the final value must be
// the later write.
func TestValueInterleavings(t *testing.T) {
	const addr = mem.Addr(64)
	for delay0 := 0; delay0 < 4; delay0++ {
		for delay1 := 0; delay1 < 4; delay1++ {
			name := fmt.Sprintf("d0=%d/d1=%d", delay0, delay1)
			t.Run(name, func(t *testing.T) {
				r := newRig(t, 3, baselineCfg())
				var readVal uint64
				var readDone bool
				r.eng.At(engine.Time(delay0*37), func(engine.Time) {
					r.op(0, mem.Store, addr, 111, nil)
				})
				r.eng.At(engine.Time(delay1*53+5), func(engine.Time) {
					r.op(1, mem.Store, addr, 222, nil)
				})
				r.eng.At(200, func(engine.Time) {
					r.op(2, mem.Load, addr, 0, func(res mem.Result) {
						readVal = res.Value
						readDone = true
					})
				})
				r.run()
				if !readDone {
					t.Fatal("read never completed")
				}
				if readVal != 0 && readVal != 111 && readVal != 222 {
					t.Fatalf("reader observed illegal value %d", readVal)
				}
				final := r.sync(2, mem.Load, addr, 0).Value
				if final != 111 && final != 222 {
					t.Fatalf("final value %d not one of the writes", final)
				}
			})
		}
	}
}
