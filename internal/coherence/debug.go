package coherence

import (
	"fmt"
	"strings"

	"iqolb/internal/interconnect"
	"iqolb/internal/mem"
)

// DebugLine renders one line's full coherence state across the machine —
// the fabric registers, every node's cache state, MSHR, loan and duty
// bookkeeping. It is the first tool to reach for when a protocol-level
// hang or invariant violation needs diagnosing.
func (f *Fabric) DebugLine(line mem.LineID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "line %d (base %#x): owner=%s holder=%s\n",
		line, uint64(line.Base()), f.ownerOf(line), f.holderOf(line))
	if n := f.memory.wbInFlight[line]; n > 0 {
		fmt.Fprintf(&sb, "  memory: %d writeback(s) in flight, %d deferred supplies\n",
			n, len(f.memory.deferred[line]))
	}
	for _, c := range f.nodes {
		s := c.debugLine(line)
		if s != "" {
			sb.WriteString(s)
		}
	}
	return sb.String()
}

func (c *Controller) debugLine(line mem.LineID) string {
	state := c.l2.State(line)
	m := c.mshrs[line]
	duties := c.duties[line]
	loaned := c.loanedOut[line]
	waiting := len(c.loanWait[line])
	linked := c.linkValid && c.linkAddr.Line() == line
	holding := c.policy.HoldingLockOn(line)
	if state == mem.Invalid && m == nil && len(duties) == 0 && !loaned && waiting == 0 && !linked && !holding {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %s: state=%s", c.id, state)
	if m != nil {
		fmt.Fprintf(&sb, " mshr{tx=%s observed=%v opDone=%v tear=%v pending=%d}",
			m.txKind, m.observed, m.opDone, m.hasTear, len(m.pending))
	}
	if loaned {
		fmt.Fprintf(&sb, " LOANED-OUT(waiters=%d)", waiting)
	}
	if linked {
		fmt.Fprintf(&sb, " linked(fragile=%v)", c.linkFragile)
	}
	if holding {
		sb.WriteString(" holding-lock")
	}
	for _, d := range duties {
		fmt.Fprintf(&sb, " duty{%s from %s delayed=%v inService=%v removed=%v loan=%v}",
			d.tx.Kind, d.tx.Requester, d.delayed, d.inService, d.removed, d.loan)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// SetDebugInstall wires a stdout dump of every install on line 16 (debug).
func SetDebugInstall() {
	dbgInstall = func(c *Controller, line mem.LineID, state mem.State, data mem.LineData) {
		if line == 16 {
			fmt.Printf("t=%-8d %s INSTALL state=%s w0=%d\n", uint64(c.eng.Now()), c.id, state, data[0])
		}
	}
}

// SetDebugDuty wires a stdout dump of duty routing on one line (debug).
func SetDebugDuty(line mem.LineID) {
	dbgDuty = func(c *Controller, action string, tx interconnect.Tx) {
		if tx.Line == line {
			fmt.Printf("t=%-8d %s %s duty %s(from %s, id %d) [owner=%s holder=%s]\n",
				uint64(c.eng.Now()), c.id, action, tx.Kind, tx.Requester, tx.ID,
				c.f.ownerOf(tx.Line), c.f.holderOf(tx.Line))
		}
	}
}

// SetDebugObserve wires a stdout dump of observations on one line (debug).
func SetDebugObserve(line mem.LineID) {
	dbgObserve = func(f *Fabric, tx interconnect.Tx) {
		if tx.Line == line {
			fmt.Printf("t=%-8d OBSERVE %s(from %s, id %d) [owner=%s holder=%s]\n",
				uint64(f.eng.Now()), tx.Kind, tx.Requester, tx.ID,
				f.ownerOf(tx.Line), f.holderOf(tx.Line))
		}
	}
}
