package coherence

import (
	"fmt"

	"iqolb/internal/engine"
	"iqolb/internal/interconnect"
	"iqolb/internal/mem"
)

// Memory is the home memory controller: the default owner of every line.
// It supplies lines after the DRAM access latency and absorbs writebacks.
// Supplies for a line with a writeback in flight wait for the writeback
// data, preserving per-line data ordering.
type Memory struct {
	f    *Fabric
	data map[mem.LineID]*mem.LineData

	wbInFlight map[mem.LineID]int
	deferred   map[mem.LineID][]deferredSupply

	// bankFree[b] is the cycle DRAM bank b next becomes available; banks
	// are selected by line interleaving, so aggregate bandwidth is
	// MemBanks lines per MemAccess cycles.
	bankFree []engine.Time

	// Statistics.
	Reads      uint64
	Writebacks uint64
	BankStall  uint64 // cycles requests waited for a busy bank
}

// claimBank reserves the line's DRAM bank and returns when the access
// completes.
func (m *Memory) claimBank(line mem.LineID) engine.Time {
	b := int(uint64(line) % uint64(len(m.bankFree)))
	now := m.f.eng.Now()
	start := m.bankFree[b]
	if start < now {
		start = now
	}
	m.BankStall += uint64(start - now)
	done := start + m.f.timing.MemAccess
	m.bankFree[b] = done
	return done
}

type deferredSupply struct {
	tx        interconnect.Tx
	exclusive bool
	tracked   bool
}

func newMemory(f *Fabric) *Memory {
	return &Memory{
		f:          f,
		data:       make(map[mem.LineID]*mem.LineData),
		wbInFlight: make(map[mem.LineID]int),
		deferred:   make(map[mem.LineID][]deferredSupply),
		bankFree:   make([]engine.Time, f.timing.MemBanks),
	}
}

// lineData returns the canonical line image, allocating zeroes lazily.
func (m *Memory) lineData(line mem.LineID) *mem.LineData {
	d := m.data[line]
	if d == nil {
		d = new(mem.LineData)
		m.data[line] = d
	}
	return d
}

// Poke initializes memory contents before a run (workload setup).
func (m *Memory) Poke(addr mem.Addr, v uint64) {
	m.lineData(addr.Line())[addr.WordIndex()] = v
}

// Peek reads memory contents directly (verification after a run). It does
// not snoop caches; callers must only use it once the machine is quiescent
// or tolerate staleness.
func (m *Memory) Peek(addr mem.Addr) uint64 {
	return m.lineData(addr.Line())[addr.WordIndex()]
}

// supply services a bus transaction from DRAM.
func (m *Memory) supply(tx interconnect.Tx, exclusive bool) {
	m.supplyInternal(tx, exclusive, true)
}

// supplyUntracked services a synthetic (QOLB grant) request that holds no
// bus slot.
func (m *Memory) supplyUntracked(tx interconnect.Tx) {
	m.supplyInternal(tx, true, false)
}

func (m *Memory) supplyInternal(tx interconnect.Tx, exclusive, tracked bool) {
	if m.wbInFlight[tx.Line] > 0 {
		m.deferred[tx.Line] = append(m.deferred[tx.Line],
			deferredSupply{tx: tx, exclusive: exclusive, tracked: tracked})
		return
	}
	m.Reads++
	kind := mem.DataShared
	if exclusive {
		kind = mem.DataExclusive
	}
	line := tx.Line
	data := *m.lineData(line)
	txID := tx.ID
	if !tracked {
		txID = 0
	}
	m.f.eng.At(m.claimBank(line), func(engine.Time) {
		m.f.send(interconnect.Msg{
			Kind: kind, Line: line, Data: data, Dirty: false,
			From: mem.MemoryNode, To: tx.Requester, TxID: txID,
		})
	})
}

// expectWriteback registers an in-flight writeback so supplies defer.
func (m *Memory) expectWriteback(line mem.LineID) {
	m.wbInFlight[line]++
}

// onData absorbs writeback data and drains deferred supplies.
func (m *Memory) onData(msg interconnect.Msg) {
	if msg.Kind != mem.DataWriteback {
		panic(fmt.Sprintf("coherence: memory received %s", msg.Kind))
	}
	m.Writebacks++
	m.claimBank(msg.Line) // the writeback occupies the bank too
	*m.lineData(msg.Line) = msg.Data
	if m.wbInFlight[msg.Line] == 0 {
		panic("coherence: unexpected writeback")
	}
	m.wbInFlight[msg.Line]--
	if m.wbInFlight[msg.Line] > 0 {
		return
	}
	delete(m.wbInFlight, msg.Line)
	pend := m.deferred[msg.Line]
	delete(m.deferred, msg.Line)
	for _, d := range pend {
		m.supplyInternal(d.tx, d.exclusive, d.tracked)
	}
}
