package coherence

import (
	"fmt"

	"iqolb/internal/cache"
	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/faults"
	"iqolb/internal/interconnect"
	"iqolb/internal/mem"
	"iqolb/internal/stats"
	"iqolb/internal/trace"
)

// mshr tracks one outstanding miss.
type mshr struct {
	line     mem.LineID
	txKind   mem.TxKind
	txID     uint64
	req      mem.Request
	issuedAt engine.Time

	// opDone marks the original request as already completed (tear-off
	// path); the fill then only installs the line and runs pending ops.
	opDone bool

	// observed is set when the transaction reaches its bus observation
	// (coherence) point. Conflicting transactions snooped before that are
	// ordered ahead of ours and require no squash/invalidation handling.
	observed bool

	// Tear-off spin state: the speculative value for exactly one word.
	hasTear  bool
	tearAddr mem.Addr
	tearVal  uint64

	// invalidated records a conflicting write-intent transaction observed
	// after ours was ordered but before our data arrived; a GETS fill
	// then completes without installing a (stale) copy.
	invalidated bool

	// pending ops to the same line issued while the miss is outstanding.
	pending []mem.Request
}

// duty is a supply obligation routed to this node by the fabric: another
// node's transaction this node must eventually answer.
type duty struct {
	tx      interconnect.Tx
	loan    bool
	arrived engine.Time

	delayed   bool // response deliberately delayed (the paper's Δ)
	tearSent  bool
	inService bool // prompt response already scheduled
	removed   bool // answered, squashed, or rerouted; scheduled events no-op
	timerDead bool // the time-out fired while the line was loaned out
	timerSeq  uint64
}

// Controller is one node's cache controller: L1/L2 arrays, the canonical
// data image, MSHRs, the supply-duty queue, the LL/SC link register, and
// the IQOLB policy hooks.
type Controller struct {
	id     mem.NodeID
	f      *Fabric
	eng    *engine.Engine
	policy *core.Policy
	l1     *cache.Cache
	l2     *cache.Cache

	data   map[mem.LineID]*mem.LineData
	mshrs  map[mem.LineID]*mshr
	duties map[mem.LineID][]*duty

	// loanedOut marks lines lent to a writer under queue retention; the
	// node remains queue head and reinstalls the line on DataReturn.
	// loanWait parks the node's own accesses to a loaned line until it
	// comes back.
	loanedOut map[mem.LineID]bool
	loanWait  map[mem.LineID][]mem.Request

	linkValid   bool
	linkAddr    mem.Addr
	linkFragile bool // link set from a tear-off value; dies on real fill

	timerSeq     uint64
	acquireStart map[mem.Addr]engine.Time

	st *stats.Node
}

func newController(id mem.NodeID, f *Fabric, geo CacheGeometry, pol *core.Policy, st *stats.Node) *Controller {
	return &Controller{
		id:           id,
		f:            f,
		eng:          f.eng,
		policy:       pol,
		l1:           cache.New(geo.L1),
		l2:           cache.New(geo.L2),
		data:         make(map[mem.LineID]*mem.LineData),
		mshrs:        make(map[mem.LineID]*mshr),
		duties:       make(map[mem.LineID][]*duty),
		loanedOut:    make(map[mem.LineID]bool),
		loanWait:     make(map[mem.LineID][]mem.Request),
		acquireStart: make(map[mem.Addr]engine.Time),
		st:           st,
	}
}

// Policy exposes the node's policy instance (tests, sweep tool).
func (c *Controller) Policy() *core.Policy { return c.policy }

// L1 exposes the first-level array (stats folding, tests).
func (c *Controller) L1() *cache.Cache { return c.l1 }

// L2 exposes the second-level array.
func (c *Controller) L2() *cache.Cache { return c.l2 }

// State exposes the L2 MOESI state of a line (tests, invariant checks).
func (c *Controller) State(line mem.LineID) mem.State { return c.l2.State(line) }

// PeekWord reads a resident line's word directly (tests).
func (c *Controller) PeekWord(addr mem.Addr) (uint64, bool) {
	d, ok := c.data[addr.Line()]
	if !ok {
		return 0, false
	}
	return d[addr.WordIndex()], true
}

func (c *Controller) hasReadableLine(line mem.LineID) bool {
	return c.l2.State(line).CanRead()
}

func (c *Controller) lineData(line mem.LineID) *mem.LineData {
	d := c.data[line]
	if d == nil {
		panic(fmt.Sprintf("coherence: %s has state %s for line %d but no data",
			c.id, c.l2.State(line), line))
	}
	return d
}

// traceEv records a processor/controller event on the traced line.
func (c *Controller) traceEv(kind trace.Kind, line mem.LineID, note string) {
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: kind, Node: c.id, Line: line, Note: note})
}

// completeAfter delivers a request's result lat cycles from now.
func (c *Controller) completeAfter(req mem.Request, res mem.Result, lat engine.Time) {
	c.eng.After(lat, func(engine.Time) { req.Done(res) })
}

// ---------------------------------------------------------------------------
// Processor-facing request path
// ---------------------------------------------------------------------------

// Access is the processor's entry point (proc.Port).
func (c *Controller) Access(req mem.Request) {
	line := req.Addr.Line()
	if c.loanedOut[line] {
		// Our own access to a line we lent out: it returns shortly.
		c.loanWait[line] = append(c.loanWait[line], req)
		return
	}
	if m := c.mshrs[line]; m != nil {
		// The line is in flight. Reads of the tear-off word spin locally;
		// everything else waits for the fill.
		if (req.Kind == mem.Load || req.Kind == mem.LoadLinked) && m.hasTear && m.tearAddr == req.Addr {
			c.st.LocalSpins++
			if req.Kind == mem.LoadLinked {
				c.setLink(req.Addr, true)
			}
			c.traceEv(trace.EvSpin, line, "")
			c.completeAfter(req, mem.Result{Value: m.tearVal, TearOff: true}, c.f.timing.L1Hit)
			return
		}
		m.pending = append(m.pending, req)
		return
	}
	c.dispatch(req)
}

// dbgInstall is a test hook observing every line installation.
var dbgInstall func(*Controller, mem.LineID, mem.State, mem.LineData)

// dbgDuty is a test hook observing duty routing ("add", "reroute",
// "transfer", "drop", "squash").
var dbgDuty func(c *Controller, action string, tx interconnect.Tx)

func (c *Controller) dispatch(req mem.Request) {
	switch req.Kind {
	case mem.Load, mem.LoadLinked:
		c.accessRead(req)
	case mem.Store:
		c.accessStore(req)
	case mem.StoreCond:
		c.accessSC(req)
	case mem.SwapOp:
		c.accessSwap(req)
	case mem.EnqolbOp:
		c.accessEnqolb(req)
	case mem.DeqolbOp:
		c.accessDeqolb(req)
	default:
		panic(fmt.Sprintf("coherence: unknown access kind %v", req.Kind))
	}
}

// hitLatency touches the hierarchy for a resident line and returns the
// access latency (L1 vs L2), installing the L1 entry on an L1 miss.
func (c *Controller) hitLatency(line mem.LineID) engine.Time {
	c.l2.Touch(line)
	if c.l1.Touch(line) {
		c.st.L1Hits++
		return c.f.timing.L1Hit
	}
	c.st.L1Misses++
	c.st.L2Hits++
	c.l1.Install(line, c.l1PermFor(line))
	return c.f.timing.L2Hit
}

func (c *Controller) l1PermFor(line mem.LineID) mem.State {
	if c.l2.State(line).CanWrite() {
		return mem.Modified
	}
	return mem.Shared
}

func (c *Controller) setLink(addr mem.Addr, fragile bool) {
	c.linkValid = true
	c.linkAddr = addr
	c.linkFragile = fragile
}

func (c *Controller) resetLinkIfOn(line mem.LineID) {
	if c.linkValid && c.linkAddr.Line() == line {
		c.linkValid = false
		c.linkFragile = false
	}
}

func (c *Controller) noteAcquireStart(addr mem.Addr) {
	if c.f.isLockAddr(addr) {
		if _, ok := c.acquireStart[addr]; !ok {
			c.acquireStart[addr] = c.eng.Now()
			c.f.noteLockAttempt(c.id, addr)
		}
	}
}

func (c *Controller) accessRead(req mem.Request) {
	line := req.Addr.Line()
	if req.Kind == mem.LoadLinked {
		c.st.LLCount++
		c.noteAcquireStart(req.Addr)
	} else {
		c.st.LoadCount++
	}
	if c.l2.State(line).CanRead() {
		lat := c.hitLatency(line)
		if req.Kind == mem.LoadLinked {
			c.setLink(req.Addr, false)
			c.traceEv(trace.EvLL, line, "hit")
		}
		c.completeAfter(req, mem.Result{Value: c.lineData(line)[req.Addr.WordIndex()]}, lat)
		return
	}
	c.st.L1Misses++
	c.st.L2Misses++
	tx := mem.TxGETS
	if req.Kind == mem.LoadLinked {
		tx = c.policy.TxForLL()
		c.traceEv(trace.EvLL, line, "miss")
	}
	c.missIssue(req, tx)
}

func (c *Controller) accessStore(req mem.Request) {
	line := req.Addr.Line()
	c.st.StoreCount++
	state := c.l2.State(line)
	switch {
	case state.CanWrite():
		lat := c.hitLatency(line)
		c.lineData(line)[req.Addr.WordIndex()] = req.Value
		c.probeCommit(req.Addr, req.Value)
		if state == mem.Exclusive {
			c.l2.SetState(line, mem.Modified)
		}
		c.traceEv(trace.EvStore, line, "")
		c.completeAfter(req, mem.Result{}, lat)
		c.afterStore(req.Addr)
	case state == mem.Shared || state == mem.Owned:
		c.missIssue(req, mem.TxUPGR)
	default:
		c.st.L1Misses++
		c.st.L2Misses++
		c.missIssue(req, mem.TxGETX)
	}
}

func (c *Controller) accessSC(req mem.Request) {
	line := req.Addr.Line()
	if !c.linkValid || c.linkAddr != req.Addr || c.linkFragile {
		c.st.SCFail++
		c.traceEv(trace.EvSCFail, line, "link lost")
		c.completeAfter(req, mem.Result{OK: false}, c.f.timing.L1Hit)
		return
	}
	state := c.l2.State(line)
	switch {
	case state.CanWrite():
		lat := c.hitLatency(line)
		c.lineData(line)[req.Addr.WordIndex()] = req.Value
		c.probeCommit(req.Addr, req.Value)
		if state == mem.Exclusive {
			c.l2.SetState(line, mem.Modified)
		}
		c.linkValid = false
		c.completeAfter(req, mem.Result{OK: true}, lat)
		// Policy bookkeeping runs atomically with the write: a gap would
		// let a concurrently scheduled prompt response steal the line
		// between the acquire and the held-table insertion.
		c.afterSCSuccess(req)
	case state == mem.Shared || state == mem.Owned:
		c.missIssue(req, mem.TxUPGR)
	default:
		// Link valid but no copy: conservatively fail (the spin loop
		// will retry its LL).
		c.st.SCFail++
		c.traceEv(trace.EvSCFail, line, "no copy")
		c.linkValid = false
		c.completeAfter(req, mem.Result{OK: false}, c.f.timing.L1Hit)
	}
}

// afterSCSuccess runs the paper's §3.3–3.4 bookkeeping once an SC has
// performed: classify the acquire, extend or flush any delayed response,
// and record lock statistics.
func (c *Controller) afterSCSuccess(req mem.Request) {
	line := req.Addr.Line()
	c.st.SCSuccess++
	c.traceEv(trace.EvSCOk, line, "")
	if c.f.fireFault(faults.PredictorCorrupt, line) {
		// Injected fault: flip the predictor's verdict for this PC before
		// the acquire is classified. Mispredictions cost time-outs, not
		// correctness — the run must still finish with the right state.
		c.policy.CorruptPredictor(req.PC)
	}
	class, evicted, wasEvicted := c.policy.OnSCSuccess(req.PC, req.Addr, c.eng.Now())
	if wasEvicted {
		// Nested speculation overflow: stop delaying for the discarded
		// outer lock.
		c.flushDelayed(evicted.Line, trace.EvDelayEnd, "nested overflow")
	}
	if c.f.isLockAddr(req.Addr) {
		c.st.LockAcquires++
		c.f.recordAcquire(c.id, req.Addr)
		if s, ok := c.acquireStart[req.Addr]; ok {
			c.f.st.AcquireWait.Add(uint64(c.eng.Now() - s))
			delete(c.acquireStart, req.Addr)
		}
	}
	if class == core.ClassLock {
		c.traceEv(trace.EvAcquire, line, "predicted lock")
		// The SC-window delay (if any) becomes a lock-hold delay: re-arm
		// its time-out with the larger budget and give the waiter a
		// tear-off to spin on.
		if d := c.delayedDuty(line); d != nil {
			c.armTimer(line, d, c.policy.Config().LockTimeout)
			c.maybeTearOff(line, d)
		}
	} else {
		c.flushDelayed(line, trace.EvDelayEnd, "SC complete")
	}
}

func (c *Controller) accessSwap(req mem.Request) {
	line := req.Addr.Line()
	c.st.SwapCount++
	state := c.l2.State(line)
	switch {
	case state.CanWrite():
		lat := c.hitLatency(line)
		d := c.lineData(line)
		old := d[req.Addr.WordIndex()]
		d[req.Addr.WordIndex()] = req.Value
		c.probeCommit(req.Addr, req.Value)
		if state == mem.Exclusive {
			c.l2.SetState(line, mem.Modified)
		}
		c.completeAfter(req, mem.Result{Value: old}, lat)
		c.afterStore(req.Addr)
	case state == mem.Shared || state == mem.Owned:
		c.missIssue(req, mem.TxUPGR)
	default:
		c.missIssue(req, mem.TxGETX)
	}
}

func (c *Controller) accessEnqolb(req mem.Request) {
	line := req.Addr.Line()
	c.st.QOLBEnqueues++
	c.noteAcquireStart(req.Addr)
	m := &mshr{line: line, txKind: mem.TxQOLB, req: req, issuedAt: c.eng.Now()}
	c.mshrs[line] = m
	c.st.TxIssued[mem.TxQOLB]++
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: trace.EvTxIssue, Node: c.id, Line: line, Tx: mem.TxQOLB})
	m.txID = c.f.bus.Request(mem.TxQOLB, req.Addr, c.id)
}

func (c *Controller) accessDeqolb(req mem.Request) {
	// The release itself is local (the holder owns the queue head); the
	// hand-off transfer is charged inside the grant path.
	addr := req.Addr
	c.completeAfter(req, mem.Result{}, c.f.timing.L1Hit)
	c.st.LockReleases++
	c.f.recordRelease(c.id, addr)
	c.traceEv(trace.EvRelease, addr.Line(), "deqolb")
	c.f.qolb.Release(c.id, addr)
}

// qolbGranted completes the node's pending EnQOLB once the lock (and its
// line) has arrived.
func (c *Controller) qolbGranted(addr mem.Addr) {
	line := addr.Line()
	m := c.mshrs[line]
	if m == nil || m.txKind != mem.TxQOLB {
		panic(fmt.Sprintf("coherence: %s QOLB grant without pending enqueue", c.id))
	}
	delete(c.mshrs, line)
	c.f.st.MissLatency.Add(uint64(c.eng.Now() - m.issuedAt))
	c.st.LockAcquires++
	if c.f.isLockAddr(addr) {
		c.f.recordAcquire(c.id, addr)
		if s, ok := c.acquireStart[addr]; ok {
			c.f.st.AcquireWait.Add(uint64(c.eng.Now() - s))
			delete(c.acquireStart, addr)
		}
	}
	c.traceEv(trace.EvAcquire, line, "qolb grant")
	val := c.lineData(line)[addr.WordIndex()]
	m.req.Done(mem.Result{Value: val, OK: true})
	for _, p := range m.pending {
		c.Access(p)
	}
}

// qolbGrantedLocal handles a grant when the line never left this cache.
func (c *Controller) qolbGrantedLocal(addr mem.Addr) {
	line := addr.Line()
	if !c.l2.State(line).CanWrite() {
		// Promote silently: the fabric already invalidated other copies.
		c.l2.SetState(line, mem.Modified)
		c.l1.Invalidate(line)
	}
	c.eng.After(c.f.timing.L1Hit, func(engine.Time) { c.qolbGranted(addr) })
}

// afterStore runs release detection for every completed store.
func (c *Controller) afterStore(addr mem.Addr) {
	if e, ok := c.policy.OnStore(addr); ok {
		c.st.LockReleases++
		if e.Delaying {
			c.st.PredictorHits++ // predicted lock, release observed: right
		} else {
			c.st.PredictorMisses++ // was a lock but ran as Fetch&Phi
		}
		c.f.recordRelease(c.id, addr)
		c.traceEv(trace.EvRelease, e.Line, "store to held lock")
		c.flushDelayed(e.Line, trace.EvDelayEnd, "release")
		// Generalized IQOLB: the tenure's protected-data lines are
		// released together with the lock.
		for _, fp := range e.Footprint {
			c.flushDelayed(fp, trace.EvDelayEnd, "release (footprint)")
		}
	} else if c.f.isLockAddr(addr) {
		// Modes without a held-locks table still record the release for
		// the hand-off statistics.
		c.st.LockReleases++
		c.f.recordRelease(c.id, addr)
		c.flushDelayed(addr.Line(), trace.EvDelayEnd, "lock-addr store")
	}
}

// missIssue allocates an MSHR and puts the transaction on the bus.
func (c *Controller) missIssue(req mem.Request, tx mem.TxKind) {
	line := req.Addr.Line()
	m := &mshr{line: line, txKind: tx, req: req, issuedAt: c.eng.Now()}
	c.mshrs[line] = m
	c.st.TxIssued[tx]++
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: trace.EvTxIssue, Node: c.id, Line: line, Tx: tx})
	if tx == mem.TxLPRFO {
		c.f.probeLPRFOIssue(c.id, line)
	}
	m.txID = c.f.bus.Request(tx, req.Addr, c.id)
}

// ---------------------------------------------------------------------------
// Bus-facing path: snoops, duties, grants
// ---------------------------------------------------------------------------

// snoop processes a transaction by another node at its observation instant.
func (c *Controller) snoop(tx interconnect.Tx) {
	line := tx.Line
	switch tx.Kind {
	case mem.TxGETX, mem.TxUPGR:
		state := c.l2.State(line)
		if state == mem.Shared || (tx.Kind == mem.TxUPGR && state == mem.Owned) {
			c.invalidateLocal(line)
			// An Owned chain head losing its copy to an upgrade must pass
			// its queued duties along; deferred one event so the fabric's
			// holder register reflects the upgrader first.
			if len(c.liveDuties(line)) > 0 {
				c.eng.After(0, func(engine.Time) { c.rerouteOrphanedDuties(line) })
			}
		} else if tx.Kind == mem.TxUPGR && state.IsOwner() {
			panic(fmt.Sprintf("coherence: %s holds %s while %s upgrades line %d",
				c.id, state, tx.Requester, line))
		}
		if m := c.mshrs[line]; m != nil && m.observed {
			if m.txKind == mem.TxLPRFO && !c.policy.Config().QueueRetention &&
				c.f.holderOf(line) != c.id {
				// Queue breakdown — but only for requests not yet
				// serviced (a response already in flight to us means our
				// request was ordered before this write).
				c.squash(m)
			} else if m.txKind == mem.TxGETS {
				m.invalidated = true
			}
		}
		if !c.policy.Config().QueueRetention {
			c.dropQueuedLPRFOs(line)
		}
	case mem.TxLPRFO:
		if c.l2.State(line) == mem.Shared {
			c.invalidateLocal(line)
		}
		if m := c.mshrs[line]; m != nil && m.observed && m.txKind == mem.TxGETS {
			m.invalidated = true
		}
	}
}

// squash abandons a queued LPRFO after a queue breakdown (retention off)
// and re-issues it; the queue rebuilds in new bus order (§3.2).
func (c *Controller) squash(m *mshr) {
	c.f.probeSquash(c.id, m.line)
	c.st.QueueBreakdowns++
	c.traceEv(trace.EvSquash, m.line, "")
	m.hasTear = false
	m.observed = false
	// Duties routed here (the chain below us) dissolve: each of their
	// requesters squashes itself on the same broadcast and frees its own
	// bus slot when it re-requests.
	c.dropQueuedLPRFOs(m.line)
	c.f.bus.Complete() // our own abandoned slot
	c.st.TxIssued[mem.TxLPRFO]++
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: trace.EvTxIssue, Node: c.id, Line: m.line, Tx: mem.TxLPRFO})
	c.f.probeLPRFOIssue(c.id, m.line)
	m.txID = c.f.bus.Request(mem.TxLPRFO, m.req.Addr, c.id)
}

// rerouteOrphanedDuties hands off duties stranded at a node that lost its
// copy without an ownership transfer (snoop invalidation of an Owned chain
// head).
func (c *Controller) rerouteOrphanedDuties(line mem.LineID) {
	if c.l2.State(line).CanRead() || c.loanedOut[line] {
		return // the line came back; processDuties will serve them
	}
	if m := c.mshrs[line]; m != nil && (m.txKind.WantsOwnership() || m.txKind == mem.TxQOLB) {
		return // expecting the line; duties stay queued here
	}
	rest := c.duties[line]
	delete(c.duties, line)
	for _, d := range rest {
		if d.removed {
			continue
		}
		d.removed = true
		c.f.reroute(d.tx, d.loan)
	}
}

// dropQueuedLPRFOs removes LPRFO duties during a queue breakdown. Their
// requesters reissue (and handle their own bus accounting) on the same
// broadcast.
func (c *Controller) dropQueuedLPRFOs(line mem.LineID) {
	queue := c.duties[line]
	if len(queue) == 0 {
		return
	}
	var keep []*duty
	for _, d := range queue {
		if d.tx.Kind == mem.TxLPRFO && !d.removed {
			d.removed = true
			continue
		}
		keep = append(keep, d)
	}
	if len(keep) == 0 {
		delete(c.duties, line)
	} else {
		c.duties[line] = keep
	}
}

// invalidateLocal drops the node's copy: caches, data, link, and any lock
// speculation on the line.
func (c *Controller) invalidateLocal(line mem.LineID) {
	c.resetLinkIfOn(line)
	c.l1.Invalidate(line)
	c.l2.Invalidate(line)
	delete(c.data, line)
}

// willRetain reports whether a plain write request for the line should be
// serviced as a loan (queue retention): this node is delaying responses
// for the line and the policy retains queues.
func (c *Controller) willRetain(line mem.LineID) bool {
	if !c.policy.Config().QueueRetention {
		return false
	}
	if c.loanedOut[line] {
		return true // already mid-loan; keep queue semantics
	}
	return c.delayedDuty(line) != nil
}

func (c *Controller) delayedDuty(line mem.LineID) *duty {
	for _, d := range c.duties[line] {
		if d.delayed && !d.removed {
			return d
		}
	}
	return nil
}

// ownTxObserved marks the node's outstanding transaction for the line as
// globally ordered.
func (c *Controller) ownTxObserved(line mem.LineID) {
	if m := c.mshrs[line]; m != nil {
		m.observed = true
	}
}

// addDuty receives a supply obligation from the fabric.
func (c *Controller) addDuty(tx interconnect.Tx, loan bool) {
	if tx.Requester == c.id {
		panic(fmt.Sprintf("coherence: %s received duty for its own request", c.id))
	}
	line := tx.Line
	expecting := false
	if m := c.mshrs[line]; m != nil && (m.txKind.WantsOwnership() || m.txKind == mem.TxQOLB) {
		expecting = true
	}
	if !c.hasReadableLine(line) && !c.loanedOut[line] && !expecting {
		// We no longer hold the line (raced with a hand-off): pass the
		// obligation to the current holder.
		if dbgDuty != nil {
			dbgDuty(c, "bounce", tx)
		}
		c.f.reroute(tx, loan)
		return
	}
	if dbgDuty != nil {
		dbgDuty(c, "add", tx)
	}
	d := &duty{tx: tx, loan: loan, arrived: c.eng.Now()}
	c.duties[line] = append(c.duties[line], d)
	c.processDuties(line)
}

// upgradeGranted completes a pending UPGR at its observation instant.
func (c *Controller) upgradeGranted(tx interconnect.Tx) {
	line := tx.Line
	m := c.mshrs[line]
	if m == nil {
		panic(fmt.Sprintf("coherence: %s upgrade granted without MSHR", c.id))
	}
	delete(c.mshrs, line)
	c.f.st.MissLatency.Add(uint64(c.eng.Now() - m.issuedAt))
	c.l2.SetState(line, mem.Modified)
	c.l1.Invalidate(line) // refresh permission on next touch
	c.probeInstall(line, mem.Modified)
	c.completeWriteOp(m, c.lineData(line))
	c.runPending(m)
	c.processDuties(line)
}

// completeWriteOp performs an MSHR's write-class operation on freshly
// writable data and completes the processor request.
func (c *Controller) completeWriteOp(m *mshr, d *mem.LineData) {
	req := m.req
	idx := req.Addr.WordIndex()
	switch req.Kind {
	case mem.Store:
		d[idx] = req.Value
		c.probeCommit(req.Addr, req.Value)
		c.traceEv(trace.EvStore, m.line, "")
		req.Done(mem.Result{})
		c.afterStore(req.Addr)
	case mem.StoreCond:
		if c.linkValid && c.linkAddr == req.Addr && !c.linkFragile {
			d[idx] = req.Value
			c.probeCommit(req.Addr, req.Value)
			c.linkValid = false
			req.Done(mem.Result{OK: true})
			c.afterSCSuccess(req)
		} else {
			c.st.SCFail++
			c.traceEv(trace.EvSCFail, m.line, "lost race")
			c.linkValid = false
			c.linkFragile = false
			req.Done(mem.Result{OK: false})
		}
	case mem.SwapOp:
		old := d[idx]
		d[idx] = req.Value
		c.probeCommit(req.Addr, req.Value)
		req.Done(mem.Result{Value: old})
		c.afterStore(req.Addr)
	case mem.Load, mem.LoadLinked:
		if req.Kind == mem.LoadLinked {
			c.setLink(req.Addr, false)
		}
		req.Done(mem.Result{Value: d[idx]})
	default:
		panic(fmt.Sprintf("coherence: unexpected op %v at fill", req.Kind))
	}
}

// ---------------------------------------------------------------------------
// Data arrival
// ---------------------------------------------------------------------------

func (c *Controller) onData(msg interconnect.Msg) {
	line := msg.Line
	switch msg.Kind {
	case mem.DataShared:
		m := c.takeMshr(line, msg)
		if m.invalidated {
			// A write was ordered after our read but before our data
			// arrived: use the value (our read is ordered first) but do
			// not install a stale copy, and do not set the link.
			c.completeReadNoInstall(m, msg.Data)
		} else {
			c.install(line, mem.Shared, msg.Data)
			c.completeFill(m)
		}
		if msg.TxID != 0 {
			c.f.bus.Complete()
		}
		c.runPending(m)
	case mem.DataExclusive:
		if msg.Loan {
			c.onLoanData(msg)
			return
		}
		if m := c.mshrs[line]; m != nil && m.txKind == mem.TxQOLB {
			c.install(line, mem.Modified, msg.Data)
			c.qolbGranted(m.req.Addr)
			c.processDuties(line) // duties queued while the grant was in flight
			return
		}
		m := c.takeMshr(line, msg)
		state := mem.Exclusive
		if msg.Dirty {
			state = mem.Modified
		}
		c.install(line, state, msg.Data)
		if c.linkFragile && c.linkAddr.Line() == line {
			// The tear-off value this link was based on is superseded.
			c.linkValid = false
			c.linkFragile = false
		}
		c.completeFill(m)
		if msg.TxID != 0 {
			c.f.bus.Complete()
		}
		c.runPending(m)
		c.processDuties(line)
	case mem.DataTearOff:
		m := c.mshrs[line]
		if m == nil {
			return // raced with a resolution; harmless
		}
		c.st.TearOffsIn++
		idx := m.req.Addr.WordIndex()
		m.hasTear = true
		m.tearAddr = m.req.Addr
		m.tearVal = msg.Data[idx]
		if !m.opDone && (m.req.Kind == mem.LoadLinked || m.req.Kind == mem.Load) {
			m.opDone = true
			if m.req.Kind == mem.LoadLinked {
				c.setLink(m.req.Addr, true)
			}
			m.req.Done(mem.Result{Value: m.tearVal, TearOff: true})
		}
		if m.txKind == mem.TxGETS {
			// A plain read answered speculatively is fully resolved: the
			// supplier completed our duty; no line will arrive.
			delete(c.mshrs, line)
			c.f.st.MissLatency.Add(uint64(c.eng.Now() - m.issuedAt))
			c.runPending(m)
		}
	case mem.DataReturn:
		if !c.loanedOut[line] {
			panic(fmt.Sprintf("coherence: %s got DataReturn without loan", c.id))
		}
		delete(c.loanedOut, line)
		c.st.RetentionTrips++
		c.install(line, mem.Modified, msg.Data)
		waiters := c.loanWait[line]
		delete(c.loanWait, line)
		for _, w := range waiters {
			c.Access(w)
		}
		c.processDuties(line)
	default:
		panic(fmt.Sprintf("coherence: %s received %s", c.id, msg.Kind))
	}
}

func (c *Controller) takeMshr(line mem.LineID, msg interconnect.Msg) *mshr {
	m := c.mshrs[line]
	if m == nil {
		panic(fmt.Sprintf("coherence: %s data %s for line %d without MSHR", c.id, msg.Kind, line))
	}
	delete(c.mshrs, line)
	c.f.st.MissLatency.Add(uint64(c.eng.Now() - m.issuedAt))
	return m
}

// onLoanData handles a retention-mode exclusive response: perform the one
// pending write on the borrowed line and return it immediately (§3.3's
// "transfer ownership back once the write completes").
func (c *Controller) onLoanData(msg interconnect.Msg) {
	line := msg.Line
	m := c.takeMshr(line, msg)
	data := msg.Data
	c.completeWriteOp(m, &data)
	if msg.TxID != 0 {
		c.f.bus.Complete()
	}
	c.st.RetentionTrips++
	c.f.send(interconnect.Msg{
		Kind: mem.DataReturn, Line: line, Data: data, Dirty: true,
		From: c.id, To: msg.ReturnTo,
	})
	// Duties queued here anticipated this node becoming the holder; the
	// loan means it never will. Pass them to the line's real home (the
	// holder register already points back at the loan origin).
	rest := c.duties[line]
	delete(c.duties, line)
	for _, d := range rest {
		if d.removed {
			continue
		}
		d.removed = true
		c.f.reroute(d.tx, d.loan)
	}
	c.runPending(m) // they will miss again: the line has left
}

func (c *Controller) completeReadNoInstall(m *mshr, data mem.LineData) {
	if m.opDone {
		return
	}
	m.opDone = true
	m.req.Done(mem.Result{Value: data[m.req.Addr.WordIndex()]})
}

// completeFill finishes the MSHR's original operation after installation.
func (c *Controller) completeFill(m *mshr) {
	if m.opDone {
		return
	}
	m.opDone = true
	line := m.line
	req := m.req
	switch req.Kind {
	case mem.Load:
		req.Done(mem.Result{Value: c.lineData(line)[req.Addr.WordIndex()]})
	case mem.LoadLinked:
		c.setLink(req.Addr, false)
		req.Done(mem.Result{Value: c.lineData(line)[req.Addr.WordIndex()]})
	case mem.Store, mem.StoreCond, mem.SwapOp:
		if !c.l2.State(line).CanWrite() {
			panic(fmt.Sprintf("coherence: %s write fill without write permission (%s)",
				c.id, c.l2.State(line)))
		}
		c.l2.SetState(line, mem.Modified)
		c.completeWriteOp(m, c.lineData(line))
	default:
		panic(fmt.Sprintf("coherence: fill for op %v", req.Kind))
	}
}

func (c *Controller) runPending(m *mshr) {
	pend := m.pending
	m.pending = nil
	for _, p := range pend {
		c.Access(p)
	}
}

// install places a line into the hierarchy, running the eviction path for
// any victim first.
func (c *Controller) install(line mem.LineID, state mem.State, data mem.LineData) {
	if dbgInstall != nil {
		dbgInstall(c, line, state, data)
	}
	if c.l2.State(line) == mem.Invalid {
		if victim, vstate, full := c.l2.Victim(line); full {
			c.evict(victim, vstate)
		}
	}
	c.l2.Install(line, state)
	d := data
	c.data[line] = &d
	c.l1.Install(line, c.l1PermFor(line))
	c.probeInstall(line, state)
}

// evict removes a victim line, honouring the paper's rule that evicting a
// line with queued requests transfers ownership (and data) to the next
// requestor — an eviction is treated as a time-out.
func (c *Controller) evict(victim mem.LineID, vstate mem.State) {
	c.resetLinkIfOn(victim)
	c.l1.Invalidate(victim)
	if len(c.liveDuties(victim)) > 0 {
		c.st.DelayEvictions++
		c.forwardOwnership(victim, trace.EvTimeout, "eviction")
		if c.l2.State(victim) != mem.Invalid {
			// Only reads were queued: evict normally, rerouting them to
			// the line's new home afterwards.
			c.finishEvict(victim, c.l2.State(victim))
		}
		return
	}
	c.finishEvict(victim, vstate)
}

func (c *Controller) finishEvict(victim mem.LineID, vstate mem.State) {
	if vstate.Dirty() {
		c.writeback(victim)
	} else {
		c.f.setHolderIfNode(victim, c.id, mem.MemoryNode)
		c.f.setOwnerIfHeldBy(victim, c.id, mem.MemoryNode)
	}
	c.l2.Invalidate(victim)
	delete(c.data, victim)
	rest := c.duties[victim]
	delete(c.duties, victim)
	for _, d := range rest {
		if d.removed {
			continue
		}
		d.removed = true
		c.f.reroute(d.tx, d.loan)
	}
}

func (c *Controller) liveDuties(line mem.LineID) []*duty {
	var out []*duty
	for _, d := range c.duties[line] {
		if !d.removed {
			out = append(out, d)
		}
	}
	return out
}

func (c *Controller) writeback(line mem.LineID) {
	c.st.TxIssued[mem.TxWB]++
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: trace.EvTxIssue, Node: c.id, Line: line, Tx: mem.TxWB})
	c.f.bus.Request(mem.TxWB, line.Base(), c.id)
	c.f.memory.expectWriteback(line)
	c.f.send(interconnect.Msg{
		Kind: mem.DataWriteback, Line: line, Data: *c.lineData(line), Dirty: true,
		From: c.id, To: mem.MemoryNode,
	})
}

// ---------------------------------------------------------------------------
// Duty processing: the heart of the delayed-response and IQOLB mechanisms
// ---------------------------------------------------------------------------

// delaying reports whether the node is entitled to delay LPRFO responses
// for the line: it is inside an LL→SC window on it, or it holds a
// predicted lock on it. The second result is the lock-hold case. A
// degraded fabric never delays — that is what plain-RFO fallback means.
func (c *Controller) delaying(line mem.LineID) (bool, bool) {
	if c.f.degraded {
		return false, false
	}
	holdingLock := c.policy.HoldingLockOn(line)
	inWindow := c.linkValid && !c.linkFragile && c.linkAddr.Line() == line
	return inWindow || holdingLock, holdingLock
}

// processDuties walks the line's queued duties in bus order and services
// what it can. The pass stops as soon as a response that moves the line
// (an ownership transfer or a loan) has been scheduled: later duties must
// stay ordered behind it and are rerouted to the new holder (or resumed on
// the loan's return). Delayed duties and parked reads do not move the line
// and so do not block the walk.
func (c *Controller) processDuties(line mem.LineID) {
	if !c.l2.State(line).CanRead() {
		return // data not here yet (owner-elect) or loaned out
	}
	for _, d := range c.liveDuties(line) {
		if d.delayed {
			if c.f.lineStuck(line) {
				continue // injected StuckDelay: nothing ends this delay
			}
			shouldDelay, _ := c.delaying(line)
			if !shouldDelay {
				// The delay's basis vanished without a flush (the SC
				// failed, or the lock speculation died during a loan):
				// forward now.
				c.st.DelaysReleased++
				c.forwardOwnership(line, trace.EvDelayEnd, "delay basis gone")
				return
			}
			if d.timerDead {
				// The time-out fired while the line was loaned out;
				// re-arm it now that the line is back.
				d.timerDead = false
				_, holdingLock := c.delaying(line)
				c.armTimer(line, d, c.policy.DelayBudget(holdingLock))
			}
			continue
		}
		if d.inService {
			break // the line is about to leave (or be loaned)
		}
		d := d
		switch d.tx.Kind {
		case mem.TxGETS:
			c.serviceGETS(line, d)
		case mem.TxGETX:
			d.inService = true
			c.eng.After(c.policy.Config().RFOServiceDelay, func(engine.Time) {
				c.serviceGETX(line, d)
			})
			return
		case mem.TxLPRFO:
			shouldDelay, holdingLock := c.delaying(line)
			if shouldDelay && c.policy.Config().Mode.UsesLPRFO() {
				c.startDelay(line, d, holdingLock)
			} else {
				d.inService = true
				c.eng.After(c.policy.Config().RFOServiceDelay, func(engine.Time) {
					c.serviceLPRFOPrompt(line, d)
				})
				return
			}
		default:
			panic(fmt.Sprintf("coherence: duty with kind %v", d.tx.Kind))
		}
	}
}

func (c *Controller) startDelay(line mem.LineID, d *duty, holdingLock bool) {
	d.delayed = true
	c.st.DelaysStarted++
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: trace.EvDelayStart, Node: c.id,
		Peer: d.tx.Requester, Line: line})
	c.f.probeDelayStart(c.id, d.tx.Requester, line, holdingLock)
	c.armTimer(line, d, c.policy.DelayBudget(holdingLock))
	if holdingLock {
		c.maybeTearOff(line, d)
	}
}

// serviceGETS answers a read request: a tear-off while delaying, otherwise
// a shared copy with the usual MOESI downgrade.
func (c *Controller) serviceGETS(line mem.LineID, d *duty) {
	shouldDelay, _ := c.delaying(line)
	if shouldDelay && c.policy.Config().Mode.UsesLPRFO() {
		// A read arriving mid-delay is answered with an uncached copy of
		// the current value: reads must not be starvable, and a durable
		// Shared copy would outlive the queued ownership transfer. (This
		// holds even when Config.TearOff — tear-offs to queued lock
		// waiters — is ablated away.)
		c.sendTearOff(line, d.tx.Requester)
		c.removeDuty(line, d)
		if d.tx.ID != 0 {
			c.f.bus.Complete()
		}
		return
	}
	state := c.l2.State(line)
	c.f.send(interconnect.Msg{
		Kind: mem.DataShared, Line: line, Data: *c.lineData(line), Dirty: state.Dirty(),
		From: c.id, To: d.tx.Requester, TxID: d.tx.ID,
	})
	switch state {
	case mem.Modified:
		c.l2.SetState(line, mem.Owned)
		c.l1.Invalidate(line)
	case mem.Exclusive:
		c.l2.SetState(line, mem.Shared)
		c.l1.Invalidate(line)
		c.f.setHolderIfNode(line, c.id, mem.MemoryNode)
		c.f.setOwnerIfHeldBy(line, c.id, mem.MemoryNode)
	}
	c.removeDuty(line, d)
}

// serviceGETX answers a plain write request promptly: a loan under queue
// retention, otherwise a full ownership transfer.
func (c *Controller) serviceGETX(line mem.LineID, d *duty) {
	if d.removed || !c.l2.State(line).CanRead() {
		return
	}
	if d.loan {
		c.loanOut(line, d)
		return
	}
	c.transferOwnership(line, d)
}

func (c *Controller) serviceLPRFOPrompt(line mem.LineID, d *duty) {
	if d.removed || !c.l2.State(line).CanRead() {
		return
	}
	// Re-check: a spin loop may have re-armed the link (or an SC may have
	// registered a lock) between scheduling and service.
	if shouldDelay, holdingLock := c.delaying(line); shouldDelay && c.policy.Config().Mode.UsesLPRFO() {
		d.inService = false
		c.startDelay(line, d, holdingLock)
		return
	}
	c.transferOwnership(line, d)
}

// loanOut lends the line to a writer and expects it straight back.
func (c *Controller) loanOut(line mem.LineID, d *duty) {
	state := c.l2.State(line)
	c.f.send(interconnect.Msg{
		Kind: mem.DataExclusive, Line: line, Data: *c.lineData(line), Dirty: state.Dirty(),
		From: c.id, To: d.tx.Requester, TxID: d.tx.ID,
		Loan: true, ReturnTo: c.id,
	})
	c.loanedOut[line] = true
	c.resetLinkIfOn(line)
	c.l1.Invalidate(line)
	c.l2.Invalidate(line)
	delete(c.data, line)
	c.removeDuty(line, d)
}

// transferOwnership sends the line exclusively to the duty's requester and
// gives it up locally.
func (c *Controller) transferOwnership(line mem.LineID, d *duty) {
	if dbgDuty != nil {
		dbgDuty(c, "transfer", d.tx)
	}
	state := c.l2.State(line)
	c.f.send(interconnect.Msg{
		Kind: mem.DataExclusive, Line: line, Data: *c.lineData(line), Dirty: state.Dirty(),
		From: c.id, To: d.tx.Requester, TxID: d.tx.ID,
	})
	c.removeDuty(line, d)
	c.giveUpLine(line)
}

// giveUpLine invalidates locally and reroutes any remaining duties to the
// new holder (whose identity the fabric recorded at send time).
func (c *Controller) giveUpLine(line mem.LineID) {
	c.invalidateLocal(line)
	rest := c.duties[line]
	delete(c.duties, line)
	for _, d := range rest {
		if d.removed {
			continue
		}
		d.removed = true
		c.f.reroute(d.tx, d.loan)
	}
}

// forwardOwnership hands the line to the first queued ownership-wanting
// duty: the flush path shared by SC completion, lock release, time-out,
// and eviction.
func (c *Controller) forwardOwnership(line mem.LineID, ev trace.Kind, note string) {
	var targets []*duty
	for _, d := range c.liveDuties(line) {
		if d.inService {
			continue
		}
		if d.tx.Kind == mem.TxLPRFO || d.tx.Kind == mem.TxGETX {
			targets = append(targets, d)
			if len(targets) == 2 {
				break
			}
		}
	}
	var target *duty
	if len(targets) > 0 {
		target = targets[0]
	}
	if len(targets) > 1 && c.f.fireFault(faults.GrantReorder, line) {
		// Injected fault: the grant jumps the bus-order queue. The
		// hand-off-order monitor must flag the out-of-order send.
		target = targets[1]
	}
	if target == nil {
		// Only reads are queued (or nothing). The line is leaving (this
		// is the eviction path); they will be rerouted by the caller once
		// the fabric bookkeeping reflects the new holder.
		return
	}
	c.f.rec.Add(trace.Event{At: c.eng.Now(), Kind: ev, Node: c.id, Peer: target.tx.Requester,
		Line: line, Note: note})
	if target.delayed {
		reason := DelayFlushed
		if ev == trace.EvTimeout {
			reason = DelayTimedOut
		}
		c.f.probeDelayEnd(c.id, target.tx.Requester, line, reason)
	}
	c.transferOwnership(line, target)
}

// flushDelayed ends a delayed response early (SC completed for Fetch&Phi,
// or the lock was released) by forwarding the line; with nothing delayed it
// re-walks the queue so reads parked behind the delay get serviced.
func (c *Controller) flushDelayed(line mem.LineID, ev trace.Kind, note string) {
	if c.f.lineStuck(line) {
		return // injected StuckDelay: the delay never releases
	}
	if !c.l2.State(line).CanRead() {
		return // loaned out or already gone; duties travel with the line
	}
	if d := c.delayedDuty(line); d != nil {
		if c.f.fireFault(faults.FlushDropped, line) {
			return // the flush is lost; the armed time-out is the backstop
		}
		c.st.DelaysReleased++
		c.forwardOwnership(line, ev, note)
		return
	}
	c.processDuties(line)
}

// armTimer (re)schedules the delay's time-out. StuckDelay injection
// rolls here — once per arming, the natural start of a delay episode —
// and wedges the whole line: neither this timer nor any later flush or
// re-arm will end the delay (until degradation clears the mark).
func (c *Controller) armTimer(line mem.LineID, d *duty, budget engine.Time) {
	if c.f.lineStuck(line) {
		return // injected StuckDelay: the time-out safety net is dead
	}
	if c.f.fireFault(faults.StuckDelay, line) {
		c.f.markStuck(line)
		return
	}
	c.timerSeq++
	seq := c.timerSeq
	d.timerSeq = seq
	c.eng.After(budget, func(engine.Time) {
		if d.timerSeq != seq || d.removed || !d.delayed {
			return
		}
		if !c.l2.State(line).CanRead() {
			// Loaned out: flag the duty so the return path re-arms.
			d.timerDead = true
			return
		}
		c.st.DelayTimeouts++
		if c.policy.HoldingLockOn(line) {
			c.st.PredictorMisses++ // predicted lock, but no release came
		}
		c.policy.OnDelayTimeout(line)
		c.forwardOwnership(line, trace.EvTimeout, "delay budget exhausted")
	})
}

// maybeTearOff sends the waiter a tear-off copy to spin on.
func (c *Controller) maybeTearOff(line mem.LineID, d *duty) {
	if !c.policy.Config().TearOff || d.tearSent {
		return
	}
	d.tearSent = true
	c.sendTearOff(line, d.tx.Requester)
}

func (c *Controller) sendTearOff(line mem.LineID, to mem.NodeID) {
	c.st.TearOffsOut++
	c.f.probeTearOff(c.id, to, line)
	kind := mem.DataTearOff
	if c.f.fireFault(faults.TearOffOwnership, line) {
		// Injected fault: the tear-off arrives as an ownership transfer
		// while this node keeps its writable copy.
		kind = mem.DataExclusive
	}
	c.f.send(interconnect.Msg{
		Kind: kind, Line: line, Data: *c.lineData(line),
		From: c.id, To: to,
	})
}

func (c *Controller) removeDuty(line mem.LineID, d *duty) {
	d.removed = true
	queue := c.duties[line]
	for i, q := range queue {
		if q == d {
			c.duties[line] = append(queue[:i], queue[i+1:]...)
			break
		}
	}
	if len(c.duties[line]) == 0 {
		delete(c.duties, line)
	}
}
