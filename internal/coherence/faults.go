package coherence

// Fault injection for mutation-testing the invariant monitors
// (internal/check). Each switch plants one specific protocol bug; the
// monitor suite asserts that its checkers catch both, guarding against a
// checker that passes vacuously. Test-only: nothing in the simulator or
// the CLIs ever sets these, and they are global, so tests flipping them
// must not run in parallel with other machine runs.
var (
	// faultStuckDelay makes a started delayed response permanent: the
	// release-time flush and the time-out timer are both suppressed, so a
	// queued LPRFO waiter behind a delaying holder is never granted. The
	// starvation watchdog must flag the waiter.
	faultStuckDelay bool

	// faultTearOffOwnership sends tear-off copies as ownership transfers
	// (DataExclusive) while the supplier keeps its Modified line — two
	// writable copies of one line. The SWMR monitor must flag the install.
	faultTearOffOwnership bool
)

// SetFaultStuckDelay plants or clears the stuck-delay fault (tests only).
func SetFaultStuckDelay(on bool) { faultStuckDelay = on }

// SetFaultTearOffOwnership plants or clears the tear-off-ownership fault
// (tests only).
func SetFaultTearOffOwnership(on bool) { faultTearOffOwnership = on }
