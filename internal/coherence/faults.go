package coherence

import (
	"sort"

	"iqolb/internal/faults"
	"iqolb/internal/mem"
	"iqolb/internal/trace"
)

// Fault injection and graceful degradation. The fabric carries an
// optional per-machine faults.Injector consulted at the protocol's
// decision points (delay flush, timer arm, tear-off send, hand-off
// target selection, SC classification); this replaces the old
// package-global mutation switches, so faulted machines and clean
// machines can run in the same process concurrently.
//
// Degradation is the recovery half: Degrade forces the fabric out of
// the delayed-response protocol into plain-RFO semantics — every armed
// delay is flushed, no new delay starts, and no further fault fires —
// so a run wedged by an injected (or real) stuck delay completes with
// correct final state instead of starving.

// SetFaultInjector attaches a per-machine fault-injection plan's runtime
// state (nil detaches). Call before Run; machine.New wires it from
// Config.Faults.
func (f *Fabric) SetFaultInjector(in *faults.Injector) { f.inj = in }

// FaultInjector exposes the attached injector (nil when the machine runs
// clean) for result records and failure manifests.
func (f *Fabric) FaultInjector() *faults.Injector { return f.inj }

// fireFault rolls one injection opportunity for kind on line. A degraded
// fabric injects nothing: degradation is the protocol's safe mode.
func (f *Fabric) fireFault(k faults.Kind, line mem.LineID) bool {
	if f.inj == nil || f.degraded {
		return false
	}
	if !f.inj.Fire(k, uint64(f.eng.Now())) {
		return false
	}
	f.probeFaultInjected(k, line)
	return true
}

// lineStuck reports whether an injected StuckDelay has wedged the line's
// delay machinery. The injection itself is rolled where the delay timer
// is armed (Controller.armTimer), so one roll covers a whole delay
// episode; this predicate only honors the resulting mark.
func (f *Fabric) lineStuck(line mem.LineID) bool {
	return !f.degraded && f.stuck[line]
}

// markStuck wedges the line's delay machinery (StuckDelay injection).
func (f *Fabric) markStuck(line mem.LineID) {
	if f.stuck == nil {
		f.stuck = make(map[mem.LineID]bool)
	}
	f.stuck[line] = true
}

// Degrade forces the machine into plain-RFO semantics: delaying()
// answers false everywhere, every armed delayed response is flushed on
// the spot (stuck lines included — the injector is bypassed once
// degraded), and no further fault fires. Idempotent; safe to call from
// a monitor's after-step hook mid-run. The check monitor's starvation
// watchdog is the intended caller (check.Config.Degrader).
func (f *Fabric) Degrade(reason string) {
	if f.degraded {
		return
	}
	f.degraded = true
	f.degradeReason = reason
	f.stuck = nil
	f.probeDegraded(reason)
	for _, n := range f.nodes {
		n.releaseAllDelays()
	}
}

// Degraded reports whether (and why) the fabric fell back to plain-RFO
// semantics.
func (f *Fabric) Degraded() (bool, string) { return f.degraded, f.degradeReason }

// releaseAllDelays flushes every delayed duty on the node and re-walks
// the remaining queues, in deterministic line order (the duty map's
// iteration order must not leak into the event schedule).
func (c *Controller) releaseAllDelays() {
	lines := make([]mem.LineID, 0, len(c.duties))
	for line := range c.duties {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		if !c.l2.State(line).CanRead() {
			continue // loaned out or gone; duties travel with the line
		}
		if d := c.delayedDuty(line); d != nil {
			c.st.DelaysReleased++
			c.forwardOwnership(line, trace.EvDelayEnd, "degraded to plain-RFO")
			continue
		}
		c.processDuties(line)
	}
}
