package machine

import (
	"errors"
	"fmt"
	"strings"

	"iqolb/internal/proc"
)

// ErrDeadlock is the sentinel matched by errors.Is when a run's event
// queue drains with processors still unhalted. The concrete error is a
// *DeadlockError carrying the per-processor stall dump.
var ErrDeadlock = errors.New("machine: deadlock")

// DeadlockError reports a run whose event queue drained before every
// processor halted: nothing was scheduled, nobody had finished. It
// carries each processor's blocking state so the failure is diagnosable
// without a trace (which processor, which PC, waiting on what, since
// which cycle).
type DeadlockError struct {
	// Cycle is when the event queue drained.
	Cycle uint64 `json:"cycle"`
	// Halted of Procs processors had finished normally.
	Halted int `json:"halted"`
	Procs  int `json:"procs"`
	// Stalls holds every processor's state, halted ones included.
	Stalls []proc.Stall `json:"stalls"`
}

// Error renders the classic one-line summary first (unchanged from the
// old untyped error, so logs and log-scrapers keep working), then one
// line per stuck processor.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: deadlock: %d of %d processors halted at cycle %d",
		e.Halted, e.Procs, e.Cycle)
	for _, s := range e.Stalls {
		if s.Halted {
			continue
		}
		fmt.Fprintf(&b, "\n  P%d pc=%d", s.CPU, s.PC)
		if s.Waiting != "" {
			fmt.Fprintf(&b, " waiting on %s since cycle %d", s.Waiting, s.Since)
		} else {
			b.WriteString(" idle (no operation outstanding)")
		}
	}
	return b.String()
}

// Unwrap lets errors.Is(err, ErrDeadlock) match.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }
