package machine

import (
	"errors"
	"strings"
	"testing"

	"iqolb/internal/core"
	"iqolb/internal/isa"
	"iqolb/internal/proc"
	"iqolb/internal/stats"
)

func cfg(n int, mode core.Mode) Config {
	c := DefaultConfig(n, mode)
	c.CycleLimit = 50_000_000
	return c
}

func mustRun(t *testing.T, c Config, prog *isa.Program) (*Machine, Result) {
	t.Helper()
	m, err := New(c, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("run hit cycle limit")
	}
	return m, res
}

func TestSingleCPUHalts(t *testing.T) {
	prog := isa.MustAssemble("li t0, 5\n work 100\n halt")
	_, res := mustRun(t, cfg(1, core.ModeBaseline), prog)
	if res.Cycles < 100 {
		t.Fatalf("cycles = %d, want >= 100", res.Cycles)
	}
	if res.PerCPU[0].Instructions != 3 {
		t.Fatalf("instructions = %d, want 3", res.PerCPU[0].Instructions)
	}
}

func TestSharedCounterTTSMutualExclusion(t *testing.T) {
	// Every CPU increments a shared counter N times under a TTS lock.
	// The final value must be exactly P*N — the end-to-end mutual
	// exclusion check.
	const iters = 20
	src := `
	  li   a0, 1024         # lock address
	  li   a1, 2048         # counter address
	  li   s0, 0            # iteration count
	  li   s1, 20
	loop:
	  # --- tts acquire ---
	spin:
	  ll   t1, 0(a0)
	  bne  t1, r0, spin
	  li   t0, 1
	  sc   t0, 0(a0)
	  beq  t0, r0, spin
	  # --- critical section ---
	  lw   t2, 0(a1)
	  addi t2, t2, 1
	  sw   t2, 0(a1)
	  # --- release ---
	  sw   r0, 0(a0)
	  addi s0, s0, 1
	  blt  s0, s1, loop
	  halt
	`
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeAggressive, core.ModeDelayed, core.ModeIQOLB} {
		t.Run(mode.String(), func(t *testing.T) {
			const procs = 8
			c := cfg(procs, mode)
			m, err := New(c, isa.MustAssemble(src), nil)
			if err != nil {
				t.Fatal(err)
			}
			m.RegisterLockAddr(1024)
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.HitLimit {
				t.Fatal("hit cycle limit (livelock)")
			}
			if got := m.Peek(2048); got != procs*iters {
				t.Fatalf("counter = %d, want %d (mutual exclusion violated)", got, procs*iters)
			}
			if res.Stats.Total(func(n *stats.Node) uint64 { return n.LockAcquires }) == 0 {
				t.Fatal("no lock acquires recorded")
			}
		})
	}
}

func TestSharedCounterQOLB(t *testing.T) {
	const iters, procs = 20, 8
	src := `
	  li   a0, 1024
	  li   a1, 2048
	  li   s0, 0
	  li   s1, 20
	loop:
	  enqolb t0, 0(a0)
	  lw   t2, 0(a1)
	  addi t2, t2, 1
	  sw   t2, 0(a1)
	  deqolb 0(a0)
	  addi s0, s0, 1
	  blt  s0, s1, loop
	  halt
	`
	c := cfg(procs, core.ModeBaseline)
	m, err := New(c, isa.MustAssemble(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterLockAddr(1024)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("hit limit")
	}
	if got := m.Peek(2048); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
	if m.Fabric().QOLB().Handoffs == 0 {
		t.Fatal("no QOLB handoffs under contention")
	}
}

func TestFetchAddViaLLSCAllModes(t *testing.T) {
	// A Fetch&Add loop with no lock: final counter must equal the sum of
	// all successful increments regardless of mode.
	const iters, procs = 25, 6
	src := `
	  li   a1, 4096
	  li   s0, 0
	  li   s1, 25
	loop:
	  ll   t1, 0(a1)
	  addi t1, t1, 1
	  sc   t1, 0(a1)
	  beq  t1, r0, loop    # retry on failure (does not count)
	  addi s0, s0, 1
	  blt  s0, s1, loop
	  halt
	`
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeDelayed, core.ModeIQOLB} {
		t.Run(mode.String(), func(t *testing.T) {
			m, res := mustRun(t, cfg(procs, mode), isa.MustAssemble(src))
			if got := m.Peek(4096); got != iters*procs {
				t.Fatalf("counter = %d, want %d (lost updates)", got, iters*procs)
			}
			_ = res
		})
	}
}

func TestDelayedModeEliminatesSCFailures(t *testing.T) {
	// The paper's Fetch&Phi pattern: every processor visits the shared
	// counter once per episode with other work in between, so each RMW
	// re-fetches the line. Baseline then pays two transactions plus SC
	// retries; delayed response pays one and no retries (§3.2, Figure 3).
	const procs = 6
	src := `
	  li   a1, 4096
	  li   s0, 0
	  li   s1, 25
	loop:
	  ll   t1, 0(a1)
	  addi t1, t1, 1
	  sc   t1, 0(a1)
	  beq  t1, r0, loop
	  work 120
	  addi s0, s0, 1
	  blt  s0, s1, loop
	  halt
	`
	_, base := mustRun(t, cfg(procs, core.ModeBaseline), isa.MustAssemble(src))
	_, delayed := mustRun(t, cfg(procs, core.ModeDelayed), isa.MustAssemble(src))
	if base.Stats.SCFailureRate() == 0 {
		t.Fatal("baseline had no SC failures under contention — suspicious")
	}
	if delayed.Stats.SCFailureRate() >= base.Stats.SCFailureRate() {
		t.Fatalf("delayed SC failure rate %.3f not below baseline %.3f",
			delayed.Stats.SCFailureRate(), base.Stats.SCFailureRate())
	}
	if delayed.Cycles >= base.Cycles {
		t.Fatalf("delayed mode (%d cycles) not faster than baseline (%d) on contended Fetch&Add",
			delayed.Cycles, base.Cycles)
	}
}

func TestBarrierAcrossMachine(t *testing.T) {
	// CPU 0 computes long before the barrier; all must wait for it.
	src := `
	  cpuid t0
	  bne   t0, r0, wait
	  work  5000
	wait:
	  bar   1
	  halt
	`
	_, res := mustRun(t, cfg(4, core.ModeBaseline), isa.MustAssemble(src))
	for i, c := range res.PerCPU {
		if c.HaltedAt < 5000 {
			t.Fatalf("cpu %d halted at %d, before the barrier released", i, c.HaltedAt)
		}
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	  li   a0, 1024
	  li   a1, 2048
	  li   s0, 0
	  li   s1, 10
	loop:
	spin:
	  ll   t1, 0(a0)
	  bne  t1, r0, spin
	  li   t0, 1
	  sc   t0, 0(a0)
	  beq  t0, r0, spin
	  lw   t2, 0(a1)
	  rand t3, 8
	  workr t3
	  addi t2, t2, 1
	  sw   t2, 0(a1)
	  sw   r0, 0(a0)
	  addi s0, s0, 1
	  blt  s0, s1, loop
	  halt
	`
	run := func() uint64 {
		_, res := mustRun(t, cfg(6, core.ModeIQOLB), isa.MustAssemble(src))
		return res.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic runs: %d vs %d cycles", a, b)
	}
}

func TestDoubleRunRejected(t *testing.T) {
	m, _ := mustRun(t, cfg(1, core.ModeBaseline), isa.MustAssemble("halt"))
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0, core.ModeBaseline)
	if _, err := New(bad, isa.MustAssemble("halt"), nil); err == nil {
		t.Fatal("zero processors accepted")
	}
	bad2 := DefaultConfig(1, core.ModeBaseline)
	bad2.IssueWidth = 0
	if _, err := New(bad2, isa.MustAssemble("halt"), nil); err == nil {
		t.Fatal("zero issue width accepted")
	}
}

func TestPeekFindsDirtyCacheData(t *testing.T) {
	m, _ := mustRun(t, cfg(2, core.ModeBaseline), isa.MustAssemble(`
	  cpuid t0
	  bne   t0, r0, done
	  li    t1, 77
	  sw    t1, 0(gp)     # gp = 0
	done:
	  halt
	`))
	if got := m.Peek(0); got != 77 {
		t.Fatalf("Peek = %d, want 77 (dirty line still in cache)", got)
	}
}

func TestDeadlockIsTyped(t *testing.T) {
	// CPU 0 halts without reaching the barrier; CPU 1 parks there forever.
	// The drained event queue must surface as a *DeadlockError naming the
	// stuck processor and its barrier, not a bare formatted error.
	src := `
	  cpuid t0
	  beq   t0, r0, done
	  bar   7
	done:
	  halt
	`
	c := cfg(2, core.ModeBaseline)
	c.CycleLimit = 0 // the queue drains on its own; no limit needed
	m, err := New(c, isa.MustAssemble(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run()
	if runErr == nil {
		t.Fatal("deadlocked run returned nil error")
	}
	if !errors.Is(runErr, ErrDeadlock) {
		t.Fatalf("errors.Is(err, ErrDeadlock) = false for %v", runErr)
	}
	var de *DeadlockError
	if !errors.As(runErr, &de) {
		t.Fatalf("error is not a *DeadlockError: %v", runErr)
	}
	if de.Halted != 1 || de.Procs != 2 {
		t.Fatalf("DeadlockError = %+v; want 1 of 2 halted", de)
	}
	var stuck *proc.Stall
	for i := range de.Stalls {
		if !de.Stalls[i].Halted {
			stuck = &de.Stalls[i]
		}
	}
	if stuck == nil {
		t.Fatal("no unhalted processor in the stall dump")
	}
	if stuck.CPU != 1 || stuck.Waiting != "barrier 7" {
		t.Fatalf("stall dump = %+v; want CPU 1 waiting on barrier 7", *stuck)
	}
	if !strings.Contains(runErr.Error(), "1 of 2 processors halted") ||
		!strings.Contains(runErr.Error(), "barrier 7") {
		t.Fatalf("error text missing summary or stall line:\n%s", runErr)
	}
}
