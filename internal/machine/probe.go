package machine

// BarrierObserver watches barrier traffic at the platform level: each
// processor's arrival and the episode-wide release. The hardware barrier
// here and the observability layer in internal/obs meet at this
// interface. Like the coherence probes, an observer is strictly one-way —
// it must not call back into the machine.
type BarrierObserver interface {
	// BarrierArrive fires when cpu reaches barrier episode and blocks.
	BarrierArrive(episode int64, cpu int)
	// BarrierRelease fires when the last of procs participants arrives and
	// the episode opens (immediately after the final BarrierArrive).
	BarrierRelease(episode int64, procs int)
}
