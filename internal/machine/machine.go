// Package machine assembles a complete simulated multiprocessor: N
// processor cores (package proc) over per-node cache controllers, the
// broadcast address bus, crossbar data network and memory controller
// (package coherence), plus the hardware barrier used by the workload
// kernels. One Machine runs one program to completion and yields a Result.
package machine

import (
	"fmt"

	"iqolb/internal/coherence"
	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/faults"
	"iqolb/internal/interconnect"
	"iqolb/internal/isa"
	"iqolb/internal/mem"
	"iqolb/internal/proc"
	"iqolb/internal/stats"
	"iqolb/internal/trace"
)

// Config describes the whole machine (Table 1 defaults plus the hardware
// synchronization mode under study).
type Config struct {
	// Processors is the node count (the paper evaluates 32).
	Processors int
	// IssueWidth approximates the 4-wide core of Table 1.
	IssueWidth int
	// Seed drives the per-processor deterministic RNGs.
	Seed uint64
	// Timing and Caches carry the Table 1 memory-system parameters.
	Timing coherence.Timing
	Caches coherence.CacheGeometry
	// Core selects and parameterizes the synchronization hardware.
	Core core.Config
	// CycleLimit aborts runaway runs (0 = none). Livelock-prone modes
	// (the aggressive baseline) should always set one.
	CycleLimit engine.Time
	// Faults optionally arms a deterministic fault-injection plan
	// (nil = clean run). The omitempty tag keeps nil plans out of the
	// canonical config JSON, so existing experiment cache keys survive.
	Faults *faults.Plan `json:",omitempty"`
}

// DefaultConfig returns the paper's evaluation configuration for n
// processors under the given hardware mode.
func DefaultConfig(n int, mode core.Mode) Config {
	return Config{
		Processors: n,
		IssueWidth: 4,
		Seed:       0x5eed,
		Timing:     coherence.DefaultTiming(),
		Caches:     coherence.DefaultCacheGeometry(),
		Core:       core.DefaultConfig(mode),
		CycleLimit: 2_000_000_000,
	}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Processors < 1 {
		return fmt.Errorf("machine: need at least one processor")
	}
	if c.IssueWidth < 1 {
		return fmt.Errorf("machine: issue width must be positive")
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	return nil
}

// Result summarizes a completed run.
type Result struct {
	// Cycles is the parallel execution time: the cycle at which the last
	// processor halted.
	Cycles uint64
	// HitLimit reports that the run was aborted at Config.CycleLimit.
	HitLimit bool
	// Stats aggregates the memory-system measurements.
	Stats *stats.Machine
	// PerCPU carries per-processor instruction/memory counts.
	PerCPU []CPUStats
}

// CPUStats is the per-processor slice of a Result.
type CPUStats struct {
	Instructions uint64
	MemOps       uint64
	WorkCycles   uint64
	MemCycles    uint64
	SpinResults  uint64
	HaltedAt     uint64
}

// Machine is one assembled system, ready to Run exactly once.
type Machine struct {
	cfg    Config
	eng    *engine.Engine
	fabric *coherence.Fabric
	cpus   []*proc.CPU
	st     *stats.Machine
	rec    *trace.Recorder

	barriers   map[int64][]func()
	barrierObs BarrierObserver
	halted     int
	ran        bool
}

// New builds a machine that will run prog on every processor (programs
// branch on CPUID to differentiate roles). rec may be nil.
func New(cfg Config, prog *isa.Program, rec *trace.Recorder) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	eng := engine.New()
	st := stats.NewMachine(cfg.Processors)
	fabric, err := coherence.NewFabric(eng, cfg.Timing, cfg.Caches, cfg.Core, cfg.Processors, st, rec)
	if err != nil {
		return nil, err
	}
	inj, err := faults.NewInjector(cfg.Faults)
	if err != nil {
		return nil, err
	}
	fabric.SetFaultInjector(inj)
	if inj.Enabled(faults.BusLatency) {
		fabric.Net().SetPerturb(func(idx uint64, msg interconnect.Msg) engine.Time {
			if !inj.WantsClass(msg.Kind.String()) {
				return 0
			}
			if !inj.Fire(faults.BusLatency, uint64(eng.Now())) {
				return 0
			}
			return engine.Time(inj.ExtraLatency())
		})
	}
	m := &Machine{
		cfg:      cfg,
		eng:      eng,
		fabric:   fabric,
		st:       st,
		rec:      rec,
		barriers: make(map[int64][]func()),
	}
	m.cpus = make([]*proc.CPU, cfg.Processors)
	for i := 0; i < cfg.Processors; i++ {
		m.cpus[i] = proc.New(i, cfg.Processors,
			proc.Config{IssueWidth: cfg.IssueWidth, Seed: cfg.Seed},
			prog, eng, fabric.Node(i), m)
	}
	return m, nil
}

// Fabric exposes the memory system (setup and inspection).
func (m *Machine) Fabric() *coherence.Fabric { return m.fabric }

// Processors reports the configured node count.
func (m *Machine) Processors() int { return m.cfg.Processors }

// Engine exposes the event engine (tests).
func (m *Machine) Engine() *engine.Engine { return m.eng }

// CPU exposes processor i (tests).
func (m *Machine) CPU(i int) *proc.CPU { return m.cpus[i] }

// Poke initializes shared memory before the run.
func (m *Machine) Poke(addr mem.Addr, v uint64) { m.fabric.Memory().Poke(addr, v) }

// Peek reads shared memory after the run. The machine is quiescent then,
// but dirty data may still live in a cache; Peek checks caches first.
func (m *Machine) Peek(addr mem.Addr) uint64 {
	for i := 0; i < m.cfg.Processors; i++ {
		if v, ok := m.fabric.Node(i).PeekWord(addr); ok {
			return v
		}
	}
	return m.fabric.Memory().Peek(addr)
}

// RegisterLockAddr marks a lock address for hand-off statistics.
func (m *Machine) RegisterLockAddr(a mem.Addr) { m.fabric.RegisterLockAddr(a) }

// SetBarrierObserver attaches a barrier-epoch observer (nil detaches).
// Call before Run.
func (m *Machine) SetBarrierObserver(o BarrierObserver) { m.barrierObs = o }

// Barrier implements proc.Platform.
func (m *Machine) Barrier(episode int64, cpu int, release func()) {
	if m.barrierObs != nil {
		m.barrierObs.BarrierArrive(episode, cpu)
	}
	m.barriers[episode] = append(m.barriers[episode], release)
	if len(m.barriers[episode]) == m.cfg.Processors {
		releases := m.barriers[episode]
		delete(m.barriers, episode)
		if m.barrierObs != nil {
			m.barrierObs.BarrierRelease(episode, m.cfg.Processors)
		}
		for _, r := range releases {
			r()
		}
	}
}

// Halted implements proc.Platform: the run ends when every CPU has halted.
func (m *Machine) Halted(cpu int) {
	m.halted++
	if m.halted == m.cfg.Processors {
		m.eng.Halt()
	}
}

// Run executes the program to completion on all processors and returns the
// measurements. A second Run is an error.
func (m *Machine) Run() (Result, error) {
	if m.ran {
		return Result{}, fmt.Errorf("machine: already ran")
	}
	m.ran = true
	for _, c := range m.cpus {
		c.Start()
	}
	end, hitLimit := m.eng.Run(m.cfg.CycleLimit)
	if !hitLimit && m.halted != m.cfg.Processors {
		de := &DeadlockError{
			Cycle:  uint64(end),
			Halted: m.halted,
			Procs:  m.cfg.Processors,
			Stalls: make([]proc.Stall, len(m.cpus)),
		}
		for i, c := range m.cpus {
			de.Stalls[i] = c.Stall()
		}
		return Result{}, de
	}
	m.st.Cycles = uint64(end)
	m.st.BusTransactions = m.fabric.Bus().Transactions
	m.st.BusMaxQueue = m.fabric.Bus().MaxQueue
	m.st.MemReads = m.fabric.Memory().Reads
	m.st.MemWritebacks = m.fabric.Memory().Writebacks
	res := Result{
		Cycles:   uint64(end),
		HitLimit: hitLimit,
		Stats:    m.st,
		PerCPU:   make([]CPUStats, len(m.cpus)),
	}
	for i, c := range m.cpus {
		res.PerCPU[i] = CPUStats{
			Instructions: c.Instructions,
			MemOps:       c.MemOps,
			WorkCycles:   c.WorkCycles,
			MemCycles:    c.MemCycles,
			SpinResults:  c.SpinResults,
			HaltedAt:     uint64(c.HaltedAt),
		}
	}
	return res, nil
}
