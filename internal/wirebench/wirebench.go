// Package wirebench holds the serving hot path's microbenchmark bodies.
// They live outside _test files so two callers can share them: the
// conventional `go test -bench` wrappers in this package, and
// cmd/benchguard, which runs them via testing.Benchmark and gates CI on
// regressions against the committed BENCH_wire.json baseline.
//
// Absolute ns/op is machine-dependent, so the guard compares each
// benchmark's ratio to the Calibrate reference — a fixed CPU-bound loop
// measured in the same process — which transfers across machines far
// better than raw nanoseconds. Allocation counts are exact and compare
// directly.
package wirebench

import (
	"bytes"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"iqolb/internal/service"
)

// Case is one guarded benchmark. SlackFactor scales the guard's base
// tolerance: the pure-CPU codec cases repeat within a few percent and
// stay tightly gated, while the socket round trips carry scheduler and
// loopback noise that would make a tight gate flaky.
type Case struct {
	Name        string
	Fn          func(*testing.B)
	SlackFactor float64
}

// All returns the guarded benchmark set, Calibrate excluded.
func All() []Case {
	return []Case{
		{Name: "WireEncode", Fn: Encode, SlackFactor: 1},
		{Name: "WireDecode", Fn: Decode, SlackFactor: 1},
		{Name: "ServerRoundtrip", Fn: ServerRoundtrip, SlackFactor: 3},
		{Name: "ServerRoundtripPipelined", Fn: ServerRoundtripPipelined, SlackFactor: 3},
	}
}

// Calibrate is the machine-speed reference: a fixed integer loop with a
// data dependency so it cannot be vectorized away.
func Calibrate(b *testing.B) {
	var acc uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			acc ^= acc >> 12
			acc *= 0x2545f4914f6cdd1d
		}
	}
	if acc == 0 {
		b.Fatal("unreachable")
	}
}

var benchReq = service.Request{
	Version:  service.WireVersion3,
	ID:       42,
	Op:       service.OpAcquire,
	Resource: "res-bench",
	Owner:    "owner-bench",
	TTL:      5 * time.Second,
	MaxWait:  time.Second,
	Wait:     true,
	Deadline: 1234567890,
}

var benchResp = service.Response{
	Version:  service.WireVersion3,
	ID:       42,
	Op:       service.OpGranted,
	Token:    7,
	Fence:    9,
	Deadline: 1234567890,
}

// Encode measures one request + one response append into a reused
// buffer — the per-op encode cost of a pipelined round trip.
func Encode(b *testing.B) {
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := service.AppendRequest(buf[:0], benchReq)
		if err != nil {
			b.Fatal(err)
		}
		out, err = service.AppendResponse(out, benchResp)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// Decode measures one request + one response decode through a warm
// Decoder — the per-op decode cost of a pipelined round trip.
func Decode(b *testing.B) {
	reqFrame, err := service.AppendRequest(nil, benchReq)
	if err != nil {
		b.Fatal(err)
	}
	respFrame, err := service.AppendResponse(nil, benchResp)
	if err != nil {
		b.Fatal(err)
	}
	dec := service.NewDecoder()
	r := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(reqFrame)
		if _, err := dec.ReadRequest(r); err != nil {
			b.Fatal(err)
		}
		r.Reset(respFrame)
		if _, err := dec.ReadResponse(r); err != nil {
			b.Fatal(err)
		}
	}
}

// startBackend boots a real service + TCP server for the round-trip
// benchmarks.
func startBackend(b *testing.B, opt service.ServerOptions) (addr string, stop func()) {
	svc, err := service.New(service.Config{
		Shards:     8,
		QueueDepth: 256,
		DefaultTTL: 30 * time.Second,
		MaxTTL:     time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		b.Fatal(err)
	}
	srv := service.NewServerWithOptions(svc, opt)
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		svc.Close()
	}
}

// ServerRoundtrip is the one-in-flight baseline: a lock-step v2 client
// doing acquire+release pairs over loopback TCP.
func ServerRoundtrip(b *testing.B) {
	addr, stop := startBackend(b, service.ServerOptions{})
	defer stop()
	cl, err := service.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(30 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := cl.Acquire("res-bench", "owner-bench", service.AcquireOptions{TTL: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.ReleaseFenced("res-bench", lease.Token, lease.Fence); err != nil {
			b.Fatal(err)
		}
	}
}

// ServerRoundtripPipelined is the pipelined dispatch path: one
// connection, a 32-deep window, 32 concurrent actors on private
// resources. It deliberately runs WITHOUT write coalescing: a single
// otherwise-idle connection goes fully quiet during a flush window, the
// lone P parks in netpoll, and sub-millisecond flush timers then fire
// at the poller's ~1ms granularity — the benchmark would gate kernel
// timer behavior, not our code. Coalescing's win needs concurrent
// connections keeping the scheduler busy; BENCH_throughput.json's
// 16-client sweep is where that is measured and committed.
func ServerRoundtripPipelined(b *testing.B) {
	const window = 32
	addr, stop := startBackend(b, service.ServerOptions{Window: window})
	defer stop()
	cl, err := service.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	cl.SetOpTimeout(30 * time.Second)
	if err := cl.Pipeline(window, 0); err != nil {
		b.Fatal(err)
	}
	var worker atomic.Int32
	b.ReportAllocs()
	b.SetParallelism(window) // window actors share the one pipelined conn
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		res := fmt.Sprintf("res-bench-%d", w)
		owner := fmt.Sprintf("owner-%d", w)
		for pb.Next() {
			lease, err := cl.Acquire(res, owner, service.AcquireOptions{TTL: time.Second, Wait: true, MaxWait: 30 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.ReleaseFenced(res, lease.Token, lease.Fence); err != nil {
				b.Fatal(err)
			}
		}
	})
}
