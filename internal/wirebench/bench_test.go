package wirebench

import "testing"

// Conventional `go test -bench` entry points over the shared bodies;
// cmd/benchguard runs the same functions for the CI regression gate.

func BenchmarkCalibrate(b *testing.B)       { Calibrate(b) }
func BenchmarkWireEncode(b *testing.B)      { Encode(b) }
func BenchmarkWireDecode(b *testing.B)      { Decode(b) }
func BenchmarkServerRoundtrip(b *testing.B) { ServerRoundtrip(b) }
func BenchmarkServerRoundtripPipelined(b *testing.B) {
	ServerRoundtripPipelined(b)
}
