package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := NewTable("T", "name", "value").
		Row("short", 1).
		Row("a-much-longer-name", 123.456).
		Note("footnote here").
		String()
	lines := strings.Split(out, "\n")
	if lines[0] != "T" {
		t.Fatalf("title missing: %q", lines[0])
	}
	if !strings.Contains(out, "123.46") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "note: footnote here") {
		t.Errorf("note missing: %s", out)
	}
	// Column two must start at the same offset in both rows.
	var idx []int
	for _, l := range lines {
		if strings.Contains(l, "short") || strings.Contains(l, "a-much-longer") {
			idx = append(idx, strings.IndexAny(l, "1"))
		}
	}
	if len(idx) != 2 || idx[0] != idx[1] {
		t.Errorf("columns misaligned: %v\n%s", idx, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := NewTable("", "a").Row("x", "extra", "cells").String()
	if !strings.Contains(out, "cells") {
		t.Errorf("ragged row dropped: %s", out)
	}
}

func TestKVSections(t *testing.T) {
	out := NewKV("Config").
		Section("Processor").
		Add("width", "%d", 4).
		Section("Cache").
		Add("L1", "%s", "64KB").
		String()
	if !strings.Contains(out, "[Processor]") || !strings.Contains(out, "[Cache]") {
		t.Errorf("sections missing: %s", out)
	}
	if !strings.Contains(out, "width") || !strings.Contains(out, "64KB") {
		t.Errorf("pairs missing: %s", out)
	}
}
