// Package report renders aligned ASCII tables for the experiment harness
// (the cmd tools and EXPERIMENTS.md generation).
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	notes   []string
	aligned bool
}

// NewTable starts a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends one row; values are rendered with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i == cols-1 {
				sb.WriteString(cell)
			} else {
				sb.WriteString(fmt.Sprintf("%-*s  ", width[i], cell))
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		sb.WriteString("  note: " + n + "\n")
	}
	return sb.String()
}

// KV renders a two-column key/value block (used for Table 1).
type KV struct {
	Title string
	pairs [][2]string
	sects []int // indices where a section header row sits
}

// NewKV starts a key/value block.
func NewKV(title string) *KV { return &KV{Title: title} }

// Section inserts a section header.
func (k *KV) Section(name string) *KV {
	k.sects = append(k.sects, len(k.pairs))
	k.pairs = append(k.pairs, [2]string{name, ""})
	return k
}

// Add appends one key/value pair.
func (k *KV) Add(key string, format string, args ...any) *KV {
	k.pairs = append(k.pairs, [2]string{key, fmt.Sprintf(format, args...)})
	return k
}

// String renders the block.
func (k *KV) String() string {
	isSection := make(map[int]bool)
	for _, i := range k.sects {
		isSection[i] = true
	}
	width := 0
	for i, p := range k.pairs {
		if !isSection[i] && len(p[0]) > width {
			width = len(p[0])
		}
	}
	var sb strings.Builder
	if k.Title != "" {
		sb.WriteString(k.Title + "\n" + strings.Repeat("=", len(k.Title)) + "\n")
	}
	for i, p := range k.pairs {
		if isSection[i] {
			sb.WriteString("\n[" + p[0] + "]\n")
			continue
		}
		sb.WriteString(fmt.Sprintf("  %-*s  %s\n", width, p[0], p[1]))
	}
	return sb.String()
}
