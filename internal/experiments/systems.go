// Package experiments implements the evaluation harness: one function per
// table and figure of the paper, plus the ablation and extension sweeps
// listed in DESIGN.md. The cmd tools and the module's benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"

	"iqolb/internal/core"
	"iqolb/internal/machine"
	"iqolb/internal/synclib"
)

// System pairs the software primitive with the hardware mode — one column
// of the paper's comparisons.
type System struct {
	Name      string
	Primitive synclib.Primitive
	Mode      core.Mode
	// Retention / TearOff toggle the §3.2–3.3 alternatives for the
	// LPRFO-based modes; ignored elsewhere.
	Retention bool
	TearOff   bool
	// Generalized enables the §6 Generalized IQOLB extension (protected
	// data joins the lock's speculation).
	Generalized bool
}

// The systems of the evaluation. TTS/Aggressive/Delayed/IQOLB all run the
// identical TTS LL/SC routine — only the hardware differs, which is the
// paper's central claim.
var (
	SysTTS          = System{Name: "tts", Primitive: synclib.PrimTTS, Mode: core.ModeBaseline, Retention: true, TearOff: true}
	SysAggressive   = System{Name: "aggressive", Primitive: synclib.PrimTTS, Mode: core.ModeAggressive, Retention: true, TearOff: true}
	SysDelayed      = System{Name: "delayed", Primitive: synclib.PrimTTS, Mode: core.ModeDelayed, Retention: true, TearOff: true}
	SysDelayedNoRet = System{Name: "delayed-noret", Primitive: synclib.PrimTTS, Mode: core.ModeDelayed, Retention: false, TearOff: true}
	SysIQOLB        = System{Name: "iqolb", Primitive: synclib.PrimTTS, Mode: core.ModeIQOLB, Retention: true, TearOff: true}
	SysIQOLBNoRet   = System{Name: "iqolb-noret", Primitive: synclib.PrimTTS, Mode: core.ModeIQOLB, Retention: false, TearOff: true}
	SysIQOLBNoTear  = System{Name: "iqolb-notearoff", Primitive: synclib.PrimTTS, Mode: core.ModeIQOLB, Retention: true, TearOff: false}
	SysGeneralized  = System{Name: "iqolb-gen", Primitive: synclib.PrimTTS, Mode: core.ModeIQOLB, Retention: true, TearOff: true, Generalized: true}
	SysQOLB         = System{Name: "qolb", Primitive: synclib.PrimQOLB, Mode: core.ModeBaseline, Retention: true, TearOff: true}
	SysTicket       = System{Name: "ticket", Primitive: synclib.PrimTicket, Mode: core.ModeBaseline, Retention: true, TearOff: true}
	SysMCS          = System{Name: "mcs", Primitive: synclib.PrimMCS, Mode: core.ModeBaseline, Retention: true, TearOff: true}
)

// Systems lists every known system by name.
func Systems() []System {
	return []System{SysTTS, SysAggressive, SysDelayed, SysDelayedNoRet,
		SysIQOLB, SysIQOLBNoRet, SysIQOLBNoTear, SysGeneralized, SysQOLB, SysTicket, SysMCS}
}

// SystemByName resolves a system name.
func SystemByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("experiments: unknown system %q", name)
}

// MachineConfig derives the machine configuration for the system.
func (s System) MachineConfig(procs int) machine.Config {
	cfg := machine.DefaultConfig(procs, s.Mode)
	cfg.Core.QueueRetention = s.Retention
	cfg.Core.TearOff = s.TearOff
	cfg.Core.GeneralizedData = s.Generalized
	return cfg
}
