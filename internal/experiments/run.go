package experiments

import (
	"fmt"

	"iqolb/internal/check"
	"iqolb/internal/engine"
	"iqolb/internal/faults"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
	"iqolb/internal/obs"
	"iqolb/internal/stats"
	"iqolb/internal/trace"
	"iqolb/internal/workload"
)

// ResultSchemaVersion identifies the serialized Result layout. Bump it —
// together with cacheSchema — whenever a Result field is added, removed,
// or changes meaning; the golden-file test under testdata/ pins the
// current shape.
//
// Version 2: added the fault-campaign fields (Degraded, DegradeReason,
// FaultInjections, FinalCounters).
const ResultSchemaVersion = 2

// Result is one benchmark execution's measurements.
type Result struct {
	SchemaVersion int
	System        string
	Benchmark     string
	Processors    int
	Cycles        uint64
	Stats         *stats.Machine
	// Derived headline metrics.
	BusTransactions uint64
	SCFailureRate   float64
	TearOffs        uint64
	Timeouts        uint64
	Breakdowns      uint64
	LockHandoffMean float64
	// Obs carries the observability snapshot for traced runs (Spec.Trace
	// or Options.Obs); nil otherwise.
	Obs *obs.Snapshot `json:",omitempty"`
	// Fault-campaign observables, populated only when the run carried a
	// fault plan (Spec.Faults): whether the machine fell back to
	// plain-RFO semantics and why, how many injections fired per fault
	// kind, and the final per-lock data counters (compared against a
	// clean reference run by the campaign's differential check).
	Degraded        bool              `json:",omitempty"`
	DegradeReason   string            `json:",omitempty"`
	FaultInjections map[string]uint64 `json:",omitempty"`
	FinalCounters   []uint64          `json:",omitempty"`
}

func summarize(sysName, benchName string, procs int, res machine.Result) Result {
	st := res.Stats
	return Result{
		SchemaVersion:   ResultSchemaVersion,
		System:          sysName,
		Benchmark:       benchName,
		Processors:      procs,
		Cycles:          res.Cycles,
		Stats:           st,
		BusTransactions: st.BusTransactions,
		SCFailureRate:   st.SCFailureRate(),
		TearOffs:        st.Total(func(n *stats.Node) uint64 { return n.TearOffsOut }),
		Timeouts:        st.Total(func(n *stats.Node) uint64 { return n.DelayTimeouts }),
		Breakdowns:      st.Total(func(n *stats.Node) uint64 { return n.QueueBreakdowns }),
		LockHandoffMean: st.LockHandoff.Mean(),
	}
}

// monitorConfig derives the invariant-monitor configuration for a run
// carrying fault plan fp (nil = the always-on defaults). A degrading
// plan wires the fabric in as the starvation watchdog's recovery hook.
func monitorConfig(m *machine.Machine, fp *faults.Plan) check.Config {
	cfg := check.Config{}
	if fp == nil {
		return cfg
	}
	if fp.StarvationBound > 0 {
		cfg.StarvationBound = engine.Time(fp.StarvationBound)
	}
	if fp.Degrade {
		cfg.Degrader = m.Fabric()
	}
	return cfg
}

// fillFaultOutcome copies a faulted run's observables into the result:
// degradation state, per-kind injection counts, and (when the workload
// has per-lock counters) the final data values for the campaign's
// differential check. p is nil for counterless kernels.
func fillFaultOutcome(m *machine.Machine, p *workload.Params, out *Result) {
	out.Degraded, out.DegradeReason = m.Fabric().Degraded()
	out.FaultInjections = m.Fabric().FaultInjector().Counts()
	if p != nil && p.Locks > 0 {
		out.FinalCounters = make([]uint64, p.Locks)
		for i := 0; i < p.Locks; i++ {
			out.FinalCounters[i] = m.Peek(p.DataAddr(i))
		}
	}
}

// Scale shrinks a benchmark's work (for fast tests and smoke runs): the
// iteration count is kept, the per-iteration critical-section total is
// divided by factor (floored to one per processor).
func Scale(p workload.Params, factor, procs int) workload.Params {
	if factor <= 1 {
		return p
	}
	p.TotalCS /= factor
	if p.TotalCS < procs {
		p.TotalCS = procs
	}
	p.TotalCS -= p.TotalCS % procs
	if p.TotalCS == 0 {
		p.TotalCS = procs
	}
	return p
}

// RunParams executes one kernel under one system and verifies the
// mutual-exclusion counters.
func RunParams(name string, p workload.Params, sys System, procs int, rec *trace.Recorder) (Result, error) {
	bld, err := workload.Generate(p, sys.Primitive, procs)
	if err != nil {
		return Result{}, err
	}
	cfg := sys.MachineConfig(procs)
	m, err := machine.New(cfg, bld.Program, rec)
	if err != nil {
		return Result{}, err
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	res, err := m.Run()
	if err != nil {
		return Result{}, fmt.Errorf("%s/%s/p%d: %w", name, sys.Name, procs, err)
	}
	if res.HitLimit {
		return Result{}, fmt.Errorf("%s/%s/p%d: %w (%d cycles)", name, sys.Name, procs, ErrCycleLimit, cfg.CycleLimit)
	}
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		return Result{}, fmt.Errorf("%s/%s/p%d: %w", name, sys.Name, procs, err)
	}
	return summarize(sys.Name, name, procs, res), nil
}

// RunBenchmark executes one Table 2 benchmark under one system at the
// given processor count, optionally scaled down by factor.
func RunBenchmark(benchName string, sys System, procs, scaleFactor int) (Result, error) {
	spec, err := workload.ByName(benchName)
	if err != nil {
		return Result{}, err
	}
	p := Scale(spec.Params, scaleFactor, procs)
	return RunParams(spec.Name, p, sys, procs, nil)
}

// RunFetchAdd executes the lock-free Fetch&Add kernel under one system.
func RunFetchAdd(sys System, procs, totalOps int, think int64) (Result, error) {
	return runFetchAdd(sys.MachineConfig(procs), sys, procs, totalOps, think, false, nil)
}

func runFetchAdd(cfg machine.Config, sys System, procs, totalOps int, think int64, checked bool, tr *TraceOptions) (Result, error) {
	totalOps -= totalOps % procs
	if totalOps == 0 {
		totalOps = procs
	}
	bld, err := workload.GenerateFetchAdd(totalOps, think, procs)
	if err != nil {
		return Result{}, err
	}
	m, err := machine.New(cfg, bld.Program, nil)
	if err != nil {
		return Result{}, err
	}
	// A fault plan implies the monitors: an injected fault must be
	// either survived or reported, never silently absorbed into wrong
	// measurements.
	fp := cfg.Faults
	checked = checked || fp != nil
	// The invariant monitor attaches exclusively (SetProbe); the trace
	// collector must come after it.
	var mon *check.Monitor
	if checked {
		mon = check.AttachToMachine(m, monitorConfig(m, fp))
	}
	var log *obs.Log
	if tr != nil {
		log = obs.Attach(m)
	}
	res, err := m.Run()
	if mon != nil {
		if cerr := mon.Finish(); cerr != nil {
			return Result{}, fmt.Errorf("fetchadd/%s: %w", sys.Name, cerr)
		}
	}
	if err != nil {
		return Result{}, err
	}
	if res.HitLimit {
		return Result{}, fmt.Errorf("fetchadd/%s: %w (%d cycles)", sys.Name, ErrCycleLimit, cfg.CycleLimit)
	}
	if err := workload.VerifyFetchAdd(uint64(totalOps), m.Peek); err != nil {
		return Result{}, err
	}
	out := summarize(sys.Name, "fetchadd", procs, res)
	if fp != nil {
		fillFaultOutcome(m, nil, &out)
	}
	if err := finishTrace(log, tr, &out); err != nil {
		return Result{}, fmt.Errorf("fetchadd/%s: %w", sys.Name, err)
	}
	return out, nil
}

// Peeker is the post-run memory view used by verification helpers.
type Peeker func(mem.Addr) uint64
