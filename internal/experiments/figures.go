package experiments

import (
	"fmt"
	"strings"

	"iqolb/internal/machine"
	"iqolb/internal/mem"
	"iqolb/internal/report"
	"iqolb/internal/trace"
	"iqolb/internal/workload"
)

// Figure1 runs the hot-lock microbenchmark under every step of the paper's
// Figure 1 progression — baseline, aggressive baseline, delayed response
// (with and without queue retention), IQOLB (with and without queue
// retention) — and reports each step's cost profile. It is the ablation
// over the design space rather than a data figure in the paper.
func Figure1(opt Options, procs, totalCS int) (string, []Result, error) {
	spec, err := workload.ByName("hotlock")
	if err != nil {
		return "", nil, err
	}
	p := spec.Params
	p.TotalCS = totalCS - totalCS%procs
	systems := []System{SysTTS, SysAggressive, SysDelayedNoRet, SysDelayed,
		SysIQOLBNoRet, SysIQOLB, SysIQOLBNoTear}
	var specs []Spec
	for _, sys := range systems {
		specs = append(specs, Spec{Name: "hotlock", Params: &p, System: sys.Name, Procs: procs})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", nil, err
	}
	t := report.NewTable(fmt.Sprintf("Figure 1 progression: hot lock, %d processors, %d acquisitions", procs, p.TotalCS),
		"method", "cycles", "bus txs", "SC fail rate", "tear-offs", "timeouts", "breakdowns", "handoff mean")
	for i, sys := range systems {
		r := results[i]
		t.Row(sys.Name, r.Cycles, r.BusTransactions,
			fmt.Sprintf("%.3f", r.SCFailureRate), r.TearOffs, r.Timeouts, r.Breakdowns,
			fmt.Sprintf("%.0f", r.LockHandoffMean))
	}
	return t.String(), results, nil
}

// figureTrace runs a tiny kernel with the recorder on the traced line and
// renders the message-sequence chart.
func figureTrace(bld *workload.Build, sys System, procs int, line mem.LineID, header string) (string, *trace.Recorder, error) {
	rec := trace.NewRecorder(line)
	cfg := sys.MachineConfig(procs)
	if sys.Mode.UsesLPRFO() {
		// Single-shot kernels give the predictor nothing to train on;
		// the figures show the steady-state mechanism, so use the
		// always-lock configuration.
		cfg.Core.PredictorEntries = 0
	}
	m, err := machine.New(cfg, bld.Program, rec)
	if err != nil {
		return "", nil, err
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	if _, err := m.Run(); err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	sb.WriteString(header + "\n" + strings.Repeat("=", len(header)) + "\n")
	sb.WriteString(rec.Render())
	return sb.String(), rec, nil
}

// Figure2 reproduces the traditional LL/SC sequence: two processors race
// an atomic increment under the baseline protocol; one SC fails and
// retries after the invalidation.
func Figure2() (string, *trace.Recorder, error) {
	bld, err := workload.GenerateFigureRMW(2)
	if err != nil {
		return "", nil, err
	}
	return figureTrace(bld, SysTTS, 2, workload.CounterAddr.Line(),
		"Figure 2: traditional LL/SC sequence (baseline, 2 processors)")
}

// Figure3 reproduces the delayed-response sequence: three processors issue
// LPRFOs, form a queue in bus order, and complete their read-modify-writes
// with no retries.
func Figure3() (string, *trace.Recorder, error) {
	bld, err := workload.GenerateFigureRMW(4)
	if err != nil {
		return "", nil, err
	}
	return figureTrace(bld, SysDelayed, 3, workload.CounterAddr.Line(),
		"Figure 3: LL/SC with delayed response (3 processors, LPRFO queue)")
}

// Figure4 reproduces the IQOLB sequence: three processors contend for a
// lock; the holder delays ownership through its critical section, waiters
// spin on tear-off copies, and each release hands the line directly to the
// next processor in line.
func Figure4() (string, *trace.Recorder, error) {
	bld, err := workload.GenerateFigureLock(4, 150)
	if err != nil {
		return "", nil, err
	}
	return figureTrace(bld, SysIQOLB, 3, mem.Addr(workload.LockBase).Line(),
		"Figure 4: IQOLB sequence (3 processors, critical sections, tear-offs)")
}
