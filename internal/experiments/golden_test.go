package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"iqolb/internal/harness"
	"iqolb/internal/obs"
	"iqolb/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenCheck marshals v as indented JSON and compares it byte-for-byte
// against testdata/golden/<name>.json; -update rewrites the file. A diff
// means the serialized layout changed — that is only legal together with a
// bump of the corresponding SchemaVersion constant (and, for Result, of
// cacheSchema).
func goldenCheck(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: serialized layout changed — if intentional, bump the schema version and re-run with -update.\n got: %s\nwant: %s",
			path, got, want)
	}
}

// fixtureHistogram builds a small deterministic histogram.
func fixtureHistogram(samples ...uint64) stats.Histogram {
	var h stats.Histogram
	for _, s := range samples {
		h.Add(s)
	}
	return h
}

// fixtureSnapshot is a hand-built observability snapshot exercising every
// field of the schema.
func fixtureSnapshot() obs.Snapshot {
	return obs.Snapshot{
		SchemaVersion: obs.SnapshotSchemaVersion,
		Events:        42,
		EndCycle:      9000,
		Locks: []obs.LockProfile{{
			Addr:           0x4000,
			Attempts:       12,
			Acquires:       10,
			Releases:       10,
			AcquiresByProc: []uint64{3, 3, 2, 2},
			MaxQueueDepth:  3,
			HoldTime:       fixtureHistogram(40, 44, 48),
			HandoffLatency: fixtureHistogram(25, 26),
			AcquireWait:    fixtureHistogram(100, 210, 320),
		}},
		Bus:      obs.BusProfile{Samples: 7, MaxQueued: 4, MaxOutstanding: 1},
		Barriers: obs.BarrierProfile{Episodes: 2, Span: fixtureHistogram(500, 600)},
	}
}

// TestGoldenResult pins the serialized Result layout (schema version 2),
// including the fault-campaign fields.
func TestGoldenResult(t *testing.T) {
	snap := fixtureSnapshot()
	goldenCheck(t, "result", Result{
		SchemaVersion:   ResultSchemaVersion,
		System:          "iqolb",
		Benchmark:       "hotlock",
		Processors:      4,
		Cycles:          123456,
		BusTransactions: 789,
		SCFailureRate:   0.25,
		TearOffs:        11,
		Timeouts:        2,
		Breakdowns:      1,
		LockHandoffMean: 26.5,
		Obs:             &snap,
		Degraded:        true,
		DegradeReason:   "starvation: node P1 LPRFO on line 256 ungranted after 200001 cycles",
		FaultInjections: map[string]uint64{"stuck-delay": 1},
		FinalCounters:   []uint64{4096},
	})
}

// TestGoldenSnapshot pins the serialized obs.Snapshot layout (schema
// version 1).
func TestGoldenSnapshot(t *testing.T) {
	goldenCheck(t, "snapshot", fixtureSnapshot())
}

// TestGoldenManifest pins the serialized harness.Manifest layout (schema
// version 2), including a record carrying a snapshot and one recording a
// retried failure.
func TestGoldenManifest(t *testing.T) {
	snap := fixtureSnapshot()
	goldenCheck(t, "manifest", harness.Manifest{
		SchemaVersion: harness.ManifestSchemaVersion,
		Workers:       4,
		Jobs:          2,
		CacheHits:     1,
		CacheMisses:   1,
		WallMS:        12.5,
		SimCycles:     246912,
		Records: []harness.Record{
			{
				Label:   "hotlock/iqolb/p4",
				Key:     "deadbeefdeadbeef",
				Status:  harness.StatusHit,
				WallMS:  0.5,
				Metrics: map[string]float64{"cycles": 123456},
			},
			{
				Label:    "hotlock/iqolb/p4",
				Status:   harness.StatusMiss,
				WallMS:   12,
				Metrics:  map[string]float64{"cycles": 123456},
				Snapshot: &snap,
			},
			{
				Label:    "hotlock/iqolb/p8",
				Status:   harness.StatusError,
				WallMS:   30,
				Error:    "timed out after 10ms (job abandoned)",
				Attempts: 3,
			},
		},
	})
}

// TestGoldenSchemaVersions pins the constants themselves: bumping one is a
// deliberate act that must come with regenerated golden files.
func TestGoldenSchemaVersions(t *testing.T) {
	versions := map[string]struct{ got, want int }{
		"result":   {ResultSchemaVersion, 2},
		"manifest": {harness.ManifestSchemaVersion, 2},
		"snapshot": {obs.SnapshotSchemaVersion, 1},
		"trace":    {obs.TraceSchemaVersion, 1},
		"campaign": {CampaignSchemaVersion, 1},
	}
	for name, v := range versions {
		if v.got != v.want {
			t.Errorf("%s schema version = %d; this test pins %d — update it and the golden files together", name, v.got, v.want)
		}
	}
}
