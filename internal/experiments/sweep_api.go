package experiments

import (
	"errors"
	"fmt"

	"iqolb/internal/engine"
)

// SweepKind selects which parameter study a SweepSpec describes.
type SweepKind string

const (
	// SweepScalingKind: one benchmark across processor counts under the
	// main systems (contention scaling).
	SweepScalingKind SweepKind = "scaling"
	// SweepTimeoutKind: the §3.2/§3.3 delay time-out budgets.
	SweepTimeoutKind SweepKind = "timeout"
	// SweepRetentionKind: queue retention vs. breakdown on false-shared
	// locks.
	SweepRetentionKind SweepKind = "retention"
	// SweepCollocationKind: the §6 lock/data collocation extension.
	SweepCollocationKind SweepKind = "collocation"
	// SweepPredictorKind: the §3.4 predictor vs. the always-lock ablation.
	SweepPredictorKind SweepKind = "predictor"
	// SweepGeneralizedKind: the §6 Generalized IQOLB reader/writer study.
	SweepGeneralizedKind SweepKind = "generalized"
)

// SweepKinds lists every sweep in a stable order (CLI enumeration).
func SweepKinds() []SweepKind {
	return []SweepKind{
		SweepScalingKind, SweepTimeoutKind, SweepRetentionKind,
		SweepCollocationKind, SweepPredictorKind, SweepGeneralizedKind,
	}
}

// ErrInvalidSweepSpec is the sentinel every SweepSpec validation failure
// wraps; detect the class with errors.Is and the details with errors.As
// on *SweepSpecError.
var ErrInvalidSweepSpec = errors.New("invalid sweep spec")

// SweepSpecError reports which field of a SweepSpec is unusable for its
// Kind. It unwraps to ErrInvalidSweepSpec.
type SweepSpecError struct {
	Kind   SweepKind
	Field  string
	Reason string
}

func (e *SweepSpecError) Error() string {
	return fmt.Sprintf("invalid sweep spec (%s): %s: %s", e.Kind, e.Field, e.Reason)
}

func (e *SweepSpecError) Unwrap() error { return ErrInvalidSweepSpec }

// SweepSpec is the canonical description of one parameter sweep. Kind
// selects the study; the other fields parameterize it (unused fields are
// ignored):
//
//	scaling:      Bench, ProcCounts, Scale
//	timeout:      Procs, TotalCS, Budgets
//	retention:    Procs, TotalCS
//	collocation:  Procs, TotalCS
//	predictor:    Procs, TotalCS
//	generalized:  Procs, TotalCS
type SweepSpec struct {
	Kind SweepKind `json:"kind"`
	// Bench names the benchmark for the scaling sweep.
	Bench string `json:"bench,omitempty"`
	// Procs is the machine size for the fixed-size sweeps.
	Procs int `json:"procs,omitempty"`
	// ProcCounts is the machine-size axis of the scaling sweep.
	ProcCounts []int `json:"proc_counts,omitempty"`
	// TotalCS is the total critical-section budget per configuration.
	TotalCS int `json:"total_cs,omitempty"`
	// Budgets is the delay time-out axis of the timeout sweep.
	Budgets []engine.Time `json:"budgets,omitempty"`
	// Scale divides the scaling sweep's workload (0 means unscaled).
	Scale int `json:"scale,omitempty"`
}

func (s SweepSpec) bad(field, reason string) error {
	return &SweepSpecError{Kind: s.Kind, Field: field, Reason: reason}
}

// Validate reports whether the spec fully describes its sweep. Every
// failure wraps ErrInvalidSweepSpec and is an *SweepSpecError.
func (s SweepSpec) Validate() error {
	needRun := func() error {
		if s.Procs < 1 {
			return s.bad("Procs", "must be positive")
		}
		if s.TotalCS < 1 {
			return s.bad("TotalCS", "must be positive")
		}
		return nil
	}
	switch s.Kind {
	case SweepScalingKind:
		if s.Bench == "" {
			return s.bad("Bench", "required")
		}
		if len(s.ProcCounts) == 0 {
			return s.bad("ProcCounts", "required")
		}
		for _, p := range s.ProcCounts {
			if p < 1 {
				return s.bad("ProcCounts", fmt.Sprintf("counts must be positive, got %d", p))
			}
		}
		if s.Scale < 0 {
			return s.bad("Scale", "must be non-negative")
		}
		return nil
	case SweepTimeoutKind:
		if err := needRun(); err != nil {
			return err
		}
		if len(s.Budgets) == 0 {
			return s.bad("Budgets", "required")
		}
		return nil
	case SweepRetentionKind, SweepCollocationKind, SweepPredictorKind, SweepGeneralizedKind:
		return needRun()
	case "":
		return s.bad("Kind", "required")
	default:
		return s.bad("Kind", fmt.Sprintf("unknown sweep %q", string(s.Kind)))
	}
}

// Sweep validates the spec and runs the selected parameter study through
// the harness, returning the rendered table. This is the single entry
// point the deprecated per-sweep functions now wrap.
func Sweep(opt Options, s SweepSpec) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	switch s.Kind {
	case SweepScalingKind:
		scale := s.Scale
		if scale < 1 {
			scale = 1
		}
		return sweepScaling(opt, s.Bench, s.ProcCounts, scale)
	case SweepTimeoutKind:
		return sweepTimeout(opt, s.Procs, s.TotalCS, s.Budgets)
	case SweepRetentionKind:
		return sweepRetention(opt, s.Procs, s.TotalCS)
	case SweepCollocationKind:
		return sweepCollocation(opt, s.Procs, s.TotalCS)
	case SweepPredictorKind:
		return sweepPredictor(opt, s.Procs, s.TotalCS)
	case SweepGeneralizedKind:
		return sweepGeneralized(opt, s.Procs, s.TotalCS)
	}
	panic("unreachable: Validate admitted unknown kind " + string(s.Kind))
}
