package experiments

import (
	"testing"
)

// TestTable3FullScaleBands locks in the calibrated reproduction: the full
// 32-processor Table 3 must stay within bands around both the paper's
// numbers and the values recorded in EXPERIMENTS.md. The run takes ~10 s,
// so it is skipped under -short.
func TestTable3FullScaleBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Table 3 (~10s); run without -short")
	}
	rows, err := Table3Data(Options{}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	type band struct {
		absLo, absHi float64 // TTS absolute speedup
		relLo, relHi float64 // QOLB relative speedup
	}
	bands := map[string]band{
		"barnes":    {5.5, 9.5, 0.95, 1.3},
		"ocean":     {4.5, 7.5, 1.3, 1.9},
		"radiosity": {1.8, 3.2, 5.0, 9.0},
		"raytrace":  {1.1, 2.0, 6.5, 12.0},
		"water-nsq": {13.0, 21.0, 0.95, 1.3},
	}
	for _, r := range rows {
		b, ok := bands[r.Benchmark]
		if !ok {
			t.Errorf("unexpected benchmark %q", r.Benchmark)
			continue
		}
		if r.TTSAbs < b.absLo || r.TTSAbs > b.absHi {
			t.Errorf("%s: TTS absolute speedup %.2f outside [%.1f, %.1f]",
				r.Benchmark, r.TTSAbs, b.absLo, b.absHi)
		}
		if r.QOLBRel < b.relLo || r.QOLBRel > b.relHi {
			t.Errorf("%s: QOLB relative speedup %.2f outside [%.1f, %.1f]",
				r.Benchmark, r.QOLBRel, b.relLo, b.relHi)
		}
		// The paper's headline: IQOLB within a few percent of QOLB.
		ratio := float64(r.QOLBCycles) / float64(r.IQOLBCycles)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: IQOLB does not track QOLB at full scale (QOLB/IQOLB = %.3f)",
				r.Benchmark, ratio)
		}
		// QOLB and IQOLB never lose to TTS.
		if r.QOLBRel < 0.98 || r.IQOLBRel < 0.98 {
			t.Errorf("%s: queue-based primitive lost to TTS (%.2f / %.2f)",
				r.Benchmark, r.QOLBRel, r.IQOLBRel)
		}
	}
	// The crossover ordering: raytrace and radiosity must be the most
	// lock-sensitive, water and barnes the least.
	rel := map[string]float64{}
	for _, r := range rows {
		rel[r.Benchmark] = r.QOLBRel
	}
	if !(rel["raytrace"] > rel["ocean"] && rel["radiosity"] > rel["ocean"]) {
		t.Error("lock-bound benchmarks not more sensitive than ocean")
	}
	if !(rel["ocean"] > rel["barnes"] && rel["ocean"] > rel["water-nsq"]) {
		t.Error("ocean not more sensitive than the compute-bound benchmarks")
	}
}

// TestDeterminismAcrossBenchmarks: every benchmark run twice produces
// bit-identical cycle counts under every main system.
func TestDeterminismAcrossBenchmarks(t *testing.T) {
	for _, spec := range []string{"barnes", "raytrace"} {
		for _, sys := range []System{SysTTS, SysIQOLB, SysQOLB} {
			a, err := RunBenchmark(spec, sys, 4, 16)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunBenchmark(spec, sys, 4, 16)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cycles != b.Cycles || a.BusTransactions != b.BusTransactions {
				t.Errorf("%s/%s nondeterministic: %d/%d vs %d/%d cycles/txs",
					spec, sys.Name, a.Cycles, a.BusTransactions, b.Cycles, b.BusTransactions)
			}
		}
	}
}
