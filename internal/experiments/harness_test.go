package experiments

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"iqolb/internal/engine"
	"iqolb/internal/workload"
)

// smokeSpecs is a small grid exercising named benchmarks, explicit
// params, policy overrides and the fetchadd kernel.
func smokeSpecs(t *testing.T) []Spec {
	t.Helper()
	budget := engine.Time(5000)
	entries := 0
	spec, err := workload.ByName("hotlock")
	if err != nil {
		t.Fatal(err)
	}
	hotParams := spec.Params
	hotParams.TotalCS = 64
	hot := &hotParams
	return []Spec{
		{Bench: "raytrace", System: "tts", Procs: 4, Scale: 16},
		{Bench: "raytrace", System: "iqolb", Procs: 4, Scale: 16},
		{Bench: "ocean", System: "qolb", Procs: 4, Scale: 16},
		{Name: "hot-budget", Params: hot, System: "iqolb", Procs: 4, LockTimeout: &budget},
		{Name: "hot-nopred", Params: hot, System: "iqolb", Procs: 4, PredictorEntries: &entries},
		{Kernel: "fetchadd", System: "delayed", Procs: 4, TotalOps: 64, Think: 50},
	}
}

// The determinism regression: the same spec batch run serially and
// through the parallel harness yields bit-identical stats output — the
// engine's FIFO-tiebreak guarantee holds end to end, and positional
// collection keeps output ordering independent of completion order.
func TestHarnessSerialParallelIdentical(t *testing.T) {
	specs := smokeSpecs(t)

	serial, _, err := RunSpecs(Options{Jobs: 1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := RunSpecs(Options{Jobs: 8}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("serial and parallel stats differ:\n%s\n%s", sj, pj)
	}

	// And both match direct serial execution outside the harness.
	for i, s := range specs {
		direct, err := RunSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		dj, _ := json.Marshal(direct)
		hj, _ := json.Marshal(parallel[i])
		if string(dj) != string(hj) {
			t.Fatalf("spec %d: harness result differs from direct run:\n%s\n%s", i, dj, hj)
		}
	}
}

// A warm cache answers every job without simulating, and the decoded
// results are byte-identical to the fresh ones.
func TestHarnessCacheRoundTrip(t *testing.T) {
	specs := smokeSpecs(t)
	dir := filepath.Join(t.TempDir(), "cache")

	cold, m1, err := RunSpecs(Options{Jobs: 4, CacheDir: dir}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if m1.CacheMisses != len(specs) || m1.CacheHits != 0 {
		t.Fatalf("cold manifest: %+v", m1)
	}
	warm, m2, err := RunSpecs(Options{Jobs: 4, CacheDir: dir}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if m2.CacheHits != len(specs) || m2.CacheMisses != 0 {
		t.Fatalf("warm manifest not 100%% hits: %+v", m2)
	}
	cj, _ := json.Marshal(cold)
	wj, _ := json.Marshal(warm)
	if string(cj) != string(wj) {
		t.Fatal("cached results differ from fresh results")
	}
	if m2.SimCycles != m1.SimCycles {
		t.Fatalf("sim cycles differ across cache: %v vs %v", m1.SimCycles, m2.SimCycles)
	}
}

// The manifest reports sim cycles and lock hand-off percentiles per job.
func TestManifestMetrics(t *testing.T) {
	specs := smokeSpecs(t)[:2]
	_, m, err := RunSpecs(Options{Jobs: 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimCycles <= 0 {
		t.Fatalf("manifest sim cycles = %v", m.SimCycles)
	}
	for _, rec := range m.Records {
		for _, k := range []string{"cycles", "bus_transactions", "lock_handoff_p50", "lock_handoff_p99"} {
			if _, ok := rec.Metrics[k]; !ok {
				t.Fatalf("record %q missing metric %q (have %v)", rec.Label, k, rec.Metrics)
			}
		}
		if rec.Metrics["lock_handoff_p99"] < rec.Metrics["lock_handoff_p50"] {
			t.Fatalf("record %q: p99 < p50", rec.Label)
		}
	}
}

// Policy overrides and workload identity feed the cache key: distinct
// configurations must never share an entry.
func TestSpecCacheKeysDistinct(t *testing.T) {
	specs := smokeSpecs(t)
	seen := map[string]string{}
	for _, s := range specs {
		r, err := s.resolve()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(r.canonical())
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[string(data)]; dup {
			t.Fatalf("specs %q and %q share a canonical config", prev, r.label())
		}
		seen[string(data)] = r.label()
	}
	// Same spec twice resolves to the same canonical bytes.
	a, _ := specs[0].resolve()
	b, _ := specs[0].resolve()
	aj, _ := json.Marshal(a.canonical())
	bj, _ := json.Marshal(b.canonical())
	if string(aj) != string(bj) {
		t.Fatal("canonical config not stable across resolves")
	}
}

// A run that exhausts its cycle budget fails with ErrCycleLimit — both
// directly and through the harness (the label-wrapping keeps the chain
// intact), so the CLIs can detect truncation and exit non-zero.
func TestCycleLimitSurfacesTyped(t *testing.T) {
	tiny := engine.Time(100)
	spec := Spec{Bench: "raytrace", System: "tts", Procs: 4, Scale: 16, CycleLimit: &tiny}
	if _, err := RunSpec(spec); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("RunSpec err = %v, want ErrCycleLimit", err)
	}
	_, m, err := RunSpecs(Options{Jobs: 2}, []Spec{spec})
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("RunSpecs err = %v, want ErrCycleLimit", err)
	}
	if m.Errors != 1 {
		t.Fatalf("manifest errors = %d", m.Errors)
	}
}

// Spec validation rejects malformed jobs before any worker starts.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{System: "hyperlock", Procs: 4, Bench: "raytrace"}, "unknown system"},
		{Spec{System: "tts", Procs: 0, Bench: "raytrace"}, "procs"},
		{Spec{System: "tts", Procs: 4}, "need Bench or Params"},
		{Spec{System: "tts", Procs: 4, Bench: "nope"}, "unknown"},
		{Spec{System: "tts", Procs: 4, Kernel: "warp"}, "unknown kernel"},
		{Spec{System: "tts", Procs: 4, Bench: "raytrace", Params: &workload.Params{}}, "mutually exclusive"},
	}
	for _, c := range cases {
		if _, err := RunSpec(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("spec %+v: err = %v, want %q", c.spec, err, c.want)
		}
	}
}
