package experiments

import (
	"bytes"
	"testing"

	"iqolb/internal/faults"
)

// campaignBase is a small contended spec: 4 processors fighting over one
// hot lock under IQOLB gives every fault kind an opportunity to fire
// (GrantReorder needs at least two simultaneously queued waiters).
func campaignBase() Spec {
	return Spec{Bench: "hotlock", System: "iqolb", Procs: 4, Scale: 16}
}

// TestCampaignDegradeRecovers: with graceful degradation armed, every
// fault kind ends in oracle-verified recovery or a typed diagnosis —
// zero silent divergences, zero untyped errors, zero bare cycle-limit
// hangs.
func TestCampaignDegradeRecovers(t *testing.T) {
	rep, err := RunCampaign(campaignBase(), CampaignConfig{Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("campaign reported %d failures:\n%+v", rep.Failures, rep.Outcomes)
	}
	if len(rep.Outcomes) != len(faults.Kinds()) {
		t.Fatalf("got %d outcomes, want one per kind (%d)", len(rep.Outcomes), len(faults.Kinds()))
	}
	byKind := map[faults.Kind]FaultOutcome{}
	for _, o := range rep.Outcomes {
		byKind[o.Kind] = o
		if o.Status == OutcomeCycleLimit {
			t.Errorf("%s: bare cycle-limit hang", o.Kind)
		}
	}
	// A wedged delay must recover via degradation, not starve.
	if o := byKind[faults.StuckDelay]; o.Status != OutcomeRecovered {
		t.Errorf("stuck-delay outcome = %+v, want %s", o, OutcomeRecovered)
	}
	// Dropped flushes are absorbed by the delay time-out backstop.
	if o := byKind[faults.FlushDropped]; o.Status != OutcomeAbsorbed && o.Status != OutcomeRecovered {
		t.Errorf("flush-dropped outcome = %+v, want absorbed or recovered", o)
	}
	// Corrupting state (tear-off sent as ownership) cannot be recovered
	// by degradation; it must die as a typed protocol violation.
	if o := byKind[faults.TearOffOwnership]; o.Status != OutcomeProtocolViolation {
		t.Errorf("tearoff-ownership outcome = %+v, want %s", o, OutcomeProtocolViolation)
	}
	// Predictor corruption and extra bus latency only cost performance.
	for _, k := range []faults.Kind{faults.PredictorCorrupt, faults.BusLatency} {
		o := byKind[k]
		if o.Status != OutcomeAbsorbed && o.Status != OutcomeClean && o.Status != OutcomeRecovered {
			t.Errorf("%s outcome = %+v, want a surviving status", k, o)
		}
	}
}

// TestCampaignTypedFailuresWithoutDegrade: with degradation off, the
// wedging faults die with typed diagnoses — never a bare cycle-limit
// hang or a silently wrong result.
func TestCampaignTypedFailuresWithoutDegrade(t *testing.T) {
	rep, err := RunCampaign(campaignBase(), CampaignConfig{
		Kinds: []faults.Kind{faults.StuckDelay, faults.TearOffOwnership},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("campaign reported %d failures:\n%+v", rep.Failures, rep.Outcomes)
	}
	for _, o := range rep.Outcomes {
		switch o.Status {
		case OutcomeProtocolViolation, OutcomeDeadlock:
			if o.Error == "" {
				t.Errorf("%s: typed failure with empty error text", o.Kind)
			}
		case OutcomeCycleLimit, OutcomeDivergence, OutcomeError:
			t.Errorf("%s: %s is not a typed detection: %s", o.Kind, o.Status, o.Error)
		}
	}
}

// TestCampaignDeterministic: the same spec + config produce a
// byte-identical report (no wall-clock noise, stable iteration order).
func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{
		Kinds:   []faults.Kind{faults.StuckDelay, faults.BusLatency},
		Seeds:   []uint64{1, 2},
		Degrade: true,
	}
	a, err := RunCampaign(campaignBase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(campaignBase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("reports differ:\n--- a ---\n%s\n--- b ---\n%s", aj, bj)
	}
	if len(a.Outcomes) != 4 {
		t.Fatalf("got %d outcomes, want 2 kinds x 2 seeds", len(a.Outcomes))
	}
}

// TestFaultSpecCacheable: a faulted spec resolves with the plan in its
// canonical config, so fault plans enter the cache key.
func TestFaultSpecCacheable(t *testing.T) {
	s := campaignBase()
	s.Faults = &faults.Plan{Seed: 3, Kinds: []faults.Kind{faults.BusLatency}}
	r, err := s.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.Faults == nil || r.cfg.Faults.Seed != 3 {
		t.Fatalf("resolved config lost the fault plan: %+v", r.cfg.Faults)
	}
}
