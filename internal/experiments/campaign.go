package experiments

import (
	"encoding/json"
	"errors"
	"fmt"

	"iqolb/internal/check"
	"iqolb/internal/faults"
	"iqolb/internal/machine"
)

// CampaignSchemaVersion identifies the serialized CampaignReport layout.
const CampaignSchemaVersion = 1

// CampaignConfig parameterizes a fault campaign: which fault kinds to
// inject, under which seeds, and whether the machine may gracefully
// degrade to plain-RFO semantics when a fault wedges it.
type CampaignConfig struct {
	// Kinds selects the fault kinds to sweep (nil = all).
	Kinds []faults.Kind `json:"kinds,omitempty"`
	// Seeds drives one run per kind per seed (nil = {1}).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Rate is the per-opportunity injection probability (0 = 1.0).
	Rate float64 `json:"rate,omitempty"`
	// Degrade arms graceful degradation: the invariant monitor's
	// starvation watchdog drops a wedged machine to plain-RFO semantics
	// instead of reporting a violation.
	Degrade bool `json:"degrade,omitempty"`
	// StarvationBound overrides the watchdog bound, in cycles (0 = a
	// campaign default of 200k — tight enough that a wedged run degrades
	// and recovers well before any cycle limit).
	StarvationBound uint64 `json:"starvation_bound,omitempty"`
	// MaxInjections caps injections per run (0 = unlimited).
	MaxInjections uint64 `json:"max_injections,omitempty"`
}

// Campaign outcome statuses.
const (
	// OutcomeClean: the armed fault found no opportunity to fire.
	OutcomeClean = "clean"
	// OutcomeAbsorbed: faults fired and the protocol's own safety nets
	// (time-outs, re-issue) absorbed them — correct final state, no
	// degradation needed.
	OutcomeAbsorbed = "absorbed"
	// OutcomeRecovered: faults fired, the machine degraded to plain-RFO
	// semantics, and the run completed with correct final state.
	OutcomeRecovered = "recovered"
	// OutcomeProtocolViolation / OutcomeDeadlock / OutcomeCycleLimit:
	// the run failed with the corresponding typed diagnosis.
	OutcomeProtocolViolation = "protocol-violation"
	OutcomeDeadlock          = "deadlock"
	OutcomeCycleLimit        = "cycle-limit"
	// OutcomeDivergence: the run completed but its final counters differ
	// from the clean reference run — a silently wrong result, the worst
	// outcome a campaign can find.
	OutcomeDivergence = "divergence"
	// OutcomeError: any other failure (configuration, workload).
	OutcomeError = "error"
)

// FaultOutcome is one (kind, seed) run's classified result.
type FaultOutcome struct {
	Kind       faults.Kind       `json:"kind"`
	Seed       uint64            `json:"seed"`
	Status     string            `json:"status"`
	Degraded   bool              `json:"degraded,omitempty"`
	Reason     string            `json:"reason,omitempty"`
	Injections map[string]uint64 `json:"injections,omitempty"`
	Cycles     uint64            `json:"cycles,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// CampaignReport aggregates a fault campaign. It contains no wall-clock
// times or other environmental noise: the same spec, config and seeds
// produce a byte-identical report.
type CampaignReport struct {
	SchemaVersion int            `json:"schema_version"`
	Spec          Spec           `json:"spec"`
	Config        CampaignConfig `json:"config"`
	// Reference carries the clean run's final counters and cycle count.
	ReferenceCycles   uint64         `json:"reference_cycles"`
	ReferenceCounters []uint64       `json:"reference_counters,omitempty"`
	Outcomes          []FaultOutcome `json:"outcomes"`
	// Failures counts outcomes that indicate a robustness bug: silent
	// divergence, an untyped error, or a bare cycle-limit hang. Typed
	// protocol violations and deadlocks are expected fail-stop
	// detections, not failures — the contract is that every injected
	// fault ends in oracle-verified recovery or a typed diagnosis.
	Failures int `json:"failures"`
}

// JSON renders the report deterministically.
func (r *CampaignReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// failureOutcome reports whether a status counts toward Failures: a
// silently wrong result, an untyped error, or a bare cycle-limit hang
// (the diagnosis the fault machinery exists to eliminate). Typed
// protocol violations and deadlocks are expected fail-stop detections.
func failureOutcome(status string) bool {
	switch status {
	case OutcomeDivergence, OutcomeError, OutcomeCycleLimit:
		return true
	}
	return false
}

// classify maps a faulted run's result (or typed error) to an outcome.
func classify(res Result, err error, ref []uint64) FaultOutcome {
	out := FaultOutcome{}
	if err != nil {
		switch {
		case errors.Is(err, check.ErrProtocolViolation):
			out.Status = OutcomeProtocolViolation
		case errors.Is(err, machine.ErrDeadlock):
			out.Status = OutcomeDeadlock
		case errors.Is(err, ErrCycleLimit):
			out.Status = OutcomeCycleLimit
		default:
			out.Status = OutcomeError
		}
		out.Error = err.Error()
		return out
	}
	out.Degraded, out.Reason = res.Degraded, res.DegradeReason
	out.Injections = res.FaultInjections
	out.Cycles = res.Cycles
	total := uint64(0)
	for _, n := range res.FaultInjections {
		total += n
	}
	switch {
	case len(ref) > 0 && !equalCounters(res.FinalCounters, ref):
		out.Status = OutcomeDivergence
	case total == 0:
		out.Status = OutcomeClean
	case res.Degraded:
		out.Status = OutcomeRecovered
	default:
		out.Status = OutcomeAbsorbed
	}
	return out
}

func equalCounters(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunCampaign sweeps every configured fault kind × seed over the base
// spec, one serial run each (typed error classification needs the
// concrete error values, which the parallel harness flattens to
// strings). A clean reference run establishes the expected final
// counters; every faulted run must either match them (recovered or
// absorbed), or fail with a typed diagnosis. The report is
// deterministic: same spec + config → byte-identical JSON.
func RunCampaign(base Spec, c CampaignConfig) (*CampaignReport, error) {
	kinds := c.Kinds
	if len(kinds) == 0 {
		kinds = faults.Kinds()
	}
	seeds := c.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	bound := c.StarvationBound
	if bound == 0 {
		bound = 200_000
	}

	// The reference run: the same spec under the same monitors with an
	// empty fault plan (no kinds armed), so monitor overheads and
	// workload are identical and only the injections differ.
	refSpec := base
	refSpec.Faults = &faults.Plan{Seed: seeds[0], Degrade: c.Degrade, StarvationBound: bound}
	refRes, err := RunSpec(refSpec)
	if err != nil {
		return nil, fmt.Errorf("campaign reference run: %w", err)
	}
	report := &CampaignReport{
		SchemaVersion:     CampaignSchemaVersion,
		Spec:              base,
		Config:            c,
		ReferenceCycles:   refRes.Cycles,
		ReferenceCounters: refRes.FinalCounters,
	}

	for _, kind := range kinds {
		for _, seed := range seeds {
			s := base
			s.Faults = &faults.Plan{
				Seed:            seed,
				Kinds:           []faults.Kind{kind},
				Rate:            c.Rate,
				MaxInjections:   c.MaxInjections,
				Degrade:         c.Degrade,
				StarvationBound: bound,
			}
			res, err := RunSpec(s)
			out := classify(res, err, report.ReferenceCounters)
			out.Kind, out.Seed = kind, seed
			if failureOutcome(out.Status) {
				report.Failures++
			}
			report.Outcomes = append(report.Outcomes, out)
		}
	}
	return report, nil
}
