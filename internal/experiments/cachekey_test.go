package experiments

import (
	"testing"

	"iqolb/internal/engine"
	"iqolb/internal/harness"
)

func specKey(t *testing.T, s Spec) string {
	t.Helper()
	r, err := s.resolve()
	if err != nil {
		t.Fatalf("resolve %+v: %v", s, err)
	}
	key, err := harness.Key(r.canonical())
	if err != nil {
		t.Fatalf("key %+v: %v", s, err)
	}
	return key
}

// TestCacheKeyInvalidation: every Spec field that changes what a run
// computes must change the canonical cache key, so stale cached results
// can never be served for an edited spec — while a byte-identical spec
// hashes identically (that is the whole point of the cache).
func TestCacheKeyInvalidation(t *testing.T) {
	base := Spec{Bench: "hotlock", System: "iqolb", Procs: 4}
	baseKey := specKey(t, base)

	if again := specKey(t, base); again != baseKey {
		t.Fatalf("identical spec produced different keys: %s vs %s", baseKey, again)
	}
	// The label must not leak into the key: renaming a job must still hit
	// the cache.
	renamed := base
	renamed.Name = "renamed"
	if got := specKey(t, renamed); got != baseKey {
		t.Errorf("Name changed the cache key; labels must not affect results identity")
	}

	timeout := engine.Time(123)
	limit := engine.Time(77_000_000)
	entries := 0
	variants := map[string]Spec{
		"System":           {Bench: "hotlock", System: "tts", Procs: 4},
		"Procs":            {Bench: "hotlock", System: "iqolb", Procs: 8},
		"Scale":            {Bench: "hotlock", System: "iqolb", Procs: 4, Scale: 4},
		"Bench":            {Bench: "multilock", System: "iqolb", Procs: 4},
		"Kernel":           {Kernel: "fetchadd", System: "iqolb", Procs: 4, TotalOps: 64},
		"LockTimeout":      {Bench: "hotlock", System: "iqolb", Procs: 4, LockTimeout: &timeout},
		"PredictorEntries": {Bench: "hotlock", System: "iqolb", Procs: 4, PredictorEntries: &entries},
		"CycleLimit":       {Bench: "hotlock", System: "iqolb", Procs: 4, CycleLimit: &limit},
		"Check":            {Bench: "hotlock", System: "iqolb", Procs: 4, Check: true},
	}
	seen := map[string]string{baseKey: "base"}
	for field, s := range variants {
		key := specKey(t, s)
		if key == baseKey {
			t.Errorf("changing %s did not change the cache key", field)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s collide on cache key %s", field, prev, key)
		}
		seen[key] = field
	}
}

// TestCacheKeyFetchAddOps: the fetchadd kernel's op count and think time
// are part of the run's identity too.
func TestCacheKeyFetchAddOps(t *testing.T) {
	a := specKey(t, Spec{Kernel: "fetchadd", System: "tts", Procs: 4, TotalOps: 64})
	b := specKey(t, Spec{Kernel: "fetchadd", System: "tts", Procs: 4, TotalOps: 128})
	c := specKey(t, Spec{Kernel: "fetchadd", System: "tts", Procs: 4, TotalOps: 64, Think: 50})
	if a == b || a == c || b == c {
		t.Fatalf("fetchadd parameter changes must change the key: %s %s %s", a, b, c)
	}
}
