package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"iqolb/internal/engine"
	"iqolb/internal/faults"
	"iqolb/internal/harness"
)

func specKey(t *testing.T, s Spec) string {
	t.Helper()
	r, err := s.resolve()
	if err != nil {
		t.Fatalf("resolve %+v: %v", s, err)
	}
	key, err := harness.Key(r.canonical())
	if err != nil {
		t.Fatalf("key %+v: %v", s, err)
	}
	return key
}

// TestCacheKeyInvalidation: every Spec field that changes what a run
// computes must change the canonical cache key, so stale cached results
// can never be served for an edited spec — while a byte-identical spec
// hashes identically (that is the whole point of the cache).
func TestCacheKeyInvalidation(t *testing.T) {
	base := Spec{Bench: "hotlock", System: "iqolb", Procs: 4}
	baseKey := specKey(t, base)

	if again := specKey(t, base); again != baseKey {
		t.Fatalf("identical spec produced different keys: %s vs %s", baseKey, again)
	}
	// The label must not leak into the key: renaming a job must still hit
	// the cache.
	renamed := base
	renamed.Name = "renamed"
	if got := specKey(t, renamed); got != baseKey {
		t.Errorf("Name changed the cache key; labels must not affect results identity")
	}

	timeout := engine.Time(123)
	limit := engine.Time(77_000_000)
	entries := 0
	variants := map[string]Spec{
		"System":           {Bench: "hotlock", System: "tts", Procs: 4},
		"Procs":            {Bench: "hotlock", System: "iqolb", Procs: 8},
		"Scale":            {Bench: "hotlock", System: "iqolb", Procs: 4, Scale: 4},
		"Bench":            {Bench: "multilock", System: "iqolb", Procs: 4},
		"Kernel":           {Kernel: "fetchadd", System: "iqolb", Procs: 4, TotalOps: 64},
		"LockTimeout":      {Bench: "hotlock", System: "iqolb", Procs: 4, LockTimeout: &timeout},
		"PredictorEntries": {Bench: "hotlock", System: "iqolb", Procs: 4, PredictorEntries: &entries},
		"CycleLimit":       {Bench: "hotlock", System: "iqolb", Procs: 4, CycleLimit: &limit},
		"Check":            {Bench: "hotlock", System: "iqolb", Procs: 4, Check: true},
		"Faults": {Bench: "hotlock", System: "iqolb", Procs: 4,
			Faults: &faults.Plan{Seed: 1, Kinds: []faults.Kind{faults.StuckDelay}}},
		"FaultSeed": {Bench: "hotlock", System: "iqolb", Procs: 4,
			Faults: &faults.Plan{Seed: 2, Kinds: []faults.Kind{faults.StuckDelay}}},
	}
	seen := map[string]string{baseKey: "base"}
	for field, s := range variants {
		key := specKey(t, s)
		if key == baseKey {
			t.Errorf("changing %s did not change the cache key", field)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s collide on cache key %s", field, prev, key)
		}
		seen[key] = field
	}
}

// TestCacheKeyTraceNeutral: the observability layer is passive, so
// Spec.Trace must not enter the cache key — enabling tracing on a warmed
// cache must not invalidate any entry. (Traced jobs skip the cache by
// other means: RunSpecs clears their harness Config.)
func TestCacheKeyTraceNeutral(t *testing.T) {
	base := Spec{Bench: "hotlock", System: "iqolb", Procs: 4}
	baseKey := specKey(t, base)
	traced := base
	traced.Trace = &TraceOptions{Perfetto: "somewhere.trace.json"}
	if got := specKey(t, traced); got != baseKey {
		t.Errorf("Trace changed the cache key (%s vs %s); obs options must not invalidate cached results", got, baseKey)
	}
}

// TestTracedBatchSkipsCache runs the same spec three times against one
// cache directory: plain (miss, cached), traced (must simulate fresh for
// the artifacts, without serving or poisoning the cache), plain again
// (hit — the traced run left the warmed cache intact).
func TestTracedBatchSkipsCache(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Bench: "nullcs", System: "iqolb", Procs: 2, Scale: 64}
	opt := Options{Jobs: 1, CacheDir: dir + "/cache"}

	_, m1, err := RunSpecs(opt, []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if m1.CacheHits != 0 || m1.CacheMisses != 1 {
		t.Fatalf("first run: hits=%d misses=%d, want 0/1", m1.CacheHits, m1.CacheMisses)
	}

	traced := opt
	traced.Obs = dir + "/traces"
	res, m2, err := RunSpecs(traced, []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if m2.CacheHits != 0 || m2.CacheMisses != 1 {
		t.Fatalf("traced run: hits=%d misses=%d, want 0/1 (fresh run for artifacts)", m2.CacheHits, m2.CacheMisses)
	}
	if res[0].Obs == nil {
		t.Error("traced run produced no snapshot")
	}
	if m2.Records[0].Snapshot == nil {
		t.Error("traced run's manifest record carries no snapshot")
	}
	tracePath := filepath.Join(traced.Obs, harness.SanitizeLabel("nullcs/iqolb/p2")+".trace.json")
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("traced run left no Perfetto export: %v", err)
	}

	_, m3, err := RunSpecs(opt, []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if m3.CacheHits != 1 || m3.CacheMisses != 0 {
		t.Fatalf("third run: hits=%d misses=%d, want 1/0 (traced run must not disturb the cache)", m3.CacheHits, m3.CacheMisses)
	}
}

// TestCacheKeyFetchAddOps: the fetchadd kernel's op count and think time
// are part of the run's identity too.
func TestCacheKeyFetchAddOps(t *testing.T) {
	a := specKey(t, Spec{Kernel: "fetchadd", System: "tts", Procs: 4, TotalOps: 64})
	b := specKey(t, Spec{Kernel: "fetchadd", System: "tts", Procs: 4, TotalOps: 128})
	c := specKey(t, Spec{Kernel: "fetchadd", System: "tts", Procs: 4, TotalOps: 64, Think: 50})
	if a == b || a == c || b == c {
		t.Fatalf("fetchadd parameter changes must change the key: %s %s %s", a, b, c)
	}
}
