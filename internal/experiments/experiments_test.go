package experiments

import (
	"strings"
	"testing"

	"iqolb/internal/engine"
	"iqolb/internal/trace"
	"iqolb/internal/workload"
)

func TestSystemByName(t *testing.T) {
	for _, s := range Systems() {
		got, err := SystemByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("SystemByName(%q) = %v, %v", s.Name, got, err)
		}
	}
	if _, err := SystemByName("hyperlock"); err == nil {
		t.Error("unknown system resolved")
	}
}

func TestSameSoftwareAcrossHardwareModes(t *testing.T) {
	// The paper's central claim in code: TTS, delayed and IQOLB systems
	// generate byte-identical programs.
	spec, _ := workload.ByName("hotlock")
	p := spec.Params
	p.TotalCS = 64
	a, err := workload.Generate(p, SysTTS.Primitive, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.Generate(p, SysDelayed.Primitive, 4)
	c, _ := workload.Generate(p, SysIQOLB.Primitive, 4)
	if len(a.Program.Code) != len(b.Program.Code) || len(a.Program.Code) != len(c.Program.Code) {
		t.Fatal("programs differ across hardware modes")
	}
	for i := range a.Program.Code {
		if a.Program.Code[i] != b.Program.Code[i] || a.Program.Code[i] != c.Program.Code[i] {
			t.Fatalf("instruction %d differs across modes", i)
		}
	}
}

func TestRunBenchmarkScaled(t *testing.T) {
	for _, sys := range []System{SysTTS, SysIQOLB, SysQOLB} {
		r, err := RunBenchmark("raytrace", sys, 4, 16)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		if r.Cycles == 0 {
			t.Fatalf("%s: zero cycles", sys.Name)
		}
	}
}

func TestRunFetchAdd(t *testing.T) {
	r, err := RunFetchAdd(SysDelayed, 4, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.SCFailureRate != 0 {
		t.Fatalf("delayed-response fetch&add had SC failures (%.3f)", r.SCFailureRate)
	}
}

func TestTable1Table2Render(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"Table 1", "L1 data cache", "MOESI", "lock predictor"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2 := Table2()
	for _, want := range []string{"barnes", "ocean", "radiosity", "raytrace", "water-nsq", "2,048 bodies"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable3SmallScaleShape(t *testing.T) {
	// At 8 processors / heavy scaling the magnitudes shrink but the
	// ordering must hold: QOLB and IQOLB never lose to TTS, and IQOLB
	// tracks QOLB.
	rows, err := Table3Data(Options{}, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.QOLBRel < 0.95 {
			t.Errorf("%s: QOLB slower than TTS (%.2f)", r.Benchmark, r.QOLBRel)
		}
		if r.IQOLBRel < 0.95 {
			t.Errorf("%s: IQOLB slower than TTS (%.2f)", r.Benchmark, r.IQOLBRel)
		}
		ratio := float64(r.QOLBCycles) / float64(r.IQOLBCycles)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: IQOLB does not track QOLB (QOLB/IQOLB cycles = %.2f)", r.Benchmark, ratio)
		}
	}
}

func TestFigure1Progression(t *testing.T) {
	out, results, err := Figure1(Options{}, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tts", "aggressive", "delayed", "iqolb", "iqolb-noret", "iqolb-notearoff"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q", want)
		}
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.System] = r
	}
	// IQOLB must beat baseline TTS on the hot lock and issue fewer bus
	// transactions.
	if byName["iqolb"].Cycles >= byName["tts"].Cycles {
		t.Errorf("iqolb (%d) not faster than tts (%d)", byName["iqolb"].Cycles, byName["tts"].Cycles)
	}
	if byName["iqolb"].BusTransactions >= byName["tts"].BusTransactions {
		t.Errorf("iqolb traffic (%d) not below tts (%d)",
			byName["iqolb"].BusTransactions, byName["tts"].BusTransactions)
	}
	// Baseline suffers SC failures; the LPRFO systems avoid them.
	if byName["tts"].SCFailureRate == 0 {
		t.Error("tts shows no SC failures under contention")
	}
	if byName["iqolb"].SCFailureRate > 0.05 {
		t.Errorf("iqolb SC failure rate %.3f, want ~0", byName["iqolb"].SCFailureRate)
	}
	// IQOLB sends tear-offs; delayed response does not hold locks.
	if byName["iqolb"].TearOffs == 0 {
		t.Error("iqolb sent no tear-offs")
	}
}

func TestFigure2TraceShape(t *testing.T) {
	out, rec, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	// The traditional sequence: both processors LL, one SC fails and
	// retries after the invalidation.
	if counts[trace.EvSCFail] == 0 {
		t.Errorf("figure 2 shows no failed SC:\n%s", out)
	}
	if counts[trace.EvSCOk] != 2 {
		t.Errorf("figure 2: %d successful SCs, want 2", counts[trace.EvSCOk])
	}
	if !strings.Contains(out, "GETS") || !strings.Contains(out, "UPGR") {
		t.Errorf("figure 2 missing baseline transactions:\n%s", out)
	}
	if strings.Contains(out, "LPRFO") {
		t.Errorf("figure 2 contains LPRFO under baseline:\n%s", out)
	}
}

func TestFigure3TraceShape(t *testing.T) {
	out, rec, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	if counts[trace.EvSCFail] != 0 {
		t.Errorf("figure 3 shows SC retries under delayed response:\n%s", out)
	}
	if counts[trace.EvSCOk] != 3 {
		t.Errorf("figure 3: %d successful SCs, want 3", counts[trace.EvSCOk])
	}
	if counts[trace.EvDelayStart] == 0 {
		t.Errorf("figure 3 shows no delayed response:\n%s", out)
	}
	if !strings.Contains(out, "LPRFO") {
		t.Errorf("figure 3 missing LPRFO:\n%s", out)
	}
}

func TestFigure4TraceShape(t *testing.T) {
	out, rec, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	if counts[trace.EvSCOk] != 3 {
		t.Errorf("figure 4: %d acquires, want 3", counts[trace.EvSCOk])
	}
	if counts[trace.EvRelease] != 3 {
		t.Errorf("figure 4: %d releases, want 3", counts[trace.EvRelease])
	}
	// The IQOLB signature: tear-off copies and release-triggered
	// hand-offs, with no time-outs.
	if counts[trace.EvTimeout] != 0 {
		t.Errorf("figure 4 hand-offs degraded to timeouts:\n%s", out)
	}
	if !strings.Contains(out, "TearOff") {
		t.Errorf("figure 4 missing tear-off:\n%s", out)
	}
	if !strings.Contains(out, "release") {
		t.Errorf("figure 4 missing release:\n%s", out)
	}
}

func TestSweepsRunSmall(t *testing.T) {
	if out, err := Sweep(Options{}, SweepSpec{Kind: SweepScalingKind, Bench: "hotlock",
		ProcCounts: []int{1, 2, 4}, Scale: 8}); err != nil || !strings.Contains(out, "procs") {
		t.Errorf("scaling sweep: %v", err)
	}
	if out, err := Sweep(Options{}, SweepSpec{Kind: SweepTimeoutKind, Procs: 4, TotalCS: 128,
		Budgets: []engine.Time{500, 5000}}); err != nil || !strings.Contains(out, "lock budget") {
		t.Errorf("timeout sweep: %v", err)
	}
	if out, err := Sweep(Options{}, SweepSpec{Kind: SweepRetentionKind, Procs: 4, TotalCS: 128}); err != nil || !strings.Contains(out, "retention") {
		t.Errorf("retention sweep: %v", err)
	}
	if out, err := Sweep(Options{}, SweepSpec{Kind: SweepCollocationKind, Procs: 4, TotalCS: 128}); err != nil || !strings.Contains(out, "collocated") {
		t.Errorf("collocation sweep: %v", err)
	}
	if out, err := Sweep(Options{}, SweepSpec{Kind: SweepPredictorKind, Procs: 4, TotalCS: 128}); err != nil || !strings.Contains(out, "always-lock") {
		t.Errorf("predictor sweep: %v", err)
	}
}

func TestScaleHelper(t *testing.T) {
	p := workload.Params{Iterations: 1, TotalCS: 1024, Locks: 1}
	s := Scale(p, 16, 4)
	if s.TotalCS != 64 {
		t.Fatalf("scaled TotalCS = %d, want 64", s.TotalCS)
	}
	s2 := Scale(p, 10000, 4)
	if s2.TotalCS != 4 {
		t.Fatalf("over-scaled TotalCS = %d, want 4 (one per proc)", s2.TotalCS)
	}
	if Scale(p, 1, 4).TotalCS != 1024 {
		t.Fatal("factor 1 changed the workload")
	}
}

func TestSweepGeneralizedShape(t *testing.T) {
	out, err := Sweep(Options{}, SweepSpec{Kind: SweepGeneralizedKind, Procs: 8, TotalCS: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "iqolb-gen") {
		t.Fatalf("missing generalized row:\n%s", out)
	}
}

func TestGeneralizedReducesDataLineUpgrades(t *testing.T) {
	pollers, workers := 4, 4
	p := workload.Params{
		Iterations: 4, TotalCS: 256, Locks: workers, HotPct: 0,
		CSWork: 400, CSWrites: 8, ThinkWork: 100, ThinkJitter: 50,
		PollProcs: pollers, PollReads: 128, PollThink: 20,
	}
	plain, err := RunParams("rw-plain", p, SysIQOLB, pollers+workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := RunParams("rw-gen", p, SysGeneralized, pollers+workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen.TearOffs <= plain.TearOffs {
		t.Errorf("generalized tear-offs %d not above plain %d (footprint inactive?)",
			gen.TearOffs, plain.TearOffs)
	}
	// The footprint keeps the writers' data lines exclusive mid-section,
	// cutting their re-upgrade traffic.
	plainUp := plain.Stats.TotalTx(2)
	genUp := gen.Stats.TotalTx(2)
	if genUp >= plainUp {
		t.Errorf("generalized UPGRs %d not below plain %d", genUp, plainUp)
	}
}
