package experiments

import (
	"fmt"

	"iqolb/internal/check"
	"iqolb/internal/engine"
	"iqolb/internal/machine"
	"iqolb/internal/obs"
	"iqolb/internal/report"
	"iqolb/internal/stats"
	"iqolb/internal/trace"
	"iqolb/internal/workload"
)

// sweepScaling runs one benchmark across processor counts for the main
// systems — the contention-scaling study behind the paper's motivation.
// The grid fans out across the harness; rows render in spec order.
func sweepScaling(opt Options, benchName string, procCounts []int, scaleFactor int) (string, error) {
	systems := []System{SysTTS, SysDelayed, SysIQOLB, SysQOLB}
	var specs []Spec
	for _, procs := range procCounts {
		for _, sys := range systems {
			specs = append(specs, Spec{
				Bench: benchName, System: sys.Name, Procs: procs, Scale: scaleFactor,
			})
		}
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", err
	}
	t := report.NewTable(fmt.Sprintf("Scaling sweep: %s (cycles; speedup vs 1-proc TTS in parens)", benchName),
		append([]string{"procs"}, systemNames(systems)...)...)
	base := results[0].Cycles // procCounts[0] × SysTTS is the first spec
	for i, procs := range procCounts {
		row := []any{procs}
		for j := range systems {
			r := results[i*len(systems)+j]
			row = append(row, fmt.Sprintf("%d (%.2f)", r.Cycles, float64(base)/float64(r.Cycles)))
		}
		t.Row(row...)
	}
	return t.String(), nil
}

func systemNames(systems []System) []string {
	names := make([]string, len(systems))
	for i, s := range systems {
		names[i] = s.Name
	}
	return names
}

// sweepTimeout studies the §3.2/§3.3 time-out budgets: IQOLB's lock delay
// budget must comfortably exceed critical-section length or hand-offs
// degrade into timeouts.
func sweepTimeout(opt Options, procs, totalCS int, budgets []engine.Time) (string, error) {
	// Long critical sections (400 cycles) so that budgets below the
	// section length force time-outs and the hand-off degrades, while
	// ample budgets let every hand-off ride the release.
	p := workload.Params{
		Iterations: 1, TotalCS: totalCS - totalCS%procs, Locks: 1, HotPct: 100,
		CSWork: 400, ThinkWork: 300, ThinkJitter: 100,
	}
	var specs []Spec
	for _, budget := range budgets {
		b := budget
		specs = append(specs, Spec{
			Name: fmt.Sprintf("timeout-%d", b), Params: &p,
			System: SysIQOLB.Name, Procs: procs, LockTimeout: &b,
		})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", err
	}
	t := report.NewTable(
		fmt.Sprintf("Timeout sweep: IQOLB on hot lock with 400-cycle sections, %d processors", procs),
		"lock budget", "cycles", "timeouts", "releases via delay", "handoff mean")
	for i, budget := range budgets {
		r := results[i]
		t.Row(uint64(budget), r.Cycles, r.Timeouts,
			r.Stats.Total(func(n *stats.Node) uint64 { return n.DelaysReleased }),
			fmt.Sprintf("%.0f", r.LockHandoffMean))
	}
	return t.String(), nil
}

// sweepRetention exercises the queue-retention vs. breakdown alternatives
// on a kernel with false-shared locks, where independent lock holders
// write each other's delayed lines.
func sweepRetention(opt Options, procs, totalCS int) (string, error) {
	p := workload.Params{
		Iterations: 1, TotalCS: totalCS - totalCS%procs, Locks: 8, HotPct: 0,
		CSWork: 30, ThinkWork: 150, ThinkJitter: 100, LocksPerLine: 2,
	}
	systems := []System{SysDelayed, SysDelayedNoRet, SysIQOLB, SysIQOLBNoRet}
	var specs []Spec
	for _, sys := range systems {
		specs = append(specs, Spec{Name: "falseshare", Params: &p, System: sys.Name, Procs: procs})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", err
	}
	t := report.NewTable(fmt.Sprintf("Queue retention sweep: 8 locks packed 2/line, %d processors", procs),
		"system", "cycles", "bus txs", "breakdowns", "retention trips", "timeouts")
	for i, sys := range systems {
		r := results[i]
		t.Row(sys.Name, r.Cycles, r.BusTransactions, r.Breakdowns,
			r.Stats.Total(func(n *stats.Node) uint64 { return n.RetentionTrips }), r.Timeouts)
	}
	return t.String(), nil
}

// sweepCollocation studies the collocation extension (§6 / Generalized
// IQOLB direction): protected data in the lock's line rides along with the
// hand-off.
func sweepCollocation(opt Options, procs, totalCS int) (string, error) {
	base := workload.Params{
		Iterations: 1, TotalCS: totalCS - totalCS%procs, Locks: 1, HotPct: 100,
		CSWork: 10, ThinkWork: 300, ThinkJitter: 100,
	}
	col := base
	col.Collocate = true
	systems := []System{SysTTS, SysQOLB, SysIQOLB}
	var specs []Spec
	for _, sys := range systems {
		specs = append(specs,
			Spec{Name: "colloc-off", Params: &base, System: sys.Name, Procs: procs},
			Spec{Name: "colloc-on", Params: &col, System: sys.Name, Procs: procs})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", err
	}
	t := report.NewTable(fmt.Sprintf("Collocation sweep: hot lock + protected word, %d processors", procs),
		"system", "separate line", "collocated", "gain")
	for i, sys := range systems {
		sep, c := results[2*i], results[2*i+1]
		t.Row(sys.Name, sep.Cycles, c.Cycles, float64(sep.Cycles)/float64(c.Cycles))
	}
	return t.String(), nil
}

// sweepPredictor compares the §3.4 PC-indexed predictor against the
// always-lock ablation and reports training accuracy.
func sweepPredictor(opt Options, procs, totalCS int) (string, error) {
	spec, err := workload.ByName("hotlock")
	if err != nil {
		return "", err
	}
	p := spec.Params
	p.TotalCS = totalCS - totalCS%procs
	entriesList := []int{256, 0}
	var specs []Spec
	for _, entries := range entriesList {
		e := entries
		name := "pc-indexed"
		if e == 0 {
			name = "always-lock"
		}
		specs = append(specs, Spec{
			Name: "predictor-" + name, Params: &p,
			System: SysIQOLB.Name, Procs: procs, PredictorEntries: &e,
		})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", err
	}
	t := report.NewTable(fmt.Sprintf("Predictor sweep: hot lock, %d processors", procs),
		"configuration", "cycles", "pred hits", "pred misses", "timeouts")
	for i, entries := range entriesList {
		name := "pc-indexed"
		if entries == 0 {
			name = "always-lock"
		}
		r := results[i]
		t.Row(name, r.Cycles,
			r.Stats.Total(func(n *stats.Node) uint64 { return n.PredictorHits }),
			r.Stats.Total(func(n *stats.Node) uint64 { return n.PredictorMisses }),
			r.Timeouts)
	}
	return t.String(), nil
}

// runConfigured executes a pre-built kernel under an explicit machine
// configuration (for sweeps that tweak policy knobs directly). With
// checked set, the run executes under the internal/check invariant
// monitors, and any violation fails the run. With tr non-nil, the run
// collects the observability event stream (see TraceOptions).
func runConfigured(cfg machine.Config, bld *workload.Build, p workload.Params,
	name, sysName string, procs int, checked bool, tr *TraceOptions) (Result, error) {
	var rec *trace.Recorder
	m, err := machine.New(cfg, bld.Program, rec)
	if err != nil {
		return Result{}, err
	}
	for _, l := range bld.Locks {
		m.RegisterLockAddr(l)
	}
	// A fault plan implies the monitors: an injected fault must be
	// either survived or reported, never silently absorbed into wrong
	// measurements.
	fp := cfg.Faults
	checked = checked || fp != nil
	// The invariant monitor attaches exclusively (SetProbe); the trace
	// collector must come after it.
	var mon *check.Monitor
	if checked {
		mon = check.AttachToMachine(m, monitorConfig(m, fp))
	}
	var log *obs.Log
	if tr != nil {
		log = obs.Attach(m)
	}
	res, err := m.Run()
	// The monitor halts the machine on a violation, which surfaces from
	// Run as a deadlock: report the violation, not the symptom.
	if mon != nil {
		if cerr := mon.Finish(); cerr != nil {
			return Result{}, fmt.Errorf("%s: %w", name, cerr)
		}
	}
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	if res.HitLimit {
		return Result{}, fmt.Errorf("%s: %w (%d cycles)", name, ErrCycleLimit, cfg.CycleLimit)
	}
	if err := bld.VerifyCounters(p, m.Peek); err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	out := summarize(sysName, name, procs, res)
	if fp != nil {
		fillFaultOutcome(m, &p, &out)
	}
	if err := finishTrace(log, tr, &out); err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	return out, nil
}

// sweepGeneralized evaluates the §6 Generalized IQOLB extension on a
// reader/writer kernel: part of the machine updates protected data under a
// lock while the rest polls it with plain loads. Under plain IQOLB every
// poll downgrades the writer's data line; with the generalized speculation
// the polls are answered with tear-offs and the data stays put until the
// release.
func sweepGeneralized(opt Options, procs, totalCS int) (string, error) {
	pollers := procs / 2
	workers := procs - pollers
	p := workload.Params{
		// One lock per writer: the bottleneck is each writer's protected
		// data line, not lock contention.
		Iterations: 4, TotalCS: totalCS - totalCS%workers, Locks: workers, HotPct: 0,
		CSWork: 400, CSWrites: 8, ThinkWork: 100, ThinkJitter: 50,
		PollProcs: pollers, PollReads: totalCS / 2, PollThink: 20,
	}
	systems := []System{SysTTS, SysIQOLB, SysGeneralized}
	var specs []Spec
	for _, sys := range systems {
		specs = append(specs, Spec{Name: "readerwriter", Params: &p, System: sys.Name, Procs: procs})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return "", err
	}
	t := report.NewTable(fmt.Sprintf("Generalized IQOLB sweep: %d writers under locks, %d pollers", workers, pollers),
		"system", "cycles", "bus txs", "tear-offs", "data-line UPGRs", "timeouts")
	for i, sys := range systems {
		r := results[i]
		t.Row(sys.Name, r.Cycles, r.BusTransactions, r.TearOffs,
			r.Stats.TotalTx(int(2 /* mem.TxUPGR */)), r.Timeouts)
	}
	t.Note("the generalized mode answers poller reads with tear-offs, keeping the")
	t.Note("writer's data line exclusive across the critical section (paper §6)")
	return t.String(), nil
}
