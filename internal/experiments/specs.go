package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"iqolb/internal/engine"
	"iqolb/internal/faults"
	"iqolb/internal/harness"
	"iqolb/internal/machine"
	"iqolb/internal/obs"
	"iqolb/internal/workload"
)

// ErrCycleLimit marks a run aborted at the engine's cycle limit: its
// measurements would be truncated and must not be reported as results.
var ErrCycleLimit = errors.New("hit the engine cycle limit")

// cacheSchema versions the canonical job configuration. Bump it whenever
// a simulator change alters results without altering any config field —
// every cached entry is then invalidated at once.
//
// Schema 2: Result gained SchemaVersion and the observability snapshot.
// Schema 3: Result gained the fault-campaign fields (Degraded,
// DegradeReason, FaultInjections, FinalCounters).
const cacheSchema = 3

// TraceOptions enables the observability layer (internal/obs) for a
// spec's run. A traced run collects the structured event stream, embeds
// the metrics snapshot in its Result (and manifest record), and — when
// Perfetto names a path — exports the Chrome trace-event JSON there.
//
// Tracing never changes the cache key: the collectors are passive and the
// measurements are identical, so traced and untraced runs are the same
// computation. A traced job instead opts out of the result cache entirely
// — trace artifacts must come from a fresh run, and a cached Result could
// not supply them.
type TraceOptions struct {
	// Perfetto is the output path for the Chrome trace-event JSON export
	// (loadable at ui.perfetto.dev); empty skips the export.
	Perfetto string `json:"perfetto,omitempty"`
}

// Spec is the canonical description of one simulation job: workload ×
// system × machine size, plus optional policy overrides. Specs are the
// currency of the parallel harness — they are resolved to a full machine
// configuration, hashed for the result cache, and executed on a worker.
type Spec struct {
	// Name labels the job; defaults to the benchmark name.
	Name string `json:"name,omitempty"`
	// Bench names a Table 2 benchmark or microbenchmark; mutually
	// exclusive with Params.
	Bench string `json:"bench,omitempty"`
	// Params is an explicit synchronization signature.
	Params *workload.Params `json:"params,omitempty"`
	// System is the system name (see Systems).
	System string `json:"system"`
	// Procs is the machine size.
	Procs int `json:"procs"`
	// Scale divides a named benchmark's workload (ignored with Params).
	Scale int `json:"scale,omitempty"`
	// Kernel selects a non-lock kernel: "" for the lock workload,
	// "fetchadd" for the lock-free Fetch&Add kernel.
	Kernel string `json:"kernel,omitempty"`
	// TotalOps/Think parameterize the fetchadd kernel.
	TotalOps int   `json:"total_ops,omitempty"`
	Think    int64 `json:"think,omitempty"`
	// LockTimeout overrides the §3.3 lock delay budget when non-nil.
	LockTimeout *engine.Time `json:"lock_timeout,omitempty"`
	// PredictorEntries overrides the §3.4 predictor size when non-nil
	// (zero selects the always-lock ablation).
	PredictorEntries *int `json:"predictor_entries,omitempty"`
	// CycleLimit overrides the engine's runaway-run abort budget when
	// non-nil. Runs that hit it fail with ErrCycleLimit.
	CycleLimit *engine.Time `json:"cycle_limit,omitempty"`
	// Check runs the job under the internal/check protocol-invariant
	// monitors; any violation fails the job. Checked results are cached
	// separately from unchecked ones (the configuration hash differs).
	Check bool `json:"check,omitempty"`
	// Trace enables the observability layer for this run (see
	// TraceOptions). It does not enter the cache key; traced jobs skip
	// the cache instead.
	Trace *TraceOptions `json:"trace,omitempty"`
	// Faults arms a deterministic fault-injection plan for the run
	// (nil = clean). The plan enters the cache key — a faulted run is a
	// different computation — and implies the invariant monitors, so
	// every injected fault is either survived (oracle-verified final
	// state) or reported as a typed failure.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// resolved is a Spec with every default filled in: the effective
// workload parameters, system, and complete machine configuration.
type resolved struct {
	name     string
	kernel   string
	params   workload.Params
	totalOps int
	think    int64
	sys      System
	cfg      machine.Config
	check    bool
	trace    *TraceOptions
}

// resolve validates the spec and computes its full execution plan.
func (s Spec) resolve() (resolved, error) {
	sys, err := SystemByName(s.System)
	if err != nil {
		return resolved{}, err
	}
	if s.Procs < 1 {
		return resolved{}, fmt.Errorf("spec %q: procs must be positive", s.Name)
	}
	cfg := sys.MachineConfig(s.Procs)
	if s.LockTimeout != nil {
		cfg.Core.LockTimeout = *s.LockTimeout
	}
	if s.PredictorEntries != nil {
		cfg.Core.PredictorEntries = *s.PredictorEntries
	}
	if s.CycleLimit != nil {
		cfg.CycleLimit = *s.CycleLimit
	}
	cfg.Faults = s.Faults
	r := resolved{name: s.Name, kernel: s.Kernel, sys: sys, cfg: cfg, check: s.Check, trace: s.Trace}
	switch s.Kernel {
	case "fetchadd":
		ops := s.TotalOps - s.TotalOps%s.Procs
		if ops == 0 {
			ops = s.Procs
		}
		r.totalOps, r.think = ops, s.Think
		if r.name == "" {
			r.name = "fetchadd"
		}
		return r, nil
	case "":
	default:
		return resolved{}, fmt.Errorf("spec %q: unknown kernel %q", s.Name, s.Kernel)
	}
	switch {
	case s.Bench != "" && s.Params != nil:
		return resolved{}, fmt.Errorf("spec %q: Bench and Params are mutually exclusive", s.Name)
	case s.Bench != "":
		spec, err := workload.ByName(s.Bench)
		if err != nil {
			return resolved{}, err
		}
		scale := s.Scale
		if scale < 1 {
			scale = 1
		}
		r.params = Scale(spec.Params, scale, s.Procs)
		if r.name == "" {
			r.name = spec.Name
		}
	case s.Params != nil:
		r.params = *s.Params
		if r.name == "" {
			r.name = "custom"
		}
	default:
		return resolved{}, fmt.Errorf("spec %q: need Bench or Params", s.Name)
	}
	return r, nil
}

// label is the human-readable job identity used in progress lines and
// artifact file names.
func (r resolved) label() string {
	return fmt.Sprintf("%s/%s/p%d", r.name, r.sys.Name, r.cfg.Processors)
}

// canonicalConfig is what gets hashed for the cache key: the resolved
// workload (not the benchmark's name, so edits to the benchmark table
// invalidate stale entries) plus the complete machine configuration,
// which together fully determine a deterministic run.
type canonicalConfig struct {
	Schema    int                `json:"schema"`
	Kernel    string             `json:"kernel"`
	Params    workload.Params    `json:"params"`
	TotalOps  int                `json:"total_ops"`
	Think     int64              `json:"think"`
	Primitive synclibPrimitiveID `json:"primitive"`
	Machine   machine.Config     `json:"machine"`
	Check     bool               `json:"check,omitempty"`
}

// synclibPrimitiveID pins the primitive's identity into the hash even if
// the synclib enum is reordered.
type synclibPrimitiveID string

func (r resolved) canonical() canonicalConfig {
	return canonicalConfig{
		Schema:    cacheSchema,
		Kernel:    r.kernel,
		Params:    r.params,
		TotalOps:  r.totalOps,
		Think:     r.think,
		Primitive: synclibPrimitiveID(fmt.Sprint(r.sys.Primitive)),
		Machine:   r.cfg,
		Check:     r.check,
	}
}

// run executes the resolved plan.
func (r resolved) run() (Result, error) {
	if r.kernel == "fetchadd" {
		return runFetchAdd(r.cfg, r.sys, r.cfg.Processors, r.totalOps, r.think, r.check, r.trace)
	}
	bld, err := workload.Generate(r.params, r.sys.Primitive, r.cfg.Processors)
	if err != nil {
		return Result{}, err
	}
	return runConfigured(r.cfg, bld, r.params, r.name, r.sys.Name, r.cfg.Processors, r.check, r.trace)
}

// finishTrace completes a traced run: it embeds the metrics snapshot in
// the result and writes the Perfetto export when a path was given.
func finishTrace(log *obs.Log, tr *TraceOptions, res *Result) error {
	if log == nil {
		return nil
	}
	snap := log.Snapshot()
	res.Obs = &snap
	if tr.Perfetto == "" {
		return nil
	}
	f, err := os.Create(tr.Perfetto)
	if err != nil {
		return err
	}
	if err := log.ExportPerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunSpec resolves and executes one spec serially (no pool, no cache).
func RunSpec(s Spec) (Result, error) {
	r, err := s.resolve()
	if err != nil {
		return Result{}, err
	}
	return r.run()
}

// Options configures a harness batch. The zero value runs on
// runtime.NumCPU() workers with caching, artifacts and progress all off.
type Options struct {
	// Jobs bounds the worker pool; <= 0 means runtime.NumCPU().
	Jobs int
	// CacheDir enables the on-disk result cache when non-empty
	// (harness.DefaultCacheDir is the conventional location).
	CacheDir string
	// ArtifactDir, when non-empty, receives per-job result JSON and the
	// batch manifest.
	ArtifactDir string
	// Progress receives streaming completed/total/ETA lines (stderr in
	// the CLIs); nil is silent.
	Progress io.Writer
	// Check forces every spec in the batch to run under the
	// internal/check invariant monitors (the CLIs' -check flag).
	Check bool
	// Obs, when non-empty, enables the observability layer for every
	// job in the batch: each job's Perfetto trace lands at
	// <Obs>/<label>.trace.json (unless the spec already carries its own
	// TraceOptions) and its metrics snapshot is embedded in the
	// manifest record. Traced jobs bypass the result cache.
	Obs string
	// Faults arms this fault plan on every spec in the batch that does
	// not already carry its own (the CLIs' -faults flags).
	Faults *faults.Plan
	// KeepGoing runs every job despite failures; the manifest then
	// doubles as the batch's failure manifest (see harness.Options).
	KeepGoing bool
	// JobTimeout bounds one job's wall-clock run time (0 = none).
	JobTimeout time.Duration
	// Retries re-runs failed jobs up to N more times (environmental
	// failures only; deterministic errors fail identically each time).
	Retries int
}

func (o Options) harness() harness.Options {
	hopt := harness.Options{
		Workers:     o.Jobs,
		Progress:    o.Progress,
		ArtifactDir: o.ArtifactDir,
		KeepGoing:   o.KeepGoing,
		JobTimeout:  o.JobTimeout,
		Retries:     o.Retries,
	}
	if o.CacheDir != "" {
		hopt.Cache = harness.NewCache(o.CacheDir)
	}
	return hopt
}

// RunSpecs executes a batch of specs through the parallel harness and
// returns the results in spec order — output ordering is independent of
// completion order, so tables rendered from a batch are byte-identical
// to a serial run. The manifest carries per-job wall times, sim-cycle
// counts, lock hand-off latency percentiles, and cache hit/miss totals.
func RunSpecs(opt Options, specs []Spec) ([]Result, *harness.Manifest, error) {
	if opt.Obs != "" {
		if err := os.MkdirAll(opt.Obs, 0o755); err != nil {
			return nil, nil, err
		}
	}
	jobs := make([]harness.Job[Result], len(specs))
	for i, s := range specs {
		if opt.Check {
			s.Check = true
		}
		if opt.Faults != nil && s.Faults == nil {
			s.Faults = opt.Faults
		}
		r, err := s.resolve()
		if err != nil {
			return nil, nil, err
		}
		if opt.Obs != "" && r.trace == nil {
			r.trace = &TraceOptions{
				Perfetto: filepath.Join(opt.Obs, harness.SanitizeLabel(r.label())+".trace.json"),
			}
		}
		jobs[i] = harness.Job[Result]{
			Label:   r.label(),
			Config:  r.canonical(),
			Run:     r.run,
			Metrics: resultMetrics,
		}
		if r.trace != nil {
			// Tracing is excluded from the cache key (the measurements
			// are identical), but the artifacts only exist after a fresh
			// run — so a traced job skips the cache rather than poisoning
			// it with, or serving, snapshot-less entries.
			jobs[i].Config = nil
			jobs[i].Snapshot = resultSnapshot
		}
	}
	return harness.Run(opt.harness(), jobs)
}

// resultSnapshot surfaces a traced result's observability snapshot for
// the manifest record.
func resultSnapshot(r Result) any {
	if r.Obs == nil {
		return nil
	}
	return r.Obs
}

// resultMetrics extracts the manifest's scalar measurements from a
// result (fresh or cache-loaded).
func resultMetrics(r Result) map[string]float64 {
	m := map[string]float64{
		"cycles":           float64(r.Cycles),
		"bus_transactions": float64(r.BusTransactions),
	}
	if r.Stats != nil {
		m["lock_handoff_p50"] = r.Stats.LockHandoff.Percentile(50)
		m["lock_handoff_p99"] = r.Stats.LockHandoff.Percentile(99)
	}
	return m
}
