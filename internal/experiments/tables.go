package experiments

import (
	"fmt"

	"iqolb/internal/coherence"
	"iqolb/internal/core"
	"iqolb/internal/mem"
	"iqolb/internal/report"
	"iqolb/internal/workload"
)

// Table1 renders the baseline system parameters (the paper's Table 1) as
// actually configured in this simulator.
func Table1() string {
	tm := coherence.DefaultTiming()
	geo := coherence.DefaultCacheGeometry()
	cc := core.DefaultConfig(core.ModeIQOLB)
	kv := report.NewKV("Table 1: baseline system")
	kv.Section("Processor").
		Add("issue width", "%d instructions per cycle (in-order interpreter; see DESIGN.md substitution)", 4).
		Add("ISA", "MIPS-like with LL/SC, Swap, EnQOLB/DeQOLB")
	kv.Section("Cache subsystem").
		Add("L1 data cache", "%d KB, %d-way, %d-byte lines, %d-cycle hit",
			geo.L1.SizeBytes/1024, geo.L1.Ways, mem.LineSize, tm.L1Hit).
		Add("L2 unified cache", "%d KB, %d-way, %d-cycle hit, MOESI",
			geo.L2.SizeBytes/1024, geo.L2.Ways, tm.L2Hit).
		Add("line size", "%d bytes", mem.LineSize)
	kv.Section("Memory bus").
		Add("address bus", "split transactions, broadcast MOESI, %d-cycle access, <=%d outstanding",
			tm.AddrLatency, tm.MaxOutstanding).
		Add("data network", "point-to-point crossbar, %d cycles per line transfer", tm.DataLatency)
	kv.Section("Memory").
		Add("DRAM", "8-byte wide; full-line access %d cycles (40 first + 4 per burst)", tm.MemAccess)
	kv.Section("IQOLB policy").
		Add("SC delay budget", "%d cycles", cc.SCTimeout).
		Add("lock delay budget", "%d cycles", cc.LockTimeout).
		Add("RFO service delay", "%d cycles", cc.RFOServiceDelay).
		Add("lock predictor", "%d entries, PC-indexed", cc.PredictorEntries).
		Add("held-locks table", "%d entries", cc.HeldLockEntries)
	kv.Section("Consistency").
		Add("model", "sequential consistency (per-line bus serialization)")
	return kv.String()
}

// Table2 renders the benchmark inventory (the paper's Table 2) together
// with the synthetic signature standing in for each application.
func Table2() string {
	t := report.NewTable("Table 2: benchmarks",
		"benchmark", "paper input", "locks", "hot%", "CS work", "think", "barriers/iter", "signature")
	for _, s := range workload.Specs() {
		p := s.Params
		t.Row(s.Name, s.PaperInput, p.Locks, p.HotPct, p.CSWork,
			fmt.Sprintf("%d+%d", p.ThinkWork, p.ThinkJitter), p.BarriersPerIter+1, s.Description)
	}
	t.Note("synthetic kernels reproduce each application's synchronization signature; see DESIGN.md")
	return t.String()
}

// Table3Row is one benchmark's column of the paper's Table 3.
type Table3Row struct {
	Benchmark   string
	TTSAbs      float64 // TTS absolute speedup: T(1 proc)/T(P procs)
	QOLBRel     float64 // QOLB speedup relative to TTS at P procs
	IQOLBRel    float64 // IQOLB speedup relative to TTS at P procs
	TTSCycles   uint64
	QOLBCycles  uint64
	IQOLBCycles uint64
	OneCycles   uint64
}

// Table3Data computes the paper's Table 3 at the given processor count.
// scaleFactor > 1 shrinks the workloads proportionally (all systems see
// the same work, so the ratios remain meaningful). The full benchmark ×
// system grid fans out across the harness; rows assemble in spec order.
func Table3Data(opt Options, procs, scaleFactor int) ([]Table3Row, error) {
	benches := workload.Specs()
	// Four cells per benchmark: 1-proc TTS base, then TTS/QOLB/IQOLB at
	// the evaluated machine size.
	var specs []Spec
	for _, spec := range benches {
		specs = append(specs,
			Spec{Bench: spec.Name, System: SysTTS.Name, Procs: 1, Scale: scaleFactor},
			Spec{Bench: spec.Name, System: SysTTS.Name, Procs: procs, Scale: scaleFactor},
			Spec{Bench: spec.Name, System: SysQOLB.Name, Procs: procs, Scale: scaleFactor},
			Spec{Bench: spec.Name, System: SysIQOLB.Name, Procs: procs, Scale: scaleFactor})
	}
	results, _, err := RunSpecs(opt, specs)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for i, spec := range benches {
		one, tts, qolb, iq := results[4*i], results[4*i+1], results[4*i+2], results[4*i+3]
		rows = append(rows, Table3Row{
			Benchmark:   spec.Name,
			TTSAbs:      float64(one.Cycles) / float64(tts.Cycles),
			QOLBRel:     float64(tts.Cycles) / float64(qolb.Cycles),
			IQOLBRel:    float64(tts.Cycles) / float64(iq.Cycles),
			TTSCycles:   tts.Cycles,
			QOLBCycles:  qolb.Cycles,
			IQOLBCycles: iq.Cycles,
			OneCycles:   one.Cycles,
		})
	}
	return rows, nil
}

// paperTable3 carries the published numbers for side-by-side reporting.
var paperTable3 = map[string][3]float64{
	// name -> {TTS absolute, QOLB relative, IQOLB relative}
	"barnes":    {7.5, 1.06, 1.06},
	"ocean":     {6.0, 1.54, 1.52},
	"radiosity": {2.5, 6.37, 6.37},
	"raytrace":  {1.5, 11.01, 10.75},
	"water-nsq": {18.1, 1.06, 1.06},
}

// Table3 renders the reproduced Table 3 next to the paper's numbers.
func Table3(opt Options, procs, scaleFactor int) (string, []Table3Row, error) {
	rows, err := Table3Data(opt, procs, scaleFactor)
	if err != nil {
		return "", nil, err
	}
	t := report.NewTable(fmt.Sprintf("Table 3: results (%d processors, speedups)", procs),
		"benchmark", "TTS abs", "paper", "QOLB rel", "paper", "IQOLB rel", "paper", "IQOLB/QOLB")
	for _, r := range rows {
		p := paperTable3[r.Benchmark]
		t.Row(r.Benchmark,
			fmt.Sprintf("(%0.1f)", r.TTSAbs), fmt.Sprintf("(%0.1f)", p[0]),
			r.QOLBRel, p[1],
			r.IQOLBRel, p[2],
			float64(r.QOLBCycles)/float64(r.IQOLBCycles))
	}
	t.Note("TTS column: absolute speedup over 1 processor (parenthesized, as in the paper)")
	t.Note("QOLB/IQOLB columns: speedup relative to the TTS base case")
	if scaleFactor > 1 {
		t.Note("workloads scaled down by %dx", scaleFactor)
	}
	return t.String(), rows, nil
}
