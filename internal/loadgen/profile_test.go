package loadgen

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// TestThroughputProfile is a profiling harness, not a correctness test:
// run with PROFILE_WINDOW set (and -cpuprofile) to capture the hot path.
func TestThroughputProfile(t *testing.T) {
	wenv := os.Getenv("PROFILE_WINDOW")
	if wenv == "" {
		t.Skip("set PROFILE_WINDOW to run")
	}
	w, _ := strconv.Atoi(wenv)
	var delay time.Duration
	if d := os.Getenv("PROFILE_FLUSH"); d != "" {
		delay, _ = time.ParseDuration(d)
	}
	res, err := RunThroughput(ThroughputConfig{
		Clients:      16,
		Window:       w,
		FlushDelay:   delay,
		OpsPerClient: 8000,
		Shards:       16,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("window=%d flush=%v ops=%d throughput=%.0f ops/s p50=%v",
		w, delay, res.Ops, res.Throughput, time.Duration(res.OpP50))
}
