package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"iqolb/internal/report"
	"iqolb/internal/stats"
)

// Throughput artifact schema versions (BENCH_throughput.json); bump on
// any field addition, removal, or change of meaning.
const (
	ThroughputResultSchemaVersion = 1
	ThroughputFileSchemaVersion   = 1
)

// ThroughputResult is one open-loop run's measurements. Ops counts wire
// round trips (acquire and release each count one); op latency is
// client-observed issue → response. The configuration fields and the
// op schedule are seed-deterministic; the timing fields are wall-clock
// measurements and vary run to run (the byte-identical artifacts in
// this repo are the chaos campaigns, whose outcomes are scheduled, not
// timed).
type ThroughputResult struct {
	SchemaVersion int    `json:"schema_version"`
	Clients       int    `json:"clients"`
	Window        int    `json:"window"`
	FlushDelayNS  int64  `json:"flush_delay_ns"`
	OpsPerClient  int    `json:"ops_per_client"`
	Resources     int    `json:"resources"`
	Seed          uint64 `json:"seed"`
	Ops           uint64 `json:"ops"`
	Errors        uint64 `json:"errors"`
	WallNS        int64  `json:"wall_ns"`
	// Throughput is completed wire ops per second of wall time.
	Throughput float64 `json:"throughput_ops_per_sec"`
	// Speedup is Throughput over the sweep's (window=1, flush-delay=0)
	// baseline row, filled in by NewThroughputFile when that row exists.
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
	// OpWait: client-side op issue → response, ns.
	OpWait stats.Histogram `json:"op_wait_ns"`
	OpP50  float64         `json:"op_p50_ns"`
	OpP99  float64         `json:"op_p99_ns"`
	OpP999 float64         `json:"op_p999_ns"`
}

// ThroughputFile is the on-disk artifact (BENCH_throughput.json).
type ThroughputFile struct {
	SchemaVersion int                `json:"schema_version"`
	GoVersion     string             `json:"go_version"`
	NumCPU        int                `json:"num_cpu"`
	Results       []ThroughputResult `json:"results"`
}

// NewThroughputFile wraps sweep results, computing each row's speedup
// against the (window=1, flush-delay=0) baseline with matching client
// count when the sweep includes one.
func NewThroughputFile(results []ThroughputResult) *ThroughputFile {
	base := make(map[int]float64) // clients → baseline ops/s
	for _, r := range results {
		if r.Window == 1 && r.FlushDelayNS == 0 && r.Throughput > 0 {
			base[r.Clients] = r.Throughput
		}
	}
	for i := range results {
		if b := base[results[i].Clients]; b > 0 {
			results[i].Speedup = results[i].Throughput / b
		}
	}
	return &ThroughputFile{
		SchemaVersion: ThroughputFileSchemaVersion,
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Results:       results,
	}
}

// WriteJSON writes the container as indented JSON.
func (f *ThroughputFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadThroughputFile reads and version-checks a throughput artifact.
func LoadThroughputFile(path string) (*ThroughputFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ThroughputFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if f.SchemaVersion != ThroughputFileSchemaVersion {
		return nil, fmt.Errorf("loadgen: %s: schema version %d, want %d", path, f.SchemaVersion, ThroughputFileSchemaVersion)
	}
	for i := range f.Results {
		if v := f.Results[i].SchemaVersion; v != ThroughputResultSchemaVersion {
			return nil, fmt.Errorf("loadgen: %s: result %d has schema version %d, want %d", path, i, v, ThroughputResultSchemaVersion)
		}
	}
	return &f, nil
}

// RenderThroughput formats a sweep as the CLI's human-readable table.
func RenderThroughput(results []ThroughputResult) string {
	t := report.NewTable("Pipelined serving throughput (open loop, client-observed op latency, ns)",
		"clients", "window", "flush-delay", "ops", "ops/s", "p50", "p99", "p99.9", "speedup")
	for _, r := range results {
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		t.Row(r.Clients, r.Window, time.Duration(r.FlushDelayNS).String(), r.Ops,
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.0f", r.OpP50), fmt.Sprintf("%.0f", r.OpP99),
			fmt.Sprintf("%.0f", r.OpP999), speedup)
	}
	t.Note("window 1 + flush-delay 0 is the one-in-flight baseline; the flush delay trades p50 for syscall coalescing (the paper's delay-insertion move on the transmit path)")
	return t.String()
}
