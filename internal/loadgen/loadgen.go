// Package loadgen is the closed-loop load generator for the lock-lease
// service: it replays internal/workload signatures over N real TCP
// client connections against a lockserve-protocol server (in-process by
// default, or any -addr), measuring client-observed grant latency,
// throughput, and fairness. It is the serving-layer sibling of
// internal/lockbench — same signatures, same seeded PRNG family, but
// the contention point is a network lease service instead of an
// in-process lock.
package loadgen

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"iqolb/internal/faults"
	"iqolb/internal/service"
	"iqolb/internal/stats"
	"iqolb/internal/workload"
	"iqolb/locks"
)

// Config describes one load run.
type Config struct {
	// Bench names a workload signature (workload.ByName).
	Bench string `json:"bench"`
	// Clients is the number of concurrent closed-loop TCP clients.
	Clients int `json:"clients"`
	// Addr targets an external lockserve instance; empty spins an
	// in-process server on a loopback ephemeral port (still real TCP).
	Addr string `json:"addr,omitempty"`
	// Server shape (ignored when Addr is set).
	Shards     int            `json:"shards,omitempty"`
	Lock       locks.Kind     `json:"lock,omitempty"`
	Policy     service.Policy `json:"policy,omitempty"`
	QueueDepth int            `json:"queue_depth,omitempty"`
	// Scale divides the signature's critical-section total (0 or 1 =
	// unscaled), exactly like lockbench.
	Scale int `json:"scale,omitempty"`
	// Seed drives the per-client PRNGs (resource choice and think
	// jitter); the operation sequence is reproducible, the timing is not.
	Seed uint64 `json:"seed,omitempty"`
	// TTL is the per-acquire lease TTL (0 = server default).
	TTL time.Duration `json:"ttl,omitempty"`
	// MaxWait bounds each queued wait (0 = 10s).
	MaxWait time.Duration `json:"max_wait,omitempty"`
}

// resolveParams maps the config onto the effective signature, mirroring
// lockbench.resolveParams: scaled, divisible by the client count.
func (c Config) resolveParams() (workload.Params, error) {
	spec, err := workload.ByName(c.Bench)
	if err != nil {
		return workload.Params{}, err
	}
	p := spec.Params
	if c.Clients < 1 {
		return workload.Params{}, fmt.Errorf("loadgen: clients = %d", c.Clients)
	}
	if p.PollProcs > 0 {
		return workload.Params{}, fmt.Errorf("loadgen: %q uses poller processors, which have no service analogue", c.Bench)
	}
	if s := c.Scale; s > 1 {
		p.TotalCS /= s
	}
	p.TotalCS -= p.TotalCS % c.Clients
	if p.TotalCS < c.Clients {
		p.TotalCS = c.Clients
	}
	return p, nil
}

// work burns roughly n units of private compute (one cheap loop
// iteration per simulated cycle, as in lockbench).
func work(n int64) {
	for i := int64(0); i < n; i++ {
	}
}

// clientShard is one client's private measurement state.
type clientShard struct {
	grantWait stats.Histogram // acquire issue → lease granted, ns
	grants    uint64
	sheds     uint64
	timeouts  uint64
	errs      uint64
	lastErr   error
}

// Run executes one load run and returns its result. With no Addr it
// boots an in-process service + TCP server for the duration of the run
// and folds the server's counter snapshot into the result.
func Run(cfg Config) (Result, error) {
	p, err := cfg.resolveParams()
	if err != nil {
		return Result{}, err
	}
	maxWait := cfg.MaxWait
	if maxWait == 0 {
		maxWait = 10 * time.Second
	}

	addr := cfg.Addr
	var svc *service.Service
	var srv *service.Server
	if addr == "" {
		shards := cfg.Shards
		if shards == 0 {
			shards = 8
		}
		queue := cfg.QueueDepth
		if queue == 0 {
			queue = 64
		}
		svc, err = service.New(service.Config{
			Shards:     shards,
			Lock:       cfg.Lock,
			Policy:     cfg.Policy,
			QueueDepth: queue,
			DefaultTTL: 30 * time.Second,
			MaxTTL:     time.Minute,
		})
		if err != nil {
			return Result{}, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return Result{}, err
		}
		addr = ln.Addr().String()
		srv = service.NewServer(svc)
		go srv.Serve(ln)
		defer func() {
			srv.Close()
			svc.Close()
		}()
	}

	// Connect every client before starting the clock.
	clients := make([]*service.Client, cfg.Clients)
	for i := range clients {
		c, err := service.Dial(addr)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return Result{}, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	shards := make([]clientShard, cfg.Clients)
	csPerClient := p.TotalCS / cfg.Clients
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := &shards[g]
			cl := clients[g]
			owner := fmt.Sprintf("client-%d", g)
			// Same PRNG family and per-actor splitting as lockbench.
			str := faults.NewStream(cfg.Seed + uint64(g)*0x9e3779b97f4a7c15 + 1)
			for iter := 0; iter < p.Iterations; iter++ {
				for cs := 0; cs < csPerClient; cs++ {
					think := p.ThinkWork
					if p.ThinkJitter > 0 {
						think += str.Intn(p.ThinkJitter)
					}
					work(think)
					res := fmt.Sprintf("res-%d", p.PickLock(str.Intn))
					t0 := time.Now()
					lease, err := cl.Acquire(res, owner, service.AcquireOptions{
						TTL:     cfg.TTL,
						Wait:    true,
						MaxWait: maxWait,
					})
					if err != nil {
						switch {
						case isShed(err):
							sh.sheds++
						case isTimeout(err):
							sh.timeouts++
						default:
							sh.errs++
							sh.lastErr = err
						}
						continue
					}
					sh.grantWait.Add(uint64(time.Since(t0)))
					sh.grants++
					work(p.CSWork)
					if err := cl.Release(res, lease.Token); err != nil {
						sh.errs++
						sh.lastErr = fmt.Errorf("release: %w", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	res := Result{
		SchemaVersion: ResultSchemaVersion,
		Bench:         cfg.Bench,
		Lock:          string(cfg.Lock),
		Policy:        string(cfg.Policy),
		Clients:       cfg.Clients,
		Shards:        cfg.Shards,
		QueueDepth:    cfg.QueueDepth,
		Seed:          cfg.Seed,
		WallNS:        wall.Nanoseconds(),
		PerClientOps:  make([]uint64, cfg.Clients),
	}
	var firstErr error
	for g := range shards {
		sh := &shards[g]
		res.GrantWait.Merge(&sh.grantWait)
		res.Grants += sh.grants
		res.Sheds += sh.sheds
		res.Timeouts += sh.timeouts
		res.Errors += sh.errs
		res.PerClientOps[g] = sh.grants
		if firstErr == nil && sh.lastErr != nil {
			firstErr = sh.lastErr
		}
	}
	if firstErr != nil {
		return Result{}, fmt.Errorf("loadgen: client error (%d total): %w", res.Errors, firstErr)
	}
	res.Throughput = float64(res.Grants) / wall.Seconds()
	res.GrantP50 = res.GrantWait.Percentile(50)
	res.GrantP99 = res.GrantWait.Percentile(99)
	res.GrantP999 = res.GrantWait.Percentile(99.9)
	res.Fairness = stats.Jain(res.PerClientOps)
	if svc != nil {
		snap := svc.Snapshot()
		res.Server = &ServerTotals{
			Policy:           string(svc.Policy()),
			Counters:         snap.Totals,
			DegradedShards:   snap.Degraded,
			ServerGrantP99NS: snap.GrantWaitNS.Percentile(99),
		}
	}
	return res, nil
}

func isShed(err error) bool {
	return errors.Is(err, service.ErrShed) || errors.Is(err, service.ErrQueueFull) || errors.Is(err, service.ErrDegraded)
}

func isTimeout(err error) bool { return errors.Is(err, service.ErrWaitTimeout) }
