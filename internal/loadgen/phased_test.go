package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// smokePhases is a miniature low→high→low schedule sized for CI.
func smokePhases() []Phase {
	return []Phase{
		{Name: "low", Resources: 8, Think: 200_000, OpsPerClient: 40},
		{Name: "high", Resources: 1, Think: 0, OpsPerClient: 120},
		{Name: "cooldown", Resources: 8, Think: 200_000, OpsPerClient: 40},
	}
}

func TestRunPhasesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP clients; skip in -short")
	}
	var runs []PhasedResult
	for _, mode := range PhasedModes {
		cfg := PhasedConfig{
			Mode:             mode,
			Clients:          4,
			Shards:           2,
			Seed:             7,
			Phases:           smokePhases(),
			MaxWait:          2 * time.Second,
			AdaptiveInterval: 2 * time.Millisecond,
		}
		r, err := RunPhases(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(r.Phases) != 3 {
			t.Fatalf("%s: %d phases, want 3", mode, len(r.Phases))
		}
		for _, pr := range r.Phases {
			if pr.Grants == 0 {
				t.Errorf("%s phase %q: no grants", mode, pr.Phase.Name)
			}
			if len(pr.ShardPolicies) != 2 {
				t.Errorf("%s phase %q: %d shard policies, want 2", mode, pr.Phase.Name, len(pr.ShardPolicies))
			}
		}
		if mode == ModeAdaptive {
			if r.Controller == nil || r.Controller.Ticks == 0 {
				t.Errorf("adaptive run missing controller state: %+v", r.Controller)
			}
		} else if r.Controller != nil {
			t.Errorf("%s run has controller state", mode)
		}
		runs = append(runs, r)
	}

	// Artifact round-trip.
	path := filepath.Join(t.TempDir(), "BENCH_adaptive.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewPhasedFile(runs).WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadPhasedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(runs) {
		t.Fatalf("round-trip lost runs: %d != %d", len(got.Runs), len(runs))
	}
	if out := RenderPhased(got.Runs); !strings.Contains(out, "adaptive") {
		t.Fatalf("render missing adaptive row:\n%s", out)
	}
}

func TestRunPhasesValidation(t *testing.T) {
	if _, err := RunPhases(PhasedConfig{Mode: "zigzag", Clients: 1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := RunPhases(PhasedConfig{Mode: ModeHandoff, Clients: 0}); err == nil {
		t.Fatal("zero clients accepted")
	}
	bad := []Phase{{Name: "x", Resources: 0, OpsPerClient: 1}}
	if _, err := RunPhases(PhasedConfig{Mode: ModeHandoff, Clients: 1, Phases: bad}); err == nil {
		t.Fatal("zero-resource phase accepted")
	}
}

// TestCommittedAdaptiveArtifact is the golden check on the committed
// BENCH_adaptive.json: schema versions load strictly, all three modes
// are present over identical phase schedules, the adaptive run actually
// migrated, and — the acceptance criterion — adaptive matches or beats
// the best static policy's p99 grant latency in every phase (within a
// 10% "matching" tolerance; the artifact is committed, so this is
// deterministic).
func TestCommittedAdaptiveArtifact(t *testing.T) {
	f, err := LoadPhasedFile(filepath.Join("..", "..", "BENCH_adaptive.json"))
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	byMode := map[string]PhasedResult{}
	for _, r := range f.Runs {
		byMode[r.Mode] = r
	}
	for _, mode := range PhasedModes {
		if _, ok := byMode[mode]; !ok {
			t.Fatalf("artifact missing mode %q", mode)
		}
	}
	ad := byMode[ModeAdaptive]
	if len(ad.Phases) < 3 {
		t.Fatalf("adaptive run has %d phases, want >= 3", len(ad.Phases))
	}
	var migrations uint64
	for pi, apr := range ad.Phases {
		name := apr.Phase.Name
		migrations += apr.Migrations
		best := 0.0
		for _, mode := range []string{ModeHandoff, ModeBroadcast} {
			sr := byMode[mode]
			if len(sr.Phases) != len(ad.Phases) {
				t.Fatalf("%s has %d phases vs adaptive's %d", mode, len(sr.Phases), len(ad.Phases))
			}
			spr := sr.Phases[pi]
			if spr.Phase != apr.Phase {
				t.Fatalf("phase %d schedule mismatch: %s=%+v adaptive=%+v", pi, mode, spr.Phase, apr.Phase)
			}
			if best == 0 || spr.GrantP99 < best {
				best = spr.GrantP99
			}
		}
		const tolerance = 1.10
		if apr.GrantP99 > best*tolerance {
			t.Errorf("phase %q: adaptive p99 %.0fns exceeds best static %.0fns by more than %.0f%%",
				name, apr.GrantP99, best, (tolerance-1)*100)
		}
	}
	if migrations == 0 {
		t.Errorf("adaptive run recorded no migrations across the phase shift")
	}
	if ad.Controller == nil || ad.Controller.Migrations == 0 {
		t.Errorf("adaptive run's controller state missing or idle: %+v", ad.Controller)
	}
}
