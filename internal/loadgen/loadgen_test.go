package loadgen

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"

	"iqolb/internal/service"
	"iqolb/locks"
)

func listenLoopback() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func TestResolveParams(t *testing.T) {
	p, err := Config{Bench: "hotlock", Clients: 3, Scale: 4}.resolveParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCS%3 != 0 || p.TotalCS == 0 {
		t.Fatalf("TotalCS = %d", p.TotalCS)
	}
	if _, err := (Config{Bench: "hotlock"}).resolveParams(); err == nil {
		t.Fatal("clients 0 accepted")
	}
	if _, err := (Config{Bench: "doom", Clients: 2}).resolveParams(); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestRunInProcess(t *testing.T) {
	for _, policy := range []service.Policy{service.PolicyHandoff, service.PolicyBroadcast} {
		res, err := Run(Config{
			Bench:   "hotlock",
			Clients: 4,
			Lock:    locks.KindMCS,
			Policy:  policy,
			Scale:   64,
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Grants == 0 {
			t.Fatalf("%s: no grants", policy)
		}
		if res.Errors != 0 {
			t.Fatalf("%s: %d client errors", policy, res.Errors)
		}
		if res.Throughput <= 0 || res.WallNS <= 0 {
			t.Fatalf("%s: throughput %f wall %d", policy, res.Throughput, res.WallNS)
		}
		if res.Fairness <= 0 || res.Fairness > 1 {
			t.Fatalf("%s: fairness %f", policy, res.Fairness)
		}
		if res.GrantWait.Count != res.Grants {
			t.Fatalf("%s: histogram count %d != grants %d", policy, res.GrantWait.Count, res.Grants)
		}
		var sum uint64
		for _, n := range res.PerClientOps {
			sum += n
		}
		if sum != res.Grants {
			t.Fatalf("%s: per-client sum %d != grants %d", policy, sum, res.Grants)
		}
		if res.Server == nil {
			t.Fatalf("%s: in-process run missing server totals", policy)
		}
		// Completed waits end in grant, shed, or timeout; the server saw
		// every acquire.
		if res.Server.Counters.Acquires == 0 || res.Server.Counters.Grants != res.Grants {
			t.Fatalf("%s: server counters %+v vs client grants %d", policy, res.Server.Counters, res.Grants)
		}
		// Policy-specific mechanics actually engaged (or the run was
		// uncontended, in which case both counters may be zero — hotlock
		// with 4 clients is contended in practice, so check loosely).
		if policy == service.PolicyHandoff && res.Server.Counters.BroadcastWakeups != 0 {
			t.Fatalf("handoff run recorded broadcast wakeups")
		}
		if policy == service.PolicyBroadcast && res.Server.Counters.Handoffs != 0 {
			t.Fatalf("broadcast run recorded handoffs")
		}
	}
}

func TestRunExternalAddr(t *testing.T) {
	// Boot our own server and point the generator at it.
	svc, err := service.New(service.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := service.NewServer(svc)
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	res, err := Run(Config{Bench: "nullcs", Clients: 2, Scale: 64, Addr: ln.Addr().String(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grants == 0 || res.Errors != 0 {
		t.Fatalf("external run: %+v", res)
	}
	if res.Server != nil {
		t.Fatal("external run should not report server totals")
	}
}

func TestFileRoundTrip(t *testing.T) {
	res, err := Run(Config{Bench: "nullcs", Clients: 2, Lock: locks.KindTTS, Policy: service.PolicyHandoff, Scale: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFile([]Result{res})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Grants != res.Grants || got.Results[0].GrantWait.Count != res.GrantWait.Count {
		t.Fatalf("round trip mismatch: %+v", got.Results[0])
	}
	bad := bytes.Replace(buf.Bytes(), []byte(`"schema_version": 1`), []byte(`"schema_version": 99`), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("wrong file schema version accepted")
	}
}
