// The open-loop pipelined throughput runner: where loadgen.Run models
// closed-loop actors (one op in flight per client, think time between),
// RunThroughput saturates the wire itself — each connection carries a
// window of concurrent ops, optionally coalesced by the delay-inserted
// flush writer on both ends. Sweeping window × flush-delay is the
// serving-path rendition of the paper's experiment: the inserted delay
// costs p50 (frames wait in the coalescing buffer) and buys throughput
// (fewer, fuller syscalls), and the committed BENCH_throughput.json
// shows the trade explicitly.
package loadgen

import (
	"fmt"
	"net"
	"sync"
	"time"

	"iqolb/internal/faults"
	"iqolb/internal/service"
	"iqolb/internal/stats"
	"iqolb/locks"
)

// ThroughputConfig describes one open-loop throughput run.
type ThroughputConfig struct {
	// Clients is the number of TCP connections.
	Clients int `json:"clients"`
	// Window is the per-connection in-flight cap; 1 = the lock-step
	// one-in-flight baseline (no pipelining at all).
	Window int `json:"window"`
	// FlushDelay is the write-coalescing hold applied on BOTH ends
	// (0 = write through).
	FlushDelay time.Duration `json:"flush_delay_ns"`
	// OpsPerClient is the acquire+release pairs each connection issues;
	// the op schedule is seed-deterministic even though timing is not.
	OpsPerClient int `json:"ops_per_client"`
	// Resources spreads ops over a shared pool of this many resources;
	// 0 (the default) gives every worker a private resource, so the
	// lock layer never contends and the wire path, not lease hand-off,
	// is what saturates — the quantity this benchmark measures. A
	// positive pool adds real lease contention on top.
	Resources int `json:"resources"`
	// Seed drives the per-worker resource choice.
	Seed uint64 `json:"seed"`
	// Addr targets an external server; empty boots an in-process one
	// with the matching FlushDelay/Window server options.
	Addr string `json:"addr,omitempty"`
	// Server shape (ignored when Addr is set).
	Shards     int        `json:"shards,omitempty"`
	Lock       locks.Kind `json:"lock,omitempty"`
	QueueDepth int        `json:"queue_depth,omitempty"`
	// TTL is the per-acquire lease TTL (0 = server default).
	TTL time.Duration `json:"ttl,omitempty"`
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 2000
	}
	if c.Resources < 0 {
		c.Resources = 0
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// RunThroughput executes one open-loop run: Clients connections, each
// with Window workers sharing the (pipelined when Window > 1)
// connection, hammering acquire/release pairs with no think time. Ops
// counts wire round trips (each acquire and each release is one op).
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	cfg = cfg.withDefaults()

	addr := cfg.Addr
	if addr == "" {
		svc, err := service.New(service.Config{
			Shards:     cfg.Shards,
			Lock:       cfg.Lock,
			QueueDepth: cfg.QueueDepth,
			DefaultTTL: 30 * time.Second,
			MaxTTL:     time.Minute,
		})
		if err != nil {
			return ThroughputResult{}, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return ThroughputResult{}, err
		}
		addr = ln.Addr().String()
		srv := service.NewServerWithOptions(svc, service.ServerOptions{
			FlushDelay: cfg.FlushDelay,
			Window:     cfg.Window,
		})
		go srv.Serve(ln)
		defer func() {
			srv.Close()
			svc.Close()
		}()
	}

	clients := make([]*service.Client, cfg.Clients)
	for i := range clients {
		c, err := service.Dial(addr)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return ThroughputResult{}, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		c.SetOpTimeout(30 * time.Second)
		if cfg.Window > 1 {
			if err := c.Pipeline(cfg.Window, cfg.FlushDelay); err != nil {
				c.Close()
				for _, c := range clients[:i] {
					c.Close()
				}
				return ThroughputResult{}, err
			}
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Workers per connection = the window: the open loop keeps the
	// window full. Each worker gets its own seeded stream and its share
	// of the connection's op budget (deterministic split).
	type workerShard struct {
		opWait stats.Histogram
		ops    uint64
		errs   uint64
		last   error
	}
	workers := cfg.Window
	shards := make([]workerShard, cfg.Clients*workers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Clients; g++ {
		for w := 0; w < workers; w++ {
			pairs := cfg.OpsPerClient / workers
			if w < cfg.OpsPerClient%workers {
				pairs++
			}
			wg.Add(1)
			go func(g, w, pairs int) {
				defer wg.Done()
				sh := &shards[g*workers+w]
				cl := clients[g]
				owner := fmt.Sprintf("c%d-w%d", g, w)
				str := faults.NewStream(cfg.Seed + uint64(g)*0x9e3779b97f4a7c15 + uint64(w)*0x6c62272e07bb0143 + 1)
				private := fmt.Sprintf("res-%d-%d", g, w)
				for i := 0; i < pairs; i++ {
					res := private
					if cfg.Resources > 0 {
						res = fmt.Sprintf("res-%d", str.Intn(int64(cfg.Resources)))
					}
					t0 := time.Now()
					lease, err := cl.Acquire(res, owner, service.AcquireOptions{
						TTL:     cfg.TTL,
						Wait:    true,
						MaxWait: 30 * time.Second,
					})
					if err != nil {
						sh.errs++
						sh.last = fmt.Errorf("acquire: %w", err)
						continue
					}
					sh.opWait.Add(uint64(time.Since(t0)))
					sh.ops++
					t1 := time.Now()
					if err := cl.ReleaseFenced(res, lease.Token, lease.Fence); err != nil {
						sh.errs++
						sh.last = fmt.Errorf("release: %w", err)
						continue
					}
					sh.opWait.Add(uint64(time.Since(t1)))
					sh.ops++
				}
			}(g, w, pairs)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	res := ThroughputResult{
		SchemaVersion: ThroughputResultSchemaVersion,
		Clients:       cfg.Clients,
		Window:        cfg.Window,
		FlushDelayNS:  cfg.FlushDelay.Nanoseconds(),
		OpsPerClient:  cfg.OpsPerClient,
		Resources:     cfg.Resources,
		Seed:          cfg.Seed,
		WallNS:        wall.Nanoseconds(),
	}
	var firstErr error
	for i := range shards {
		sh := &shards[i]
		res.OpWait.Merge(&sh.opWait)
		res.Ops += sh.ops
		res.Errors += sh.errs
		if firstErr == nil && sh.last != nil {
			firstErr = sh.last
		}
	}
	if firstErr != nil {
		return ThroughputResult{}, fmt.Errorf("loadgen: throughput client error (%d total): %w", res.Errors, firstErr)
	}
	res.Throughput = float64(res.Ops) / wall.Seconds()
	res.OpP50 = res.OpWait.Percentile(50)
	res.OpP99 = res.OpWait.Percentile(99)
	res.OpP999 = res.OpWait.Percentile(99.9)
	return res, nil
}
